package bncg_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	bncg "repro"
)

// TestExperimentsQuick runs every registered experiment at Quick scale
// under plain `go test`, so the experiment registry and all report shape
// checks are exercised by tier-1 runs — the benchmarks below only cover
// them under -bench.
func TestExperimentsQuick(t *testing.T) {
	ids := bncg.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := bncg.Experiment(context.Background(), id, bncg.Quick)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range rep.FailedChecks() {
				t.Errorf("check %q failed: %s", c.Name, c.Detail)
			}
		})
	}
}

// One benchmark per table row and figure of the paper (DESIGN.md §4).
// Each runs the corresponding experiment harness end to end; the first
// iteration logs the produced report so `go test -bench . -v` regenerates
// the paper's tables. A failing shape check fails the benchmark.

var reportOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bncg.Experiment(context.Background(), id, bncg.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllPass() {
			b.Fatalf("experiment %s failed checks: %v", id, rep.FailedChecks())
		}
		if _, logged := reportOnce.LoadOrStore(id, true); !logged {
			b.Logf("\n%s", rep)
		}
	}
}

// Table 1.

func BenchmarkTable1_PS(b *testing.B)   { benchExperiment(b, "T1-PS") }
func BenchmarkTable1_BSwE(b *testing.B) { benchExperiment(b, "T1-BSwE") }
func BenchmarkTable1_BGE(b *testing.B)  { benchExperiment(b, "T1-BGE") }
func BenchmarkTable1_BNE(b *testing.B)  { benchExperiment(b, "T1-BNE") }
func BenchmarkTable1_3BSE(b *testing.B) { benchExperiment(b, "T1-3BSE") }
func BenchmarkTable1_BSE(b *testing.B)  { benchExperiment(b, "T1-BSE") }

// Figures.

func BenchmarkFigure1a_Lattice(b *testing.B)    { benchExperiment(b, "F1a") }
func BenchmarkFigure1b_Venn(b *testing.B)       { benchExperiment(b, "F1b") }
func BenchmarkFigure2_CorboParkes(b *testing.B) { benchExperiment(b, "F2") }
func BenchmarkFigure3_Stretched(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkFigure4_Coalition(b *testing.B)   { benchExperiment(b, "F4") }
func BenchmarkFigure5_BNEGap(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkFigure6_2BSEGap(b *testing.B)     { benchExperiment(b, "F6") }
func BenchmarkFigure7_kBSEGap(b *testing.B)     { benchExperiment(b, "F7") }
func BenchmarkFigure8_AddGap(b *testing.B)      { benchExperiment(b, "F8") }

// Propositions, lemmas and supporting experiments.

func BenchmarkLemma24_Cycles(b *testing.B)       { benchExperiment(b, "L2.4") }
func BenchmarkProp316_LowAlpha(b *testing.B)     { benchExperiment(b, "P3.16") }
func BenchmarkProp322_NoFlat(b *testing.B)       { benchExperiment(b, "P3.22") }
func BenchmarkDynamics_Convergence(b *testing.B) { benchExperiment(b, "DYN") }

// Extensions: the open question on general graphs (Section 4), the
// unilateral-baseline comparison motivating the paper, and the Appendix B
// structural bounds.

func BenchmarkOpenQuestion_General(b *testing.B) { benchExperiment(b, "OQ-GENERAL") }
func BenchmarkBaseline_NCGCompare(b *testing.B)  { benchExperiment(b, "NCG-COMPARE") }
func BenchmarkAppendixB_Bounds(b *testing.B)     { benchExperiment(b, "APP-B") }

// Micro-benchmarks for the primitives the harness leans on.

func BenchmarkCheckPS_Star64(b *testing.B) {
	gm, err := bncg.NewGame(64, bncg.AlphaInt(3))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Star(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bncg.Check(gm, g, bncg.PS).Stable {
			b.Fatal("star unstable")
		}
	}
}

func BenchmarkCheckBNE_Path10(b *testing.B) {
	gm, err := bncg.NewGame(10, bncg.AlphaInt(7))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Path(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bncg.Check(gm, g, bncg.BNE)
	}
}

func BenchmarkCheckBSE_Cycle6(b *testing.B) {
	gm, err := bncg.NewGame(6, bncg.AlphaInt(5))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Cycle(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bncg.Check(gm, g, bncg.BSE).Stable {
			b.Fatal("C6 at α=5 should be in BSE")
		}
	}
}

func BenchmarkTreeRho_100k(b *testing.B) {
	n := 100_000
	gm, err := bncg.NewGame(n, bncg.AlphaInt(int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.AlmostCompleteDAry(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bncg.TreeRho(gm, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorstTreePS_n9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bncg.WorstTree(context.Background(), 9, bncg.AlphaInt(9), bncg.PS); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep engine benchmarks: the Full-scale n=6 lattice sweep (112 connected
// graph classes × 6 α × all nine concepts) at one worker vs all CPUs, plus
// the warm-cache path. On a multi-core machine the NumCPU variant should
// run ≥ 2× faster than the single worker; the differential tests in
// repro/internal/sweep prove the vectors are identical either way.

func sweepLatticeOptions(workers int, cache *bncg.SweepCache) bncg.SweepOptions {
	return bncg.SweepOptions{
		N: 6,
		Alphas: []bncg.Alpha{
			bncg.Alpha2(1, 2), bncg.AlphaInt(1), bncg.Alpha2(3, 2),
			bncg.AlphaInt(2), bncg.AlphaInt(3), bncg.AlphaInt(5),
		},
		Concepts: bncg.Concepts(),
		Workers:  workers,
		Cache:    cache,
	}
}

func benchSweepLattice(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// A fresh cache per iteration keeps every iteration a full
		// computation rather than a cache replay.
		res, err := bncg.RunSweep(context.Background(), sweepLatticeOptions(workers, bncg.NewSweepCache()))
		if err != nil {
			b.Fatal(err)
		}
		if res.Graphs != 112 {
			b.Fatalf("enumerated %d graph classes, want 112", res.Graphs)
		}
	}
}

// BenchmarkSweepEvaluatorN8 measures one bound stability scan of the seven
// sweep-feasible concepts over C8 at α=5 — the zero-allocation bitset
// evaluator hot path. allocs/op must stay 0; the allocation-regression
// tests in repro/internal/eq and the CI benchmark gate both guard it.
func BenchmarkSweepEvaluatorN8(b *testing.B) {
	gm, err := bncg.NewGame(8, bncg.AlphaInt(5))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Cycle(8)
	concepts := []bncg.Concept{bncg.RE, bncg.BAE, bncg.PS, bncg.BSwE, bncg.BGE, bncg.BNE, bncg.TwoBSE}
	ev := bncg.NewEvaluator()
	// Warm every scratch buffer with one full scan, so allocs/op is 0 even
	// at -benchtime 1x.
	ev.Bind(gm, g)
	for _, c := range concepts {
		ev.CheckBound(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Bind(gm, g)
		for _, c := range concepts {
			if !ev.CheckBound(c).Stable {
				b.Fatal("C8 at α=5 should be stable for every checked concept")
			}
		}
	}
}

func BenchmarkSweepLatticeN6_Workers1(b *testing.B) { benchSweepLattice(b, 1) }

func BenchmarkSweepLatticeN6_WorkersNumCPU(b *testing.B) { benchSweepLattice(b, runtime.NumCPU()) }

// BenchmarkStoreWarmStart measures the cross-run replay path the verdict
// store adds: opening a store holding a Full-scale lattice sweep's worth
// of verdicts (112 graph classes × 6 α × 9 concepts = 6048 records) and
// warm-starting a fresh cache from it — the cost a process pays before
// its first sweep is served from disk instead of recomputed.
func BenchmarkStoreWarmStart(b *testing.B) {
	dir := b.TempDir()
	st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rec := func(i int) bncg.StoreRecord {
		return bncg.StoreRecord{
			// Canonical keys of n=6 graphs are 15 bytes over {0x00, 0x01}.
			Canon:   string([]byte{0, 1, 0, 1, 0, 1, 0, byte(i), byte(i >> 8), 1, 0, 1, 0, 1, 0}),
			Num:     int64(i%6 + 1),
			Den:     int64(i%2 + 1),
			Concept: uint8(i%9 + 1),
			Stable:  i%3 == 0,
		}
	}
	const records = 112 * 6 * 9
	for i := 0; i < records; i++ {
		if err := st.Put(rec(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cache := bncg.NewSweepCache()
		if loaded := cache.WarmStart(st); loaded == 0 {
			b.Fatal("warm start loaded nothing")
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepLatticeN6_WarmCache(b *testing.B) {
	cache := bncg.NewSweepCache()
	if _, err := bncg.RunSweep(context.Background(), sweepLatticeOptions(runtime.NumCPU(), cache)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bncg.RunSweep(context.Background(), sweepLatticeOptions(runtime.NumCPU(), cache))
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 {
			b.Fatalf("warm sweep recomputed %d verdicts", res.Misses)
		}
	}
}

// BenchmarkSweepGridScaling pins the O(1)-per-α claim of the certificate
// engine: the same n=5 classes swept cold (fresh cache) at 4, 16 and 64
// grid points must cost essentially the same, because per-class
// equilibrium work is one certificate per concept regardless of how many
// prices the grid reads off it. The CI benchmark-regression gate watches
// all three; G=64 staying within 2× of G=4 is the acceptance bar.

func benchSweepGrid(b *testing.B, points int) {
	b.Helper()
	alphas := make([]bncg.Alpha, points)
	for k := 1; k <= points; k++ {
		alphas[k-1] = bncg.Alpha2(int64(k), 2)
	}
	for i := 0; i < b.N; i++ {
		res, err := bncg.RunSweep(context.Background(), bncg.SweepOptions{
			N:        5,
			Alphas:   alphas,
			Concepts: bncg.Concepts(),
			Cache:    bncg.NewSweepCache(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Graphs != 21 {
			b.Fatalf("enumerated %d graph classes, want 21", res.Graphs)
		}
		if want := int64(21 * len(res.Concepts)); res.Certified != want {
			b.Fatalf("certified %d, want one per (class, concept) = %d", res.Certified, want)
		}
	}
}

func BenchmarkSweepGridScaling_G4(b *testing.B)  { benchSweepGrid(b, 4) }
func BenchmarkSweepGridScaling_G16(b *testing.B) { benchSweepGrid(b, 16) }
func BenchmarkSweepGridScaling_G64(b *testing.B) { benchSweepGrid(b, 64) }
