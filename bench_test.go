package bncg_test

import (
	"sync"
	"testing"

	bncg "repro"
)

// One benchmark per table row and figure of the paper (DESIGN.md §4).
// Each runs the corresponding experiment harness end to end; the first
// iteration logs the produced report so `go test -bench . -v` regenerates
// the paper's tables. A failing shape check fails the benchmark.

var reportOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bncg.Experiment(id, bncg.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllPass() {
			b.Fatalf("experiment %s failed checks: %v", id, rep.FailedChecks())
		}
		if _, logged := reportOnce.LoadOrStore(id, true); !logged {
			b.Logf("\n%s", rep)
		}
	}
}

// Table 1.

func BenchmarkTable1_PS(b *testing.B)   { benchExperiment(b, "T1-PS") }
func BenchmarkTable1_BSwE(b *testing.B) { benchExperiment(b, "T1-BSwE") }
func BenchmarkTable1_BGE(b *testing.B)  { benchExperiment(b, "T1-BGE") }
func BenchmarkTable1_BNE(b *testing.B)  { benchExperiment(b, "T1-BNE") }
func BenchmarkTable1_3BSE(b *testing.B) { benchExperiment(b, "T1-3BSE") }
func BenchmarkTable1_BSE(b *testing.B)  { benchExperiment(b, "T1-BSE") }

// Figures.

func BenchmarkFigure1a_Lattice(b *testing.B)    { benchExperiment(b, "F1a") }
func BenchmarkFigure1b_Venn(b *testing.B)       { benchExperiment(b, "F1b") }
func BenchmarkFigure2_CorboParkes(b *testing.B) { benchExperiment(b, "F2") }
func BenchmarkFigure3_Stretched(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkFigure4_Coalition(b *testing.B)   { benchExperiment(b, "F4") }
func BenchmarkFigure5_BNEGap(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkFigure6_2BSEGap(b *testing.B)     { benchExperiment(b, "F6") }
func BenchmarkFigure7_kBSEGap(b *testing.B)     { benchExperiment(b, "F7") }
func BenchmarkFigure8_AddGap(b *testing.B)      { benchExperiment(b, "F8") }

// Propositions, lemmas and supporting experiments.

func BenchmarkLemma24_Cycles(b *testing.B)       { benchExperiment(b, "L2.4") }
func BenchmarkProp316_LowAlpha(b *testing.B)     { benchExperiment(b, "P3.16") }
func BenchmarkProp322_NoFlat(b *testing.B)       { benchExperiment(b, "P3.22") }
func BenchmarkDynamics_Convergence(b *testing.B) { benchExperiment(b, "DYN") }

// Extensions: the open question on general graphs (Section 4), the
// unilateral-baseline comparison motivating the paper, and the Appendix B
// structural bounds.

func BenchmarkOpenQuestion_General(b *testing.B) { benchExperiment(b, "OQ-GENERAL") }
func BenchmarkBaseline_NCGCompare(b *testing.B)  { benchExperiment(b, "NCG-COMPARE") }
func BenchmarkAppendixB_Bounds(b *testing.B)     { benchExperiment(b, "APP-B") }

// Micro-benchmarks for the primitives the harness leans on.

func BenchmarkCheckPS_Star64(b *testing.B) {
	gm, err := bncg.NewGame(64, bncg.AlphaInt(3))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Star(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bncg.Check(gm, g, bncg.PS).Stable {
			b.Fatal("star unstable")
		}
	}
}

func BenchmarkCheckBNE_Path10(b *testing.B) {
	gm, err := bncg.NewGame(10, bncg.AlphaInt(7))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Path(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bncg.Check(gm, g, bncg.BNE)
	}
}

func BenchmarkCheckBSE_Cycle6(b *testing.B) {
	gm, err := bncg.NewGame(6, bncg.AlphaInt(5))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.Cycle(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bncg.Check(gm, g, bncg.BSE).Stable {
			b.Fatal("C6 at α=5 should be in BSE")
		}
	}
}

func BenchmarkTreeRho_100k(b *testing.B) {
	n := 100_000
	gm, err := bncg.NewGame(n, bncg.AlphaInt(int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	g := bncg.AlmostCompleteDAry(n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bncg.TreeRho(gm, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorstTreePS_n9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bncg.WorstTree(9, bncg.AlphaInt(9), bncg.PS); err != nil {
			b.Fatal(err)
		}
	}
}
