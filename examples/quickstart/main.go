// Quickstart: build a few networks, compute agent costs and the social
// cost ratio, and check which solution concepts each network satisfies.
package main

import (
	"fmt"
	"log"

	bncg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// n = 6 keeps the exact BSE check on the clique instantaneous; the
	// coalition move space grows as 2^(edges touching the coalition).
	const n = 6
	gm, err := bncg.NewGame(n, bncg.AlphaInt(3)) // 6 agents, edge price α = 3
	if err != nil {
		return err
	}

	networks := []struct {
		name string
		g    *bncg.Graph
	}{
		{name: "star (the social optimum for α ≥ 1)", g: bncg.Star(n)},
		{name: "path", g: bncg.Path(n)},
		{name: "cycle", g: bncg.Cycle(n)},
		{name: "clique", g: bncg.Clique(n)},
	}
	concepts := []bncg.Concept{bncg.RE, bncg.BAE, bncg.PS, bncg.BSwE, bncg.BGE, bncg.BNE, bncg.ThreeBSE, bncg.BSE}

	for _, nw := range networks {
		fmt.Printf("%s\n  %s\n", nw.name, nw.g)
		center := gm.AgentCost(nw.g, 0)
		fmt.Printf("  agent 0 cost: buys %d edges, total distance %d (scalar %.1f)\n",
			center.Buy, center.Dist, center.Value(gm.Alpha))
		fmt.Printf("  social cost ratio ρ = %.3f\n", gm.Rho(nw.g))
		fmt.Print("  stable for: ")
		for _, c := range concepts {
			if bncg.Check(gm, nw.g, c).Stable {
				fmt.Printf("%s ", c)
			}
		}
		fmt.Println()
		// Show the violating move for the weakest failed concept.
		for _, c := range concepts {
			if res := bncg.Check(gm, nw.g, c); !res.Stable {
				fmt.Printf("  first violation (%s): %v\n", c, res.Witness)
				break
			}
		}
		fmt.Println()
	}
	return nil
}
