// Separations: reproduce the witness gadgets that make the solution
// concept lattice of Figure 1a proper — including the refutation of the
// Corbo–Parkes conjecture (Proposition 2.3).
package main

import (
	"fmt"
	"log"

	bncg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Corbo–Parkes refutation: unilateral NE but not pairwise stable.
	f2 := bncg.NewFigure2()
	gm2, err := bncg.NewGame(f2.G.N(), bncg.AlphaInt(2))
	if err != nil {
		return err
	}
	o, err := bncg.NewOwnership(f2.G, f2.Owner)
	if err != nil {
		return err
	}
	fmt.Println("Proposition 2.3 (Figure 2): the Corbo–Parkes conjecture is false")
	fmt.Printf("  graph: %s at α=2\n", f2.G)
	fmt.Printf("  unilateral NE: %v\n", bncg.CheckUnilateralNE(gm2, f2.G, o).Stable)
	ps := bncg.Check(gm2, f2.G, bncg.PS)
	fmt.Printf("  pairwise stable: %v (bilateral move: %v)\n\n", ps.Stable, ps.Witness)

	// 2. BGE ⊊ PS: a tree where only a swap improves.
	st := bncg.SwapTree()
	gmS, err := bncg.NewGame(st.N(), bncg.AlphaInt(12))
	if err != nil {
		return err
	}
	sw := bncg.Check(gmS, st, bncg.BSwE)
	fmt.Println("BGE ⊊ PS: the swap tree at α=12")
	fmt.Printf("  PS: %v, BSwE: %v (swap: %v)\n\n",
		bncg.Check(gmS, st, bncg.PS).Stable, sw.Stable, sw.Witness)

	// 3. 2-BSE ⊊ BGE: K_{2,4} at α=5/4.
	k24 := bncg.CompleteBipartite(2, 4)
	gmK, err := bncg.NewGame(k24.N(), bncg.Alpha2(5, 4))
	if err != nil {
		return err
	}
	two := bncg.Check(gmK, k24, bncg.TwoBSE)
	fmt.Println("2-BSE ⊊ BGE: K_{2,4} at α=5/4")
	fmt.Printf("  BGE: %v, 2-BSE: %v (coalition: %v)\n\n",
		bncg.Check(gmK, k24, bncg.BGE).Stable, two.Stable, two.Witness)

	// 4. 3-BSE ⊊ 2-BSE: the path-into-star tree at α=17/4.
	tct := bncg.ThreeCoalitionTree()
	gmT, err := bncg.NewGame(tct.N(), bncg.Alpha2(17, 4))
	if err != nil {
		return err
	}
	three := bncg.Check(gmT, tct, bncg.ThreeBSE)
	fmt.Println("3-BSE ⊊ 2-BSE: the three-coalition tree at α=17/4")
	fmt.Printf("  2-BSE: %v, 3-BSE: %v (coalition: %v)\n\n",
		bncg.Check(gmT, tct, bncg.TwoBSE).Stable, three.Stable, three.Witness)

	// 5. BNE and k-BSE are incomparable: Figure 6 vs Figure 7.
	f6 := bncg.NewFigure6()
	gm6, err := bncg.NewGame(f6.G.N(), bncg.AlphaInt(7))
	if err != nil {
		return err
	}
	fmt.Println("BNE vs 2-BSE are incomparable:")
	fmt.Printf("  Figure 6 (α=7):  BNE=%v 2-BSE=%v\n",
		bncg.Check(gm6, f6.G, bncg.BNE).Stable,
		bncg.Check(gm6, f6.G, bncg.TwoBSE).Stable)
	f7 := bncg.NewFigure7(4)
	gm7, err := bncg.NewGame(f7.G.N(), bncg.AlphaInt(f7.AlphaNum()))
	if err != nil {
		return err
	}
	hubMove := bncg.Neighborhood{
		U:        f7.A,
		RemoveTo: append([]int(nil), f7.B...),
		AddTo:    append([]int(nil), f7.C...),
	}
	fmt.Printf("  Figure 7 (α=%d): BNE-violating hub move improves=%v 2-BSE=%v\n",
		f7.AlphaNum(),
		bncg.Improving(gm7, f7.G, hubMove),
		bncg.Check(gm7, f7.G, bncg.TwoBSE).Stable)
	return nil
}
