// PoA sweep: measure how the quality of worst-case equilibria changes with
// the edge price α and the amount of cooperation, reproducing the
// qualitative content of Table 1 on one screen.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	bncg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Exhaustive worst-case ρ over all trees on 9 nodes, per concept.
	const n = 9
	concepts := []bncg.Concept{bncg.PS, bncg.BSwE, bncg.BGE, bncg.BNE, bncg.ThreeBSE}
	alphas := []int64{1, 2, 4, 9, 16, 36, 81}

	fmt.Printf("worst-case ρ over all trees, n=%d\n", n)
	fmt.Printf("%8s", "alpha")
	for _, c := range concepts {
		fmt.Printf(" %8s", c)
	}
	fmt.Println()
	for _, a := range alphas {
		fmt.Printf("%8d", a)
		for _, c := range concepts {
			res, err := bncg.WorstTree(context.Background(), n, bncg.AlphaInt(a), c)
			if err != nil {
				return err
			}
			if res.Equilibria == 0 {
				fmt.Printf(" %8s", "-")
				continue
			}
			fmt.Printf(" %8.3f", res.Rho)
		}
		fmt.Println()
	}
	fmt.Println()

	// The stretched tree star family: the Θ(log α) lower-bound curve for
	// BGE (Theorem 3.10), certified stable by the exact checkers.
	fmt.Println("stretched tree star family (Theorem 3.10, k=1, t=α/15, η=α):")
	fmt.Printf("%8s %6s %8s %14s\n", "alpha", "n", "rho", "upper 2+2logα")
	for _, a := range []int64{60, 120, 240, 480} {
		ts, err := bncg.NewTreeStar(1, float64(a)/15, int(a))
		if err != nil {
			return err
		}
		gm, err := bncg.NewGame(ts.G.N(), bncg.AlphaInt(a))
		if err != nil {
			return err
		}
		for _, c := range []bncg.Concept{bncg.RE, bncg.BAE, bncg.BSwE} {
			if res := bncg.Check(gm, ts.G, c); !res.Stable {
				return fmt.Errorf("family member α=%d unexpectedly unstable for %s: %v", a, c, res.Witness)
			}
		}
		rho, err := bncg.TreeRho(gm, ts.G)
		if err != nil {
			return err
		}
		upper := 2 + 2*math.Log2(float64(a))
		fmt.Printf("%8d %6d %8.3f %14.3f\n", a, ts.G.N(), rho, upper)
	}
	return nil
}
