// Coalitions: demonstrate the paper's headline mechanism — a coalition of
// just 3 agents escaping a socially bad stable network (Lemma 3.14 /
// Figure 4), the move behind the constant Price of Anarchy of 3-BSE.
package main

import (
	"context"
	"fmt"
	"log"

	bncg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A deep double-armed tree: the hub holds many leaves and two long
	// paths. Pairwise deviations cannot shorten the arms, but the
	// three-agent coalition {x, z, z'} can.
	const (
		alphaInt = 30
		armLen   = 9 // 2q+3 for q = ceil(4α/n) = 3
		leaves   = 22
	)
	dd := bncg.NewDoubleDeep(armLen, leaves)
	g := dd.G
	gm, err := bncg.NewGame(g.N(), bncg.AlphaInt(alphaInt))
	if err != nil {
		return err
	}
	fmt.Printf("double-deep tree: n=%d, α=%d, two arms of length %d\n", g.N(), alphaInt, armLen)
	fmt.Printf("social cost ratio before: ρ = %.3f\n\n", gm.Rho(g))

	// The Lemma 3.14 coalition: x sits q+2 deep on arm A, y is its child,
	// z and z' sit 2q+3 deep on the two arms. The coalition adds xz and
	// zz' and drops xy.
	const q = 3
	x, y := dd.ArmA[q+1], dd.ArmA[q+2]
	z, zp := dd.ArmA[2*q+2], dd.ArmB[2*q+2]
	co := bncg.Coalition{
		Members:     []int{x, z, zp},
		RemoveEdges: []bncg.Edge{{U: x, V: y}},
		AddEdges:    []bncg.Edge{{U: x, V: z}, {U: z, V: zp}},
	}
	fmt.Printf("coalition move: %v\n", co)
	fmt.Printf("improves every member: %v\n", bncg.Improving(gm, g, co))

	undo, err := co.Apply(g)
	if err != nil {
		return err
	}
	fmt.Printf("social cost ratio after:  ρ = %.3f\n\n", gm.Rho(g))
	undo()

	// Contrast: no 2-agent deviation of the same shape exists — the
	// network is out of reach for pairwise-only cooperation once the swap
	// incentives of the hub are exhausted. The experiment suite (T1-3BSE)
	// quantifies this: 3-BSE trees have constant ρ while 2-BSE trees reach
	// Θ(log α).
	rep, err := bncg.Experiment(context.Background(), "T1-3BSE", bncg.Quick)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}
