// Dynamics: watch selfish agents form a network. Starting from a random
// connected graph, agents repeatedly perform strictly improving removals,
// bilateral additions and swaps until the network is a Bilateral Greedy
// Equilibrium, then the final state is verified with the exact checker.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	bncg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 12
		seed    = 2023 // PODC 2023
		samples = 6
	)
	rng := rand.New(rand.NewSource(seed))
	gm, err := bncg.NewGame(n, bncg.AlphaInt(4))
	if err != nil {
		return err
	}

	fmt.Printf("improving-response dynamics to BGE: n=%d, α=%s\n\n", n, gm.Alpha)
	for i := 0; i < samples; i++ {
		m := n - 1 + rng.Intn(n)
		g, err := bncg.RandomConnectedGraph(n, m, rng)
		if err != nil {
			return err
		}
		startRho := gm.Rho(g)
		tr, err := bncg.RunDynamics(context.Background(), gm, g, bncg.DynamicsOptions{
			Kinds: []bncg.DynamicsKind{bncg.RemoveKind, bncg.AddKind, bncg.SwapKind},
			Rng:   rng,
		})
		if err != nil {
			return err
		}
		verified := bncg.Check(gm, g, bncg.BGE).Stable
		fmt.Printf("run %d: m0=%-2d  ρ %.3f -> %.3f in %2d moves (converged=%v, exact BGE=%v)\n",
			i+1, m, startRho, gm.Rho(g), tr.Steps, tr.Converged, verified)
		if tr.Steps > 0 {
			fmt.Printf("       first move: %v, last move: %v\n",
				tr.History[0], tr.History[len(tr.History)-1])
		}
	}

	fmt.Println("\nobservation: the dynamics land on near-optimal equilibria (ρ close")
	fmt.Println("to 1) even though the worst-case PS PoA at this α is much higher —")
	fmt.Println("run `bncg poa -n 10 -alpha 4 -concept PS` to compare.")
	return nil
}
