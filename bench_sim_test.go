package bncg_test

import (
	"context"
	"math/rand"
	"testing"

	bncg "repro"
)

// The v10 dynamics benchmarks: the incremental-distance engine against
// the full-recompute oracle on the same fixed starting states, and the
// simulate batch end to end. The acceptance bar for the engine is ≥5×
// fewer ns/op than the Full baseline at n=256 (BENCH_sim.json records
// ~10× on the reference machine).

// benchDynamicsStep runs a fixed number of improving moves from a frozen
// random connected start; the per-iteration clone is excluded from the
// timer, so ns/op measures the engine alone.
func benchDynamicsStep(b *testing.B, n int, full bool) {
	rng := rand.New(rand.NewSource(31))
	start, err := bncg.RandomConnectedGraph(n, 2*n, rng)
	if err != nil {
		b.Fatal(err)
	}
	gm, err := bncg.NewGame(n, bncg.Alpha2(3, 1))
	if err != nil {
		b.Fatal(err)
	}
	opts := bncg.DynamicsOptions{
		Kinds:         []bncg.DynamicsKind{bncg.RemoveKind, bncg.AddKind},
		MaxSteps:      8,
		FullRecompute: full,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := start.Clone()
		opts.Rng = rand.New(rand.NewSource(int64(i)))
		b.StartTimer()
		if _, err := bncg.RunDynamics(context.Background(), gm, g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicsStepN64(b *testing.B)      { benchDynamicsStep(b, 64, false) }
func BenchmarkDynamicsStepN64Full(b *testing.B)  { benchDynamicsStep(b, 64, true) }
func BenchmarkDynamicsStepN256(b *testing.B)     { benchDynamicsStep(b, 256, false) }
func BenchmarkDynamicsStepN256Full(b *testing.B) { benchDynamicsStep(b, 256, true) }

// BenchmarkSimulateBatch runs the whole simulate stack — init sampling,
// worker pool, per-trajectory dynamics, topology stats, summaries — as
// one op. MaxSteps bounds each trajectory so the op does a fixed amount
// of dynamics work (the α=2 trajectories converge inside the bound; the
// clique-building α=1/2 ones are cut off) and the gate measures engine
// throughput, not convergence-length variance.
func BenchmarkSimulateBatch(b *testing.B) {
	opts := bncg.SimOptions{
		N:            64,
		Alphas:       []bncg.Alpha{bncg.Alpha2(1, 2), bncg.Alpha2(2, 1), bncg.Alpha2(100, 1)},
		Trajectories: 4,
		MaxSteps:     100,
		Seed:         7,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bncg.Simulate(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed || len(res.Items) != 12 {
			b.Fatalf("batch: completed=%v items=%d", res.Completed, len(res.Items))
		}
	}
}
