// Package bncg is a library for the Bilateral Network Creation Game of
// Corbo and Parkes, reproducing "The Impact of Cooperation in Bilateral
// Network Creation" (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023).
//
// Agents are nodes of an undirected graph; an edge exists only if both
// endpoints pay the edge price α for it. Each agent minimizes
// α·(edges bought) + Σ_v dist(u, v). The library provides:
//
//   - exact, witness-producing equilibrium checkers for every solution
//     concept of the paper: RE, BAE, PS, BSwE, BGE, BNE, k-BSE and BSE,
//     plus the unilateral NCG's RE/AE/NE for the Section 2 comparisons;
//   - exact rational cost arithmetic (no floating point in stability
//     decisions) with the paper's disconnection semantics;
//   - the lower-bound constructions: stretched binary trees, stretched
//     tree stars, d-ary trees, cycles and the witness gadgets of
//     Figures 2 and 5–8;
//   - Price-of-Anarchy machinery: closed-form bounds of Sections 3.2–3.3
//     and exhaustive worst-case search over all small trees and graphs;
//   - a parallel sweep engine (RunSweep) that shards the isomorphism-free
//     enumeration streams across a worker pool and memoizes stability
//     verdicts in a canonical-form cache; the exhaustive experiments and
//     the PoA searches run on it, and a differential test harness pins its
//     vectors to the sequential checkers bit for bit (see EXPERIMENTS.md);
//   - improving-response dynamics converging to PS/BGE states;
//   - one experiment runner per table row and figure of the paper
//     (package repro/internal/experiments, surfaced via Experiment);
//   - a persistent verdict store (OpenStore) and an HTTP serving daemon
//     (NewServer, `bncg serve`) that turn the sweep cache into a durable,
//     network-served resource — see "The v3 API" below.
//
// # Quick start
//
//	gm, _ := bncg.NewGame(6, bncg.Alpha2(3, 1)) // 6 agents, α = 3
//	star := bncg.Star(6)
//	res := bncg.Check(gm, star, bncg.PS)        // res.Stable == true
//	rho := gm.Rho(star)                          // 1.0: the social optimum
//
// # The v2 API: contexts, iterators, streaming
//
// Every long-running entry point takes a context.Context as its first
// argument: RunSweep, StreamSweep, WorstTree, WorstGraph, Experiment,
// RunDynamics and SampleDynamics. The context contract is uniform:
//
//   - Cancellation is honored within one task granularity (one (α, graph)
//     stability evaluation for sweeps and PoA searches, one improving move
//     for dynamics). Workers drain without leaking goroutines.
//   - On cancellation the partial result computed so far is returned
//     together with ctx.Err(): a sweep's Result has Completed < len(Items)
//     with the finished entries filled in, a PoAResult reduces the
//     completed portion, a dynamics Trace holds the moves applied, and an
//     Experiment report contains the rows produced before the cut.
//   - A nil context is treated as context.Background().
//
// Enumeration is iterator-first: AllGraphs and AllFreeTrees return
// iter.Seq2[*Graph, string] (graph, canonical key) sequences supporting
// early break, which stops the underlying generation immediately. The
// callback enumerators of v1 remain as thin shims over them.
//
// Streaming: StreamSweep (or SweepOptions.OnItem under RunSweep) delivers
// sweep items incrementally in exactly the deterministic α-major order of
// SweepResult.Items — byte-identical at every worker count — while workers
// keep computing ahead; SweepOptions.Progress reports completed/total task
// counts. SweepResult and ExperimentReport marshal to stable JSON (exact
// rational α strings, concept names, snake_case keys), which `bncg sweep
// -json`, `bncg experiment -json` and `bncg poa -json` expose on the
// command line.
//
// # The v3 API: persistence and serving
//
// Stability verdicts are pure functions of (canonical form, exact α,
// concept), so the in-memory sweep cache extends naturally to disk and to
// the network:
//
//   - OpenStore opens an append-only, sharded, CRC-framed verdict store.
//     SweepCache.WarmStart replays it into a cache at startup and
//     SweepCache.Persist registers it as the cache's write-behind sink, so
//     every verdict any sweep, PoA search or check computes becomes
//     durable (fsync-batched) and pre-warms every later run — the ~121×
//     warm-replay win across processes and machines. The store recovers
//     from crashes by truncating torn segment tails; Compact rewrites
//     segments dropping superseded frames.
//   - `bncg sweep -store <dir>` wires all of that up on the command line
//     and checkpoints grid progress (VerdictStore.SaveCheckpoint);
//     `bncg sweep -store <dir> -resume` continues an interrupted grid from
//     the checkpoint and finishes with byte-identical Items and Report.
//   - NewServer / `bncg serve` expose the engine over HTTP: /v1/sweep
//     streams items as NDJSON in the deterministic StreamSweep order,
//     /v1/poa answers Price-of-Anarchy searches, /v1/check verdicts an
//     uploaded graph, and /healthz reports cache (SweepCache.Stats),
//     store and traffic statistics. Identical in-flight requests are
//     deduplicated (singleflight); a request abandoned by every client is
//     cancelled and its workers drain. Per-request deadlines and n caps
//     ride on the v2 context plumbing.
//
// # The v4 hot path: bitset kernel, symmetry pruning, benchmark gating
//
// Everything the engine computes bottoms out in BFS distance sums and
// deviation scans, so v4 rebuilt that layer:
//
//   - Graphs up to 512 nodes maintain a dense []uint64 bitset mirror of
//     their adjacency alongside the sorted neighbor lists. BFS frontiers
//     advance word-at-a-time, edge queries are a single AND, and
//     Graph.BFSScratchInto traverses with caller-owned scratch. The
//     equilibrium checkers scan deviations by mutating edges in place with
//     per-Evaluator scratch buffers: a stability check at sweep sizes
//     allocates nothing (a NewEvaluator can be bound to a state with Bind
//     and queried per concept with CheckBound; Evaluator.Rho is the
//     allocation-free social-cost ratio).
//   - Enumeration is symmetry-pruned: AllGraphClasses and
//     AllFreeTreeClasses yield one representative per isomorphism class —
//     the same representative, in the same order, as ever — by rejecting
//     non-minimal labelings with an early-aborting automorphism search
//     instead of canonicalizing and deduplicating every labeled graph,
//     and report each class's orbit size n!/|Aut| (GraphClass).
//   - The performance trajectory in BENCH_sweep.json (a JSON array of
//     recorded `go test -bench` runs; see cmd/benchjson) is enforced by
//     CI: `benchjson -compare old.json new.json -max-regress 25%` diffs
//     the latest entries per benchmark and fails the build past the
//     threshold, so ns/op and allocs/op regressions on the sweep and
//     store hot paths cannot land silently.
//
// # The v5 engine: parametric α-interval certificates
//
// Every verdict in the paper's Table 1 is a threshold phenomenon: costs
// compare by the α-linear form num·Buy + den·Dist, so each deviation
// improves its actors on exactly one rational α-interval (breakpoint
// α* = −ΔDist/ΔBuy), and a state's stable-α set is the complement of a
// finite interval union. v5 computes that object directly:
//
//   - Certify (and Evaluator.Certify/CertifyBound) run the deviation
//     scans once, collecting each deviation's improving interval in exact
//     int64 rational arithmetic, and return an AlphaSet: sorted disjoint
//     intervals over [0, ∞) with open/closed endpoints (stable sets are
//     closed at breakpoints — indifference is stability — and may be
//     degenerate single prices), an O(log B) Contains query, and exact
//     Breakpoints. A scan aborts early once the improving union covers
//     the whole axis.
//   - RunSweep is certificate-backed: the task unit is one graph class,
//     one certificate per concept answers the entire α-grid, and
//     per-class equilibrium work is independent of grid density
//     (BenchmarkSweepGridScaling: a 64-point cold grid costs the same as
//     a 4-point one). SweepResult gains Certs, Certified and Critical —
//     the exact rational thresholds at which each concept's Table 1 row
//     flips — rendered by Result.CriticalReport, `bncg sweep -exact`, the
//     new `bncg critical` subcommand and the /v1/critical endpoint.
//   - The verdict store persists certificate records alongside legacy
//     per-α verdicts (one record per class and concept instead of one per
//     grid point); WarmStart replays both — certificates warm the sweep
//     engine, per-α verdicts warm /v1/check (sweeps over a pre-v5 store
//     re-certify once, then run from certificates) — `store stats`
//     reports counts per record type, and Compact folds verdict rows
//     subsumed by a certificate. /v1/check answers any α — gridded or
//     not — from a cached certificate.
//   - FuzzCertificateAgreement pins Certify(...).Contains(α) to the
//     per-α checkers over a dense rational grid including every
//     certificate's own breakpoints and their midpoints.
//
// # v6: the production-hardened daemon
//
// bncg serve graduates from a demo front end to an operable service,
// proven by an in-repo load-test harness:
//
//   - GET /metrics exposes hand-rolled Prometheus text exposition (no
//     client dependency): per-route request counters by status code,
//     per-route latency histograms (100µs–10s buckets), in-flight and
//     queue gauges, admission rejections by reason, the cache hit ratio,
//     singleflight and store statistics, and replica re-warm counters.
//   - Admission control sheds load before work starts: per-client
//     token-bucket rate limiting (-rate/-burst, keyed by remote IP), a
//     global concurrent-request cap with a bounded FIFO queue
//     (-max-inflight/-max-queue/-queue-wait). Over-budget clients get an
//     immediate 429 with Retry-After, a full queue a fast 429, an expired
//     queue wait a 503 — all in the pinned JSON error schema
//     {"error": "...", "status": N} that every endpoint's every failure
//     mode now shares. /healthz and /metrics bypass admission, so a
//     saturated daemon stays observable.
//   - bncg serve -readonly is a read replica: it opens the shared store
//     directory without the single-writer flock, warm-starts, and
//     re-warms on a ticker (-rewarm-interval) via Store.Refresh — an
//     incremental decode of exactly the frames the writer flushed since
//     the last pass, tolerating torn tails (retried next tick) and
//     writer compactions (detected by segment shrink, full rebuild).
//     Verdicts and certificates are pure functions of their keys, so
//     replicas converge without any invalidation protocol; the replica
//     answers byte-identically to the writer for every persisted
//     (class, concept, α).
//   - cmd/loadgen is a wrk-style HTTP driver (concurrency, duration or
//     request budget, latency percentiles, JSON summaries) and
//     BenchmarkServeCheck* measure the certified-cache /v1/check hot
//     path end to end over HTTP; their trajectory lives in BENCH_http.json
//     and is gated in CI next to the sweep benchmarks, after a loadgen
//     smoke against the real booted daemon.
//   - The store grew a fault-injection seam (Options.WrapSegmentWriter):
//     failing write/sync paths drive the flush-failure accounting that
//     /healthz surfaces as "degraded" — the daemon serves stale from
//     memory and recovers losslessly once the fault heals.
//
// # v7: the distributed sweep fleet
//
// One process per grid stops scaling at n=7 (853 connected classes, nine
// exponential-checker concepts), so v7 shards the sweep across processes:
//
//   - The pruned class stream is deterministic, so a contiguous position
//     range [start, end) is a well-defined unit of work:
//     SweepOptions.ClassStart/ClassEnd restrict a sweep to one range and
//     CountSweepClasses prices a grid without materializing it.
//   - internal/fleet is lease-based coordination over a shared directory:
//     PlanFleet cuts the stream into ranges and persists a lease table
//     (fleet.json, flock-guarded atomic read-modify-write — the same
//     discipline as the store's checkpoint). Each range carries owner,
//     epoch and heartbeat deadline; ClaimFleetRange grants the first
//     pending or expired range (stealing bumps the epoch, so a stalled
//     owner's later heartbeat or completion fails with ErrFleetLeaseLost
//     instead of corrupting a successor's work), and ReclaimFleet returns
//     expired leases to the pool.
//   - `bncg worker` (RunFleetWorker) loops claim → certify → flush own
//     store shard → complete, heartbeating at TTL/3 in the background.
//     The flush lands before the completion mark, so a done range is a
//     durable range; a worker killed mid-lease costs only the TTL wait.
//   - `bncg fleet` is the coordinator: plan once, then monitor and
//     reclaim until done; `bncg store merge` folds the shards into one
//     canonical store via VerdictStore.Ingest — certificates are pure
//     functions of (class, concept), so overlap from reclaimed ranges
//     folds as duplicates while any contradiction fails the merge loudly.
//     `bncg store dump` renders a store in deterministic order, making
//     "merged fleet ≡ single process" a byte-diff; CI runs that drill,
//     plus a kill -9 variant, on every push.
//   - The checkpoint schema is now versioned (SweepCheckpointVersion):
//     the lease table embeds the grid spec as a Checkpoint, legacy
//     unversioned checkpoints still resume, and future generations are
//     rejected instead of misread.
//
// # v8: compute-plane observability
//
// The fleet made "where does the time go?" a distributed question, so v8
// adds internal/obs, a zero-dependency observability layer threaded
// through the whole compute plane:
//
//   - Span tracing: Tracer appends NDJSON frames (one header, then spans
//     and events) with a deterministic schema — hand-built field order,
//     sorted attribute keys, microsecond timestamps — so a fixed-seed
//     single-worker sweep replays byte-identically (pinned by test). The
//     sweep engine records enumerate/class/certify/cache_write spans, the
//     store records flush/checkpoint/compact, and the fleet worker records
//     warmstart/claim/wait/range/complete plus heartbeats and steal
//     events. `-trace <file>` on sweep, worker, and fleet turns it on;
//     a nil Tracer costs one pointer check per class (the attr maps are
//     only built when a frame will be written — gated in BENCH_sweep.json).
//   - `bncg trace` reads one or more trace files (shards merge by source)
//     under a strict parser — unknown fields, missing attrs, and bad
//     frames are loud per-line errors, which is what the nightly schema
//     gate relies on — and reports inclusive stage totals, the top-K
//     slowest classes with per-concept certify durations, and a
//     per-worker timeline whose lanes are union-of-intervals busy time
//     with steals marked; `-json` emits the full TraceReport.
//   - Worker metrics: the hand-rolled Prometheus registry moved out of
//     internal/server into obs (counters, labeled vectors, gauges,
//     histograms; text exposition 0.0.4), and ComputeMetrics instruments
//     the sweep/fleet plane: classes certified and cached, certify
//     latency histogram, cache hits/misses, store flush bytes/failures,
//     and live lease epoch/deadline gauges. `bncg sweep` and
//     `bncg worker` serve the same exposition on a `-metrics-addr`
//     sidecar; `-pprof` mounts net/http/pprof there, and on the serve
//     daemon (where profiler routes pass through admission like any
//     other). LintExposition validates every HELP/TYPE/sample line —
//     name charsets, type consistency, histogram bucket monotonicity and
//     cumulativity — and both the server's /metrics and the compute
//     exposition must pass it in tests.
//   - `bncg fleet status` is a read-only, lock-free snapshot of the lease
//     table (pending/leased/done per range, owners, deadlines, reclaim
//     counts) safe to run against a live fleet directory, with `-json`.
//
// # v9: one certificate engine, many games
//
// Every layer below assumed the paper's exact rules: bilateral consent,
// SUM distances, one price for everyone. v9 turns those rules into data.
// GameVariant is a value descriptor — consent mode
// (ConsentBilateral/ConsentUnilateral), distance aggregate
// (DistSum/DistMax), and per-agent price multipliers — whose zero value
// is the paper's game, threaded through the whole stack:
//
//   - The equilibrium engine takes the variant on game.Game; eq.Check and
//     eq.Certify evaluate deviations under the variant's consent rule,
//     aggregate distances by SUM or eccentricity, and scale each agent's
//     buy cost by its multiplier — certificates stay exact rationals
//     (under DistMax, fractional critical prices like α = 1/3 are real;
//     see EXPERIMENTS.md).
//   - ParseVariant gives the descriptor one textual grammar —
//     "unilateral", "max", "mul:AGENT=P/Q", comma-joined — used by the
//     -variant flag on sweep/critical/serve/fleet/worker (one shared
//     flag-set helper defines it once) and the ?variant= query parameter
//     on /v1/check, /v1/critical and /v1/sweep; serve -variant sets the
//     daemon's default, requests override per call.
//   - The sweep cache and verdict store key records by variant. Non-default
//     records persist as extended frames (codec version 2); legacy frames
//     decode as the default variant, default-variant writes still emit
//     byte-identical legacy frames, and cross-variant stores merge safely
//     because the variant is part of every record identity.
//   - internal/ncg's independently-written unilateral NCG, formerly only a
//     differential-testing oracle, is now a shim over the unilateral
//     variant — and the variant is the engine's own implementation, swept,
//     certified, persisted and served like the paper's game.
//
// The compatibility contract is byte-exact and machine-enforced: at the
// default variant every output — text reports, JSON modulo the new
// schema_version/variant fields (SchemaVersion stamps every public JSON
// payload), store frames, dumps — matches the pre-variant binary, pinned
// by a golden differential harness in tier-1 and fuzzed at the codec and
// engine layers.
//
// # v10: incremental-distance dynamics and the large-n stochastic workload
//
// Enumeration certifies every class exactly and dies at n≈7. v10 adds the
// complementary instrument: sampling. Improving-response dynamics run to
// their fixed points (exactly the PS/BGE states for the chosen move set)
// from random initial states at n = 50–500, where the bottleneck was the
// old engine's fresh BFS per candidate probe.
//
//   - graph.IncDist is an incremental all-pairs distance kernel: n int32
//     rows plus per-source aggregates (finite-distance sum, unreachable
//     count), repaired under single edge toggles instead of recomputed.
//     Adds repair by a pruned partial BFS wave from the improved endpoint;
//     removals use a Ramalingam–Reps style two-phase repair (level-ordered
//     affected-set cascade, then a bucket-queue unit-Dijkstra seeded from
//     the unaffected boundary). Repairs touching more than a threshold of
//     nodes fall back to a fresh BFS of that row. Correctness is pinned
//     differentially: a table test, a randomized toggle test, and
//     FuzzIncrementalDistance compare every repaired row against fresh
//     BFS after every toggle (CI smoke + nightly rotation).
//   - internal/dynamics now probes candidates through the kernel: flip the
//     edge, repair only the actors' rows, read costs from aggregates, flip
//     back. Candidate scans reuse a persistent pair pool (zero allocations
//     at steady state, pinned by test), and three schedulers pick the scan
//     policy — uniform, round-robin, and a breakpoint-guided scheduler
//     that commits the move whose improving α-interval (via eq.Certify's
//     interval arithmetic) has maximal margin around the current price.
//     The old evaluator path survives verbatim as Options.FullRecompute,
//     the differential oracle and benchmark baseline: ~9× more ns/op and
//     ~4000× more allocs/op at n=256 (BENCH_sim.json, gated ≥5× in CI).
//   - internal/sim batches trajectories across an α grid from seeded
//     random initial states (connectivity-patched Erdős–Rényi, uniform
//     Prüfer trees, stars): per-trajectory seeds derive via a splitmix64
//     finalizer from (base seed, grid coordinates), workers run in
//     parallel, and results stream in global index order — the report is
//     a pure function of the options, byte-identical at any worker count
//     (gated in CI by run-twice diffs). Per-α summaries aggregate
//     convergence steps (mean/p50/p95/max), final-topology statistics
//     (edges, diameter, tree/star shares) and ρ against the social
//     optimum.
//   - `bncg simulate` is the CLI face (α grid, trajectories, init family,
//     ps|bge move set, scheduler, seed, -json, the usual -trace and
//     -metrics-addr sidecar); GET /v1/simulate streams the same batch as
//     NDJSON under the daemon's admission control, with MaxSimN and
//     MaxTrajectories caps and per-route metrics. Three new instrument
//     families record trajectory outcomes, step counts and latencies.
//
// See the examples directory for runnable programs and EXPERIMENTS.md for
// the recorded reproduction results, the file format of the verdict
// store, the NDJSON/JSON schemas of the serving endpoints, the
// before/after numbers of the v4 kernel, the exact critical-α tables
// of the v5 certificate engine, the n=7 fleet sweep recipe, the traced
// stage breakdowns of the v8 observability layer, the v9 unilateral
// and MAX-distance editions of Table 1, and the v10 sampled
// convergence-step and equilibrium-topology distributions beyond
// enumeration reach.
package bncg
