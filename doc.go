// Package bncg is a library for the Bilateral Network Creation Game of
// Corbo and Parkes, reproducing "The Impact of Cooperation in Bilateral
// Network Creation" (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023).
//
// Agents are nodes of an undirected graph; an edge exists only if both
// endpoints pay the edge price α for it. Each agent minimizes
// α·(edges bought) + Σ_v dist(u, v). The library provides:
//
//   - exact, witness-producing equilibrium checkers for every solution
//     concept of the paper: RE, BAE, PS, BSwE, BGE, BNE, k-BSE and BSE,
//     plus the unilateral NCG's RE/AE/NE for the Section 2 comparisons;
//   - exact rational cost arithmetic (no floating point in stability
//     decisions) with the paper's disconnection semantics;
//   - the lower-bound constructions: stretched binary trees, stretched
//     tree stars, d-ary trees, cycles and the witness gadgets of
//     Figures 2 and 5–8;
//   - Price-of-Anarchy machinery: closed-form bounds of Sections 3.2–3.3
//     and exhaustive worst-case search over all small trees and graphs;
//   - a parallel sweep engine (RunSweep) that shards the isomorphism-free
//     enumeration streams across a worker pool and memoizes stability
//     verdicts in a canonical-form cache; the exhaustive experiments and
//     the PoA searches run on it, and a differential test harness pins its
//     vectors to the sequential checkers bit for bit (see EXPERIMENTS.md);
//   - improving-response dynamics converging to PS/BGE states;
//   - one experiment runner per table row and figure of the paper
//     (package repro/internal/experiments, surfaced via Experiment).
//
// # Quick start
//
//	gm, _ := bncg.NewGame(6, bncg.Alpha2(3, 1)) // 6 agents, α = 3
//	star := bncg.Star(6)
//	res := bncg.Check(gm, star, bncg.PS)        // res.Stable == true
//	rho := gm.Rho(star)                          // 1.0: the social optimum
//
// # The v2 API: contexts, iterators, streaming
//
// Every long-running entry point takes a context.Context as its first
// argument: RunSweep, StreamSweep, WorstTree, WorstGraph, Experiment,
// RunDynamics and SampleDynamics. The context contract is uniform:
//
//   - Cancellation is honored within one task granularity (one (α, graph)
//     stability evaluation for sweeps and PoA searches, one improving move
//     for dynamics). Workers drain without leaking goroutines.
//   - On cancellation the partial result computed so far is returned
//     together with ctx.Err(): a sweep's Result has Completed < len(Items)
//     with the finished entries filled in, a PoAResult reduces the
//     completed portion, a dynamics Trace holds the moves applied, and an
//     Experiment report contains the rows produced before the cut.
//   - A nil context is treated as context.Background().
//
// Enumeration is iterator-first: AllGraphs and AllFreeTrees return
// iter.Seq2[*Graph, string] (graph, canonical key) sequences supporting
// early break, which stops the underlying generation immediately. The
// callback enumerators of v1 remain as thin shims over them.
//
// Streaming: StreamSweep (or SweepOptions.OnItem under RunSweep) delivers
// sweep items incrementally in exactly the deterministic α-major order of
// SweepResult.Items — byte-identical at every worker count — while workers
// keep computing ahead; SweepOptions.Progress reports completed/total task
// counts. SweepResult and ExperimentReport marshal to stable JSON (exact
// rational α strings, concept names, snake_case keys), which `bncg sweep
// -json`, `bncg experiment -json` and `bncg poa -json` expose on the
// command line.
//
// See the examples directory for runnable programs and EXPERIMENTS.md for
// the recorded reproduction results and the JSON schemas.
package bncg
