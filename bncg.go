package bncg

import (
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/eq"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
	"repro/internal/ncg"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Core model types.
type (
	// Graph is an undirected simple graph on nodes 0..n-1.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Alpha is the exact rational edge price α.
	Alpha = game.Alpha
	// Game couples an agent count with an edge price.
	Game = game.Game
	// Cost is an agent's exact lexicographic cost.
	Cost = game.Cost
	// Ownership assigns each edge of a unilateral NCG state to its buyer.
	Ownership = game.Ownership
)

// Moves and verdicts.
type (
	// Move is a reversible strategy change.
	Move = move.Move
	// Remove, Add, Swap, Neighborhood and Coalition are the move kinds of
	// the solution concepts.
	Remove       = move.Remove
	Add          = move.Add
	Swap         = move.Swap
	Neighborhood = move.Neighborhood
	Coalition    = move.Coalition
	// Concept identifies a solution concept.
	Concept = eq.Concept
	// Result is a stability verdict with a violating witness move.
	Result = eq.Result
)

// The solution concepts, in the paper's order of increasing cooperation.
const (
	RE       = eq.RE
	BAE      = eq.BAE
	PS       = eq.PS
	BSwE     = eq.BSwE
	BGE      = eq.BGE
	BNE      = eq.BNE
	TwoBSE   = eq.TwoBSE
	ThreeBSE = eq.ThreeBSE
	BSE      = eq.BSE
)

// Graph constructors.
var (
	// NewGraph returns an empty graph on n nodes.
	NewGraph = graph.New
	// FromEdges builds a graph from an edge list.
	FromEdges = graph.FromEdges
	// DecodeGraph parses the plain text edge-list format.
	DecodeGraph = graph.Decode
	// EncodeGraph renders a graph in the plain text edge-list format.
	EncodeGraph = graph.Encode
	// Star and Clique are the social optima for α >= 1 and α < 1.
	Star   = game.Star
	Clique = game.Clique
	// RandomTree and RandomConnectedGraph sample starting states for
	// dynamics; both take an explicit *rand.Rand for reproducibility.
	RandomTree           = graph.RandomTree
	RandomConnectedGraph = graph.RandomConnectedGraph
	// Path, Cycle and AlmostCompleteDAry are the baseline families.
	Path               = construct.Path
	Cycle              = construct.Cycle
	AlmostCompleteDAry = construct.AlmostCompleteDAry
	// NewStretched and NewTreeStar build the paper's lower-bound families.
	NewStretched = construct.NewStretched
	NewTreeStar  = construct.NewTreeStar
	// The witness gadgets of Section 2 and Figures 2 and 5–8.
	NewFigure2 = construct.NewFigure2
	NewFigure5 = construct.NewFigure5
	NewFigure6 = construct.NewFigure6
	NewFigure7 = construct.NewFigure7
	Figure8    = construct.Figure8
	// NewDoubleDeep builds the Lemma 3.14 / Figure 4 gadget.
	NewDoubleDeep = construct.NewDoubleDeep
	// Spider builds a multi-leg path star.
	Spider = construct.Spider
	// The Figure 1a separation witnesses recovered by search.
	SwapTree           = construct.SwapTree
	CompleteBipartite  = construct.CompleteBipartite
	ThreeCoalitionTree = construct.ThreeCoalitionTree
)

// NewOwnership builds a unilateral NCG edge assignment.
var NewOwnership = game.NewOwnership

// Game constructors.
var (
	// NewGame returns the BNCG on n agents at edge price alpha.
	NewGame = game.NewGame
	// NewAlpha returns the exact edge price num/den.
	NewAlpha = game.NewAlpha
)

// AlphaInt returns the integer edge price n; it panics for n < 0.
func AlphaInt(n int64) Alpha { return game.A(n) }

// Alpha2 returns the edge price num/den; it panics on invalid input.
func Alpha2(num, den int64) Alpha { return game.AFrac(num, den) }

// Unilateral NCG baseline.
var (
	// NCGBestResponse computes an exhaustive best response in the
	// unilateral game.
	NCGBestResponse = ncg.BestResponse
	// NCGExistsNEOwnership searches for an edge assignment making a graph
	// a pure NE of the unilateral game.
	NCGExistsNEOwnership = ncg.ExistsNEOwnership
	// NCGCheckGE checks a unilateral Greedy Equilibrium.
	NCGCheckGE = ncg.CheckGE
	// NCGTreePoA computes the unilateral NE tree PoA exhaustively.
	NCGTreePoA = ncg.TreePoA
)

// Equilibrium checking.
var (
	// Check runs the exact checker for a solution concept.
	Check = eq.Check
	// Concepts lists all bilateral concepts in cooperation order.
	Concepts = eq.Concepts
	// Improving reports whether a specific move strictly improves all of
	// its actors.
	Improving = eq.Improving
	// CheckKBSE checks stability against coalitions of size at most k.
	CheckKBSE = eq.CheckKBSE
	// CheckUnilateralNE checks a pure NE of the unilateral NCG.
	CheckUnilateralNE = eq.CheckUnilateralNE
)

// Price of Anarchy.
type PoAResult = core.PoAResult

var (
	// WorstTree computes the exact PoA over all free trees on n nodes.
	// Cancelling the context returns the partial reduction with ctx.Err().
	WorstTree = core.WorstTree
	// WorstGraph computes the exact PoA over all connected graphs.
	// Cancelling the context returns the partial reduction with ctx.Err().
	WorstGraph = core.WorstGraph
	// TreeRho computes ρ(G) for a tree in O(n).
	TreeRho = core.TreeRho
)

// Parallel sweep engine (v2: context-aware, streaming).
type (
	// SweepOptions configures a parallel sweep over an isomorphism-free
	// graph stream, including the incremental OnItem/Progress hooks.
	SweepOptions = sweep.Options
	// SweepResult is the deterministic outcome of a sweep.
	SweepResult = sweep.Result
	// SweepItem is the verdict vector for one (α, graph) pair.
	SweepItem = sweep.Item
	// SweepVector is a stability bit vector over a sweep's concepts.
	SweepVector = sweep.Vector
	// SweepSource selects the enumerated stream (graphs or trees).
	SweepSource = sweep.Source
	// SweepCache memoizes stability verdicts by canonical form, α and
	// concept.
	SweepCache = sweep.Cache
)

// The sweep graph streams.
const (
	SweepGraphs = sweep.Graphs
	SweepTrees  = sweep.Trees
)

var (
	// RunSweep executes a parallel sweep. Cancelling the context stops it
	// within one task granularity and returns the partial result with
	// ctx.Err().
	RunSweep = sweep.Run
	// StreamSweep executes a parallel sweep and returns an iterator over
	// its items, delivered incrementally in the deterministic α-major
	// batch order; breaking out of the range cancels the sweep.
	StreamSweep = sweep.Stream
	// NewSweepCache returns an empty verdict cache.
	NewSweepCache = sweep.NewCache
	// SharedSweepCache returns the process-wide verdict cache the
	// experiments and PoA searches share.
	SharedSweepCache = sweep.Shared
)

// ParseAlpha parses an exact edge price from its string form ("3", "9/2").
var ParseAlpha = game.ParseAlpha

// ParseConcept parses a concept from its paper name ("PS", "2-BSE", …).
var ParseConcept = eq.ParseConcept

// Persistent verdict store and HTTP serving daemon (v3).
type (
	// VerdictStore is the append-only, sharded on-disk verdict store. Open
	// one with OpenStore, warm-start a SweepCache from it with
	// SweepCache.WarmStart, and attach it as the cache's write-behind sink
	// with SweepCache.Persist.
	VerdictStore = store.Store
	// StoreOptions configures OpenStore (shards, fsync batching).
	StoreOptions = store.Options
	// StoreRecord is one persisted verdict.
	StoreRecord = store.Record
	// StoreStats is a store observability snapshot.
	StoreStats = store.Stats
	// SweepCacheStats is a cache observability snapshot (entries plus
	// lifetime hits and misses).
	SweepCacheStats = sweep.CacheStats
	// SweepCheckpoint is the durable grid spec + progress of a resumable
	// sweep, saved in a store via VerdictStore.SaveCheckpoint.
	SweepCheckpoint = sweep.Checkpoint
	// ServerConfig configures NewServer.
	ServerConfig = server.Config
	// Server is the HTTP serving daemon behind `bncg serve`: /v1/sweep
	// (NDJSON streaming), /v1/poa, /v1/check and /healthz.
	Server = server.Server
)

var (
	// OpenStore opens (creating if necessary) a verdict store directory,
	// recovering cleanly from torn tails left by a crash.
	OpenStore = store.Open
	// NewServer returns the HTTP daemon for a config.
	NewServer = server.New
	// NewSweepCheckpoint captures a sweep grid and its progress for
	// VerdictStore.SaveCheckpoint / `bncg sweep -resume`.
	NewSweepCheckpoint = sweep.NewCheckpoint
	// ResetSharedSweepCache replaces the process-wide verdict cache with a
	// fresh one and returns it. It exists for tests: assertions about hit
	// and miss counts are otherwise coupled to every sweep an earlier test
	// ran through the shared cache.
	ResetSharedSweepCache = sweep.ResetShared
)

// Parametric α-interval certificates (v5): one stability pass per state
// answers every edge price.
type (
	// AlphaSet is the exact set of edge prices at which one state is
	// stable for one concept — a sorted union of disjoint rational
	// intervals over [0, ∞) with an O(log B) Contains query, exact
	// Breakpoints, and a stable string form.
	AlphaSet = eq.AlphaSet
	// AlphaInterval is one interval of an AlphaSet, with open/closed
	// endpoint flags and an optional +∞ upper bound.
	AlphaInterval = eq.AlphaInterval
	// AlphaRat is an exact rational α-axis endpoint (or +∞).
	AlphaRat = eq.Rat
	// SweepConceptCritical is one concept's exact critical-price row in
	// SweepResult.Critical: the sorted rational α values at which any
	// enumerated class's verdict flips.
	SweepConceptCritical = sweep.ConceptCritical
	// StoreCertRecord is one persisted certificate; StoreInterval its
	// interval form. One certificate record subsumes a whole per-α row of
	// StoreRecord verdicts (VerdictStore.Compact folds them).
	StoreCertRecord = store.CertRecord
	// SweepCertKey identifies a memoized certificate: canonical form and
	// concept — no price, that is the point.
	SweepCertKey = sweep.CertKey
)

var (
	// Certify computes the exact stable-α set of a state for a concept in
	// one deviation pass; Evaluator.Certify/CertifyBound are the reusable
	// hot-path forms the sweep engine runs on.
	Certify = eq.Certify
	// FullAlphaSet is [0, ∞): stable at every price.
	FullAlphaSet = eq.FullAlphaSet
	// AlphaSetOf validates and builds an AlphaSet from sorted disjoint
	// intervals (the persistence path).
	AlphaSetOf = eq.AlphaSetOf
)

// Distributed sweep fleet (v7): lease-based coordinator/worker sharding of
// the pruned class stream with store-shard merge.
type (
	// FleetTable is the durable lease table of one fleet run: the sweep
	// grid plus per-range owner, heartbeat deadline, fencing epoch and
	// completion state. It generalizes SweepCheckpoint from one process's
	// progress to a fleet's.
	FleetTable = fleet.Table
	// FleetRange is one contiguous [start, end) slice of the class stream
	// and its lease state.
	FleetRange = fleet.Range
	// FleetLease is a worker's claim on one range — the fencing handle
	// every heartbeat and completion must present.
	FleetLease = fleet.Lease
	// FleetProgress summarizes a table (pending/leased/done/reclaims).
	FleetProgress = fleet.Progress
	// FleetWorkerOptions configures RunFleetWorker.
	FleetWorkerOptions = fleet.WorkerOptions
	// FleetWorkerStats summarizes one worker's run.
	FleetWorkerStats = fleet.WorkerStats
	// StoreIngestStats summarizes one shard merge (VerdictStore.Ingest).
	StoreIngestStats = store.IngestStats
	// StoreInterval is one exact α interval of a persisted certificate.
	StoreInterval = store.Interval
	// StoreKey and StoreCertKey identify persisted verdicts and
	// certificates.
	StoreKey     = store.Key
	StoreCertKey = store.CertKey
	// StoreSegmentStat is one segment's bytes and frame count
	// (VerdictStore.SegmentStats) — the shard-skew view of `store stats`.
	StoreSegmentStat = store.SegmentStat
)

// SweepCheckpointVersion is the current checkpoint/lease-table schema
// generation; unversioned (pre-fleet) checkpoints still load.
const SweepCheckpointVersion = sweep.CheckpointVersion

// Fleet directory conventions: the lease table's file name and the
// subdirectory workers default their store shards under.
const (
	FleetTableFile = fleet.TableFile
	FleetShardsDir = fleet.ShardsDir
)

// ErrFleetLeaseLost reports a fenced-off lease: the range was reclaimed
// after heartbeat expiry, and the previous owner must abandon it.
var ErrFleetLeaseLost = fleet.ErrLeaseLost

var (
	// PlanFleet counts the pruned class stream of a grid and cuts it into
	// contiguous lease ranges.
	PlanFleet = fleet.Plan
	// CreateFleet persists a freshly planned lease table; LoadFleet reads
	// one back; ReclaimFleet returns expired leases to pending.
	CreateFleet  = fleet.Create
	LoadFleet    = fleet.Load
	ReclaimFleet = fleet.Reclaim
	// ClaimFleetRange grants the first claimable range to an owner — the
	// primitive RunFleetWorker loops on.
	ClaimFleetRange = fleet.Claim
	// RunFleetWorker claims and certifies ranges against a private store
	// shard until the fleet's table is fully done.
	RunFleetWorker = fleet.RunWorker
	// CountSweepClasses counts the isomorphism classes of a sweep source's
	// pruned stream — the fleet coordinator's planning pass.
	CountSweepClasses = sweep.CountClasses
)

// Iterator enumeration (v2). Both iterators support early break, which
// stops the underlying generation immediately.
var (
	// AllGraphs returns an iterator over the graphs on n nodes matching
	// the enumeration options, paired with canonical keys under UpToIso.
	AllGraphs = graph.All
	// AllFreeTrees returns an iterator over the free trees on n nodes (one
	// representative per isomorphism class), paired with canonical keys.
	AllFreeTrees = graph.AllFreeTrees
	// AllGraphClasses and AllFreeTreeClasses (v4) are the class-level
	// enumerations: one representative per isomorphism class together with
	// its canonical key and orbit size n!/|Aut|. Non-minimal labelings are
	// skipped by early symmetry pruning rather than canonicalized and
	// deduplicated.
	AllGraphClasses    = graph.AllClasses
	AllFreeTreeClasses = graph.AllFreeTreeClasses
)

// EnumOptions controls AllGraphs enumeration.
type EnumOptions = graph.EnumOptions

// GraphClass describes one isomorphism class yielded by AllGraphClasses or
// AllFreeTreeClasses: canonical key plus orbit size.
type GraphClass = graph.Class

// Zero-allocation checking (v4).
type (
	// Evaluator is a reusable equilibrium evaluator: BFS scratch, baseline
	// costs and deviation-scan buffers persist across calls, so stability
	// checks at sweep sizes allocate nothing. Not safe for concurrent use;
	// give each goroutine its own.
	Evaluator = eq.Evaluator
	// BFSScratch holds reusable traversal buffers for
	// Graph.BFSScratchInto.
	BFSScratch = graph.BFSScratch
)

// NewEvaluator returns an Evaluator for use by a single goroutine.
var NewEvaluator = eq.NewEvaluator

// Dynamics.
type (
	// DynamicsOptions configures improving-response dynamics.
	DynamicsOptions = dynamics.Options
	// DynamicsTrace reports a dynamics run.
	DynamicsTrace = dynamics.Trace
	// DynamicsKind selects a move family for the dynamics scheduler.
	DynamicsKind = dynamics.Kind
)

// The dynamics move families.
const (
	RemoveKind = dynamics.RemoveKind
	AddKind    = dynamics.AddKind
	SwapKind   = dynamics.SwapKind
)

var (
	// RunDynamics applies improving moves until convergence, the step
	// bound, or context cancellation (which returns the partial trace).
	// A nil Options.Rng defaults to a fixed-seed source.
	RunDynamics = dynamics.Run
	// SampleDynamics summarizes dynamics runs from random starting graphs.
	SampleDynamics = dynamics.Sample
)

// Incremental dynamics + stochastic simulation (v10).
type (
	// DynamicsScheduler selects the candidate-scan policy of a dynamics
	// run: uniform (the zero value), round-robin, or breakpoint-guided.
	DynamicsScheduler = dynamics.Scheduler
	// IncDist maintains all-pairs shortest-path distances of a graph under
	// single edge toggles, repairing only the affected region per change.
	IncDist = graph.IncDist
	// SimOptions configures a simulation batch: n, α grid, trajectories
	// per α, init families, move set, scheduler and determinism seed.
	SimOptions = sim.Options
	// SimResult is a finished (or cancelled) simulation batch.
	SimResult = sim.Result
	// SimTrajectory reports one dynamics run and its final topology.
	SimTrajectory = sim.Trajectory
	// SimAlphaSummary aggregates the trajectories of one grid price.
	SimAlphaSummary = sim.AlphaSummary
	// SimInit selects an initial-state family (ER, tree, star).
	SimInit = sim.Init
)

// The dynamics schedulers.
const (
	SchedulerUniform    = dynamics.SchedulerUniform
	SchedulerRoundRobin = dynamics.SchedulerRoundRobin
	SchedulerBreakpoint = dynamics.SchedulerBreakpoint
)

var (
	// ParseScheduler parses a scheduler name ("uniform", "roundrobin",
	// "breakpoint-guided", ...).
	ParseScheduler = dynamics.ParseScheduler
	// NewIncDist builds the incremental-distance state of g with one BFS
	// per source; mutate the graph only through the returned kernel.
	NewIncDist = graph.NewIncDist
	// Simulate runs a batch of dynamics trajectories across an α grid with
	// deterministic per-trajectory seeding and in-order streaming.
	Simulate = sim.Run
	// ParseSimInits parses an init-family selector (er|tree|star|all).
	ParseSimInits = sim.ParseInits
	// SimTrajectorySeed derives the deterministic seed of one trajectory.
	SimTrajectorySeed = sim.TrajectorySeed
	// RandomGNP, RandomConnectedGNP and RandomStar sample the simulation
	// initial-state families (seeded, reproducible).
	RandomGNP          = graph.RandomGNP
	RandomConnectedGNP = graph.RandomConnectedGNP
	RandomStar         = graph.RandomStar
)

// Experiments.
type (
	// ExperimentReport is the outcome of a paper-reproduction experiment.
	ExperimentReport = experiments.Report
	// ExperimentScale selects Quick or Full runs.
	ExperimentScale = experiments.Scale
)

// Experiment scales.
const (
	Quick = experiments.Quick
	Full  = experiments.Full
)

var (
	// Experiment runs the reproduction experiment with the given ID (see
	// DESIGN.md §4 for the inventory). Cancelling the context returns the
	// partial report with ctx.Err().
	Experiment = experiments.Run
	// ExperimentIDs lists all experiment IDs.
	ExperimentIDs = experiments.IDs
)

// Game variants (v9): one certificate engine, many games. A GameVariant
// describes which game the engine evaluates — consent mode, distance
// aggregate, per-agent price multipliers — and threads through
// Game.Variant, SweepOptions.Variant, store records and the /v1/*
// `variant` query parameter. The zero value is the paper's default model
// and behaves (and persists, and serializes) exactly as before.
type (
	// GameVariant is the first-class variant descriptor.
	GameVariant = game.Variant
	// VariantConsent selects who must agree to an edge change.
	VariantConsent = game.Consent
	// VariantDistMode selects the distance aggregate of the cost.
	VariantDistMode = game.DistMode
	// VariantAgentPrice is one agent's exact rational price multiplier.
	VariantAgentPrice = game.AgentPrice
)

// The consent modes and distance aggregates. The zero values —
// ConsentBilateral, DistSum — are the paper's model.
const (
	ConsentBilateral  = game.ConsentBilateral
	ConsentUnilateral = game.ConsentUnilateral
	DistSum           = game.DistSum
	DistMax           = game.DistMax
)

var (
	// NewVariant validates and builds a variant descriptor.
	NewVariant = game.NewVariant
	// ParseVariant parses the canonical descriptor grammar
	// ("unilateral", "max", "mul:U=P/Q", comma-joined; "" is the
	// default variant). GameVariant.Key is its inverse.
	ParseVariant = game.ParseVariant
	// UnilateralNCGVariant is the unilateral NCG of the related-work
	// baseline as a variant descriptor: the promotion of internal/ncg
	// onto the shared certificate engine.
	UnilateralNCGVariant = ncg.UnilateralVariant
	// CheckUnilateralAE checks an ownership-free adjacency equilibrium
	// of the unilateral NCG (routes through the variant engine).
	CheckUnilateralAE = eq.CheckUnilateralAE
)

// SchemaVersion is the generation stamp every public JSON payload carries
// as "schema_version": sweep results, /v1/* bodies and the CLI's -json
// outputs alike.
const SchemaVersion = sweep.SchemaVersion

// Compute-plane observability (v8): NDJSON span tracing, the shared
// hand-rolled Prometheus registry, sidecar metrics/pprof listeners, and
// the trace analyzer behind `bncg trace`.
type (
	// Tracer is the append-only NDJSON span/event writer threaded through
	// sweep, store and fleet via their Options.Trace fields. A nil
	// *Tracer is a valid disabled tracer.
	Tracer = obs.Tracer
	// TracerOptions configures NewTracer (source id, injectable clock).
	TracerOptions = obs.TracerOptions
	// TraceAttrs carries span/event attributes.
	TraceAttrs = obs.Attrs
	// TraceData is the parsed, merged content of one or more trace files.
	TraceData = obs.Trace
	// TraceReport is the analyzer output: stage breakdown, slowest
	// classes, per-worker timeline lanes and wall-clock coverage.
	TraceReport = obs.Report
	// MetricsRegistry is the ordered Prometheus text-exposition registry
	// shared by the serving daemon and the compute sidecars.
	MetricsRegistry = obs.Registry
	// ComputeMetrics bundles the compute-plane instruments served on a
	// worker/sweep sidecar listener. A nil *ComputeMetrics is valid.
	ComputeMetrics = obs.ComputeMetrics
	// MetricsSidecar is the optional -metrics-addr listener.
	MetricsSidecar = obs.Sidecar
)

var (
	// NewTracer wraps a writer; CreateTrace opens (appending) a trace
	// file. Both stamp every frame with the source id.
	NewTracer   = obs.NewTracer
	CreateTrace = obs.CreateTrace
	// ReadTraceFiles parses and merges NDJSON trace files strictly;
	// AnalyzeTrace aggregates the merged trace into a TraceReport.
	ReadTraceFiles = obs.ReadTraceFiles
	AnalyzeTrace   = obs.Analyze
	// NewComputeMetrics builds the sidecar instrument bundle.
	NewComputeMetrics = obs.NewComputeMetrics
	// StartMetricsSidecar serves a registry's /metrics (and optionally
	// pprof) on addr until Close.
	StartMetricsSidecar = obs.StartSidecar
	// LintExposition validates Prometheus text-exposition output
	// structurally (name charsets, TYPE consistency, histogram
	// monotonicity) — exported for tests of metrics surfaces.
	LintExposition = obs.LintExposition
)
