package core

import (
	"math"

	"repro/internal/game"
	"repro/internal/graph"
)

// Closed-form PoA bounds from the paper. All logarithms are base 2, as in
// the paper. These are reporting-level formulas (float64); stability
// certification stays exact.

// Log2 is the paper's log (base 2).
func Log2(x float64) float64 { return math.Log2(x) }

// Prop31Bound is Proposition 3.1: for a connected RE graph and any node u,
// ρ(G) <= (α + dist(u)) / (α + n - 1).
func Prop31Bound(n int, alpha game.Alpha, distU int64) float64 {
	a := alpha.Float()
	return (a + float64(distU)) / (a + float64(n-1))
}

// Cor32Bound is Corollary 3.2: ρ(G) <= 1 + n²/α for connected RE graphs.
func Cor32Bound(n int, alpha game.Alpha) float64 {
	return 1 + float64(n)*float64(n)/alpha.Float()
}

// PSUpperBound is the known PS bound Θ(min{√α, n/√α}) reported in Table 1.
func PSUpperBound(n int, alpha game.Alpha) float64 {
	a := alpha.Float()
	return math.Min(math.Sqrt(a), float64(n)/math.Sqrt(a))
}

// Thm36Upper is Theorem 3.6: trees in BSwE have ρ(G) <= 2 + 2·log α.
func Thm36Upper(alpha game.Alpha) float64 {
	return 2 + 2*Log2(alpha.Float())
}

// Thm310Lower is Theorem 3.10: the stretched tree star achieves
// ρ(G) >= (1/4)·log α − 17/8 in BGE.
func Thm310Lower(alpha game.Alpha) float64 {
	return Log2(alpha.Float())/4 - 17.0/8
}

// Thm312LowerHigh is Theorem 3.12(i): for 9η <= α <= η^(2−ε),
// ρ(G) >= (ε/168)·log α − 3/28 for a BNE tree.
func Thm312LowerHigh(alpha game.Alpha, eps float64) float64 {
	return eps/168*Log2(alpha.Float()) - 3.0/28
}

// Thm312LowerMid is Theorem 3.12(ii): for η^(1/2+ε) <= α <= η,
// ρ(G) >= (ε/4)·log α − 9/8 for a BNE tree.
func Thm312LowerMid(alpha game.Alpha, eps float64) float64 {
	return eps/4*Log2(alpha.Float()) - 9.0/8
}

// Thm313Upper is Theorem 3.13: trees in BNE with α <= √n and n > 15 have
// ρ(G) <= 4.
const Thm313Upper = 4.0

// Thm315Upper is Theorem 3.15: trees in 3-BSE have ρ(G) <= 25.
const Thm315Upper = 25.0

// Thm319Upper is Theorem 3.19: BSE graphs with α >= n·log n have ρ <= 5.
const Thm319Upper = 5.0

// Thm320Upper is Theorem 3.20: BSE graphs with α <= n^(1−ε) have
// ρ <= 3 + 2/ε.
func Thm320Upper(eps float64) float64 { return 3 + 2/eps }

// Thm321Upper is Theorem 3.21: any BSE graph has
// ρ <= 2 + loglog n + 2·log n / logloglog n.
func Thm321Upper(n int) float64 {
	ln := Log2(float64(n))
	lln := Log2(ln)
	llln := Log2(lln)
	return 2 + lln + 2*ln/llln
}

// Lemma317Bound is Lemma 3.17: for any graph G with worst-off agent cost c,
// every BSE H on the same n and α has ρ(H) <= c / (α + n − 1).
func Lemma317Bound(n int, alpha game.Alpha, worstCost float64) float64 {
	return worstCost / (alpha.Float() + float64(n-1))
}

// Lemma318Bound is Lemma 3.18: in an almost complete d-ary tree every
// agent's cost is at most (d+1)·α + 2(n−1)·log_d n.
func Lemma318Bound(n, d int, alpha game.Alpha) float64 {
	return float64(d+1)*alpha.Float() + 2*float64(n-1)*math.Log(float64(n))/math.Log(float64(d))
}

// MaxAgentCost returns the maximal agent cost in g as a float64 scalar
// (α·buy + dist). The graph must be connected.
func MaxAgentCost(gm game.Game, g *graph.Graph) float64 {
	worst := 0.0
	for u := 0; u < g.N(); u++ {
		c := gm.AgentCost(g, u)
		if v := c.Value(gm.Alpha); v > worst {
			worst = v
		}
	}
	return worst
}

// Prop322MinP returns, for α = n, the smallest constant p (granularity
// 1/4) for which Proposition 3.22's counting argument does not rule out a
// graph whose agents all have cost <= p·(α + n − 1): p is feasible only if
// a node of degree at most 2p can reach at least n/2 nodes within 4p hops,
// i.e. Σ_{i=0..⌊4p⌋} (2p)^i >= n/2. The returned value grows without bound
// in n, reproducing the proposition's impossibility.
func Prop322MinP(n int) float64 {
	for q := 2; ; q++ { // p = q/4
		p := float64(q) / 4
		d := 2 * p
		radius := int(4 * p)
		reach := 1.0
		layer := 1.0
		for i := 1; i <= radius && reach < float64(n)/2; i++ {
			layer *= d
			reach += layer
		}
		if reach >= float64(n)/2 {
			return p
		}
	}
}
