package core

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Structural lemma validators for Section 3.2. Each checks the lemma's
// inequality on a concrete tree; the experiments run them over
// checker-verified equilibria, turning the paper's proof obligations into
// measured invariants.

// VerifyLemma33 checks Lemma 3.3 on a tree rooted at a 1-median: for every
// node u there is a T_u-1-median v with ℓ(v) <= ℓ(u) + 2α/n. The tree must
// be in BSwE for the lemma to apply; the caller certifies that.
func VerifyLemma33(g *graph.Graph, alpha game.Alpha) error {
	rt, err := tree.RootAtMedian(g)
	if err != nil {
		return err
	}
	n := float64(g.N())
	bound := 2 * alpha.Float() / n
	for u := 0; u < g.N(); u++ {
		medians := rt.SubtreeMedians(u)
		ok := false
		for _, v := range medians {
			if float64(rt.Layer(v)) <= float64(rt.Layer(u))+bound {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: lemma 3.3 violated at node %d: medians %v too deep (bound %.3f)",
				u, medians, bound)
		}
	}
	return nil
}

// VerifyLemma34 checks Lemma 3.4: depth(T_u) <= (1 + 2α/n)·log|T_u| for
// every node u of a BSwE tree rooted at a 1-median.
func VerifyLemma34(g *graph.Graph, alpha game.Alpha) error {
	rt, err := tree.RootAtMedian(g)
	if err != nil {
		return err
	}
	n := float64(g.N())
	factor := 1 + 2*alpha.Float()/n
	for u := 0; u < g.N(); u++ {
		size := float64(rt.SubtreeSize(u))
		if size == 1 {
			continue // log 1 = 0 and depth = 0
		}
		if float64(rt.SubtreeDepth(u)) > factor*Log2(size)+1e-9 {
			return fmt.Errorf("core: lemma 3.4 violated at node %d: depth %d > %.3f",
				u, rt.SubtreeDepth(u), factor*Log2(size))
		}
	}
	return nil
}

// VerifyLemma35 checks Lemma 3.5: |T_u| <= α/(ℓ(u)−1) for every node with
// ℓ(u) >= 2 in a BSwE tree rooted at a 1-median.
func VerifyLemma35(g *graph.Graph, alpha game.Alpha) error {
	rt, err := tree.RootAtMedian(g)
	if err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		l := rt.Layer(u)
		if l < 2 {
			continue
		}
		if float64(rt.SubtreeSize(u)) > alpha.Float()/float64(l-1)+1e-9 {
			return fmt.Errorf("core: lemma 3.5 violated at node %d: |T_u|=%d > α/(ℓ−1)=%.3f",
				u, rt.SubtreeSize(u), alpha.Float()/float64(l-1))
		}
	}
	return nil
}

// VerifyLemma314 checks the key 3-BSE invariant (Lemma 3.14): in a 3-BSE
// tree rooted at a 1-median, every node has at most one child c with
// depth(T_c) > 2·⌈4α/n⌉ + 1.
func VerifyLemma314(g *graph.Graph, alpha game.Alpha) error {
	rt, err := tree.RootAtMedian(g)
	if err != nil {
		return err
	}
	threshold := 2*int(math.Ceil(4*alpha.Float()/float64(g.N()))) + 1
	for u := 0; u < g.N(); u++ {
		deep := 0
		for _, c := range rt.Children(u) {
			if rt.SubtreeDepth(c) > threshold {
				deep++
			}
		}
		if deep > 1 {
			return fmt.Errorf("core: lemma 3.14 violated at node %d: %d children deeper than %d",
				u, deep, threshold)
		}
	}
	return nil
}

// MedianDist returns dist(r) for a 1-median root r of a tree — the
// quantity every Section 3.2 upper bound controls.
func MedianDist(g *graph.Graph) (int64, error) {
	medians, err := tree.Medians(g)
	if err != nil {
		return 0, err
	}
	sum, unreachable := g.TotalDist(medians[0])
	if unreachable != 0 {
		return 0, fmt.Errorf("core: tree unexpectedly disconnected")
	}
	return sum, nil
}
