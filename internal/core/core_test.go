package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

func TestTreeAllDistMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := graph.RandomTree(n, rng)
		got, err := TreeAllDist(g)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			want, unreachable := g.TotalDist(u)
			if unreachable != 0 || got[u] != want {
				t.Fatalf("TreeAllDist[%d] = %d, BFS says %d (%s)", u, got[u], want, g)
			}
		}
	}
}

func TestTreeAllDistRejectsNonTree(t *testing.T) {
	if _, err := TreeAllDist(construct.Cycle(4)); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestTreeRhoMatchesRho(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.RandomTree(n, rng)
		gm, _ := game.NewGame(n, game.AFrac(int64(1+rng.Intn(10)), 2))
		fast, err := TreeRho(gm, g)
		if err != nil {
			t.Fatal(err)
		}
		slow := gm.Rho(g)
		if math.Abs(fast-slow) > 1e-9 {
			t.Fatalf("TreeRho %.9f vs Rho %.9f on %s", fast, slow, g)
		}
	}
}

func TestTreeMaxAgentCost(t *testing.T) {
	gm, _ := game.NewGame(5, game.A(3))
	g := game.Star(5)
	got, err := TreeMaxAgentCost(gm, g)
	if err != nil {
		t.Fatal(err)
	}
	// Center: 4α + 4 = 16; leaf: α + 7 = 10.
	if got != 16 {
		t.Fatalf("max agent cost = %v, want 16", got)
	}
}

func TestWorstTreeStarIsOptimalAtAlphaOverOne(t *testing.T) {
	// For α > 1 the star is the unique social optimum, so the worst
	// PS-stable tree ratio is >= 1 with the star among equilibria.
	res, err := WorstTree(context.Background(), 7, game.A(3), eq.PS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equilibria == 0 || res.Rho < 1 {
		t.Fatalf("WorstTree: %+v", res)
	}
	if res.Candidates != 11 { // free trees on 7 nodes
		t.Fatalf("candidates = %d, want 11", res.Candidates)
	}
}

func TestWorstGraphCliqueOnlyBelowOne(t *testing.T) {
	res, err := WorstGraph(context.Background(), 4, game.AFrac(1, 2), eq.BSE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equilibria != 1 || res.Rho != 1 {
		t.Fatalf("α<1 BSE: %+v (want exactly the clique at ρ=1)", res)
	}
}

func TestRhoOfFamily(t *testing.T) {
	gm, _ := game.NewGame(4, game.A(2))
	if _, err := RhoOfFamily(gm, game.Star(4), false, "star"); err == nil {
		t.Fatal("uncertified family accepted")
	}
	rho, err := RhoOfFamily(gm, game.Star(4), true, "star")
	if err != nil || rho != 1 {
		t.Fatalf("rho = %v, err = %v", rho, err)
	}
}

func TestBoundFormulas(t *testing.T) {
	if got := Thm36Upper(game.A(4)); got != 6 {
		t.Fatalf("Thm36Upper(4) = %v, want 6", got)
	}
	if got := Thm310Lower(game.A(256)); math.Abs(got-(2-17.0/8)) > 1e-12 {
		t.Fatalf("Thm310Lower(256) = %v", got)
	}
	if got := Cor32Bound(10, game.A(100)); got != 2 {
		t.Fatalf("Cor32Bound = %v, want 2", got)
	}
	if got := Prop31Bound(10, game.A(1), 9); got != 1 {
		t.Fatalf("Prop31Bound = %v, want 1 (star distances)", got)
	}
	if got := PSUpperBound(100, game.A(25)); got != 5 {
		t.Fatalf("PSUpperBound = %v, want √25", got)
	}
	if got := PSUpperBound(100, game.A(10000)); got != 1 {
		t.Fatalf("PSUpperBound = %v, want n/√α = 1", got)
	}
	if got := Thm320Upper(0.5); got != 7 {
		t.Fatalf("Thm320Upper(1/2) = %v, want 7", got)
	}
	if Thm321Upper(1<<20) <= 0 {
		t.Fatal("Thm321Upper must be positive")
	}
	if got := Lemma317Bound(10, game.A(1), 20); got != 2 {
		t.Fatalf("Lemma317Bound = %v, want 2", got)
	}
}

// TestLemma318BoundHolds: the closed form of Lemma 3.18 dominates the
// exact maximal agent cost of almost complete d-ary trees.
func TestLemma318BoundHolds(t *testing.T) {
	for _, n := range []int{10, 50, 200, 1000} {
		for _, d := range []int{2, 3, 5} {
			g := construct.AlmostCompleteDAry(n, d)
			gm, _ := game.NewGame(n, game.A(7))
			worst, err := TreeMaxAgentCost(gm, g)
			if err != nil {
				t.Fatal(err)
			}
			bound := Lemma318Bound(n, d, game.A(7))
			if worst > bound+1e-9 {
				t.Fatalf("n=%d d=%d: max cost %.3f > bound %.3f", n, d, worst, bound)
			}
		}
	}
}

func TestProp322MinPGrows(t *testing.T) {
	p1 := Prop322MinP(100)
	p2 := Prop322MinP(1_000_000)
	p3 := Prop322MinP(1_000_000_000_000)
	if !(p1 <= p2 && p2 <= p3 && p3 > p1) {
		t.Fatalf("p* not growing: %v %v %v", p1, p2, p3)
	}
}

// TestLemmaValidatorsOnBSwETrees: on exhaustively verified BSwE trees the
// Section 3.2.1 lemma inequalities hold.
func TestLemmaValidatorsOnBSwETrees(t *testing.T) {
	n := 9
	for _, alpha := range []game.Alpha{game.A(2), game.A(5), game.A(20)} {
		gm, _ := game.NewGame(n, alpha)
		graph.FreeTrees(n, func(g *graph.Graph) {
			if !eq.CheckBSwE(gm, g).Stable {
				return
			}
			if err := VerifyLemma33(g, alpha); err != nil {
				t.Fatalf("α=%s: %v on %s", alpha, err, g)
			}
			if err := VerifyLemma34(g, alpha); err != nil {
				t.Fatalf("α=%s: %v on %s", alpha, err, g)
			}
			if err := VerifyLemma35(g, alpha); err != nil {
				t.Fatalf("α=%s: %v on %s", alpha, err, g)
			}
		})
	}
}

// TestLemma314OnThreeBSETrees: the at-most-one-deep-child invariant holds
// on every exhaustively verified 3-BSE tree.
func TestLemma314OnThreeBSETrees(t *testing.T) {
	n := 8
	for _, alpha := range []game.Alpha{game.A(2), game.A(6)} {
		gm, _ := game.NewGame(n, alpha)
		graph.FreeTrees(n, func(g *graph.Graph) {
			if !eq.CheckKBSE(gm, g, 3).Stable {
				return
			}
			if err := VerifyLemma314(g, alpha); err != nil {
				t.Fatalf("α=%s: %v on %s", alpha, err, g)
			}
		})
	}
}

func TestMedianDist(t *testing.T) {
	got, err := MedianDist(construct.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 { // center of P5: 2+1+1+2
		t.Fatalf("MedianDist(P5) = %d, want 6", got)
	}
	if _, err := MedianDist(construct.Cycle(4)); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestMaxAgentCostGeneral(t *testing.T) {
	gm, _ := game.NewGame(4, game.A(1))
	got := MaxAgentCost(gm, construct.Cycle(4))
	// Every cycle node: 2α + (1+1+2) = 6.
	if got != 6 {
		t.Fatalf("MaxAgentCost(C4) = %v, want 6", got)
	}
}
