package core

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/tree"
)

// TreeAllDist returns dist(u) for every node of a tree in O(n) total time
// using the standard rerooting technique, enabling exact social cost and
// max-agent-cost computation on the 10^5-node families of Section 3.3.
func TreeAllDist(g *graph.Graph) ([]int64, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("core: TreeAllDist on non-tree (n=%d m=%d)", g.N(), g.M())
	}
	n := g.N()
	rt, err := tree.Root(g, 0)
	if err != nil {
		return nil, err
	}
	// down[u]: sum of distances from u to nodes in T_u.
	down := make([]int64, n)
	order := make([]int, 0, n)
	order = append(order, 0)
	for i := 0; i < len(order); i++ {
		order = append(order, rt.Children(order[i])...)
	}
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		for _, c := range rt.Children(u) {
			down[u] += down[c] + int64(rt.SubtreeSize(c))
		}
	}
	// total[u] via rerooting: total[child] =
	// total[u] + (n - 2·size(child)).
	total := make([]int64, n)
	total[0] = down[0]
	for _, u := range order {
		for _, c := range rt.Children(u) {
			total[c] = total[u] + int64(n) - 2*int64(rt.SubtreeSize(c))
		}
	}
	return total, nil
}

// TreeSocialCost returns the exact social cost of a tree at price alpha.
func TreeSocialCost(gm game.Game, g *graph.Graph) (game.Cost, error) {
	dists, err := TreeAllDist(g)
	if err != nil {
		return game.Cost{}, err
	}
	var c game.Cost
	for u, d := range dists {
		c.Dist += d
		c.Buy += int64(g.Degree(u))
	}
	return c, nil
}

// TreeRho returns ρ(G) for a tree in O(n) time.
func TreeRho(gm game.Game, g *graph.Graph) (float64, error) {
	c, err := TreeSocialCost(gm, g)
	if err != nil {
		return 0, err
	}
	return c.Value(gm.Alpha) / gm.OptCost().Value(gm.Alpha), nil
}

// TreeMaxAgentCost returns the maximal agent cost α·deg(u) + dist(u) over
// all nodes of a tree in O(n) time.
func TreeMaxAgentCost(gm game.Game, g *graph.Graph) (float64, error) {
	dists, err := TreeAllDist(g)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for u, d := range dists {
		v := gm.Alpha.Float()*float64(g.Degree(u)) + float64(d)
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}
