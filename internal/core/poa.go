// Package core implements the paper's primary quantitative object — the
// Price of Anarchy of the Bilateral Network Creation Game under each
// solution concept — together with the closed-form bounds of Sections 3.2
// and 3.3 and exhaustive worst-case searches over small instances.
package core

import (
	"context"
	"fmt"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// PoAResult is the outcome of a worst-case search: the maximal social cost
// ratio over all checked equilibria, its witness, and how many graphs were
// equilibria out of how many candidates.
type PoAResult struct {
	// Rho is the worst (maximal) social cost ratio found; 0 if no
	// equilibrium exists among the candidates.
	Rho float64
	// Witness attains Rho (nil if no equilibrium was found).
	Witness *graph.Graph
	// Equilibria and Candidates count the stable graphs and all graphs
	// examined.
	Equilibria, Candidates int
}

// WorstTree exhaustively computes the PoA restricted to tree equilibria:
// the maximal ρ over all free trees on n nodes that are stable for the
// concept at price alpha. Exact for every concept; the BSE/BNE checkers
// bound the practical n (see package eq). The search runs on the parallel
// sweep engine with the process-wide verdict cache; stability checks and
// the per-tree distance sums behind ρ run on the zero-allocation bitset
// kernel of package graph through per-worker eq.Evaluators. Cancelling ctx
// stops the search within one tree granularity and returns the reduction
// over the completed portion together with ctx.Err().
func WorstTree(ctx context.Context, n int, alpha game.Alpha, concept eq.Concept) (PoAResult, error) {
	return worstCase(ctx, n, alpha, concept, sweep.Trees)
}

// WorstGraph exhaustively computes the PoA over all connected graphs on n
// nodes (up to isomorphism) stable for the concept at price alpha.
// Intended for n <= 6. The search runs on the parallel sweep engine with
// the process-wide verdict cache. Cancelling ctx stops the search within
// one graph granularity and returns the reduction over the completed
// portion together with ctx.Err().
func WorstGraph(ctx context.Context, n int, alpha game.Alpha, concept eq.Concept) (PoAResult, error) {
	return worstCase(ctx, n, alpha, concept, sweep.Graphs)
}

// worstCase reduces a one-cell sweep (single α, single concept) to the
// worst stable ρ. The sweep's item order matches the enumeration order the
// sequential search used, so the reported witness is identical. On
// cancellation the reduction covers the partial sweep and the context
// error is passed through.
func worstCase(ctx context.Context, n int, alpha game.Alpha, concept eq.Concept, src sweep.Source) (PoAResult, error) {
	res, err := sweep.Run(ctx, sweep.Options{
		N:        n,
		Alphas:   []game.Alpha{alpha},
		Concepts: []eq.Concept{concept},
		Source:   src,
		Cache:    sweep.Shared(),
		Rho:      true,
	})
	if res == nil {
		return PoAResult{}, err
	}
	rho, witness, stable := res.WorstStable(0, 0)
	return PoAResult{
		Rho:        rho,
		Witness:    witness,
		Equilibria: stable,
		Candidates: res.Graphs,
	}, err
}

// RhoOfFamily evaluates ρ for a constructed family member, checking
// stability with the supplied certifier (exact checker or analytic lemma).
// It returns an error when the certifier rejects the graph, so experiments
// cannot silently report ratios of non-equilibria.
func RhoOfFamily(gm game.Game, g *graph.Graph, certified bool, label string) (float64, error) {
	if !certified {
		return 0, fmt.Errorf("core: %s is not certified stable at α=%s, n=%d", label, gm.Alpha, gm.N)
	}
	return gm.Rho(g), nil
}
