// Package core implements the paper's primary quantitative object — the
// Price of Anarchy of the Bilateral Network Creation Game under each
// solution concept — together with the closed-form bounds of Sections 3.2
// and 3.3 and exhaustive worst-case searches over small instances.
package core

import (
	"fmt"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

// PoAResult is the outcome of a worst-case search: the maximal social cost
// ratio over all checked equilibria, its witness, and how many graphs were
// equilibria out of how many candidates.
type PoAResult struct {
	// Rho is the worst (maximal) social cost ratio found; 0 if no
	// equilibrium exists among the candidates.
	Rho float64
	// Witness attains Rho (nil if no equilibrium was found).
	Witness *graph.Graph
	// Equilibria and Candidates count the stable graphs and all graphs
	// examined.
	Equilibria, Candidates int
}

// WorstTree exhaustively computes the PoA restricted to tree equilibria:
// the maximal ρ over all free trees on n nodes that are stable for the
// concept at price alpha. Exact for every concept; the BSE/BNE checkers
// bound the practical n (see package eq).
func WorstTree(n int, alpha game.Alpha, concept eq.Concept) (PoAResult, error) {
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		return PoAResult{}, err
	}
	var res PoAResult
	res.Candidates = graph.FreeTrees(n, func(g *graph.Graph) {
		if !eq.Check(gm, g, concept).Stable {
			return
		}
		res.Equilibria++
		if rho := gm.Rho(g); rho > res.Rho {
			res.Rho = rho
			res.Witness = g
		}
	})
	return res, nil
}

// WorstGraph exhaustively computes the PoA over all connected graphs on n
// nodes (up to isomorphism) stable for the concept at price alpha.
// Intended for n <= 6.
func WorstGraph(n int, alpha game.Alpha, concept eq.Concept) (PoAResult, error) {
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		return PoAResult{}, err
	}
	var res PoAResult
	res.Candidates = graph.Enumerate(n, graph.EnumOptions{
		ConnectedOnly: true,
		UpToIso:       true,
		MaxEdges:      -1,
	}, func(g *graph.Graph) {
		if !eq.Check(gm, g, concept).Stable {
			return
		}
		res.Equilibria++
		if rho := gm.Rho(g); rho > res.Rho {
			res.Rho = rho
			res.Witness = g
		}
	})
	return res, nil
}

// RhoOfFamily evaluates ρ for a constructed family member, checking
// stability with the supplied certifier (exact checker or analytic lemma).
// It returns an error when the certifier rejects the graph, so experiments
// cannot silently report ratios of non-equilibria.
func RhoOfFamily(gm game.Game, g *graph.Graph, certified bool, label string) (float64, error) {
	if !certified {
		return 0, fmt.Errorf("core: %s is not certified stable at α=%s, n=%d", label, gm.Alpha, gm.N)
	}
	return gm.Rho(g), nil
}
