package construct

import (
	"testing"

	"repro/internal/tree"
)

func TestPathCycle(t *testing.T) {
	p := Path(5)
	if !p.IsTree() || p.Diameter() != 4 {
		t.Fatalf("path: %s", p)
	}
	c := Cycle(5)
	if c.M() != 5 || c.Diameter() != 2 {
		t.Fatalf("cycle: %s", c)
	}
	for u := 0; u < 5; u++ {
		if c.Degree(u) != 2 {
			t.Fatalf("cycle degree of %d is %d", u, c.Degree(u))
		}
	}
}

func TestAlmostCompleteDAry(t *testing.T) {
	tests := []struct {
		n, d      int
		wantDepth int
	}{
		{n: 7, d: 2, wantDepth: 2},
		{n: 8, d: 2, wantDepth: 3},
		{n: 13, d: 3, wantDepth: 2},
		{n: 1, d: 2, wantDepth: 0},
		{n: 40, d: 3, wantDepth: 3},
	}
	for _, tt := range tests {
		g := AlmostCompleteDAry(tt.n, tt.d)
		if !g.IsTree() {
			t.Fatalf("n=%d d=%d: not a tree", tt.n, tt.d)
		}
		rt := tree.MustRoot(g, 0)
		if rt.Depth() != tt.wantDepth {
			t.Fatalf("n=%d d=%d: depth %d, want %d", tt.n, tt.d, rt.Depth(), tt.wantDepth)
		}
		for u := 0; u < tt.n; u++ {
			if len(rt.Children(u)) > tt.d {
				t.Fatalf("n=%d d=%d: node %d has %d children", tt.n, tt.d, u, len(rt.Children(u)))
			}
		}
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(3)
	if g.N() != 15 || !g.IsTree() {
		t.Fatalf("complete binary tree d=3: %s", g)
	}
	leaves := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) == 1 {
			leaves++
		}
	}
	if leaves != 8 {
		t.Fatalf("leaves = %d, want 8", leaves)
	}
}

func TestStretchedIdentities(t *testing.T) {
	for d := 0; d <= 4; d++ {
		for k := 1; k <= 4; k++ {
			st := NewStretched(d, k)
			wantN := ((1<<(d+1))-2)*k + 1
			if st.G.N() != wantN {
				t.Fatalf("d=%d k=%d: n=%d, want %d", d, k, st.G.N(), wantN)
			}
			if !st.G.IsTree() {
				t.Fatalf("d=%d k=%d: not a tree", d, k)
			}
			rt := tree.MustRoot(st.G, st.Root)
			if rt.Depth() != k*d {
				t.Fatalf("d=%d k=%d: depth=%d, want %d", d, k, rt.Depth(), k*d)
			}
			// B-nodes sit at layers divisible by k; count matches 2^(d+1)-1.
			bCount := 0
			for u := 0; u < st.G.N(); u++ {
				if st.BNodes[u] {
					bCount++
					if rt.Layer(u)%k != 0 {
						t.Fatalf("d=%d k=%d: B-node %d at layer %d", d, k, u, rt.Layer(u))
					}
				}
			}
			if bCount != (1<<(d+1))-1 {
				t.Fatalf("d=%d k=%d: %d B-nodes, want %d", d, k, bCount, (1<<(d+1))-1)
			}
		}
	}
}

func TestMaxStretchedDepth(t *testing.T) {
	tests := []struct {
		k, maxNodes, want int
	}{
		{k: 1, maxNodes: 3, want: 1}, // depth 1 tree has 3 nodes
		{k: 1, maxNodes: 6, want: 1}, // depth 2 tree has 7 nodes
		{k: 1, maxNodes: 7, want: 2},
		{k: 2, maxNodes: 5, want: 1}, // depth 1, k=2 has 5 nodes
		{k: 3, maxNodes: 3, want: 0}, // only the single node fits
	}
	for _, tt := range tests {
		if got := MaxStretchedDepth(tt.k, tt.maxNodes); got != tt.want {
			t.Fatalf("MaxStretchedDepth(%d, %d) = %d, want %d", tt.k, tt.maxNodes, got, tt.want)
		}
	}
	// Consistency: the returned depth fits, depth+1 does not.
	for k := 1; k <= 3; k++ {
		for maxNodes := 3; maxNodes <= 100; maxNodes += 7 {
			d := MaxStretchedDepth(k, maxNodes)
			if d < 0 {
				continue
			}
			if n := NewStretched(d, k).G.N(); n > maxNodes {
				t.Fatalf("k=%d max=%d: depth %d gives %d nodes", k, maxNodes, d, n)
			}
			if n := NewStretched(d+1, k).G.N(); n <= maxNodes {
				t.Fatalf("k=%d max=%d: depth %d would also fit (%d nodes)", k, maxNodes, d+1, n)
			}
		}
	}
}

func TestNewTreeStar(t *testing.T) {
	ts, err := NewTreeStar(1, 7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.G.IsTree() {
		t.Fatal("tree star is not a tree")
	}
	// η <= n <= 3η/2 (Lemma D.9).
	if ts.G.N() < 30 || ts.G.N() > 45 {
		t.Fatalf("n = %d outside [30, 45]", ts.G.N())
	}
	if ts.SubtreeSize != 7 { // stretched k=1 d=2 tree has 7 nodes
		t.Fatalf("subtree size = %d, want 7", ts.SubtreeSize)
	}
	rt := tree.MustRoot(ts.G, ts.Root)
	if rt.Depth() != ts.Depth() || ts.Depth() != ts.DepthT+1 {
		t.Fatalf("depth mismatch: rooted %d, Depth() %d", rt.Depth(), ts.Depth())
	}
	if got := len(rt.Children(ts.Root)); got != ts.Copies {
		t.Fatalf("root has %d children, want %d copies", got, ts.Copies)
	}
}

func TestNewTreeStarErrors(t *testing.T) {
	if _, err := NewTreeStar(0, 5, 30); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewTreeStar(2, 4, 30); err == nil {
		t.Fatal("t < 2k+1 accepted")
	}
	if _, err := NewTreeStar(1, 10, 15); err == nil {
		t.Fatal("η < 2t+1 accepted")
	}
}

func TestGadgetShapes(t *testing.T) {
	f5 := NewFigure5(100)
	if f5.G.N() != 107 || !f5.G.IsTree() {
		t.Fatalf("figure5: n=%d tree=%v", f5.G.N(), f5.G.IsTree())
	}
	if f5.G.Degree(f5.A) != 102 {
		t.Fatalf("figure5 hub degree = %d, want 102", f5.G.Degree(f5.A))
	}

	f6 := NewFigure6()
	if f6.G.N() != 10 || f6.G.M() != 10 {
		t.Fatalf("figure6: %s", f6.G)
	}

	f7 := NewFigure7(5)
	if f7.G.N() != 16 || !f7.G.IsTree() {
		t.Fatalf("figure7: n=%d", f7.G.N())
	}
	if f7.AlphaNum() != 16 {
		t.Fatalf("figure7 α = %d, want 16", f7.AlphaNum())
	}

	f2 := NewFigure2()
	if f2.G.N() != 5 || f2.G.M() != 5 || len(f2.Owner) != 5 {
		t.Fatalf("figure2: %s owners=%d", f2.G, len(f2.Owner))
	}

	if g := Figure8(); g.N() != 5 || !g.IsTree() {
		t.Fatalf("figure8: %s", Figure8())
	}

	dd := NewDoubleDeep(4, 3)
	if dd.G.N() != 12 || !dd.G.IsTree() {
		t.Fatalf("doubledeep: %s", dd.G)
	}
	if len(dd.ArmA) != 4 || len(dd.ArmB) != 4 || len(dd.Leaves) != 3 {
		t.Fatal("doubledeep arms/leaves wrong")
	}

	sp := Spider(3, 4)
	if sp.N() != 13 || !sp.IsTree() || sp.Degree(0) != 3 {
		t.Fatalf("spider: %s", sp)
	}
}

func TestWitnessShapes(t *testing.T) {
	if st := SwapTree(); st.N() != 10 || !st.IsTree() {
		t.Fatalf("swap tree: %s", SwapTree())
	}
	k24 := CompleteBipartite(2, 4)
	if k24.N() != 6 || k24.M() != 8 {
		t.Fatalf("K_{2,4}: %s", k24)
	}
	if tc := ThreeCoalitionTree(); tc.N() != 7 || !tc.IsTree() {
		t.Fatalf("three-coalition tree: %s", ThreeCoalitionTree())
	}
}
