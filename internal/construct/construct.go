// Package construct builds the graph families the paper analyzes: baseline
// topologies, the stretched binary trees and stretched tree stars behind
// the PoA lower bounds of Sections 3.2.2–3.2.3, the d-ary trees behind the
// BSE upper bounds of Section 3.3, and the witness gadgets of Figures 4, 5
// and 7.
package construct

import (
	"fmt"

	"repro/internal/graph"
)

// Path returns the path 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

// Cycle returns the cycle on n >= 3 nodes.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("construct: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// AlmostCompleteDAry returns the almost complete d-ary tree on n nodes
// (filled level by level): node v > 0 has parent (v-1)/d, so node 0 is the
// root. This is the family of Lemma 3.18.
func AlmostCompleteDAry(n, d int) *graph.Graph {
	if d < 1 {
		panic(fmt.Sprintf("construct: arity %d must be >= 1", d))
	}
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, (v-1)/d)
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree of depth d
// (2^(d+1)-1 nodes, root 0).
func CompleteBinaryTree(d int) *graph.Graph {
	return AlmostCompleteDAry((1<<(d+1))-1, 2)
}

// Stretched is a k-stretched binary tree (Figure 3): the complete binary
// tree B of depth D with every edge subdivided into a path of k edges.
type Stretched struct {
	G *graph.Graph
	// Root is the root r (also the root of B).
	Root int
	// K and D are the stretch factor and the depth of B.
	K, D int
	// BNodes marks the nodes of the underlying binary tree B.
	BNodes []bool
}

// NewStretched builds the k-stretched binary tree with parameters d >= 0,
// k >= 1. Node count is (2^(d+1)-2)k + 1.
func NewStretched(d, k int) *Stretched {
	if d < 0 || k < 1 {
		panic(fmt.Sprintf("construct: invalid stretched tree parameters d=%d k=%d", d, k))
	}
	nB := (1 << (d + 1)) - 1
	n := (nB-1)*k + 1
	g := graph.New(n)
	bNodes := make([]bool, n)

	// Allocate ids: the B-nodes first would complicate path wiring; instead
	// walk B (heap indexing) and lay out each stretched edge's path.
	// id of B-node b: stored in bID.
	bID := make([]int, nB)
	bID[0] = 0
	bNodes[0] = true
	next := 1
	for b := 1; b < nB; b++ {
		parentB := (b - 1) / 2
		// Path parent = p_1, ..., p_{k-1}, b (k edges).
		prev := bID[parentB]
		for i := 1; i < k; i++ {
			g.AddEdge(prev, next)
			prev = next
			next++
		}
		g.AddEdge(prev, next)
		bID[b] = next
		bNodes[next] = true
		next++
	}
	return &Stretched{G: g, Root: 0, K: k, D: d, BNodes: bNodes}
}

// MaxStretchedDepth returns the maximal binary-tree depth d such that the
// k-stretched tree has at most maxNodes nodes, or -1 if even d = 0 (the
// single node) does not fit.
func MaxStretchedDepth(k, maxNodes int) int {
	d := -1
	for {
		nodes := ((1 << (d + 2)) - 2) * k // node count at depth d+1, minus 1
		if nodes+1 > maxNodes {
			return d
		}
		d++
	}
}

// TreeStar is a stretched tree star (Section 3.2.2): a root with identical
// stretched-tree child subtrees.
type TreeStar struct {
	G *graph.Graph
	// Root is the star's root r.
	Root int
	// SubtreeSize is |T|, the size of one copy.
	SubtreeSize int
	// Copies is the number of copies.
	Copies int
	// K is the stretch factor, DepthT the depth of one copy.
	K, DepthT int
}

// NewTreeStar builds the stretched tree star with stretch factor k >= 1,
// target subtree size t >= 2k+1 and target size eta >= 2t+1: T is the
// k-stretched tree with d maximal subject to |T| <= t, and the star has
// ceil((eta-1)/|T|) copies of T.
func NewTreeStar(k int, t float64, eta int) (*TreeStar, error) {
	if k < 1 {
		return nil, fmt.Errorf("construct: stretch factor %d must be >= 1", k)
	}
	if t < float64(2*k+1) {
		return nil, fmt.Errorf("construct: target subtree size %.2f below 2k+1 = %d", t, 2*k+1)
	}
	if float64(eta) < 2*t+1 {
		return nil, fmt.Errorf("construct: target size %d below 2t+1 = %.2f", eta, 2*t+1)
	}
	d := MaxStretchedDepth(k, int(t))
	if d < 0 {
		return nil, fmt.Errorf("construct: no stretched tree of size <= %.2f with k=%d", t, k)
	}
	copyTree := NewStretched(d, k)
	sz := copyTree.G.N()
	copies := (eta - 1 + sz - 1) / sz // ceil((eta-1)/|T|)

	n := 1 + copies*sz
	g := graph.New(n)
	for c := 0; c < copies; c++ {
		offset := 1 + c*sz
		for _, e := range copyTree.G.Edges() {
			g.AddEdge(offset+e.U, offset+e.V)
		}
		g.AddEdge(0, offset+copyTree.Root)
	}
	return &TreeStar{
		G:           g,
		Root:        0,
		SubtreeSize: sz,
		Copies:      copies,
		K:           k,
		DepthT:      k * d,
	}, nil
}

// Depth returns depth(G) = depth(T) + 1.
func (ts *TreeStar) Depth() int { return ts.DepthT + 1 }
