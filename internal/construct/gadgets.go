package construct

import (
	"fmt"

	"repro/internal/graph"
)

// Figure5 is the reconstruction of the paper's Figure 5 witness: a graph in
// BAE and BGE but not in BNE at α = 209/2. Two arms a—b_i—c_i—d_i hang off
// a hub a that also carries 100 pendant leaves e_1..e_100. The hub cannot
// profit from a single swap (the new partner's gain of 104 falls short of
// α), but the simultaneous double swap {−ab_1, −ab_2, +ac_1, +ac_2}
// improves a by 2 and each c_i by 105 > α.
type Figure5 struct {
	G *graph.Graph
	// A is the hub; B, C, D are the two arms' nodes; E the pendants.
	A         int
	B, C, D   [2]int
	E         []int
	LeafCount int
}

// NewFigure5 builds the gadget. leafCount is the number of pendant e-nodes;
// the paper uses 100 (with α = 104.5).
func NewFigure5(leafCount int) *Figure5 {
	n := 7 + leafCount
	g := graph.New(n)
	f := &Figure5{G: g, A: 0, LeafCount: leafCount}
	id := 1
	for arm := 0; arm < 2; arm++ {
		f.B[arm], f.C[arm], f.D[arm] = id, id+1, id+2
		g.AddEdge(f.A, f.B[arm])
		g.AddEdge(f.B[arm], f.C[arm])
		g.AddEdge(f.C[arm], f.D[arm])
		id += 3
	}
	for i := 0; i < leafCount; i++ {
		f.E = append(f.E, id)
		g.AddEdge(f.A, id)
		id++
	}
	return f
}

// Figure7 is the explicit gadget of Proposition A.7 (Figure 7): a hub a
// with i rows a—b_j—c_j—d_j. At α = 4(i−1) it is in k-BSE (the paper takes
// i = 20k) but not in BNE: the hub profits from swapping all b-edges for
// c-edges simultaneously, and each c_j gains 1 + 4(i−1) > α.
type Figure7 struct {
	G *graph.Graph
	// A is the hub; B, C, D list the row nodes.
	A       int
	B, C, D []int
	Rows    int
}

// NewFigure7 builds the gadget with the given number of rows (the paper's
// i). n = 3·rows + 1.
func NewFigure7(rows int) *Figure7 {
	if rows < 1 {
		panic(fmt.Sprintf("construct: figure 7 needs at least one row, got %d", rows))
	}
	g := graph.New(3*rows + 1)
	f := &Figure7{G: g, A: 0, Rows: rows}
	id := 1
	for j := 0; j < rows; j++ {
		b, c, d := id, id+1, id+2
		f.B = append(f.B, b)
		f.C = append(f.C, c)
		f.D = append(f.D, d)
		g.AddEdge(f.A, b)
		g.AddEdge(b, c)
		g.AddEdge(c, d)
		id += 3
	}
	return f
}

// AlphaNum returns the numerator of the gadget's edge price α = 4(i−1)
// (an integer).
func (f *Figure7) AlphaNum() int64 { return 4 * (int64(f.Rows) - 1) }

// Figure6 is the gadget of Proposition A.5 (Figure 6): a 10-node graph in
// BNE but not in 2-BSE at α = 7. Its topology was recovered by constrained
// search and matches the paper's stated agent distance costs exactly
// (dist(a1) = 19, dist(b1) = 27, dist(c1) = 19): the a-nodes carry a
// perfect matching a1–a3, a2–a4; each b_i is pendant at a_i; c1 joins a1
// and a4, c2 joins a2 and a3. The violating 2-coalition {a1, a2} drops the
// two c-edges incident to it and adds the direct edge a1–a2, mirroring the
// paper's {a1, a3} move.
type Figure6 struct {
	G *graph.Graph
	// A, B, C index the agent groups: A[i] carries pendant B[i]; C has the
	// two connector agents.
	A, B [4]int
	C    [2]int
}

// NewFigure6 builds the gadget (10 nodes, for α = 7).
func NewFigure6() *Figure6 {
	g := graph.New(10)
	f := &Figure6{G: g}
	for i := 0; i < 4; i++ {
		f.A[i] = i
		f.B[i] = 4 + i
		g.AddEdge(f.A[i], f.B[i])
	}
	f.C[0], f.C[1] = 8, 9
	// Matching among the a-nodes.
	g.AddEdge(f.A[0], f.A[2])
	g.AddEdge(f.A[1], f.A[3])
	// Connectors: c1 joins a1, a4; c2 joins a2, a3.
	g.AddEdge(f.C[0], f.A[0])
	g.AddEdge(f.C[0], f.A[3])
	g.AddEdge(f.C[1], f.A[1])
	g.AddEdge(f.C[1], f.A[2])
	return f
}

// DoubleDeep is the Lemma 3.14 / Figure 4 gadget: a hub u with two long
// path arms of equal length plus pendant leaves that make u the 1-median.
// In a tree that is deep on two child subtrees, the coalition {x, z, z'}
// (adding xz and zz', removing xy) improves all three members — the move
// that powers the 3-BSE constant PoA.
type DoubleDeep struct {
	G *graph.Graph
	// U is the hub; ArmA and ArmB are the two arms' node paths (hub
	// excluded), index 0 adjacent to the hub.
	U          int
	ArmA, ArmB []int
	Leaves     []int
}

// NewDoubleDeep builds the gadget with two arms of the given length and
// pendant leaves at the hub. For the 1-median to sit at the hub, leaves
// should be at least armLen.
func NewDoubleDeep(armLen, leaves int) *DoubleDeep {
	if armLen < 1 {
		panic(fmt.Sprintf("construct: arm length %d must be >= 1", armLen))
	}
	n := 1 + 2*armLen + leaves
	g := graph.New(n)
	d := &DoubleDeep{G: g, U: 0}
	id := 1
	prev := d.U
	for i := 0; i < armLen; i++ {
		g.AddEdge(prev, id)
		d.ArmA = append(d.ArmA, id)
		prev = id
		id++
	}
	prev = d.U
	for i := 0; i < armLen; i++ {
		g.AddEdge(prev, id)
		d.ArmB = append(d.ArmB, id)
		prev = id
		id++
	}
	for i := 0; i < leaves; i++ {
		g.AddEdge(d.U, id)
		d.Leaves = append(d.Leaves, id)
		id++
	}
	return d
}

// Figure2 is a witness for Proposition 2.3 (the paper's Figure 2),
// refuting the Corbo–Parkes conjecture: a graph with an edge assignment
// that is a pure Nash equilibrium of the unilateral NCG at α = 2 while the
// graph is not pairwise stable in the BNCG — agent 0 profits from
// bilaterally dropping the edge 0–2 it never paid for unilaterally. The
// witness was recovered by exhaustive search over all 5-node graphs and
// ownerships (the paper's own figure uses α = 4 on a different gadget; any
// checker-verified witness refutes the conjecture).
type Figure2 struct {
	G *graph.Graph
	// Owner maps each edge to the agent paying for it in the NCG.
	Owner map[graph.Edge]int
}

// NewFigure2 builds the witness (5 nodes, for α = 2).
func NewFigure2() *Figure2 {
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 4}, {U: 1, V: 2}, {U: 1, V: 3},
	})
	return &Figure2{
		G: g,
		Owner: map[graph.Edge]int{
			{U: 0, V: 1}: 0,
			{U: 0, V: 2}: 2,
			{U: 0, V: 4}: 0,
			{U: 1, V: 2}: 2,
			{U: 1, V: 3}: 1,
		},
	}
}

// Figure8 is a witness for the reverse direction of Proposition 2.1 (the
// paper's Figure 8): a graph in BAE of the BNCG that is not in Add
// Equilibrium of the unilateral NCG at α = 2. It is the broom 2–1–0 with
// leaves 3, 4 at node 0: agent 2 gains 3 > α by unilaterally buying 2–0,
// but agent 0 gains only 1 < α, so the bilateral addition fails. Recovered
// by search; the paper's 28-node gadget (α = 9/2) witnesses the same
// separation.
func Figure8() *graph.Graph {
	return graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 1, V: 2},
	})
}

// Spider returns a spider: `legs` paths of length `legLen` glued at a
// center (node 0). Used as a scalable PS lower-bound family and in
// dynamics experiments.
func Spider(legs, legLen int) *graph.Graph {
	n := 1 + legs*legLen
	g := graph.New(n)
	id := 1
	for l := 0; l < legs; l++ {
		prev := 0
		for i := 0; i < legLen; i++ {
			g.AddEdge(prev, id)
			prev = id
			id++
		}
	}
	return g
}
