package construct

import (
	"repro/internal/graph"
)

// Separation witnesses recovered by exhaustive and randomized search (see
// the F1a experiment). Each makes one inclusion of Figure 1a proper; all
// are verified by the exact checkers in tests and experiments.

// SwapTree is a 10-node tree that is in PS (trees are always in RE, and no
// bilateral addition pays off at α = 12) but not in BSwE: agent 1 swaps
// its edge to 3 for an edge to 0, improving both 1 and 0. It separates
// BGE ⊊ PS and inhabits the Figure 1b region RE ∧ BAE ∧ ¬BSwE.
func SwapTree() *graph.Graph {
	return graph.MustFromEdges(10, []graph.Edge{
		{U: 0, V: 4}, {U: 0, V: 7}, {U: 1, V: 3}, {U: 1, V: 5}, {U: 1, V: 9},
		{U: 2, V: 9}, {U: 3, V: 6}, {U: 4, V: 6}, {U: 5, V: 8},
	})
}

// SwapTreeAlphaNum is the integer edge price at which SwapTree separates.
const SwapTreeAlphaNum = 12

// CompleteBipartite returns K_{a,b} with part A = {0..a-1}. At α = 5/4,
// K_{2,4} is in BGE but not in 2-BSE: the hub coalition {0, 1} drops two
// spoke edges each (0-4, 0-5, 1-2, 1-3) and adds the direct edge 0-1,
// separating 2-BSE ⊊ BGE.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// ThreeCoalitionTree is a 7-node tree (a path 0-1-2-3 into a star at 3)
// that is in 2-BSE at α = 17/4 but not in 3-BSE: the coalition {0, 2, 3}
// removes 1-2 and 2-3 while adding 0-2 and 0-3, separating 3-BSE ⊊ 2-BSE.
func ThreeCoalitionTree() *graph.Graph {
	return graph.MustFromEdges(7, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 3, V: 6},
	})
}
