// Package fleet implements lease-based work distribution for sweeps that
// outgrow one process: a coordinator shards the symmetry-pruned class
// stream into contiguous [start, end) ranges and persists them in a lease
// table; any number of independent worker processes claim ranges, certify
// the classes with the parametric engine, and append certificates to their
// own store shards; a merge step folds the shards into one canonical
// store. The n=7 connected-graph sweep (853 classes × 9 concepts) is the
// workload this exists for.
//
// The lease table generalizes the resumable-sweep checkpoint: where
// checkpoint.json records one process's progress through one grid,
// fleet.json records per-range ownership — owner, heartbeat deadline,
// epoch, completion state — for a fleet of processes sharing a directory.
// Every mutation is an atomic read-modify-write under an flock(2) held on
// fleet.lock, so claims are race-free across processes on one filesystem,
// and the table file itself is replaced atomically (temp file + fsync +
// rename) so a crash mid-write never corrupts it.
//
// Fault model. A worker that dies mid-lease simply stops heartbeating; its
// lease expires and the range becomes claimable again (by any worker, or
// explicitly via the coordinator's Reclaim). Every reclaim increments the
// range's epoch, which fences the previous owner: its Heartbeat and
// Complete calls fail with ErrLeaseLost, so a paused-but-alive worker
// cannot mark a range done after losing it. Re-running a reclaimed range
// is always sound — certificates are deterministic pure functions of
// (class, concept), so the original owner's partial shard and the new
// owner's full shard agree wherever they overlap, and the store merge
// folds the duplicates (and would fail loudly on the contradictions that
// determinism makes impossible).
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/sweep"
)

const (
	// TableFile is the lease table's file name within a fleet directory.
	TableFile = "fleet.json"
	// lockFile serializes table mutations across processes.
	lockFile = "fleet.lock"
	// ShardsDir is the conventional subdirectory under which workers place
	// their store shards when not told otherwise — the coordinator's merge
	// step globs it.
	ShardsDir = "shards"
)

// Range states.
const (
	StatePending = "pending" // never claimed, or reclaimed after expiry
	StateLeased  = "leased"  // owned by a worker with a live deadline
	StateDone    = "done"    // certified and durable in the owner's shard
)

// ErrLeaseLost reports that a lease operation was fenced off: the range
// was reclaimed (epoch advanced) or completed by another owner since the
// caller claimed it. The caller must stop working the range; whatever it
// already appended to its shard is harmless duplicate work.
var ErrLeaseLost = errors.New("fleet: lease lost")

// Range is one contiguous slice [Start, End) of the pruned class stream
// and its lease state.
type Range struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	State string `json:"state"`
	// Owner identifies the worker holding (or, once done, having held) the
	// lease.
	Owner string `json:"owner,omitempty"`
	// Epoch counts grants of this range. It fences stale owners: every
	// lease operation must present the epoch it was granted, and a reclaim
	// advances it.
	Epoch int `json:"epoch,omitempty"`
	// Deadline is the heartbeat expiry; past it a leased range is
	// claimable by anyone.
	Deadline time.Time `json:"deadline,omitempty"`
	// Reclaims counts expiry reclaims — non-zero means a worker died (or
	// stalled past its TTL) while holding this range.
	Reclaims int `json:"reclaims,omitempty"`
}

// Table is the durable lease table of one fleet run.
type Table struct {
	// Version is the checkpoint schema generation (sweep.CheckpointVersion);
	// Kind distinguishes the lease table from a plain sweep checkpoint.
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// Grid is the sweep every range is a slice of. Workers take the grid
	// from here, not from flags, so a fleet cannot mix grids.
	Grid sweep.Checkpoint `json:"grid"`
	// Classes is the total class count of the stream; RangeSize the
	// planned classes per range (the last range may be shorter).
	Classes   int     `json:"classes"`
	RangeSize int     `json:"range_size"`
	Ranges    []Range `json:"ranges"`
}

// tableKind is the Kind value of a lease table.
const tableKind = "fleet"

// Lease is a worker's claim on one range: the handle every subsequent
// lease operation must present.
type Lease struct {
	Index      int
	Start, End int
	Owner      string
	Epoch      int
	Deadline   time.Time
	// Stolen reports that this claim took over an expired lease from
	// another owner (the range's Reclaims was bumped) — surfaced as a
	// "steal" trace event and a sidecar counter by the worker.
	Stolen bool
}

// Progress summarizes a table's state.
type Progress struct {
	Pending, Leased, Done int
	// Classes counts the classes of done ranges; Reclaims sums the
	// expiry reclaims across ranges.
	Classes  int
	Reclaims int
}

// Plan builds the lease table for a sweep: it counts the classes of the
// pruned stream and cuts them into ⌈classes/rangeSize⌉ contiguous ranges.
// opts supplies the grid (N, Source, Alphas, Concepts, Rho); execution
// details are ignored.
func Plan(ctx context.Context, opts sweep.Options, rangeSize int) (*Table, error) {
	if rangeSize < 1 {
		return nil, fmt.Errorf("fleet: range size must be positive, got %d", rangeSize)
	}
	classes, err := sweep.CountClasses(ctx, opts.N, opts.Source)
	if err != nil {
		return nil, err
	}
	if classes == 0 {
		return nil, fmt.Errorf("fleet: empty class stream for n=%d source=%s", opts.N, opts.Source)
	}
	t := &Table{
		Version:   sweep.CheckpointVersion,
		Kind:      tableKind,
		Grid:      sweep.NewCheckpoint(opts, 0, 0),
		Classes:   classes,
		RangeSize: rangeSize,
	}
	for start := 0; start < classes; start += rangeSize {
		end := min(start+rangeSize, classes)
		t.Ranges = append(t.Ranges, Range{Start: start, End: end, State: StatePending})
	}
	return t, nil
}

// Progress summarizes the table.
func (t *Table) Progress() Progress {
	var p Progress
	for _, r := range t.Ranges {
		switch r.State {
		case StatePending:
			p.Pending++
		case StateLeased:
			p.Leased++
		case StateDone:
			p.Done++
			p.Classes += r.End - r.Start
		}
		p.Reclaims += r.Reclaims
	}
	return p
}

// Done reports whether every range is complete.
func (t *Table) Done() bool {
	for _, r := range t.Ranges {
		if r.State != StateDone {
			return false
		}
	}
	return true
}

// validate rejects tables this binary cannot safely interpret.
func (t *Table) validate() error {
	if t.Version > sweep.CheckpointVersion {
		return fmt.Errorf("fleet: table schema version %d is newer than this binary's %d", t.Version, sweep.CheckpointVersion)
	}
	if t.Kind != tableKind {
		return fmt.Errorf("fleet: %s holds a %q document, not a lease table", TableFile, t.Kind)
	}
	if len(t.Ranges) == 0 {
		return fmt.Errorf("fleet: lease table with no ranges")
	}
	return nil
}

// Create writes the lease table into dir, failing if one already exists —
// re-running a coordinator against a planned fleet must Load and resume,
// not silently replan ranges out from under live workers.
func Create(dir string, t *Table) error {
	if err := t.validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	unlock, err := lockDir(dir)
	if err != nil {
		return err
	}
	defer unlock()
	if _, err := os.Stat(filepath.Join(dir, TableFile)); err == nil {
		return fmt.Errorf("fleet: %s already holds a lease table", dir)
	} else if !os.IsNotExist(err) {
		return err
	}
	return writeTable(dir, t)
}

// Load reads the lease table of dir.
func Load(dir string) (*Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, TableFile))
	if err != nil {
		return nil, err
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("fleet: corrupt lease table: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Claim grants the caller the first claimable range: pending, or leased
// past its deadline (a direct steal, so workers make progress even with no
// coordinator running to Reclaim). ok is false when nothing is claimable —
// every range is done or soundly leased.
func Claim(dir, owner string, ttl time.Duration) (Lease, bool, error) {
	var lease Lease
	ok := false
	err := mutate(dir, func(t *Table) (bool, error) {
		now := time.Now()
		for i := range t.Ranges {
			r := &t.Ranges[i]
			stolen := false
			switch {
			case r.State == StatePending:
			case r.State == StateLeased && now.After(r.Deadline):
				r.Reclaims++
				stolen = true
			default:
				continue
			}
			r.State = StateLeased
			r.Owner = owner
			r.Epoch++
			r.Deadline = now.Add(ttl)
			lease = Lease{Index: i, Start: r.Start, End: r.End, Owner: owner, Epoch: r.Epoch, Deadline: r.Deadline, Stolen: stolen}
			ok = true
			return true, nil
		}
		return false, nil
	})
	return lease, ok, err
}

// Heartbeat extends a lease's deadline by ttl. It fails with ErrLeaseLost
// when the lease was fenced off (reclaimed or completed by someone else);
// the worker must then abandon the range.
func Heartbeat(dir string, l Lease, ttl time.Duration) (Lease, error) {
	err := mutate(dir, func(t *Table) (bool, error) {
		r, err := t.held(l)
		if err != nil {
			return false, err
		}
		r.Deadline = time.Now().Add(ttl)
		l.Deadline = r.Deadline
		return true, nil
	})
	return l, err
}

// Complete marks a leased range done. The caller must have made the
// range's results durable (store Flush) first: Complete is the point after
// which no one will ever run these classes again. It fails with
// ErrLeaseLost when the lease was fenced off — the caller's durable work
// is then harmless overlap for the merge to fold.
func Complete(dir string, l Lease) error {
	return mutate(dir, func(t *Table) (bool, error) {
		r, err := t.held(l)
		if err != nil {
			return false, err
		}
		r.State = StateDone
		r.Deadline = time.Time{}
		return true, nil
	})
}

// held resolves the range of a lease, verifying the caller still owns it.
func (t *Table) held(l Lease) (*Range, error) {
	if l.Index < 0 || l.Index >= len(t.Ranges) {
		return nil, fmt.Errorf("fleet: lease for range %d of %d", l.Index, len(t.Ranges))
	}
	r := &t.Ranges[l.Index]
	if r.State != StateLeased || r.Owner != l.Owner || r.Epoch != l.Epoch {
		return nil, fmt.Errorf("%w: range [%d,%d) now %s/owner=%q/epoch=%d", ErrLeaseLost, r.Start, r.End, r.State, r.Owner, r.Epoch)
	}
	return r, nil
}

// Reclaim returns every expired lease to pending — the coordinator's
// monitoring duty, making died-mid-lease ranges visible as pending again
// (workers could also steal them directly at Claim; Reclaim keeps the
// table honest in between). It returns the number reclaimed.
func Reclaim(dir string) (int, error) {
	n := 0
	err := mutate(dir, func(t *Table) (bool, error) {
		now := time.Now()
		for i := range t.Ranges {
			r := &t.Ranges[i]
			if r.State == StateLeased && now.After(r.Deadline) {
				r.State = StatePending
				r.Owner = ""
				r.Deadline = time.Time{}
				r.Epoch++ // fence the dead owner even before a re-grant
				r.Reclaims++
				n++
			}
		}
		return n > 0, nil
	})
	return n, err
}

// mutate runs one atomic read-modify-write of dir's lease table under the
// fleet lock. fn mutates the table in place and reports whether anything
// changed (an unchanged table is not rewritten).
func mutate(dir string, fn func(*Table) (bool, error)) error {
	unlock, err := lockDir(dir)
	if err != nil {
		return err
	}
	defer unlock()
	t, err := Load(dir)
	if err != nil {
		return err
	}
	changed, err := fn(t)
	if err != nil || !changed {
		return err
	}
	return writeTable(dir, t)
}

// writeTable atomically replaces dir's lease table: temp file, fsync,
// rename, directory sync — a crash leaves either the old table or the new
// one, never a torn mix.
func writeTable(dir string, t *Table) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, TableFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	_ = d.Sync() // best-effort, as elsewhere in the store
	return d.Close()
}

// lockDir takes the fleet lock: a blocking flock(2) on fleet.lock. The
// kernel releases it with the holder's process, so a crashed mutator never
// wedges the fleet. Critical sections are a JSON read-modify-write —
// microseconds — so blocking is fine.
func lockDir(dir string) (func(), error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: locking %s: %w", dir, err)
	}
	return func() { _ = f.Close() }, nil
}
