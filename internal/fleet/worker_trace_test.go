package fleet

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestWorkerTraceLifecycle runs one traced worker over a fleet holding an
// expired lease from a dead owner, and checks the trace carries the whole
// lease lifecycle — warm-start, claims, ranges, completions, and a steal
// event for the expired lease — while the metrics registry counts the
// same story and still lints.
func TestWorkerTraceLifecycle(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, mustPlan(t, 4, 2)); err != nil {
		t.Fatal(err)
	}
	// A dead worker holds one range on a lease that expires immediately.
	if _, ok, err := Claim(dir, "dead", time.Millisecond); err != nil || !ok {
		t.Fatalf("seeding dead lease: ok=%v err=%v", ok, err)
	}
	time.Sleep(5 * time.Millisecond)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, obs.TracerOptions{Source: "w1"})
	m := obs.NewComputeMetrics()
	stats, err := RunWorker(context.Background(), WorkerOptions{
		Dir:     dir,
		Owner:   "w1",
		Store:   st,
		TTL:     5 * time.Second,
		Poll:    10 * time.Millisecond,
		Trace:   tr,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	parsed, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()), "w1")
	if err != nil {
		t.Fatalf("worker trace does not parse: %v", err)
	}
	spans := map[string]int{}
	for _, s := range parsed.Spans {
		spans[s.Name]++
	}
	if spans["warmstart"] != 1 {
		t.Fatalf("warmstart spans = %d, want 1", spans["warmstart"])
	}
	if spans["range"] != stats.Ranges || spans["complete"] != stats.Ranges {
		t.Fatalf("range/complete spans = %d/%d, worker completed %d ranges",
			spans["range"], spans["complete"], stats.Ranges)
	}
	if spans["claim"] < stats.Ranges {
		t.Fatalf("claim spans = %d, want >= %d", spans["claim"], stats.Ranges)
	}
	steals := 0
	for _, e := range parsed.Events {
		if e.Name == "steal" {
			steals++
		}
	}
	if steals != 1 {
		t.Fatalf("steal events = %d, want exactly 1 (the dead owner's range)", steals)
	}

	var b strings.Builder
	m.Registry.WriteText(&b)
	if err := obs.LintExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("worker metrics fail lint: %v\n%s", err, b.String())
	}
	for _, want := range []string{
		"bncg_worker_steals_total 1",
		"bncg_lease_epoch 0", // idle again after the run
		"bncg_cache_hits_total ",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("worker exposition missing %q:\n%s", want, b.String())
		}
	}
	wantRanges := fmt.Sprintf("bncg_worker_ranges_total %d", stats.Ranges)
	if !strings.Contains(b.String(), wantRanges) {
		t.Fatalf("worker exposition missing %q", wantRanges)
	}
}
