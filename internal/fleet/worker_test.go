package fleet

import (
	"context"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/sweep"
)

// referenceStore runs the grid in-process (no fleet) and returns the
// directory of the store its certificates were persisted to: the ground
// truth every fleet run must reproduce exactly.
func referenceStore(t *testing.T, opts sweep.Options) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := sweep.NewCache()
	cache.Persist(st)
	opts.Cache = cache
	if _, err := sweep.Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	cache.Persist(nil)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func openStore(t *testing.T, dir string, readonly bool) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{ReadOnly: readonly})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// mergeShards folds the given shard directories into a fresh store and
// returns its directory plus the accumulated ingest stats.
func mergeShards(t *testing.T, shards ...string) (string, store.IngestStats) {
	t.Helper()
	dir := t.TempDir()
	dst, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total store.IngestStats
	for _, shard := range shards {
		src := openStore(t, shard, true)
		st, err := dst.Ingest(src)
		if err != nil {
			t.Fatalf("ingest %s: %v", shard, err)
		}
		total.Certificates += st.Certificates
		total.Verdicts += st.Verdicts
		total.Duplicates += st.Duplicates
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, total
}

// sameRecords asserts two stores hold identical record sets — certificates
// and per-α verdicts, compared field-by-field in canonical order. This is
// the merged-equals-single-process guarantee.
func sameRecords(t *testing.T, gotDir, wantDir string) {
	t.Helper()
	got, want := openStore(t, gotDir, true), openStore(t, wantDir, true)
	certs := func(s *store.Store) []store.CertRecord {
		var recs []store.CertRecord
		s.RangeCerts(func(r store.CertRecord) bool { recs = append(recs, r); return true })
		slices.SortFunc(recs, func(a, b store.CertRecord) int {
			if c := strings.Compare(a.Canon, b.Canon); c != 0 {
				return c
			}
			return int(a.Concept) - int(b.Concept)
		})
		return recs
	}
	gc, wc := certs(got), certs(want)
	if len(wc) == 0 {
		t.Fatal("reference store holds no certificates")
	}
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("certificate sets differ: %d vs %d records", len(gc), len(wc))
	}
	verdicts := func(s *store.Store) []store.Record {
		var recs []store.Record
		s.Range(func(r store.Record) bool { recs = append(recs, r); return true })
		slices.SortFunc(recs, func(a, b store.Record) int {
			if c := strings.Compare(a.Canon, b.Canon); c != 0 {
				return c
			}
			if a.Num != b.Num {
				return int(a.Num - b.Num)
			}
			if a.Den != b.Den {
				return int(a.Den - b.Den)
			}
			return int(a.Concept) - int(b.Concept)
		})
		return recs
	}
	if gv, wv := verdicts(got), verdicts(want); !reflect.DeepEqual(gv, wv) {
		t.Fatalf("verdict sets differ: %d vs %d records", len(gv), len(wv))
	}
}

// TestTwoWorkerFleetMatchesSingleProcess is the acceptance test: two
// worker processes' worth of RunWorker loops race over the full n=5
// connected-graphs grid, their shards merge without conflict, and the
// merged store is record-identical to a single-process sweep of the same
// grid. Run under -race, this also exercises claim/heartbeat concurrency.
func TestTwoWorkerFleetMatchesSingleProcess(t *testing.T) {
	grid := gridOptions(5)
	dir := t.TempDir()
	tab, err := Plan(context.Background(), grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Ranges) < 2 {
		t.Fatalf("grid too small to share: %d ranges", len(tab.Ranges))
	}
	if err := Create(dir, tab); err != nil {
		t.Fatal(err)
	}

	shards := []string{
		filepath.Join(dir, ShardsDir, "w1"),
		filepath.Join(dir, ShardsDir, "w2"),
	}
	var wg sync.WaitGroup
	stats := make([]WorkerStats, len(shards))
	errs := make([]error, len(shards))
	for i, shard := range shards {
		st, err := store.Open(shard, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			stats[i], errs[i] = RunWorker(context.Background(), WorkerOptions{
				Dir:   dir,
				Owner: filepath.Base(shard),
				Store: st,
				TTL:   5 * time.Second,
				Poll:  20 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	ranges, classes := 0, 0
	for i := range shards {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		ranges += stats[i].Ranges
		classes += stats[i].Classes
	}
	if ranges != len(tab.Ranges) || classes != tab.Classes {
		t.Fatalf("workers completed %d ranges / %d classes, table has %d / %d",
			ranges, classes, len(tab.Ranges), tab.Classes)
	}
	final, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done() {
		t.Fatalf("fleet not done: %+v", final.Progress())
	}

	merged, _ := mergeShards(t, shards...)
	sameRecords(t, merged, referenceStore(t, grid))
}

// TestWorkerDeathMidLeaseIsRecovered kills a worker mid-lease — it claims
// a range, certifies it into its shard, and dies without completing — and
// checks the fleet still converges: the survivor steals the expired lease,
// re-certifies the range, and the merge folds the dead worker's partial
// shard into pure duplicates. The merged store is still record-identical
// to the single-process reference.
func TestWorkerDeathMidLeaseIsRecovered(t *testing.T) {
	grid := gridOptions(5)
	dir := t.TempDir()
	tab, err := Plan(context.Background(), grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Create(dir, tab); err != nil {
		t.Fatal(err)
	}

	// The victim: claim with a short TTL, do the work, die before
	// completing. Its shard holds the range's certificates; the table
	// still shows the range leased.
	victimShard := filepath.Join(dir, ShardsDir, "victim")
	victim, ok, err := Claim(dir, "victim", 50*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("victim claim: ok=%v err=%v", ok, err)
	}
	vst, err := store.Open(victimShard, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vcache := sweep.NewCache()
	vcache.Persist(vst)
	vopts := grid
	vopts.ClassStart, vopts.ClassEnd = victim.Start, victim.End
	vopts.Cache = vcache
	if _, err := sweep.Run(context.Background(), vopts); err != nil {
		t.Fatal(err)
	}
	vcache.Persist(nil)
	if err := vst.Close(); err != nil {
		t.Fatal(err)
	}
	// No Complete: the victim is dead. Let the lease expire.
	time.Sleep(60 * time.Millisecond)

	survivorShard := filepath.Join(dir, ShardsDir, "survivor")
	sst, err := store.Open(survivorShard, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunWorker(context.Background(), WorkerOptions{
		Dir:   dir,
		Owner: "survivor",
		Store: sst,
		TTL:   time.Second,
		Poll:  20 * time.Millisecond,
	})
	if cerr := sst.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	// The survivor must have done every range, including the stolen one.
	if stats.Ranges != len(tab.Ranges) || stats.Classes != tab.Classes {
		t.Fatalf("survivor completed %d ranges / %d classes, want %d / %d",
			stats.Ranges, stats.Classes, len(tab.Ranges), tab.Classes)
	}
	final, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done() {
		t.Fatalf("fleet not done after recovery: %+v", final.Progress())
	}
	if final.Ranges[victim.Index].Reclaims != 1 {
		t.Fatalf("victim's range not recorded as stolen: %+v", final.Ranges[victim.Index])
	}

	merged, total := mergeShards(t, victimShard, survivorShard)
	if total.Duplicates == 0 {
		t.Fatal("victim's partial work produced no fold-able duplicates")
	}
	sameRecords(t, merged, referenceStore(t, grid))
}
