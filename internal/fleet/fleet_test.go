package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/sweep"
)

// gridOptions is the small grid every lease-table test plans over: n=4
// connected graphs, all concepts, one nominal α (certificates answer the
// whole axis anyway).
func gridOptions(n int) sweep.Options {
	return sweep.Options{
		N:        n,
		Alphas:   []game.Alpha{game.A(1)},
		Concepts: eq.Concepts(),
		Source:   sweep.Graphs,
	}
}

func mustPlan(t *testing.T, n, rangeSize int) *Table {
	t.Helper()
	tab, err := Plan(context.Background(), gridOptions(n), rangeSize)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestPlanCreateLoad: planning cuts the class stream into contiguous
// ranges covering [0, Classes) exactly; the table round-trips through
// Create/Load; a second Create refuses to replan over a live table.
func TestPlanCreateLoad(t *testing.T) {
	tab := mustPlan(t, 4, 2)
	classes, err := sweep.CountClasses(context.Background(), 4, sweep.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Classes != classes || classes == 0 {
		t.Fatalf("planned %d classes, stream has %d", tab.Classes, classes)
	}
	next := 0
	for i, r := range tab.Ranges {
		if r.Start != next || r.End <= r.Start || r.End-r.Start > 2 {
			t.Fatalf("range %d is [%d,%d), want contiguous from %d with size <= 2", i, r.Start, r.End, next)
		}
		if r.State != StatePending || r.Epoch != 0 {
			t.Fatalf("fresh range %d: %+v", i, r)
		}
		next = r.End
	}
	if next != classes {
		t.Fatalf("ranges cover [0,%d), stream has %d classes", next, classes)
	}

	dir := t.TempDir()
	if err := Create(dir, tab); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classes != tab.Classes || len(back.Ranges) != len(tab.Ranges) || back.Version != sweep.CheckpointVersion {
		t.Fatalf("reloaded table differs: %+v vs %+v", back, tab)
	}
	if err := Create(dir, tab); err == nil {
		t.Fatal("Create replanned over an existing lease table")
	}
}

// TestClaimCompleteLifecycle: claims drain the pending pool, completions
// mark ranges done, and a drained-and-done table reports Done.
func TestClaimCompleteLifecycle(t *testing.T) {
	dir := t.TempDir()
	tab := mustPlan(t, 4, 2)
	if err := Create(dir, tab); err != nil {
		t.Fatal(err)
	}
	var leases []Lease
	for {
		l, ok, err := Claim(dir, "w1", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		leases = append(leases, l)
	}
	if len(leases) != len(tab.Ranges) {
		t.Fatalf("claimed %d of %d ranges", len(leases), len(tab.Ranges))
	}
	mid, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p := mid.Progress(); p.Leased != len(tab.Ranges) || p.Pending != 0 || p.Done != 0 {
		t.Fatalf("mid progress %+v", p)
	}
	if mid.Done() {
		t.Fatal("fully leased table reports Done")
	}
	for _, l := range leases {
		if err := Complete(dir, l); err != nil {
			t.Fatal(err)
		}
	}
	end, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !end.Done() {
		t.Fatalf("completed table not Done: %+v", end.Progress())
	}
	// Completing again with the now-stale lease is fenced off.
	if err := Complete(dir, leases[0]); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Complete: %v, want ErrLeaseLost", err)
	}
}

// TestExpiryStealAndFencing is the fault-model test: a lease past its
// deadline is stolen by the next claimer with a bumped epoch, and every
// operation the previous owner attempts afterwards — heartbeat or
// completion — fails with ErrLeaseLost, even though that owner is still
// alive (the stalled-not-dead case epoch fencing exists for).
func TestExpiryStealAndFencing(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, mustPlan(t, 4, 100)); err != nil {
		t.Fatal(err)
	}
	old, ok, err := Claim(dir, "stalled", 10*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	// Before expiry nobody can steal it.
	if _, ok, _ := Claim(dir, "thief", time.Minute); ok {
		t.Fatal("live lease stolen")
	}
	time.Sleep(20 * time.Millisecond)
	stolen, ok, err := Claim(dir, "thief", time.Minute)
	if err != nil || !ok {
		t.Fatalf("steal after expiry: ok=%v err=%v", ok, err)
	}
	if stolen.Index != old.Index || stolen.Epoch <= old.Epoch {
		t.Fatalf("steal got %+v, old was %+v", stolen, old)
	}
	if _, err := Heartbeat(dir, old, time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stalled owner heartbeat: %v, want ErrLeaseLost", err)
	}
	if err := Complete(dir, old); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stalled owner complete: %v, want ErrLeaseLost", err)
	}
	// The thief's lease is sound: heartbeat extends, completion lands.
	extended, err := Heartbeat(dir, stolen, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !extended.Deadline.After(stolen.Deadline) {
		t.Fatalf("heartbeat did not extend: %v -> %v", stolen.Deadline, extended.Deadline)
	}
	if err := Complete(dir, extended); err != nil {
		t.Fatal(err)
	}
	tab, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Ranges[old.Index].Reclaims != 1 {
		t.Fatalf("steal not counted: %+v", tab.Ranges[old.Index])
	}
}

// TestReclaimReturnsExpiredLeases: the coordinator's Reclaim moves only
// expired leases back to pending, bumping their epoch so the dead owner's
// lease can never complete.
func TestReclaimReturnsExpiredLeases(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, mustPlan(t, 4, 2)); err != nil {
		t.Fatal(err)
	}
	dead, ok, err := Claim(dir, "dead", 10*time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	live, ok, err := Claim(dir, "live", time.Minute)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	time.Sleep(20 * time.Millisecond)
	n, err := Reclaim(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reclaimed %d leases, want 1 (only the expired one)", n)
	}
	tab, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r := tab.Ranges[dead.Index]; r.State != StatePending || r.Reclaims != 1 || r.Epoch <= dead.Epoch {
		t.Fatalf("reclaimed range: %+v", r)
	}
	if r := tab.Ranges[live.Index]; r.State != StateLeased || r.Owner != "live" {
		t.Fatalf("live lease disturbed by Reclaim: %+v", r)
	}
	if err := Complete(dir, dead); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead owner completed a reclaimed range: %v", err)
	}
}

// TestConcurrentClaimersNoDoubleGrant races many claimers against one
// table (run under -race): with long TTLs, every range must be granted to
// exactly one claimer — the flock + read-modify-write discipline may never
// hand the same live lease to two owners.
func TestConcurrentClaimersNoDoubleGrant(t *testing.T) {
	dir := t.TempDir()
	tab := mustPlan(t, 5, 1) // one class per range: maximum contention
	if err := Create(dir, tab); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	granted := make(map[int]string)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		owner := string(rune('a' + w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				l, ok, err := Claim(dir, owner, time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				if prev, dup := granted[l.Index]; dup {
					t.Errorf("range %d granted to both %s and %s", l.Index, prev, owner)
				}
				granted[l.Index] = owner
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(granted) != len(tab.Ranges) {
		t.Fatalf("granted %d of %d ranges", len(granted), len(tab.Ranges))
	}
}
