package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Dir is the fleet directory holding the lease table.
	Dir string
	// Owner identifies this worker in the lease table.
	Owner string
	// Store is the worker's own shard: certificates computed here are
	// appended to it (and warm-started from it, so a restarted worker
	// re-claiming a range it already certified recomputes nothing).
	Store *store.Store
	// TTL is the lease duration; heartbeats extend it at TTL/3 cadence.
	// Values <= 0 select 30s.
	TTL time.Duration
	// Poll is the back-off between claim attempts when nothing is
	// claimable but the fleet is not done (another worker holds the
	// remaining leases and may yet die). Values <= 0 select 500ms.
	Poll time.Duration
	// SweepWorkers is the per-range sweep pool size (<= 0 = GOMAXPROCS).
	SweepWorkers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Trace, when non-nil, records the worker lifecycle: "warmstart",
	// "claim", "wait", "range", "heartbeat" and "complete" spans plus a
	// "steal" event whenever a claim takes over an expired lease. The
	// same tracer is threaded into the per-range sweeps, so one shard
	// trace file holds the worker's whole timeline.
	Trace *obs.Tracer
	// Metrics, when non-nil, records lease gauges and range counters for
	// the sidecar exposition, and is threaded into the sweeps.
	Metrics *obs.ComputeMetrics
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	Ranges     int   // ranges completed by this worker
	Classes    int   // classes in those ranges
	Certified  int64 // certificates computed fresh
	Hits       int64 // verdict-unit cache hits (warm-started shard)
	LeasesLost int   // ranges abandoned to a reclaim mid-work
}

// RunWorker claims and certifies ranges until the fleet's table is fully
// done, then returns. It is the body of `bncg worker`: one call per worker
// process, any number of processes per fleet directory. The worker flushes
// its shard before marking a range complete — completion in the table
// implies durability in the shard — and a lease lost mid-range (expiry +
// reclaim while this worker stalled) abandons the range without marking
// it, leaving any partial shard contents as mergeable duplicates.
// Cancelling ctx returns promptly with ctx.Err(); leased-but-unfinished
// ranges simply expire for someone else to take.
func RunWorker(ctx context.Context, opts WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	if opts.Dir == "" || opts.Owner == "" {
		return stats, fmt.Errorf("fleet: worker needs a directory and an owner id")
	}
	if opts.Store == nil {
		return stats, fmt.Errorf("fleet: worker needs a store shard")
	}
	if opts.TTL <= 0 {
		opts.TTL = 30 * time.Second
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t, err := Load(opts.Dir)
	if err != nil {
		return stats, err
	}
	grid, err := t.Grid.Options()
	if err != nil {
		return stats, err
	}

	// The worker's cache is private to its process and backed by its own
	// shard: certificates land in this shard only, and a restart resumes
	// from whatever the shard already holds.
	cache := sweep.NewCache()
	// Bind cache sampling here rather than in the CLI: the cache lives and
	// dies inside this call, so the scrape-time closure must too.
	opts.Metrics.BindCacheStats(func() (int, int, int64, int64) {
		s := cache.Stats()
		return s.Verdicts, s.Certificates, s.Hits, s.Misses
	})
	warmSpan := opts.Trace.Start("warmstart")
	loaded := cache.WarmStart(opts.Store)
	warmSpan.End(obs.Attrs{"records": loaded})
	cache.Persist(opts.Store)
	defer cache.Persist(nil)

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		claimSpan := opts.Trace.Start("claim")
		lease, ok, err := Claim(opts.Dir, opts.Owner, opts.TTL)
		claimSpan.End(obs.Attrs{"ok": ok})
		if err != nil {
			return stats, err
		}
		if !ok {
			waitSpan := opts.Trace.Start("wait")
			t, err := Load(opts.Dir)
			if err != nil {
				waitSpan.End(nil)
				return stats, err
			}
			if t.Done() {
				waitSpan.End(obs.Attrs{"done": true})
				return stats, opts.Store.Flush()
			}
			select {
			case <-ctx.Done():
				waitSpan.End(obs.Attrs{"done": false})
				return stats, ctx.Err()
			case <-time.After(opts.Poll):
			}
			waitSpan.End(obs.Attrs{"done": false})
			continue
		}
		if lease.Stolen {
			opts.Trace.Event("steal", obs.Attrs{"start": lease.Start, "end": lease.End, "epoch": lease.Epoch})
		}
		opts.Metrics.LeaseHeld(int64(lease.Epoch), lease.Deadline, lease.Stolen)
		logf("worker %s: leased range [%d,%d) epoch %d", opts.Owner, lease.Start, lease.End, lease.Epoch)
		rangeSpan := opts.Trace.Start("range")
		res, lost, err := runRange(ctx, opts, grid, cache, lease)
		if err != nil {
			rangeSpan.End(obs.Attrs{"start": lease.Start, "end": lease.End, "epoch": lease.Epoch, "error": err.Error()})
			opts.Metrics.LeaseDone(true)
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			return stats, err
		}
		rangeSpan.End(obs.Attrs{
			"start": lease.Start, "end": lease.End, "epoch": lease.Epoch,
			"classes": res.Graphs, "certified": res.Certified, "lost": lost,
		})
		if lost {
			stats.LeasesLost++
			opts.Metrics.LeaseDone(true)
			logf("worker %s: lost lease on range [%d,%d), abandoning", opts.Owner, lease.Start, lease.End)
			continue
		}
		// Durability before completion: once the table says done, no one
		// will ever certify these classes again.
		if err := opts.Store.Flush(); err != nil {
			opts.Metrics.LeaseDone(true)
			return stats, fmt.Errorf("fleet: flushing shard before completing range [%d,%d): %w", lease.Start, lease.End, err)
		}
		completeSpan := opts.Trace.Start("complete")
		err = Complete(opts.Dir, lease)
		completeSpan.End(obs.Attrs{"start": lease.Start, "end": lease.End})
		if err != nil {
			if errors.Is(err, ErrLeaseLost) {
				// Reclaimed between our flush and the mark: the work is
				// durable in our shard and the merge folds the overlap.
				stats.LeasesLost++
				opts.Metrics.LeaseDone(true)
				logf("worker %s: range [%d,%d) reclaimed before completion", opts.Owner, lease.Start, lease.End)
				continue
			}
			opts.Metrics.LeaseDone(true)
			return stats, err
		}
		opts.Metrics.LeaseDone(false)
		stats.Ranges++
		stats.Classes += lease.End - lease.Start
		stats.Certified += res.Certified
		stats.Hits += res.Hits
		logf("worker %s: completed range [%d,%d): %d classes, %d certificates fresh", opts.Owner, lease.Start, lease.End, res.Graphs, res.Certified)
	}
}

// runRange certifies one leased range, heartbeating in the background.
// lost reports that the lease was fenced off mid-range; the partial work
// stays in the worker's shard as mergeable duplicates.
func runRange(ctx context.Context, opts WorkerOptions, grid sweep.Options, cache *sweep.Cache, lease Lease) (res *sweep.Result, lost bool, err error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hb := make(chan struct{})
	lostc := make(chan struct{}, 1)
	go func() {
		defer close(hb)
		tick := time.NewTicker(opts.TTL / 3)
		defer tick.Stop()
		l := lease
		for {
			select {
			case <-rctx.Done():
				return
			case <-tick.C:
				hbSpan := opts.Trace.Start("heartbeat")
				var herr error
				if l, herr = Heartbeat(opts.Dir, l, opts.TTL); herr != nil {
					hbSpan.End(obs.Attrs{"ok": false})
					if errors.Is(herr, ErrLeaseLost) {
						lostc <- struct{}{}
						cancel()
						return
					}
					// A transient heartbeat error (I/O) is retried on the
					// next tick; the lease survives until its deadline.
				} else {
					hbSpan.End(obs.Attrs{"ok": true})
					opts.Metrics.LeaseRenewed(l.Deadline)
				}
			}
		}
	}()

	ropts := grid
	ropts.ClassStart, ropts.ClassEnd = lease.Start, lease.End
	ropts.Workers = opts.SweepWorkers
	ropts.Cache = cache
	ropts.Trace = opts.Trace
	ropts.Metrics = opts.Metrics
	res, err = sweep.Run(rctx, ropts)
	cancel()
	<-hb
	select {
	case <-lostc:
		return res, true, nil
	default:
	}
	return res, false, err
}
