package experiments

import (
	"context"
	"math"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/game"
)

func init() {
	register("T1-PS", runT1PS)
	register("T1-BSwE", runT1BSwE)
	register("T1-BGE", runT1BGE)
	register("T1-BNE", runT1BNE)
	register("T1-3BSE", runT13BSE)
	register("T1-BSE", runT1BSE)
}

// runT1PS reproduces the PS row of Table 1: the PoA of pairwise stable
// trees is polynomial in α (Θ(min{√α, n/√α})), peaking near α ≈ n — far
// worse than the Θ(log α) of the cooperative concepts.
func runT1PS(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "T1-PS", Title: "Table 1, PS row: PoA Θ(min{√α, n/√α}) on trees"}

	n := 10
	alphas := []game.Alpha{game.A(1), game.A(2), game.A(4), game.A(9), game.A(16), game.A(36), game.A(100)}
	if s == Full {
		n = 11
	}
	r.addLinef("exhaustive worst ρ over all free trees, n=%d:", n)
	r.addLinef("%8s %10s %14s %10s", "alpha", "worst-rho", "min{√α,n/√α}", "#PS-trees")
	rhoAt := make(map[string]float64, len(alphas))
	for _, alpha := range alphas {
		res, err := core.WorstTree(ctx, n, alpha, eq.PS)
		if err != nil {
			r.addCheck("search", false, "WorstTree: %v", err)
			return r
		}
		rhoAt[alpha.String()] = res.Rho
		r.addLinef("%8s %10.3f %14.3f %10d", alpha, res.Rho, core.PSUpperBound(n, alpha), res.Equilibria)
	}
	// Shape: the PoA rises towards α ≈ n and falls for α ≫ n².
	r.addCheck("rises to peak", rhoAt["9"] > rhoAt["1"],
		"ρ(α=9)=%.3f > ρ(α=1)=%.3f", rhoAt["9"], rhoAt["1"])
	r.addCheck("falls past peak", rhoAt["100"] < math.Max(rhoAt["9"], rhoAt["16"]),
		"ρ(α=100)=%.3f < peak=%.3f", rhoAt["100"], math.Max(rhoAt["9"], rhoAt["16"]))

	// Growth in n at α ≈ n: the peak worst-case ρ grows with n, the
	// polynomial signature that separates PS from the Θ(log α) rows.
	sizes := []int{6, 8, 10}
	if s == Full {
		sizes = append(sizes, 12)
	}
	r.addLinef("peak worst ρ at α = n:")
	var peaks []float64
	for _, nn := range sizes {
		res, err := core.WorstTree(ctx, nn, game.A(int64(nn)), eq.PS)
		if err != nil {
			r.addCheck("peak search", false, "WorstTree: %v", err)
			return r
		}
		peaks = append(peaks, res.Rho)
		r.addLinef("  n=%2d: worst ρ = %.3f (witness %v)", nn, res.Rho, res.Witness)
	}
	increasing := true
	for i := 1; i < len(peaks); i++ {
		if peaks[i] <= peaks[i-1] {
			increasing = false
		}
	}
	r.addCheck("peak grows with n", increasing, "peaks %v", peaks)
	return r
}

// bgeFamilyPoint builds the Theorem 3.10 stretched tree star (k=1,
// t=α/15), certifies it exactly as BGE (RE ∧ BAE ∧ BSwE — polynomial) and
// returns n and measured ρ.
func bgeFamilyPoint(r *Report, alphaInt int64) (n int, rho float64, ok bool) {
	eta := int(alphaInt) // Theorem 3.10 allows any η >= α; take η = α.
	ts, err := construct.NewTreeStar(1, float64(alphaInt)/15, eta)
	if err != nil {
		r.addCheck("construct", false, "tree star α=%d: %v", alphaInt, err)
		return 0, 0, false
	}
	g := ts.G
	gm, err := game.NewGame(g.N(), game.A(alphaInt))
	if err != nil {
		r.addCheck("game", false, "%v", err)
		return 0, 0, false
	}
	if res := eq.CheckRE(gm, g); !res.Stable {
		r.addCheck("RE", false, "α=%d witness %v", alphaInt, res.Witness)
		return 0, 0, false
	}
	if res := eq.CheckBAE(gm, g); !res.Stable {
		r.addCheck("BAE", false, "α=%d witness %v", alphaInt, res.Witness)
		return 0, 0, false
	}
	if res := eq.CheckBSwE(gm, g); !res.Stable {
		r.addCheck("BSwE", false, "α=%d witness %v", alphaInt, res.Witness)
		return 0, 0, false
	}
	rho, err = core.TreeRho(gm, g)
	if err != nil {
		r.addCheck("rho", false, "%v", err)
		return 0, 0, false
	}
	return g.N(), rho, true
}

// runT1BSwE reproduces the BSwE row: the stretched-tree-star family is
// checker-certified stable and its ρ sits between the Theorem 3.10 lower
// bound and the Theorem 3.6 upper bound, growing logarithmically in α.
func runT1BSwE(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "T1-BSwE", Title: "Table 1, BSwE row: PoA Θ(log α) on trees"}
	alphas := []int64{60, 120, 240}
	if s == Full {
		alphas = append(alphas, 480, 960)
	}
	r.addLinef("%8s %6s %8s %12s %12s %10s", "alpha", "n", "rho", "lower(3.10)", "upper(3.6)", "rho/logα")
	var rhos, norm []float64
	for _, a := range alphas {
		n, rho, ok := bgeFamilyPoint(r, a)
		if !ok {
			return r
		}
		lower := core.Thm310Lower(game.A(a))
		upper := core.Thm36Upper(game.A(a))
		r.addLinef("%8d %6d %8.3f %12.3f %12.3f %10.3f", a, n, rho, lower, upper, rho/core.Log2(float64(a)))
		r.addCheck("within bounds", rho >= math.Max(1, lower) && rho <= upper,
			"α=%d: %.3f ∈ [%.3f, %.3f]", a, rho, math.Max(1, lower), upper)
		rhos = append(rhos, rho)
		norm = append(norm, rho/core.Log2(float64(a)))
	}
	r.addCheck("grows with alpha", rhos[len(rhos)-1] > rhos[0],
		"ρ(α=%d)=%.3f > ρ(α=%d)=%.3f", alphas[len(alphas)-1], rhos[len(rhos)-1], alphas[0], rhos[0])
	lo, hi := minMax(norm)
	r.addCheck("log-normalized flat", hi/lo < 2.5,
		"ρ/log α spans [%.3f, %.3f] (ratio %.2f)", lo, hi, hi/lo)
	return r
}

// runT1BGE reproduces the BGE row. Since the certification in runT1BSwE is
// the full RE ∧ BAE ∧ BSwE check, the same family certifies the BGE row;
// this runner additionally cross-validates Proposition 3.7 (BGE ⇔ 2-BSE on
// trees) on a family member small enough for the exact coalition checker.
func runT1BGE(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "T1-BGE", Title: "Table 1, BGE row: PoA Θ(log α) on trees (= 2-BSE)"}
	n, rho, ok := bgeFamilyPoint(r, 60)
	if !ok {
		return r
	}
	r.addLinef("family point α=60: n=%d ρ=%.3f", n, rho)
	r.addCheck("family is BGE", true, "certified by exact RE+BAE+BSwE checks")

	// Prop 3.7 on a small tree star: exact BGE ⇔ exact 2-BSE.
	ts, err := construct.NewTreeStar(1, 3, 7)
	if err != nil {
		r.addCheck("small star", false, "%v", err)
		return r
	}
	for _, a := range []game.Alpha{game.A(2), game.A(8), game.A(40)} {
		gm, _ := game.NewGame(ts.G.N(), a)
		bge := eq.CheckBGE(gm, ts.G).Stable
		two := eq.CheckKBSE(gm, ts.G, 2).Stable
		r.addCheck("prop 3.7 agreement", bge == two, "α=%s: BGE=%v 2-BSE=%v", a, bge, two)
	}
	return r
}

// runT1BNE reproduces the BNE row: Θ(log α) for α above the √n threshold
// (via Lemma 3.11-certified tree stars), constant (≤ 4, Theorem 3.13) for
// α ≤ √n (via exhaustive search over BNE trees).
func runT1BNE(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "T1-BNE", Title: "Table 1, BNE row: Θ(log α) above √n, Θ(1) below"}

	// High-α regime (Theorem 3.12 family shape): stretched tree stars with
	// k = 1 and the largest subtree size t for which the exact Lemma 3.11
	// inequality certifies BNE stability. The theorem's literal parameters
	// need astronomically large η; the certified family realizes the same
	// logarithmic growth at buildable scale.
	alphaGrid := []int64{10_000, 40_000, 160_000}
	if s == Full {
		alphaGrid = append(alphaGrid, 640_000, 2_560_000)
	}
	r.addLinef("high-α regime (largest Lemma 3.11-certified star, k=1, η=α):")
	r.addLinef("%9s %9s %6s %8s %12s", "alpha", "n", "|T|", "rho", "upper(3.6)")
	var highRhos []float64
	for _, a := range alphaGrid {
		ts, ok := largestCertifiedBNEStar(a)
		if !ok {
			r.addCheck("lemma 3.11", false, "α=%d: no certified family member", a)
			return r
		}
		alpha := game.A(a)
		gm, _ := game.NewGame(ts.G.N(), alpha)
		rho, err := core.TreeRho(gm, ts.G)
		if err != nil {
			r.addCheck("rho", false, "%v", err)
			return r
		}
		upper := core.Thm36Upper(alpha)
		r.addLinef("%9d %9d %6d %8.3f %12.3f", a, ts.G.N(), ts.SubtreeSize, rho, upper)
		r.addCheck("within upper bound", rho <= upper, "α=%d: %.3f <= %.3f", a, rho, upper)
		highRhos = append(highRhos, rho)
	}
	r.addCheck("grows with alpha", highRhos[len(highRhos)-1] > highRhos[0],
		"ρ series %v", highRhos)

	// Low-α regime: exhaustive over trees, α <= √n ⇒ constant PoA.
	n := 11
	if s == Full {
		n = 12
	}
	r.addLinef("low-α regime (exhaustive BNE trees, n=%d):", n)
	worst := 0.0
	for _, alpha := range []game.Alpha{game.A(1), game.AFrac(3, 2), game.A(2), game.A(3)} {
		res, err := core.WorstTree(ctx, n, alpha, eq.BNE)
		if err != nil {
			r.addCheck("search", false, "%v", err)
			return r
		}
		r.addLinef("  α=%-4s worst ρ = %.3f over %d BNE trees", alpha, res.Rho, res.Equilibria)
		if res.Rho > worst {
			worst = res.Rho
		}
	}
	r.addCheck("constant below √n", worst <= core.Thm313Upper,
		"worst ρ = %.3f <= %.0f (Thm 3.13)", worst, core.Thm313Upper)
	return r
}

// largestCertifiedBNEStar returns the stretched tree star (k=1, η=α) with
// the largest power-of-two subtree-size target whose BNE stability the
// exact Lemma 3.11 inequality certifies.
func largestCertifiedBNEStar(alphaInt int64) (*construct.TreeStar, bool) {
	alpha := game.A(alphaInt)
	var best *construct.TreeStar
	for t := 3.0; t < float64(alphaInt)/2; t *= 2 {
		ts, err := construct.NewTreeStar(1, t, int(alphaInt))
		if err != nil {
			break
		}
		if eq.TreeStarBNE(ts.G.N(), ts.SubtreeSize, ts.Depth(), ts.K, alpha) {
			best = ts
		}
	}
	return best, best != nil
}

// runT13BSE reproduces the 3-BSE row: exhaustive search over trees shows a
// small constant PoA across the α grid, the Lemma 3.14 depth invariant
// holds on every 3-BSE tree, and 2-BSE (= BGE) remains logarithmically bad
// on the stretched star family — pinpointing coalition size 3 as the
// cooperation threshold.
func runT13BSE(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "T1-3BSE", Title: "Table 1, 3-BSE row: constant PoA on trees"}
	n := 8
	if s == Full {
		n = 9
	}
	alphas := []game.Alpha{game.A(1), game.A(2), game.A(4), game.A(8), game.A(16), game.A(64)}
	r.addLinef("exhaustive worst ρ over 3-BSE trees, n=%d:", n)
	worst := 0.0
	lemmaViolations := 0
	for _, alpha := range alphas {
		gm, _ := game.NewGame(n, alpha)
		_ = gm
		res, err := core.WorstTree(ctx, n, alpha, eq.ThreeBSE)
		if err != nil {
			r.addCheck("search", false, "%v", err)
			return r
		}
		r.addLinef("  α=%-4s worst ρ = %.3f over %d equilibria", alpha, res.Rho, res.Equilibria)
		if res.Rho > worst {
			worst = res.Rho
		}
		if res.Witness != nil {
			if err := core.VerifyLemma314(res.Witness, alpha); err != nil {
				lemmaViolations++
			}
		}
	}
	r.addCheck("constant PoA", worst <= core.Thm315Upper,
		"worst ρ = %.3f <= %.0f (Thm 3.15)", worst, core.Thm315Upper)
	r.addCheck("lemma 3.14 invariant", lemmaViolations == 0,
		"%d violations on worst witnesses", lemmaViolations)

	// Contrast: 2-BSE (= BGE on trees) is already Ω(log α): the stretched
	// star family point from the BGE row at α=240 exceeds the 3-BSE worst.
	_, rho2, ok := bgeFamilyPoint(r, 240)
	if !ok {
		return r
	}
	r.addLinef("contrast: 2-BSE family ρ at α=240: %.3f vs 3-BSE worst %.3f", rho2, worst)
	r.addCheck("3 beats 2", rho2 > worst,
		"2-BSE family ρ %.3f > 3-BSE exhaustive worst %.3f", rho2, worst)
	return r
}

// runT1BSE reproduces the general-graph BSE rows: exact small-n BSE PoA is
// essentially optimal, and the Lemma 3.17/3.18 machinery yields the
// Theorem 3.19/3.20/3.21 bound curves — constant for α <= n^(1-ε) and
// α >= n·log n, o(log n) in the gap.
func runT1BSE(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "T1-BSE", Title: "Table 1, BSE rows: constant PoA except an o(log n) gap"}

	// Exact: worst BSE ρ over all connected graphs on 5 nodes.
	nExact := 5
	if s == Full {
		nExact = 6
	}
	worst := 0.0
	for _, alpha := range []game.Alpha{game.AFrac(1, 2), game.AFrac(3, 2), game.A(3), game.A(10)} {
		res, err := core.WorstGraph(ctx, nExact, alpha, eq.BSE)
		if err != nil {
			r.addCheck("exact search", false, "%v", err)
			return r
		}
		r.addLinef("exact n=%d α=%-4s: worst BSE ρ = %.3f over %d equilibria",
			nExact, alpha, res.Rho, res.Equilibria)
		if res.Rho > worst {
			worst = res.Rho
		}
	}
	r.addCheck("small-n BSE near-optimal", worst <= 1.5, "worst exact ρ = %.3f", worst)

	// Bound curves via d-ary trees (Lemma 3.17 + 3.18).
	sizes := []int{1 << 10, 1 << 14, 1 << 17}
	if s == Full {
		sizes = append(sizes, 1<<20)
	}
	r.addLinef("%10s %16s %16s %16s %12s", "n", "α=√n·√n (ε=½)", "α=n·log n", "α=n (gap)", "2+llog+...")
	var gapNorm []float64
	for _, n := range sizes {
		low := bseBoundPoint(n, int64(math.Sqrt(float64(n))), int(math.Ceil(math.Sqrt(float64(n))))) // α=n^(1/2), d=⌈n^(1/2)⌉... d=⌈n^ε⌉ with ε=1/2
		high := bseBoundPoint(n, int64(float64(n)*core.Log2(float64(n))), 2)
		d := int(math.Ceil(core.Log2(core.Log2(float64(n)))))
		if d < 2 {
			d = 2
		}
		gap := bseBoundPoint(n, int64(n), d)
		r.addLinef("%10d %16.3f %16.3f %16.3f %12.3f", n, low, high, gap, core.Thm321Upper(n))
		r.addCheck("thm 3.20 regime", low <= core.Thm320Upper(0.5),
			"n=%d: bound %.3f <= %.3f", n, low, core.Thm320Upper(0.5))
		r.addCheck("thm 3.19 regime", high <= core.Thm319Upper,
			"n=%d: bound %.3f <= %.0f", n, high, core.Thm319Upper)
		r.addCheck("thm 3.21 regime", gap <= core.Thm321Upper(n),
			"n=%d: bound %.3f <= %.3f", n, gap, core.Thm321Upper(n))
		gapNorm = append(gapNorm, gap/core.Log2(float64(n)))
	}
	decreasing := true
	for i := 1; i < len(gapNorm); i++ {
		if gapNorm[i] >= gapNorm[i-1] {
			decreasing = false
		}
	}
	r.addCheck("gap bound is o(log n)", decreasing, "bound/log n series %v", gapNorm)
	return r
}

// bseBoundPoint computes the Lemma 3.17 PoA bound from the exact maximal
// agent cost of the almost complete d-ary tree on n nodes at price alpha.
func bseBoundPoint(n int, alphaInt int64, d int) float64 {
	g := construct.AlmostCompleteDAry(n, d)
	gm, err := game.NewGame(n, game.A(alphaInt))
	if err != nil {
		return math.NaN()
	}
	worst, err := core.TreeMaxAgentCost(gm, g)
	if err != nil {
		return math.NaN()
	}
	return core.Lemma317Bound(n, game.A(alphaInt), worst)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
