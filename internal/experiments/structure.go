package experiments

import (
	"context"
	"math"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
	"repro/internal/sweep"
	"repro/internal/tree"
)

func init() {
	register("F3", runF3Stretched)
	register("F4", runF4Coalition)
	register("L2.4", runL24Cycles)
	register("P3.16", runP316LowAlpha)
	register("P3.22", runP322NoFlat)
}

// runF3Stretched reproduces Figure 3: the k-stretched binary tree and its
// defining identities — node count (2^(d+1)−2)k + 1, depth k·d, distance
// stretching between B-nodes, and the Lemma D.1 average-layer lower bound
// k(d − 3/2).
func runF3Stretched(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F3", Title: "Figure 3: stretched binary tree identities"}
	maxD := 5
	if s == Full {
		maxD = 7
	}
	for d := 1; d <= maxD; d++ {
		for _, k := range []int{1, 2, 3, 5} {
			st := construct.NewStretched(d, k)
			g := st.G
			wantN := ((1<<(d+1))-2)*k + 1
			if g.N() != wantN || !g.IsTree() {
				r.addCheck("node count", false, "d=%d k=%d: n=%d want %d tree=%v",
					d, k, g.N(), wantN, g.IsTree())
				return r
			}
			rt, err := tree.Root(g, st.Root)
			if err != nil {
				r.addCheck("root", false, "%v", err)
				return r
			}
			if rt.Depth() != k*d {
				r.addCheck("depth", false, "d=%d k=%d: depth %d want %d", d, k, rt.Depth(), k*d)
				return r
			}
			// Every B-node sits at a layer divisible by k (distance
			// stretching of the underlying binary tree).
			for u := 0; u < g.N(); u++ {
				if st.BNodes[u] && rt.Layer(u)%k != 0 {
					r.addCheck("stretching", false, "d=%d k=%d: B-node %d at layer %d", d, k, u, rt.Layer(u))
					return r
				}
			}
			// Lemma D.1: average layer >= k(d - 3/2).
			var layerSum int64
			for u := 0; u < g.N(); u++ {
				layerSum += int64(rt.Layer(u))
			}
			avg := float64(layerSum) / float64(g.N())
			bound := float64(k) * (float64(d) - 1.5)
			if avg < bound {
				r.addCheck("lemma D.1", false, "d=%d k=%d: avg layer %.3f < %.3f", d, k, avg, bound)
				return r
			}
		}
	}
	r.addLinef("verified d=1..%d × k∈{1,2,3,5}: node count, depth, stretching, avg layer", maxD)
	r.addCheck("identities", true, "all stretched-tree identities hold")
	return r
}

// runF4Coalition reproduces Figure 4 / Lemma 3.14: on a tree with two deep
// sibling subtrees, the 3-coalition {x, z, z'} (add xz and zz', drop xy)
// strictly improves all three members — and stops improving when the arms
// are shorter than the lemma's threshold.
func runF4Coalition(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F4", Title: "Figure 4 / Lemma 3.14: the 3-coalition escape move"}
	alphas := []int64{20, 30, 50}
	if s == Full {
		alphas = append(alphas, 80, 120)
	}
	for _, a := range alphas {
		// Size the gadget so that q = ceil(4α/n) is small and the arms are
		// exactly deep enough: arms of length 2q+3 with enough hub leaves.
		leaves := int(a)
		probe := construct.NewDoubleDeep(1, leaves)
		q := int(math.Ceil(4 * float64(a) / float64(probe.G.N())))
		for {
			arm := 2*q + 3
			n := 1 + 2*arm + leaves
			q2 := int(math.Ceil(4 * float64(a) / float64(n)))
			if q2 == q {
				break
			}
			q = q2
		}
		arm := 2*q + 3
		dd := construct.NewDoubleDeep(arm, leaves)
		gm, err := game.NewGame(dd.G.N(), game.A(a))
		if err != nil {
			r.addCheck("setup", false, "%v", err)
			return r
		}
		co := lemma314Move(dd, q)
		improving := eq.Improving(gm, dd.G, co)
		r.addLinef("  α=%d n=%d q=%d arms=%d: coalition %v improving=%v",
			a, dd.G.N(), q, arm, co.Members, improving)
		r.addCheck("deep arms escape", improving, "α=%d: {x,z,z'} move improves all members", a)

		// Control: with arms below the threshold the same move shape is
		// not available or not improving.
		short := construct.NewDoubleDeep(q+2, leaves)
		gmShort, _ := game.NewGame(short.G.N(), game.A(a))
		available := q+1 < len(short.ArmA)
		shortImproves := false
		if available {
			shortImproves = eq.Improving(gmShort, short.G, lemma314Move(short, 0))
		}
		r.addCheck("shallow arms do not", !shortImproves,
			"α=%d arms=%d: improving=%v", a, q+2, shortImproves)
	}
	return r
}

// lemma314Move builds the Figure 4 coalition on a DoubleDeep gadget: x at
// arm index q+1, y its child, z and z' at index 2q+2 on the two arms.
func lemma314Move(dd *construct.DoubleDeep, q int) move.Coalition {
	last := len(dd.ArmA) - 1
	xi := q + 1
	if xi > last-1 {
		xi = last - 1
	}
	zi := 2*q + 2
	if zi > last {
		zi = last
	}
	x, y := dd.ArmA[xi], dd.ArmA[xi+1]
	z, zp := dd.ArmA[zi], dd.ArmB[zi]
	return move.Coalition{
		Members:     []int{x, z, zp},
		RemoveEdges: []graph.Edge{{U: x, V: y}},
		AddEdges:    []graph.Edge{{U: x, V: z}, {U: z, V: zp}},
	}
}

// runL24Cycles reproduces Lemma 2.4: cycles are in BSE for an α window of
// width Θ(n²), so no tree conjecture can hold in the BNCG. Inside the
// window the exact checker confirms stability; at the window edges it
// reports the violating move.
func runL24Cycles(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "L2.4", Title: "Lemma 2.4: cycles are in BSE for α ∈ Θ(n²)"}
	maxN := 6
	for n := 3; n <= maxN; n++ {
		lo, hi := cycleWindow(n)
		mid := game.AFrac(int64(math.Round((lo+hi)/2*4)), 4)
		above := game.AFrac(int64(math.Ceil(hi*4))+1, 4)
		gm := func(a game.Alpha) game.Game { g, _ := game.NewGame(n, a); return g }
		g := construct.Cycle(n)
		inWindow := eq.CycleBSEWindow(n, mid)
		stableMid := eq.CheckKBSE(gm(mid), g, n).Stable
		stableBelow := false
		if belowNum := int64(math.Floor(lo*4)) - 1; belowNum > 0 {
			below := game.AFrac(belowNum, 4)
			stableBelow = eq.CheckKBSE(gm(below), g, n).Stable
		}
		stableAbove := eq.CheckKBSE(gm(above), g, n).Stable
		r.addLinef("  C%d window (%.2f, %.2f): mid α=%s stable=%v; below=%v above=%v",
			n, lo, hi, mid, stableMid, stableBelow, stableAbove)
		r.addCheck("window certifies", !inWindow || stableMid,
			"C%d at α=%s: window=%v exact=%v", n, mid, inWindow, stableMid)
		if n >= 4 {
			r.addCheck("stable inside window", stableMid, "C%d mid-window BSE", n)
		}
		r.addCheck("unstable above window", !stableAbove,
			"C%d at α=%s: %v", n, above, eq.CheckKBSE(gm(above), g, n).Witness)
	}
	// Larger cycles: the polynomial necessary conditions (RE, BAE, BGE)
	// hold at the window midpoint.
	sizes := []int{10, 20}
	if s == Full {
		sizes = append(sizes, 40)
	}
	for _, n := range sizes {
		lo, hi := cycleWindow(n)
		mid := game.AFrac(int64(math.Round((lo+hi)/2*4)), 4)
		gmN, _ := game.NewGame(n, mid)
		g := construct.Cycle(n)
		ok := eq.CheckBGE(gmN, g).Stable
		r.addCheck("large-cycle BGE inside window", ok, "C%d at α=%s", n, mid)
	}
	return r
}

func cycleWindow(n int) (lo, hi float64) {
	nn := float64(n)
	if n%2 == 0 {
		return nn*nn/4 - (nn - 1), nn * (nn - 2) / 4
	}
	return (nn+1)*(nn-1)/4 - (nn - 1), (nn + 1) * (nn - 1) / 4
}

// runP316LowAlpha reproduces Proposition 3.16: the three α regimes of BSE
// structure — clique only (α<1), diameter ≤ 2 (α=1), star and more (α>1).
func runP316LowAlpha(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "P3.16", Title: "Prop 3.16: BSE structure across α regimes"}
	maxN := 5
	for n := 4; n <= maxN; n++ {
		// One engine sweep covers all three α regimes; the BSE verdicts land
		// in the shared canonical-form cache for the other experiments.
		res, err := sweep.Run(ctx, sweep.Options{
			N:        n,
			Alphas:   []game.Alpha{game.AFrac(1, 2), game.A(1), game.A(2)},
			Concepts: []eq.Concept{eq.BSE},
			Cache:    sweep.Shared(),
		})
		if err != nil {
			r.addCheck("setup", false, "%v", err)
			return r
		}
		cliqueOnly := true
		stable := 0
		diamMatches := true
		others := 0
		for _, it := range res.Items {
			bse := it.Vector.Stable(0)
			switch it.AlphaIndex {
			case 0: // α = 1/2
				if bse {
					stable++
					if it.Graph.M() != n*(n-1)/2 {
						cliqueOnly = false
					}
				}
			case 1: // α = 1
				if bse != (it.Graph.Diameter() <= 2) {
					diamMatches = false
				}
			case 2: // α = 2
				if bse {
					others++
				}
			}
		}
		r.addCheck("clique only below 1", cliqueOnly && stable == 1,
			"n=%d α=1/2: %d BSE graphs", n, stable)
		r.addCheck("diameter 2 at 1", diamMatches, "n=%d α=1: BSE ⇔ diam ≤ 2", n)

		gmTwo, _ := game.NewGame(n, game.A(2))
		starStable := eq.CheckKBSE(gmTwo, game.Star(n), n).Stable
		r.addCheck("star and others above 1", starStable && others >= 2,
			"n=%d α=2: star BSE plus %d total BSE classes", n, others)
	}
	gm4, _ := game.NewGame(4, game.A(100))
	r.addCheck("P4 at α=100", eq.CheckKBSE(gm4, construct.Path(4), 4).Stable, "path-4 in BSE")
	return r
}

// runP322NoFlat reproduces Proposition 3.22: at α = n, no graph can keep
// every agent's cost below p·(α+n−1) for a constant p — the counting bound
// p*(n) and the best d-ary tree's normalized worst cost both grow without
// bound.
func runP322NoFlat(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "P3.22", Title: "Prop 3.22: no evenly-cheap graphs at α = n"}
	r.addLinef("counting lower bound p*(n):")
	var ps []float64
	for _, n := range []int{1e2, 1e4, 1e6, 1e9, 1e12} {
		p := core.Prop322MinP(n)
		ps = append(ps, p)
		r.addLinef("  n=%.0e: p* = %.2f", float64(n), p)
	}
	growing := true
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			growing = false
		}
	}
	r.addCheck("p* grows", growing && ps[len(ps)-1] > ps[0], "series %v", ps)

	sizes := []int{100, 1000, 10000}
	if s == Full {
		sizes = append(sizes, 100000)
	}
	r.addLinef("best d-ary normalized worst cost at α=n:")
	var best []float64
	for _, n := range sizes {
		gm, _ := game.NewGame(n, game.A(int64(n)))
		minCost := math.Inf(1)
		for d := 2; d <= n-1; d *= 2 {
			g := construct.AlmostCompleteDAry(n, d)
			worst, err := core.TreeMaxAgentCost(gm, g)
			if err != nil {
				r.addCheck("dary", false, "%v", err)
				return r
			}
			norm := worst / (float64(n) + float64(n-1))
			if norm < minCost {
				minCost = norm
			}
		}
		best = append(best, minCost)
		r.addLinef("  n=%d: min_d max_u cost/(α+n−1) = %.3f", n, minCost)
	}
	increasing := true
	for i := 1; i < len(best); i++ {
		if best[i] <= best[i-1] {
			increasing = false
		}
	}
	r.addCheck("normalized cost grows", increasing, "series %v", best)
	return r
}
