package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

func init() {
	register("DYN", runDynamics)
}

// runDynamics is the supporting convergence experiment: improving-response
// dynamics from random connected graphs reach PS (and BGE) states, those
// states verify against the exact checkers, and the sampled equilibrium
// quality stays below the exhaustive worst case.
func runDynamics(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "DYN", Title: "Improving-response dynamics to PS and BGE"}
	n := 10
	samples := 20
	if s == Full {
		samples = 60
	}
	rng := rand.New(rand.NewSource(42))
	for _, alphaInt := range []int64{2, 5, 12} {
		alpha := game.A(alphaInt)
		gm, err := game.NewGame(n, alpha)
		if err != nil {
			r.addCheck("setup", false, "%v", err)
			return r
		}
		psKinds := []dynamics.Kind{dynamics.RemoveKind, dynamics.AddKind}
		bgeKinds := append(psKinds, dynamics.SwapKind)

		stPS, err := dynamics.Sample(ctx, gm, n, samples, dynamics.Options{Kinds: psKinds, Rng: rng})
		if err != nil {
			r.addCheck("PS sample", false, "%v", err)
			return r
		}
		stBGE, err := dynamics.Sample(ctx, gm, n, samples, dynamics.Options{Kinds: bgeKinds, Rng: rng})
		if err != nil {
			r.addCheck("BGE sample", false, "%v", err)
			return r
		}
		r.addLinef("α=%-3d PS : conv %d/%d, mean ρ %.3f, worst ρ %.3f, mean steps %.1f",
			alphaInt, stPS.Converged, stPS.Samples, stPS.MeanRho, stPS.WorstRho, stPS.MeanSteps)
		r.addLinef("α=%-3d BGE: conv %d/%d, mean ρ %.3f, worst ρ %.3f, mean steps %.1f",
			alphaInt, stBGE.Converged, stBGE.Samples, stBGE.MeanRho, stBGE.WorstRho, stBGE.MeanSteps)
		r.addCheck("PS converges", stPS.Converged == stPS.Samples,
			"α=%d: %d/%d", alphaInt, stPS.Converged, stPS.Samples)
		r.addCheck("BGE converges", stBGE.Converged == stBGE.Samples,
			"α=%d: %d/%d", alphaInt, stBGE.Converged, stBGE.Samples)

		// Sampled equilibria stay below the exhaustive tree worst case.
		worst, err := core.WorstTree(ctx, n, alpha, eq.PS)
		if err != nil {
			r.addCheck("worst", false, "%v", err)
			return r
		}
		if worst.Rho > 0 {
			r.addCheck("sampled below worst case", stPS.MeanRho <= worst.Rho+1e-9,
				"α=%d: mean %.3f <= exhaustive worst %.3f", alphaInt, stPS.MeanRho, worst.Rho)
		}
	}

	// Fixed points verify: one BGE run, final state passes the exact
	// checker.
	gm, _ := game.NewGame(n, game.A(5))
	g, err := graph.RandomConnectedGraph(n, n+3, rng)
	if err != nil {
		r.addCheck("gen", false, "%v", err)
		return r
	}
	tr, err := dynamics.Run(ctx, gm, g, dynamics.Options{
		Kinds: []dynamics.Kind{dynamics.RemoveKind, dynamics.AddKind, dynamics.SwapKind},
		Rng:   rng,
	})
	if err != nil {
		r.addCheck("run", false, "%v", err)
		return r
	}
	stable := eq.CheckBGE(gm, g).Stable
	r.addCheck("fixed point is BGE", tr.Converged && stable,
		"converged=%v after %d steps, exact BGE=%v", tr.Converged, tr.Steps, stable)

	// Extension: is convergence guaranteed, not just observed? Build the
	// full improving-move digraph over all labeled graphs and check it for
	// directed cycles (a cycle would mean improving-response dynamics can
	// run forever, as happens in some NCG variants [Kawald–Lenzner]).
	nSG := 4
	if s == Full {
		nSG = 5
	}
	for _, alphaSG := range []game.Alpha{game.AFrac(3, 2), game.A(3), game.A(8)} {
		res, err := dynamics.AnalyzeStateGraph(ctx, nSG, alphaSG, []dynamics.Kind{
			dynamics.RemoveKind, dynamics.AddKind, dynamics.SwapKind,
		})
		if err != nil {
			r.addCheck("state graph", false, "%v", err)
			return r
		}
		detail := fmt.Sprintf("n=%d α=%s: %d states, %d sinks, acyclic=%v",
			nSG, alphaSG, res.States, res.Sinks, res.Acyclic)
		if res.CycleWitness != nil {
			detail += fmt.Sprintf(" (cycle through %s)", res.CycleWitness)
		}
		r.addLinef("  %s", detail)
		r.addCheck("improving dynamics terminate", res.Acyclic, "%s", detail)
	}
	return r
}
