package experiments

import (
	"context"
	"fmt"

	"repro/internal/construct"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
	"repro/internal/sweep"
)

func init() {
	register("F1a", runF1aLattice)
	register("F1b", runF1bVenn)
}

// latticeAlphas is the α grid for the small-graph sweeps, including every
// value Figure 1b annotates (1/2, 2, 3, 5).
func latticeAlphas() []game.Alpha {
	return []game.Alpha{
		game.AFrac(1, 2), game.A(1), game.AFrac(3, 2),
		game.A(2), game.A(3), game.A(5),
	}
}

// runF1aLattice reproduces Figure 1a: the subset lattice of the solution
// concepts. Over every connected graph on n nodes (up to isomorphism) and
// every α in the grid, the full stability vector is computed with the
// exact checkers and every claimed inclusion is verified; the sweep also
// looks for witnesses making inclusions proper.
func runF1aLattice(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F1a", Title: "Figure 1a: subset lattice of solution concepts"}
	n := 5
	if s == Full {
		n = 6
	}
	implications := []struct {
		from, to eq.Concept
	}{
		{eq.BSE, eq.ThreeBSE}, {eq.ThreeBSE, eq.TwoBSE}, {eq.TwoBSE, eq.BGE},
		{eq.BGE, eq.PS}, {eq.BGE, eq.BSwE}, {eq.PS, eq.RE}, {eq.PS, eq.BAE},
		{eq.BNE, eq.BGE},
	}
	violations := 0
	stableCount := make(map[eq.Concept]int)
	// properWitness[from→to] records a graph stable for `to` but not `from`.
	properWitness := make(map[string]string)
	// One engine sweep replaces the per-α sequential enumerations; the
	// α-major item order matches the loop nest it replaced, so the report
	// (counts, first proper witnesses) is unchanged.
	res, err := sweep.Run(ctx, sweep.Options{
		N:        n,
		Alphas:   latticeAlphas(),
		Concepts: eq.Concepts(),
		Cache:    sweep.Shared(),
	})
	if err != nil {
		r.addCheck("setup", false, "%v", err)
		return r
	}
	for _, it := range res.Items {
		alpha := res.Alphas[it.AlphaIndex]
		st := make(map[eq.Concept]bool, len(res.Concepts))
		for i, c := range res.Concepts {
			st[c] = it.Vector.Stable(i)
			if st[c] {
				stableCount[c]++
			}
		}
		for _, imp := range implications {
			if st[imp.from] && !st[imp.to] {
				violations++
			}
			key := fmt.Sprintf("%s⊊%s", imp.from, imp.to)
			if _, have := properWitness[key]; !have && st[imp.to] && !st[imp.from] {
				properWitness[key] = fmt.Sprintf("α=%s %s", alpha, it.Graph)
			}
		}
	}
	r.addLinef("checked %d (graph, α) pairs at n=%d", len(res.Items), n)
	for _, c := range eq.Concepts() {
		r.addLinef("  %-6s stable in %d cases", c, stableCount[c])
	}
	r.addCheck("no inclusion violations", violations == 0, "%d violations", violations)
	for _, imp := range implications {
		key := fmt.Sprintf("%s⊊%s", imp.from, imp.to)
		w, have := properWitness[key]
		if have {
			r.addLinef("  proper: %s via %s", key, w)
		}
	}
	// The sweep separates the coarse levels; the finer proper inclusions
	// use the named witnesses recovered by search (plus the Figure 5/6/7
	// gadgets for BNE, covered by the F5–F7 experiments).
	for _, mustSeparate := range []string{"PS⊊RE", "PS⊊BAE", "BGE⊊BSwE"} {
		_, have := properWitness[mustSeparate]
		r.addCheck("separated "+mustSeparate, have, "witness found in sweep: %v", have)
	}
	verifyNamedSeparations(r)
	return r
}

// verifyNamedSeparations checks the search-recovered witnesses that make
// the remaining Figure 1a inclusions proper.
func verifyNamedSeparations(r *Report) {
	// BGE ⊊ PS: a tree in PS whose improving move is a swap.
	swapTree := construct.SwapTree()
	gm, _ := game.NewGame(swapTree.N(), game.A(construct.SwapTreeAlphaNum))
	ps := eq.CheckPS(gm, swapTree).Stable
	sw := eq.CheckBSwE(gm, swapTree)
	r.addCheck("separated BGE⊊PS", ps && !sw.Stable,
		"SwapTree at α=%d: PS=%v, swap witness %v", construct.SwapTreeAlphaNum, ps, sw.Witness)

	// 2-BSE ⊊ BGE: K_{2,4} at α=5/4.
	k24 := construct.CompleteBipartite(2, 4)
	gmK, _ := game.NewGame(k24.N(), game.AFrac(5, 4))
	bge := eq.CheckBGE(gmK, k24).Stable
	two := eq.CheckKBSE(gmK, k24, 2)
	r.addCheck("separated 2-BSE⊊BGE", bge && !two.Stable,
		"K_{2,4} at α=5/4: BGE=%v, coalition witness %v", bge, two.Witness)

	// 3-BSE ⊊ 2-BSE: the 7-node path-into-star tree at α=17/4.
	tct := construct.ThreeCoalitionTree()
	gmT, _ := game.NewGame(tct.N(), game.AFrac(17, 4))
	twoStable := eq.CheckKBSE(gmT, tct, 2).Stable
	three := eq.CheckKBSE(gmT, tct, 3)
	r.addCheck("separated 3-BSE⊊2-BSE", twoStable && !three.Stable,
		"ThreeCoalitionTree at α=17/4: 2-BSE=%v, coalition witness %v", twoStable, three.Witness)

	// BSE ⊊ 3-BSE: Figure 7 with 4 rows is in 3-BSE, but the hub and all
	// four c-agents jointly improve.
	f7 := construct.NewFigure7(4)
	gm7, _ := game.NewGame(f7.G.N(), game.A(f7.AlphaNum()))
	threeStable := eq.CheckKBSE(gm7, f7.G, 3).Stable
	big := move.Coalition{Members: append([]int{f7.A}, f7.C...)}
	for j := range f7.B {
		big.RemoveEdges = append(big.RemoveEdges, graph.Edge{U: f7.A, V: f7.B[j]})
		big.AddEdges = append(big.AddEdges, graph.Edge{U: f7.A, V: f7.C[j]})
	}
	bigImproves := eq.Improving(gm7, f7.G, big)
	r.addCheck("separated BSE⊊3-BSE", threeStable && bigImproves,
		"Figure7(4) at α=%d: 3-BSE=%v, 5-agent coalition improves=%v",
		f7.AlphaNum(), threeStable, bigImproves)
}

// runF1bVenn reproduces Figure 1b: RE, BAE and BSwE are pairwise
// incomparable — all 8 regions of their Venn diagram are inhabited. The
// sweep classifies every connected graph on up to n nodes against the α
// grid and reports the smallest witness per region.
func runF1bVenn(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F1b", Title: "Figure 1b: Venn regions of RE / BAE / BSwE"}
	// Full scale at every scale: the three concepts here are the polynomial
	// checkers, so on the sweep engine the n=6 stream costs well under a
	// second — and the loop still stops at the smallest witnesses.
	maxN := 6
	type region struct{ re, bae, bswe bool }
	witness := make(map[region]string)
	for n := 3; n <= maxN; n++ {
		// One three-concept engine sweep per size; α-major item order keeps
		// the first-witness-per-region selection identical to the
		// sequential loops it replaced.
		res, err := sweep.Run(ctx, sweep.Options{
			N:        n,
			Alphas:   latticeAlphas(),
			Concepts: []eq.Concept{eq.RE, eq.BAE, eq.BSwE},
			Cache:    sweep.Shared(),
		})
		if err != nil {
			r.addCheck("setup", false, "%v", err)
			return r
		}
		for _, it := range res.Items {
			key := region{
				re:   it.Vector.Stable(0),
				bae:  it.Vector.Stable(1),
				bswe: it.Vector.Stable(2),
			}
			if _, have := witness[key]; !have {
				witness[key] = fmt.Sprintf("n=%d α=%s %s", n, res.Alphas[it.AlphaIndex], it.Graph)
			}
		}
		if len(witness) == 8 {
			break
		}
	}
	// The region RE ∧ BAE ∧ ¬BSwE has no witness among the small graphs;
	// the search-recovered SwapTree (n=10, α=12) inhabits it.
	swapRegion := region{re: true, bae: true, bswe: false}
	if _, have := witness[swapRegion]; !have {
		st := construct.SwapTree()
		gm, _ := game.NewGame(st.N(), game.A(construct.SwapTreeAlphaNum))
		if eq.CheckRE(gm, st).Stable && eq.CheckBAE(gm, st).Stable && !eq.CheckBSwE(gm, st).Stable {
			witness[swapRegion] = fmt.Sprintf("n=%d α=%d SwapTree", st.N(), construct.SwapTreeAlphaNum)
		}
	}
	for _, re := range []bool{true, false} {
		for _, bae := range []bool{true, false} {
			for _, bswe := range []bool{true, false} {
				key := region{re: re, bae: bae, bswe: bswe}
				w, have := witness[key]
				label := fmt.Sprintf("RE=%v BAE=%v BSwE=%v", re, bae, bswe)
				if have {
					r.addLinef("  %-32s %s", label, w)
				}
				r.addCheck("region "+label, have, "%s", w)
			}
		}
	}
	r.addCheck("pairwise incomparable", len(witness) == 8,
		"%d of 8 regions inhabited", len(witness))
	return r
}
