package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/game"
)

func init() {
	register("OQ-GENERAL", runOpenQuestionGeneral)
}

// runOpenQuestionGeneral probes the paper's open questions (Section 4) at
// exhaustive small scale: do the tree PoA bounds for the cooperative
// concepts carry over to general graphs? For every connected graph on up
// to 6 nodes the worst equilibrium ρ per concept is computed exactly.
//
// This is an extension beyond the paper's theorems — the paper proves tree
// bounds and conjectures the general case; these numbers are evidence.
func runOpenQuestionGeneral(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "OQ-GENERAL", Title: "Open question: cooperative PoA on general graphs (exhaustive n ≤ 6)"}
	n := 5
	if s == Full {
		n = 6
	}
	alphas := []game.Alpha{game.A(1), game.A(2), game.A(4), game.A(8), game.A(16)}
	concepts := []eq.Concept{eq.PS, eq.BGE, eq.BNE, eq.ThreeBSE, eq.BSE}
	r.addLinef("worst equilibrium ρ over all connected graphs, n=%d:", n)
	header := "   alpha"
	for _, c := range concepts {
		header += "   " + c.String()
	}
	r.addLinef("%s", header)
	worst := make(map[eq.Concept]float64)
	for _, alpha := range alphas {
		row := ""
		for _, c := range concepts {
			res, err := core.WorstGraph(ctx, n, alpha, c)
			if err != nil {
				r.addCheck("search", false, "%v", err)
				return r
			}
			row += fmt.Sprintf("  %6.3f", res.Rho)
			if res.Rho > worst[c] {
				worst[c] = res.Rho
			}
		}
		r.addLinef("%8s%s", alpha, row)
	}
	// Evidence for the conjecture: at this scale, every cooperative
	// concept keeps general-graph equilibria within the tree-case constant
	// bounds — 3-BSE and BSE stay below the Theorem 3.15 constant, and BNE
	// stays below the Theorem 3.13 constant.
	r.addCheck("3-BSE constant on general graphs", worst[eq.ThreeBSE] <= core.Thm315Upper,
		"worst ρ = %.3f <= %.0f", worst[eq.ThreeBSE], core.Thm315Upper)
	r.addCheck("BSE constant on general graphs", worst[eq.BSE] <= core.Thm319Upper,
		"worst ρ = %.3f <= %.0f", worst[eq.BSE], core.Thm319Upper)
	r.addCheck("cooperation ordering", worst[eq.BSE] <= worst[eq.ThreeBSE]+1e-9 &&
		worst[eq.ThreeBSE] <= worst[eq.PS]+1e-9,
		"BSE %.3f <= 3-BSE %.3f <= PS %.3f", worst[eq.BSE], worst[eq.ThreeBSE], worst[eq.PS])
	return r
}
