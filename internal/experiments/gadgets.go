package experiments

import (
	"context"
	"repro/internal/construct"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

func init() {
	register("F2", runF2CorboParkes)
	register("F5", runF5BNEGap)
	register("F6", runF62BSEGap)
	register("F7", runF7kBSEGap)
	register("F8", runF8AddGap)
}

// runF2CorboParkes reproduces Proposition 2.3 / Figure 2: a graph with an
// edge assignment in pure NE of the unilateral NCG that is not pairwise
// stable in the BNCG, refuting the Corbo–Parkes conjecture. The canonical
// recovered witness is verified, and (in Full scale) re-discovered by
// exhaustive search.
func runF2CorboParkes(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F2", Title: "Figure 2 / Prop 2.3: NE(NCG) does not imply PS(BNCG)"}
	f2 := construct.NewFigure2()
	gm, err := game.NewGame(f2.G.N(), game.A(2))
	if err != nil {
		r.addCheck("setup", false, "%v", err)
		return r
	}
	o, err := game.NewOwnership(f2.G, f2.Owner)
	if err != nil {
		r.addCheck("ownership", false, "%v", err)
		return r
	}
	ne := eq.CheckUnilateralNE(gm, f2.G, o)
	r.addCheck("unilateral NE", ne.Stable, "witness graph %s at α=2 (violator: %v)", f2.G, ne.Witness)
	ps := eq.CheckPS(gm, f2.G)
	r.addCheck("not PS in BNCG", !ps.Stable, "bilateral improving move: %v", ps.Witness)
	if !ps.Stable {
		if _, ok := ps.Witness.(move.Remove); ok {
			r.addCheck("violation is a removal", true,
				"a non-owner drops an edge it pays for only bilaterally: %v", ps.Witness)
		} else {
			r.addCheck("violation is a removal", false, "unexpected witness kind %v", ps.Witness)
		}
	}
	if s != Full {
		return r
	}
	// Re-discover by search: smallest (n, α) admitting such a witness.
	for n := 3; n <= 5; n++ {
		found := ""
		for _, alpha := range latticeAlphas() {
			gmN, _ := game.NewGame(n, alpha)
			graph.Enumerate(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}, func(g *graph.Graph) {
				if found != "" {
					return
				}
				if eq.CheckRE(gmN, g).Stable {
					return // need a bilateral removal violation
				}
				game.AllOwnerships(g, func(o *game.Ownership) {
					if found != "" {
						return
					}
					if eq.CheckUnilateralNE(gmN, g, o.Clone()).Stable {
						found = "α=" + alpha.String() + " " + g.String()
					}
				})
			})
			if found != "" {
				break
			}
		}
		r.addLinef("  n=%d: witness %q", n, found)
		if n == 5 {
			r.addCheck("search rediscovery", found != "", "n=5 search: %q", found)
		}
	}
	return r
}

// runF5BNEGap reproduces Figure 5 / Proposition A.4: the two-arm hub
// gadget is in BAE and BGE at α = 209/2 but not in BNE — the hub's double
// swap improves the hub by 2 and each new partner by 105 > α, while each
// single swap offers a partner only 104 < α.
func runF5BNEGap(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F5", Title: "Figure 5: BAE ∧ BGE but not BNE (α=104.5)"}
	f5 := construct.NewFigure5(100)
	g := f5.G
	gm, err := game.NewGame(g.N(), game.AFrac(209, 2))
	if err != nil {
		r.addCheck("setup", false, "%v", err)
		return r
	}
	r.addLinef("gadget: n=%d, hub with two a–b–c–d arms and 100 leaves", g.N())
	r.addCheck("RE", eq.CheckRE(gm, g).Stable, "tree, removals disconnect")
	r.addCheck("BAE", eq.CheckBAE(gm, g).Stable, "no mutually improving addition")
	r.addCheck("BSwE", eq.CheckBSwE(gm, g).Stable, "no mutually improving swap")

	// Single swap: the hub trades a–b1 for a–c1; c1 gains exactly 104 in
	// distance, below α.
	swap := move.Swap{U: f5.A, Old: f5.B[0], New: f5.C[0]}
	before, after, err := eq.CostDelta(gm, g, swap)
	if err != nil {
		r.addCheck("swap delta", false, "%v", err)
		return r
	}
	cGain := before[1].Dist - after[1].Dist
	r.addCheck("single-swap partner gain is 104", cGain == 104,
		"c1 distance gain %d < α = 104.5", cGain)

	// Double swap as a neighborhood change: improves a and both c's.
	double := move.Neighborhood{
		U:        f5.A,
		RemoveTo: []int{f5.B[0], f5.B[1]},
		AddTo:    []int{f5.C[0], f5.C[1]},
	}
	before, after, err = eq.CostDelta(gm, g, double)
	if err != nil {
		r.addCheck("double delta", false, "%v", err)
		return r
	}
	aGain := before[0].Dist - after[0].Dist
	cGain = before[1].Dist - after[1].Dist
	r.addCheck("hub gains 2", aGain == 2, "hub distance gain %d", aGain)
	r.addCheck("partner gains 105", cGain == 105, "c1 distance gain %d > α", cGain)
	r.addCheck("not BNE", eq.Improving(gm, g, double), "double swap improves all actors")
	return r
}

// runF62BSEGap reproduces Figure 6 / Proposition A.5: the recovered
// 10-node gadget is in BNE at α = 7 but a 2-coalition improves by trading
// its two c-edges for a direct edge. The search that recovered the gadget
// matched the paper's agent costs exactly.
func runF62BSEGap(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F6", Title: "Figure 6: BNE but not 2-BSE (α=7)"}
	f6 := construct.NewFigure6()
	g := f6.G
	gm, err := game.NewGame(g.N(), game.A(7))
	if err != nil {
		r.addCheck("setup", false, "%v", err)
		return r
	}
	distA, _ := g.TotalDist(f6.A[0])
	distB, _ := g.TotalDist(f6.B[0])
	distC, _ := g.TotalDist(f6.C[0])
	r.addLinef("gadget: %s", g)
	r.addLinef("agent distance costs: a=%d b=%d c=%d (paper: 19, 27, 19)", distA, distB, distC)
	r.addCheck("paper distances", distA == 19 && distB == 27 && distC == 19,
		"a=%d b=%d c=%d", distA, distB, distC)
	r.addCheck("BNE", eq.CheckBNE(gm, g).Stable, "exhaustive neighborhood check, n=10")
	res := eq.CheckKBSE(gm, g, 2)
	r.addCheck("not 2-BSE", !res.Stable, "improving 2-coalition: %v", res.Witness)
	return r
}

// runF7kBSEGap reproduces Figure 7 / Proposition A.7: the hub-and-rows
// gadget at α = 4(i−1) is in 2-BSE (and, for enough rows, 3-BSE) while the
// hub's row-swap neighborhood change always violates BNE. The paper takes
// i = 20k rows for k-BSE; the sweep locates the actual thresholds.
func runF7kBSEGap(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F7", Title: "Figure 7: k-BSE but not BNE (α=4(i−1))"}
	maxRows := 6
	threeBSERows := 4
	if s == Full {
		maxRows = 8
		threeBSERows = 5
	}
	first2BSE := 0
	bneAlways := true
	for rows := 2; rows <= maxRows; rows++ {
		f7 := construct.NewFigure7(rows)
		gm, err := game.NewGame(f7.G.N(), game.A(f7.AlphaNum()))
		if err != nil {
			r.addCheck("setup", false, "%v", err)
			return r
		}
		two := eq.CheckKBSE(gm, f7.G, 2).Stable
		three := "-"
		if rows <= threeBSERows {
			if eq.CheckKBSE(gm, f7.G, 3).Stable {
				three = "true"
			} else {
				three = "false"
			}
		}
		hubMove := move.Neighborhood{
			U:        f7.A,
			RemoveTo: append([]int(nil), f7.B...),
			AddTo:    append([]int(nil), f7.C...),
		}
		bneViolated := eq.Improving(gm, f7.G, hubMove)
		if !bneViolated {
			bneAlways = false
		}
		if two && first2BSE == 0 {
			first2BSE = rows
		}
		r.addLinef("  rows=%d n=%d α=%d: 2-BSE=%v 3-BSE=%s hub-move-improves=%v",
			rows, f7.G.N(), f7.AlphaNum(), two, three, bneViolated)
	}
	r.addCheck("2-BSE from a threshold on", first2BSE > 0 && first2BSE <= 4,
		"first 2-BSE at rows=%d (paper's conservative bound: 40)", first2BSE)
	r.addCheck("never BNE", bneAlways, "hub swap improves hub and every c-agent at all sizes")
	return r
}

// runF8AddGap reproduces Proposition 2.1 / Figure 8: a graph in BAE of the
// BNCG that is not in Add Equilibrium of the unilateral NCG — unilateral
// addition is strictly more powerful because it needs no partner consent.
func runF8AddGap(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "F8", Title: "Figure 8 / Prop 2.1: BAE does not imply unilateral AE"}
	g := construct.Figure8()
	gm, err := game.NewGame(g.N(), game.A(2))
	if err != nil {
		r.addCheck("setup", false, "%v", err)
		return r
	}
	r.addLinef("gadget (broom): %s at α=2", g)
	r.addCheck("BAE", eq.CheckBAE(gm, g).Stable, "no pair improves jointly")
	ae := eq.CheckUnilateralAE(gm, g)
	r.addCheck("not unilateral AE", !ae.Stable, "solo buyer improves: %v", ae.Witness)

	// The forward direction of Prop 2.1 (AE ⇒ BAE) on the full sweep.
	violations := 0
	for _, alpha := range latticeAlphas() {
		gm5, _ := game.NewGame(5, alpha)
		graph.Enumerate(5, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}, func(h *graph.Graph) {
			if eq.CheckUnilateralAE(gm5, h).Stable && !eq.CheckBAE(gm5, h).Stable {
				violations++
			}
		})
	}
	r.addCheck("AE implies BAE", violations == 0, "%d violations over the n=5 sweep", violations)
	return r
}
