// Package experiments contains one runner per table row and figure of the
// paper. Each runner produces a Report: formatted result rows plus named
// pass/fail checks asserting the paper's qualitative claims (the "shape"
// of each result). The bench harness in the repository root and the
// `bncg experiment` CLI subcommand both dispatch into this package.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sweep"
)

// Scale selects how much work a runner does.
type Scale int

// Quick keeps every runner in CI-friendly time; Full extends sweeps for
// the recorded EXPERIMENTS.md numbers.
const (
	Quick Scale = iota + 1
	Full
)

// Check is a named assertion about an experiment's outcome.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the outcome of one experiment. SchemaVersion stamps the JSON
// form with the public payload generation (the legacy fields keep their
// historical capitalized keys).
type Report struct {
	SchemaVersion int `json:"schema_version"`
	ID            string
	Title         string
	Lines         []string
	Checks        []Check
}

func (r *Report) addLinef(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) addCheck(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// AllPass reports whether every check passed.
func (r *Report) AllPass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// FailedChecks returns the failing checks.
func (r *Report) FailedChecks() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// MarshalJSON implements a stable JSON encoding of the report: snake_case
// keys in fixed order, with an aggregate "all_pass" so consumers need not
// re-derive it.
func (r *Report) MarshalJSON() ([]byte, error) {
	type checkJSON struct {
		Name   string `json:"name"`
		Pass   bool   `json:"pass"`
		Detail string `json:"detail"`
	}
	out := struct {
		SchemaVersion int         `json:"schema_version"`
		ID            string      `json:"id"`
		Title         string      `json:"title"`
		Lines         []string    `json:"lines"`
		Checks        []checkJSON `json:"checks"`
		AllPass       bool        `json:"all_pass"`
	}{
		SchemaVersion: r.SchemaVersion,
		ID:            r.ID,
		Title:         r.Title,
		Lines:         r.Lines,
		Checks:        make([]checkJSON, len(r.Checks)),
		AllPass:       r.AllPass(),
	}
	if out.Lines == nil {
		out.Lines = []string{}
	}
	for i, c := range r.Checks {
		out.Checks[i] = checkJSON{Name: c.Name, Pass: c.Pass, Detail: c.Detail}
	}
	return json.Marshal(out)
}

// Runner executes an experiment at a scale. Runners observe ctx through
// the engines they drive (sweeps, PoA searches, dynamics) and return a
// partial report when it is cancelled.
type Runner func(context.Context, Scale) *Report

// registry maps experiment IDs to runners; populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment id %q", id))
	}
	registry[id] = r
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID. Cancelling ctx stops the
// experiment at the granularity of its underlying sweeps and searches; the
// partial report produced so far is returned together with ctx.Err().
func Run(ctx context.Context, id string, s Scale) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	rep := r(ctx, s)
	if rep != nil {
		rep.SchemaVersion = sweep.SchemaVersion
	}
	return rep, ctx.Err()
}
