package experiments

import (
	"context"
	"strings"
	"testing"
)

// Every registered experiment must pass all of its own shape checks at
// Quick scale — this is the repository's integration test for the paper's
// qualitative claims.
func TestAllExperimentsPassAtQuickScale(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(context.Background(), id, Quick)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Fatalf("report ID %q, want %q", rep.ID, id)
			}
			for _, c := range rep.FailedChecks() {
				t.Errorf("check %q failed: %s", c.Name, c.Detail)
			}
			if len(rep.Checks) == 0 {
				t.Fatal("experiment produced no checks")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "nope", Quick); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestIDsCoverEveryTableRowAndFigure(t *testing.T) {
	// The experiment inventory from DESIGN.md §4: every Table 1 row and
	// every figure has a registered runner.
	want := []string{
		"T1-PS", "T1-BSwE", "T1-BGE", "T1-BNE", "T1-3BSE", "T1-BSE",
		"F1a", "F1b", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
		"L2.4", "P3.16", "P3.22", "DYN", "OQ-GENERAL",
		"NCG-COMPARE", "APP-B",
	}
	have := make(map[string]bool)
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, inventory lists %d", len(IDs()), len(want))
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "X", Title: "demo"}
	r.addLinef("row %d", 1)
	r.addCheck("ok", true, "fine")
	r.addCheck("bad", false, "broken")
	out := r.String()
	for _, want := range []string{"== X: demo ==", "row 1", "[PASS] ok: fine", "[FAIL] bad: broken"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, out)
		}
	}
	if r.AllPass() {
		t.Fatal("AllPass with a failing check")
	}
	if len(r.FailedChecks()) != 1 {
		t.Fatal("FailedChecks length wrong")
	}
}
