package experiments

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/ncg"
)

func init() {
	register("NCG-COMPARE", runNCGCompare)
	register("APP-B", runAppendixB)
}

// runNCGCompare reproduces the paper's motivating comparison (Section 1):
// the bilateral game under Pairwise Stability admits socially worse trees
// than the unilateral NCG under NE — "the required cooperation for
// establishing edges leads to socially worse equilibrium states".
// Both sides are computed exhaustively over all free trees.
func runNCGCompare(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "NCG-COMPARE", Title: "Motivation: bilateral PS vs unilateral NE tree PoA"}
	n := 7
	if s == Full {
		n = 8
	}
	alphas := []game.Alpha{game.A(2), game.A(4), game.A(int64(n)), game.A(int64(2 * n))}
	r.addLinef("exhaustive tree PoA, n=%d:", n)
	r.addLinef("%8s %14s %14s", "alpha", "BNCG-PS", "NCG-NE")
	worstGap := 0.0
	for _, alpha := range alphas {
		ps, err := core.WorstTree(ctx, n, alpha, eq.PS)
		if err != nil {
			r.addCheck("PS search", false, "%v", err)
			return r
		}
		neRho, neStable, err := ncg.TreePoA(n, alpha)
		if err != nil {
			r.addCheck("NE search", false, "%v", err)
			return r
		}
		r.addLinef("%8s %14.3f %14.3f", alpha, ps.Rho, neRho)
		if neStable == 0 {
			r.addCheck("NE trees exist", false, "α=%s: none", alpha)
			return r
		}
		if gap := ps.Rho - neRho; gap > worstGap {
			worstGap = gap
		}
		// The unilateral baseline respects Fabrikant et al.'s bound.
		r.addCheck("unilateral tree PoA <= 5", neRho <= 5, "α=%s: %.3f", alpha, neRho)
		// Cooperation requirements never help the worst case on trees:
		// bilateral PS is at least as bad as unilateral NE.
		r.addCheck("bilateral at least as bad", ps.Rho >= neRho-1e-9,
			"α=%s: PS %.3f vs NE %.3f", alpha, ps.Rho, neRho)
	}
	r.addCheck("strictly worse somewhere", worstGap > 0,
		"max PoA gap PS−NE = %.3f", worstGap)
	return r
}

// runAppendixB verifies the Appendix B structural facts on exhaustive
// small instances: Lemma B.1 (the social cost of an RE graph is at most
// 2(n−1)(α + dist(u)) for every node u) and the add-equilibrium diameter
// bound (diam ≤ 2√α + 1 in BAE graphs, carried over from the NCG).
func runAppendixB(ctx context.Context, s Scale) *Report {
	r := &Report{ID: "APP-B", Title: "Appendix B: RE cost bound and BAE diameter bound"}
	n := 6
	if s == Full {
		n = 7
	}
	alphas := []game.Alpha{game.A(1), game.A(2), game.AFrac(9, 2), game.A(8), game.A(20)}
	var (
		reChecked, baeChecked int
		lemmaB1Violations     int
		diamViolations        int
		worstDiamRatio        float64
	)
	for _, alpha := range alphas {
		gm, err := game.NewGame(n, alpha)
		if err != nil {
			r.addCheck("setup", false, "%v", err)
			return r
		}
		graph.Enumerate(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}, func(g *graph.Graph) {
			if eq.CheckRE(gm, g).Stable {
				reChecked++
				social := gm.SocialCost(g).Value(alpha)
				for u := 0; u < n; u++ {
					distU, _ := g.TotalDist(u)
					bound := 2 * float64(n-1) * (alpha.Float() + float64(distU))
					if social > bound+1e-9 {
						lemmaB1Violations++
					}
				}
			}
			if eq.CheckBAE(gm, g).Stable {
				baeChecked++
				diam := float64(g.Diameter())
				bound := 2*math.Sqrt(alpha.Float()) + 1
				if ratio := diam / bound; ratio > worstDiamRatio {
					worstDiamRatio = ratio
				}
				if diam > bound+1e-9 {
					diamViolations++
				}
			}
		})
	}
	r.addLinef("n=%d: %d RE states, %d BAE states over %d α values", n, reChecked, baeChecked, len(alphas))
	r.addLinef("worst diameter/(2√α+1) ratio: %.3f", worstDiamRatio)
	r.addCheck("lemma B.1 cost bound", lemmaB1Violations == 0,
		"%d violations over %d RE states (every anchor node)", lemmaB1Violations, reChecked)
	r.addCheck("BAE diameter bound", diamViolations == 0,
		"%d violations over %d BAE states", diamViolations, baeChecked)
	return r
}
