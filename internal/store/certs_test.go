package store

import (
	"strings"
	"testing"
)

func certOn01(canon string, concept uint8) CertRecord {
	// Stable exactly on [0, 1]: the K_n Remove-Equilibrium shape.
	return CertRecord{Canon: canon, Concept: concept, Intervals: []Interval{
		{LoNum: 0, LoDen: 1, HiNum: 1, HiDen: 1},
	}}
}

// TestStoreCertRoundTrip: certificates persist, survive reopen, answer
// exact rational membership queries, and are counted per record type.
func TestStoreCertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cert := certOn01("canon-a", 3)
	if err := s.PutCert(cert); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Canon: "canon-b", Num: 2, Den: 1, Concept: 3, Stable: false}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 2 || st.VerdictRecords != 1 || st.CertificateRecords != 1 {
		t.Fatalf("stats %+v, want 1 verdict + 1 certificate", st)
	}
	// Idempotent re-put; conflicting re-put rejected.
	if err := s.PutCert(cert); err != nil {
		t.Fatal(err)
	}
	bad := certOn01("canon-a", 3)
	bad.Intervals[0].HiOpen = true
	if err := s.PutCert(bad); err == nil {
		t.Fatal("conflicting certificate accepted")
	}
	// Malformed certificates are refused at Put: anything Validate lets
	// through must decode on reopen and rebuild into an eq.AlphaSet, so
	// empty, inverted, out-of-order, touching-closed and out-of-range
	// shapes all fail loudly here instead of at a later warm-start.
	for name, ivs := range map[string][]Interval{
		"empty":           {{LoNum: 5, LoDen: 1, HiNum: 5, HiDen: 1, HiOpen: true}},
		"inverted":        {{LoNum: 5, LoDen: 1, HiNum: 1, HiDen: 1}},
		"out of order":    {{LoNum: 2, LoDen: 1, HiNum: 3, HiDen: 1}, {LoNum: 0, LoDen: 1, HiNum: 1, HiDen: 1}},
		"touching closed": {{LoNum: 0, LoDen: 1, HiNum: 1, HiDen: 1}, {LoNum: 1, LoDen: 1, HiInf: true}},
		"undecodable num": {{LoNum: 1<<62 + 1, LoDen: 1, HiInf: true}},
		"after unbounded": {{LoNum: 0, LoDen: 1, HiInf: true}, {LoNum: 1, LoDen: 1, HiInf: true}},
	} {
		if err := (CertRecord{Canon: "x", Concept: 1, Intervals: ivs}).Validate(); err == nil {
			t.Errorf("%s certificate accepted by Validate", name)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.GetCert(CertKey{Canon: "canon-a", Concept: 3})
	if !ok || !equalIntervals(got.Intervals, cert.Intervals) {
		t.Fatalf("reopened certificate: ok=%v %+v", ok, got)
	}
	for _, tc := range []struct {
		num, den int64
		want     bool
	}{{0, 1, true}, {1, 2, true}, {1, 1, true}, {3, 2, false}, {2, 1, false}} {
		if got.Contains(tc.num, tc.den) != tc.want {
			t.Errorf("Contains(%d/%d) = %v, want %v", tc.num, tc.den, !tc.want, tc.want)
		}
	}
	n := 0
	s2.RangeCerts(func(CertRecord) bool { n++; return true })
	if n != 1 {
		t.Fatalf("RangeCerts visited %d records, want 1", n)
	}
}

// TestStoreCompactFoldsSubsumedVerdicts: compaction drops every per-α
// verdict whose (canon, concept) certificate answers its α identically —
// one certificate replaces the row on disk — and keeps verdicts with no
// covering certificate.
func TestStoreCompactFoldsSubsumedVerdicts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Legacy row: verdicts at α = 1/2, 1, 2 for the [0, 1] certificate.
	for _, a := range []struct {
		num, den int64
		stable   bool
	}{{1, 2, true}, {1, 1, true}, {2, 1, false}} {
		if err := s.Put(Record{Canon: "canon-a", Num: a.num, Den: a.den, Concept: 3, Stable: a.stable}); err != nil {
			t.Fatal(err)
		}
	}
	// An uncovered verdict (different concept) survives compaction.
	if err := s.Put(Record{Canon: "canon-a", Num: 1, Den: 1, Concept: 4, Stable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCert(certOn01("canon-a", 3)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.VerdictRecords != 4 || st.CertificateRecords != 1 {
		t.Fatalf("pre-compact stats %+v", st)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.VerdictRecords != 1 || st.CertificateRecords != 1 || st.Records != 2 {
		t.Fatalf("post-compact stats %+v, want the certificate to fold the covered row", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The folded state is what reopens.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.VerdictRecords != 1 || st.CertificateRecords != 1 {
		t.Fatalf("reopened stats %+v", st)
	}
	if _, ok := s2.Get(Key{Canon: "canon-a", Num: 1, Den: 1, Concept: 4}); !ok {
		t.Fatal("uncovered verdict lost in compaction")
	}
}

// TestStoreCompactRejectsContradictingVerdict: a verdict that disagrees
// with its covering certificate is corruption; compaction must fail
// loudly, not pick a side.
func TestStoreCompactRejectsContradictingVerdict(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Record{Canon: "canon-a", Num: 2, Den: 1, Concept: 3, Stable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCert(certOn01("canon-a", 3)); err != nil {
		t.Fatal(err)
	}
	err = s.Compact()
	if err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("compaction of contradicting records: %v", err)
	}
}
