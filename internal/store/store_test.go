package store

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Canon:   string([]byte{0, 1, byte(i), byte(i >> 8)}),
			Num:     int64(i%7 + 1),
			Den:     int64(i%3 + 1),
			Concept: uint8(i%9 + 1),
			Stable:  i%2 == 0,
		})
	}
	return recs
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func dump(s *Store) []Record {
	var recs []Record
	s.Range(func(r Record) bool { recs = append(recs, r); return true })
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key().less(recs[j].Key()) })
	return recs
}

// TestStoreRoundTrip: records written to a store come back identical after
// reopening, across shards and flush batches.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(1000)
	s := mustOpen(t, dir, Options{Shards: 4, FlushEvery: 64})
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	got := dump(s)
	want := testRecords(1000)
	sort.Slice(want, func(i, j int) bool { return want[i].Key().less(want[j].Key()) })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened store holds %d records, want %d identical ones", len(got), len(want))
	}
	if st := s.Stats(); st.RecoveredBytes != 0 || st.Segments != 4 {
		t.Fatalf("clean reopen stats: %+v", st)
	}
	// Shards were recorded in META.json; the Options{} default of 8 must
	// not have resharded the store.
	if n := len(s.segs); n != 4 {
		t.Fatalf("reopen resharded to %d segments", n)
	}
}

// TestStoreCrashSafetyTruncatedTail: a segment cut mid-record — the torn
// tail a crash leaves behind — recovers cleanly: every fully written
// record survives, the damage is truncated away, and the store accepts
// appends again.
func TestStoreCrashSafetyTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(100)
	s := mustOpen(t, dir, Options{Shards: 1, FlushEvery: 1})
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final record's frame.
	cut := int64(len(data) - 3)
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	if got, want := s.Len(), len(recs)-1; got != want {
		t.Fatalf("recovered %d records, want %d (all but the torn one)", got, want)
	}
	st := s.Stats()
	if st.RecoveredBytes == 0 {
		t.Fatal("recovery did not report truncated bytes")
	}
	// The torn record can be re-put and the file must end clean again.
	if err := s.Put(recs[len(recs)-1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != len(recs) {
		t.Fatalf("after repair: %d records, want %d", s.Len(), len(recs))
	}
	if st := s.Stats(); st.RecoveredBytes != 0 {
		t.Fatalf("second reopen still recovering: %+v", st)
	}
}

// TestStoreCrashSafetyGarbageTail: random garbage appended after valid
// frames (torn page writes) is truncated away without losing records.
func TestStoreCrashSafetyGarbageTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)
	s := mustOpen(t, dir, Options{Shards: 1})
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != len(recs) {
		t.Fatalf("recovered %d records, want %d", s.Len(), len(recs))
	}
	if st := s.Stats(); st.RecoveredBytes != 7 {
		t.Fatalf("recovered %d bytes, want 7", st.RecoveredBytes)
	}
}

// TestStoreConflictRejected: verdicts are pure functions of their key, so
// a Put disagreeing with a held verdict must be refused, not recorded.
func TestStoreConflictRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	rec := Record{Canon: "x", Num: 1, Den: 1, Concept: 1, Stable: true}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec); err != nil {
		t.Fatalf("idempotent re-put failed: %v", err)
	}
	rec.Stable = false
	if err := s.Put(rec); err == nil {
		t.Fatal("conflicting verdict accepted")
	}
	if stable, ok := s.Get(rec.Key()); !ok || !stable {
		t.Fatal("conflict clobbered the original verdict")
	}
}

// TestStoreCompact: duplicate frames on disk (written behind the store's
// back, as a crashed writer without warm-start could) are dropped by
// Compact, and the surviving content is unchanged.
func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(50)
	s := mustOpen(t, dir, Options{Shards: 2})
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append raw duplicate frames directly to a segment.
	seg := filepath.Join(dir, "seg-00.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r := recs[0]
		if s.shardOf(r.Canon) != s.segs[0] {
			r = recs[1]
		}
		if _, err := f.Write(encodeFrame(r)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	before := s.Stats()
	if before.DuplicateFrames != 10 {
		t.Fatalf("open counted %d duplicate frames, want 10", before.DuplicateFrames)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", before.DiskBytes, after.DiskBytes)
	}
	if after.DuplicateFrames != 0 || after.Records != len(recs) {
		t.Fatalf("post-compaction stats: %+v", after)
	}
	got := dump(s)
	if len(got) != len(recs) {
		t.Fatalf("compaction changed the record count: %d", len(got))
	}
}

// TestStoreCheckpointRoundTrip: checkpoints survive close/reopen, replace
// atomically, and clear.
func TestStoreCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	type cp struct {
		N    int      `json:"n"`
		Grid []string `json:"grid"`
	}
	s := mustOpen(t, dir, Options{})
	var got cp
	if ok, err := s.LoadCheckpoint(&got); ok || err != nil {
		t.Fatalf("fresh store has a checkpoint: %v %v", ok, err)
	}
	want := cp{N: 6, Grid: []string{"1/2", "2"}}
	if err := s.SaveCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	ok, err := s.LoadCheckpoint(&got)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: %v %v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint round-trip: %+v != %+v", got, want)
	}
	if err := s.ClearCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.LoadCheckpoint(&got); ok {
		t.Fatal("checkpoint survived ClearCheckpoint")
	}
	if err := s.ClearCheckpoint(); err != nil {
		t.Fatalf("double clear: %v", err)
	}
}

// TestStoreLock: a second live opener is refused; a lock left by a dead
// process is stolen.
func TestStoreLock(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second opener acquired a held lock")
	}
	s.Close()
	// A LOCK file nobody flocks — what a crashed (or kill -9'd) writer
	// leaves behind — must not block the next opener.
	if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	s.Close()
}

// TestStoreFlushDurability: records flushed explicitly are durable even
// when the store is never closed (the crash-consistency contract Flush
// advertises).
func TestStoreFlushDurability(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)
	s := mustOpen(t, dir, Options{FlushEvery: 1000})
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: drop the store without Close. Closing the file
	// descriptors also drops the kernel flock, exactly as process death
	// would.
	s.closeFiles()
	s.releaseLock()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != len(recs) {
		t.Fatalf("flushed records lost: %d of %d survive", s2.Len(), len(recs))
	}
}

// TestStoreOpenRejectsConflictingFrames: two durable frames disagreeing
// on one key — a state Put refuses to write — fail Open loudly instead of
// silently serving a possibly-wrong verdict.
func TestStoreOpenRejectsConflictingFrames(t *testing.T) {
	dir := t.TempDir()
	rec := Record{Canon: "x", Num: 1, Den: 1, Concept: 1, Stable: true}
	s := mustOpen(t, dir, Options{Shards: 1})
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "seg-00.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec.Stable = false
	if _, err := f.Write(encodeFrame(rec)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting store opened: %v", err)
	}
	// The failed Open must not leave its lock held: a retry must fail on
	// the conflict again, not on the lock.
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("failed Open left the lock held: %v", err)
	}
}

// TestStoreReadOnly: a read-only open works alongside a live writer (no
// lock), sees the flushed records, repairs nothing, and refuses writes.
func TestStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	rec := Record{Canon: "x", Num: 1, Den: 1, Concept: 1, Stable: true}
	if err := w.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// The writer still holds the lock; a read-only open must succeed.
	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("read-only open sees %d records, want 1", r.Len())
	}
	if err := r.Put(Record{Canon: "y", Num: 1, Den: 1, Concept: 1}); err == nil {
		t.Fatal("read-only Put accepted")
	}
	if err := r.Compact(); err == nil {
		t.Fatal("read-only Compact accepted")
	}
	if err := r.SaveCheckpoint(struct{}{}); err == nil {
		t.Fatal("read-only SaveCheckpoint accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing the reader must not release the writer's lock.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("reader Close released the writer's lock")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Read-only on a nonexistent store is an error, not a creation.
	if _, err := Open(filepath.Join(dir, "nope"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open created a store")
	}
}
