package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file is the persistence edge of the GameVariant redesign: extended
// (variant-tagged) frames round-trip, legacy frames decode as the default
// variant byte-for-byte, the META version bumps lazily so pre-variant
// binaries fail loudly instead of truncating segments, and merge treats
// distinct variants as distinct keys.

// TestDefaultVariantEncodesLegacyBytes pins the differential anchor at the
// codec level: a record with the default variant encodes byte-identically
// to one that never heard of variants, so default-variant stores and
// dumps stay exact against pre-variant baselines.
func TestDefaultVariantEncodesLegacyBytes(t *testing.T) {
	rec := Record{Canon: "class-1", Num: 3, Den: 2, Concept: 2, Stable: true}
	legacy := []byte{7}
	legacy = append(legacy, "class-1"...)
	legacy = append(legacy, 3, 2, 2, 1)
	if got := encodeRecord(rec); !bytes.Equal(got, legacy) {
		t.Fatalf("default-variant record encoding % x, want legacy % x", got, legacy)
	}
	cert := certOn01("class-1", 2)
	enc := encodeCertRecord(cert)
	if enc[0] != certKind || enc[1] == extMagic {
		t.Fatalf("default-variant certificate must use the legacy encoding, got % x", enc[:4])
	}
}

// TestVariantFrameRoundTrip: variant-tagged verdicts and certificates
// survive encode → frame → decode with their variant intact, and the
// extended payloads are distinguishable from both legacy kinds.
func TestVariantFrameRoundTrip(t *testing.T) {
	rec := Record{Canon: "class-1", Num: 3, Den: 2, Concept: 2, Variant: "unilateral,max", Stable: true}
	n, fr, ok := decodeFrame(encodeFrame(rec))
	if !ok || fr.isCert {
		t.Fatalf("variant verdict frame did not decode as a verdict (ok=%v)", ok)
	}
	if n != len(encodeFrame(rec)) || fr.rec != rec {
		t.Fatalf("variant verdict round trip: %+v -> %+v", rec, fr.rec)
	}
	cert := certOn01("class-1", 2)
	cert.Variant = "mul:0=3/2"
	n, fr, ok = decodeFrame(encodeCertFrame(cert))
	if !ok || !fr.isCert {
		t.Fatalf("variant certificate frame did not decode as a certificate (ok=%v)", ok)
	}
	if n != len(encodeCertFrame(cert)) || fr.cert.Variant != cert.Variant ||
		fr.cert.Canon != cert.Canon || !equalIntervals(fr.cert.Intervals, cert.Intervals) {
		t.Fatalf("variant certificate round trip: %+v -> %+v", cert, fr.cert)
	}
}

// TestLegacyFramesDecodeAsDefaultVariant replays a hand-built legacy
// segment image and checks every record comes back with the empty
// (default) variant — the upgrade path for stores written before the
// redesign.
func TestLegacyFramesDecodeAsDefaultVariant(t *testing.T) {
	dir := t.TempDir()
	seg := []byte(segMagic)
	seg = append(seg, frameOf([]byte{7, 'c', 'l', 'a', 's', 's', '-', '1', 3, 2, 2, 1})...)
	legacyCert := certOn01("class-1", 2)
	legacyCert.Variant = "" // encode through the legacy path
	seg = append(seg, frameOf(encodeCertRecord(legacyCert))...)
	metaJSON := []byte(`{"version":1,"shards":1}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "META.json"), metaJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00.log"), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stable, ok := s.Get(Key{Canon: "class-1", Num: 3, Den: 2, Concept: 2})
	if !ok || !stable {
		t.Fatalf("legacy verdict not found under the default-variant key (ok=%v stable=%v)", ok, stable)
	}
	if _, ok := s.Get(Key{Canon: "class-1", Num: 3, Den: 2, Concept: 2, Variant: "unilateral"}); ok {
		t.Fatal("legacy verdict must not answer for a non-default variant")
	}
	if c, ok := s.GetCert(CertKey{Canon: "class-1", Concept: 2}); !ok || c.Variant != "" {
		t.Fatalf("legacy certificate not found under the default-variant key (ok=%v variant=%q)", ok, c.Variant)
	}
}

func readMetaVersion(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "META.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m.Version
}

// TestMetaVersionBumpsOnFirstVariantWrite: default-variant writes leave a
// store at format version 1; the first variant-tagged write durably bumps
// it to 2 before the frame lands, and the store reopens with everything
// intact. A pre-variant binary (which rejects version != 1) then refuses
// the store at Open instead of mistaking extended frames for a torn tail.
func TestMetaVersionBumpsOnFirstVariantWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Canon: "class-1", Num: 1, Den: 1, Concept: 2, Stable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if v := readMetaVersion(t, dir); v != 1 {
		t.Fatalf("default-variant writes must keep version 1, got %d", v)
	}
	if err := s.Put(Record{Canon: "class-1", Num: 1, Den: 1, Concept: 2, Variant: "unilateral", Stable: false}); err != nil {
		t.Fatal(err)
	}
	// The bump is durable before the frame is even flushed.
	if v := readMetaVersion(t, dir); v != 2 {
		t.Fatalf("variant write must bump the version to 2, got %d", v)
	}
	if err := s.PutCert(CertRecord{Canon: "class-2", Concept: 2, Variant: "max",
		Intervals: []Interval{{LoNum: 0, LoDen: 1, HiInf: true}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if v := readMetaVersion(t, dir); v != 2 {
		t.Fatalf("version must stay 2 after close, got %d", v)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopening a version-2 store: %v", err)
	}
	defer r.Close()
	if stable, ok := r.Get(Key{Canon: "class-1", Num: 1, Den: 1, Concept: 2, Variant: "unilateral"}); !ok || stable {
		t.Fatalf("variant verdict lost across reopen (ok=%v stable=%v)", ok, stable)
	}
	if stable, ok := r.Get(Key{Canon: "class-1", Num: 1, Den: 1, Concept: 2}); !ok || !stable {
		t.Fatalf("default verdict lost across reopen (ok=%v stable=%v)", ok, stable)
	}
	if _, ok := r.GetCert(CertKey{Canon: "class-2", Concept: 2, Variant: "max"}); !ok {
		t.Fatal("variant certificate lost across reopen")
	}
}

// TestIngestKeepsVariantsDistinct: the same class, price and concept may
// legitimately hold opposite verdicts in different variants — merge must
// keep both — while a contradiction within one variant still fails loudly.
func TestIngestKeepsVariantsDistinct(t *testing.T) {
	a, b, dst := openShard(t), openShard(t), openShard(t)
	if err := a.Put(Record{Canon: "class-1", Num: 2, Den: 1, Concept: 2, Stable: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(Record{Canon: "class-1", Num: 2, Den: 1, Concept: 2, Variant: "unilateral", Stable: false}); err != nil {
		t.Fatal(err)
	}
	cert := certOn01("class-2", 3)
	if err := a.PutCert(cert); err != nil {
		t.Fatal(err)
	}
	vcert := certOn01("class-2", 3)
	vcert.Variant = "max"
	vcert.Intervals = []Interval{{LoNum: 0, LoDen: 1, HiInf: true}}
	if err := b.PutCert(vcert); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Ingest(a); err != nil {
		t.Fatal(err)
	}
	st, err := dst.Ingest(b)
	if err != nil {
		t.Fatalf("cross-variant ingest must not conflict: %v", err)
	}
	if st.Verdicts != 1 || st.Certificates != 1 || st.Duplicates != 0 {
		t.Fatalf("cross-variant ingest stats %+v", st)
	}
	if stable, ok := dst.Get(Key{Canon: "class-1", Num: 2, Den: 1, Concept: 2}); !ok || !stable {
		t.Fatal("default-variant verdict lost in merge")
	}
	if stable, ok := dst.Get(Key{Canon: "class-1", Num: 2, Den: 1, Concept: 2, Variant: "unilateral"}); !ok || stable {
		t.Fatal("unilateral verdict lost in merge")
	}

	// Same variant, contradictory verdict: corruption, fails loudly.
	c := openShard(t)
	if err := c.Put(Record{Canon: "class-1", Num: 2, Den: 1, Concept: 2, Variant: "unilateral", Stable: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Ingest(c); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("same-variant contradiction must fail the merge, got %v", err)
	}
}

// TestCompactPreservesVariants: compaction folds certificate-subsumed
// verdicts per variant — a default-variant certificate must not swallow a
// variant verdict of the same class and concept — and variant records
// survive the rewrite.
func TestCompactPreservesVariants(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Certificate for (class-1, concept 2) in the DEFAULT variant: stable
	// on [0,1).
	if err := s.PutCert(certOn01("class-1", 2)); err != nil {
		t.Fatal(err)
	}
	// Default verdict at α=1/2 (inside the certificate): subsumed.
	if err := s.Put(Record{Canon: "class-1", Num: 1, Den: 2, Concept: 2, Stable: true}); err != nil {
		t.Fatal(err)
	}
	// Unilateral verdict at the same α with the OPPOSITE result: must
	// survive compaction untouched — it belongs to a different game.
	if err := s.Put(Record{Canon: "class-1", Num: 1, Den: 2, Concept: 2, Variant: "unilateral", Stable: false}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key{Canon: "class-1", Num: 1, Den: 2, Concept: 2}); ok {
		t.Fatal("default verdict inside its certificate must be folded away")
	}
	if stable, ok := s.Get(Key{Canon: "class-1", Num: 1, Den: 2, Concept: 2, Variant: "unilateral"}); !ok || stable {
		t.Fatalf("unilateral verdict lost or flipped by compaction (ok=%v stable=%v)", ok, stable)
	}
	// And everything survives a reopen of the compacted segments.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if stable, ok := r.Get(Key{Canon: "class-1", Num: 1, Den: 2, Concept: 2, Variant: "unilateral"}); !ok || stable {
		t.Fatalf("unilateral verdict lost across compact+reopen (ok=%v stable=%v)", ok, stable)
	}
	if _, ok := r.GetCert(CertKey{Canon: "class-1", Concept: 2}); !ok {
		t.Fatal("default certificate lost across compact+reopen")
	}
}

// TestVariantValidation: Put refuses descriptors the codec cannot carry.
func TestVariantValidation(t *testing.T) {
	s := openShard(t)
	for _, v := range []string{"uni lateral", "uni\nlateral", "ünilateral", strings.Repeat("x", maxVariantBytes+1)} {
		if err := s.Put(Record{Canon: "c", Num: 1, Den: 1, Concept: 2, Variant: v, Stable: true}); err == nil {
			t.Errorf("Put accepted invalid variant %q", v)
		}
	}
}

// FuzzVariantFrameRoundTrip is the variant edition of the codec fuzz
// targets: any record that validates — variant included — survives
// encode → frame → decode byte-identically in both payload kinds, and
// the extended header never collides with the legacy encodings.
func FuzzVariantFrameRoundTrip(f *testing.F) {
	f.Add([]byte("class"), int64(3), int64(2), uint8(2), true, "unilateral")
	f.Add([]byte{0, 1, 0}, int64(1), int64(1), uint8(9), false, "unilateral,max")
	f.Add([]byte("(())"), int64(7), int64(3), uint8(4), true, "mul:0=3,mul:1=2/3")
	f.Add([]byte("x"), int64(0), int64(1), uint8(1), false, "")
	f.Fuzz(func(t *testing.T, canon []byte, num, den int64, concept uint8, stable bool, variant string) {
		rec := Record{Canon: string(canon), Num: num, Den: den, Concept: concept, Variant: variant, Stable: stable}
		if rec.Validate() != nil {
			return
		}
		frame := encodeFrame(rec)
		n, got, ok := decodeFrame(frame)
		if !ok || got.isCert || n != len(frame) || got.rec != rec {
			t.Fatalf("variant verdict round trip failed: ok=%v n=%d %+v -> %+v", ok, n, rec, got.rec)
		}
		cert := CertRecord{Canon: string(canon), Concept: concept, Variant: variant,
			Intervals: []Interval{{LoNum: 0, LoDen: 1, HiInf: true}}}
		if cert.Validate() != nil {
			return
		}
		cframe := encodeCertFrame(cert)
		n, got, ok = decodeFrame(cframe)
		if !ok || !got.isCert || n != len(cframe) {
			t.Fatalf("variant certificate frame failed to decode: ok=%v n=%d", ok, n)
		}
		if got.cert.Canon != cert.Canon || got.cert.Concept != cert.Concept ||
			got.cert.Variant != cert.Variant || !equalIntervals(got.cert.Intervals, cert.Intervals) {
			t.Fatalf("variant certificate round trip changed the record: %+v -> %+v", cert, got.cert)
		}
	})
}
