package store

import (
	"encoding/binary"
	"fmt"
)

// Record is one persisted stability verdict: the canonical form of the
// graph, the exact reduced edge price num/den, the solution concept (as
// its small positive enum value), the game variant (as its canonical
// descriptor string, empty for the paper's default model), and the
// verdict bit. The store is deliberately decoupled from package eq and
// game — Concept is an opaque uint8 and Variant an opaque canonical
// token here, mapped back by the sweep-cache bridge.
type Record struct {
	Canon    string
	Num, Den int64
	Concept  uint8
	Variant  string
	Stable   bool
}

// Key identifies a record; two records with equal keys must agree on
// Stable. Records of distinct variants are distinct keys — the same
// class and price can be stable in one model and unstable in another.
type Key struct {
	Canon    string
	Num, Den int64
	Concept  uint8
	Variant  string
}

// Key returns r's identity.
func (r Record) Key() Key {
	return Key{Canon: r.Canon, Num: r.Num, Den: r.Den, Concept: r.Concept, Variant: r.Variant}
}

func (k Key) less(o Key) bool {
	if k.Variant != o.Variant {
		// Default-variant records ("") sort first, so legacy dumps are
		// byte-identical and variants group together.
		return k.Variant < o.Variant
	}
	if k.Canon != o.Canon {
		return k.Canon < o.Canon
	}
	if k.Num != o.Num {
		return k.Num < o.Num
	}
	if k.Den != o.Den {
		return k.Den < o.Den
	}
	return k.Concept < o.Concept
}

// Validate reports whether r can be encoded: a non-empty canonical key
// that fits a frame, a canonical non-negative reduced price, and a
// non-zero concept.
func (r Record) Validate() error {
	if r.Canon == "" {
		return fmt.Errorf("store: record with empty canonical key")
	}
	if len(r.Canon) > maxFrameBytes-32 {
		return fmt.Errorf("store: canonical key of %d bytes exceeds the frame cap", len(r.Canon))
	}
	if r.Num < 0 || r.Num > maxRat || r.Den <= 0 || r.Den > maxRat {
		// The bounds mirror decodeRecord's: a record that validates but
		// cannot decode would truncate recovery at its frame.
		return fmt.Errorf("store: record with invalid price %d/%d", r.Num, r.Den)
	}
	if r.Concept == 0 {
		return fmt.Errorf("store: record with zero concept")
	}
	return validVariant(r.Variant)
}

// maxVariantBytes caps the encoded variant descriptor, so a corrupt
// length cannot force a huge allocation during recovery.
const maxVariantBytes = 1 << 10

// validVariant vets a variant token: the empty string (the default
// variant) or a short printable-ASCII descriptor with no spaces — the
// shape game.Variant.Key() produces. The store does not parse the
// descriptor (it is decoupled from package game, as with Concept); the
// sweep-cache bridge rejects descriptors that do not parse canonically.
func validVariant(v string) error {
	if len(v) > maxVariantBytes {
		return fmt.Errorf("store: variant descriptor of %d bytes exceeds the cap", len(v))
	}
	for i := 0; i < len(v); i++ {
		if v[i] <= ' ' || v[i] > '~' {
			return fmt.Errorf("store: variant descriptor with non-printable byte 0x%02x", v[i])
		}
	}
	return nil
}

// Interval is one exact α interval of a persisted certificate. Endpoints
// are non-negative reduced rationals; HiInf marks an unbounded interval.
// The store is deliberately decoupled from package eq — the sweep-cache
// bridge maps these to eq.AlphaInterval.
type Interval struct {
	LoNum, LoDen   int64
	HiNum, HiDen   int64
	LoOpen, HiOpen bool
	HiInf          bool
}

// CertRecord is one persisted stability certificate: the exact set of
// edge prices (a sorted union of disjoint intervals) at which the class
// identified by Canon is stable for Concept. One certificate record
// replaces an entire per-α row of verdict Records — the economy of the
// parametric sweep engine.
type CertRecord struct {
	Canon     string
	Concept   uint8
	Variant   string
	Intervals []Interval
}

// CertKey identifies a certificate; two records with equal keys must
// agree on their interval sets. Certificates of distinct variants are
// distinct keys.
type CertKey struct {
	Canon   string
	Concept uint8
	Variant string
}

// Key returns r's identity.
func (r CertRecord) Key() CertKey {
	return CertKey{Canon: r.Canon, Concept: r.Concept, Variant: r.Variant}
}

func (k CertKey) less(o CertKey) bool {
	if k.Variant != o.Variant {
		return k.Variant < o.Variant
	}
	if k.Canon != o.Canon {
		return k.Canon < o.Canon
	}
	return k.Concept < o.Concept
}

// maxRat bounds every encoded rational component; decode rejects larger
// values, so Validate must too — a record that validates but cannot
// decode would truncate recovery at its frame and silently drop every
// later frame in the shard.
const maxRat = 1 << 62

// ratCmp compares a/b with c/d (positive denominators) exactly.
func ratCmp(a, b, c, d int64) int {
	lhs, rhs := a*d, c*b
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Validate reports whether r can be encoded AND decoded: a non-empty
// canonical key that fits a frame, a non-zero concept, and non-empty,
// sorted, pairwise-disjoint intervals with in-range endpoints. The
// sweep-cache bridge rebuilds an eq.AlphaSet from these intervals and
// panics on malformed shapes, so the store must refuse them at Put — a
// bad certificate fails loudly here, never at a later warm-start.
func (r CertRecord) Validate() error {
	if r.Canon == "" {
		return fmt.Errorf("store: certificate with empty canonical key")
	}
	if len(r.Canon) > maxFrameBytes-64 {
		return fmt.Errorf("store: canonical key of %d bytes exceeds the frame cap", len(r.Canon))
	}
	if r.Concept == 0 {
		return fmt.Errorf("store: certificate with zero concept")
	}
	if err := validVariant(r.Variant); err != nil {
		return err
	}
	if len(r.Intervals) > maxCertIntervals {
		return fmt.Errorf("store: certificate with %d intervals exceeds the cap", len(r.Intervals))
	}
	for i, iv := range r.Intervals {
		if iv.LoNum < 0 || iv.LoNum > maxRat || iv.LoDen <= 0 || iv.LoDen > maxRat {
			return fmt.Errorf("store: certificate interval %d with invalid lower bound %d/%d", i, iv.LoNum, iv.LoDen)
		}
		if iv.HiInf {
			if iv.HiNum != 0 || iv.HiDen != 0 || iv.HiOpen {
				return fmt.Errorf("store: certificate interval %d with non-canonical unbounded form", i)
			}
		} else {
			if iv.HiNum < 0 || iv.HiNum > maxRat || iv.HiDen <= 0 || iv.HiDen > maxRat {
				return fmt.Errorf("store: certificate interval %d with invalid upper bound %d/%d", i, iv.HiNum, iv.HiDen)
			}
			switch c := ratCmp(iv.LoNum, iv.LoDen, iv.HiNum, iv.HiDen); {
			case c > 0:
				return fmt.Errorf("store: certificate interval %d is inverted", i)
			case c == 0:
				if iv.LoOpen || iv.HiOpen {
					return fmt.Errorf("store: certificate interval %d is empty", i)
				}
			}
		}
		if i > 0 {
			prev := r.Intervals[i-1]
			if prev.HiInf {
				return fmt.Errorf("store: certificate interval %d after an unbounded one", i)
			}
			switch c := ratCmp(prev.HiNum, prev.HiDen, iv.LoNum, iv.LoDen); {
			case c > 0:
				return fmt.Errorf("store: certificate intervals %d and %d out of order", i-1, i)
			case c == 0:
				if !prev.HiOpen && !iv.LoOpen {
					return fmt.Errorf("store: certificate intervals %d and %d touch with both endpoints closed", i-1, i)
				}
			}
		}
	}
	return nil
}

// equalIntervals reports whether two persisted certificates describe the
// same α set, endpoint for endpoint.
func equalIntervals(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the exact price num/den (den > 0) lies in the
// certificate's stable set — pure int64 cross-multiplication, no floats.
func (r CertRecord) Contains(num, den int64) bool {
	for _, iv := range r.Intervals {
		// Below the lower bound?
		lo := iv.LoNum*den - num*iv.LoDen // sign of Lo − α
		if lo > 0 || (lo == 0 && iv.LoOpen) {
			continue
		}
		if iv.HiInf {
			return true
		}
		hi := num*iv.HiDen - iv.HiNum*den // sign of α − Hi
		if hi < 0 || (hi == 0 && !iv.HiOpen) {
			return true
		}
	}
	return false
}

// maxCertIntervals caps the interval count of one persisted certificate,
// so a corrupt count cannot force a huge allocation during recovery.
const maxCertIntervals = 1 << 12

// certKind is the frame-payload discriminator of certificate records: a
// leading 0x00 byte. Legacy verdict payloads always start with a non-zero
// uvarint (the canonical-key length), so the two encodings cannot be
// confused and v1 stores open unchanged.
const certKind = 0x00

// Variant-tagged frames (codec v2) escape through the certificate
// discriminator one level deeper: the payload starts 0x00 0x00 — a shape
// no legacy frame can produce, because a legacy certificate's second byte
// is the uvarint length of its non-empty canonical key — followed by a
// kind byte, the uvarint-length-prefixed variant descriptor, and then the
// complete legacy payload of the wrapped record. Default-variant records
// never use the escape: they encode byte-identically to codec v1, which
// is what keeps legacy stores and the default-variant differential dumps
// exact.
const (
	extMagic   = 0x00 // second byte of an extended payload (after certKind)
	extVerdict = 0x01 // extended kind: variant-tagged verdict
	extCert    = 0x02 // extended kind: variant-tagged certificate
)

// encodeRecord renders the frame payload:
//
//	uvarint len(canon) | canon | uvarint num | uvarint den | concept | stable
//
// prefixed, for non-default variants only, by the extension header
//
//	0x00 0x00 0x01 | uvarint len(variant) | variant
func encodeRecord(r Record) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64*4+len(r.Canon)+len(r.Variant)+5)
	if r.Variant != "" {
		buf = append(buf, certKind, extMagic, extVerdict)
		buf = binary.AppendUvarint(buf, uint64(len(r.Variant)))
		buf = append(buf, r.Variant...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Canon)))
	buf = append(buf, r.Canon...)
	buf = binary.AppendUvarint(buf, uint64(r.Num))
	buf = binary.AppendUvarint(buf, uint64(r.Den))
	buf = append(buf, r.Concept)
	if r.Stable {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// decodeRecord parses a frame payload. It rejects trailing garbage and
// any record Validate would refuse, so a CRC-valid frame either decodes
// to a well-formed record or truncates recovery at that point.
func decodeRecord(b []byte) (Record, error) {
	clen, n := binary.Uvarint(b)
	if n <= 0 || clen == 0 || uint64(len(b)-n) < clen {
		return Record{}, fmt.Errorf("store: bad canonical-key length")
	}
	b = b[n:]
	rec := Record{Canon: string(b[:clen])}
	b = b[clen:]
	num, n := binary.Uvarint(b)
	if n <= 0 || num > 1<<62 {
		return Record{}, fmt.Errorf("store: bad numerator")
	}
	b = b[n:]
	den, n := binary.Uvarint(b)
	if n <= 0 || den > 1<<62 {
		return Record{}, fmt.Errorf("store: bad denominator")
	}
	b = b[n:]
	if len(b) != 2 || b[1] > 1 {
		return Record{}, fmt.Errorf("store: bad record trailer")
	}
	rec.Num, rec.Den = int64(num), int64(den)
	rec.Concept = b[0]
	rec.Stable = b[1] == 1
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// encodeCertRecord renders a certificate frame payload:
//
//	0x00 | uvarint len(canon) | canon | concept | uvarint count |
//	per interval: flags | uvarint loNum | uvarint loDen
//	              [ uvarint hiNum | uvarint hiDen  when not HiInf ]
//
// flags: bit0 LoOpen, bit1 HiOpen, bit2 HiInf. Non-default variants
// prefix the extension header 0x00 0x00 0x02 | uvarint len(variant) |
// variant before the legacy payload above.
func encodeCertRecord(r CertRecord) []byte {
	buf := make([]byte, 0, 8+len(r.Canon)+len(r.Variant)+len(r.Intervals)*(1+4*binary.MaxVarintLen64))
	if r.Variant != "" {
		buf = append(buf, certKind, extMagic, extCert)
		buf = binary.AppendUvarint(buf, uint64(len(r.Variant)))
		buf = append(buf, r.Variant...)
	}
	buf = append(buf, certKind)
	buf = binary.AppendUvarint(buf, uint64(len(r.Canon)))
	buf = append(buf, r.Canon...)
	buf = append(buf, r.Concept)
	buf = binary.AppendUvarint(buf, uint64(len(r.Intervals)))
	for _, iv := range r.Intervals {
		var flags byte
		if iv.LoOpen {
			flags |= 1
		}
		if iv.HiOpen {
			flags |= 2
		}
		if iv.HiInf {
			flags |= 4
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(iv.LoNum))
		buf = binary.AppendUvarint(buf, uint64(iv.LoDen))
		if !iv.HiInf {
			buf = binary.AppendUvarint(buf, uint64(iv.HiNum))
			buf = binary.AppendUvarint(buf, uint64(iv.HiDen))
		}
	}
	return buf
}

// decodeExtended parses the header of an extended (variant-tagged)
// payload, returning the variant descriptor, the extended kind and the
// wrapped legacy payload. The wrapped payload is handed to the legacy
// decoders unchanged, so extended frames cannot drift from the v1 codec
// — and a nested extension header inside the body fails naturally in
// those decoders (a zero canonical-key length).
func decodeExtended(b []byte) (variant string, kind byte, body []byte, err error) {
	if len(b) < 3 || b[0] != certKind || b[1] != extMagic {
		return "", 0, nil, fmt.Errorf("store: not an extended payload")
	}
	kind = b[2]
	if kind != extVerdict && kind != extCert {
		return "", 0, nil, fmt.Errorf("store: unknown extended frame kind 0x%02x", kind)
	}
	b = b[3:]
	vlen, n := binary.Uvarint(b)
	if n <= 0 || vlen == 0 || vlen > maxVariantBytes || uint64(len(b)-n) < vlen {
		return "", 0, nil, fmt.Errorf("store: bad variant descriptor length")
	}
	variant = string(b[n : n+int(vlen)])
	if err := validVariant(variant); err != nil {
		return "", 0, nil, err
	}
	return variant, kind, b[n+int(vlen):], nil
}

// decodeCertRecord parses a certificate frame payload (after the leading
// kind byte has been recognized, but including it in b). It rejects
// trailing garbage and any record Validate would refuse.
func decodeCertRecord(b []byte) (CertRecord, error) {
	if len(b) == 0 || b[0] != certKind {
		return CertRecord{}, fmt.Errorf("store: not a certificate payload")
	}
	b = b[1:]
	clen, n := binary.Uvarint(b)
	if n <= 0 || clen == 0 || uint64(len(b)-n) < clen {
		return CertRecord{}, fmt.Errorf("store: bad certificate canonical-key length")
	}
	b = b[n:]
	rec := CertRecord{Canon: string(b[:clen])}
	b = b[clen:]
	if len(b) < 1 {
		return CertRecord{}, fmt.Errorf("store: truncated certificate")
	}
	rec.Concept = b[0]
	b = b[1:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > maxCertIntervals {
		return CertRecord{}, fmt.Errorf("store: bad certificate interval count")
	}
	b = b[n:]
	readRat := func() (int64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 || v > 1<<62 {
			return 0, false
		}
		b = b[n:]
		return int64(v), true
	}
	rec.Intervals = make([]Interval, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) < 1 {
			return CertRecord{}, fmt.Errorf("store: truncated certificate interval")
		}
		flags := b[0]
		if flags > 7 {
			return CertRecord{}, fmt.Errorf("store: bad certificate interval flags")
		}
		b = b[1:]
		iv := Interval{LoOpen: flags&1 != 0, HiOpen: flags&2 != 0, HiInf: flags&4 != 0}
		var ok bool
		if iv.LoNum, ok = readRat(); !ok {
			return CertRecord{}, fmt.Errorf("store: bad certificate endpoint")
		}
		if iv.LoDen, ok = readRat(); !ok {
			return CertRecord{}, fmt.Errorf("store: bad certificate endpoint")
		}
		if !iv.HiInf {
			if iv.HiNum, ok = readRat(); !ok {
				return CertRecord{}, fmt.Errorf("store: bad certificate endpoint")
			}
			if iv.HiDen, ok = readRat(); !ok {
				return CertRecord{}, fmt.Errorf("store: bad certificate endpoint")
			}
		}
		rec.Intervals = append(rec.Intervals, iv)
	}
	if len(b) != 0 {
		return CertRecord{}, fmt.Errorf("store: trailing bytes after certificate")
	}
	if err := rec.Validate(); err != nil {
		return CertRecord{}, err
	}
	return rec, nil
}
