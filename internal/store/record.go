package store

import (
	"encoding/binary"
	"fmt"
)

// Record is one persisted stability verdict: the canonical form of the
// graph, the exact reduced edge price num/den, the solution concept (as
// its small positive enum value), and the verdict bit. The store is
// deliberately decoupled from package eq — Concept is an opaque uint8
// here, mapped back by the sweep-cache bridge.
type Record struct {
	Canon    string
	Num, Den int64
	Concept  uint8
	Stable   bool
}

// Key identifies a record; two records with equal keys must agree on
// Stable.
type Key struct {
	Canon    string
	Num, Den int64
	Concept  uint8
}

// Key returns r's identity.
func (r Record) Key() Key {
	return Key{Canon: r.Canon, Num: r.Num, Den: r.Den, Concept: r.Concept}
}

func (k Key) less(o Key) bool {
	if k.Canon != o.Canon {
		return k.Canon < o.Canon
	}
	if k.Num != o.Num {
		return k.Num < o.Num
	}
	if k.Den != o.Den {
		return k.Den < o.Den
	}
	return k.Concept < o.Concept
}

// Validate reports whether r can be encoded: a non-empty canonical key
// that fits a frame, a canonical non-negative reduced price, and a
// non-zero concept.
func (r Record) Validate() error {
	if r.Canon == "" {
		return fmt.Errorf("store: record with empty canonical key")
	}
	if len(r.Canon) > maxFrameBytes-32 {
		return fmt.Errorf("store: canonical key of %d bytes exceeds the frame cap", len(r.Canon))
	}
	if r.Num < 0 || r.Den <= 0 {
		return fmt.Errorf("store: record with invalid price %d/%d", r.Num, r.Den)
	}
	if r.Concept == 0 {
		return fmt.Errorf("store: record with zero concept")
	}
	return nil
}

// encodeRecord renders the frame payload:
//
//	uvarint len(canon) | canon | uvarint num | uvarint den | concept | stable
func encodeRecord(r Record) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64*3+len(r.Canon)+2)
	buf = binary.AppendUvarint(buf, uint64(len(r.Canon)))
	buf = append(buf, r.Canon...)
	buf = binary.AppendUvarint(buf, uint64(r.Num))
	buf = binary.AppendUvarint(buf, uint64(r.Den))
	buf = append(buf, r.Concept)
	if r.Stable {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// decodeRecord parses a frame payload. It rejects trailing garbage and
// any record Validate would refuse, so a CRC-valid frame either decodes
// to a well-formed record or truncates recovery at that point.
func decodeRecord(b []byte) (Record, error) {
	clen, n := binary.Uvarint(b)
	if n <= 0 || clen == 0 || uint64(len(b)-n) < clen {
		return Record{}, fmt.Errorf("store: bad canonical-key length")
	}
	b = b[n:]
	rec := Record{Canon: string(b[:clen])}
	b = b[clen:]
	num, n := binary.Uvarint(b)
	if n <= 0 || num > 1<<62 {
		return Record{}, fmt.Errorf("store: bad numerator")
	}
	b = b[n:]
	den, n := binary.Uvarint(b)
	if n <= 0 || den > 1<<62 {
		return Record{}, fmt.Errorf("store: bad denominator")
	}
	b = b[n:]
	if len(b) != 2 || b[1] > 1 {
		return Record{}, fmt.Errorf("store: bad record trailer")
	}
	rec.Num, rec.Den = int64(num), int64(den)
	rec.Concept = b[0]
	rec.Stable = b[1] == 1
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}
