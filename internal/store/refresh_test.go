package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Replica-refresh tests (PR 6): a read-only store following a live writer
// through Refresh — incremental frame pickup, torn-tail tolerance, and
// the full-reload path after the writer compacts underneath it.

// TestStoreRefreshFollowsWriter: a replica opened mid-stream picks up
// every record the writer flushes afterwards, verdicts and certificates,
// and a quiescent Refresh is a cheap no-op.
func TestStoreRefreshFollowsWriter(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 2, FlushEvery: 1 << 30})
	defer w.Close()
	recs := testRecords(12)
	for _, r := range recs[:4] {
		if err := w.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{ReadOnly: true})
	defer r.Close()
	if got := dump(r); !reflect.DeepEqual(got, dump(w)) {
		t.Fatalf("replica opened with %d records, writer holds %d", len(got), len(dump(w)))
	}

	// Writer appends more, including a certificate; the replica sees
	// nothing until the writer flushes, everything after.
	cert := CertRecord{Canon: recs[0].Canon, Concept: 11,
		Intervals: []Interval{{LoNum: 1, LoDen: 1, HiInf: true}}}
	for _, rec := range recs[4:] {
		if err := w.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.PutCert(cert); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Refresh(); err != nil || n != 0 {
		t.Fatalf("Refresh before writer flush: n=%d err=%v, want 0, nil", n, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(recs) - 4 + 1; n != want {
		t.Fatalf("Refresh loaded %d frames, want %d", n, want)
	}
	if got := dump(r); !reflect.DeepEqual(got, dump(w)) {
		t.Fatal("replica diverged from writer after refresh")
	}
	if got, ok := r.GetCert(cert.Key()); !ok || !reflect.DeepEqual(got.Intervals, cert.Intervals) {
		t.Fatalf("certificate not refreshed: %+v ok=%v", got, ok)
	}
	if n, err := r.Refresh(); err != nil || n != 0 {
		t.Fatalf("quiescent Refresh: n=%d err=%v", n, err)
	}
	// Refresh is a replica-only operation.
	if _, err := w.Refresh(); err == nil {
		t.Fatal("Refresh on the writable store must fail")
	}
}

// TestStoreRefreshTornTail: a half-written frame at a segment tail — the
// replica racing the writer's in-flight append — stops the scan without
// error or progress; once the frame completes the next Refresh folds it.
func TestStoreRefreshTornTail(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1, FlushEvery: 1 << 30})
	if err := w.Put(testRecords(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{ReadOnly: true})
	defer r.Close()

	// Simulate the writer mid-append: lay down only half of the next frame.
	next := testRecords(2)[1]
	frame := encodeFrame(next)
	seg := filepath.Join(dir, "seg-00.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Refresh(); err != nil || n != 0 {
		t.Fatalf("Refresh at torn tail: n=%d err=%v, want 0, nil", n, err)
	}
	if _, ok := r.Get(next.Key()); ok {
		t.Fatal("half-written record visible")
	}
	// The writer finishes the append.
	if _, err := f.Write(frame[len(frame)/2:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n, err := r.Refresh(); err != nil || n != 1 {
		t.Fatalf("Refresh after completion: n=%d err=%v, want 1, nil", n, err)
	}
	if stable, ok := r.Get(next.Key()); !ok || stable != next.Stable {
		t.Fatal("completed record not folded")
	}
}

// TestStoreRefreshAfterCompact: the writer compacting — certificate
// subsumes a per-α verdict row, segments shrink — must not strand the
// replica on stale offsets: Refresh detects the shrink and rebuilds from
// scratch, then keeps following fresh appends.
func TestStoreRefreshAfterCompact(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Shards: 1, FlushEvery: 1 << 30})
	defer w.Close()
	canon := "compacted-class"
	for alpha := int64(1); alpha <= 24; alpha++ {
		if err := w.Put(Record{Canon: canon, Num: alpha, Den: 1, Concept: 3, Stable: true}); err != nil {
			t.Fatal(err)
		}
	}
	cert := CertRecord{Canon: canon, Concept: 3,
		Intervals: []Interval{{LoNum: 0, LoDen: 1, HiInf: true}}}
	if err := w.PutCert(cert); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{ReadOnly: true})
	defer r.Close()
	before := r.Stats()
	if before.Records != 25 {
		t.Fatalf("replica warm state: %d records, want 25", before.Records)
	}

	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	shrunk := w.Stats()
	if shrunk.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", before.DiskBytes, shrunk.DiskBytes)
	}
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.VerdictRecords != 0 || after.CertificateRecords != 1 {
		t.Fatalf("replica after compaction reload: %+v, want the lone certificate", after)
	}
	if got, ok := r.GetCert(cert.Key()); !ok || !reflect.DeepEqual(got.Intervals, cert.Intervals) {
		t.Fatal("certificate lost across reload")
	}
	// Certificates still answer every folded α.
	if got, _ := r.GetCert(cert.Key()); !got.Contains(24, 1) {
		t.Fatal("reloaded certificate no longer answers α=24")
	}

	// And the replica keeps following appends after the rebuild.
	extra := Record{Canon: "post-compact", Num: 1, Den: 1, Concept: 5, Stable: false}
	if err := w.Put(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Refresh(); err != nil || n != 1 {
		t.Fatalf("post-compact Refresh: n=%d err=%v", n, err)
	}
	if stable, ok := r.Get(extra.Key()); !ok || stable != extra.Stable {
		t.Fatal("post-compact append not followed")
	}
}
