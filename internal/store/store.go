// Package store implements a persistent, append-only verdict store: the
// on-disk counterpart of the sweep engine's canonical-form cache.
//
// Stability verdicts are pure functions of (canonical form, exact α,
// solution concept), so they never need updating — an append-only log with
// last-write-wins replay is a complete persistence model. The store shards
// records over a fixed set of segment files by canonical-key hash, frames
// every record with a length prefix and a CRC32, batches fsyncs, and
// recovers from a crash by truncating the torn tail of each segment. A
// store opened after a crash therefore contains exactly the records whose
// frames were fully durable, and nothing else.
//
// Layout of a store directory:
//
//	META.json   {"version":1,"shards":8}     — shards fixed at creation
//	LOCK        single-writer flock(2) target (holder pid inside)
//	seg-00.log … seg-NN.log                  — record segments
//	checkpoint.json                          — optional resumable-sweep spec
//
// Each segment starts with the 8-byte magic "bncgsv1\n" followed by frames:
//
//	uint32 LE payload length | uint32 LE CRC32(IEEE, payload) | payload
//
// Two payload kinds share the framing: per-α verdict records and
// parametric certificate records (a leading 0x00 byte — impossible for a
// verdict payload, whose first byte is a non-zero key length — selects
// the certificate encoding). One certificate persists a class's exact
// stable-α interval set for one concept and subsumes every verdict row
// over it; Compact folds subsumed verdicts away.
//
// Records of non-default game variants carry their variant descriptor in
// an extended payload (leading 0x00 0x00 — impossible for either legacy
// kind; see record.go). Because a pre-variant binary would mistake such
// a frame for a torn tail and truncate every frame after it, the store
// lazily rewrites META.json to version 2 immediately before the first
// variant-tagged frame is appended: old binaries then refuse the store at
// Open instead of corrupting it. Stores holding only default-variant
// records stay at version 1, byte-identical to the legacy codec.
//
// The payload encodings are defined in record.go. Concurrent use by
// multiple goroutines of one process is safe; concurrent writers from
// different processes are rejected by the lock file.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
)

// WriteSyncer is the write handle of one segment file — the subset of
// *os.File the append path needs. It is an interface so the
// fault-injection test harness (Options.WrapSegmentWriter) can interpose
// failing writes and syncs on an otherwise real store; production stores
// always write through bare *os.File values.
type WriteSyncer interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

const (
	segMagic = "bncgsv1\n"
	// maxFrameBytes caps a single record frame, so a corrupt length prefix
	// cannot force a huge allocation during recovery.
	maxFrameBytes = 1 << 20
	frameHeader   = 8 // uint32 length + uint32 crc
)

// Options configures Open.
type Options struct {
	// Shards is the number of segment files records are hashed across. It
	// is fixed at store creation (recorded in META.json) and ignored when
	// opening an existing store. Values <= 0 select the default of 8.
	Shards int
	// FlushEvery bounds the number of buffered records before an automatic
	// write+fsync. Values <= 0 select the default of 128.
	FlushEvery int
	// FlushInterval, when positive, starts a background flusher that syncs
	// pending records at this period — the serving daemon's durability
	// bound. Zero disables the ticker; records still flush on the
	// FlushEvery threshold, Flush and Close.
	FlushInterval time.Duration
	// ReadOnly opens the store without the single-writer lock and without
	// repairing torn tails, so observability commands and read replicas can
	// inspect a store a live writer holds. Put, Flush, Compact and
	// checkpoint writes fail; Refresh picks up frames the writer appended
	// since Open.
	ReadOnly bool
	// WrapSegmentWriter, when non-nil, wraps every segment write handle at
	// open (and reopen after Compact). It exists for fault-injection tests
	// — a wrapper returning write or sync errors drives the flush-failure
	// paths deterministically. Leave nil in production.
	WrapSegmentWriter func(WriteSyncer) WriteSyncer
	// Trace, when non-nil, records "store_flush" spans (only for flushes
	// with pending records), "store_compact" and "store_checkpoint" spans.
	Trace *obs.Tracer
}

// Stats is an observability snapshot of a store.
type Stats struct {
	// Records counts distinct keys currently held, verdicts plus
	// certificates.
	Records int `json:"records"`
	// VerdictRecords and CertificateRecords break Records down by record
	// type, so operators can watch compaction fold per-α verdict rows into
	// certificates.
	VerdictRecords     int `json:"verdict_records"`
	CertificateRecords int `json:"certificate_records"`
	// Segments is the shard count.
	Segments int `json:"segments"`
	// DiskBytes is the total size of the durable segment data.
	DiskBytes int64 `json:"disk_bytes"`
	// Pending counts records buffered but not yet flushed.
	Pending int `json:"pending"`
	// Appended counts records appended by this session.
	Appended int64 `json:"appended"`
	// FlushedBytes counts segment bytes made durable by this session's
	// flushes — the sidecar's flush-throughput counter.
	FlushedBytes int64 `json:"flushed_bytes,omitempty"`
	// RecoveredBytes counts bytes truncated from torn segment tails at
	// Open — non-zero after recovering from a crash.
	RecoveredBytes int64 `json:"recovered_bytes,omitempty"`
	// DuplicateFrames counts on-disk frames superseded by a later frame
	// for the same key, observed at Open; Compact removes them.
	DuplicateFrames int `json:"duplicate_frames,omitempty"`
	// FlushFailures counts failed flushes and LastFlushError holds the
	// most recent one — non-zero means pending records are stuck in
	// memory (e.g. a full disk) and durability is degraded. Surfaced via
	// /healthz so the background flusher cannot fail silently.
	FlushFailures  int64  `json:"flush_failures,omitempty"`
	LastFlushError string `json:"last_flush_error,omitempty"`
}

type segment struct {
	path    string
	f       WriteSyncer
	size    int64  // durable bytes (including magic)
	records int    // frames folded from disk plus frames appended this session
	pending []byte // encoded frames awaiting flush
	dirty   bool   // written since last fsync
}

// Store is an open verdict store. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    []*segment
	recs    map[Key]bool
	certs   map[CertKey][]Interval
	meta    meta     // as on disk; Version lazily bumps to 2 (see bumpMetaLocked)
	pending int      // buffered records across all segments
	lock    *os.File // flock-held single-writer lock (nil when read-only)
	stats   Stats
	closed  bool

	tick     *time.Ticker
	tickDone chan struct{}
}

type meta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Open opens (creating if necessary) the store in dir and replays every
// durable record into memory. Torn segment tails — the signature of a
// crash mid-append — are truncated away and reported in Stats; Open fails
// only on I/O errors, format-version mismatches, or a live concurrent
// writer holding the store's lock.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Shards > 256 {
		return nil, fmt.Errorf("store: %d shards exceed the 256 maximum", opts.Shards)
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 128
	}
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	m, err := loadOrCreateMeta(dir, opts.Shards, opts.ReadOnly)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		recs:  make(map[Key]bool),
		certs: make(map[CertKey][]Interval),
		meta:  m,
	}
	if !opts.ReadOnly {
		lock, err := acquireLock(dir)
		if err != nil {
			return nil, err
		}
		s.lock = lock
	}
	s.stats.Segments = m.Shards
	for i := 0; i < m.Shards; i++ {
		seg, err := s.openSegment(filepath.Join(dir, fmt.Sprintf("seg-%02x.log", i)))
		if err != nil {
			s.closeFiles()
			s.releaseLock()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	s.stats.Records = len(s.recs)
	if opts.FlushInterval > 0 {
		s.tick = time.NewTicker(opts.FlushInterval)
		s.tickDone = make(chan struct{})
		go func() {
			for {
				select {
				case <-s.tick.C:
					_ = s.Flush()
				case <-s.tickDone:
					return
				}
			}
		}()
	}
	return s, nil
}

func loadOrCreateMeta(dir string, shards int, readOnly bool) (meta, error) {
	path := filepath.Join(dir, "META.json")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if readOnly {
			return meta{}, fmt.Errorf("store: no store in %s", dir)
		}
		m := meta{Version: 1, Shards: shards}
		enc, _ := json.Marshal(m)
		return m, writeFileSync(path, append(enc, '\n'))
	}
	if err != nil {
		return meta{}, err
	}
	var m meta
	if err := json.Unmarshal(data, &m); err != nil {
		return meta{}, fmt.Errorf("store: corrupt META.json: %w", err)
	}
	if m.Version != 1 && m.Version != 2 {
		return meta{}, fmt.Errorf("store: unsupported format version %d", m.Version)
	}
	if m.Shards < 1 || m.Shards > 256 {
		return meta{}, fmt.Errorf("store: META.json declares %d shards", m.Shards)
	}
	return m, nil
}

// acquireLock takes the single-writer lock: an flock(2) on the LOCK
// file, held open for the store's lifetime. The kernel owns the lock, so
// a crashed writer's lock evaporates with its process — no stale-lock
// heuristics and no steal race. The pid written into the file is for
// operators only.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder, _ := os.ReadFile(path)
		f.Close()
		return nil, fmt.Errorf("store: %s locked by live pid %s", dir, strings.TrimSpace(string(holder)))
	}
	_ = f.Truncate(0)
	_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
	return f, nil
}

// openSegment opens one shard file, replays its records into s.recs, and
// truncates any torn tail so the file ends on a frame boundary (under
// Options.ReadOnly the tail is only reported, never repaired, and no
// write handle is opened).
func (s *Store) openSegment(path string) (*segment, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if s.opts.ReadOnly {
			return &segment{path: path}, nil
		}
		if err := writeFileSync(path, []byte(segMagic)); err != nil {
			return nil, err
		}
		data = []byte(segMagic)
	} else if err != nil {
		return nil, err
	}
	valid, frames := 0, 0
	if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
		valid = len(segMagic)
		for valid < len(data) {
			n, fr, ok := decodeFrame(data[valid:])
			if !ok {
				break
			}
			if err := s.foldFrame(fr, path); err != nil {
				return nil, err
			}
			valid += n
			frames++
		}
	} else if len(data) > 0 && len(data) < len(segMagic) && segMagic[:len(data)] == string(data) {
		// Torn write of the magic itself: rewrite it whole.
		valid = 0
	} else if len(data) > 0 {
		return nil, fmt.Errorf("store: %s: bad segment magic", path)
	}
	if valid < len(data) {
		s.stats.RecoveredBytes += int64(len(data) - valid)
		if s.opts.ReadOnly {
			// Report the damage, repair nothing: a live writer may own
			// this tail.
			return &segment{path: path, size: int64(valid), records: frames}, nil
		}
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, err
		}
	}
	if s.opts.ReadOnly {
		return &segment{path: path, size: int64(valid), records: frames}, nil
	}
	if valid == 0 {
		if err := writeFileSync(path, []byte(segMagic)); err != nil {
			return nil, err
		}
		valid = len(segMagic)
	}
	f, err := s.openWriter(path)
	if err != nil {
		return nil, err
	}
	return &segment{path: path, f: f, size: int64(valid), records: frames}, nil
}

// openWriter opens the append handle of one segment, applying the
// fault-injection wrapper when configured.
func (s *Store) openWriter(path string) (WriteSyncer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if s.opts.WrapSegmentWriter != nil {
		return s.opts.WrapSegmentWriter(f), nil
	}
	return f, nil
}

// foldFrame merges one decoded frame into the in-memory maps, enforcing
// the purity invariant: a repeated frame with equal content is counted as
// a duplicate, but two durable frames disagreeing on a pure function of
// their key is corruption (or a buggy writer) — refuse to serve wrong
// verdicts from it. Callers hold s.mu or have exclusive access at Open.
func (s *Store) foldFrame(fr frame, path string) error {
	if fr.isCert {
		if prev, seen := s.certs[fr.cert.Key()]; seen {
			if !equalIntervals(prev, fr.cert.Intervals) {
				return fmt.Errorf("store: %s: conflicting persisted certificates for %v", path, fr.cert.Key())
			}
			s.stats.DuplicateFrames++
		}
		s.certs[fr.cert.Key()] = fr.cert.Intervals
		return nil
	}
	rec := fr.rec
	if prev, seen := s.recs[rec.Key()]; seen {
		if prev != rec.Stable {
			return fmt.Errorf("store: %s: conflicting persisted verdicts for %v", path, rec.Key())
		}
		s.stats.DuplicateFrames++
	}
	s.recs[rec.Key()] = rec.Stable
	return nil
}

// frame is one decoded segment frame: either a verdict Record or a
// certificate CertRecord, discriminated by the payload's leading byte
// (certKind = 0x00; legacy verdict payloads always start with a non-zero
// uvarint, so both kinds coexist in one segment and v1 stores open
// unchanged).
type frame struct {
	rec    Record
	cert   CertRecord
	isCert bool
}

// decodeFrame decodes one frame from the head of b, returning the frame
// size and record. ok is false on a short, oversized, CRC-failing or
// undecodable frame — the truncation point during recovery.
func decodeFrame(b []byte) (n int, fr frame, ok bool) {
	if len(b) < frameHeader {
		return 0, frame{}, false
	}
	// Bounds-check the untrusted length as uint64: a corrupt prefix must
	// not wrap negative through int on 32-bit platforms.
	plen64 := uint64(binary.LittleEndian.Uint32(b))
	if plen64 == 0 || plen64 > maxFrameBytes || plen64 > uint64(len(b)-frameHeader) {
		return 0, frame{}, false
	}
	plen := int(plen64)
	payload := b[frameHeader : frameHeader+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return 0, frame{}, false
	}
	if payload[0] == certKind {
		if plen >= 2 && payload[1] == extMagic {
			// Extended (variant-tagged) frame: a legacy certificate's
			// second byte is its non-zero canonical-key length, so the
			// 0x00 0x00 prefix is unambiguous.
			variant, kind, body, err := decodeExtended(payload)
			if err != nil {
				return 0, frame{}, false
			}
			if kind == extCert {
				cert, err := decodeCertRecord(body)
				if err != nil {
					return 0, frame{}, false
				}
				cert.Variant = variant
				return frameHeader + plen, frame{cert: cert, isCert: true}, true
			}
			rec, err := decodeRecord(body)
			if err != nil {
				return 0, frame{}, false
			}
			rec.Variant = variant
			return frameHeader + plen, frame{rec: rec}, true
		}
		cert, err := decodeCertRecord(payload)
		if err != nil {
			return 0, frame{}, false
		}
		return frameHeader + plen, frame{cert: cert, isCert: true}, true
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return 0, frame{}, false
	}
	return frameHeader + plen, frame{rec: rec}, true
}

func frameOf(payload []byte) []byte {
	buf := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

func encodeFrame(rec Record) []byte { return frameOf(encodeRecord(rec)) }

func encodeCertFrame(rec CertRecord) []byte { return frameOf(encodeCertRecord(rec)) }

// shardIndex is the single definition of the shard-assignment rule; the
// append path and Compact must agree on it or compaction would move
// records between segments.
func (s *Store) shardIndex(canon string) int {
	h := fnv.New32a()
	h.Write([]byte(canon))
	return int(h.Sum32()) % len(s.segs)
}

func (s *Store) shardOf(canon string) *segment { return s.segs[s.shardIndex(canon)] }

// Put appends a record. A Put of an already-held key with the same verdict
// is a no-op; a conflicting verdict for a held key is rejected — verdicts
// are pure functions of their key, so a conflict means a corrupted store
// or a buggy writer, never legitimate data.
func (s *Store) Put(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed || s.opts.ReadOnly {
		s.mu.Unlock()
		return fmt.Errorf("store: Put on a closed or read-only store")
	}
	if prev, ok := s.recs[rec.Key()]; ok {
		s.mu.Unlock()
		if prev != rec.Stable {
			return fmt.Errorf("store: conflicting verdict for %v", rec.Key())
		}
		return nil
	}
	if rec.Variant != "" {
		if err := s.bumpMetaLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.recs[rec.Key()] = rec.Stable
	s.stats.Appended++
	seg := s.shardOf(rec.Canon)
	seg.pending = append(seg.pending, encodeFrame(rec)...)
	seg.records++
	s.pending++
	flushNow := s.pending >= s.opts.FlushEvery
	if !flushNow {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.mu.Unlock()
	return err
}

// Flush writes and fsyncs every pending record. After a successful Flush
// the records survive a crash of process and machine.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	var sp *obs.Span
	records, bytes0 := s.pending, s.stats.FlushedBytes
	if s.opts.Trace != nil && s.pending > 0 {
		sp = s.opts.Trace.Start("store_flush")
	}
	err := s.writePendingLocked()
	if err != nil {
		s.stats.FlushFailures++
		s.stats.LastFlushError = err.Error()
	}
	if sp != nil {
		attrs := obs.Attrs{"records": records - s.pending, "bytes": s.stats.FlushedBytes - bytes0}
		if err != nil {
			attrs["error"] = err.Error()
		}
		sp.End(attrs)
	}
	return err
}

func (s *Store) writePendingLocked() error {
	for _, seg := range s.segs {
		if len(seg.pending) == 0 {
			continue
		}
		if _, err := seg.f.Write(seg.pending); err != nil {
			// Roll a short write back to the last frame boundary: the
			// pending buffer is retained for retry, and without the
			// truncate a retry would append full frames after the torn
			// one — recovery would then silently drop them all.
			_ = seg.f.Truncate(seg.size)
			return err
		}
		seg.size += int64(len(seg.pending))
		s.stats.FlushedBytes += int64(len(seg.pending))
		s.pending -= countFrames(seg.pending)
		seg.pending = seg.pending[:0]
		seg.dirty = true
	}
	for _, seg := range s.segs {
		if !seg.dirty {
			continue
		}
		if err := seg.f.Sync(); err != nil {
			return err
		}
		seg.dirty = false
	}
	return nil
}

func countFrames(b []byte) int {
	n := 0
	for len(b) >= frameHeader {
		plen := int(binary.LittleEndian.Uint32(b))
		b = b[frameHeader+plen:]
		n++
	}
	return n
}

// PutCert appends a certificate record. A Put of an already-held key with
// the same interval set is a no-op; a conflicting set for a held key is
// rejected — certificates are pure functions of their key, so a conflict
// means a corrupted store or a buggy writer, never legitimate data.
func (s *Store) PutCert(rec CertRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed || s.opts.ReadOnly {
		s.mu.Unlock()
		return fmt.Errorf("store: PutCert on a closed or read-only store")
	}
	if prev, ok := s.certs[rec.Key()]; ok {
		s.mu.Unlock()
		if !equalIntervals(prev, rec.Intervals) {
			return fmt.Errorf("store: conflicting certificate for %v", rec.Key())
		}
		return nil
	}
	if rec.Variant != "" {
		if err := s.bumpMetaLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.certs[rec.Key()] = rec.Intervals
	s.stats.Appended++
	seg := s.shardOf(rec.Canon)
	seg.pending = append(seg.pending, encodeCertFrame(rec)...)
	seg.records++
	s.pending++
	flushNow := s.pending >= s.opts.FlushEvery
	if !flushNow {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.mu.Unlock()
	return err
}

// bumpMetaLocked records the codec-v2 requirement in META.json, durably,
// before the first variant-tagged frame is appended. Ordering matters: a
// pre-variant binary opening a store whose segments hold extended frames
// would mistake them for a torn tail and truncate every later frame away;
// bumping the version first makes it refuse the store at Open instead.
// Callers hold s.mu.
func (s *Store) bumpMetaLocked() error {
	if s.meta.Version >= 2 {
		return nil
	}
	m := s.meta
	m.Version = 2
	enc, _ := json.Marshal(m)
	if err := writeFileSync(filepath.Join(s.dir, "META.json"), append(enc, '\n')); err != nil {
		return fmt.Errorf("store: recording format version 2 for variant records: %w", err)
	}
	s.meta = m
	return nil
}

// Get returns the persisted verdict for k, if present.
func (s *Store) Get(k Key) (stable, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stable, ok = s.recs[k]
	return stable, ok
}

// GetCert returns the persisted certificate for k, if present.
func (s *Store) GetCert(k CertKey) (CertRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ivs, ok := s.certs[k]
	if !ok {
		return CertRecord{}, false
	}
	return CertRecord{Canon: k.Canon, Concept: k.Concept, Variant: k.Variant, Intervals: ivs}, true
}

// RangeCerts calls f for every certificate record (pending and durable
// alike) until f returns false. Iteration order is unspecified. The
// store's lock is not held during calls to f.
func (s *Store) RangeCerts(f func(CertRecord) bool) {
	s.mu.Lock()
	recs := make([]CertRecord, 0, len(s.certs))
	for k, ivs := range s.certs {
		recs = append(recs, CertRecord{Canon: k.Canon, Concept: k.Concept, Variant: k.Variant, Intervals: ivs})
	}
	s.mu.Unlock()
	for _, rec := range recs {
		if !f(rec) {
			return
		}
	}
}

// Len returns the number of distinct keys held (verdicts plus
// certificates).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs) + len(s.certs)
}

// Range calls f for every record (pending and durable alike) until f
// returns false. Iteration order is unspecified. The store's lock is not
// held during calls to f.
func (s *Store) Range(f func(Record) bool) {
	s.mu.Lock()
	recs := make([]Record, 0, len(s.recs))
	for k, stable := range s.recs {
		recs = append(recs, Record{Canon: k.Canon, Num: k.Num, Den: k.Den, Concept: k.Concept, Variant: k.Variant, Stable: stable})
	}
	s.mu.Unlock()
	for _, rec := range recs {
		if !f(rec) {
			return
		}
	}
}

// Stats returns an observability snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.VerdictRecords = len(s.recs)
	st.CertificateRecords = len(s.certs)
	st.Records = len(s.recs) + len(s.certs)
	st.Pending = s.pending
	st.DiskBytes = 0
	for _, seg := range s.segs {
		st.DiskBytes += seg.size
	}
	return st
}

// SegmentStat is one segment's share of a store — the skew-visibility
// breakdown behind `bncg store stats`: a fleet whose shards hash unevenly
// shows up as one segment's bytes dwarfing its siblings'.
type SegmentStat struct {
	// Name is the segment's file name within the store directory.
	Name string `json:"name"`
	// Bytes is the segment's durable size, including the magic header.
	Bytes int64 `json:"bytes"`
	// Records counts the segment's frames: those replayed from disk at
	// Open plus those appended (pending included) this session. Duplicate
	// frames count individually until Compact folds them.
	Records int `json:"records"`
}

// SegmentStats returns the per-segment byte and frame-count breakdown, in
// segment order.
func (s *Store) SegmentStats() []SegmentStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentStat, len(s.segs))
	for i, seg := range s.segs {
		out[i] = SegmentStat{
			Name:    filepath.Base(seg.path),
			Bytes:   seg.size + int64(len(seg.pending)),
			Records: seg.records,
		}
	}
	return out
}

// Refresh re-scans the segment files of a read-only store, folding in the
// frames a live writer appended (and flushed) since Open or the previous
// Refresh, and returns the number of frames decoded. A torn tail — a
// frame the writer has not fully flushed yet — stops a segment's scan
// without advancing past it, so the next Refresh retries from the same
// boundary. If any segment shrank — the signature of a writer-side
// Compact — every segment is re-read from scratch and the in-memory maps
// rebuilt, which is sound because compaction only drops duplicate and
// subsumed frames. Refresh is how a read replica converges on the
// writer's state without ever taking the writer lock; it fails on a
// writable store, whose segments only ever move through its own appends.
func (s *Store) Refresh() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.opts.ReadOnly {
		return 0, fmt.Errorf("store: Refresh on a writable store")
	}
	if s.closed {
		return 0, fmt.Errorf("store: Refresh on a closed store")
	}
	for _, seg := range s.segs {
		if fi, err := os.Stat(seg.path); err == nil && fi.Size() < seg.size {
			return s.reloadLocked()
		}
	}
	added := 0
	for _, seg := range s.segs {
		n, err := s.refreshSegment(seg)
		added += n
		if err != nil {
			return added, err
		}
	}
	return added, nil
}

// refreshSegment decodes the frames appended to one segment past its last
// known frame boundary, advancing seg.size to the new boundary.
func (s *Store) refreshSegment(seg *segment) (int, error) {
	data, err := os.ReadFile(seg.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	valid := int(seg.size)
	if valid < len(segMagic) {
		// The segment had not been fully created when this store opened;
		// start from its magic once the writer has laid it down.
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			return 0, nil
		}
		valid = len(segMagic)
	}
	added := 0
	for valid < len(data) {
		n, fr, ok := decodeFrame(data[valid:])
		if !ok {
			break
		}
		if err := s.foldFrame(fr, seg.path); err != nil {
			return added, err
		}
		added++
		valid += n
	}
	seg.size = int64(valid)
	seg.records += added
	return added, nil
}

// reloadLocked rebuilds the in-memory maps from scratch — the recovery
// path after the writer compacted segments underneath a replica. On error
// the pre-reload maps keep serving.
func (s *Store) reloadLocked() (int, error) {
	recs, certs := s.recs, s.certs
	sizes := make([]int64, len(s.segs))
	counts := make([]int, len(s.segs))
	s.recs = make(map[Key]bool, len(recs))
	s.certs = make(map[CertKey][]Interval, len(certs))
	s.stats.DuplicateFrames = 0
	added := 0
	for i, seg := range s.segs {
		sizes[i], seg.size = seg.size, 0
		counts[i], seg.records = seg.records, 0
		n, err := s.refreshSegment(seg)
		added += n
		if err != nil {
			s.recs, s.certs = recs, certs
			for j, sg := range s.segs[:i+1] {
				sg.size, sg.records = sizes[j], counts[j]
			}
			return 0, err
		}
	}
	return added, nil
}

// Compact rewrites every segment from the in-memory record set in
// deterministic key order, dropping duplicate and superseded frames and
// reclaiming the space of truncated tails. Per-α verdict records subsumed
// by a certificate — the certificate for their (canon, concept) exists
// and answers their α identically — are folded away: one certificate
// replaces the whole row on disk. A verdict contradicting its certificate
// is corruption (both are pure functions of the class) and fails the
// compaction rather than silently dropping either. Each segment is
// rebuilt in a temporary file, fsynced, and atomically renamed into place.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly {
		return fmt.Errorf("store: Compact on a closed or read-only store")
	}
	diskBytes := func() int64 {
		var n int64
		for _, seg := range s.segs {
			n += seg.size
		}
		return n
	}
	sp := s.opts.Trace.Start("store_compact")
	before := diskBytes()
	defer func() {
		sp.End(obs.Attrs{"bytes_before": before, "bytes_after": diskBytes()})
	}()
	if err := s.flushLocked(); err != nil {
		return err
	}
	certKeys := make([]CertKey, 0, len(s.certs))
	for k := range s.certs {
		certKeys = append(certKeys, k)
	}
	sort.Slice(certKeys, func(i, j int) bool { return certKeys[i].less(certKeys[j]) })
	keys := make([]Key, 0, len(s.recs))
	for k := range s.recs {
		if ivs, ok := s.certs[CertKey{Canon: k.Canon, Concept: k.Concept, Variant: k.Variant}]; ok {
			cert := CertRecord{Canon: k.Canon, Concept: k.Concept, Variant: k.Variant, Intervals: ivs}
			if cert.Contains(k.Num, k.Den) != s.recs[k] {
				return fmt.Errorf("store: verdict for %v contradicts its certificate", k)
			}
			delete(s.recs, k) // subsumed: the certificate answers this α
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	bufs := make([][]byte, len(s.segs))
	for i := range bufs {
		bufs[i] = []byte(segMagic)
	}
	counts := make([]int, len(s.segs))
	for _, k := range certKeys {
		rec := CertRecord{Canon: k.Canon, Concept: k.Concept, Variant: k.Variant, Intervals: s.certs[k]}
		idx := s.shardIndex(k.Canon)
		bufs[idx] = append(bufs[idx], encodeCertFrame(rec)...)
		counts[idx]++
	}
	for _, k := range keys {
		rec := Record{Canon: k.Canon, Num: k.Num, Den: k.Den, Concept: k.Concept, Variant: k.Variant, Stable: s.recs[k]}
		idx := s.shardIndex(k.Canon)
		bufs[idx] = append(bufs[idx], encodeFrame(rec)...)
		counts[idx]++
	}
	for i, seg := range s.segs {
		tmp := seg.path + ".tmp"
		if err := writeFileSync(tmp, bufs[i]); err != nil {
			return err
		}
		if err := seg.f.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, seg.path); err != nil {
			return err
		}
		f, err := s.openWriter(seg.path)
		if err != nil {
			return err
		}
		seg.f, seg.size, seg.dirty = f, int64(len(bufs[i])), false
		seg.records = counts[i]
	}
	s.stats.DuplicateFrames = 0
	return syncDir(s.dir)
}

// Close flushes pending records, fsyncs, releases the lock and closes the
// store. Further Puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	tick, tickDone := s.tick, s.tickDone
	s.mu.Unlock()
	if tick != nil {
		tick.Stop()
		close(tickDone)
	}
	s.closeFiles()
	s.releaseLock()
	return err
}

// releaseLock drops the flock by closing its file descriptor. The LOCK
// file itself stays behind (removing it would race a waiter holding the
// old inode open).
func (s *Store) releaseLock() {
	if s.lock != nil {
		_ = s.lock.Close()
		s.lock = nil
	}
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			_ = seg.f.Close()
		}
	}
}

// writeFileSync writes data to path and fsyncs the file, so the content is
// durable before the caller proceeds.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is best-effort: some filesystems refuse it.
	_ = d.Sync()
	return d.Close()
}
