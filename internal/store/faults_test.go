package store

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// Fault-injection harness (PR 6): a WriteSyncer wrapper whose write and
// sync paths fail on demand, installed via Options.WrapSegmentWriter.
// These tests drive the store's flush-error accounting and prove the
// retry path is durable — the properties /healthz's "degraded" status and
// the daemon's serve-stale behavior rest on.

type flakyWriter struct {
	WriteSyncer
	failWrites *atomic.Bool
	failSyncs  *atomic.Bool
}

var errInjected = errors.New("injected fault")

func (f *flakyWriter) Write(p []byte) (int, error) {
	if f.failWrites.Load() {
		return 0, errInjected
	}
	return f.WriteSyncer.Write(p)
}

func (f *flakyWriter) Sync() error {
	if f.failSyncs.Load() {
		return errInjected
	}
	return f.WriteSyncer.Sync()
}

func flakyStore(t *testing.T, dir string) (*Store, *atomic.Bool, *atomic.Bool) {
	t.Helper()
	var failWrites, failSyncs atomic.Bool
	s := mustOpen(t, dir, Options{
		Shards:     2,
		FlushEvery: 1 << 30, // flush only when asked
		WrapSegmentWriter: func(w WriteSyncer) WriteSyncer {
			return &flakyWriter{WriteSyncer: w, failWrites: &failWrites, failSyncs: &failSyncs}
		},
	})
	return s, &failWrites, &failSyncs
}

// TestStoreFlushWriteFailure: a failing segment write makes Flush error,
// is counted in Stats, keeps the records pending in memory (still
// readable — the daemon serves stale), and a retry after the fault heals
// lands every record durably.
func TestStoreFlushWriteFailure(t *testing.T) {
	dir := t.TempDir()
	s, failWrites, _ := flakyStore(t, dir)
	recs := testRecords(10)
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}

	failWrites.Store(true)
	if err := s.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush with failing writes: err = %v, want injected fault", err)
	}
	st := s.Stats()
	if st.FlushFailures != 1 || !strings.Contains(st.LastFlushError, "injected") {
		t.Fatalf("failure not accounted: %+v", st)
	}
	if st.Pending != len(recs) {
		t.Fatalf("pending = %d after failed flush, want all %d retained", st.Pending, len(recs))
	}
	// Degraded, not down: every record still answers from memory.
	for _, r := range recs {
		if stable, ok := s.Get(r.Key()); !ok || stable != r.Stable {
			t.Fatalf("record %v unreadable while flush is failing", r.Key())
		}
	}

	// A second failure keeps counting.
	if err := s.Flush(); err == nil {
		t.Fatal("second Flush unexpectedly succeeded")
	}
	if st := s.Stats(); st.FlushFailures != 2 {
		t.Fatalf("FlushFailures = %d, want 2", st.FlushFailures)
	}

	// Heal, retry, reopen: nothing was lost and no frame was torn.
	failWrites.Store(false)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("pending = %d after healed flush", st.Pending)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if got := dump(re); len(got) != len(recs) {
		t.Fatalf("reopened store holds %d records, want %d", len(got), len(recs))
	}
	if st := re.Stats(); st.RecoveredBytes != 0 {
		t.Fatalf("reopen truncated %d bytes — the failed flush tore a frame", st.RecoveredBytes)
	}
}

// TestStoreFlushSyncFailure: a failing fsync is counted as a flush
// failure and retried — the segment stays marked dirty so the next Flush
// syncs it even with nothing new pending.
func TestStoreFlushSyncFailure(t *testing.T) {
	s, _, failSyncs := flakyStore(t, t.TempDir())
	defer s.Close()
	for _, r := range testRecords(4) {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	failSyncs.Store(true)
	if err := s.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush with failing fsync: err = %v", err)
	}
	if st := s.Stats(); st.FlushFailures != 1 {
		t.Fatalf("FlushFailures = %d, want 1", st.FlushFailures)
	}
	failSyncs.Store(false)
	if err := s.Flush(); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
}

// TestStorePartialWriteRolledBack: a short write is truncated back to the
// last frame boundary before the error returns, so the retry appends
// whole frames — without the rollback, recovery at the torn frame would
// silently drop every record the retry wrote after it.
func TestStorePartialWriteRolledBack(t *testing.T) {
	dir := t.TempDir()
	var arm atomic.Bool
	s := mustOpen(t, dir, Options{
		Shards:     1,
		FlushEvery: 1 << 30,
		WrapSegmentWriter: func(w WriteSyncer) WriteSyncer {
			return writeSyncerFunc{w, &arm}
		},
	})
	recs := testRecords(6)
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	arm.Store(true)
	if err := s.Flush(); err == nil {
		t.Fatal("short write did not surface")
	}
	arm.Store(false)
	if err := s.Flush(); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if st, got := re.Stats(), dump(re); len(got) != len(recs) || st.DuplicateFrames != 0 {
		t.Fatalf("after partial-write retry: %d records (want %d), %d duplicate frames (want 0)",
			len(got), len(recs), st.DuplicateFrames)
	}
}

// writeSyncerFunc writes half the buffer and fails when armed — a torn
// write mid-frame.
type writeSyncerFunc struct {
	WriteSyncer
	arm *atomic.Bool
}

func (w writeSyncerFunc) Write(p []byte) (int, error) {
	if w.arm.Load() {
		n, _ := w.WriteSyncer.Write(p[:len(p)/2])
		return n, errInjected
	}
	return w.WriteSyncer.Write(p)
}
