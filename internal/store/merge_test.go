package store

import (
	"strings"
	"testing"
)

func openShard(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestIngestFoldsShards: two shards with disjoint and overlapping-identical
// records merge into one store holding each record exactly once, with the
// overlap counted as folded duplicates.
func TestIngestFoldsShards(t *testing.T) {
	a, b, dst := openShard(t), openShard(t), openShard(t)
	// a: two certs and a verdict. b: one cert disjoint, one cert identical
	// to a's, and the same verdict — the shape a reclaimed lease produces.
	for _, c := range []CertRecord{certOn01("class-1", 2), certOn01("class-2", 2)} {
		if err := a.PutCert(c); err != nil {
			t.Fatal(err)
		}
	}
	v := Record{Canon: "class-1", Num: 3, Den: 2, Concept: 2, Stable: true}
	if err := a.Put(v); err != nil {
		t.Fatal(err)
	}
	for _, c := range []CertRecord{certOn01("class-2", 2), certOn01("class-3", 2)} {
		if err := b.PutCert(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Put(v); err != nil {
		t.Fatal(err)
	}

	sa, err := dst.Ingest(a)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Certificates != 2 || sa.Verdicts != 1 || sa.Duplicates != 0 {
		t.Fatalf("first shard ingest stats %+v", sa)
	}
	sb, err := dst.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Certificates != 1 || sb.Verdicts != 0 || sb.Duplicates != 2 {
		t.Fatalf("second shard ingest stats %+v", sb)
	}
	if err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	st := dst.Stats()
	if st.CertificateRecords != 3 || st.VerdictRecords != 1 {
		t.Fatalf("merged store stats %+v, want 3 certs + 1 verdict", st)
	}
	// Ingest into a store already holding everything is a pure fold.
	again, err := dst.Ingest(a)
	if err != nil {
		t.Fatal(err)
	}
	if again.Certificates != 0 || again.Verdicts != 0 || again.Duplicates != 3 {
		t.Fatalf("re-ingest stats %+v, want all duplicates", again)
	}
}

// TestIngestConflictFailsLoudly: a shard whose certificate contradicts the
// destination's (same key, different α set) must fail the merge with an
// error naming a conflict — determinism makes contradictions impossible
// for honest shards, so silence would bury corruption.
func TestIngestConflictFailsLoudly(t *testing.T) {
	src, dst := openShard(t), openShard(t)
	if err := dst.PutCert(certOn01("class-1", 2)); err != nil {
		t.Fatal(err)
	}
	bad := certOn01("class-1", 2)
	bad.Intervals[0].HiNum = 2
	if err := src.PutCert(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Ingest(src); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("contradictory certificate merged silently (err=%v)", err)
	}

	// Same discipline for per-α verdicts.
	src2, dst2 := openShard(t), openShard(t)
	if err := dst2.Put(Record{Canon: "c", Num: 1, Den: 1, Concept: 1, Stable: true}); err != nil {
		t.Fatal(err)
	}
	if err := src2.Put(Record{Canon: "c", Num: 1, Den: 1, Concept: 1, Stable: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := dst2.Ingest(src2); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("contradictory verdict merged silently (err=%v)", err)
	}
}

// TestSegmentStats: per-segment byte and record counts track appends,
// survive reopen, and sum to the store totals.
func TestSegmentStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.PutCert(certOn01(strings.Repeat("x", i+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(Record{Canon: "v", Num: 1, Den: 1, Concept: 1, Stable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store, label string) {
		t.Helper()
		segs := s.SegmentStats()
		if len(segs) != 2 {
			t.Fatalf("%s: %d segments, want 2", label, len(segs))
		}
		records, bytes := 0, int64(0)
		for _, seg := range segs {
			if seg.Name == "" {
				t.Fatalf("%s: unnamed segment %+v", label, seg)
			}
			records += seg.Records
			bytes += seg.Bytes
		}
		if records != 9 {
			t.Fatalf("%s: segment records sum to %d, want 9", label, records)
		}
		if want := s.Stats().DiskBytes; bytes != want {
			t.Fatalf("%s: segment bytes sum to %d, store reports %d", label, bytes, want)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2, "reopened")
}
