package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// The checkpoint is a small JSON document riding alongside the segments —
// the resumable-sweep machinery saves its grid spec and progress here so
// an interrupted `bncg sweep -store … ` can be continued with `-resume`.
// Writes are atomic (temp file + fsync + rename), so a crash never leaves
// a half-written checkpoint: either the previous one or the new one is
// read back.

const checkpointFile = "checkpoint.json"

// SaveCheckpoint atomically replaces the store's checkpoint with the JSON
// encoding of v.
func (s *Store) SaveCheckpoint(v any) error {
	if s.opts.ReadOnly {
		return fmt.Errorf("store: SaveCheckpoint on a read-only store")
	}
	sp := s.opts.Trace.Start("store_checkpoint")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	defer func() { sp.End(obs.Attrs{"bytes": len(data) + 1}) }()
	path := filepath.Join(s.dir, checkpointFile)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// LoadCheckpoint decodes the store's checkpoint into v. It returns
// ok=false (and no error) when no checkpoint exists.
func (s *Store) LoadCheckpoint(v any) (ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, checkpointFile))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, err
	}
	return true, nil
}

// ClearCheckpoint removes the checkpoint, marking the checkpointed work
// complete. Clearing an absent checkpoint is a no-op.
func (s *Store) ClearCheckpoint() error {
	if s.opts.ReadOnly {
		return fmt.Errorf("store: ClearCheckpoint on a read-only store")
	}
	err := os.Remove(filepath.Join(s.dir, checkpointFile))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
