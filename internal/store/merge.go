package store

import "fmt"

// Shard ingest: the merge step of the fleet subsystem. Every fleet worker
// appends certificates to its own store shard; Ingest folds one shard into
// a canonical store. Because verdicts and certificates are pure functions
// of their keys, the merge semantics are exactly the store's existing
// conflict discipline: identical duplicates fold silently to one record,
// contradictory records for the same key fail the merge loudly — a
// contradiction can only mean a corrupted shard or a buggy writer, and
// silently picking a side would serve wrong answers forever after.

// IngestStats summarizes one Ingest call.
type IngestStats struct {
	// Verdicts and Certificates count the records newly added to the
	// destination.
	Verdicts     int `json:"verdicts"`
	Certificates int `json:"certificates"`
	// Duplicates counts source records the destination already held with
	// identical content — the overlap a reclaimed-and-rerun lease (or an
	// overlapping shard) produces, folded to nothing.
	Duplicates int `json:"duplicates"`
}

// Ingest folds every record of src — per-α verdicts and certificates
// alike — into s. It stops at the first conflicting record and returns the
// error; records ingested before the conflict remain (they were valid).
// The caller owns flushing: ingested records follow s's normal batching
// and are durable after Flush or Close.
func (s *Store) Ingest(src *Store) (IngestStats, error) {
	var st IngestStats
	var err error
	src.Range(func(r Record) bool {
		if prev, ok := s.Get(r.Key()); ok {
			if prev != r.Stable {
				err = fmt.Errorf("store: ingest conflict: verdict for %v disagrees with the destination", r.Key())
				return false
			}
			st.Duplicates++
			return true
		}
		if err = s.Put(r); err != nil {
			return false
		}
		st.Verdicts++
		return true
	})
	if err != nil {
		return st, err
	}
	src.RangeCerts(func(r CertRecord) bool {
		if prev, ok := s.GetCert(r.Key()); ok {
			if !equalIntervals(prev.Intervals, r.Intervals) {
				err = fmt.Errorf("store: ingest conflict: certificate for %v disagrees with the destination", r.Key())
				return false
			}
			st.Duplicates++
			return true
		}
		if err = s.PutCert(r); err != nil {
			return false
		}
		st.Certificates++
		return true
	})
	return st, err
}
