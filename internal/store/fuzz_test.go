package store

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip: every valid record survives encode → frame →
// decode byte-identically, and the decoder never panics or accepts a
// record Validate would refuse.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 1}, int64(1), int64(1), uint8(1), true)
	f.Add([]byte("((()))"), int64(9), int64(2), uint8(9), false)
	f.Add(bytes.Repeat([]byte{0}, 512), int64(1<<40), int64(3), uint8(16), true)
	f.Fuzz(func(t *testing.T, canon []byte, num, den int64, concept uint8, stable bool) {
		rec := Record{Canon: string(canon), Num: num, Den: den, Concept: concept, Stable: stable}
		if rec.Validate() != nil {
			return
		}
		frame := encodeFrame(rec)
		n, got, ok := decodeFrame(frame)
		if !ok {
			t.Fatalf("freshly encoded frame did not decode: %+v", rec)
		}
		if got.isCert {
			t.Fatalf("verdict frame decoded as certificate: %+v", rec)
		}
		if n != len(frame) {
			t.Fatalf("frame size %d, decoded %d", len(frame), n)
		}
		if got.rec != rec {
			t.Fatalf("round trip changed the record: %+v -> %+v", rec, got.rec)
		}
		// A frame concatenation decodes records one by one.
		double := append(append([]byte{}, frame...), frame...)
		if n2, _, ok := decodeFrame(double); !ok || n2 != len(frame) {
			t.Fatalf("concatenated frames misparsed: ok=%v n=%d", ok, n2)
		}
	})
}

// FuzzCertRecordRoundTrip is the certificate twin of FuzzRecordRoundTrip:
// a valid certificate record (fuzz-built from up to two intervals)
// survives encode → frame → decode byte-identically, and the leading
// 0x00 kind byte keeps the two payload encodings unconfusable.
func FuzzCertRecordRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 0}, uint8(3), int64(0), int64(1), int64(1), int64(1), uint8(0), false)
	f.Add([]byte("(())"), uint8(9), int64(1), int64(2), int64(9), int64(2), uint8(3), true)
	f.Fuzz(func(t *testing.T, canon []byte, concept uint8, loNum, loDen, hiNum, hiDen int64, flags uint8, second bool) {
		iv := Interval{
			LoNum: loNum, LoDen: loDen, HiNum: hiNum, HiDen: hiDen,
			LoOpen: flags&1 != 0, HiOpen: flags&2 != 0, HiInf: flags&4 != 0,
		}
		if iv.HiInf {
			// The encoding is canonical: unbounded intervals carry no upper
			// endpoint at all.
			iv.HiNum, iv.HiDen = 0, 0
		}
		ivs := []Interval{iv}
		if !iv.HiInf && second {
			ivs = append(ivs, Interval{LoNum: hiNum, LoDen: hiDen, HiInf: true})
		}
		rec := CertRecord{Canon: string(canon), Concept: concept, Intervals: ivs}
		if rec.Validate() != nil {
			return
		}
		frame := encodeCertFrame(rec)
		n, got, ok := decodeFrame(frame)
		if !ok {
			t.Fatalf("freshly encoded certificate frame did not decode: %+v", rec)
		}
		if !got.isCert {
			t.Fatalf("certificate frame decoded as verdict: %+v", rec)
		}
		if n != len(frame) {
			t.Fatalf("frame size %d, decoded %d", len(frame), n)
		}
		if got.cert.Canon != rec.Canon || got.cert.Concept != rec.Concept ||
			!equalIntervals(got.cert.Intervals, rec.Intervals) {
			t.Fatalf("round trip changed the certificate: %+v -> %+v", rec, got.cert)
		}
	})
}

// FuzzDecodeFrame: arbitrary bytes never panic the frame decoder, and
// anything it accepts — verdict or certificate — re-encodes to the
// identical frame prefix (no malleability: one record, one encoding).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(encodeFrame(Record{Canon: "x", Num: 1, Den: 2, Concept: 3, Stable: true}))
	f.Add(encodeCertFrame(CertRecord{Canon: "x", Concept: 3, Intervals: []Interval{
		{LoNum: 0, LoDen: 1, HiNum: 1, HiDen: 1, HiOpen: true},
	}}))
	f.Add(encodeFrame(Record{Canon: "x", Num: 1, Den: 2, Concept: 3, Variant: "unilateral", Stable: true}))
	f.Add(encodeCertFrame(CertRecord{Canon: "x", Concept: 3, Variant: "max", Intervals: []Interval{
		{LoNum: 0, LoDen: 1, HiNum: 1, HiDen: 1, HiOpen: true},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, fr, ok := decodeFrame(data)
		if !ok {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded frame size %d out of range", n)
		}
		if fr.isCert {
			if err := fr.cert.Validate(); err != nil {
				t.Fatalf("decoder accepted an invalid certificate: %v", err)
			}
			if !bytes.Equal(encodeCertFrame(fr.cert), data[:n]) {
				t.Fatalf("re-encoding %+v differs from the accepted frame", fr.cert)
			}
			return
		}
		if err := fr.rec.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid record: %v", err)
		}
		if !bytes.Equal(encodeFrame(fr.rec), data[:n]) {
			t.Fatalf("re-encoding %+v differs from the accepted frame", fr.rec)
		}
	})
}
