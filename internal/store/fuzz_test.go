package store

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip: every valid record survives encode → frame →
// decode byte-identically, and the decoder never panics or accepts a
// record Validate would refuse.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 1}, int64(1), int64(1), uint8(1), true)
	f.Add([]byte("((()))"), int64(9), int64(2), uint8(9), false)
	f.Add(bytes.Repeat([]byte{0}, 512), int64(1<<40), int64(3), uint8(16), true)
	f.Fuzz(func(t *testing.T, canon []byte, num, den int64, concept uint8, stable bool) {
		rec := Record{Canon: string(canon), Num: num, Den: den, Concept: concept, Stable: stable}
		if rec.Validate() != nil {
			return
		}
		frame := encodeFrame(rec)
		n, got, ok := decodeFrame(frame)
		if !ok {
			t.Fatalf("freshly encoded frame did not decode: %+v", rec)
		}
		if n != len(frame) {
			t.Fatalf("frame size %d, decoded %d", len(frame), n)
		}
		if got != rec {
			t.Fatalf("round trip changed the record: %+v -> %+v", rec, got)
		}
		// A frame concatenation decodes records one by one.
		double := append(append([]byte{}, frame...), frame...)
		if n2, _, ok := decodeFrame(double); !ok || n2 != len(frame) {
			t.Fatalf("concatenated frames misparsed: ok=%v n=%d", ok, n2)
		}
	})
}

// FuzzDecodeFrame: arbitrary bytes never panic the frame decoder, and
// anything it accepts re-encodes to the identical frame prefix (no
// malleability: one record, one encoding).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(encodeFrame(Record{Canon: "x", Num: 1, Den: 2, Concept: 3, Stable: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, rec, ok := decodeFrame(data)
		if !ok {
			return
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid record: %v", err)
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded frame size %d out of range", n)
		}
		if !bytes.Equal(encodeFrame(rec), data[:n]) {
			t.Fatalf("re-encoding %+v differs from the accepted frame", rec)
		}
	})
}
