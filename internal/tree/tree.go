// Package tree provides rooted views of tree graphs with the structural
// queries used throughout Section 3.2 of the paper: layers, parents,
// subtree sizes, subtree depths and 1-medians.
package tree

import (
	"fmt"

	"repro/internal/graph"
)

// Rooted is an immutable rooted view of a tree graph.
type Rooted struct {
	g      *graph.Graph
	root   int
	parent []int // parent[root] == -1
	layer  []int // layer[u] == dist(root, u)
	order  []int // BFS order from root (root first)
	size   []int // subtree sizes
	depth  []int // depth of the subtree rooted at u
}

// Root returns a rooted view of g at root. It reports an error if g is not
// a tree or root is out of range.
func Root(g *graph.Graph, root int) (*Rooted, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("tree: graph is not a tree (%s)", g)
	}
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("tree: root %d out of range [0,%d)", root, g.N())
	}
	n := g.N()
	t := &Rooted{
		g:      g,
		root:   root,
		parent: make([]int, n),
		layer:  make([]int, n),
		order:  make([]int, 0, n),
		size:   make([]int, n),
		depth:  make([]int, n),
	}
	for i := range t.parent {
		t.parent[i] = -2 // unvisited
	}
	t.parent[root] = -1
	t.layer[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		t.order = append(t.order, u)
		for _, v := range g.Neighbors(u) {
			if t.parent[v] == -2 {
				t.parent[v] = u
				t.layer[v] = t.layer[u] + 1
				queue = append(queue, v)
			}
		}
	}
	// Subtree sizes and depths bottom-up (reverse BFS order).
	for i := range t.size {
		t.size[i] = 1
	}
	for i := n - 1; i >= 0; i-- {
		u := t.order[i]
		p := t.parent[u]
		if p >= 0 {
			t.size[p] += t.size[u]
			if t.depth[u]+1 > t.depth[p] {
				t.depth[p] = t.depth[u] + 1
			}
		}
	}
	return t, nil
}

// MustRoot is Root for callers with statically valid input; it panics on
// error.
func MustRoot(g *graph.Graph, root int) *Rooted {
	t, err := Root(g, root)
	if err != nil {
		panic(err)
	}
	return t
}

// RootAtMedian roots g at its (layer-minimal) 1-median, matching the
// convention used in all of the paper's tree proofs.
func RootAtMedian(g *graph.Graph) (*Rooted, error) {
	medians, err := Medians(g)
	if err != nil {
		return nil, err
	}
	return Root(g, medians[0])
}

// Graph returns the underlying graph.
func (t *Rooted) Graph() *graph.Graph { return t.g }

// RootNode returns the root.
func (t *Rooted) RootNode() int { return t.root }

// Parent returns the parent of u, or -1 for the root.
func (t *Rooted) Parent(u int) int { return t.parent[u] }

// Layer returns dist(root, u), the paper's ℓ(u).
func (t *Rooted) Layer(u int) int { return t.layer[u] }

// SubtreeSize returns |T_u|.
func (t *Rooted) SubtreeSize(u int) int { return t.size[u] }

// SubtreeDepth returns depth(T_u) = max_{v in T_u} dist(u, v).
func (t *Rooted) SubtreeDepth(u int) int { return t.depth[u] }

// Depth returns depth(G) = max_u ℓ(u).
func (t *Rooted) Depth() int { return t.depth[t.root] }

// Children returns the children of u in BFS-neighbor order.
func (t *Rooted) Children(u int) []int {
	var cs []int
	for _, v := range t.g.Neighbors(u) {
		if t.parent[v] == u {
			cs = append(cs, v)
		}
	}
	return cs
}

// InSubtree reports whether v lies in T_u.
func (t *Rooted) InSubtree(v, u int) bool {
	for v != -1 {
		if v == u {
			return true
		}
		v = t.parent[v]
	}
	return false
}

// Subtree returns the nodes of T_u in BFS order starting at u.
func (t *Rooted) Subtree(u int) []int {
	nodes := []int{u}
	for i := 0; i < len(nodes); i++ {
		nodes = append(nodes, t.Children(nodes[i])...)
	}
	return nodes
}

// NodesAtLayer returns all nodes with ℓ(u) == l, ascending.
func (t *Rooted) NodesAtLayer(l int) []int {
	var nodes []int
	for u := 0; u < t.g.N(); u++ {
		if t.layer[u] == l {
			nodes = append(nodes, u)
		}
	}
	return nodes
}

// PathToRoot returns u, parent(u), ..., root.
func (t *Rooted) PathToRoot(u int) []int {
	var path []int
	for u != -1 {
		path = append(path, u)
		u = t.parent[u]
	}
	return path
}

// Medians returns the 1 or 2 1-medians of a tree: nodes minimizing total
// distance, equivalently nodes whose removal leaves components of size at
// most n/2 (Section 3.2 of the paper). Ascending order.
func Medians(g *graph.Graph) ([]int, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("tree: medians of non-tree (%s)", g)
	}
	n := g.N()
	if n == 1 {
		return []int{0}, nil
	}
	t, err := Root(g, 0)
	if err != nil {
		return nil, err
	}
	var medians []int
	for u := 0; u < n; u++ {
		// Component sizes on removing u: each child subtree, plus the
		// complement through the parent.
		ok := true
		for _, c := range t.Children(u) {
			if 2*t.size[c] > n {
				ok = false
				break
			}
		}
		if ok && u != t.root && 2*(n-t.size[u]) > n {
			ok = false
		}
		if ok {
			medians = append(medians, u)
		}
	}
	if len(medians) == 0 || len(medians) > 2 {
		return nil, fmt.Errorf("tree: found %d medians, want 1 or 2", len(medians))
	}
	return medians, nil
}

// SubtreeMedians returns the 1-medians of the subtree T_u as a standalone
// tree, in ascending order of layer then label (so the first entry is the
// one the paper's Lemma 3.3 picks: the T_u-median closest to u).
func (t *Rooted) SubtreeMedians(u int) []int {
	nodes := t.Subtree(u)
	if len(nodes) == 1 {
		return []int{u}
	}
	index := make(map[int]int, len(nodes))
	for i, v := range nodes {
		index[v] = i
	}
	sub := graph.New(len(nodes))
	for _, v := range nodes {
		if p := t.parent[v]; v != u && p >= 0 {
			sub.AddEdge(index[v], index[p])
		}
	}
	localMedians, err := Medians(sub)
	if err != nil {
		panic(err) // sub is a tree by construction
	}
	medians := make([]int, len(localMedians))
	for i, lm := range localMedians {
		medians[i] = nodes[lm]
	}
	if len(medians) == 2 && t.layer[medians[1]] < t.layer[medians[0]] {
		medians[0], medians[1] = medians[1], medians[0]
	}
	return medians
}
