package tree

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

func star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

func TestRootRejectsNonTree(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if _, err := Root(g, 0); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := Root(path(3), 5); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestRootedBasicsOnPath(t *testing.T) {
	g := path(5)
	rt := MustRoot(g, 0)
	if rt.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", rt.Depth())
	}
	for u := 0; u < 5; u++ {
		if rt.Layer(u) != u {
			t.Fatalf("Layer(%d) = %d, want %d", u, rt.Layer(u), u)
		}
		if rt.SubtreeSize(u) != 5-u {
			t.Fatalf("SubtreeSize(%d) = %d, want %d", u, rt.SubtreeSize(u), 5-u)
		}
		if rt.SubtreeDepth(u) != 4-u {
			t.Fatalf("SubtreeDepth(%d) = %d, want %d", u, rt.SubtreeDepth(u), 4-u)
		}
	}
	if rt.Parent(0) != -1 || rt.Parent(3) != 2 {
		t.Fatal("Parent wrong")
	}
	if cs := rt.Children(2); len(cs) != 1 || cs[0] != 3 {
		t.Fatalf("Children(2) = %v", cs)
	}
	if !rt.InSubtree(4, 2) || rt.InSubtree(1, 2) {
		t.Fatal("InSubtree wrong")
	}
	if p := rt.PathToRoot(3); len(p) != 4 || p[0] != 3 || p[3] != 0 {
		t.Fatalf("PathToRoot(3) = %v", p)
	}
}

func TestNodesAtLayer(t *testing.T) {
	rt := MustRoot(star(5), 0)
	if got := rt.NodesAtLayer(1); len(got) != 4 {
		t.Fatalf("NodesAtLayer(1) = %v", got)
	}
	if got := rt.NodesAtLayer(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("NodesAtLayer(0) = %v", got)
	}
}

func TestMedians(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want []int
	}{
		{name: "path5", g: path(5), want: []int{2}},
		{name: "path4", g: path(4), want: []int{1, 2}},
		{name: "star6", g: star(6), want: []int{0}},
		{name: "single", g: graph.New(1), want: []int{0}},
		{name: "edge", g: path(2), want: []int{0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Medians(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("Medians = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Fatalf("Medians = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// TestMedianMinimizesTotalDistance: the 1-median definition by component
// sizes coincides with minimizing total distance (Kariv–Hakimi).
func TestMedianMinimizesTotalDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		g := graph.RandomTree(n, rng)
		medians, err := Medians(g)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(1) << 62
		for u := 0; u < n; u++ {
			sum, _ := g.TotalDist(u)
			if sum < best {
				best = sum
			}
		}
		for _, m := range medians {
			sum, _ := g.TotalDist(m)
			if sum != best {
				t.Fatalf("median %d has dist %d, min is %d (%s)", m, sum, best, g)
			}
		}
		// And non-medians are strictly worse.
		isMedian := make(map[int]bool)
		for _, m := range medians {
			isMedian[m] = true
		}
		for u := 0; u < n; u++ {
			sum, _ := g.TotalDist(u)
			if !isMedian[u] && sum == best {
				t.Fatalf("node %d attains min dist but is not a median (%s)", u, g)
			}
		}
	}
}

// TestMedianComponentBound: removing the root-at-median leaves components
// of size at most n/2 — the property all Section 3.2 proofs use.
func TestMedianComponentBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.RandomTree(n, rng)
		rt, err := RootAtMedian(g)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			if u == rt.RootNode() {
				continue
			}
			if 2*rt.SubtreeSize(u) > n {
				t.Fatalf("subtree of %d has %d > n/2 nodes (n=%d, %s)", u, rt.SubtreeSize(u), n, g)
			}
		}
	}
}

func TestSubtreeMedians(t *testing.T) {
	// Path rooted at one end: the medians of the subtree T_u (a sub-path of
	// length 5-u) are the middle nodes of that sub-path.
	rt := MustRoot(path(6), 0)
	got := rt.SubtreeMedians(2) // subtree is path 2-3-4-5
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("SubtreeMedians(2) = %v, want [3 4]", got)
	}
	if got := rt.SubtreeMedians(5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("SubtreeMedians(leaf) = %v", got)
	}
}

func TestSubtreeSizesSumAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(15)
		g := graph.RandomTree(n, rng)
		rt := MustRoot(g, rng.Intn(n))
		// Root subtree is everything.
		if rt.SubtreeSize(rt.RootNode()) != n {
			t.Fatalf("root subtree size %d, want %d", rt.SubtreeSize(rt.RootNode()), n)
		}
		// Each node: size = 1 + sum of children sizes.
		for u := 0; u < n; u++ {
			sum := 1
			for _, c := range rt.Children(u) {
				sum += rt.SubtreeSize(c)
			}
			if sum != rt.SubtreeSize(u) {
				t.Fatalf("subtree size of %d inconsistent", u)
			}
			if len(rt.Subtree(u)) != rt.SubtreeSize(u) {
				t.Fatalf("Subtree(%d) length != SubtreeSize", u)
			}
		}
	}
}
