package game

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestNewAlpha(t *testing.T) {
	tests := []struct {
		name     string
		num, den int64
		wantErr  bool
		str      string
	}{
		{name: "integer", num: 3, den: 1, str: "3"},
		{name: "reduced", num: 6, den: 4, str: "3/2"},
		{name: "half", num: 1, den: 2, str: "1/2"},
		{name: "zero", num: 0, den: 5, str: "0"},
		{name: "neg num", num: -1, den: 2, wantErr: true},
		{name: "zero den", num: 1, den: 0, wantErr: true},
		{name: "neg den", num: 1, den: -2, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := NewAlpha(tt.num, tt.den)
			if tt.wantErr {
				if err == nil {
					t.Fatal("no error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != tt.str {
				t.Fatalf("String = %q, want %q", a.String(), tt.str)
			}
		})
	}
}

func TestAlphaCmp(t *testing.T) {
	a := AFrac(9, 2) // 4.5
	if a.Cmp(4, 1) != 1 || a.Cmp(5, 1) != -1 || a.Cmp(9, 2) != 0 || a.Cmp(18, 4) != 0 {
		t.Fatal("Cmp wrong for 9/2")
	}
	if !a.AtLeastInt(4) || a.AtLeastInt(5) || !a.LessThanInt(5) || a.LessThanInt(4) {
		t.Fatal("int comparisons wrong")
	}
	if A(7).Float() != 7.0 {
		t.Fatal("Float wrong")
	}
}

func TestCostLexicographic(t *testing.T) {
	alpha := A(3)
	connected := Cost{Buy: 100, Dist: 100}
	disconnected := Cost{Unreachable: 1, Buy: 0, Dist: 0}
	if !connected.Less(disconnected, alpha) {
		t.Fatal("connectivity must dominate any finite cost")
	}
	if disconnected.Less(connected, alpha) {
		t.Fatal("disconnected preferred over connected")
	}
	// α=3: buy 2 dist 0 (6) vs buy 1 dist 4 (7).
	if !(Cost{Buy: 2}).Less(Cost{Buy: 1, Dist: 4}, alpha) {
		t.Fatal("6 < 7 failed")
	}
	// Exact tie at fractional α: α=3/2, buy 2 dist 0 (3) vs buy 0 dist 3.
	half := AFrac(3, 2)
	a, b := Cost{Buy: 2}, Cost{Dist: 3}
	if a.Less(b, half) || b.Less(a, half) || !a.Equal(b, half) {
		t.Fatal("exact rational tie mishandled")
	}
}

func TestAgentCostOnStar(t *testing.T) {
	gm, err := NewGame(5, A(2))
	if err != nil {
		t.Fatal(err)
	}
	g := Star(5)
	center := gm.AgentCost(g, 0)
	if center.Buy != 4 || center.Dist != 4 || center.Unreachable != 0 {
		t.Fatalf("center cost = %v", center)
	}
	leaf := gm.AgentCost(g, 1)
	if leaf.Buy != 1 || leaf.Dist != 1+2*3 {
		t.Fatalf("leaf cost = %v", leaf)
	}
}

func TestAgentCostDisconnected(t *testing.T) {
	gm, _ := NewGame(4, A(1))
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})
	c := gm.AgentCost(g, 0)
	if c.Unreachable != 2 || c.Dist != 1 || c.Buy != 1 {
		t.Fatalf("cost = %v", c)
	}
}

func TestSocialCostStar(t *testing.T) {
	n := 6
	gm, _ := NewGame(n, A(3))
	got := gm.SocialCost(Star(n))
	want := gm.OptCost()
	if got != want {
		t.Fatalf("social cost of star = %v, OPT formula = %v", got, want)
	}
}

func TestOptFormulaClique(t *testing.T) {
	n := 5
	gm, _ := NewGame(n, AFrac(1, 2))
	got := gm.SocialCost(Clique(n))
	want := gm.OptCost()
	if got != want {
		t.Fatalf("social cost of clique = %v, OPT formula = %v", got, want)
	}
}

// TestOptIsOptimal verifies by exhaustive search over all connected graphs
// on n<=5 nodes that the closed-form OPT is actually minimal, for α on both
// sides of 1.
func TestOptIsOptimal(t *testing.T) {
	alphas := []Alpha{AFrac(1, 2), AFrac(3, 2), A(3), A(10)}
	for n := 2; n <= 5; n++ {
		for _, alpha := range alphas {
			gm, _ := NewGame(n, alpha)
			opt := gm.OptCost().Value(alpha)
			best := opt
			graph.Enumerate(n, graph.EnumOptions{ConnectedOnly: true, MaxEdges: -1}, func(g *graph.Graph) {
				v := gm.SocialCost(g).Value(alpha)
				if v < best {
					best = v
				}
			})
			if best < opt {
				t.Fatalf("n=%d α=%s: found social cost %.3f below OPT %.3f", n, alpha, best, opt)
			}
		}
	}
}

func TestRho(t *testing.T) {
	n := 6
	gm, _ := NewGame(n, A(2))
	if rho := gm.Rho(Star(n)); rho != 1 {
		t.Fatalf("ρ(star) = %v, want 1", rho)
	}
	// Path is worse than star for α >= 1.
	path := graph.New(n)
	for v := 1; v < n; v++ {
		path.AddEdge(v-1, v)
	}
	if rho := gm.Rho(path); rho <= 1 {
		t.Fatalf("ρ(path) = %v, want > 1", rho)
	}
	// Disconnected sentinel.
	if rho := gm.Rho(graph.New(n)); rho < 1e17 {
		t.Fatalf("ρ(disconnected) = %v, want sentinel", rho)
	}
}

// TestCostDecompositionProperty: social cost equals 2mα + Σ_u dist(u) on
// random connected graphs (the Buy component counts edge endpoints).
func TestCostDecompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		maxM := n * (n - 1) / 2
		m := n - 1 + r.Intn(maxM-n+2)
		g, err := graph.RandomConnectedGraph(n, m, r)
		if err != nil {
			return false
		}
		gm, _ := NewGame(n, A(2))
		total := gm.SocialCost(g)
		var distSum int64
		for u := 0; u < n; u++ {
			s, unreachable := g.TotalDist(u)
			if unreachable != 0 {
				return false
			}
			distSum += s
		}
		return total.Buy == 2*int64(g.M()) && total.Dist == distSum && total.Unreachable == 0
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame(0, A(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
}
