package game

import (
	"fmt"

	"repro/internal/graph"
)

// Cost is an agent's exact cost in a given state: the number of agents she
// cannot reach, the number of edges she buys, and her total finite hop
// distance. Costs compare lexicographically by (Unreachable, α·Buy + Dist),
// which is the paper's cost function with disconnection priced at
// M > α·n³.
type Cost struct {
	Unreachable int64 // agents in other components
	Buy         int64 // edges paid for (in equilibrium form: the degree)
	Dist        int64 // sum of finite hop distances
}

// Less reports whether c is strictly cheaper than d under edge price alpha.
func (c Cost) Less(d Cost, alpha Alpha) bool {
	if c.Unreachable != d.Unreachable {
		return c.Unreachable < d.Unreachable
	}
	// c < d  ⟺  num·cBuy + den·cDist < num·dBuy + den·dDist.
	lhs := alpha.Num()*c.Buy + alpha.Den()*c.Dist
	rhs := alpha.Num()*d.Buy + alpha.Den()*d.Dist
	return lhs < rhs
}

// Equal reports exact cost equality under alpha.
func (c Cost) Equal(d Cost, alpha Alpha) bool {
	return !c.Less(d, alpha) && !d.Less(c, alpha)
}

// Value returns the scalar α·Buy + Dist as a float64 for reporting. It is
// meaningless when Unreachable > 0.
func (c Cost) Value(alpha Alpha) float64 {
	return alpha.Float()*float64(c.Buy) + float64(c.Dist)
}

// String renders the cost for diagnostics.
func (c Cost) String() string {
	if c.Unreachable > 0 {
		return fmt.Sprintf("{unreachable:%d buy:%d dist:%d}", c.Unreachable, c.Buy, c.Dist)
	}
	return fmt.Sprintf("{buy:%d dist:%d}", c.Buy, c.Dist)
}

// Game couples a node count with an edge price and a model variant. The
// created graph is the state; in the BNCG the graph and the strategy vector
// are in bijection (each agent's strategy is exactly her neighborhood), so
// all BNCG costs are functions of the graph alone. The zero Variant is the
// paper's exact model, so Game{N, Alpha} literals keep their historical
// meaning.
type Game struct {
	N       int
	Alpha   Alpha
	Variant Variant
}

// NewGame returns the BNCG on n agents with edge price alpha. It reports an
// error for n < 1.
func NewGame(n int, alpha Alpha) (Game, error) {
	if n < 1 {
		return Game{}, fmt.Errorf("game: need at least one agent, got %d", n)
	}
	return Game{N: n, Alpha: alpha}, nil
}

// AgentCost returns agent u's cost in state g (BNCG equilibrium form: the
// agent pays for each incident edge). Under DistMax the distance term is
// u's eccentricity instead of her distance sum.
func (gm Game) AgentCost(g *graph.Graph, u int) Cost {
	if gm.Variant.Dist == DistMax {
		dist := make([]int, g.N())
		g.BFSInto(u, dist)
		return gm.AgentCostFromDist(g, u, dist)
	}
	sum, unreachable := g.TotalDist(u)
	return Cost{
		Unreachable: int64(unreachable),
		Buy:         int64(g.Degree(u)),
		Dist:        sum,
	}
}

// AgentCostFromDist builds agent u's cost from a precomputed BFS distance
// slice, avoiding a second traversal in move-evaluation hot loops. The
// distance aggregate follows the game's variant: sum of finite distances
// by default, maximum finite distance (eccentricity) under DistMax.
func (gm Game) AgentCostFromDist(g *graph.Graph, u int, dist []int) Cost {
	var (
		agg         int64
		unreachable int64
	)
	if gm.Variant.Dist == DistMax {
		for _, d := range dist {
			if d == graph.Unreachable {
				unreachable++
				continue
			}
			if int64(d) > agg {
				agg = int64(d)
			}
		}
	} else {
		for _, d := range dist {
			if d == graph.Unreachable {
				unreachable++
				continue
			}
			agg += int64(d)
		}
	}
	return Cost{Unreachable: unreachable, Buy: int64(g.Degree(u)), Dist: agg}
}

// SocialCost returns the sum of all agent costs: total buying cost
// 2·m·α plus total distance cost (and the number of unreachable ordered
// pairs, zero for connected graphs).
func (gm Game) SocialCost(g *graph.Graph) Cost {
	var total Cost
	for u := 0; u < g.N(); u++ {
		c := gm.AgentCost(g, u)
		total.Unreachable += c.Unreachable
		total.Buy += c.Buy
		total.Dist += c.Dist
	}
	return total
}

// OptCost returns the social optimum cost for the game (Section 3.1):
// for α < 1 the clique with cost n(n-1)(1+α); for α >= 1 the star with cost
// 2(n-1)(α+n-1). Both are returned in exact Cost form (Buy counts edge
// endpoints, i.e. 2m).
//
// The closed forms are specific to the paper's exact model; OptCost panics
// for non-default variants rather than report a wrong optimum. The sweep,
// server and CLI layers reject ρ/PoA requests for non-default variants
// before reaching it.
func (gm Game) OptCost() Cost {
	if !gm.Variant.IsDefault() {
		panic("game: OptCost is defined for the default variant only")
	}
	n := int64(gm.N)
	if n == 1 {
		return Cost{}
	}
	if gm.Alpha.LessThanInt(1) {
		// Clique: n(n-1) bought edge-endpoints, distance n(n-1).
		return Cost{Buy: n * (n - 1), Dist: n * (n - 1)}
	}
	// Star: 2(n-1) endpoints; distances 2(n-1)(n-2) among leaves plus
	// 2(n-1) to/from the center.
	return Cost{Buy: 2 * (n - 1), Dist: 2*(n-1)*(n-2) + 2*(n-1)}
}

// Rho returns the social cost ratio ρ(G) = cost(G)/cost(OPT) as a float64.
// It returns +Inf semantics via a large ratio if g is disconnected (the
// paper never takes ρ of disconnected graphs; callers should check).
func (gm Game) Rho(g *graph.Graph) float64 {
	return gm.RhoOfCost(gm.SocialCost(g))
}

// RhoOfCost returns the social cost ratio of a precomputed social cost,
// with the same disconnection sentinel as Rho. It exists so callers that
// compute the social cost with their own scratch buffers (the sweep
// engine's evaluators) produce bit-identical ratios.
func (gm Game) RhoOfCost(c Cost) float64 {
	if c.Unreachable > 0 {
		return float64(c.Unreachable) * 1e18 // sentinel: disconnected
	}
	return c.Value(gm.Alpha) / gm.OptCost().Value(gm.Alpha)
}

// Star returns the star graph on n nodes with center 0, the social optimum
// for α >= 1.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Clique returns the complete graph on n nodes, the social optimum for
// α < 1.
func Clique(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}
