package game

import (
	"testing"

	"repro/internal/graph"
)

func triangle() *graph.Graph {
	return graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
}

func TestNewOwnershipValidation(t *testing.T) {
	g := triangle()
	if _, err := NewOwnership(g, map[graph.Edge]int{{U: 0, V: 1}: 0}); err == nil {
		t.Fatal("missing owners accepted")
	}
	if _, err := NewOwnership(g, map[graph.Edge]int{
		{U: 0, V: 1}: 2, {U: 1, V: 2}: 1, {U: 0, V: 2}: 0,
	}); err == nil {
		t.Fatal("non-endpoint owner accepted")
	}
	o, err := NewOwnership(g, map[graph.Edge]int{
		{U: 0, V: 1}: 0, {U: 1, V: 2}: 1, {U: 0, V: 2}: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := o.Owner(1, 0); !ok || w != 0 {
		t.Fatalf("Owner(1,0) = %d,%v", w, ok)
	}
	if o.Bought(1) != 1 || o.Bought(0) != 1 {
		t.Fatal("Bought wrong")
	}
}

func TestOwnershipCloneMutation(t *testing.T) {
	g := triangle()
	o, _ := NewOwnership(g, map[graph.Edge]int{
		{U: 0, V: 1}: 0, {U: 1, V: 2}: 1, {U: 0, V: 2}: 2,
	})
	c := o.Clone()
	c.SetOwner(0, 1, 1)
	if w, _ := o.Owner(0, 1); w != 0 {
		t.Fatal("clone mutation leaked")
	}
	c.Delete(0, 1)
	if _, ok := c.Owner(0, 1); ok {
		t.Fatal("Delete did not delete")
	}
}

func TestAllOwnerships(t *testing.T) {
	g := triangle()
	seen := make(map[string]bool)
	count := AllOwnerships(g, func(o *Ownership) {
		key := ""
		for _, e := range g.Edges() {
			w, _ := o.Owner(e.U, e.V)
			if w == e.U {
				key += "U"
			} else {
				key += "V"
			}
		}
		seen[key] = true
	})
	if count != 8 || len(seen) != 8 {
		t.Fatalf("AllOwnerships: %d yielded, %d distinct, want 8", count, len(seen))
	}
}

func TestNCGAgentCost(t *testing.T) {
	g := triangle()
	o, _ := NewOwnership(g, map[graph.Edge]int{
		{U: 0, V: 1}: 0, {U: 1, V: 2}: 1, {U: 0, V: 2}: 0,
	})
	gm, _ := NewGame(3, A(5))
	c0 := gm.NCGAgentCost(g, o, 0)
	if c0.Buy != 2 || c0.Dist != 2 {
		t.Fatalf("agent 0 cost = %v", c0)
	}
	c2 := gm.NCGAgentCost(g, o, 2)
	if c2.Buy != 0 || c2.Dist != 2 {
		t.Fatalf("agent 2 cost = %v", c2)
	}
}
