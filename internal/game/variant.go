package game

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Consent is the agreement rule a deviation needs: bilateral moves require
// every non-initiating agent touched by a new edge to strictly improve
// (the paper's model); unilateral moves require only the initiating agent
// to improve (the Fabrikant-et-al. NCG convention, in equilibrium form).
type Consent uint8

const (
	// ConsentBilateral is the paper's model: both endpoints of a new edge
	// must strictly benefit. The zero value, so Game{N, Alpha} literals
	// keep their historical meaning.
	ConsentBilateral Consent = iota
	// ConsentUnilateral lets an agent buy, drop or swap her own edges with
	// nobody's agreement; only the initiator must strictly benefit.
	ConsentUnilateral
)

// DistMode selects the distance term of an agent's cost: the sum of her
// finite hop distances (the paper's model) or her eccentricity — the
// maximum finite hop distance.
type DistMode uint8

const (
	// DistSum is the paper's sum-of-distances cost. The zero value.
	DistSum DistMode = iota
	// DistMax prices distance by eccentricity: the farthest reachable
	// agent. Unreachable agents are still counted lexicographically first.
	DistMax
)

// AgentPrice scales one agent's edge price: agent Agent pays Mul·α per
// edge instead of α. Mul is a positive exact rational.
type AgentPrice struct {
	Agent int
	Mul   Alpha
}

// Variant describes a game in the generalized family the certificate
// engine evaluates: a consent mode, a distance aggregate, and optional
// per-agent price multipliers (heterogeneous α). The zero value is the
// paper's exact model — bilateral consent, sum distances, uniform α — so
// every existing Game construction keeps its meaning.
//
// Variants are carried by canonical string everywhere they cross a
// boundary (cache keys, store frames, checkpoints, URLs, flags): the zero
// value renders as "default" and keys as the empty string, which is what
// keeps legacy artifacts readable as the default variant.
type Variant struct {
	Consent Consent
	Dist    DistMode
	// Prices holds the non-identity per-agent multipliers in canonical
	// form: sorted by agent, no duplicates, no Mul == 1 entries. Build
	// canonical values with ParseVariant or NewVariant.
	Prices []AgentPrice
}

// NewVariant returns a canonicalized variant: identity multipliers are
// dropped and the rest sorted by agent. It reports an error for negative
// agents, duplicate agents, or non-positive multipliers.
func NewVariant(consent Consent, dist DistMode, prices []AgentPrice) (Variant, error) {
	v := Variant{Consent: consent, Dist: dist}
	if consent > ConsentUnilateral {
		return Variant{}, fmt.Errorf("game: unknown consent mode %d", consent)
	}
	if dist > DistMax {
		return Variant{}, fmt.Errorf("game: unknown distance mode %d", dist)
	}
	for _, p := range prices {
		if p.Agent < 0 {
			return Variant{}, fmt.Errorf("game: price multiplier for negative agent %d", p.Agent)
		}
		if p.Mul.Num() < 1 {
			return Variant{}, fmt.Errorf("game: price multiplier %s for agent %d must be positive", p.Mul, p.Agent)
		}
		if p.Mul.Num() == 1 && p.Mul.Den() == 1 {
			continue // identity: canonical form omits it
		}
		v.Prices = append(v.Prices, p)
	}
	sort.Slice(v.Prices, func(i, j int) bool { return v.Prices[i].Agent < v.Prices[j].Agent })
	for i := 1; i < len(v.Prices); i++ {
		if v.Prices[i].Agent == v.Prices[i-1].Agent {
			return Variant{}, fmt.Errorf("game: duplicate price multiplier for agent %d", v.Prices[i].Agent)
		}
	}
	return v, nil
}

// IsDefault reports whether v is the paper's exact model (the zero value).
func (v Variant) IsDefault() bool {
	return v.Consent == ConsentBilateral && v.Dist == DistSum && len(v.Prices) == 0
}

// String renders the canonical variant descriptor: "default" for the zero
// value, otherwise the non-default terms joined by commas — "unilateral",
// "max", "mul:AGENT=P/Q" — in that fixed order. ParseVariant inverts it.
func (v Variant) String() string {
	if v.IsDefault() {
		return "default"
	}
	var terms []string
	if v.Consent == ConsentUnilateral {
		terms = append(terms, "unilateral")
	}
	if v.Dist == DistMax {
		terms = append(terms, "max")
	}
	for _, p := range v.Prices {
		terms = append(terms, fmt.Sprintf("mul:%d=%s", p.Agent, p.Mul))
	}
	return strings.Join(terms, ",")
}

// Key returns the canonical cache/store key of the variant: the empty
// string for the default variant (so legacy keys and frames keep meaning)
// and the String form otherwise.
func (v Variant) Key() string {
	if v.IsDefault() {
		return ""
	}
	return v.String()
}

// MarshalJSON renders the variant as its canonical string form.
func (v Variant) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(v.String())), nil
}

// Validate reports an error if the variant is not in canonical form or
// references an agent outside [0, n). It is what the sweep, store and
// server layers run on descriptors that crossed a trust boundary.
func (v Variant) Validate(n int) error {
	if v.Consent > ConsentUnilateral {
		return fmt.Errorf("game: unknown consent mode %d", v.Consent)
	}
	if v.Dist > DistMax {
		return fmt.Errorf("game: unknown distance mode %d", v.Dist)
	}
	for i, p := range v.Prices {
		if p.Agent < 0 || p.Agent >= n {
			return fmt.Errorf("game: price multiplier agent %d outside [0, %d)", p.Agent, n)
		}
		if p.Mul.Num() < 1 {
			return fmt.Errorf("game: price multiplier %s for agent %d must be positive", p.Mul, p.Agent)
		}
		if p.Mul.Num() == 1 && p.Mul.Den() == 1 {
			return fmt.Errorf("game: identity multiplier for agent %d is not canonical", p.Agent)
		}
		if i > 0 && p.Agent <= v.Prices[i-1].Agent {
			return fmt.Errorf("game: price multipliers not sorted by agent")
		}
	}
	return nil
}

// ParseVariant parses the canonical descriptor String renders, so variants
// round-trip through flags, checkpoints, store frames and URLs. The empty
// string and "default" parse to the zero value; otherwise the input is a
// comma-separated list of terms: "bilateral" or "unilateral", "sum" or
// "max", and "mul:AGENT=P/Q" per heterogeneous agent. Conflicting or
// repeated terms are errors.
func ParseVariant(s string) (Variant, error) {
	if s == "" || s == "default" {
		return Variant{}, nil
	}
	var (
		v                   Variant
		sawConsent, sawDist bool
		prices              []AgentPrice
	)
	for _, term := range strings.Split(s, ",") {
		switch {
		case term == "bilateral" || term == "unilateral":
			if sawConsent {
				return Variant{}, fmt.Errorf("game: variant %q repeats a consent term", s)
			}
			sawConsent = true
			if term == "unilateral" {
				v.Consent = ConsentUnilateral
			}
		case term == "sum" || term == "max":
			if sawDist {
				return Variant{}, fmt.Errorf("game: variant %q repeats a distance term", s)
			}
			sawDist = true
			if term == "max" {
				v.Dist = DistMax
			}
		case strings.HasPrefix(term, "mul:"):
			body := term[len("mul:"):]
			eqIdx := strings.IndexByte(body, '=')
			if eqIdx < 0 {
				return Variant{}, fmt.Errorf("game: bad multiplier term %q (want mul:AGENT=P/Q)", term)
			}
			agent, err := strconv.Atoi(body[:eqIdx])
			if err != nil {
				return Variant{}, fmt.Errorf("game: bad multiplier agent in %q", term)
			}
			mul, err := ParseAlpha(body[eqIdx+1:])
			if err != nil {
				return Variant{}, fmt.Errorf("game: bad multiplier price in %q: %v", term, err)
			}
			prices = append(prices, AgentPrice{Agent: agent, Mul: mul})
		case term == "default":
			return Variant{}, fmt.Errorf("game: %q must stand alone in a variant descriptor", term)
		default:
			return Variant{}, fmt.Errorf("game: unknown variant term %q (want bilateral|unilateral, sum|max, mul:AGENT=P/Q)", term)
		}
	}
	return NewVariant(v.Consent, v.Dist, prices)
}

// MulFor returns agent u's price multiplier as an exact p/q pair (1/1 when
// no multiplier is set). Agent u's effective edge price is α·p/q, so her
// improving condition α·(p/q)·ΔBuy + ΔDist < 0 clears denominators as
// α·(p·ΔBuy) + (q·ΔDist) < 0 — which is why both the per-α comparison and
// the certificate breakpoints stay exact rationals in the global α.
func (v Variant) MulFor(u int) (p, q int64) {
	for _, ap := range v.Prices {
		if ap.Agent == u {
			return ap.Mul.Num(), ap.Mul.Den()
		}
		if ap.Agent > u {
			break
		}
	}
	return 1, 1
}

// AlphaFor returns agent u's effective edge price α·mul(u), reduced.
func (gm Game) AlphaFor(u int) Alpha {
	p, q := gm.Variant.MulFor(u)
	if p == 1 && q == 1 {
		return gm.Alpha
	}
	a, err := NewAlpha(gm.Alpha.Num()*p, gm.Alpha.Den()*q)
	if err != nil {
		panic(err) // unreachable: both factors are valid rationals
	}
	return a
}
