package game

import (
	"testing"

	"repro/internal/graph"
)

func TestParseVariantRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		isDefault bool
	}{
		{"", "default", true},
		{"default", "default", true},
		{"bilateral", "default", true},
		{"sum", "default", true},
		{"bilateral,sum", "default", true},
		{"unilateral", "unilateral", false},
		{"max", "max", false},
		{"max,unilateral", "unilateral,max", false},
		{"mul:2=3/2", "mul:2=3/2", false},
		{"mul:2=1", "default", true}, // identity multiplier canonicalizes away
		{"mul:3=2,mul:1=1/2,unilateral", "unilateral,mul:1=1/2,mul:3=2", false},
		{"mul:0=6/4", "mul:0=3/2", false}, // multiplier reduces
	}
	for _, tc := range cases {
		v, err := ParseVariant(tc.in)
		if err != nil {
			t.Fatalf("ParseVariant(%q): %v", tc.in, err)
		}
		if got := v.String(); got != tc.canonical {
			t.Errorf("ParseVariant(%q).String() = %q, want %q", tc.in, got, tc.canonical)
		}
		if got := v.IsDefault(); got != tc.isDefault {
			t.Errorf("ParseVariant(%q).IsDefault() = %v, want %v", tc.in, got, tc.isDefault)
		}
		wantKey := tc.canonical
		if tc.isDefault {
			wantKey = ""
		}
		if got := v.Key(); got != wantKey {
			t.Errorf("ParseVariant(%q).Key() = %q, want %q", tc.in, got, wantKey)
		}
		back, err := ParseVariant(v.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", v.String(), err)
		}
		if back.String() != v.String() {
			t.Errorf("round trip of %q: %q != %q", tc.in, back.String(), v.String())
		}
	}
}

func TestParseVariantErrors(t *testing.T) {
	for _, in := range []string{
		"bogus",
		"unilateral,unilateral",
		"bilateral,unilateral",
		"sum,max",
		"default,max",
		"mul:x=2",
		"mul:1",
		"mul:1=0",
		"mul:1=-2",
		"mul:-1=2",
		"mul:1=2,mul:1=3",
	} {
		if v, err := ParseVariant(in); err == nil {
			t.Errorf("ParseVariant(%q) = %v, want error", in, v)
		}
	}
}

func TestVariantValidate(t *testing.T) {
	v, err := ParseVariant("mul:4=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(5); err != nil {
		t.Errorf("agent 4 valid for n=5: %v", err)
	}
	if err := v.Validate(4); err == nil {
		t.Error("agent 4 must be rejected for n=4")
	}
	bad := Variant{Prices: []AgentPrice{{Agent: 1, Mul: A(1)}}}
	if err := bad.Validate(3); err == nil {
		t.Error("identity multiplier must fail canonical validation")
	}
}

func TestMulForAndAlphaFor(t *testing.T) {
	v, err := ParseVariant("mul:1=3/2,mul:3=2")
	if err != nil {
		t.Fatal(err)
	}
	gm := Game{N: 5, Alpha: AFrac(4, 3), Variant: v}
	if p, q := v.MulFor(0); p != 1 || q != 1 {
		t.Errorf("MulFor(0) = %d/%d, want 1/1", p, q)
	}
	if p, q := v.MulFor(1); p != 3 || q != 2 {
		t.Errorf("MulFor(1) = %d/%d, want 3/2", p, q)
	}
	if got, want := gm.AlphaFor(0), AFrac(4, 3); got != want {
		t.Errorf("AlphaFor(0) = %s, want %s", got, want)
	}
	if got, want := gm.AlphaFor(1), A(2); got != want {
		t.Errorf("AlphaFor(1) = %s, want %s (4/3 · 3/2)", got, want)
	}
	if got, want := gm.AlphaFor(3), AFrac(8, 3); got != want {
		t.Errorf("AlphaFor(3) = %s, want %s", got, want)
	}
}

func TestAgentCostMaxDistance(t *testing.T) {
	// Path 0–1–2–3: under MAX the distance term is the eccentricity.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	maxV, err := ParseVariant("max")
	if err != nil {
		t.Fatal(err)
	}
	gmSum := Game{N: 4, Alpha: A(1)}
	gmMax := Game{N: 4, Alpha: A(1), Variant: maxV}
	if got := gmSum.AgentCost(g, 0); got.Dist != 6 || got.Buy != 1 {
		t.Errorf("sum cost of 0 on path4 = %+v, want dist 6 buy 1", got)
	}
	if got := gmMax.AgentCost(g, 0); got.Dist != 3 || got.Buy != 1 {
		t.Errorf("max cost of 0 on path4 = %+v, want dist 3 buy 1", got)
	}
	if got := gmMax.AgentCost(g, 1); got.Dist != 2 || got.Buy != 2 {
		t.Errorf("max cost of 1 on path4 = %+v, want dist 2 buy 2", got)
	}
	// AgentCostFromDist agrees with AgentCost in both modes.
	dist := g.BFS(1)
	if got, want := gmMax.AgentCostFromDist(g, 1, dist), gmMax.AgentCost(g, 1); got != want {
		t.Errorf("AgentCostFromDist = %+v, AgentCost = %+v", got, want)
	}
}

func TestOptCostPanicsForNonDefaultVariant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OptCost must panic for non-default variants")
		}
	}()
	v, err := ParseVariant("max")
	if err != nil {
		t.Fatal(err)
	}
	Game{N: 4, Alpha: A(1), Variant: v}.OptCost()
}
