package game

import (
	"fmt"

	"repro/internal/graph"
)

// Ownership assigns every edge of a graph to exactly one incident agent,
// capturing a unilateral NCG strategy vector as in Section 2 of the paper
// ("each edge of the graph G is owned by exactly one incident agent").
type Ownership struct {
	owner map[graph.Edge]int
}

// NewOwnership builds an ownership for g from owner[e] entries. Every edge
// of g must be assigned to one of its endpoints.
func NewOwnership(g *graph.Graph, owner map[graph.Edge]int) (*Ownership, error) {
	o := &Ownership{owner: make(map[graph.Edge]int, g.M())}
	for _, e := range g.Edges() {
		w, ok := owner[e.Normalize()]
		if !ok {
			return nil, fmt.Errorf("game: edge %v has no owner", e)
		}
		if w != e.U && w != e.V {
			return nil, fmt.Errorf("game: owner %d of edge %v is not an endpoint", w, e)
		}
		o.owner[e.Normalize()] = w
	}
	if len(owner) != g.M() {
		return nil, fmt.Errorf("game: %d ownership entries for %d edges", len(owner), g.M())
	}
	return o, nil
}

// Owner returns the agent that pays for edge uv.
func (o *Ownership) Owner(u, v int) (int, bool) {
	w, ok := o.owner[graph.Edge{U: u, V: v}.Normalize()]
	return w, ok
}

// Bought returns the number of edges u pays for.
func (o *Ownership) Bought(u int) int {
	n := 0
	for _, w := range o.owner {
		if w == u {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (o *Ownership) Clone() *Ownership {
	c := &Ownership{owner: make(map[graph.Edge]int, len(o.owner))}
	for e, w := range o.owner {
		c.owner[e] = w
	}
	return c
}

// SetOwner records (or re-records) the owner of edge uv. The caller must
// keep the ownership consistent with the graph it describes.
func (o *Ownership) SetOwner(u, v, owner int) {
	o.owner[graph.Edge{U: u, V: v}.Normalize()] = owner
}

// Delete removes the ownership record of edge uv.
func (o *Ownership) Delete(u, v int) {
	delete(o.owner, graph.Edge{U: u, V: v}.Normalize())
}

// AllOwnerships calls yield with every possible ownership of g's edges.
// There are 2^m of them; intended for the small gadgets of Section 2.
// Returns the number yielded. The ownership passed to yield is reused.
func AllOwnerships(g *graph.Graph, yield func(*Ownership)) int {
	edges := g.Edges()
	o := &Ownership{owner: make(map[graph.Edge]int, len(edges))}
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == len(edges) {
			count++
			yield(o)
			return
		}
		e := edges[i]
		o.owner[e] = e.U
		rec(i + 1)
		o.owner[e] = e.V
		rec(i + 1)
	}
	rec(0)
	return count
}

// NCGAgentCost returns agent u's cost in the unilateral NCG: α times the
// edges u owns, plus total distance (lexicographic disconnection as in the
// BNCG).
func (gm Game) NCGAgentCost(g *graph.Graph, o *Ownership, u int) Cost {
	sum, unreachable := g.TotalDist(u)
	return Cost{
		Unreachable: int64(unreachable),
		Buy:         int64(o.Bought(u)),
		Dist:        sum,
	}
}
