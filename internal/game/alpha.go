// Package game defines the (Bilateral) Network Creation Game: exact edge
// prices, agent and social costs, social optima and the social cost ratio ρ.
//
// Cost arithmetic is exact. The edge price α is a rational number and agent
// costs are compared lexicographically as (unreachable-node count, exact
// α·buy + dist). The lexicographic first component implements the paper's
// device of pricing disconnection at M > α·n³: an agent always prefers
// reaching more agents, and among states with equal reachability compares
// exact costs.
package game

import (
	"fmt"
	"strconv"
	"strings"
)

// Alpha is an exact non-negative rational edge price num/den.
type Alpha struct {
	num int64
	den int64
}

// NewAlpha returns the edge price num/den. It reports an error unless
// num >= 0 and den > 0.
func NewAlpha(num, den int64) (Alpha, error) {
	if den <= 0 {
		return Alpha{}, fmt.Errorf("game: alpha denominator %d must be positive", den)
	}
	if num < 0 {
		return Alpha{}, fmt.Errorf("game: alpha numerator %d must be non-negative", num)
	}
	g := gcd64(num, den)
	return Alpha{num: num / g, den: den / g}, nil
}

// A returns the integer edge price n (a convenience for the common case).
// It panics for negative n.
func A(n int64) Alpha {
	a, err := NewAlpha(n, 1)
	if err != nil {
		panic(err)
	}
	return a
}

// AFrac returns the edge price num/den, panicking on invalid input. Use it
// for statically known prices such as the paper's α = 9/2.
func AFrac(num, den int64) Alpha {
	a, err := NewAlpha(num, den)
	if err != nil {
		panic(err)
	}
	return a
}

// Num returns the reduced numerator.
func (a Alpha) Num() int64 { return a.num }

// Den returns the reduced denominator (1 for the zero value, by convention
// of IsZero below).
func (a Alpha) Den() int64 {
	if a.den == 0 {
		return 1
	}
	return a.den
}

// Float returns the price as a float64 for reporting only; comparisons must
// use the exact forms.
func (a Alpha) Float() float64 { return float64(a.num) / float64(a.Den()) }

// Cmp compares a with the rational p/q and returns -1, 0 or 1.
func (a Alpha) Cmp(p, q int64) int {
	if q <= 0 {
		panic("game: Cmp with non-positive denominator")
	}
	lhs := a.num * q
	rhs := p * a.Den()
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// LessThanInt reports a < k.
func (a Alpha) LessThanInt(k int64) bool { return a.Cmp(k, 1) < 0 }

// AtLeastInt reports a >= k.
func (a Alpha) AtLeastInt(k int64) bool { return a.Cmp(k, 1) >= 0 }

// ParseAlpha parses the forms String renders — "3" or "9/2" — back into
// an exact price, so grids round-trip through flags, checkpoints and URLs.
func ParseAlpha(s string) (Alpha, error) {
	if s == "" {
		return Alpha{}, fmt.Errorf("game: empty alpha")
	}
	num, den := s, "1"
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den = s[:i], s[i+1:]
	}
	p, err1 := strconv.ParseInt(num, 10, 64)
	q, err2 := strconv.ParseInt(den, 10, 64)
	if err1 != nil || err2 != nil {
		return Alpha{}, fmt.Errorf("game: bad alpha %q (want p or p/q)", s)
	}
	return NewAlpha(p, q)
}

// String renders the price ("3" or "9/2").
func (a Alpha) String() string {
	if a.Den() == 1 {
		return fmt.Sprintf("%d", a.num)
	}
	return fmt.Sprintf("%d/%d", a.num, a.Den())
}

// MarshalJSON renders the price as its exact string form ("3" or "9/2"),
// never a float, so JSON output is stable and lossless.
func (a Alpha) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", a.String())), nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
