package sweep

import (
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

// xorshift is a tiny deterministic PRNG so fuzz inputs fully determine the
// derived permutations and edge toggles.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x) + 0x9e3779b97f4a7c15 // avoid the all-zero fixed point
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// permFromSeed derives a permutation of 0..n-1 (Fisher–Yates).
func permFromSeed(n int, seed uint64) []int {
	x := xorshift(seed)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(x.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// bruteIsomorphic decides isomorphism by trying every relabeling — the
// ground truth the canonical key is fuzzed against. Exponential; callers
// keep n ≤ 6.
func bruteIsomorphic(g, h *graph.Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	perm := make([]int, g.N())
	for i := range perm {
		perm[i] = i
	}
	for {
		mapped, err := g.Permute(perm)
		if err != nil {
			panic(err)
		}
		if mapped.Equal(h) {
			return true
		}
		if !nextPermutation(perm) {
			return false
		}
	}
}

// nextPermutation advances perm in lexicographic order, reporting false
// after the last one.
func nextPermutation(perm []int) bool {
	i := len(perm) - 2
	for i >= 0 && perm[i] >= perm[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(perm) - 1
	for perm[j] <= perm[i] {
		j--
	}
	perm[i], perm[j] = perm[j], perm[i]
	for l, r := i+1, len(perm)-1; l < r; l, r = l+1, r-1 {
		perm[l], perm[r] = perm[r], perm[l]
	}
	return true
}

// FuzzCanonicalCacheKey hunts collisions in the canonical-form cache key:
// relabeling a graph must never change its key (else the cache misses and,
// worse, two entries could disagree), and toggling an edge must change the
// key exactly when it changes the isomorphism class (else the cache would
// serve one class the verdicts of another). It also drives the Cache
// itself: a verdict stored under one labeling must be served — unchanged —
// under any other.
//
// The seed corpus mirrors internal/graph/fuzz_test.go, so the same encoded
// graphs that exercise Decode also exercise the cache keys.
func FuzzCanonicalCacheKey(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n", uint64(0))
	f.Add("n 0\n", uint64(1))
	f.Add("# comment\nn 2\n\n0 1\n", uint64(7))
	f.Add("n 5\n0 1\n0 2\n0 3\n0 4\n", uint64(42))
	f.Add("n -1\n", uint64(3))
	f.Add("0 1\nn 2\n", uint64(5))
	f.Add("n 6\n0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n", uint64(11))
	f.Fuzz(func(t *testing.T, input string, seed uint64) {
		g, err := graph.Decode(input)
		if err != nil || g.N() < 2 || g.N() > 6 {
			return
		}
		x := xorshift(seed)
		key := g.CanonicalKey()

		// Completeness: every relabeling shares the key.
		perm := permFromSeed(g.N(), x.next())
		h, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		if h.CanonicalKey() != key {
			t.Fatalf("relabeling changed the canonical key:\n%s\nperm %v -> %s", g, perm, h)
		}

		// Soundness: an edge toggle changes the key iff it changes the class.
		u := int(x.next() % uint64(g.N()))
		v := int(x.next() % uint64(g.N()))
		if u != v {
			toggled := g.Clone()
			if !toggled.RemoveEdge(u, v) {
				toggled.AddEdge(u, v)
			}
			sameClass := bruteIsomorphic(g, toggled)
			sameKey := toggled.CanonicalKey() == key
			if sameClass != sameKey {
				t.Fatalf("canonical key collision: iso=%v keyEqual=%v\n%s\nvs\n%s",
					sameClass, sameKey, g, toggled)
			}
		}

		// Cache semantics: a verdict stored under g's labeling is served
		// under h's, and matches h's direct evaluation.
		alpha := game.AFrac(int64(1+x.next()%8), int64(1+x.next()%4))
		gm, err := game.NewGame(g.N(), alpha)
		if err != nil {
			t.Fatal(err)
		}
		stable := eq.Check(gm, g, eq.PS).Stable
		cache := NewCache()
		cache.Put(Key{Canon: key, Num: alpha.Num(), Den: alpha.Den(), Concept: eq.PS}, stable)
		got, ok := cache.Get(Key{Canon: h.CanonicalKey(), Num: alpha.Num(), Den: alpha.Den(), Concept: eq.PS})
		if !ok || got != stable {
			t.Fatalf("cache lookup under relabeling: ok=%v got=%v want=%v", ok, got, stable)
		}
		if direct := eq.Check(gm, h, eq.PS).Stable; direct != stable {
			t.Fatalf("stability is not label-invariant: %v vs %v\n%s\nvs\n%s", stable, direct, g, h)
		}
	})
}
