package sweep

import (
	"context"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
)

// TestResultOrbits checks that a sweep carries the enumeration's orbit
// multiplicities: one entry per graph class, summing to the number of
// connected labeled graphs (n=5: 728, OEIS A001187) — the labeled work the
// symmetry pruning folded away.
func TestResultOrbits(t *testing.T) {
	res, err := Run(context.Background(), Options{
		N:        5,
		Alphas:   []game.Alpha{game.A(2)},
		Concepts: []eq.Concept{eq.PS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Orbits) != res.Graphs {
		t.Fatalf("%d orbit entries for %d graphs", len(res.Orbits), res.Graphs)
	}
	var sum int64
	for _, o := range res.Orbits {
		sum += o
	}
	if sum != 728 {
		t.Errorf("orbit sum %d, want 728 connected labeled graphs on 5 nodes", sum)
	}
}
