package sweep

import (
	"context"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

// figure1Alphas is the α grid of the Figure 1 sweeps (see
// experiments.latticeAlphas), duplicated here so the differential harness
// does not depend on the experiments package.
func figure1Alphas() []game.Alpha {
	return []game.Alpha{
		game.AFrac(1, 2), game.A(1), game.AFrac(3, 2),
		game.A(2), game.A(3), game.A(5),
	}
}

// sequentialVectors computes the reference stability vectors with direct
// eq.Check calls, in the engine's α-major task order.
func sequentialVectors(t *testing.T, n int, alphas []game.Alpha, concepts []eq.Concept) []Vector {
	t.Helper()
	var graphs []*graph.Graph
	graph.Enumerate(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1},
		func(g *graph.Graph) { graphs = append(graphs, g) })
	vectors := make([]Vector, 0, len(graphs)*len(alphas))
	for _, alpha := range alphas {
		gm, err := game.NewGame(n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range graphs {
			var vec Vector
			for i, c := range concepts {
				if eq.Check(gm, g, c).Stable {
					vec |= 1 << i
				}
			}
			vectors = append(vectors, vec)
		}
	}
	return vectors
}

// TestDifferentialSweepMatchesSequential pins the parallel engine to the
// sequential checkers bit for bit: for every connected graph with n ≤ 5 and
// the Figure 1 α grid, the sweep's stability vectors must be identical to
// direct eq.Check calls — first on a cold cache, then again fully served
// from the warm cache. Neither the worker pool nor the cache may change a
// single verdict.
func TestDifferentialSweepMatchesSequential(t *testing.T) {
	alphas := figure1Alphas()
	concepts := eq.Concepts()
	for n := 2; n <= 5; n++ {
		cache := NewCache()
		want := sequentialVectors(t, n, alphas, concepts)
		for run, label := range []string{"cold", "warm"} {
			res, err := Run(context.Background(), Options{
				N:        n,
				Alphas:   alphas,
				Concepts: concepts,
				Workers:  8,
				Cache:    cache,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Items) != len(want) {
				t.Fatalf("n=%d %s: %d items, want %d", n, label, len(res.Items), len(want))
			}
			for ti, it := range res.Items {
				if it.Vector != want[ti] {
					t.Errorf("n=%d %s run: α=%s graph %s: sweep vector %09b != sequential %09b",
						n, label, alphas[it.AlphaIndex], it.Graph, it.Vector, want[ti])
				}
			}
			if run == 1 {
				// The warm run must be served entirely from the cache.
				if res.Misses != 0 {
					t.Errorf("n=%d warm run recomputed %d verdicts", n, res.Misses)
				}
				for _, it := range res.Items {
					if !it.FromCache {
						t.Errorf("n=%d warm run: α-index %d graph %d not from cache",
							n, it.AlphaIndex, it.GraphIndex)
					}
				}
			}
		}
	}
}

// TestDifferentialTreesMatchesSequential is the same harness over the free
// tree stream with ρ enabled, covering the PoA search path.
func TestDifferentialTreesMatchesSequential(t *testing.T) {
	const n = 7
	alpha := game.A(4)
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		stable bool
		rho    float64
	}
	var want []ref
	graph.FreeTrees(n, func(g *graph.Graph) {
		want = append(want, ref{stable: eq.Check(gm, g, eq.PS).Stable, rho: gm.Rho(g)})
	})
	res, err := Run(context.Background(), Options{
		N:        n,
		Alphas:   []game.Alpha{alpha},
		Concepts: []eq.Concept{eq.PS},
		Workers:  8,
		Source:   Trees,
		Cache:    NewCache(),
		Rho:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graphs != len(want) {
		t.Fatalf("%d trees enumerated, want %d", res.Graphs, len(want))
	}
	for ti, it := range res.Items {
		if it.Vector.Stable(0) != want[ti].stable || it.Rho != want[ti].rho {
			t.Errorf("tree %d: sweep (stable=%v ρ=%v) != sequential (stable=%v ρ=%v)",
				ti, it.Vector.Stable(0), it.Rho, want[ti].stable, want[ti].rho)
		}
	}
}
