package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
)

func latticeOptions(n, workers int, cache *Cache) Options {
	return Options{
		N:        n,
		Alphas:   figure1Alphas(),
		Concepts: eq.Concepts(),
		Workers:  workers,
		Cache:    cache,
	}
}

// mustRun runs a sweep and fails the test on error.
func mustRun(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameOutcome asserts two results are observationally identical: same item
// vectors, ρ values and indices, and byte-identical reports. Cache-origin
// fields (FromCache, Hits, Misses) and Workers are excluded on purpose —
// they describe how the work was done, not what was computed.
func sameOutcome(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Graphs != b.Graphs || len(a.Items) != len(b.Items) {
		t.Fatalf("stream shape differs: %d/%d graphs, %d/%d items",
			a.Graphs, b.Graphs, len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.AlphaIndex != y.AlphaIndex || x.GraphIndex != y.GraphIndex ||
			x.Vector != y.Vector || x.Rho != y.Rho {
			t.Fatalf("item %d differs: %+v vs %+v", i, x, y)
		}
		if !x.Graph.Equal(y.Graph) {
			t.Fatalf("item %d graphs differ: %s vs %s", i, x.Graph, y.Graph)
		}
	}
	if ra, rb := a.Report(), b.Report(); ra != rb {
		t.Fatalf("reports differ:\n%s\nvs\n%s", ra, rb)
	}
}

// TestSweepDeterministicAcrossWorkers is the determinism property test: the
// same sweep with -workers 1 and -workers 8 (and a repeat at 8, exercising
// scheduling jitter under -race) must produce byte-identical reports and
// identical items.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	one := mustRun(t, latticeOptions(5, 1, NewCache()))
	eight := mustRun(t, latticeOptions(5, 8, NewCache()))
	again := mustRun(t, latticeOptions(5, 8, NewCache()))
	sameOutcome(t, one, eight)
	sameOutcome(t, eight, again)
	if one.Workers != 1 || eight.Workers != 8 {
		t.Fatalf("resolved workers %d/%d, want 1/8", one.Workers, eight.Workers)
	}
}

// TestSweepCacheDoesNotChangeOutcome runs the same sweep cold, warm, and
// cache-free; all three must agree. A warm cache may only change FromCache
// and the hit counters.
func TestSweepCacheDoesNotChangeOutcome(t *testing.T) {
	cache := NewCache()
	cold := mustRun(t, latticeOptions(4, 8, cache))
	warm := mustRun(t, latticeOptions(4, 8, cache))
	uncached := mustRun(t, latticeOptions(4, 8, nil))
	sameOutcome(t, cold, warm)
	sameOutcome(t, cold, uncached)
	if cold.Hits != 0 {
		t.Errorf("cold run hit the fresh cache %d times", cold.Hits)
	}
	if warm.Misses != 0 || warm.Hits != int64(len(warm.Items)*len(warm.Concepts)) {
		t.Errorf("warm run: %d hits, %d misses; want all hits", warm.Hits, warm.Misses)
	}
	if uncached.Hits != 0 || uncached.Misses != int64(len(uncached.Items)*len(uncached.Concepts)) {
		t.Errorf("uncached run: %d hits, %d misses; want all misses", uncached.Hits, uncached.Misses)
	}
	// One certificate per (class, concept) — not one verdict per (α,
	// class, concept) — is the whole economy of the parametric engine.
	if want := cold.Graphs * len(cold.Concepts); cache.Len() != want {
		t.Errorf("cache holds %d entries, want %d certificates", cache.Len(), want)
	}
	if st := cache.Stats(); st.Certificates != cold.Graphs*len(cold.Concepts) || st.Verdicts != 0 {
		t.Errorf("cache stats %+v, want all entries to be certificates", st)
	}
	if cold.Certified != int64(cold.Graphs*len(cold.Concepts)) || warm.Certified != 0 {
		t.Errorf("certified: cold %d warm %d, want %d and 0",
			cold.Certified, warm.Certified, cold.Graphs*len(cold.Concepts))
	}
}

// TestSweepSharedCacheAcrossGrids checks the finer-grained sharing the
// per-concept keys buy: a nine-concept sweep over an α grid fully primes a
// later three-concept sweep over a sub-grid.
func TestSweepSharedCacheAcrossGrids(t *testing.T) {
	cache := NewCache()
	mustRun(t, latticeOptions(4, 4, cache))
	sub := mustRun(t, Options{
		N:        4,
		Alphas:   []game.Alpha{game.A(1), game.A(3)},
		Concepts: []eq.Concept{eq.RE, eq.BAE, eq.BSwE},
		Workers:  4,
		Cache:    cache,
	})
	if sub.Misses != 0 {
		t.Errorf("sub-grid sweep recomputed %d verdicts despite primed cache", sub.Misses)
	}
}

// TestWorstStable cross-checks the PoA reduction on a tiny instance: trees
// on 4 nodes at α=2 (both the star and the path are PS-stable; the path has
// the larger ρ).
func TestWorstStable(t *testing.T) {
	res := mustRun(t, Options{
		N:        4,
		Alphas:   []game.Alpha{game.A(2)},
		Concepts: []eq.Concept{eq.PS},
		Source:   Trees,
		Cache:    NewCache(),
		Rho:      true,
	})
	if res.Graphs != 2 {
		t.Fatalf("%d free trees on 4 nodes, want 2", res.Graphs)
	}
	rho, witness, stable := res.WorstStable(0, 0)
	if stable != 2 || witness == nil {
		t.Fatalf("stable=%d witness=%v, want both PS-stable", stable, witness)
	}
	gm, _ := game.NewGame(4, game.A(2))
	if want := gm.Rho(witness); rho != want {
		t.Fatalf("worst ρ %v != ρ(witness) %v", rho, want)
	}
	if rho <= 1 {
		t.Fatalf("worst ρ %v should exceed the optimum's 1 (path witness)", rho)
	}
}

func TestSweepOptionValidation(t *testing.T) {
	base := latticeOptions(3, 1, nil)
	for name, mutate := range map[string]func(*Options){
		"no nodes":          func(o *Options) { o.N = 0 },
		"empty alpha grid":  func(o *Options) { o.Alphas = nil },
		"no concepts":       func(o *Options) { o.Concepts = nil },
		"too many concepts": func(o *Options) { o.Concepts = make([]eq.Concept, 17) },
		"bad source":        func(o *Options) { o.Source = Source(99) },
	} {
		opts := base
		mutate(&opts)
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

func TestVectorStable(t *testing.T) {
	v := Vector(0b101)
	want := []bool{true, false, true, false}
	for i, w := range want {
		if v.Stable(i) != w {
			t.Errorf("bit %d: got %v want %v", i, v.Stable(i), w)
		}
	}
}

func TestSourceString(t *testing.T) {
	if Graphs.String() != "graphs" || Trees.String() != "trees" {
		t.Fatal("source names wrong")
	}
	if Source(99).String() != "Source(99)" {
		t.Fatal("unknown source rendering wrong")
	}
}

// TestItemOrderIsAlphaMajor pins the documented item layout other layers
// (experiments, core) rely on.
func TestItemOrderIsAlphaMajor(t *testing.T) {
	res := mustRun(t, latticeOptions(4, 4, nil))
	for ti, it := range res.Items {
		if want := ti / res.Graphs; it.AlphaIndex != want {
			t.Fatalf("item %d: α-index %d, want %d", ti, it.AlphaIndex, want)
		}
		if want := ti % res.Graphs; it.GraphIndex != want {
			t.Fatalf("item %d: graph index %d, want %d", ti, it.GraphIndex, want)
		}
	}
	if !reflect.DeepEqual(res.Alphas, figure1Alphas()) {
		t.Fatal("result does not echo the α grid")
	}
}
