package sweep

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/game"
)

// itemFingerprint renders every observable field of an item, so two
// sequences can be compared byte for byte.
func itemFingerprint(items []Item) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%d/%d v=%016b rho=%v g=%s\n",
			it.AlphaIndex, it.GraphIndex, it.Vector, it.Rho, it.Graph)
	}
	return s
}

// TestStreamOrderMatchesBatch: the streamed item sequence is byte-identical
// to the batch Result.Items order, at one worker and at NumCPU workers
// (run under -race in CI, exercising the coordinator against scheduling
// jitter).
func TestStreamOrderMatchesBatch(t *testing.T) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		opts := Options{
			N:        5,
			Alphas:   figure1Alphas(),
			Concepts: []eq.Concept{eq.RE, eq.BAE, eq.PS, eq.BSwE, eq.BGE},
			Workers:  workers,
			Rho:      true,
		}
		batch := mustRun(t, opts)
		var streamed []Item
		for it := range Stream(context.Background(), opts) {
			streamed = append(streamed, it)
		}
		if len(streamed) != len(batch.Items) {
			t.Fatalf("workers=%d: streamed %d items, batch has %d", workers, len(streamed), len(batch.Items))
		}
		if got, want := itemFingerprint(streamed), itemFingerprint(batch.Items); got != want {
			t.Fatalf("workers=%d: streamed order differs from batch:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestOnItemOrderUnderRun: the OnItem hook observes the α-major order too,
// and Progress counts reach total exactly once.
func TestOnItemOrderUnderRun(t *testing.T) {
	var seen []Item
	var lastDone, calls int
	opts := latticeOptions(4, runtime.NumCPU(), nil)
	opts.OnItem = func(it Item) { seen = append(seen, it) }
	opts.Progress = func(done, total int) {
		if done != lastDone+1 || total != 6*len(figure1Alphas()) {
			t.Errorf("progress (%d, %d) after %d", done, total, lastDone)
		}
		lastDone = done
		calls++
	}
	res := mustRun(t, opts)
	if len(seen) != len(res.Items) || calls != len(res.Items) {
		t.Fatalf("OnItem saw %d items, Progress %d calls, want %d", len(seen), calls, len(res.Items))
	}
	if got, want := itemFingerprint(seen), itemFingerprint(res.Items); got != want {
		t.Fatalf("OnItem order differs from Items:\n%s\nvs\n%s", got, want)
	}
	if res.Completed != len(res.Items) {
		t.Fatalf("Completed = %d, want %d", res.Completed, len(res.Items))
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, tolerating runtime background goroutines that retire lazily.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the sweep", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunCancelReturnsPromptlyWithoutLeaks: cancelling mid-sweep makes Run
// return with ctx.Err() and a consistent partial result, and the worker
// pool drains completely (goroutine count returns to its pre-sweep level).
func TestRunCancelReturnsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := latticeOptions(5, 4, nil)
	cancelled := false
	opts.Progress = func(done, total int) {
		// Cancel mid-flight, after a few tasks have completed.
		if done >= 3 && !cancelled {
			cancelled = true
			cancel()
		}
	}
	start := time.Now()
	res, err := Run(ctx, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// "Promptly" = without finishing the grid: tasks here are sub-second, so
	// the whole call must come back well before a full 5-node lattice sweep
	// would (and the partial result must reflect the early stop).
	if res == nil {
		t.Fatal("cancelled Run returned nil result")
	}
	if res.Completed == 0 || res.Completed >= len(res.Items) {
		t.Fatalf("cancelled sweep completed %d of %d tasks, want a strict prefix of work", res.Completed, len(res.Items))
	}
	n := 0
	for _, it := range res.Items {
		if it.Graph != nil {
			n++
		}
	}
	if n != res.Completed {
		t.Fatalf("%d filled items vs Completed=%d", n, res.Completed)
	}
	t.Logf("cancelled after %v with %d/%d tasks", time.Since(start), res.Completed, len(res.Items))
	waitForGoroutines(t, before)
}

// TestStreamEarlyBreakCancelsSweep: breaking out of a Stream range stops
// the sweep and drains its workers.
func TestStreamEarlyBreakCancelsSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	opts := latticeOptions(5, 4, nil)
	got := 0
	for range Stream(context.Background(), opts) {
		got++
		if got == 5 {
			break
		}
	}
	if got != 5 {
		t.Fatalf("consumed %d items, want 5", got)
	}
	waitForGoroutines(t, before)
}

// TestRunPreCancelled: a context cancelled before the call stops even the
// enumeration and returns an empty partial result.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, latticeOptions(5, 2, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Completed != 0 || len(res.Items) != 0 {
		t.Fatalf("pre-cancelled sweep result: %+v", res)
	}
}

// TestResultJSONStable: the JSON encoding is deterministic across worker
// counts and exposes the documented schema fields.
func TestResultJSONStable(t *testing.T) {
	opts := Options{
		N:        4,
		Alphas:   []game.Alpha{game.AFrac(1, 2), game.A(2)},
		Concepts: []eq.Concept{eq.PS, eq.BSE},
		Rho:      true,
	}
	opts.Workers = 1
	one := mustRun(t, opts)
	opts.Workers = runtime.NumCPU()
	many := mustRun(t, opts)
	ja, err := one.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := many.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Workers is the only field allowed to differ; normalize it away.
	re := regexp.MustCompile(`"workers":\d+`)
	na := re.ReplaceAllString(string(ja), `"workers":0`)
	nb := re.ReplaceAllString(string(jb), `"workers":0`)
	if na != nb {
		t.Fatalf("JSON differs across worker counts:\n%s\nvs\n%s", na, nb)
	}
	for _, want := range []string{`"n":4`, `"source":"graphs"`, `"alphas":["1/2","2"]`, `"concepts":["PS","BSE"]`, `"graph_list"`, `"vector"`} {
		if !strings.Contains(na, want) {
			t.Fatalf("JSON missing %s:\n%s", want, na)
		}
	}
}

// TestClassRangeShardsCoverTheStream: slicing the pruned class stream
// into [start, end) shards — the fleet's unit of work distribution — and
// sweeping each shard independently certifies exactly the classes a full
// sweep does, no class missed, none duplicated across shards.
func TestClassRangeShardsCoverTheStream(t *testing.T) {
	classes, err := CountClasses(context.Background(), 5, Graphs)
	if err != nil {
		t.Fatal(err)
	}
	if classes == 0 {
		t.Fatal("empty class stream")
	}

	full := NewCache()
	whole := mustRun(t, latticeOptions(5, 2, full))
	if whole.Graphs != classes {
		t.Fatalf("CountClasses says %d, full sweep saw %d", classes, whole.Graphs)
	}

	sharded := NewCache()
	const size = 8
	for start := 0; start < classes; start += size {
		opts := latticeOptions(5, 2, sharded)
		opts.ClassStart = start
		opts.ClassEnd = min(start+size, classes)
		res := mustRun(t, opts)
		if res.Graphs != opts.ClassEnd-start {
			t.Fatalf("shard [%d,%d) swept %d classes", start, opts.ClassEnd, res.Graphs)
		}
	}

	fullCerts := map[CertKey]eq.AlphaSet{}
	full.RangeCerts(func(k CertKey, set eq.AlphaSet) bool {
		fullCerts[k] = set
		return true
	})
	n := 0
	sharded.RangeCerts(func(k CertKey, set eq.AlphaSet) bool {
		want, ok := fullCerts[k]
		if !ok {
			t.Errorf("shards certified %v, full sweep did not", k)
		} else if !set.Equal(want) {
			t.Errorf("certificate for %v differs: %s vs %s", k, set, want)
		}
		n++
		return true
	})
	if n != len(fullCerts) || n == 0 {
		t.Fatalf("shards produced %d certificates, full sweep %d", n, len(fullCerts))
	}

	// ClassEnd <= 0 means the end of the stream; bad ranges are refused.
	tail := latticeOptions(5, 1, NewCache())
	tail.ClassStart = classes - 2
	res := mustRun(t, tail)
	if res.Graphs != 2 {
		t.Fatalf("open-ended tail range swept %d classes, want 2", res.Graphs)
	}
	for _, bad := range []struct{ start, end int }{{-1, 0}, {4, 4}, {4, 2}} {
		opts := latticeOptions(5, 1, nil)
		opts.ClassStart, opts.ClassEnd = bad.start, bad.end
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("range [%d,%d) accepted", bad.start, bad.end)
		}
	}
}
