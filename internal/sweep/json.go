package sweep

import (
	"encoding/json"

	"repro/internal/graph"
)

// SchemaVersion is the generation stamp every public JSON payload carries
// as "schema_version" — sweep results, /v1/* response bodies and the
// CLI's -json outputs alike. Generation history:
//
//	1 — the GameVariant redesign: payloads gain "schema_version" itself
//	    and a "variant" field (omitted for the paper's default model);
//	    every pre-existing field is unchanged, which the compatibility
//	    tests pin field by field.
//
// Consumers should ignore fields they do not know and reject versions
// newer than they understand.
const SchemaVersion = 1

// The JSON schema of a sweep result is part of the v2 API surface: field
// names and order are stable, α values and concepts render as their exact
// string forms, and each isomorphism class is encoded once in "graph_list"
// (in enumeration order) rather than per item. Consumers rejoin an item to
// its graph via "graph_index".
type resultJSON struct {
	SchemaVersion int               `json:"schema_version"`
	N             int               `json:"n"`
	Source        string            `json:"source"`
	Variant       string            `json:"variant,omitempty"`
	Alphas        []string          `json:"alphas"`
	Concepts      []string          `json:"concepts"`
	Workers       int               `json:"workers"`
	Graphs        int               `json:"graphs"`
	Completed     int               `json:"completed"`
	CacheHits     int64             `json:"cache_hits"`
	CacheMisses   int64             `json:"cache_misses"`
	Certified     int64             `json:"certified"`
	Critical      []ConceptCritical `json:"critical,omitempty"`
	GraphList     []string          `json:"graph_list"`
	Items         []itemJSON        `json:"items"`
}

// MarshalJSON renders one critical row as the stable schema every
// surface shares — `{"concept":"PS","alphas":["1","2"]}`, the concept's
// paper name and the breakpoints as exact rational strings, never floats.
// The sweep JSON, /v1/critical and `bncg critical -json` all serialize
// through this single definition.
func (c ConceptCritical) MarshalJSON() ([]byte, error) {
	alphas := make([]string, len(c.Alphas))
	for i, a := range c.Alphas {
		alphas[i] = a.String()
	}
	return json.Marshal(struct {
		Concept string   `json:"concept"`
		Alphas  []string `json:"alphas"`
	}{c.Concept.String(), alphas})
}

type itemJSON struct {
	AlphaIndex int     `json:"alpha_index"`
	GraphIndex int     `json:"graph_index"`
	Vector     uint16  `json:"vector"`
	Rho        float64 `json:"rho,omitempty"`
	FromCache  bool    `json:"from_cache,omitempty"`
	Done       bool    `json:"done"`
}

// MarshalJSON implements a stable JSON encoding of the sweep outcome. On a
// cancelled sweep, unfinished items carry "done": false and zero verdicts.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		SchemaVersion: SchemaVersion,
		N:             r.N,
		Source:        r.Source.String(),
		Variant:       r.Variant.Key(),
		Alphas:        make([]string, len(r.Alphas)),
		Concepts:      make([]string, len(r.Concepts)),
		Workers:       r.Workers,
		Graphs:        r.Graphs,
		Completed:     r.Completed,
		CacheHits:     r.Hits,
		CacheMisses:   r.Misses,
		Certified:     r.Certified,
		GraphList:     make([]string, 0, r.Graphs),
		Items:         make([]itemJSON, len(r.Items)),
		Critical:      r.Critical,
	}
	for i, a := range r.Alphas {
		out.Alphas[i] = a.String()
	}
	for i, c := range r.Concepts {
		out.Concepts[i] = c.String()
	}
	complete := r.Completed == len(r.Items)
	for gi := 0; gi < r.Graphs; gi++ {
		if g := r.Items[gi].Graph; g != nil {
			out.GraphList = append(out.GraphList, graph.Encode(g))
		} else {
			// The α=0 row may be incomplete on a cancelled sweep; recover
			// the representative from any completed row.
			enc := ""
			for ai := 1; ai < len(r.Alphas); ai++ {
				if g := r.Items[ai*r.Graphs+gi].Graph; g != nil {
					enc = graph.Encode(g)
					break
				}
			}
			out.GraphList = append(out.GraphList, enc)
		}
	}
	for i, it := range r.Items {
		out.Items[i] = itemJSON{
			AlphaIndex: it.AlphaIndex,
			GraphIndex: it.GraphIndex,
			Vector:     uint16(it.Vector),
			Rho:        it.Rho,
			FromCache:  it.FromCache,
			Done:       complete || it.Graph != nil,
		}
		if !complete && it.Graph == nil {
			// Zero-value entry of a cancelled sweep: make the indices
			// self-describing anyway.
			out.Items[i].AlphaIndex = i / r.Graphs
			out.Items[i].GraphIndex = i % r.Graphs
		}
	}
	return json.Marshal(out)
}
