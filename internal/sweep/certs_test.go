package sweep

import (
	"strings"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
)

// denseGrid returns a G-point α grid k/2 for k = 1..G.
func denseGrid(g int) []game.Alpha {
	out := make([]game.Alpha, g)
	for k := 1; k <= g; k++ {
		out[k-1] = game.AFrac(int64(k), 2)
	}
	return out
}

// TestSweepGridDensityInvariant pins the O(1)-per-α structure of the
// certificate engine without timing anything: a 16× denser grid over the
// same classes computes exactly the same number of certificates, reports
// identical critical breakpoints, and agrees verdict-for-verdict on the
// shared α values.
func TestSweepGridDensityInvariant(t *testing.T) {
	base := Options{N: 4, Concepts: eq.Concepts(), Workers: 4}
	sparseOpts, denseOpts := base, base
	sparseOpts.Alphas, sparseOpts.Cache = denseGrid(4), NewCache()
	denseOpts.Alphas, denseOpts.Cache = denseGrid(64), NewCache()
	sparse := mustRun(t, sparseOpts)
	dense := mustRun(t, denseOpts)

	if sparse.Certified != dense.Certified {
		t.Errorf("certificates computed: %d at G=4 vs %d at G=64; want identical",
			sparse.Certified, dense.Certified)
	}
	if want := int64(sparse.Graphs * len(sparse.Concepts)); sparse.Certified != want {
		t.Errorf("certified %d, want one per (class, concept) = %d", sparse.Certified, want)
	}
	// The sparse grid is a prefix of the dense one: verdict vectors on the
	// shared α values must match.
	for ai := range sparseOpts.Alphas {
		for gi := 0; gi < sparse.Graphs; gi++ {
			sv := sparse.Items[ai*sparse.Graphs+gi].Vector
			dv := dense.Items[ai*dense.Graphs+gi].Vector
			if sv != dv {
				t.Errorf("α=%s class %d: G=4 vector %09b != G=64 vector %09b",
					sparseOpts.Alphas[ai], gi, sv, dv)
			}
		}
	}
	// Critical structure is a property of the classes, not the grid.
	if got, want := sparse.CriticalReport(), dense.CriticalReport(); got != want {
		t.Errorf("critical reports differ across grid density:\n%s\nvs\n%s", got, want)
	}
	if sparse.CriticalReport() == "" || !strings.Contains(sparse.CriticalReport(), "breakpoints") {
		t.Errorf("critical report empty or malformed:\n%s", sparse.CriticalReport())
	}
}

// TestSweepCertsAnswerItems: every grid verdict in Items is exactly the
// certificate's answer at that α — the certificates in Result.Certs are
// the authoritative parametric object the grid was read off of.
func TestSweepCertsAnswerItems(t *testing.T) {
	res := mustRun(t, latticeOptions(4, 4, NewCache()))
	if len(res.Certs) != res.Graphs*len(res.Concepts) {
		t.Fatalf("%d certificates for %d classes × %d concepts",
			len(res.Certs), res.Graphs, len(res.Concepts))
	}
	for _, it := range res.Items {
		for ci := range res.Concepts {
			if got, want := it.Vector.Stable(ci), res.Cert(it.GraphIndex, ci).Contains(res.Alphas[it.AlphaIndex]); got != want {
				t.Errorf("α=%s class %d %s: vector bit %v != certificate %v",
					res.Alphas[it.AlphaIndex], it.GraphIndex, res.Concepts[ci], got, want)
			}
		}
	}
}

// TestSweepCriticalDeterministic: the critical report is identical across
// worker counts and cache states, like every other sweep output.
func TestSweepCriticalDeterministic(t *testing.T) {
	one := mustRun(t, latticeOptions(4, 1, NewCache()))
	cache := NewCache()
	cold := mustRun(t, latticeOptions(4, 8, cache))
	warm := mustRun(t, latticeOptions(4, 8, cache))
	for _, other := range []*Result{cold, warm} {
		if got, want := other.CriticalReport(), one.CriticalReport(); got != want {
			t.Errorf("critical reports differ:\n%s\nvs\n%s", got, want)
		}
	}
	if len(warm.Critical) != len(warm.Concepts) {
		t.Fatalf("%d critical entries for %d concepts", len(warm.Critical), len(warm.Concepts))
	}
	// The K4 class flips RE at α=1: the RE row must report breakpoint 1.
	found := false
	for _, a := range warm.Critical[0].Alphas {
		if a == game.A(1) {
			found = true
		}
	}
	if warm.Critical[0].Concept != eq.RE || !found {
		t.Errorf("RE critical row %v misses the clique breakpoint α=1", warm.Critical[0])
	}
}
