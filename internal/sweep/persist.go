package sweep

import (
	"fmt"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/store"
)

// This file bridges the in-memory verdict cache to the on-disk store of
// repro/internal/store: WarmStart replays persisted verdicts into a cache
// at open, Persist registers the store as the cache's write-behind sink,
// and Checkpoint round-trips a sweep's grid spec through the store so an
// interrupted run can be resumed.

// storeIntervals converts a certificate to its persistence form.
func storeIntervals(set eq.AlphaSet) []store.Interval {
	ivs := set.Intervals()
	out := make([]store.Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = store.Interval{
			LoNum: iv.Lo.Num, LoDen: iv.Lo.Den,
			LoOpen: iv.LoOpen, HiOpen: iv.HiOpen,
		}
		if iv.Hi.IsInf() {
			out[i].HiInf, out[i].HiOpen = true, false
		} else {
			out[i].HiNum, out[i].HiDen = iv.Hi.Num, iv.Hi.Den
		}
	}
	return out
}

// alphaSetOfStore rebuilds a certificate from its persistence form. The
// store validated interval shape at decode; AlphaSetOf re-validates order
// and disjointness, so a corrupted certificate fails loudly at warm-start
// instead of answering queries wrong.
func alphaSetOfStore(ivs []store.Interval) eq.AlphaSet {
	out := make([]eq.AlphaInterval, len(ivs))
	for i, iv := range ivs {
		out[i] = eq.AlphaInterval{
			Lo:     eq.RatOf(iv.LoNum, iv.LoDen),
			LoOpen: iv.LoOpen,
			HiOpen: iv.HiOpen,
		}
		if iv.HiInf {
			out[i].Hi = eq.RatInf()
		} else {
			out[i].Hi = eq.RatOf(iv.HiNum, iv.HiDen)
		}
	}
	return eq.AlphaSetOf(out)
}

// WarmStart loads every record persisted in st into c — per-α verdicts
// and parametric certificates alike — and returns the number of records
// loaded. Loaded entries do not re-enter the store when Persist is also
// attached, and they count neither as hits nor misses.
//
// The two record types warm different paths: certificates feed the sweep
// engine (Run consults only the certificate cache, so its Critical report
// is always complete and deterministic), while per-α verdicts feed the
// Get/Put path of /v1/check. A store written before the certificate
// engine therefore no longer pre-warms sweeps — the first sweep
// re-certifies (and persists certificates, after which `store compact`
// folds the legacy rows away).
func (c *Cache) WarmStart(st *store.Store) int {
	n := 0
	st.Range(func(r store.Record) bool {
		c.insert(Key{Canon: r.Canon, Num: r.Num, Den: r.Den, Concept: eq.Concept(r.Concept), Variant: r.Variant}, r.Stable)
		n++
		return true
	})
	st.RangeCerts(func(r store.CertRecord) bool {
		c.insertCert(CertKey{Canon: r.Canon, Concept: eq.Concept(r.Concept), Variant: r.Variant}, alphaSetOfStore(r.Intervals))
		n++
		return true
	})
	return n
}

// Persist registers st as c's write-behind sink: every verdict and every
// certificate newly computed into the cache — by sweeps, PoA searches, or
// direct Puts — is appended to the store, which batches and fsyncs on its
// own schedule. Call WarmStart first; entries already persisted are never
// re-appended because the cache forwards only keys it had not seen.
// Persist(nil) detaches the sinks.
func (c *Cache) Persist(st *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st == nil {
		c.sink, c.sinkCert = nil, nil
		return
	}
	// Put/PutCert can only fail on I/O or a conflicting entry; the cache
	// has no error channel, so persistence degrades to best-effort and the
	// authoritative copy stays in memory.
	c.sink = func(k Key, stable bool) {
		_ = st.Put(store.Record{
			Canon:   k.Canon,
			Num:     k.Num,
			Den:     k.Den,
			Concept: uint8(k.Concept),
			Variant: k.Variant,
			Stable:  stable,
		})
	}
	c.sinkCert = func(k CertKey, set eq.AlphaSet) {
		_ = st.PutCert(store.CertRecord{
			Canon:     k.Canon,
			Concept:   uint8(k.Concept),
			Variant:   k.Variant,
			Intervals: storeIntervals(set),
		})
	}
}

// CheckpointVersion is the current schema generation of the checkpoint
// JSON. Generation history:
//
//	0 — (absent field) the unversioned checkpoints of PR 3–6; accepted on
//	    load and upgraded to the current generation on the next save.
//	2 — the first versioned generation. The version field exists because
//	    the fleet lease table embeds a Checkpoint as its grid spec and
//	    shares the checkpoint.json slot's atomic-write discipline: the two
//	    documents (and any future schema change to either) must be
//	    distinguishable on disk, not by guessing at field shapes.
//	3 — adds the game-variant descriptor. Version-2 documents load as the
//	    default variant (the field is omitted there); version-3 documents
//	    are rejected by older binaries, which cannot evaluate the variant
//	    they describe.
//
// Loading rejects generations newer than this binary understands, so an
// old worker cannot silently misread a future coordinator's table.
const CheckpointVersion = 3

// Checkpoint is the durable description of a sweep grid plus its progress,
// saved alongside the verdict segments (store.SaveCheckpoint) so `bncg
// sweep -resume` can rebuild the exact Options of an interrupted run. The
// α and concept grids are stored as their exact string forms.
type Checkpoint struct {
	Version   int      `json:"version,omitempty"`
	N         int      `json:"n"`
	Source    string   `json:"source"`
	Alphas    []string `json:"alphas"`
	Concepts  []string `json:"concepts"`
	Variant   string   `json:"variant,omitempty"`
	Rho       bool     `json:"rho"`
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
}

// NewCheckpoint captures the grid of opts with completed of total tasks
// done.
func NewCheckpoint(opts Options, total, completed int) Checkpoint {
	cp := Checkpoint{
		Version:   CheckpointVersion,
		N:         opts.N,
		Source:    opts.Source.String(),
		Variant:   opts.Variant.Key(),
		Rho:       opts.Rho,
		Total:     total,
		Completed: completed,
	}
	for _, a := range opts.Alphas {
		cp.Alphas = append(cp.Alphas, a.String())
	}
	for _, c := range opts.Concepts {
		cp.Concepts = append(cp.Concepts, c.String())
	}
	return cp
}

// Options rebuilds the sweep options the checkpoint describes. Worker
// count, cache and hooks are execution details, not grid spec, and are
// left zero for the caller to fill in. Unversioned checkpoints (the
// pre-fleet generation, Version 0) load unchanged — the field set is a
// strict superset of theirs — while generations newer than this binary's
// CheckpointVersion are rejected rather than misread.
func (cp Checkpoint) Options() (Options, error) {
	if cp.Version > CheckpointVersion {
		return Options{}, fmt.Errorf("sweep: checkpoint schema version %d is newer than this binary's %d", cp.Version, CheckpointVersion)
	}
	opts := Options{N: cp.N, Rho: cp.Rho}
	if cp.Variant != "" {
		v, err := game.ParseVariant(cp.Variant)
		if err != nil {
			return Options{}, fmt.Errorf("sweep: checkpoint variant: %w", err)
		}
		opts.Variant = v
	}
	switch cp.Source {
	case Graphs.String():
		opts.Source = Graphs
	case Trees.String():
		opts.Source = Trees
	default:
		return Options{}, fmt.Errorf("sweep: checkpoint with unknown source %q", cp.Source)
	}
	for _, s := range cp.Alphas {
		a, err := game.ParseAlpha(s)
		if err != nil {
			return Options{}, fmt.Errorf("sweep: checkpoint alpha: %w", err)
		}
		opts.Alphas = append(opts.Alphas, a)
	}
	for _, s := range cp.Concepts {
		c, err := eq.ParseConcept(s)
		if err != nil {
			return Options{}, fmt.Errorf("sweep: checkpoint concept: %w", err)
		}
		opts.Concepts = append(opts.Concepts, c)
	}
	return opts, nil
}
