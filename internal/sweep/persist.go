package sweep

import (
	"fmt"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/store"
)

// This file bridges the in-memory verdict cache to the on-disk store of
// repro/internal/store: WarmStart replays persisted verdicts into a cache
// at open, Persist registers the store as the cache's write-behind sink,
// and Checkpoint round-trips a sweep's grid spec through the store so an
// interrupted run can be resumed.

// WarmStart loads every verdict persisted in st into c and returns the
// number of records loaded. Loaded entries do not re-enter the store when
// Persist is also attached, and they count neither as hits nor misses.
func (c *Cache) WarmStart(st *store.Store) int {
	n := 0
	st.Range(func(r store.Record) bool {
		c.insert(Key{Canon: r.Canon, Num: r.Num, Den: r.Den, Concept: eq.Concept(r.Concept)}, r.Stable)
		n++
		return true
	})
	return n
}

// Persist registers st as c's write-behind sink: every verdict newly
// computed into the cache — by sweeps, PoA searches, or direct Puts — is
// appended to the store, which batches and fsyncs on its own schedule.
// Call WarmStart first; entries already persisted are never re-appended
// because the cache forwards only keys it had not seen. Persist(nil)
// detaches the sink.
func (c *Cache) Persist(st *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st == nil {
		c.sink = nil
		return
	}
	c.sink = func(k Key, stable bool) {
		// Put can only fail on I/O or a conflicting verdict; the cache has
		// no error channel, so persistence degrades to best-effort and the
		// authoritative copy stays in memory.
		_ = st.Put(store.Record{
			Canon:   k.Canon,
			Num:     k.Num,
			Den:     k.Den,
			Concept: uint8(k.Concept),
			Stable:  stable,
		})
	}
}

// Checkpoint is the durable description of a sweep grid plus its progress,
// saved alongside the verdict segments (store.SaveCheckpoint) so `bncg
// sweep -resume` can rebuild the exact Options of an interrupted run. The
// α and concept grids are stored as their exact string forms.
type Checkpoint struct {
	N         int      `json:"n"`
	Source    string   `json:"source"`
	Alphas    []string `json:"alphas"`
	Concepts  []string `json:"concepts"`
	Rho       bool     `json:"rho"`
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
}

// NewCheckpoint captures the grid of opts with completed of total tasks
// done.
func NewCheckpoint(opts Options, total, completed int) Checkpoint {
	cp := Checkpoint{
		N:         opts.N,
		Source:    opts.Source.String(),
		Rho:       opts.Rho,
		Total:     total,
		Completed: completed,
	}
	for _, a := range opts.Alphas {
		cp.Alphas = append(cp.Alphas, a.String())
	}
	for _, c := range opts.Concepts {
		cp.Concepts = append(cp.Concepts, c.String())
	}
	return cp
}

// Options rebuilds the sweep options the checkpoint describes. Worker
// count, cache and hooks are execution details, not grid spec, and are
// left zero for the caller to fill in.
func (cp Checkpoint) Options() (Options, error) {
	opts := Options{N: cp.N, Rho: cp.Rho}
	switch cp.Source {
	case Graphs.String():
		opts.Source = Graphs
	case Trees.String():
		opts.Source = Trees
	default:
		return Options{}, fmt.Errorf("sweep: checkpoint with unknown source %q", cp.Source)
	}
	for _, s := range cp.Alphas {
		a, err := game.ParseAlpha(s)
		if err != nil {
			return Options{}, fmt.Errorf("sweep: checkpoint alpha: %w", err)
		}
		opts.Alphas = append(opts.Alphas, a)
	}
	for _, s := range cp.Concepts {
		c, err := eq.ParseConcept(s)
		if err != nil {
			return Options{}, fmt.Errorf("sweep: checkpoint concept: %w", err)
		}
		opts.Concepts = append(opts.Concepts, c)
	}
	return opts, nil
}
