// Package sweep implements a parallel sweep engine for the exhaustive
// experiments: it shards an isomorphism-free graph stream (all connected
// graphs or all free trees on n nodes) across a worker pool and evaluates a
// grid of edge prices × solution concepts on every graph with the exact
// checkers of package eq.
//
// Three properties make the engine safe to drop under the paper-reproduction
// experiments:
//
//   - Determinism. Results are indexed by (α, graph) task id, so Items and
//     Report are byte-identical for every worker count, and the streaming
//     path delivers items in exactly that α-major order. Nothing about
//     scheduling leaks into the output.
//   - Isolation. Checkers mutate the graph under test while exploring moves,
//     so each task evaluates a private clone with a per-worker Evaluator;
//     the enumeration representatives handed back in Items are never
//     mutated.
//   - Memoization. Stability is an isomorphism invariant, so verdicts are
//     cached under (canonical form, α, concept). Repeated gadgets and
//     overlapping α grids across sweeps hit the cache instead of re-running
//     coalition search. The cache can only reuse verdicts, never change
//     them; the differential tests pin cached and parallel sweeps to the
//     sequential checkers bit for bit.
//
// The enumeration feeding the grid is symmetry-pruned (graph.AllClasses):
// non-minimal labelings are rejected by an early-aborting automorphism
// search instead of being canonicalized and deduplicated, so each
// isomorphism class is canonicalized exactly once and its orbit size is
// reported in Result.Orbits. Checks run on per-worker eq.Evaluators over
// the bitset adjacency kernel, which allocate nothing per verdict at sweep
// sizes.
//
// Workers claim tasks from a shared atomic counter — idle workers steal the
// next undone (α, graph) pair, so a single expensive BSE instance cannot
// stall the rest of the grid behind a static partition.
//
// Every entry point takes a context.Context. Cancelling it stops the sweep
// within one task granularity: workers check the context between tasks,
// drain without leaking goroutines, and Run returns the partial Result
// (completed tasks filled in, Completed counting them) together with
// ctx.Err().
package sweep

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

// Source selects the graph stream a sweep shards across its workers.
type Source int

const (
	// Graphs streams every connected graph on N nodes, up to isomorphism.
	Graphs Source = iota
	// Trees streams every free tree on N nodes.
	Trees
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case Graphs:
		return "graphs"
	case Trees:
		return "trees"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Options configures a sweep.
type Options struct {
	// N is the node count of the enumerated graphs.
	N int
	// Alphas is the edge-price grid; every graph is evaluated at every α.
	Alphas []game.Alpha
	// Concepts are the solution concepts checked per (graph, α) pair. At
	// most 16, so a stability vector fits a Vector.
	Concepts []eq.Concept
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
	// Source selects connected graphs (the default) or free trees.
	Source Source
	// Cache, when non-nil, memoizes verdicts across sweeps under
	// (canonical form, α, concept). Nil disables memoization.
	Cache *Cache
	// Rho additionally computes the social cost ratio ρ of every graph,
	// for Price-of-Anarchy reductions over the sweep.
	Rho bool
	// OnItem, when non-nil, receives every completed Item incrementally in
	// the deterministic α-major order of Result.Items — the same order at
	// every worker count. It is called from the coordinating goroutine
	// (never concurrently) while workers keep computing.
	OnItem func(Item)
	// Progress, when non-nil, is called from the coordinating goroutine
	// after each completed task with (done, total). Completion order is
	// scheduling-dependent; only the counts are reported.
	Progress func(done, total int)
}

// Vector is a stability bit vector over a sweep's concept grid: bit i is
// set iff the state is stable for Concepts[i].
type Vector uint16

// Stable reports whether bit i is set.
func (v Vector) Stable(i int) bool { return v&(1<<i) != 0 }

// Item is the outcome for one (α, graph) task.
type Item struct {
	// AlphaIndex and GraphIndex locate the task on the sweep grid.
	AlphaIndex, GraphIndex int
	// Graph is the enumeration representative. It is shared with every
	// item of the same GraphIndex and must not be mutated.
	Graph *graph.Graph
	// Vector holds the stability verdicts, bit i for Concepts[i].
	Vector Vector
	// Rho is the social cost ratio, when Options.Rho was set.
	Rho float64
	// FromCache reports that every verdict was served by the cache.
	FromCache bool
}

// Result is the outcome of a sweep.
type Result struct {
	N        int
	Source   Source
	Alphas   []game.Alpha
	Concepts []eq.Concept
	// Workers is the resolved pool size that ran the sweep. It never
	// influences Items or Report.
	Workers int
	// Graphs counts the isomorphism classes in the stream.
	Graphs int
	// Items holds one entry per (α, graph) pair in deterministic α-major
	// order: Items[ai*Graphs+gi] is graph gi at Alphas[ai], with graphs in
	// enumeration order.
	Items []Item
	// Orbits holds each enumerated class's orbit size n!/|Aut| — the number
	// of labeled graphs the symmetry-pruned enumeration folded into the
	// representative — indexed like Item.GraphIndex. It is diagnostic and
	// not part of the serialized result.
	Orbits []int64
	// Completed counts the tasks that finished. It equals len(Items)
	// unless the sweep was cancelled, in which case the unfinished entries
	// of Items are zero values.
	Completed int
	// Hits and Misses count per-concept verdicts served by the cache and
	// computed by checkers, respectively.
	Hits, Misses int64
}

// Run executes the sweep described by opts. Cancelling ctx stops the sweep
// within one task granularity; Run then still returns the partial Result —
// every task completed before cancellation is filled in and counted by
// Completed — along with ctx.Err(). A nil Result is returned only for
// invalid options.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("sweep: need at least one node, got %d", opts.N)
	}
	if len(opts.Alphas) == 0 {
		return nil, fmt.Errorf("sweep: empty α grid")
	}
	if len(opts.Concepts) == 0 {
		return nil, fmt.Errorf("sweep: no concepts to check")
	}
	if len(opts.Concepts) > 16 {
		return nil, fmt.Errorf("sweep: %d concepts exceed the 16-bit vector", len(opts.Concepts))
	}
	games := make([]game.Game, len(opts.Alphas))
	for i, alpha := range opts.Alphas {
		gm, err := game.NewGame(opts.N, alpha)
		if err != nil {
			return nil, err
		}
		games[i] = gm
	}

	res := &Result{
		N:        opts.N,
		Source:   opts.Source,
		Alphas:   opts.Alphas,
		Concepts: opts.Concepts,
		Workers:  opts.Workers,
	}
	if res.Workers <= 0 {
		res.Workers = runtime.GOMAXPROCS(0)
	}

	// Materialize the isomorphism-free stream once; the per-class canonical
	// keys and orbit sizes come for free from the enumeration's own
	// symmetry pruning, which skips non-minimal labelings without
	// canonicalizing them. The iterator is polled against ctx so a
	// cancelled sweep stops enumerating too.
	var stream iter.Seq2[*graph.Graph, graph.Class]
	switch opts.Source {
	case Graphs:
		stream = graph.AllClasses(opts.N, graph.EnumOptions{
			ConnectedOnly: true,
			UpToIso:       true,
			MaxEdges:      -1,
		})
	case Trees:
		stream = graph.AllFreeTreeClasses(opts.N)
	default:
		return nil, fmt.Errorf("sweep: unknown source %v", opts.Source)
	}
	var graphs []*graph.Graph
	var keys []string
	for g, cl := range stream {
		if ctx.Err() != nil {
			break
		}
		graphs = append(graphs, g)
		keys = append(keys, cl.Key)
		res.Orbits = append(res.Orbits, cl.Orbit)
	}
	res.Graphs = len(graphs)
	res.Items = make([]Item, len(graphs)*len(opts.Alphas))
	if err := ctx.Err(); err != nil {
		// Cancelled during enumeration: the grid is unreliable, report it
		// as an empty partial result.
		res.Graphs, res.Items, res.Orbits = 0, nil, nil
		return res, err
	}

	total := len(res.Items)
	allMask := Vector(1)<<len(opts.Concepts) - 1
	var next, hits, misses atomic.Int64
	// The channel buffers every possible task, so a worker's send never
	// blocks and cancellation cannot strand a worker mid-handoff.
	type completion struct {
		t  int
		it Item
	}
	completions := make(chan completion, total)
	var wg sync.WaitGroup
	for w := 0; w < res.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := eq.NewEvaluator()
			for ctx.Err() == nil {
				t := int(next.Add(1)) - 1
				if t >= total {
					return
				}
				ai, gi := t/len(graphs), t%len(graphs)
				g := graphs[gi]
				it := Item{AlphaIndex: ai, GraphIndex: gi, Graph: g}
				vec, missing := Vector(0), allMask
				if opts.Cache != nil {
					vec, missing = opts.Cache.lookup(keys[gi], opts.Alphas[ai], opts.Concepts)
				}
				hits.Add(int64(popcount16(allMask &^ missing)))
				misses.Add(int64(popcount16(missing)))
				if missing == 0 {
					it.FromCache = true
				} else {
					// Evaluate on a private clone: checkers mutate the
					// graph while exploring moves. Bind computes the
					// baseline agent costs once for the whole concept
					// grid of the task.
					h := g.Clone()
					ev.Bind(games[ai], h)
					for i, concept := range opts.Concepts {
						if missing&(1<<i) == 0 {
							continue
						}
						if ev.CheckBound(concept).Stable {
							vec |= 1 << i
						}
					}
					if opts.Cache != nil {
						opts.Cache.store(keys[gi], opts.Alphas[ai], opts.Concepts, missing, vec)
					}
				}
				it.Vector = vec
				if opts.Rho {
					// The evaluator's scratch-buffer ρ is bit-identical to
					// games[ai].Rho(g); g is only read, so sharing it
					// across workers is safe.
					it.Rho = ev.Rho(games[ai], g)
				}
				completions <- completion{t, it}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	// Coordinate: collect completions (in scheduling order), emit OnItem in
	// strict task order. The range ends when every worker has drained —
	// either all tasks are done or ctx fired — so no goroutine outlives Run.
	have := make([]bool, total)
	emitted := 0
	for c := range completions {
		res.Items[c.t] = c.it
		have[c.t] = true
		res.Completed++
		if opts.Progress != nil {
			opts.Progress(res.Completed, total)
		}
		if opts.OnItem != nil {
			for emitted < total && have[emitted] {
				opts.OnItem(res.Items[emitted])
				emitted++
			}
		}
	}
	res.Hits, res.Misses = hits.Load(), misses.Load()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// Stream executes the sweep described by opts and returns an iterator over
// its Items, delivered incrementally in the same deterministic α-major
// order as Result.Items — byte-identical at every worker count. Breaking
// out of the range cancels the underlying sweep, which drains its workers
// before the iterator returns. A caller-supplied Options.OnItem still
// fires, immediately before each item is yielded (and for items completing
// after an early break). Invalid options yield an empty sequence; use Run
// with Options.OnItem when the error or the final Result is needed.
func Stream(ctx context.Context, opts Options) iter.Seq[Item] {
	return func(yield func(Item) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		callerHook := opts.OnItem
		stopped := false
		opts.OnItem = func(it Item) {
			if callerHook != nil {
				callerHook(it)
			}
			if stopped {
				return
			}
			if !yield(it) {
				stopped = true
				cancel()
			}
		}
		_, _ = Run(ctx, opts)
	}
}

// Report renders a deterministic summary: the stream size and, per α, how
// many graphs are stable for each concept. Equal option grids produce
// byte-identical reports for every worker count and cache state. On a
// cancelled sweep the counts cover only the completed tasks.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep n=%d source=%s: %d graphs × %d α × %d concepts\n",
		r.N, r.Source, r.Graphs, len(r.Alphas), len(r.Concepts))
	fmt.Fprintf(&b, "%8s", "α")
	for _, c := range r.Concepts {
		fmt.Fprintf(&b, " %6s", c)
	}
	b.WriteByte('\n')
	for ai, alpha := range r.Alphas {
		counts := make([]int, len(r.Concepts))
		for gi := 0; gi < r.Graphs; gi++ {
			vec := r.Items[ai*r.Graphs+gi].Vector
			for i := range counts {
				if vec.Stable(i) {
					counts[i]++
				}
			}
		}
		fmt.Fprintf(&b, "%8s", alpha)
		for _, c := range counts {
			fmt.Fprintf(&b, " %6d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WorstStable reduces one grid cell to its Price-of-Anarchy outcome: the
// maximal ρ over the graphs stable for Concepts[ci] at Alphas[ai], the
// first witness attaining it in enumeration order, and the count of stable
// graphs. It requires a sweep run with Options.Rho.
func (r *Result) WorstStable(ai, ci int) (rho float64, witness *graph.Graph, stable int) {
	for gi := 0; gi < r.Graphs; gi++ {
		it := r.Items[ai*r.Graphs+gi]
		if !it.Vector.Stable(ci) {
			continue
		}
		stable++
		if it.Rho > rho {
			rho = it.Rho
			witness = it.Graph
		}
	}
	return rho, witness, stable
}

func popcount16(v Vector) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}
