// Package sweep implements a parallel sweep engine for the exhaustive
// experiments: it shards an isomorphism-free graph stream (all connected
// graphs or all free trees on n nodes) across a worker pool and evaluates a
// grid of edge prices × solution concepts on every graph with the exact
// checkers of package eq.
//
// Three properties make the engine safe to drop under the paper-reproduction
// experiments:
//
//   - Determinism. Results are indexed by (α, graph) task id, so Items and
//     Report are byte-identical for every worker count, and the streaming
//     path delivers items in exactly that α-major order. Nothing about
//     scheduling leaks into the output.
//   - Isolation. Checkers mutate the graph under test while exploring moves,
//     so each task evaluates a private clone with a per-worker Evaluator;
//     the enumeration representatives handed back in Items are never
//     mutated.
//   - Memoization. Stability is an isomorphism invariant, so the engine
//     caches parametric certificates under (canonical form, concept): one
//     eq.AlphaSet answers every edge price at once (v5). Repeated gadgets
//     and arbitrarily dense or shifted α grids across sweeps hit the
//     certificate cache instead of re-running coalition search — per-class
//     equilibrium work is independent of the grid density. The cache can
//     only reuse certificates, never change them; the differential tests
//     pin cached and parallel sweeps to the sequential checkers bit for
//     bit, and the certificate fuzz harness pins every certificate to the
//     per-α checkers across a dense rational grid.
//
// The enumeration feeding the grid is symmetry-pruned (graph.AllClasses):
// non-minimal labelings are rejected by an early-aborting automorphism
// search instead of being canonicalized and deduplicated, so each
// isomorphism class is canonicalized exactly once and its orbit size is
// reported in Result.Orbits. Checks run on per-worker eq.Evaluators over
// the bitset adjacency kernel, which allocate nothing per verdict at sweep
// sizes.
//
// Workers claim tasks from a shared atomic counter — one task per graph
// class (v5: a class's certificates answer its whole α-row at once), so a
// single expensive BSE instance cannot stall the rest of the stream
// behind a static partition.
//
// Every entry point takes a context.Context. Cancelling it stops the sweep
// within one class granularity: workers check the context between classes,
// drain without leaking goroutines, and Run returns the partial Result
// (completed items filled in, Completed counting them) together with
// ctx.Err().
package sweep

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Source selects the graph stream a sweep shards across its workers.
type Source int

const (
	// Graphs streams every connected graph on N nodes, up to isomorphism.
	Graphs Source = iota
	// Trees streams every free tree on N nodes.
	Trees
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case Graphs:
		return "graphs"
	case Trees:
		return "trees"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Options configures a sweep.
type Options struct {
	// N is the node count of the enumerated graphs.
	N int
	// Alphas is the edge-price grid; every graph is evaluated at every α.
	Alphas []game.Alpha
	// Concepts are the solution concepts checked per (graph, α) pair. At
	// most 16, so a stability vector fits a Vector.
	Concepts []eq.Concept
	// Variant selects the game variant every check and certificate runs
	// under — consent mode, distance aggregate, per-agent price
	// multipliers. The zero value is the paper's bilateral SUM model, and a
	// default-variant sweep is byte-identical to one that predates the
	// field. Certificates cache and persist under the variant's canonical
	// descriptor, so variants never contaminate each other's entries.
	Variant game.Variant
	// Workers is the worker-pool size; values <= 0 select GOMAXPROCS.
	Workers int
	// Source selects connected graphs (the default) or free trees.
	Source Source
	// ClassStart and ClassEnd restrict the sweep to the half-open range
	// [ClassStart, ClassEnd) of positions in the pruned class stream — the
	// work-sharding primitive of the fleet subsystem: the stream order is
	// deterministic (minimal-mask order for graphs, generation order for
	// trees), so disjoint position ranges partition the classes exactly and
	// every worker sees the same class at the same position. ClassEnd <= 0
	// means the end of the stream. Item.GraphIndex is local to the range
	// (the first enumerated class of the range has index 0).
	ClassStart, ClassEnd int
	// Cache, when non-nil, memoizes parametric stability certificates
	// across sweeps under (canonical form, concept) — one certificate
	// answers every α grid. Nil disables memoization.
	Cache *Cache
	// Rho additionally computes the social cost ratio ρ of every graph,
	// for Price-of-Anarchy reductions over the sweep.
	Rho bool
	// OnItem, when non-nil, receives every completed Item incrementally in
	// the deterministic α-major order of Result.Items — the same order at
	// every worker count. It is called from the coordinating goroutine
	// (never concurrently) while workers keep computing.
	OnItem func(Item)
	// Progress, when non-nil, is called from the coordinating goroutine
	// after each completed task with (done, total). Completion order is
	// scheduling-dependent; only the counts are reported.
	Progress func(done, total int)
	// Trace, when non-nil, records spans for the sweep's stages: one
	// "enumerate" span for materializing the class stream, a "class" span
	// per completed class (attrs: absolute class position, worker index,
	// cached), and nested "certify"/"cache_write" spans for each fresh
	// certificate scan. A nil Tracer costs one pointer check per class.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives class/certify completions for the
	// sidecar exposition (bncg sweep/worker -metrics-addr).
	Metrics *obs.ComputeMetrics
}

// Vector is a stability bit vector over a sweep's concept grid: bit i is
// set iff the state is stable for Concepts[i].
type Vector uint16

// Stable reports whether bit i is set.
func (v Vector) Stable(i int) bool { return v&(1<<i) != 0 }

// Item is the outcome for one (α, graph) task.
type Item struct {
	// AlphaIndex and GraphIndex locate the task on the sweep grid.
	AlphaIndex, GraphIndex int
	// Graph is the enumeration representative. It is shared with every
	// item of the same GraphIndex and must not be mutated.
	Graph *graph.Graph
	// Vector holds the stability verdicts, bit i for Concepts[i].
	Vector Vector
	// Rho is the social cost ratio, when Options.Rho was set.
	Rho float64
	// FromCache reports that every verdict was served by the cache.
	FromCache bool
}

// ConceptCritical is one concept's exact critical-price report: the
// sorted rational α values at which some enumerated class's stability
// verdict flips. Between consecutive breakpoints (and on each breakpoint
// itself — stable sets may be closed or even degenerate there) every
// class's verdict, and therefore every Table 1 row, is constant.
type ConceptCritical struct {
	Concept eq.Concept
	Alphas  []game.Alpha
}

// Result is the outcome of a sweep.
type Result struct {
	N        int
	Source   Source
	Alphas   []game.Alpha
	Concepts []eq.Concept
	// Variant is the game variant the sweep ran under (zero value: the
	// paper's default model).
	Variant game.Variant
	// Workers is the resolved pool size that ran the sweep. It never
	// influences Items or Report.
	Workers int
	// Graphs counts the isomorphism classes in the stream.
	Graphs int
	// Items holds one entry per (α, graph) pair in deterministic α-major
	// order: Items[ai*Graphs+gi] is graph gi at Alphas[ai], with graphs in
	// enumeration order.
	Items []Item
	// Orbits holds each enumerated class's orbit size n!/|Aut| — the number
	// of labeled graphs the symmetry-pruned enumeration folded into the
	// representative — indexed like Item.GraphIndex. It is diagnostic and
	// not part of the serialized result.
	Orbits []int64
	// Completed counts the tasks that finished. It equals len(Items)
	// unless the sweep was cancelled, in which case the unfinished entries
	// of Items are zero values.
	Completed int
	// Hits and Misses count per-concept verdicts served by the cache and
	// answered by freshly computed certificates, respectively — verdict
	// units (one per grid α), so the counters compare across engine
	// generations even though work is now done per certificate.
	Hits, Misses int64
	// Certs holds the exact stable-α certificate of every (class, concept)
	// pair, indexed Certs[gi*len(Concepts)+ci] — the parametric object the
	// grid verdicts in Items are read off of. Classes unfinished on a
	// cancelled sweep hold zero-value (empty) sets.
	Certs []eq.AlphaSet
	// Critical reports, per concept, the exact rational α breakpoints at
	// which any class's verdict flips — the sweep's grid answers upgraded
	// to whole-axis answers. It is nil on a cancelled (partial) sweep.
	Critical []ConceptCritical
	// Certified counts the certificates computed by scans this run (as
	// opposed to served from the cache). It is independent of the α-grid
	// density: the O(1)-per-α property BenchmarkSweepGridScaling pins.
	Certified int64
}

// Cert returns the certificate of graph class gi under Concepts[ci].
func (r *Result) Cert(gi, ci int) eq.AlphaSet { return r.Certs[gi*len(r.Concepts)+ci] }

// Run executes the sweep described by opts. Cancelling ctx stops the sweep
// within one task granularity; Run then still returns the partial Result —
// every task completed before cancellation is filled in and counted by
// Completed — along with ctx.Err(). A nil Result is returned only for
// invalid options.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("sweep: need at least one node, got %d", opts.N)
	}
	if len(opts.Alphas) == 0 {
		return nil, fmt.Errorf("sweep: empty α grid")
	}
	if len(opts.Concepts) == 0 {
		return nil, fmt.Errorf("sweep: no concepts to check")
	}
	if len(opts.Concepts) > 16 {
		return nil, fmt.Errorf("sweep: %d concepts exceed the 16-bit vector", len(opts.Concepts))
	}
	if opts.ClassStart < 0 {
		return nil, fmt.Errorf("sweep: negative class range start %d", opts.ClassStart)
	}
	if opts.ClassEnd > 0 && opts.ClassEnd <= opts.ClassStart {
		return nil, fmt.Errorf("sweep: empty class range [%d, %d)", opts.ClassStart, opts.ClassEnd)
	}
	if err := opts.Variant.Validate(opts.N); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if opts.Rho && !opts.Variant.IsDefault() {
		// ρ normalizes by OptCost, whose closed forms are specific to the
		// default model; a variant ρ would silently compare against the
		// wrong optimum.
		return nil, fmt.Errorf("sweep: rho is defined for the default variant only")
	}
	games := make([]game.Game, len(opts.Alphas))
	for i, alpha := range opts.Alphas {
		gm, err := game.NewGame(opts.N, alpha)
		if err != nil {
			return nil, err
		}
		gm.Variant = opts.Variant
		games[i] = gm
	}

	res := &Result{
		N:        opts.N,
		Source:   opts.Source,
		Alphas:   opts.Alphas,
		Concepts: opts.Concepts,
		Variant:  opts.Variant,
		Workers:  opts.Workers,
	}
	if res.Workers <= 0 {
		res.Workers = runtime.GOMAXPROCS(0)
	}

	// Materialize the isomorphism-free stream once; the per-class canonical
	// keys and orbit sizes come for free from the enumeration's own
	// symmetry pruning, which skips non-minimal labelings without
	// canonicalizing them. The iterator is polled against ctx so a
	// cancelled sweep stops enumerating too.
	stream, err := classStream(opts.N, opts.Source)
	if err != nil {
		return nil, err
	}
	enumSpan := opts.Trace.Start("enumerate")
	var graphs []*graph.Graph
	var keys []string
	pos := 0
	for g, cl := range stream {
		if ctx.Err() != nil {
			break
		}
		if pos < opts.ClassStart {
			pos++
			continue
		}
		if opts.ClassEnd > 0 && pos >= opts.ClassEnd {
			break
		}
		pos++
		graphs = append(graphs, g)
		keys = append(keys, cl.Key)
		res.Orbits = append(res.Orbits, cl.Orbit)
	}
	res.Graphs = len(graphs)
	enumSpan.End(obs.Attrs{"classes": len(graphs), "n": opts.N, "source": opts.Source.String()})
	res.Items = make([]Item, len(graphs)*len(opts.Alphas))
	if err := ctx.Err(); err != nil {
		// Cancelled during enumeration: the grid is unreliable, report it
		// as an empty partial result.
		res.Graphs, res.Items, res.Orbits = 0, nil, nil
		return res, err
	}

	total := len(res.Items)
	nAlphas := len(opts.Alphas)
	vkey := opts.Variant.Key()
	res.Certs = make([]eq.AlphaSet, len(graphs)*len(opts.Concepts))
	var next, hits, misses, certified atomic.Int64
	// The task unit is one graph class: a worker fetches (or computes) one
	// certificate per concept and reads the entire α-row of verdicts off
	// it, so per-class equilibrium work is independent of the grid density.
	// The channel buffers every possible task, so a worker's send never
	// blocks and cancellation cannot strand a worker mid-handoff.
	type completion struct {
		gi    int
		items []Item        // one per α, in α order
		certs []eq.AlphaSet // one per concept
	}
	completions := make(chan completion, len(graphs))
	var wg sync.WaitGroup
	for w := 0; w < res.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := eq.NewEvaluator()
			for ctx.Err() == nil {
				gi := int(next.Add(1)) - 1
				if gi >= len(graphs) {
					return
				}
				g := graphs[gi]
				classSpan := opts.Trace.Start("class")
				items := make([]Item, nAlphas)
				certs := make([]eq.AlphaSet, len(opts.Concepts))
				fromCache := true
				bound := false
				for ci, concept := range opts.Concepts {
					set, ok := eq.AlphaSet{}, false
					if opts.Cache != nil {
						set, ok = opts.Cache.lookupCert(CertKey{Canon: keys[gi], Concept: concept, Variant: vkey}, nAlphas)
					}
					if ok {
						hits.Add(int64(nAlphas))
					} else {
						misses.Add(int64(nAlphas))
						fromCache = false
						if !bound {
							// Certify on a private clone: the scans mutate
							// the graph while exploring deviations. One Bind
							// computes the (α-independent) baseline agent
							// costs for the whole concept grid of the class.
							ev.Bind(games[0], g.Clone())
							bound = true
						}
						var certT0 time.Time
						if opts.Metrics != nil {
							certT0 = time.Now()
						}
						certSpan := opts.Trace.Start("certify")
						set = ev.CertifyBound(concept)
						// The nil-guards around End keep the disabled path
						// allocation-free: the Attrs literal is only built
						// when a frame will actually be written.
						if certSpan != nil {
							certSpan.End(obs.Attrs{"class": opts.ClassStart + gi, "concept": concept.String()})
						}
						if opts.Metrics != nil {
							opts.Metrics.CertifyObserved(time.Since(certT0))
						}
						certified.Add(1)
						if opts.Cache != nil {
							writeSpan := opts.Trace.Start("cache_write")
							opts.Cache.PutCert(CertKey{Canon: keys[gi], Concept: concept, Variant: vkey}, set)
							if writeSpan != nil {
								writeSpan.End(obs.Attrs{"class": opts.ClassStart + gi, "concept": concept.String()})
							}
						}
					}
					certs[ci] = set
					for ai := range opts.Alphas {
						if set.Contains(opts.Alphas[ai]) {
							items[ai].Vector |= 1 << ci
						}
					}
				}
				for ai := range items {
					items[ai].AlphaIndex, items[ai].GraphIndex = ai, gi
					items[ai].Graph = g
					items[ai].FromCache = fromCache
					if opts.Rho {
						// The evaluator's scratch-buffer ρ is bit-identical
						// to games[ai].Rho(g); g is only read, so sharing it
						// across workers is safe.
						items[ai].Rho = ev.Rho(games[ai], g)
					}
				}
				if classSpan != nil {
					classSpan.End(obs.Attrs{"class": opts.ClassStart + gi, "cached": fromCache, "worker": w})
				}
				opts.Metrics.ClassDone(fromCache)
				completions <- completion{gi, items, certs}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	// Coordinate: collect class completions (in scheduling order), emit
	// OnItem in strict α-major item order and Progress once per item. The
	// range ends when every worker has drained — either all tasks are done
	// or ctx fired — so no goroutine outlives Run.
	have := make([]bool, total)
	emitted := 0
	for c := range completions {
		for ai := range c.items {
			t := ai*len(graphs) + c.gi
			res.Items[t] = c.items[ai]
			have[t] = true
			res.Completed++
			if opts.Progress != nil {
				opts.Progress(res.Completed, total)
			}
		}
		copy(res.Certs[c.gi*len(opts.Concepts):(c.gi+1)*len(opts.Concepts)], c.certs)
		if opts.OnItem != nil {
			for emitted < total && have[emitted] {
				opts.OnItem(res.Items[emitted])
				emitted++
			}
		}
	}
	res.Hits, res.Misses, res.Certified = hits.Load(), misses.Load(), certified.Load()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Critical = criticalOf(res)
	return res, nil
}

// classStream returns the symmetry-pruned class stream of a source: the
// deterministic enumeration every sweep — whole or range-restricted —
// shards by position.
func classStream(n int, source Source) (iter.Seq2[*graph.Graph, graph.Class], error) {
	switch source {
	case Graphs:
		return graph.AllClasses(n, graph.EnumOptions{
			ConnectedOnly: true,
			UpToIso:       true,
			MaxEdges:      -1,
		}), nil
	case Trees:
		return graph.AllFreeTreeClasses(n), nil
	default:
		return nil, fmt.Errorf("sweep: unknown source %v", source)
	}
}

// CountClasses counts the isomorphism classes in a source's pruned stream
// without evaluating anything — the fleet coordinator's planning pass,
// which turns the stream into contiguous [start, end) work ranges. The
// count only enumerates (no canonical keys are kept), so it is cheap
// relative to certification. Cancelling ctx aborts the count with
// ctx.Err().
func CountClasses(ctx context.Context, n int, source Source) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n < 1 {
		return 0, fmt.Errorf("sweep: need at least one node, got %d", n)
	}
	stream, err := classStream(n, source)
	if err != nil {
		return 0, err
	}
	count := 0
	for range stream {
		if err := ctx.Err(); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// criticalOf aggregates the per-class certificates into the per-concept
// critical-price report: the sorted union of every class's breakpoints.
// The union over a set is order-independent, so the report is identical
// at every worker count.
func criticalOf(r *Result) []ConceptCritical {
	out := make([]ConceptCritical, len(r.Concepts))
	for ci, concept := range r.Concepts {
		seen := make(map[game.Alpha]bool)
		for gi := 0; gi < r.Graphs; gi++ {
			for _, bp := range r.Cert(gi, ci).Breakpoints() {
				seen[bp] = true
			}
		}
		alphas := make([]game.Alpha, 0, len(seen))
		for a := range seen {
			alphas = append(alphas, a)
		}
		sort.Slice(alphas, func(i, j int) bool {
			return alphas[i].Num()*alphas[j].Den() < alphas[j].Num()*alphas[i].Den()
		})
		out[ci] = ConceptCritical{Concept: concept, Alphas: alphas}
	}
	return out
}

// Stream executes the sweep described by opts and returns an iterator over
// its Items, delivered incrementally in the same deterministic α-major
// order as Result.Items — byte-identical at every worker count. Breaking
// out of the range cancels the underlying sweep, which drains its workers
// before the iterator returns. A caller-supplied Options.OnItem still
// fires, immediately before each item is yielded (and for items completing
// after an early break). Invalid options yield an empty sequence; use Run
// with Options.OnItem when the error or the final Result is needed.
func Stream(ctx context.Context, opts Options) iter.Seq[Item] {
	return func(yield func(Item) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		callerHook := opts.OnItem
		stopped := false
		opts.OnItem = func(it Item) {
			if callerHook != nil {
				callerHook(it)
			}
			if stopped {
				return
			}
			if !yield(it) {
				stopped = true
				cancel()
			}
		}
		_, _ = Run(ctx, opts)
	}
}

// Report renders a deterministic summary: the stream size and, per α, how
// many graphs are stable for each concept. Equal option grids produce
// byte-identical reports for every worker count and cache state. On a
// cancelled sweep the counts cover only the completed tasks.
func (r *Result) Report() string {
	var b strings.Builder
	// The variant segment appears only for non-default variants, keeping
	// default-variant reports byte-identical to the pre-variant engine.
	fmt.Fprintf(&b, "sweep n=%d source=%s%s: %d graphs × %d α × %d concepts\n",
		r.N, r.Source, variantSegment(r.Variant), r.Graphs, len(r.Alphas), len(r.Concepts))
	fmt.Fprintf(&b, "%8s", "α")
	for _, c := range r.Concepts {
		fmt.Fprintf(&b, " %6s", c)
	}
	b.WriteByte('\n')
	for ai, alpha := range r.Alphas {
		counts := make([]int, len(r.Concepts))
		for gi := 0; gi < r.Graphs; gi++ {
			vec := r.Items[ai*r.Graphs+gi].Vector
			for i := range counts {
				if vec.Stable(i) {
					counts[i]++
				}
			}
		}
		fmt.Fprintf(&b, "%8s", alpha)
		for _, c := range counts {
			fmt.Fprintf(&b, " %6d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CriticalReport renders the exact critical-α analysis: per concept, the
// rational breakpoints at which some class's verdict flips, and the number
// of stable classes on every region between (and at) the breakpoints —
// the whole α-axis answered exactly, not sampled. Equal option grids
// produce byte-identical reports at every worker count and cache state.
// It returns "" on a cancelled sweep (Critical is nil).
func (r *Result) CriticalReport() string {
	if r.Critical == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical n=%d source=%s%s: %d classes, exact stable-α structure\n",
		r.N, r.Source, variantSegment(r.Variant), r.Graphs)
	for ci, cc := range r.Critical {
		fmt.Fprintf(&b, "%-6s breakpoints:", cc.Concept)
		if len(cc.Alphas) == 0 {
			b.WriteString(" (none)")
		}
		for _, a := range cc.Alphas {
			fmt.Fprintf(&b, " %s", a)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-6s stable classes:", cc.Concept)
		for _, reg := range regionsOf(cc.Alphas) {
			count := 0
			for gi := 0; gi < r.Graphs; gi++ {
				if r.Cert(gi, ci).Contains(reg.probe) {
					count++
				}
			}
			fmt.Fprintf(&b, " %s:%d", reg.label, count)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// variantSegment renders the " variant=..." header segment of the text
// reports — empty for the default variant, so legacy reports stay
// byte-identical.
func variantSegment(v game.Variant) string {
	if v.IsDefault() {
		return ""
	}
	return " variant=" + v.String()
}

// region is one α-axis segment of a critical report: a printable label
// and an exact interior probe price at which every class's verdict is
// constant over the segment.
type region struct {
	label string
	probe game.Alpha
}

// regionsOf splits [0, ∞) at the given sorted breakpoints into the
// segments on which all verdicts are constant — including the breakpoints
// themselves as singletons, where stable sets may be closed or degenerate.
func regionsOf(bps []game.Alpha) []region {
	if len(bps) == 0 {
		return []region{{label: "[0,∞)", probe: game.A(1)}}
	}
	var out []region
	first := bps[0]
	if first.Num() > 0 {
		out = append(out, region{
			label: fmt.Sprintf("[0,%s)", first),
			probe: game.AFrac(first.Num(), 2*first.Den()),
		})
	}
	for i, bp := range bps {
		out = append(out, region{label: fmt.Sprintf("{%s}", bp), probe: bp})
		if i+1 < len(bps) {
			next := bps[i+1]
			out = append(out, region{
				label: fmt.Sprintf("(%s,%s)", bp, next),
				probe: game.AFrac(bp.Num()*next.Den()+next.Num()*bp.Den(), 2*bp.Den()*next.Den()),
			})
		}
	}
	last := bps[len(bps)-1]
	out = append(out, region{
		label: fmt.Sprintf("(%s,∞)", last),
		probe: game.AFrac(last.Num()+last.Den(), last.Den()),
	})
	return out
}

// WorstStable reduces one grid cell to its Price-of-Anarchy outcome: the
// maximal ρ over the graphs stable for Concepts[ci] at Alphas[ai], the
// first witness attaining it in enumeration order, and the count of stable
// graphs. It requires a sweep run with Options.Rho.
func (r *Result) WorstStable(ai, ci int) (rho float64, witness *graph.Graph, stable int) {
	for gi := 0; gi < r.Graphs; gi++ {
		it := r.Items[ai*r.Graphs+gi]
		if !it.Vector.Stable(ci) {
			continue
		}
		stable++
		if it.Rho > rho {
			rho = it.Rho
			witness = it.Graph
		}
	}
	return rho, witness, stable
}
