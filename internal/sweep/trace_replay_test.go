package sweep

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// replayClock is a deterministic concurrency-safe clock: 1ms per reading.
type replayClock struct {
	mu sync.Mutex
	us int64
}

func (c *replayClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.us += 1000
	return time.UnixMicro(c.us)
}

// TestTraceReplayByteIdentical: a fixed-grid single-worker sweep traced
// against a deterministic clock must emit a byte-identical trace on
// every run — the replay property that pins both the engine's span
// ordering and the writer's frame encoding. Each run gets a fresh cache
// so the second is not answered from memory (which would legitimately
// change the span stream).
func TestTraceReplayByteIdentical(t *testing.T) {
	run := func() ([]byte, *Result) {
		var buf bytes.Buffer
		clk := &replayClock{}
		tr := obs.NewTracer(&buf, obs.TracerOptions{Source: "replay", Now: clk.Now})
		opts := latticeOptions(5, 1, NewCache())
		opts.Trace = tr
		res, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	a, resA := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed trace differs (%d vs %d bytes)", len(a), len(b))
	}

	// The stream must parse under the strict schema and account for the
	// engine's whole structure: one enumerate span, one class span per
	// class, one certify span per cache miss certification.
	parsed, err := obs.ReadTrace(bytes.NewReader(a), "replay")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range parsed.Spans {
		counts[s.Name]++
	}
	if counts["enumerate"] != 1 {
		t.Fatalf("enumerate spans = %d, want 1", counts["enumerate"])
	}
	if counts["class"] != resA.Graphs {
		t.Fatalf("class spans = %d, want %d", counts["class"], resA.Graphs)
	}
	if counts["certify"] == 0 || counts["certify"] != counts["cache_write"] {
		t.Fatalf("certify spans = %d, cache_write spans = %d: want equal and non-zero",
			counts["certify"], counts["cache_write"])
	}

	// The analyzer over a single-worker trace must account for nearly the
	// whole wall-clock: the lane is busy from enumeration to the last
	// class.
	rep := obs.Analyze(parsed, 5)
	if rep.Coverage < 0.95 {
		t.Fatalf("single-worker trace coverage = %.3f, want >= 0.95", rep.Coverage)
	}
}

// TestSweepMetricsInstrumentation: the same sweep with a ComputeMetrics
// attached must count every class and certification, and its exposition
// must lint.
func TestSweepMetricsInstrumentation(t *testing.T) {
	m := obs.NewComputeMetrics()
	opts := latticeOptions(4, 2, NewCache())
	opts.Metrics = m
	res := mustRun(t, opts)

	var b bytes.Buffer
	m.Registry.WriteText(&b)
	if err := obs.LintExposition(bytes.NewReader(b.Bytes())); err != nil {
		t.Fatalf("sweep metrics exposition fails lint: %v\n%s", err, b.String())
	}
	text := b.String()
	for _, want := range []string{
		"bncg_sweep_classes_total 6",
		"bncg_sweep_classes_cached_total 0",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	_ = res
}
