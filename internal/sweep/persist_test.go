package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/store"
)

// TestCachePersistRoundTrip: a sweep against a store-backed cache persists
// every computed verdict; a cold process (fresh cache warm-started from
// the reopened store) replays the identical sweep with zero misses and an
// observationally identical result.
func TestCachePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	cache.Persist(st)
	cold := mustRun(t, latticeOptions(4, 4, cache))
	if cold.Misses == 0 {
		t.Fatal("cold sweep computed nothing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := st2.Len(), cache.Len(); got != want {
		t.Fatalf("store persisted %d verdicts, cache holds %d", got, want)
	}
	fresh := NewCache()
	if loaded := fresh.WarmStart(st2); loaded != st2.Len() {
		t.Fatalf("warm-started %d of %d verdicts", loaded, st2.Len())
	}
	fresh.Persist(st2)
	warm := mustRun(t, latticeOptions(4, 4, fresh))
	if warm.Misses != 0 {
		t.Fatalf("warm-started sweep recomputed %d verdicts", warm.Misses)
	}
	if warm.Hits != int64(len(warm.Items)*len(warm.Concepts)) {
		t.Fatalf("warm-started sweep: %d hits, want all %d", warm.Hits, len(warm.Items)*len(warm.Concepts))
	}
	sameOutcome(t, cold, warm)
	// Replaying persisted verdicts must not re-append them.
	if appended := st2.Stats().Appended; appended != 0 {
		t.Fatalf("warm replay re-appended %d records", appended)
	}
}

// TestCacheStatsCounters: Stats counts entries and lifetime hits/misses
// across sweeps (unlike the per-run Result counters).
func TestCacheStatsCounters(t *testing.T) {
	cache := NewCache()
	cold := mustRun(t, latticeOptions(4, 2, cache))
	warm := mustRun(t, latticeOptions(4, 2, cache))
	st := cache.Stats()
	if st.Entries != cache.Len() {
		t.Fatalf("Stats.Entries = %d, Len = %d", st.Entries, cache.Len())
	}
	if st.Hits != cold.Hits+warm.Hits || st.Misses != cold.Misses+warm.Misses {
		t.Fatalf("lifetime counters (%d, %d) don't sum the runs (%d+%d, %d+%d)",
			st.Hits, st.Misses, cold.Hits, warm.Hits, cold.Misses, warm.Misses)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

// TestResetShared: the shared cache is swappable so tests can decouple
// their hit/miss assertions from whatever ran before.
func TestResetShared(t *testing.T) {
	old := Shared()
	old.Put(Key{Canon: "marker", Num: 1, Den: 1, Concept: eq.PS}, true)
	fresh := ResetShared()
	if fresh == old {
		t.Fatal("ResetShared returned the old cache")
	}
	if Shared() != fresh {
		t.Fatal("Shared() does not observe the reset")
	}
	if fresh.Len() != 0 {
		t.Fatalf("fresh shared cache holds %d entries", fresh.Len())
	}
	if _, ok := old.Get(Key{Canon: "marker", Num: 1, Den: 1, Concept: eq.PS}); !ok {
		t.Fatal("reset destroyed the old cache for in-flight holders")
	}
}

// TestCheckpointOptionsRoundTrip: a checkpoint rebuilds the exact grid
// spec, including fractional α values and every concept name.
func TestCheckpointOptionsRoundTrip(t *testing.T) {
	opts := Options{
		N:        6,
		Alphas:   []game.Alpha{game.AFrac(1, 2), game.A(2), game.AFrac(9, 2)},
		Concepts: eq.Concepts(),
		Source:   Trees,
		Rho:      true,
	}
	cp := NewCheckpoint(opts, 42, 17)
	if cp.Total != 42 || cp.Completed != 17 {
		t.Fatalf("checkpoint progress: %+v", cp)
	}
	back, err := cp.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Alphas, opts.Alphas) ||
		!reflect.DeepEqual(back.Concepts, opts.Concepts) ||
		back.N != opts.N || back.Source != opts.Source || back.Rho != opts.Rho {
		t.Fatalf("round trip changed the grid: %+v vs %+v", back, opts)
	}
	cp.Source = "lattices"
	if _, err := cp.Options(); err == nil {
		t.Fatal("bad source accepted")
	}
}

// TestLegacyCheckpointMigration pins the schema-version contract: the
// unversioned checkpoint JSON that PR 3–6 binaries wrote (no "version"
// field) must still load and -resume cleanly as generation 0, the next
// save upgrades it to the current generation, and a checkpoint from a
// future generation is rejected instead of misread.
func TestLegacyCheckpointMigration(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Byte-for-byte the shape an unversioned binary persisted.
	legacy := []byte(`{
  "n": 5,
  "source": "graphs",
  "alphas": ["1/2", "3"],
  "concepts": ["BNE", "PS"],
  "rho": false,
  "total": 42,
  "completed": 17
}
`)
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	var cp Checkpoint
	ok, err := st.LoadCheckpoint(&cp)
	if err != nil || !ok {
		t.Fatalf("legacy checkpoint load: ok=%v err=%v", ok, err)
	}
	if cp.Version != 0 {
		t.Fatalf("legacy checkpoint decoded with version %d, want 0", cp.Version)
	}
	opts, err := cp.Options()
	if err != nil {
		t.Fatalf("legacy checkpoint refused: %v", err)
	}
	if opts.N != 5 || opts.Source != Graphs || len(opts.Alphas) != 2 || len(opts.Concepts) != 2 {
		t.Fatalf("legacy grid misread: %+v", opts)
	}
	if opts.Alphas[0] != game.AFrac(1, 2) || opts.Alphas[1] != game.A(3) {
		t.Fatalf("legacy alphas misread: %v", opts.Alphas)
	}

	// The first save after migration stamps the current generation.
	if err := st.SaveCheckpoint(NewCheckpoint(opts, 42, 20)); err != nil {
		t.Fatal(err)
	}
	var upgraded Checkpoint
	if ok, err := st.LoadCheckpoint(&upgraded); err != nil || !ok {
		t.Fatalf("upgraded checkpoint load: ok=%v err=%v", ok, err)
	}
	if upgraded.Version != CheckpointVersion {
		t.Fatalf("saved checkpoint has version %d, want %d", upgraded.Version, CheckpointVersion)
	}
	if _, err := upgraded.Options(); err != nil {
		t.Fatal(err)
	}

	// A generation from the future must fail loudly, not be misread.
	future := upgraded
	future.Version = CheckpointVersion + 1
	if _, err := future.Options(); err == nil {
		t.Fatal("future-generation checkpoint accepted")
	}
}
