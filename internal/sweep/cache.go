package sweep

import (
	"sync"

	"repro/internal/eq"
	"repro/internal/game"
)

// Key identifies one memoized stability verdict: the canonical form of the
// graph, the exact (reduced) edge price, and the solution concept.
//
// Stability is an isomorphism invariant — the cost function depends only on
// degrees and distances — so one verdict per canonical form is sound. The
// two canonical encodings in use cannot collide with each other: CanonicalKey
// strings are over the bytes {0x00, 0x01} and FreeTreeKey strings over
// "()". Witness moves, by contrast, are label-dependent and therefore never
// cached; cached verdicts carry the stability bit only.
type Key struct {
	Canon    string
	Num, Den int64
	Concept  eq.Concept
}

// Cache memoizes per-concept stability verdicts across sweeps. It is safe
// for concurrent use by any number of sweep workers.
type Cache struct {
	mu sync.RWMutex
	m  map[Key]bool
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[Key]bool)}
}

var shared = NewCache()

// Shared returns the process-wide cache used by the experiment runners and
// the PoA searches, so repeated gadgets and overlapping α grids across
// experiments reuse verdicts instead of re-running coalition search.
func Shared() *Cache { return shared }

// Get returns the memoized verdict for k, if present.
func (c *Cache) Get(k Key) (stable, ok bool) {
	c.mu.RLock()
	stable, ok = c.m[k]
	c.mu.RUnlock()
	return stable, ok
}

// Put memoizes a verdict.
func (c *Cache) Put(k Key, stable bool) {
	c.mu.Lock()
	c.m[k] = stable
	c.mu.Unlock()
}

// Len returns the number of memoized verdicts.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// lookup fetches the verdicts for every concept under one read lock. It
// returns the stable bits of the cached concepts and the mask of concepts
// that still need computing.
func (c *Cache) lookup(canon string, alpha game.Alpha, concepts []eq.Concept) (vec, missing Vector) {
	k := Key{Canon: canon, Num: alpha.Num(), Den: alpha.Den()}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, concept := range concepts {
		k.Concept = concept
		stable, ok := c.m[k]
		if !ok {
			missing |= 1 << i
			continue
		}
		if stable {
			vec |= 1 << i
		}
	}
	return vec, missing
}

// store memoizes the verdicts selected by mask under one write lock.
func (c *Cache) store(canon string, alpha game.Alpha, concepts []eq.Concept, mask, vec Vector) {
	k := Key{Canon: canon, Num: alpha.Num(), Den: alpha.Den()}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, concept := range concepts {
		if mask&(1<<i) == 0 {
			continue
		}
		k.Concept = concept
		c.m[k] = vec&(1<<i) != 0
	}
}
