package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/eq"
)

// Key identifies one memoized stability verdict: the canonical form of the
// graph, the exact (reduced) edge price, and the solution concept.
//
// Stability is an isomorphism invariant — the cost function depends only on
// degrees and distances — so one verdict per canonical form is sound. The
// two canonical encodings in use cannot collide with each other: CanonicalKey
// strings are over the bytes {0x00, 0x01} and FreeTreeKey strings over
// "()". Witness moves, by contrast, are label-dependent and therefore never
// cached; cached verdicts carry the stability bit only.
//
// Variant is the game variant's canonical descriptor (game.Variant.Key();
// "" for the paper's default model): the same class and price can be
// stable in one variant and unstable in another, so verdicts of distinct
// variants are distinct entries.
type Key struct {
	Canon    string
	Num, Den int64
	Concept  eq.Concept
	Variant  string
}

// CertKey identifies one memoized stability certificate: the canonical
// form, the concept and the game variant (as its canonical descriptor, ""
// for the default). A certificate answers every α at once, so the price
// is not part of the key — that is the whole economy of the parametric
// engine: one cache entry (and one persisted record) replaces a per-α row
// of verdicts.
type CertKey struct {
	Canon   string
	Concept eq.Concept
	Variant string
}

// CacheStats is an observability snapshot of a Cache.
type CacheStats struct {
	// Entries counts the memoized entries: per-α verdicts plus
	// certificates.
	Entries int `json:"entries"`
	// Verdicts and Certificates break Entries down by kind.
	Verdicts     int `json:"verdicts"`
	Certificates int `json:"certificates"`
	// Hits and Misses count verdicts served from memory and verdicts that
	// fell through to a checker or certification, across the cache's
	// lifetime (surviving individual sweeps, unlike Result.Hits/Misses
	// which cover one run). A certificate hit counts once per α it
	// answered.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Cache memoizes per-concept stability verdicts and parametric stability
// certificates across sweeps. It is safe for concurrent use by any number
// of sweep workers.
type Cache struct {
	mu       sync.RWMutex
	m        map[Key]bool
	certs    map[CertKey]eq.AlphaSet
	sink     func(Key, bool)
	sinkCert func(CertKey, eq.AlphaSet)

	hits, misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[Key]bool), certs: make(map[CertKey]eq.AlphaSet)}
}

var shared atomic.Pointer[Cache]

func init() { shared.Store(NewCache()) }

// Shared returns the process-wide cache used by the experiment runners and
// the PoA searches, so repeated gadgets and overlapping α grids across
// experiments reuse verdicts instead of re-running coalition search.
func Shared() *Cache { return shared.Load() }

// ResetShared replaces the process-wide cache with a fresh empty one and
// returns it. Runs already holding the previous cache keep using it
// unaffected. ResetShared exists for tests: assertions about hit and miss
// counts are otherwise coupled to every sweep any earlier test ran through
// Shared().
func ResetShared() *Cache {
	c := NewCache()
	shared.Store(c)
	return c
}

// Get returns the memoized verdict for k, if present, counting the lookup
// in Stats.
func (c *Cache) Get(k Key) (stable, ok bool) {
	c.mu.RLock()
	stable, ok = c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return stable, ok
}

// Put memoizes a verdict (and forwards it to the persistence sink, when
// one is attached).
func (c *Cache) Put(k Key, stable bool) {
	c.mu.Lock()
	_, seen := c.m[k]
	c.m[k] = stable
	sink := c.sink
	c.mu.Unlock()
	if !seen && sink != nil {
		sink(k, stable)
	}
}

// Len returns the number of memoized entries (verdicts plus certificates).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m) + len(c.certs)
}

// Stats returns the entry counts and lifetime hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	verdicts, certs := len(c.m), len(c.certs)
	c.mu.RUnlock()
	return CacheStats{
		Entries:      verdicts + certs,
		Verdicts:     verdicts,
		Certificates: certs,
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
	}
}

// GetCert returns the memoized certificate for k, if present. It does not
// touch the hit/miss counters: the sweep engine counts per answered
// verdict, not per certificate (see lookupCert).
func (c *Cache) GetCert(k CertKey) (eq.AlphaSet, bool) {
	c.mu.RLock()
	set, ok := c.certs[k]
	c.mu.RUnlock()
	return set, ok
}

// CountHit credits one cache hit without performing a lookup. The
// serving daemon uses it when /v1/check answers from a certificate:
// GetCert itself stays uncounted so the sweep engine can keep its
// per-grid-price accounting (lookupCert), but a certificate-served
// request is a cache hit in serving terms and must move the daemon's
// exposed hit ratio.
func (c *Cache) CountHit() { c.hits.Add(1) }

// PutCert memoizes a certificate (and forwards it to the persistence
// sink, when one is attached). Certificates are pure functions of their
// key, so a repeat Put is a no-op.
func (c *Cache) PutCert(k CertKey, set eq.AlphaSet) {
	c.mu.Lock()
	_, seen := c.certs[k]
	if !seen {
		c.certs[k] = set
	}
	sink := c.sinkCert
	c.mu.Unlock()
	if !seen && sink != nil {
		sink(k, set)
	}
}

// RangeCerts calls f for every memoized certificate until f returns
// false, without holding the cache lock during calls.
func (c *Cache) RangeCerts(f func(CertKey, eq.AlphaSet) bool) {
	type entry struct {
		k   CertKey
		set eq.AlphaSet
	}
	c.mu.RLock()
	entries := make([]entry, 0, len(c.certs))
	for k, set := range c.certs {
		entries = append(entries, entry{k, set})
	}
	c.mu.RUnlock()
	for _, e := range entries {
		if !f(e.k, e.set) {
			return
		}
	}
}

// lookupCert is the sweep engine's certificate fetch: a hit counts once
// per grid price it is about to answer, so Result.Hits/Misses and the
// lifetime counters stay in verdict units across engine generations.
func (c *Cache) lookupCert(k CertKey, alphas int) (eq.AlphaSet, bool) {
	set, ok := c.GetCert(k)
	if ok {
		c.hits.Add(int64(alphas))
	} else {
		c.misses.Add(int64(alphas))
	}
	return set, ok
}

// insertCert adds a certificate without touching the sink or the counters
// — the warm-start path, where entries come from the sink's own backing.
func (c *Cache) insertCert(k CertKey, set eq.AlphaSet) {
	c.mu.Lock()
	c.certs[k] = set
	c.mu.Unlock()
}

// Range calls f for every memoized verdict until f returns false, without
// holding the cache lock during calls. Iteration order is unspecified.
func (c *Cache) Range(f func(Key, bool) bool) {
	c.mu.RLock()
	type entry struct {
		k      Key
		stable bool
	}
	entries := make([]entry, 0, len(c.m))
	for k, stable := range c.m {
		entries = append(entries, entry{k, stable})
	}
	c.mu.RUnlock()
	for _, e := range entries {
		if !f(e.k, e.stable) {
			return
		}
	}
}

// insert adds a verdict without touching the sink or the counters — the
// warm-start path, where the entries come from the sink's own backing.
func (c *Cache) insert(k Key, stable bool) {
	c.mu.Lock()
	c.m[k] = stable
	c.mu.Unlock()
}
