package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/eq"
	"repro/internal/game"
)

// Key identifies one memoized stability verdict: the canonical form of the
// graph, the exact (reduced) edge price, and the solution concept.
//
// Stability is an isomorphism invariant — the cost function depends only on
// degrees and distances — so one verdict per canonical form is sound. The
// two canonical encodings in use cannot collide with each other: CanonicalKey
// strings are over the bytes {0x00, 0x01} and FreeTreeKey strings over
// "()". Witness moves, by contrast, are label-dependent and therefore never
// cached; cached verdicts carry the stability bit only.
type Key struct {
	Canon    string
	Num, Den int64
	Concept  eq.Concept
}

// CacheStats is an observability snapshot of a Cache.
type CacheStats struct {
	// Entries counts the memoized verdicts.
	Entries int `json:"entries"`
	// Hits and Misses count lookups served from memory and lookups that
	// fell through to a checker, across the cache's lifetime (surviving
	// individual sweeps, unlike Result.Hits/Misses which cover one run).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Cache memoizes per-concept stability verdicts across sweeps. It is safe
// for concurrent use by any number of sweep workers.
type Cache struct {
	mu   sync.RWMutex
	m    map[Key]bool
	sink func(Key, bool)

	hits, misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[Key]bool)}
}

var shared atomic.Pointer[Cache]

func init() { shared.Store(NewCache()) }

// Shared returns the process-wide cache used by the experiment runners and
// the PoA searches, so repeated gadgets and overlapping α grids across
// experiments reuse verdicts instead of re-running coalition search.
func Shared() *Cache { return shared.Load() }

// ResetShared replaces the process-wide cache with a fresh empty one and
// returns it. Runs already holding the previous cache keep using it
// unaffected. ResetShared exists for tests: assertions about hit and miss
// counts are otherwise coupled to every sweep any earlier test ran through
// Shared().
func ResetShared() *Cache {
	c := NewCache()
	shared.Store(c)
	return c
}

// Get returns the memoized verdict for k, if present, counting the lookup
// in Stats.
func (c *Cache) Get(k Key) (stable, ok bool) {
	c.mu.RLock()
	stable, ok = c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return stable, ok
}

// Put memoizes a verdict (and forwards it to the persistence sink, when
// one is attached).
func (c *Cache) Put(k Key, stable bool) {
	c.mu.Lock()
	_, seen := c.m[k]
	c.m[k] = stable
	sink := c.sink
	c.mu.Unlock()
	if !seen && sink != nil {
		sink(k, stable)
	}
}

// Len returns the number of memoized verdicts.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats returns the entry count and lifetime hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries: c.Len(),
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
	}
}

// Range calls f for every memoized verdict until f returns false, without
// holding the cache lock during calls. Iteration order is unspecified.
func (c *Cache) Range(f func(Key, bool) bool) {
	c.mu.RLock()
	type entry struct {
		k      Key
		stable bool
	}
	entries := make([]entry, 0, len(c.m))
	for k, stable := range c.m {
		entries = append(entries, entry{k, stable})
	}
	c.mu.RUnlock()
	for _, e := range entries {
		if !f(e.k, e.stable) {
			return
		}
	}
}

// lookup fetches the verdicts for every concept under one read lock. It
// returns the stable bits of the cached concepts and the mask of concepts
// that still need computing.
func (c *Cache) lookup(canon string, alpha game.Alpha, concepts []eq.Concept) (vec, missing Vector) {
	k := Key{Canon: canon, Num: alpha.Num(), Den: alpha.Den()}
	c.mu.RLock()
	for i, concept := range concepts {
		k.Concept = concept
		stable, ok := c.m[k]
		if !ok {
			missing |= 1 << i
			continue
		}
		if stable {
			vec |= 1 << i
		}
	}
	c.mu.RUnlock()
	c.hits.Add(int64(popcount16((Vector(1)<<len(concepts) - 1) &^ missing)))
	c.misses.Add(int64(popcount16(missing)))
	return vec, missing
}

// store memoizes the verdicts selected by mask under one write lock and
// forwards the genuinely new ones to the persistence sink.
func (c *Cache) store(canon string, alpha game.Alpha, concepts []eq.Concept, mask, vec Vector) {
	k := Key{Canon: canon, Num: alpha.Num(), Den: alpha.Den()}
	type fresh struct {
		k      Key
		stable bool
	}
	var emit []fresh
	c.mu.Lock()
	sink := c.sink
	for i, concept := range concepts {
		if mask&(1<<i) == 0 {
			continue
		}
		k.Concept = concept
		stable := vec&(1<<i) != 0
		if _, seen := c.m[k]; !seen && sink != nil {
			emit = append(emit, fresh{k, stable})
		}
		c.m[k] = stable
	}
	c.mu.Unlock()
	for _, e := range emit {
		sink(e.k, e.stable)
	}
}

// insert adds a verdict without touching the sink or the counters — the
// warm-start path, where the entries come from the sink's own backing.
func (c *Cache) insert(k Key, stable bool) {
	c.mu.Lock()
	c.m[k] = stable
	c.mu.Unlock()
}
