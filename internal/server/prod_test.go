package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Production-hardening tests (PR 6): the /metrics exposition, the pinned
// JSON error schema, admission control, fault degradation, the
// concurrency soak, and writer/replica byte-identity.

// parseErrorBody asserts the pinned error schema {"error": ..., "status": ...}
// and that the embedded status matches the transport status.
func parseErrorBody(t *testing.T, status int, body string) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error body is not the pinned schema: %v: %s", err, body)
	}
	if eb.Error == "" || eb.Status != status {
		t.Fatalf("error body %+v does not mirror transport status %d", eb, status)
	}
	// Nothing beyond the pinned fields sneaks in.
	var raw map[string]any
	if err := json.Unmarshal([]byte(body), &raw); err != nil || len(raw) != 2 {
		t.Fatalf("error schema grew fields: %s", body)
	}
	return eb
}

// TestErrorSchemaEveryEndpoint: every endpoint's every failure mode
// returns the same two-field JSON error object with the status mirrored
// in the body — the schema clients are allowed to depend on.
func TestErrorSchemaEveryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxN: 5, MaxAlphas: 2, MaxCheckN: 6})
	star := graph.Encode(game.Star(6))
	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   string
		status int
	}{
		{"sweep missing n", "GET", "/v1/sweep?alphas=1", "", 400},
		{"sweep malformed n", "GET", "/v1/sweep?n=abc&alphas=1", "", 400},
		{"sweep n over cap", "GET", "/v1/sweep?n=6&alphas=1", "", 422},
		{"sweep malformed alpha", "GET", "/v1/sweep?n=4&alphas=1/0", "", 400},
		{"sweep too many alphas", "GET", "/v1/sweep?n=4&alphas=1,2,3", "", 422},
		{"sweep bad concept", "GET", "/v1/sweep?n=4&alphas=1&concepts=NOPE", "", 400},
		{"poa malformed alpha", "GET", "/v1/poa?n=4&alpha=x&concept=PS", "", 400},
		{"poa bad concept", "GET", "/v1/poa?n=4&alpha=2&concept=nope", "", 400},
		{"critical n over cap", "GET", "/v1/critical?n=9", "", 422},
		{"check malformed alpha", "POST", "/v1/check?alpha=", star, 400},
		{"check bad concept", "POST", "/v1/check?alpha=2&concept=ZZ", star, 400},
		{"check malformed graph", "POST", "/v1/check?alpha=2", "not a graph", 400},
		{"check graph over cap", "POST", "/v1/check?alpha=2", graph.Encode(game.Star(7)), 422},
		{"simulate missing n", "GET", "/v1/simulate?alphas=1", "", 400},
		{"simulate malformed n", "GET", "/v1/simulate?n=one&alphas=1", "", 400},
		{"simulate n over cap", "GET", "/v1/simulate?n=501&alphas=1", "", 422},
		{"simulate malformed alpha", "GET", "/v1/simulate?n=10&alphas=1/0", "", 400},
		{"simulate trajectory cap", "GET", "/v1/simulate?n=10&alphas=1,2&trajectories=2000", "", 422},
		{"simulate bad init", "GET", "/v1/simulate?n=10&alphas=1&init=clique", "", 400},
		{"simulate bad moves", "GET", "/v1/simulate?n=10&alphas=1&moves=ne", "", 400},
		{"simulate bad scheduler", "GET", "/v1/simulate?n=10&alphas=1&scheduler=zigzag", "", 400},
		{"simulate bad seed", "GET", "/v1/simulate?n=10&alphas=1&seed=-3", "", 400},
		{"simulate bad p", "GET", "/v1/simulate?n=10&alphas=1&p=1.5", "", 400},
		{"method not allowed", "GET", "/v1/check?alpha=2", "", 405},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			if tc.status == 405 {
				// The mux's method rejection predates our JSON schema and is
				// exempt from it; everything we write ourselves is pinned.
				return
			}
			parseErrorBody(t, resp.StatusCode, string(body))
		})
	}
}

// TestCheckDeadlineExceeded: a /v1/check that cannot finish inside
// RequestTimeout answers 504 in the pinned schema.
func TestCheckDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, err := http.Post(ts.URL+"/v1/check?alpha=2", "text/plain",
		strings.NewReader(graph.Encode(game.Star(5))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	parseErrorBody(t, resp.StatusCode, string(body))
}

// TestRateLimiting: with a one-token bucket the second immediate request
// from the same client is a 429 with Retry-After, in the pinned schema,
// and the rejection shows up in /healthz and /metrics. /healthz itself is
// never limited.
func TestRateLimiting(t *testing.T) {
	_, ts := newTestServer(t, Config{RatePerSec: 0.0001, Burst: 1})
	if status, body := get(t, ts.URL+"/v1/critical?n=3"); status != http.StatusOK {
		t.Fatalf("first request: status %d: %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/v1/critical?n=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	parseErrorBody(t, resp.StatusCode, string(body))

	for i := 0; i < 3; i++ {
		if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
			t.Fatal("healthz must bypass rate limiting")
		}
	}
	var h struct {
		Rejected map[string]int64 `json:"requests_rejected"`
	}
	_, hb := get(t, ts.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.Rejected["rate"] != 1 {
		t.Fatalf("healthz rejected = %v, want rate:1", h.Rejected)
	}
	_, mb := get(t, ts.URL+"/metrics")
	if !strings.Contains(mb, `bncg_http_requests_rejected_total{reason="rate"} 1`) {
		t.Fatalf("rejection missing from /metrics:\n%s", mb)
	}
}

// TestConcurrencyGate: with every in-flight slot and queue position
// occupied a new request is shed immediately with 429; a queued request
// outliving QueueWait gets 503. Observability routes bypass the gate.
func TestConcurrencyGate(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1, QueueWait: 100 * time.Millisecond})

	// Occupy the only slot directly — deterministic, no slow handler races.
	if err := s.gate.enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.gate.leave()

	// Fill the one queue position with a request that will wait out
	// QueueWait and come back 503.
	type result struct {
		status int
		body   string
	}
	queued := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/critical?n=3")
		if err != nil {
			queued <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		queued <- result{resp.StatusCode, string(b)}
	}()
	// Wait until it is actually queued before probing the full-queue path.
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.queuedCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	status, body := get(t, ts.URL+"/v1/critical?n=3")
	if status != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", status, body)
	}
	parseErrorBody(t, status, body)

	r := <-queued
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d, want 503: %s", r.status, r.body)
	}
	parseErrorBody(t, r.status, r.body)

	if status, _ := get(t, ts.URL+"/metrics"); status != http.StatusOK {
		t.Fatal("metrics must bypass the gate")
	}
	_, mb := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`bncg_http_requests_rejected_total{reason="capacity"} 1`,
		`bncg_http_requests_rejected_total{reason="queue_timeout"} 1`,
	} {
		if !strings.Contains(mb, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, mb)
		}
	}
}

// TestMetricsExposition: after known traffic, /metrics carries the
// per-route counters and latency histograms, the cache hit ratio, and the
// store gauges — in well-formed Prometheus text exposition.
func TestMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := sweep.NewCache()
	cache.Persist(st)
	defer cache.Persist(nil)
	_, ts := newTestServer(t, Config{Cache: cache, Store: st})

	star := graph.Encode(game.Star(5))
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/check?alpha=2", "text/plain", strings.NewReader(star))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	get(t, ts.URL+"/v1/sweep?n=4&alphas=1&concepts=PS")
	get(t, ts.URL+"/v1/sweep?nope") // a 400 to split the code label
	get(t, ts.URL+"/no/such/path")  // lands in route="other"

	_, body := get(t, ts.URL+"/metrics")

	for _, want := range []string{
		`bncg_http_requests_total{route="/v1/check",code="200"} 3`,
		`bncg_http_requests_total{route="/v1/sweep",code="200"} 1`,
		`bncg_http_requests_total{route="/v1/sweep",code="400"} 1`,
		`bncg_http_requests_total{route="other",code="404"} 1`,
		`bncg_http_request_duration_seconds_count{route="/v1/check"} 3`,
		`bncg_http_request_duration_seconds_bucket{route="/v1/check",le="+Inf"} 3`,
		"# TYPE bncg_http_request_duration_seconds histogram",
		"bncg_http_inflight_requests",
		"bncg_sweep_flights_started_total 1",
		`bncg_cache_entries{kind="certificate"}`,
		"bncg_cache_hits_total",
		"bncg_cache_misses_total",
		"bncg_cache_hit_ratio",
		`bncg_store_records{kind="verdict"}`,
		"bncg_store_disk_bytes",
		"bncg_store_flush_failures_total 0",
		"bncg_readonly 0",
		"bncg_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", body)
	}

	// The second /v1/check run hit the cache for every concept; the
	// exposed ratio must reflect hits and misses both non-zero.
	ratio := metricValue(t, body, "bncg_cache_hit_ratio")
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("cache hit ratio %v, want strictly between 0 and 1", ratio)
	}

	// Histogram buckets are cumulative and end at the count.
	counts := bucketCounts(t, body, "/v1/check")
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("histogram not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf bucket %d, want 3", counts[len(counts)-1])
	}
}

func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("metric %s not found", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func bucketCounts(t *testing.T, exposition, route string) []int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^bncg_http_request_duration_seconds_bucket\{route="` +
		regexp.QuoteMeta(route) + `",le="[^"]+"\} (\d+)$`)
	var counts []int64
	for _, m := range re.FindAllStringSubmatch(exposition, -1) {
		v, _ := strconv.ParseInt(m[1], 10, 64)
		counts = append(counts, v)
	}
	if len(counts) == 0 {
		t.Fatalf("no buckets for %s", route)
	}
	return counts
}

// TestServeDegradedOnFlushFailure: with the store's writer failing, the
// daemon keeps answering (serve-stale), /healthz flips to "degraded", and
// the failure count is visible on /metrics — the fault-injection harness
// driven end to end through HTTP.
func TestServeDegradedOnFlushFailure(t *testing.T) {
	var failWrites atomic.Bool
	st, err := store.Open(t.TempDir(), store.Options{
		FlushEvery: 1, // every Put flushes — and fails — immediately
		WrapSegmentWriter: func(w store.WriteSyncer) store.WriteSyncer {
			return faultySyncer{w, &failWrites}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := sweep.NewCache()
	cache.Persist(st)
	defer cache.Persist(nil)
	_, ts := newTestServer(t, Config{Cache: cache, Store: st})

	failWrites.Store(true)
	star := graph.Encode(game.Star(5))
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/check?alpha=2", "text/plain", strings.NewReader(star))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed while store is failing: %d %s", i, resp.StatusCode, b)
		}
	}
	if st.Stats().FlushFailures == 0 {
		t.Fatal("fault injection never fired")
	}

	_, hb := get(t, ts.URL+"/healthz")
	var h struct {
		Status string       `json:"status"`
		Store  *store.Stats `json:"store"`
	}
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Store == nil || h.Store.FlushFailures == 0 {
		t.Fatalf("healthz did not degrade: %s", hb)
	}
	_, mb := get(t, ts.URL+"/metrics")
	if metricValue(t, mb, "bncg_store_flush_failures_total") == 0 {
		t.Fatal("flush failures missing from /metrics")
	}

	// Fault heals: the daemon recovers to "ok"-with-history — still
	// serving, pending records flushable again.
	failWrites.Store(false)
	if err := st.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if st.Stats().Pending != 0 {
		t.Fatal("pending records stuck after heal")
	}
}

type faultySyncer struct {
	store.WriteSyncer
	fail *atomic.Bool
}

func (f faultySyncer) Write(p []byte) (int, error) {
	if f.fail.Load() {
		return 0, fmt.Errorf("injected write fault")
	}
	return f.WriteSyncer.Write(p)
}

// TestServeSoak: many parallel clients across /v1/check, /v1/sweep,
// /healthz and /metrics — a third of them disconnecting mid-request —
// leave the daemon consistent: no goroutine leaks, in-flight back to
// zero, and request accounting that adds up. Run under -race this is the
// concurrency certification of the admission/metrics middleware.
func TestServeSoak(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxInflight: 8, MaxQueue: 64, QueueWait: 5 * time.Second})
	star := graph.Encode(game.Star(5))
	before := runtime.NumGoroutine()

	const clients = 24
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				resp, err := http.Post(ts.URL+"/v1/check?alpha=7/3", "text/plain", strings.NewReader(star))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					completed.Add(1)
				}
			case 1:
				// Disconnect mid-request: cancel while the body streams.
				ctx, cancel := context.WithCancel(context.Background())
				req, _ := http.NewRequestWithContext(ctx, "GET",
					ts.URL+"/v1/sweep?n=5&alphas=1/2,1,2,3&concepts=all", nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					buf := make([]byte, 256)
					resp.Body.Read(buf) // first bytes, then hang up
					cancel()
					resp.Body.Close()
				}
				cancel()
				completed.Add(1)
			case 2:
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						completed.Add(1)
					}
				}
			default:
				resp, err := http.Get(ts.URL + "/healthz")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						completed.Add(1)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if completed.Load() < clients-clients/4 {
		t.Fatalf("only %d/%d clients completed", completed.Load(), clients)
	}
	// Pooled keep-alive connections hold client goroutines; retire them
	// before the leak check so only daemon-side goroutines are measured.
	http.DefaultClient.CloseIdleConnections()
	waitForGoroutines(t, before)
	if got := s.inflight.Load(); got != 0 {
		t.Fatalf("in-flight gauge stuck at %d", got)
	}
	if q := s.gate.queuedCount(); q != 0 {
		t.Fatalf("queue gauge stuck at %d", q)
	}
}

// TestReplicaByteIdentity: a writer daemon and a -readonly replica over
// the same store directory answer every persisted (class, concept, α)
// /v1/check byte-identically — including classes the writer ingests and
// flushes only after the replica booted, once the replica re-warms.
func TestReplicaByteIdentity(t *testing.T) {
	dir := t.TempDir()
	wst, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wst.Close()
	wcache := sweep.NewCache()
	wcache.Persist(wst)
	defer wcache.Persist(nil)

	ingest := func(n int) {
		if _, err := sweep.Run(context.Background(), sweep.Options{
			N:        n,
			Alphas:   []game.Alpha{game.A(2)},
			Concepts: eq.Concepts(),
			Cache:    wcache,
		}); err != nil {
			t.Fatal(err)
		}
		if err := wst.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ingest(4)

	rst, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rcache := sweep.NewCache()
	rcache.WarmStart(rst)

	wsrv, wts := newTestServer(t, Config{Cache: wcache, Store: wst})
	rsrv, rts := newTestServer(t, Config{Cache: rcache, Store: rst, ReadOnly: true, RewarmInterval: -1})
	defer wsrv.Close()
	defer rsrv.Close()

	compare := func(n int) {
		t.Helper()
		queries := 0
		for g := range graph.AllClasses(n, graph.EnumOptions{}) {
			body := graph.Encode(g)
			for _, alpha := range []string{"1/2", "2", "7/3", "5"} {
				for _, concept := range []string{"PS", "BSE", "BAE"} {
					url := "/v1/check?alpha=" + alpha + "&concept=" + concept
					wStatus, wBody := postCheck(t, wts.URL+url, body)
					rStatus, rBody := postCheck(t, rts.URL+url, body)
					if wStatus != http.StatusOK || rStatus != http.StatusOK {
						t.Fatalf("%s: writer %d, replica %d", url, wStatus, rStatus)
					}
					if wBody != rBody {
						t.Fatalf("%s on n=%d class diverged:\nwriter:  %s\nreplica: %s", url, n, wBody, rBody)
					}
					queries++
				}
			}
		}
		if queries == 0 {
			t.Fatal("no classes compared")
		}
	}
	compare(4)

	// The writer ingests a new size; the replica answers identically after
	// one manual re-warm pass (the production loop just calls this on a
	// ticker).
	ingest(5)
	certsBefore := rcache.Stats().Certificates
	if _, err := rsrv.rewarm(); err != nil {
		t.Fatal(err)
	}
	if rcache.Stats().Certificates <= certsBefore {
		t.Fatal("re-warm loaded nothing")
	}
	compare(5)
	compare(4)

	_, mb := get(t, rts.URL+"/metrics")
	if !strings.Contains(mb, "bncg_readonly 1") ||
		metricValue(t, mb, "bncg_replica_rewarms_total") != 1 {
		t.Fatalf("replica metrics wrong:\n%s", mb)
	}
	var h struct {
		Role    string `json:"role"`
		Rewarms int64  `json:"rewarms"`
	}
	_, hb := get(t, rts.URL+"/healthz")
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "replica" || h.Rewarms != 1 {
		t.Fatalf("replica healthz: %s", hb)
	}
}

func postCheck(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestReplicaRewarmLoop: the background ticker loop itself converges the
// replica on the writer without manual intervention, and Close stops it.
func TestReplicaRewarmLoop(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	wst, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wst.Close()
	wcache := sweep.NewCache()
	wcache.Persist(wst)
	defer wcache.Persist(nil)

	rst, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rcache := sweep.NewCache()
	rcache.WarmStart(rst)
	rsrv := New(Config{Cache: rcache, Store: rst, ReadOnly: true, RewarmInterval: 5 * time.Millisecond})

	if _, err := sweep.Run(context.Background(), sweep.Options{
		N: 4, Alphas: []game.Alpha{game.A(2)}, Concepts: eq.Concepts(), Cache: wcache,
	}); err != nil {
		t.Fatal(err)
	}
	if err := wst.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for rcache.Stats().Certificates == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-warm loop never picked up the writer's certificates")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := rsrv.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, before)
}
