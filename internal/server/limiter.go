package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// Admission control: the daemon sheds load before work starts instead of
// degrading under it. Two independent mechanisms compose:
//
//   - tokenBuckets rate-limits per client (keyed by remote IP) with a
//     classic lazily-refilled token bucket. A client over its budget gets
//     an immediate 429 with Retry-After — no queue slot, no computation.
//   - gate caps globally concurrent requests with a semaphore and a
//     bounded FIFO queue in front of it. When every slot is busy a request
//     waits up to its queue deadline; when the queue itself is full the
//     request is rejected immediately (fast 429), so a traffic spike
//     costs waiting clients latency but never unbounded memory or
//     goroutine pile-up.
//
// Observability endpoints (/healthz, /metrics) bypass both — an operator
// must be able to see a saturated daemon.

// tokenBuckets is a per-client token-bucket rate limiter.
type tokenBuckets struct {
	rate  float64 // tokens added per second
	burst float64 // bucket capacity

	mu        sync.Mutex
	m         map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTokenBuckets returns a limiter granting rate requests/second with
// bursts of burst, or nil when rate is zero (rate limiting disabled).
func newTokenBuckets(rate float64, burst int) *tokenBuckets {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBuckets{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// allow reports whether one request from key is admitted at now, spending
// a token if so.
func (t *tokenBuckets) allow(key string, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.m[key]
	if b == nil {
		// Idle buckets refill to capacity and then carry no information;
		// sweep them occasionally so one scan per client IP cannot grow the
		// map forever.
		if len(t.m) >= 1024 && now.Sub(t.lastSweep) > time.Minute {
			for k, old := range t.m {
				if now.Sub(old.last).Seconds()*t.rate >= t.burst {
					delete(t.m, k)
				}
			}
			t.lastSweep = now
		}
		b = &bucket{tokens: t.burst, last: now}
		t.m[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * t.rate
		if b.tokens > t.burst {
			b.tokens = t.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientKey identifies the client of r for rate limiting: the remote IP
// without the ephemeral port, so one client's connections share a bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Admission rejections, distinguished so the middleware can map them to
// distinct status codes and metric reasons.
var (
	errQueueFull    = errors.New("server at capacity: request queue full")
	errQueueTimeout = errors.New("server at capacity: timed out waiting for an in-flight slot")
)

// gate is the global concurrency cap: maxInflight slots, at most maxQueue
// requests waiting, each for at most wait.
type gate struct {
	sem      chan struct{}
	maxQueue int
	wait     time.Duration

	mu     sync.Mutex
	queued int
}

func newGate(maxInflight, maxQueue int, wait time.Duration) *gate {
	return &gate{sem: make(chan struct{}, maxInflight), maxQueue: maxQueue, wait: wait}
}

func (g *gate) queuedCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}

// enter acquires an in-flight slot, queuing if none is free. It returns
// nil (slot held; the caller must leave()), errQueueFull, errQueueTimeout,
// or the context's error if the client gave up while queued.
func (g *gate) enter(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return errQueueFull
	}
	g.queued++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
	}()
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-timer.C:
		return errQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) leave() { <-g.sem }
