package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestMetricsExpositionLints scrapes /metrics after a mixed workload —
// good requests, a 400, a rate rejection, store-backed persistence — and
// runs the body through the format linter. This is the structural guard
// on the shared obs registry: pinned sample strings live in prod_test.go,
// this test proves the whole document is well-formed Prometheus text
// (name charsets, declared types, histogram cumulativity).
func TestMetricsExpositionLints(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, Config{Store: st, EnablePprof: true})

	star := graph.Encode(game.Star(4))
	post := func(query string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/check?"+query, "text/plain", strings.NewReader(star))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for i := 0; i < 4; i++ {
		post("alpha=2&concept=PS")
	}
	post("alpha=") // 400: malformed alpha
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/nosuchroute")

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := obs.LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v", err)
	}
	for _, want := range []string{
		"bncg_http_requests_total{route=\"/v1/check\",code=\"200\"}",
		"bncg_http_request_duration_seconds_bucket{route=\"/v1/check\",le=\"+Inf\"}",
		"bncg_store_flush_failures_total 0",
		"bncg_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// EnablePprof mounts the profiler on the daemon mux.
	code, body = get(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d (%d bytes), want 200 with a body", code, len(body))
	}
}

// TestPprofDisabledByDefault: without EnablePprof the profiler routes
// must not exist.
func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _ := get(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusNotFound {
		t.Fatalf("/debug/pprof without EnablePprof = %d, want 404", code)
	}
}
