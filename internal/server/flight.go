package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Identical in-flight requests are deduplicated (singleflight): the first
// request for a key starts the computation, later ones attach to it, and
// the computation's context is cancelled as soon as the last subscriber
// disconnects — so abandoned work drains its workers instead of burning
// CPU for nobody. Two shapes are provided: flightGroup fans a streaming
// sweep out to any number of subscribers item by item, and callGroup
// deduplicates request/response computations such as the PoA search.

// flightGroup deduplicates streaming sweeps by normalized request key.
type flightGroup struct {
	mu      sync.Mutex
	m       map[string]*flight
	started int64 // computations ever started (observability)
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// live counts the sweeps currently in flight.
func (g *flightGroup) live() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// startedCount counts the sweep computations ever started — requests
// served minus this is the singleflight dedup win.
func (g *flightGroup) startedCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started
}

// hasFlight reports whether a flight for key is live — used only to label
// responses as shared; join remains the authoritative (atomic) attach.
func (g *flightGroup) hasFlight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m[key] != nil
}

// flight is one shared sweep computation. Subscribers read items by index
// under mu, sleeping on cond until the coordinator publishes more; the
// publisher is the sweep's own OnItem hook, so items arrive in the
// deterministic α-major stream order.
type flight struct {
	g   *flightGroup
	key string

	mu    sync.Mutex
	cond  *sync.Cond
	items []sweep.Item
	done  bool
	res   *sweep.Result
	err   error
	refs  int

	cancel context.CancelFunc
}

// join attaches to the flight for key, starting the computation via run
// when no flight is live. run is executed on a fresh goroutine with a
// context bounded by timeout and cancelled when the last subscriber
// leaves; it must call the returned flight's publish for every item and
// finish exactly once.
func (g *flightGroup) join(key string, timeout time.Duration, run func(ctx context.Context, fl *flight)) *flight {
	g.mu.Lock()
	defer g.mu.Unlock()
	fl := g.m[key]
	if fl == nil {
		g.started++
		fl = &flight{g: g, key: key}
		fl.cond = sync.NewCond(&fl.mu)
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		fl.cancel = cancel
		g.m[key] = fl
		go func() {
			defer cancel()
			run(ctx, fl)
			g.remove(fl)
		}()
	}
	fl.mu.Lock()
	fl.refs++
	fl.mu.Unlock()
	return fl
}

// remove unmaps fl so later requests start fresh (typically served almost
// entirely from the verdict cache the finished flight just filled).
func (g *flightGroup) remove(fl *flight) {
	g.mu.Lock()
	if g.m[fl.key] == fl {
		delete(g.m, fl.key)
	}
	g.mu.Unlock()
}

// leave detaches a subscriber. The last leaver cancels the computation and
// unmaps the flight, so a fully abandoned sweep drains instead of running
// to completion for nobody. The decision is made under the group lock —
// the same lock join holds while attaching — so a departing last
// subscriber cannot cancel a flight a new request just joined.
func (fl *flight) leave() {
	fl.g.mu.Lock()
	fl.mu.Lock()
	fl.refs--
	last := fl.refs == 0 && !fl.done
	fl.mu.Unlock()
	if last && fl.g.m[fl.key] == fl {
		delete(fl.g.m, fl.key)
	}
	fl.g.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// publish appends one item and wakes every subscriber.
func (fl *flight) publish(it sweep.Item) {
	fl.mu.Lock()
	fl.items = append(fl.items, it)
	fl.cond.Broadcast()
	fl.mu.Unlock()
}

// finish records the outcome and wakes every subscriber one last time.
func (fl *flight) finish(res *sweep.Result, err error) {
	fl.mu.Lock()
	fl.done = true
	fl.res, fl.err = res, err
	fl.cond.Broadcast()
	fl.mu.Unlock()
}

// next blocks until item i exists, the flight finished without producing
// it, or ctx is cancelled. The caller must have joined the flight and must
// arrange for cond.Broadcast on ctx cancellation (see watch).
func (fl *flight) next(ctx context.Context, i int) (it sweep.Item, ok bool) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for len(fl.items) <= i && !fl.done && ctx.Err() == nil {
		fl.cond.Wait()
	}
	if ctx.Err() != nil || len(fl.items) <= i {
		return sweep.Item{}, false
	}
	return fl.items[i], true
}

// outcome returns the final result; valid only after next returned false
// with a live context.
func (fl *flight) outcome() (*sweep.Result, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.res, fl.err
}

// watch wakes fl's subscribers when ctx is cancelled, so a disconnected
// client's handler never sleeps forever in next. The returned stop
// function releases the watcher.
func (fl *flight) watch(ctx context.Context) (stop func() bool) {
	return context.AfterFunc(ctx, func() {
		fl.mu.Lock()
		fl.cond.Broadcast()
		fl.mu.Unlock()
	})
}

// callGroup deduplicates non-streaming computations by key.
type callGroup struct {
	mu sync.Mutex
	m  map[string]*call
}

func newCallGroup() *callGroup { return &callGroup{m: make(map[string]*call)} }

type call struct {
	done   chan struct{}
	val    any
	err    error
	refs   int
	cancel context.CancelFunc
}

// Do returns the result of fn for key, computing it at most once across
// concurrent callers. The computation runs detached from any single
// caller, bounded by timeout; if every caller abandons it (ctx cancelled),
// it is cancelled too. shared reports whether the result was joined rather
// than started.
func (g *callGroup) Do(ctx context.Context, key string, timeout time.Duration, fn func(context.Context) (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	c := g.m[key]
	shared = c != nil
	if c == nil {
		cctx, cancel := context.WithTimeout(context.Background(), timeout)
		c = &call{done: make(chan struct{}), cancel: cancel}
		g.m[key] = c
		go func() {
			defer cancel()
			c.val, c.err = fn(cctx)
			g.mu.Lock()
			if g.m[key] == c {
				delete(g.m, key)
			}
			g.mu.Unlock()
			close(c.done)
		}()
	}
	c.refs++
	g.mu.Unlock()

	select {
	case <-c.done:
		g.mu.Lock()
		c.refs--
		g.mu.Unlock()
		return c.val, c.err, shared
	case <-ctx.Done():
		g.mu.Lock()
		c.refs--
		if c.refs == 0 {
			c.cancel()
			if g.m[key] == c {
				delete(g.m, key)
			}
		}
		g.mu.Unlock()
		return nil, ctx.Err(), shared
	}
}
