package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/sim"
)

// simLine is the union of the /v1/simulate NDJSON line schemas.
type simLine struct {
	Type          string   `json:"type"`
	SchemaVersion int      `json:"schema_version"`
	N             int      `json:"n"`
	Alphas        []string `json:"alphas"`
	Trajectories  int      `json:"trajectories"`
	Scheduler     string   `json:"scheduler"`
	Seed          uint64   `json:"seed"`
	// item fields
	Index      int    `json:"index"`
	AlphaIndex int    `json:"alpha_index"`
	Steps      int    `json:"steps"`
	Converged  bool   `json:"converged"`
	Init       string `json:"init"`
	// summary fields
	Completed bool               `json:"completed"`
	Delivered int                `json:"delivered"`
	Summaries []sim.AlphaSummary `json:"summaries"`
	Error     string             `json:"error"`
}

func parseSimNDJSON(t *testing.T, body string) []simLine {
	t.Helper()
	var lines []simLine
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var l simLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestSimulateEndpointStreams: /v1/simulate emits a header echoing the
// resolved parameters, every trajectory in index order, and a summary
// trailer matching a direct sim.Run of the same options.
func TestSimulateEndpointStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/simulate?n=16&alphas=2,50&trajectories=4&seed=9"
	status, body := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := parseSimNDJSON(t, body)
	if len(lines) != 1+8+1 {
		t.Fatalf("got %d lines, want header + 8 items + summary", len(lines))
	}
	hdr := lines[0]
	if hdr.Type != "header" || hdr.N != 16 || hdr.Trajectories != 4 ||
		hdr.Seed != 9 || hdr.Scheduler != "uniform" || len(hdr.Alphas) != 2 {
		t.Fatalf("bad header: %+v", hdr)
	}
	for i, l := range lines[1:9] {
		if l.Type != "item" || l.Index != i {
			t.Fatalf("item %d: type=%q index=%d", i, l.Type, l.Index)
		}
	}
	sum := lines[len(lines)-1]
	if sum.Type != "summary" || !sum.Completed || sum.Delivered != 8 ||
		len(sum.Summaries) != 2 || sum.Error != "" {
		t.Fatalf("bad summary: %+v", sum)
	}
}

// TestSimulateEndpointDeterministic: the stream is a pure function of the
// URL — two requests return byte-identical bodies.
func TestSimulateEndpointDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	url := ts.URL + "/v1/simulate?n=14&alphas=1/2,3&trajectories=5&seed=77&scheduler=breakpoint-guided&moves=bge"
	_, first := get(t, url)
	_, second := get(t, url)
	if first != second {
		t.Fatalf("streams differ:\n%s\nvs\n%s", first, second)
	}
	lines := parseSimNDJSON(t, first)
	if got := lines[0].Scheduler; got != "breakpoint" {
		t.Fatalf("header scheduler %q, want breakpoint", got)
	}
}

// TestSimulateEndpointObserved: simulate requests land in the per-route
// metrics like any admitted route.
func TestSimulateEndpointObserved(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, body := get(t, ts.URL+"/v1/simulate?n=8&alphas=2&trajectories=2"); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `route="/v1/simulate"`) {
		t.Fatal("/metrics does not label the /v1/simulate route")
	}
}
