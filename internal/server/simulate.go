package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/dynamics"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// ndjsonEncoder couples the JSON encoder with the response flusher so
// every streamed line reaches the client as it is produced.
type ndjsonEncoder struct {
	enc *json.Encoder
	fl  http.Flusher
}

func newNDJSONEncoder(w http.ResponseWriter) *ndjsonEncoder {
	fl, _ := w.(http.Flusher)
	return &ndjsonEncoder{enc: json.NewEncoder(w), fl: fl}
}

func (e *ndjsonEncoder) encode(v any) error {
	if err := e.enc.Encode(v); err != nil {
		return err
	}
	if e.fl != nil {
		e.fl.Flush()
	}
	return nil
}

// GET /v1/simulate — the sampled-dynamics workload: a batch of
// improving-response trajectories on the incremental-distance engine,
// streamed as NDJSON in deterministic index order. Unlike /v1/sweep there
// is no singleflight group: the seed parameterizes every batch, and each
// trajectory line streams as soon as its index is next, so requests
// compute inline under the normal admission control and request timeout.

// simHeader is the first NDJSON line: the batch parameters echoed back,
// so a saved stream is self-describing and replayable.
type simHeader struct {
	Type          string   `json:"type"` // "header"
	SchemaVersion int      `json:"schema_version"`
	N             int      `json:"n"`
	Alphas        []string `json:"alphas"`
	Trajectories  int      `json:"trajectories"`
	Inits         []string `json:"inits"`
	Moves         []string `json:"moves"`
	Scheduler     string   `json:"scheduler"`
	Seed          uint64   `json:"seed"`
	MaxSteps      int      `json:"max_steps"`
	EdgeProb      float64  `json:"edge_prob"`
	Variant       string   `json:"variant,omitempty"`
}

// simItemLine wraps one finished trajectory with the NDJSON line type.
type simItemLine struct {
	Type string `json:"type"` // "item"
	sim.Trajectory
}

// simSummary is the trailer: per-α aggregates plus completion state.
type simSummary struct {
	Type      string             `json:"type"` // "summary"
	Completed bool               `json:"completed"`
	Delivered int                `json:"delivered"`
	Summaries []sim.AlphaSummary `json:"summaries"`
	Error     string             `json:"error,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n, err := strconv.Atoi(q.Get("n"))
	if err != nil || n < 2 {
		writeError(w, badRequest("bad n %q", q.Get("n")))
		return
	}
	if n > s.cfg.MaxSimN {
		writeError(w, overLimit("n=%d exceeds the server limit %d", n, s.cfg.MaxSimN))
		return
	}
	alphas, err := s.parseAlphas(r)
	if err != nil {
		writeError(w, err)
		return
	}
	trajectories := 10
	if t := q.Get("trajectories"); t != "" {
		trajectories, err = strconv.Atoi(t)
		if err != nil || trajectories < 1 {
			writeError(w, badRequest("bad trajectories %q", t))
			return
		}
	}
	if total := len(alphas) * trajectories; total > s.cfg.MaxTrajectories {
		writeError(w, overLimit("%d trajectories (alphas × trajectories) exceed the server limit %d",
			total, s.cfg.MaxTrajectories))
		return
	}
	inits, err := sim.ParseInits(q.Get("init"))
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	var kinds []dynamics.Kind
	switch q.Get("moves") {
	case "", "ps":
		kinds = []dynamics.Kind{dynamics.RemoveKind, dynamics.AddKind}
	case "bge":
		kinds = []dynamics.Kind{dynamics.RemoveKind, dynamics.AddKind, dynamics.SwapKind}
	default:
		writeError(w, badRequest("unknown moves %q (want ps or bge)", q.Get("moves")))
		return
	}
	sched, ok := dynamics.ParseScheduler(q.Get("scheduler"))
	if !ok {
		writeError(w, badRequest("unknown scheduler %q", q.Get("scheduler")))
		return
	}
	var seed uint64
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, badRequest("bad seed %q", v))
			return
		}
	}
	var edgeProb float64
	if v := q.Get("p"); v != "" {
		edgeProb, err = strconv.ParseFloat(v, 64)
		if err != nil || edgeProb < 0 || edgeProb > 1 {
			writeError(w, badRequest("bad edge probability %q", v))
			return
		}
	}
	maxSteps := 0
	if v := q.Get("max-steps"); v != "" {
		maxSteps, err = strconv.Atoi(v)
		if err != nil || maxSteps < 0 {
			writeError(w, badRequest("bad max-steps %q", v))
			return
		}
	}
	variant, err := s.parseVariant(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := variant.Validate(n); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	opts := sim.Options{
		N:            n,
		Alphas:       alphas,
		Trajectories: trajectories,
		Inits:        inits,
		Kinds:        kinds,
		Scheduler:    sched,
		MaxSteps:     maxSteps,
		Seed:         seed,
		EdgeProb:     edgeProb,
		Workers:      s.cfg.Workers,
		Variant:      variant,
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	enc := newNDJSONEncoder(w)
	// Resolve defaults for the echoed header exactly as Run will.
	hdrSeed := seed
	if hdrSeed == 0 {
		hdrSeed = dynamics.DefaultSeed
	}
	hdrSteps := maxSteps
	if hdrSteps == 0 {
		hdrSteps = 10 * n * n
	}
	hdrProb := edgeProb
	if hdrProb == 0 {
		hdrProb = 4 / float64(n)
	}
	initNames := make([]string, len(inits))
	for i, in := range inits {
		initNames[i] = in.String()
	}
	moveNames := make([]string, 0, len(kinds))
	for _, k := range kinds {
		switch k {
		case dynamics.RemoveKind:
			moveNames = append(moveNames, "remove")
		case dynamics.AddKind:
			moveNames = append(moveNames, "add")
		case dynamics.SwapKind:
			moveNames = append(moveNames, "swap")
		}
	}
	header := simHeader{
		Type:          "header",
		SchemaVersion: sweep.SchemaVersion,
		N:             n,
		Alphas:        alphaStrings(alphas),
		Trajectories:  trajectories,
		Inits:         initNames,
		Moves:         moveNames,
		Scheduler:     sched.String(),
		Seed:          hdrSeed,
		MaxSteps:      hdrSteps,
		EdgeProb:      hdrProb,
		Variant:       variant.Key(),
	}
	if enc.encode(header) != nil {
		return
	}

	clientGone := false
	opts.OnTrajectory = func(tr sim.Trajectory) {
		if clientGone {
			return
		}
		if enc.encode(simItemLine{Type: "item", Trajectory: tr}) != nil {
			clientGone = true
			cancel() // no reader left; stop the workers
		}
	}

	res, runErr := sim.Run(ctx, opts)
	if clientGone {
		return
	}
	summary := simSummary{
		Type:      "summary",
		Completed: res.Completed,
		Delivered: len(res.Items),
		Summaries: res.Summaries,
	}
	if runErr != nil {
		summary.Error = runErr.Error()
	}
	enc.encode(summary)
}
