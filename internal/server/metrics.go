package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Prometheus-style observability without a client dependency: the daemon
// exposes the standard text exposition format on GET /metrics. The
// registry machinery lives in internal/obs (shared with the worker and
// sweep sidecars); this file wires the serving plane's instruments onto
// it. Per-route request counters and latency histograms are recorded by
// the ServeHTTP middleware; gauges (in-flight requests, cache and store
// state, flight counts) are sampled live at scrape time, so the scrape
// is always consistent with /healthz.

// metricRoutes are the route labels the middleware records under. Paths
// outside the served API collapse into "other" so an URL-scanning client
// cannot grow the label space without bound.
var metricRoutes = []string{
	"/v1/sweep", "/v1/poa", "/v1/critical", "/v1/check", "/v1/simulate",
	"/healthz", "/metrics", "other",
}

func metricRoute(path string) string {
	for _, r := range metricRoutes[:len(metricRoutes)-1] {
		if path == r {
			return r
		}
	}
	return "other"
}

// latencyBuckets are the histogram upper bounds in seconds (an implicit
// +Inf bucket follows): 100µs to 10s, covering certificate-cache hits
// through cold exhaustive sweeps.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricsRegistry holds the middleware-recorded instruments plus the
// obs.Registry carrying every family the daemon exposes.
type metricsRegistry struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // by route, code
	duration *obs.HistogramVec // by route
	rejected *obs.CounterVec   // admission rejections by reason

	rewarms       *obs.Counter // replica re-warm passes completed
	rewarmRecords atomic.Int64 // records loaded by the last re-warm
}

// newMetricsRegistry builds the daemon's exposition. Families register
// in the order they render; scrape-time gauges close over s, so this
// runs after the Server's other fields are in place.
func newMetricsRegistry(s *Server) *metricsRegistry {
	reg := obs.NewRegistry()
	m := &metricsRegistry{reg: reg, rewarms: &obs.Counter{}}

	m.requests = reg.CounterVec("bncg_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	m.duration = reg.HistogramVec("bncg_http_request_duration_seconds",
		"HTTP request latency, by route.", latencyBuckets, "route")
	reg.GaugeFunc("bncg_http_inflight_requests", "Requests currently being served.",
		func() float64 { return float64(s.inflight.Load()) })
	m.rejected = reg.CounterVec("bncg_http_requests_rejected_total",
		"Requests rejected by admission control, by reason.", "reason")
	if s.gate != nil {
		reg.GaugeFunc("bncg_http_queued_requests", "Requests waiting for an in-flight slot.",
			func() float64 { return float64(s.gate.queuedCount()) })
	}

	// Singleflight: computations started vs streams served measures the
	// dedup win; live flights show what is burning CPU right now.
	reg.GaugeFunc("bncg_sweep_flights_inflight", "Shared sweep computations currently running.",
		func() float64 { return float64(s.sweeps.live()) })
	reg.Custom("bncg_sweep_flights_started_total",
		"Shared sweep computations ever started; /v1/sweep requests minus this is the singleflight join count.",
		"counter", func(e *obs.Exposition) { e.SampleInt(s.sweeps.startedCount()) })

	// Verdict cache.
	reg.Custom("bncg_cache_entries", "Memoized entries, by kind.", "gauge",
		func(e *obs.Exposition) {
			cs := s.cfg.Cache.Stats()
			e.SampleInt(int64(cs.Verdicts), obs.L("kind", "verdict"))
			e.SampleInt(int64(cs.Certificates), obs.L("kind", "certificate"))
		})
	reg.Custom("bncg_cache_hits_total", "Verdicts answered from the cache.", "counter",
		func(e *obs.Exposition) { e.SampleInt(s.cfg.Cache.Stats().Hits) })
	reg.Custom("bncg_cache_misses_total", "Verdicts that fell through to a checker or certification.", "counter",
		func(e *obs.Exposition) { e.SampleInt(s.cfg.Cache.Stats().Misses) })
	reg.GaugeFunc("bncg_cache_hit_ratio", "Lifetime cache hit ratio (0 when no lookups yet).",
		func() float64 {
			cs := s.cfg.Cache.Stats()
			if total := cs.Hits + cs.Misses; total > 0 {
				return float64(cs.Hits) / float64(total)
			}
			return 0
		})

	// Store.
	if s.cfg.Store != nil {
		reg.Custom("bncg_store_records", "Persisted records, by kind.", "gauge",
			func(e *obs.Exposition) {
				st := s.cfg.Store.Stats()
				e.SampleInt(int64(st.VerdictRecords), obs.L("kind", "verdict"))
				e.SampleInt(int64(st.CertificateRecords), obs.L("kind", "certificate"))
			})
		reg.GaugeFunc("bncg_store_disk_bytes", "Durable segment bytes on disk.",
			func() float64 { return float64(s.cfg.Store.Stats().DiskBytes) })
		reg.GaugeFunc("bncg_store_pending_records", "Records buffered in memory awaiting flush.",
			func() float64 { return float64(s.cfg.Store.Stats().Pending) })
		reg.Custom("bncg_store_flush_failures_total",
			"Failed store flushes; non-zero means durability is degraded.", "counter",
			func(e *obs.Exposition) { e.SampleInt(s.cfg.Store.Stats().FlushFailures) })
	}

	// Replica state.
	reg.GaugeFunc("bncg_readonly", "1 when serving as a read replica, 0 when writable.",
		func() float64 {
			if s.cfg.ReadOnly {
				return 1
			}
			return 0
		})
	if s.cfg.ReadOnly {
		reg.Custom("bncg_replica_rewarms_total", "Completed replica re-warm passes.", "counter",
			func(e *obs.Exposition) { e.SampleInt(m.rewarms.Value()) })
		reg.GaugeFunc("bncg_replica_rewarm_records", "Store records held by the cache after the last re-warm.",
			func() float64 { return float64(m.rewarmRecords.Load()) })
	}

	reg.Custom("bncg_uptime_seconds", "Seconds since the daemon started.", "gauge",
		func(e *obs.Exposition) { e.SampleInt(int64(time.Since(s.started).Seconds())) })
	return m
}

// observe records one finished request.
func (m *metricsRegistry) observe(route string, code int, d time.Duration) {
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.duration.With(route).Observe(d.Seconds())
}

// reject counts one admission-control rejection by reason
// ("rate", "capacity", "queue_timeout").
func (m *metricsRegistry) reject(reason string) {
	m.rejected.With(reason).Inc()
}

// rejectedSnapshot returns the rejection counts by reason, for /healthz.
func (m *metricsRegistry) rejectedSnapshot() map[string]int64 {
	var out map[string]int64
	m.rejected.Each(func(values []string, n int64) {
		if out == nil {
			out = make(map[string]int64)
		}
		out[values[0]] = n
	})
	return out
}

// rewarmed records one completed replica re-warm pass that left the cache
// holding loaded store records.
func (m *metricsRegistry) rewarmed(loaded int) {
	m.rewarms.Inc()
	m.rewarmRecords.Store(int64(loaded))
}

// statusRecorder captures the response status for the metrics middleware
// while passing Flush through, so NDJSON streaming keeps working behind
// it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WriteText(w)
}
