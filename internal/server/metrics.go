package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Prometheus-style observability, hand-rolled: the daemon exposes the
// standard text exposition format on GET /metrics without taking a client
// dependency. Per-route request counters and latency histograms are
// recorded by the ServeHTTP middleware; gauges (in-flight requests, cache
// and store state, flight counts) are sampled live at scrape time, so the
// scrape is always consistent with /healthz.

// metricRoutes are the route labels the middleware records under. Paths
// outside the served API collapse into "other" so an URL-scanning client
// cannot grow the label space without bound.
var metricRoutes = []string{
	"/v1/sweep", "/v1/poa", "/v1/critical", "/v1/check",
	"/healthz", "/metrics", "other",
}

func metricRoute(path string) string {
	for _, r := range metricRoutes[:len(metricRoutes)-1] {
		if path == r {
			return r
		}
	}
	return "other"
}

// latencyBuckets are the histogram upper bounds in seconds (an implicit
// +Inf bucket follows): 100µs to 10s, covering certificate-cache hits
// through cold exhaustive sweeps.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// routeMetrics accumulates one route's counters under its own lock; the
// critical section is a handful of integer adds, so contention stays
// negligible next to the handlers themselves.
type routeMetrics struct {
	mu       sync.Mutex
	byCode   map[int]int64
	buckets  []int64 // len(latencyBuckets)+1, last is +Inf
	sumNanos int64
	count    int64
}

// metricsRegistry holds everything the middleware records (as opposed to
// the gauges sampled at scrape time).
type metricsRegistry struct {
	routes map[string]*routeMetrics

	mu            sync.Mutex
	rejected      map[string]int64 // admission rejections by reason
	rewarms       int64            // replica re-warm passes completed
	rewarmRecords int64            // records loaded by the last re-warm
}

func newMetricsRegistry() *metricsRegistry {
	reg := &metricsRegistry{
		routes:   make(map[string]*routeMetrics, len(metricRoutes)),
		rejected: make(map[string]int64),
	}
	for _, r := range metricRoutes {
		reg.routes[r] = &routeMetrics{
			byCode:  make(map[int]int64),
			buckets: make([]int64, len(latencyBuckets)+1),
		}
	}
	return reg
}

// observe records one finished request.
func (m *metricsRegistry) observe(route string, code int, d time.Duration) {
	rm := m.routes[route]
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	rm.mu.Lock()
	rm.byCode[code]++
	rm.buckets[i]++
	rm.sumNanos += d.Nanoseconds()
	rm.count++
	rm.mu.Unlock()
}

// reject counts one admission-control rejection by reason
// ("rate", "capacity", "queue_timeout").
func (m *metricsRegistry) reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// rewarmed records one completed replica re-warm pass that left the cache
// holding loaded store records.
func (m *metricsRegistry) rewarmed(loaded int) {
	m.mu.Lock()
	m.rewarms++
	m.rewarmRecords = int64(loaded)
	m.mu.Unlock()
}

// statusRecorder captures the response status for the metrics middleware
// while passing Flush through, so NDJSON streaming keeps working behind
// it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// ---- exposition ----

func writeMetricHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// handleMetrics renders the Prometheus text exposition: the recorded
// per-route counters and histograms plus live gauges sampled from the
// cache, the store and the flight groups.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	// Per-route request counters by status code.
	writeMetricHeader(w, "bncg_http_requests_total", "HTTP requests served, by route and status code.", "counter")
	for _, route := range metricRoutes {
		rm := s.metrics.routes[route]
		rm.mu.Lock()
		codes := make([]int, 0, len(rm.byCode))
		for c := range rm.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "bncg_http_requests_total{route=%q,code=\"%d\"} %d\n", route, c, rm.byCode[c])
		}
		rm.mu.Unlock()
	}

	// Per-route latency histograms.
	writeMetricHeader(w, "bncg_http_request_duration_seconds", "HTTP request latency, by route.", "histogram")
	for _, route := range metricRoutes {
		rm := s.metrics.routes[route]
		rm.mu.Lock()
		if rm.count == 0 {
			rm.mu.Unlock()
			continue
		}
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += rm.buckets[i]
			fmt.Fprintf(w, "bncg_http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				route, formatFloat(le), cum)
		}
		cum += rm.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "bncg_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(w, "bncg_http_request_duration_seconds_sum{route=%q} %s\n",
			route, formatFloat(float64(rm.sumNanos)/1e9))
		fmt.Fprintf(w, "bncg_http_request_duration_seconds_count{route=%q} %d\n", route, rm.count)
		rm.mu.Unlock()
	}

	// Traffic and admission gauges/counters.
	writeMetricHeader(w, "bncg_http_inflight_requests", "Requests currently being served.", "gauge")
	fmt.Fprintf(w, "bncg_http_inflight_requests %d\n", s.inflight.Load())
	writeMetricHeader(w, "bncg_http_requests_rejected_total", "Requests rejected by admission control, by reason.", "counter")
	s.metrics.mu.Lock()
	reasons := make([]string, 0, len(s.metrics.rejected))
	for reason := range s.metrics.rejected {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(w, "bncg_http_requests_rejected_total{reason=%q} %d\n", reason, s.metrics.rejected[reason])
	}
	rewarms, rewarmRecords := s.metrics.rewarms, s.metrics.rewarmRecords
	s.metrics.mu.Unlock()
	if s.gate != nil {
		writeMetricHeader(w, "bncg_http_queued_requests", "Requests waiting for an in-flight slot.", "gauge")
		fmt.Fprintf(w, "bncg_http_queued_requests %d\n", s.gate.queuedCount())
	}

	// Singleflight: computations started vs streams served measures the
	// dedup win; live flights show what is burning CPU right now.
	writeMetricHeader(w, "bncg_sweep_flights_inflight", "Shared sweep computations currently running.", "gauge")
	fmt.Fprintf(w, "bncg_sweep_flights_inflight %d\n", s.sweeps.live())
	writeMetricHeader(w, "bncg_sweep_flights_started_total", "Shared sweep computations ever started; /v1/sweep requests minus this is the singleflight join count.", "counter")
	fmt.Fprintf(w, "bncg_sweep_flights_started_total %d\n", s.sweeps.startedCount())

	// Verdict cache.
	cs := s.cfg.Cache.Stats()
	writeMetricHeader(w, "bncg_cache_entries", "Memoized entries, by kind.", "gauge")
	fmt.Fprintf(w, "bncg_cache_entries{kind=\"verdict\"} %d\n", cs.Verdicts)
	fmt.Fprintf(w, "bncg_cache_entries{kind=\"certificate\"} %d\n", cs.Certificates)
	writeMetricHeader(w, "bncg_cache_hits_total", "Verdicts answered from the cache.", "counter")
	fmt.Fprintf(w, "bncg_cache_hits_total %d\n", cs.Hits)
	writeMetricHeader(w, "bncg_cache_misses_total", "Verdicts that fell through to a checker or certification.", "counter")
	fmt.Fprintf(w, "bncg_cache_misses_total %d\n", cs.Misses)
	writeMetricHeader(w, "bncg_cache_hit_ratio", "Lifetime cache hit ratio (0 when no lookups yet).", "gauge")
	ratio := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		ratio = float64(cs.Hits) / float64(total)
	}
	fmt.Fprintf(w, "bncg_cache_hit_ratio %s\n", formatFloat(ratio))

	// Store.
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		writeMetricHeader(w, "bncg_store_records", "Persisted records, by kind.", "gauge")
		fmt.Fprintf(w, "bncg_store_records{kind=\"verdict\"} %d\n", st.VerdictRecords)
		fmt.Fprintf(w, "bncg_store_records{kind=\"certificate\"} %d\n", st.CertificateRecords)
		writeMetricHeader(w, "bncg_store_disk_bytes", "Durable segment bytes on disk.", "gauge")
		fmt.Fprintf(w, "bncg_store_disk_bytes %d\n", st.DiskBytes)
		writeMetricHeader(w, "bncg_store_pending_records", "Records buffered in memory awaiting flush.", "gauge")
		fmt.Fprintf(w, "bncg_store_pending_records %d\n", st.Pending)
		writeMetricHeader(w, "bncg_store_flush_failures_total", "Failed store flushes; non-zero means durability is degraded.", "counter")
		fmt.Fprintf(w, "bncg_store_flush_failures_total %d\n", st.FlushFailures)
	}

	// Replica state.
	writeMetricHeader(w, "bncg_readonly", "1 when serving as a read replica, 0 when writable.", "gauge")
	if s.cfg.ReadOnly {
		fmt.Fprintln(w, "bncg_readonly 1")
	} else {
		fmt.Fprintln(w, "bncg_readonly 0")
	}
	if s.cfg.ReadOnly {
		writeMetricHeader(w, "bncg_replica_rewarms_total", "Completed replica re-warm passes.", "counter")
		fmt.Fprintf(w, "bncg_replica_rewarms_total %d\n", rewarms)
		writeMetricHeader(w, "bncg_replica_rewarm_records", "Store records held by the cache after the last re-warm.", "gauge")
		fmt.Fprintf(w, "bncg_replica_rewarm_records %d\n", rewarmRecords)
	}

	writeMetricHeader(w, "bncg_uptime_seconds", "Seconds since the daemon started.", "gauge")
	fmt.Fprintf(w, "bncg_uptime_seconds %d\n", int64(time.Since(s.started).Seconds()))
}
