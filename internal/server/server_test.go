package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/sweep"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = sweep.NewCache()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

type ndjsonLine struct {
	Type        string  `json:"type"`
	N           int     `json:"n"`
	Source      string  `json:"source"`
	AlphaIndex  int     `json:"alpha_index"`
	GraphIndex  int     `json:"graph_index"`
	Vector      uint16  `json:"vector"`
	Rho         float64 `json:"rho"`
	FromCache   bool    `json:"from_cache"`
	Graph       string  `json:"graph"`
	Graphs      int     `json:"graphs"`
	Completed   int     `json:"completed"`
	Total       int     `json:"total"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Error       string  `json:"error"`
}

func parseNDJSON(t *testing.T, body string) []ndjsonLine {
	t.Helper()
	var lines []ndjsonLine
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var l ndjsonLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestSweepEndpointMatchesEngine: /v1/sweep streams a header, every item
// in the deterministic α-major order with the exact vectors the engine
// computes, and a summary trailer.
func TestSweepEndpointMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/sweep?n=4&alphas=1/2,2&concepts=PS,BSE&rho=1"
	status, body := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := parseNDJSON(t, body)
	want, err := sweep.Run(context.Background(), sweep.Options{
		N:        4,
		Alphas:   []game.Alpha{game.AFrac(1, 2), game.A(2)},
		Concepts: []eq.Concept{eq.PS, eq.BSE},
		Rho:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Type != "header" || lines[0].N != 4 || lines[0].Source != "graphs" {
		t.Fatalf("bad header: %+v", lines[0])
	}
	items := lines[1 : len(lines)-1]
	if len(items) != len(want.Items) {
		t.Fatalf("streamed %d items, want %d", len(items), len(want.Items))
	}
	for i, l := range items {
		w := want.Items[i]
		if l.Type != "item" || l.AlphaIndex != w.AlphaIndex || l.GraphIndex != w.GraphIndex ||
			l.Vector != uint16(w.Vector) || l.Rho != w.Rho {
			t.Fatalf("item %d: got %+v, want %+v", i, l, w)
		}
		if (l.AlphaIndex == 0) != (l.Graph != "") {
			t.Fatalf("item %d: graph encoding on the wrong row: %+v", i, l)
		}
		if l.AlphaIndex == 0 && l.Graph != graph.Encode(w.Graph) {
			t.Fatalf("item %d: wrong graph encoding", i)
		}
	}
	sum := lines[len(lines)-1]
	if sum.Type != "summary" || sum.Completed != len(want.Items) || sum.Graphs != want.Graphs || sum.Error != "" {
		t.Fatalf("bad summary: %+v", sum)
	}
}

// TestSweepEndpointSecondRequestFromCache: an identical second request is
// served from the verdict cache — the store/cache-backed read path.
func TestSweepEndpointSecondRequestFromCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/sweep?n=4&alphas=1,2&concepts=PS,BGE"
	_, first := get(t, url)
	_, second := get(t, url)
	f, s := parseNDJSON(t, first), parseNDJSON(t, second)
	if len(f) != len(s) {
		t.Fatalf("line counts differ: %d vs %d", len(f), len(s))
	}
	sum := s[len(s)-1]
	if sum.CacheMisses != 0 || sum.CacheHits == 0 {
		t.Fatalf("second request not served from cache: %+v", sum)
	}
	for i := range f {
		if f[i].Type != "item" {
			continue
		}
		if f[i].Vector != s[i].Vector || f[i].AlphaIndex != s[i].AlphaIndex || f[i].GraphIndex != s[i].GraphIndex {
			t.Fatalf("item %d differs across requests: %+v vs %+v", i, f[i], s[i])
		}
		if !s[i].FromCache {
			t.Fatalf("second-request item %d not from cache", i)
		}
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, tolerating runtime goroutines that retire lazily.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d before\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSweepCancelledClientDrainsWorkers: a client that disconnects mid
// /v1/sweep stream releases its flight; as the last subscriber it cancels
// the computation, whose workers drain without leaking goroutines.
func TestSweepCancelledClientDrainsWorkers(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// All nine concepts at n=5 is a multi-second sweep — plenty of stream
	// left when the client walks away after two lines.
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/sweep?n=5&alphas=1/2,1,3/2,2&concepts=all", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	cancel()
	resp.Body.Close()
	waitForGoroutines(t, before)
	if live := srv.sweeps.live(); live != 0 {
		t.Fatalf("%d flights still live after the last client left", live)
	}
}

// TestSweepSingleflight: concurrent identical requests share one flight —
// the computation starts once and every subscriber still gets the
// complete, identical, ordered stream. The grid (n=5, all nine concepts)
// takes long enough that all clients overlap the single computation.
func TestSweepSingleflight(t *testing.T) {
	cache := sweep.NewCache()
	srv, ts := newTestServer(t, Config{Cache: cache})
	url := ts.URL + "/v1/sweep?n=5&alphas=1/2,1&concepts=all"
	const clients = 4
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		lines := parseNDJSON(t, b)
		sum := lines[len(lines)-1]
		if sum.Type != "summary" || sum.Completed != sum.Total || sum.Error != "" {
			t.Fatalf("client %d got an incomplete stream: %+v", i, sum)
		}
		// The shared flight gives every subscriber the same items; strip
		// the header (whose "shared" flag legitimately differs) and
		// compare the streams byte for byte.
		first := bodies[0][strings.IndexByte(bodies[0], '\n'):]
		this := b[strings.IndexByte(b, '\n'):]
		if this != first {
			t.Fatalf("client %d streamed different bytes than client 0", i)
		}
	}
	if n := srv.sweeps.startedCount(); n != 1 {
		t.Fatalf("%d computations started for %d identical concurrent requests", n, clients)
	}
}

// TestPoAEndpoint: /v1/poa returns the exact search result as JSON.
func TestPoAEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/poa?n=5&alpha=2&concept=PS")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		N          int     `json:"n"`
		Alpha      string  `json:"alpha"`
		Concept    string  `json:"concept"`
		Rho        float64 `json:"rho"`
		Witness    string  `json:"witness"`
		Equilibria int     `json:"equilibria"`
		Partial    bool    `json:"partial"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 5 || resp.Alpha != "2" || resp.Concept != "PS" || resp.Partial {
		t.Fatalf("bad response: %+v", resp)
	}
	if resp.Rho < 1 || resp.Equilibria == 0 || resp.Witness == "" {
		t.Fatalf("degenerate PoA result: %+v", resp)
	}
}

// TestCheckEndpoint: /v1/check verdicts match the library checkers, cache
// repeat queries, and carry witnesses when forced.
func TestCheckEndpoint(t *testing.T) {
	cache := sweep.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache})
	star := graph.Encode(game.Star(6))
	post := func(query string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/check?"+query, "text/plain", strings.NewReader(star))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	status, body := post("alpha=2")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		N       int `json:"n"`
		Results []struct {
			Concept   string `json:"concept"`
			Stable    bool   `json:"stable"`
			Witness   string `json:"witness"`
			FromCache bool   `json:"from_cache"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 6 || len(resp.Results) != 9 {
		t.Fatalf("bad response: %s", body)
	}
	for _, r := range resp.Results {
		if !r.Stable {
			t.Fatalf("star at α=2 unstable for %s", r.Concept)
		}
		if r.FromCache {
			t.Fatalf("first query claimed a cache hit for %s", r.Concept)
		}
	}
	// Repeat: all nine verdicts now come from the cache.
	_, body = post("alpha=2")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		if !r.FromCache {
			t.Fatalf("repeat query recomputed %s", r.Concept)
		}
	}
	// An unstable verdict with witness=1 carries the violating move.
	status, body = post("alpha=1/2&concept=BAE&witness=1")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Stable || resp.Results[0].Witness == "" {
		t.Fatalf("witness missing: %s", body)
	}
}

// TestHealthz: liveness with cache and store statistics.
func TestHealthz(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := sweep.NewCache()
	cache.Persist(st)
	_, ts := newTestServer(t, Config{Cache: cache, Store: st})
	get(t, ts.URL+"/v1/sweep?n=4&alphas=1&concepts=PS")

	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var h struct {
		Status string           `json:"status"`
		Served int64            `json:"requests_served"`
		Cache  sweep.CacheStats `json:"cache"`
		Store  *store.Stats     `json:"store"`
		Limits map[string]int   `json:"limits"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Served == 0 {
		t.Fatalf("bad healthz: %s", body)
	}
	if h.Cache.Entries == 0 || h.Cache.Misses == 0 {
		t.Fatalf("healthz cache stats empty after a sweep: %+v", h.Cache)
	}
	if h.Store == nil || h.Store.Appended == 0 {
		t.Fatalf("healthz store stats missing: %s", body)
	}
	if h.Limits["max_n"] != 7 {
		t.Fatalf("default limits not surfaced: %v", h.Limits)
	}
}

// TestRequestValidation: limit and syntax violations map to 422 and 400.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxN: 5, MaxAlphas: 2})
	for _, tc := range []struct {
		url    string
		status int
	}{
		{"/v1/sweep?n=6&alphas=1", http.StatusUnprocessableEntity},
		{"/v1/sweep?n=4&alphas=1,2,3", http.StatusUnprocessableEntity},
		{"/v1/sweep?n=4&alphas=x", http.StatusBadRequest},
		{"/v1/sweep?alphas=1", http.StatusBadRequest},
		{"/v1/sweep?n=4&alphas=1&concepts=XX", http.StatusBadRequest},
		{"/v1/poa?n=4&alpha=2&concept=nope", http.StatusBadRequest},
		{"/v1/poa?n=44&alpha=2&concept=PS&graphs=1", http.StatusUnprocessableEntity},
	} {
		status, body := get(t, ts.URL+tc.url)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.url, status, tc.status, strings.TrimSpace(body))
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error body missing: %s", tc.url, body)
		}
	}
}

// TestRequestTimeout: a computation exceeding RequestTimeout ends with a
// partial summary carrying the deadline error, not a hung stream. The
// n=6 all-concepts stream costs seconds cold (the certificate engine
// finishes n=5 inside tens of milliseconds, too fast to outlast any
// usable deadline), so the 50ms deadline always cuts it mid-stream.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond, Workers: 1})
	status, body := get(t, ts.URL+"/v1/sweep?n=6&alphas=1/2,1,3/2,2,3,5&concepts=all")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	lines := parseNDJSON(t, body)
	sum := lines[len(lines)-1]
	// Under instrumentation (-race) the deadline can fire before any item
	// — or even the enumeration — completes, leaving Total 0; that is still
	// a partial deadline summary.
	if sum.Type != "summary" || sum.Error == "" || (sum.Total > 0 && sum.Completed >= sum.Total) {
		t.Fatalf("expected a partial deadline summary, got %+v", sum)
	}
}

// TestCriticalEndpoint: /v1/critical returns the exact per-concept
// breakpoints, agrees with the engine's own critical report, and
// deduplicates identical requests like the other computation endpoints.
func TestCriticalEndpoint(t *testing.T) {
	cache := sweep.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache})
	status, body := get(t, ts.URL+"/v1/critical?n=4&concepts=RE,BAE")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		N        int    `json:"n"`
		Source   string `json:"source"`
		Classes  int    `json:"classes"`
		Critical []struct {
			Concept string   `json:"concept"`
			Alphas  []string `json:"alphas"`
		} `json:"critical"`
		Report string `json:"report"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("critical response not JSON: %v\n%s", err, body)
	}
	if resp.N != 4 || resp.Source != "graphs" || resp.Classes != 6 || len(resp.Critical) != 2 {
		t.Fatalf("unexpected critical response: %+v", resp)
	}
	want, err := sweep.Run(context.Background(), sweep.Options{
		N:        4,
		Alphas:   []game.Alpha{game.A(1)},
		Concepts: []eq.Concept{eq.RE, eq.BAE},
		Cache:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report != want.CriticalReport() {
		t.Fatalf("report differs from the engine:\n%q\nvs\n%q", resp.Report, want.CriticalReport())
	}
	for i, cc := range want.Critical {
		if resp.Critical[i].Concept != cc.Concept.String() || len(resp.Critical[i].Alphas) != len(cc.Alphas) {
			t.Fatalf("critical row %d: %+v vs engine %+v", i, resp.Critical[i], cc)
		}
		for j, a := range cc.Alphas {
			if resp.Critical[i].Alphas[j] != a.String() {
				t.Fatalf("critical row %d breakpoint %d: %q vs %q", i, j, resp.Critical[i].Alphas[j], a)
			}
		}
	}
	// The K4 clique flips RE at exactly α = 1.
	foundOne := false
	for _, a := range resp.Critical[0].Alphas {
		if a == "1" {
			foundOne = true
		}
	}
	if !foundOne {
		t.Fatalf("RE critical row misses the clique breakpoint 1: %+v", resp.Critical[0])
	}
	// Caps and validation ride the shared helpers.
	if status, _ := get(t, ts.URL+"/v1/critical?n=99"); status != http.StatusUnprocessableEntity {
		t.Fatalf("oversized n: status %d", status)
	}
	if status, _ := get(t, ts.URL+"/v1/critical?n=4&concepts=nope"); status != http.StatusBadRequest {
		t.Fatalf("bad concept: status %d", status)
	}
}

// TestCheckEndpointServedFromCertificate: an uploaded graph whose class
// was certified by an earlier sweep is answered from the certificate —
// at a price no sweep grid ever contained.
func TestCheckEndpointServedFromCertificate(t *testing.T) {
	cache := sweep.NewCache()
	if _, err := sweep.Run(context.Background(), sweep.Options{
		N:        4,
		Alphas:   []game.Alpha{game.A(1)},
		Concepts: []eq.Concept{eq.PS},
		Cache:    cache,
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache})
	// α = 7/3 was never on a grid; only the certificate can answer it
	// without recomputing.
	resp, err := http.Post(ts.URL+"/v1/check?alpha=7/3&concept=PS", "text/plain",
		strings.NewReader(graph.Encode(game.Star(4))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var out struct {
		Results []struct {
			Concept   string `json:"concept"`
			Stable    bool   `json:"stable"`
			FromCache bool   `json:"from_cache"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("check response not JSON: %v\n%s", err, body)
	}
	if len(out.Results) != 1 || !out.Results[0].Stable || !out.Results[0].FromCache {
		t.Fatalf("star at α=7/3 should be a PS-stable certificate hit: %+v", out.Results)
	}
}
