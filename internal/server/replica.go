package server

import "time"

// Read-replica mode. A replica daemon opens the shared store directory
// read-only — no writer flock, so it coexists with a live `bncg sweep
// -store` or writer `bncg serve` — warm-starts its cache from the
// persisted records, and periodically re-warms: Store.Refresh decodes the
// frames the writer flushed since the last pass, and Cache.WarmStart
// folds them into the serving cache. Verdicts and certificates are pure
// functions of their keys, so replicas need no invalidation protocol:
// convergence is append-only and every answer a replica serves is
// byte-identical to the writer's for every persisted (class, concept, α).

// startRewarm launches the re-warm loop; Close stops it.
func (s *Server) startRewarm() {
	s.rewarmStop = make(chan struct{})
	s.rewarmDone = make(chan struct{})
	go func() {
		defer close(s.rewarmDone)
		tick := time.NewTicker(s.cfg.RewarmInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				_, _ = s.rewarm()
			case <-s.rewarmStop:
				return
			}
		}
	}()
}

// rewarm runs one replica re-warm pass: pick up newly flushed store
// frames, then fold the store into the cache. Errors (e.g. a torn read
// racing the writer) leave the previous state serving and are retried on
// the next tick.
func (s *Server) rewarm() (loaded int, err error) {
	if _, err := s.cfg.Store.Refresh(); err != nil {
		return 0, err
	}
	loaded = s.cfg.Cache.WarmStart(s.cfg.Store)
	s.metrics.rewarmed(loaded)
	return loaded, nil
}
