// Package server implements the bncg serving daemon: an HTTP front end
// over the sweep engine, the PoA searches and the equilibrium checkers,
// backed by the shared verdict cache and (optionally) the persistent
// verdict store, so repeat queries are pure memory or disk hits.
//
// Endpoints:
//
//	GET  /v1/sweep?n=5&alphas=1,2&concepts=PS,BSE[&trees=1][&rho=1]
//	     — streams the sweep as NDJSON: one header line, one line per
//	     (α, graph) item in the deterministic α-major stream order, one
//	     summary trailer. Identical concurrent requests share a single
//	     computation; a request cancelled by its client detaches, and the
//	     computation itself is cancelled once its last subscriber is gone.
//	GET  /v1/poa?n=8&alpha=4&concept=PS[&graphs=1]
//	     — the exhaustive Price-of-Anarchy search, deduplicated across
//	     concurrent identical requests, as one JSON object.
//	GET  /v1/critical?n=5[&concepts=PS,BSE][&trees=1]
//	     — the exact critical-α analysis: per concept, the rational
//	     breakpoints at which any class's verdict flips, with the stable
//	     class counts on every region between (and at) them. One
//	     certificate pass answers the whole α-axis; no grid parameter
//	     exists because none is needed. Deduplicated like /v1/poa.
//	POST /v1/check?alpha=3[&concept=PS][&witness=1]
//	     — checks the graph uploaded as the request body (plain edge-list
//	     format). Verdicts are served from the canonical-form cache when
//	     possible; witness=1 forces recomputation so unstable verdicts
//	     carry a witness move.
//	GET  /v1/simulate?n=200&alphas=2,100[&trajectories=50][&init=all]
//	     [&moves=ps|bge][&scheduler=uniform][&seed=7][&p=0.04][&max-steps=0]
//	     — streams a batch of sampled improving-response dynamics
//	     trajectories as NDJSON: one header line echoing the resolved
//	     parameters, one line per trajectory in deterministic index order,
//	     one per-α summary trailer. The seed makes the stream a pure
//	     function of the URL (see simulate.go).
//	GET  /healthz
//	     — liveness plus cache, store and traffic statistics; "degraded"
//	     when store flushes are failing.
//	GET  /metrics
//	     — Prometheus text exposition: per-route request counters and
//	     latency histograms, in-flight and queue gauges, cache hit ratio,
//	     singleflight and store statistics (see metrics.go).
//
// Every request is bounded by Config.RequestTimeout and the Config size
// caps; exceeding a cap is a 422, a malformed request a 400, and
// admission control (limiter.go) sheds excess load with 429/503 before
// any computation starts. Errors are JSON objects
// {"error": "...", "status": N}. With Config.ReadOnly the daemon serves
// as a read replica over a store a separate writer owns (replica.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Config configures New. The zero value serves with the process-wide
// shared cache, no store, and the documented default limits.
type Config struct {
	// Cache is the verdict cache backing /v1/sweep and /v1/check. Nil
	// selects sweep.Shared() — which the PoA search uses unconditionally.
	Cache *sweep.Cache
	// Store, when non-nil, is reported by /healthz. The server never
	// writes it directly: wiring it as the cache's write-behind sink
	// (Cache.Persist), warm-starting the cache from it, and
	// flushing/closing it on shutdown are the caller's composition — the
	// bncg serve command does all three.
	Store *store.Store
	// Workers is the sweep worker-pool size per computation (0 = all CPUs).
	Workers int
	// MaxN and MaxTreeN cap the node count of sweep and PoA enumerations
	// over connected graphs and free trees (defaults 7 and 12: the largest
	// grids that stay interactive — beyond them the streams explode).
	MaxN, MaxTreeN int
	// MaxAlphas caps the α grid of one sweep request (default 16).
	MaxAlphas int
	// MaxCheckN caps the node count of an uploaded /v1/check graph
	// (default 128); request bodies are capped at 1 MiB regardless.
	MaxCheckN int
	// MaxSimN caps the node count of a /v1/simulate batch (default 500)
	// and MaxTrajectories its total trajectory count — the product of the
	// α-grid size and the per-α trajectories (default 2000).
	MaxSimN         int
	MaxTrajectories int
	// RequestTimeout bounds every computation (default 2m). Shared
	// computations time out as a whole, not per subscriber.
	RequestTimeout time.Duration

	// RatePerSec and Burst configure per-client (remote IP) token-bucket
	// rate limiting. RatePerSec 0 disables it — the default. A client over
	// budget gets an immediate 429 with Retry-After.
	RatePerSec float64
	Burst      int
	// MaxInflight caps concurrently admitted requests (default 256);
	// /healthz and /metrics bypass admission so a saturated daemon stays
	// observable. MaxQueue bounds requests waiting for a slot (default
	// MaxInflight) — a request arriving to a full queue is rejected
	// immediately with 429. QueueWait bounds one request's time in the
	// queue (default 1s); exceeding it is a 503.
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration

	// ReadOnly marks the daemon a read replica: Store was opened read-only
	// (no writer flock), nothing is ever persisted, and — when
	// RewarmInterval is positive — a background loop re-warms the cache
	// from segments the writer appended (Store.Refresh), so the replica
	// converges on the writer's verdicts at memory speed. The caller must
	// still warm-start the cache once before New.
	ReadOnly bool
	// RewarmInterval is the replica re-warm period (default 5s when
	// ReadOnly and a Store are set; < 0 disables the loop, for tests that
	// drive re-warms by hand).
	RewarmInterval time.Duration

	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/
	// (bncg serve -pprof). Profiling endpoints go through admission
	// control like any other non-observability route.
	EnablePprof bool

	// DefaultVariant is the game variant served when a request carries no
	// "variant" query parameter (bncg serve -variant). The zero value is
	// the paper's default model; requests override it per call.
	DefaultVariant game.Variant
}

func (c Config) withDefaults() Config {
	if c.Cache == nil {
		c.Cache = sweep.Shared()
	}
	if c.MaxN <= 0 {
		c.MaxN = 7
	}
	if c.MaxTreeN <= 0 {
		c.MaxTreeN = 12
	}
	if c.MaxAlphas <= 0 {
		c.MaxAlphas = 16
	}
	if c.MaxCheckN <= 0 {
		c.MaxCheckN = 128
	}
	if c.MaxSimN <= 0 {
		c.MaxSimN = 500
	}
	if c.MaxTrajectories <= 0 {
		c.MaxTrajectories = 2000
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.RewarmInterval == 0 {
		c.RewarmInterval = 5 * time.Second
	}
	return c
}

// Server is the HTTP handler of the serving daemon. Close releases its
// background resources (the replica re-warm loop, if any).
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sweeps  *flightGroup
	calls   *callGroup
	started time.Time
	metrics *metricsRegistry
	limiter *tokenBuckets
	gate    *gate

	inflight atomic.Int64
	served   atomic.Int64

	rewarmStop chan struct{}
	rewarmDone chan struct{}
}

// New returns a Server for cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		sweeps:  newFlightGroup(),
		calls:   newCallGroup(),
		started: time.Now(),
		limiter: newTokenBuckets(cfg.RatePerSec, cfg.Burst),
		gate:    newGate(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueWait),
	}
	s.metrics = newMetricsRegistry(s)
	s.mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/poa", s.handlePoA)
	s.mux.HandleFunc("GET /v1/critical", s.handleCritical)
	s.mux.HandleFunc("POST /v1/check", s.handleCheck)
	s.mux.HandleFunc("GET /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		obs.MountPprof(s.mux)
	}
	if s.cfg.ReadOnly && s.cfg.Store != nil && s.cfg.RewarmInterval > 0 {
		s.startRewarm()
	}
	return s
}

// Close stops the replica re-warm loop, when one is running. The HTTP
// listener's lifecycle belongs to the caller.
func (s *Server) Close() error {
	if s.rewarmStop != nil {
		close(s.rewarmStop)
		<-s.rewarmDone
		s.rewarmStop, s.rewarmDone = nil, nil
	}
	return nil
}

// ServeHTTP implements http.Handler: admission control (rate limit, then
// the global in-flight gate), the metrics middleware, and the mux.
// Observability routes bypass admission — a saturated daemon must stay
// diagnosable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	route := metricRoute(r.URL.Path)
	rec := &statusRecorder{ResponseWriter: w}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.served.Add(1)
		s.metrics.observe(route, rec.status(), time.Since(start))
	}()
	if route != "/healthz" && route != "/metrics" {
		if s.limiter != nil && !s.limiter.allow(clientKey(r), time.Now()) {
			s.metrics.reject("rate")
			rec.Header().Set("Retry-After", "1")
			writeError(rec, &httpError{http.StatusTooManyRequests, "rate limit exceeded"})
			return
		}
		switch err := s.gate.enter(r.Context()); {
		case err == nil:
			defer s.gate.leave()
		case errors.Is(err, errQueueFull):
			s.metrics.reject("capacity")
			rec.Header().Set("Retry-After", "1")
			writeError(rec, &httpError{http.StatusTooManyRequests, err.Error()})
			return
		case errors.Is(err, errQueueTimeout):
			s.metrics.reject("queue_timeout")
			rec.Header().Set("Retry-After", "1")
			writeError(rec, &httpError{http.StatusServiceUnavailable, err.Error()})
			return
		default: // client gave up while queued
			writeError(rec, err)
			return
		}
	}
	s.mux.ServeHTTP(rec, r)
}

// httpError is a client-visible request failure.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func overLimit(format string, args ...any) *httpError {
	return &httpError{http.StatusUnprocessableEntity, fmt.Sprintf(format, args...)}
}

// errorBody is the stable JSON error schema of every endpoint: the
// human-readable message plus the status code repeated in the body, so
// clients parsing NDJSON or logs see the code without the transport
// headers. Pinned by the table-driven error tests; extend it, never
// change existing fields.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Status: status})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ---- request parsing ----

func (s *Server) parseN(r *http.Request, trees bool) (int, error) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return 0, badRequest("missing n")
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 {
		return 0, badRequest("bad n %q", q)
	}
	limit := s.cfg.MaxN
	if trees {
		limit = s.cfg.MaxTreeN
	}
	if n > limit {
		return 0, overLimit("n=%d exceeds the server limit %d", n, limit)
	}
	return n, nil
}

func (s *Server) parseAlphas(r *http.Request) ([]game.Alpha, error) {
	q := r.URL.Query().Get("alphas")
	if q == "" {
		return nil, badRequest("missing alphas")
	}
	parts := strings.Split(q, ",")
	if len(parts) > s.cfg.MaxAlphas {
		return nil, overLimit("%d alphas exceed the server limit %d", len(parts), s.cfg.MaxAlphas)
	}
	alphas := make([]game.Alpha, 0, len(parts))
	for _, p := range parts {
		a, err := game.ParseAlpha(strings.TrimSpace(p))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		alphas = append(alphas, a)
	}
	return alphas, nil
}

func parseConcepts(r *http.Request) ([]eq.Concept, error) {
	q := r.URL.Query().Get("concepts")
	if q == "" || q == "all" {
		return eq.Concepts(), nil
	}
	var concepts []eq.Concept
	for _, p := range strings.Split(q, ",") {
		c, err := eq.ParseConcept(strings.TrimSpace(p))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		concepts = append(concepts, c)
	}
	return concepts, nil
}

func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// parseVariant reads the optional "variant" query parameter shared by
// /v1/sweep, /v1/critical and /v1/check. An absent or empty parameter
// selects the daemon's configured default (the paper's model unless
// `serve -variant` says otherwise), so pre-variant request URLs keep
// their exact meaning on a default daemon.
func (s *Server) parseVariant(r *http.Request) (game.Variant, error) {
	q := r.URL.Query().Get("variant")
	if q == "" {
		return s.cfg.DefaultVariant, nil
	}
	v, err := game.ParseVariant(q)
	if err != nil {
		return game.Variant{}, badRequest("%v", err)
	}
	return v, nil
}

// ---- /v1/sweep ----

// The NDJSON line schemas of /v1/sweep. Every line carries "type"; graphs
// are encoded in the plain edge-list format on the items of the first α
// row (alpha_index 0), where each isomorphism class appears first.
type sweepHeader struct {
	Type          string   `json:"type"` // "header"
	SchemaVersion int      `json:"schema_version"`
	N             int      `json:"n"`
	Source        string   `json:"source"`
	Variant       string   `json:"variant,omitempty"`
	Alphas        []string `json:"alphas"`
	Concepts      []string `json:"concepts"`
	Rho           bool     `json:"with_rho,omitempty"`
	Shared        bool     `json:"shared,omitempty"` // joined an in-flight computation
}

type sweepItemLine struct {
	Type       string  `json:"type"` // "item"
	AlphaIndex int     `json:"alpha_index"`
	GraphIndex int     `json:"graph_index"`
	Vector     uint16  `json:"vector"`
	Rho        float64 `json:"rho,omitempty"`
	FromCache  bool    `json:"from_cache,omitempty"`
	Graph      string  `json:"graph,omitempty"`
}

type sweepSummary struct {
	Type        string `json:"type"` // "summary"
	Graphs      int    `json:"graphs"`
	Completed   int    `json:"completed"`
	Total       int    `json:"total"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Error       string `json:"error,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	trees := boolParam(r, "trees")
	n, err := s.parseN(r, trees)
	if err != nil {
		writeError(w, err)
		return
	}
	alphas, err := s.parseAlphas(r)
	if err != nil {
		writeError(w, err)
		return
	}
	concepts, err := parseConcepts(r)
	if err != nil {
		writeError(w, err)
		return
	}
	variant, err := s.parseVariant(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := variant.Validate(n); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	opts := sweep.Options{
		N:        n,
		Alphas:   alphas,
		Concepts: concepts,
		Variant:  variant,
		Workers:  s.cfg.Workers,
		Cache:    s.cfg.Cache,
		Rho:      boolParam(r, "rho"),
	}
	if opts.Rho && !variant.IsDefault() {
		writeError(w, badRequest("rho is defined for the default variant only"))
		return
	}
	if trees {
		opts.Source = sweep.Trees
	}

	key := sweepKey(opts)
	joined := s.sweeps.hasFlight(key)
	fl := s.sweeps.join(key, s.cfg.RequestTimeout, func(ctx context.Context, fl *flight) {
		runOpts := opts
		runOpts.OnItem = fl.publish
		res, err := sweep.Run(ctx, runOpts)
		fl.finish(res, err)
	})
	defer fl.leave()
	stop := fl.watch(r.Context())
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	header := sweepHeader{
		Type:          "header",
		SchemaVersion: sweep.SchemaVersion,
		N:             n,
		Source:        opts.Source.String(),
		Variant:       variant.Key(),
		Alphas:        alphaStrings(alphas),
		Concepts:      conceptStrings(concepts),
		Rho:           opts.Rho,
		Shared:        joined,
	}
	if enc.Encode(header) != nil {
		return
	}
	flush()

	for i := 0; ; i++ {
		it, ok := fl.next(r.Context(), i)
		if !ok {
			break
		}
		line := sweepItemLine{
			Type:       "item",
			AlphaIndex: it.AlphaIndex,
			GraphIndex: it.GraphIndex,
			Vector:     uint16(it.Vector),
			Rho:        it.Rho,
			FromCache:  it.FromCache,
		}
		if it.AlphaIndex == 0 {
			line.Graph = graph.Encode(it.Graph)
		}
		if enc.Encode(line) != nil {
			return // client gone; leave() detaches us
		}
		flush()
	}
	if r.Context().Err() != nil {
		return
	}
	res, runErr := fl.outcome()
	summary := sweepSummary{Type: "summary"}
	if res != nil {
		summary.Graphs = res.Graphs
		summary.Completed = res.Completed
		summary.Total = len(res.Items)
		summary.CacheHits = res.Hits
		summary.CacheMisses = res.Misses
	}
	if runErr != nil {
		summary.Error = runErr.Error()
	}
	enc.Encode(summary)
	flush()
}

// sweepKey normalizes a sweep request for singleflight deduplication. The
// exact reduced α strings, concept names and the canonical variant
// descriptor make syntactically different but semantically equal grids
// ("2/4" vs "1/2", "max,unilateral" vs "unilateral,max") share one flight.
func sweepKey(opts sweep.Options) string {
	return fmt.Sprintf("n=%d src=%s v=%s rho=%t a=%s c=%s",
		opts.N, opts.Source, opts.Variant.Key(), opts.Rho,
		strings.Join(alphaStrings(opts.Alphas), ","),
		strings.Join(conceptStrings(opts.Concepts), ","))
}

func alphaStrings(alphas []game.Alpha) []string {
	out := make([]string, len(alphas))
	for i, a := range alphas {
		out[i] = a.String()
	}
	return out
}

func conceptStrings(concepts []eq.Concept) []string {
	out := make([]string, len(concepts))
	for i, c := range concepts {
		out[i] = c.String()
	}
	return out
}

// ---- /v1/poa ----

type poaResponse struct {
	SchemaVersion int     `json:"schema_version"`
	N             int     `json:"n"`
	Alpha         string  `json:"alpha"`
	Concept       string  `json:"concept"`
	Rho           float64 `json:"rho"`
	Witness       string  `json:"witness,omitempty"`
	Equilibria    int     `json:"equilibria"`
	Candidates    int     `json:"candidates"`
	Partial       bool    `json:"partial"`
	Shared        bool    `json:"shared,omitempty"`
}

func (s *Server) handlePoA(w http.ResponseWriter, r *http.Request) {
	graphs := boolParam(r, "graphs")
	n, err := s.parseN(r, !graphs)
	if err != nil {
		writeError(w, err)
		return
	}
	if variant, err := s.parseVariant(r); err != nil {
		writeError(w, err)
		return
	} else if !variant.IsDefault() {
		// PoA normalizes by OptCost, whose closed forms are specific to the
		// default model.
		writeError(w, badRequest("poa is defined for the default variant only"))
		return
	}
	alpha, err := game.ParseAlpha(r.URL.Query().Get("alpha"))
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	concept, err := eq.ParseConcept(r.URL.Query().Get("concept"))
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	key := fmt.Sprintf("poa n=%d a=%s c=%s graphs=%t", n, alpha, concept, graphs)
	val, runErr, shared := s.calls.Do(r.Context(), key, s.cfg.RequestTimeout, func(ctx context.Context) (any, error) {
		if graphs {
			res, err := core.WorstGraph(ctx, n, alpha, concept)
			return res, err
		}
		res, err := core.WorstTree(ctx, n, alpha, concept)
		return res, err
	})
	if val == nil {
		writeError(w, runErr)
		return
	}
	res := val.(core.PoAResult)
	resp := poaResponse{
		SchemaVersion: sweep.SchemaVersion,
		N:             n,
		Alpha:         alpha.String(),
		Concept:       concept.String(),
		Rho:           res.Rho,
		Equilibria:    res.Equilibria,
		Candidates:    res.Candidates,
		Partial:       runErr != nil,
		Shared:        shared,
	}
	if res.Witness != nil {
		resp.Witness = graph.Encode(res.Witness)
	}
	writeJSON(w, resp)
}

// ---- /v1/critical ----

// criticalResponse rides sweep.ConceptCritical's own MarshalJSON, so the
// HTTP schema and the CLI/sweep JSON schemas cannot drift apart.
type criticalResponse struct {
	SchemaVersion int                     `json:"schema_version"`
	N             int                     `json:"n"`
	Source        string                  `json:"source"`
	Variant       string                  `json:"variant,omitempty"`
	Classes       int                     `json:"classes"`
	Critical      []sweep.ConceptCritical `json:"critical"`
	Report        string                  `json:"report"`
	Shared        bool                    `json:"shared,omitempty"`
}

func (s *Server) handleCritical(w http.ResponseWriter, r *http.Request) {
	trees := boolParam(r, "trees")
	n, err := s.parseN(r, trees)
	if err != nil {
		writeError(w, err)
		return
	}
	concepts, err := parseConcepts(r)
	if err != nil {
		writeError(w, err)
		return
	}
	variant, err := s.parseVariant(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := variant.Validate(n); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	opts := sweep.Options{
		N: n,
		// The grid is irrelevant to certificates; one α satisfies the
		// engine's options contract without costing anything.
		Alphas:   []game.Alpha{game.A(1)},
		Concepts: concepts,
		Variant:  variant,
		Workers:  s.cfg.Workers,
		Cache:    s.cfg.Cache,
	}
	if trees {
		opts.Source = sweep.Trees
	}
	key := "critical " + sweepKey(opts)
	val, runErr, shared := s.calls.Do(r.Context(), key, s.cfg.RequestTimeout, func(ctx context.Context) (any, error) {
		return sweep.Run(ctx, opts)
	})
	if val == nil || runErr != nil {
		if runErr == nil {
			runErr = errors.New("critical analysis failed")
		}
		writeError(w, runErr)
		return
	}
	res := val.(*sweep.Result)
	writeJSON(w, criticalResponse{
		SchemaVersion: sweep.SchemaVersion,
		N:             n,
		Source:        opts.Source.String(),
		Variant:       variant.Key(),
		Classes:       res.Graphs,
		Critical:      res.Critical,
		Report:        res.CriticalReport(),
		Shared:        shared,
	})
}

// ---- /v1/check ----

type checkVerdict struct {
	Concept   string `json:"concept"`
	Stable    bool   `json:"stable"`
	Witness   string `json:"witness,omitempty"`
	FromCache bool   `json:"from_cache,omitempty"`
}

type checkResponse struct {
	SchemaVersion int            `json:"schema_version"`
	N             int            `json:"n"`
	Alpha         string         `json:"alpha"`
	Variant       string         `json:"variant,omitempty"`
	Results       []checkVerdict `json:"results"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	// The other endpoints bound their computations through the flight
	// groups; /v1/check computes inline, so it carries its own deadline.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	alpha, err := game.ParseAlpha(r.URL.Query().Get("alpha"))
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	concepts := eq.Concepts()
	if q := r.URL.Query().Get("concept"); q != "" {
		c, err := eq.ParseConcept(q)
		if err != nil {
			writeError(w, badRequest("%v", err))
			return
		}
		concepts = []eq.Concept{c}
	}
	variant, err := s.parseVariant(r)
	if err != nil {
		writeError(w, err)
		return
	}
	wantWitness := boolParam(r, "witness")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, badRequest("reading body: %v", err))
		return
	}
	g, err := graph.Decode(string(body))
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	if g.N() > s.cfg.MaxCheckN {
		writeError(w, overLimit("graph on %d nodes exceeds the server limit %d", g.N(), s.cfg.MaxCheckN))
		return
	}
	gm, err := game.NewGame(g.N(), alpha)
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	if err := variant.Validate(g.N()); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	gm.Variant = variant
	vkey := variant.Key()
	// One canonical key serves every concept; uploaded graphs use
	// CanonicalKey (tree sweeps cache under FreeTreeKey, a disjoint
	// alphabet, so tree-sweep verdicts are recomputed here — soundly).
	canon := g.CanonicalKey()
	resp := checkResponse{SchemaVersion: sweep.SchemaVersion, N: g.N(), Alpha: alpha.String(), Variant: vkey}
	ev := eq.NewEvaluator()
	for _, concept := range concepts {
		if ctx.Err() != nil {
			writeError(w, ctx.Err())
			return
		}
		key := sweep.Key{Canon: canon, Num: alpha.Num(), Den: alpha.Den(), Concept: concept, Variant: vkey}
		v := checkVerdict{Concept: concept.String()}
		if set, ok := s.cfg.Cache.GetCert(sweep.CertKey{Canon: canon, Concept: concept, Variant: vkey}); ok && !(wantWitness && !set.Contains(alpha)) {
			// A parametric certificate answers any α, including prices no
			// sweep ever put on a grid. GetCert is uncounted; credit the
			// hit here so certificate-only traffic moves the hit ratio.
			v.Stable, v.FromCache = set.Contains(alpha), true
			s.cfg.Cache.CountHit()
		} else if stable, ok := s.cfg.Cache.Get(key); ok && !(wantWitness && !stable) {
			v.Stable, v.FromCache = stable, true
		} else {
			// Checkers mutate the graph under test; evaluate a clone.
			res := ev.Check(gm, g.Clone(), concept)
			v.Stable = res.Stable
			if !res.Stable && res.Witness != nil {
				v.Witness = fmt.Sprint(res.Witness)
			}
			s.cfg.Cache.Put(key, res.Stable)
		}
		resp.Results = append(resp.Results, v)
	}
	writeJSON(w, resp)
}

// ---- /healthz ----

type healthz struct {
	// Status is "ok", or "degraded" when the store has failed flushes —
	// the daemon keeps serving from memory but new verdicts may not be
	// durable.
	SchemaVersion int              `json:"schema_version"`
	Status        string           `json:"status"`
	Role          string           `json:"role"` // "writer" or "replica"
	UptimeSeconds int64            `json:"uptime_seconds"`
	Inflight      int64            `json:"requests_inflight"`
	Served        int64            `json:"requests_served"`
	Rejected      map[string]int64 `json:"requests_rejected,omitempty"`
	SweepsLive    int              `json:"sweeps_inflight"`
	SweepsStarted int64            `json:"sweeps_started"`
	Rewarms       int64            `json:"rewarms,omitempty"`
	Cache         sweep.CacheStats `json:"cache"`
	Store         *store.Stats     `json:"store,omitempty"`
	Limits        map[string]int   `json:"limits"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	role := "writer"
	if s.cfg.ReadOnly {
		role = "replica"
	}
	h := healthz{
		SchemaVersion: sweep.SchemaVersion,
		Status:        "ok",
		Role:          role,
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
		Inflight:      s.inflight.Load(),
		Served:        s.served.Load(),
		SweepsLive:    s.sweeps.live(),
		SweepsStarted: s.sweeps.startedCount(),
		Cache:         s.cfg.Cache.Stats(),
		Limits: map[string]int{
			"max_n":            s.cfg.MaxN,
			"max_tree_n":       s.cfg.MaxTreeN,
			"max_alphas":       s.cfg.MaxAlphas,
			"max_check_n":      s.cfg.MaxCheckN,
			"max_sim_n":        s.cfg.MaxSimN,
			"max_trajectories": s.cfg.MaxTrajectories,
			"max_inflight":     s.cfg.MaxInflight,
			"max_queue":        s.cfg.MaxQueue,
			"request_timeout":  int(s.cfg.RequestTimeout.Seconds()),
		},
	}
	h.Rejected = s.metrics.rejectedSnapshot()
	h.Rewarms = s.metrics.rewarms.Value()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		h.Store = &st
		if st.FlushFailures > 0 {
			h.Status = "degraded"
		}
	}
	writeJSON(w, h)
}
