package eq

import (
	"reflect"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// referenceUnilateralAE is the historical direct implementation of
// CheckUnilateralAE, preserved verbatim as the differential reference for
// the variant-engine shim.
func referenceUnilateralAE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(game.Game{N: gm.N, Alpha: gm.Alpha}, g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			improves := c.improves(u)
			g.RemoveEdge(u, v)
			if improves {
				return unstable(move.Add{U: u, V: v})
			}
		}
	}
	return stable()
}

// TestUnilateralAEShimByteIdentical pins that routing CheckUnilateralAE
// through the variant engine reproduces the historical scan exactly —
// same verdicts, same witness moves — on every connected class up to n=5
// across an α grid spanning the interesting thresholds.
func TestUnilateralAEShimByteIdentical(t *testing.T) {
	alphas := []game.Alpha{game.AFrac(1, 2), game.A(1), game.AFrac(3, 2), game.A(2), game.A(3), game.A(5)}
	for n := 2; n <= 5; n++ {
		for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			for _, alpha := range alphas {
				gm, err := game.NewGame(n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				want := referenceUnilateralAE(gm, g.Clone())
				got := CheckUnilateralAE(gm, g.Clone())
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d α=%s on %s: shim %+v != reference %+v", n, alpha, g, got, want)
				}
			}
		}
	}
}

// testVariants are the non-default variants the differential harnesses
// exercise: each new axis alone, the axes combined, and a heterogeneous
// price profile.
func testVariants(t *testing.T) []game.Variant {
	t.Helper()
	var out []game.Variant
	for _, s := range []string{"unilateral", "max", "unilateral,max", "mul:0=2,mul:2=1/2"} {
		v, err := game.ParseVariant(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	return out
}

// TestVariantCertifyMatchesCheck is the variant edition of the
// certificate differential: for every non-default test variant, every
// small connected class and every concept, the parametric certificate
// must agree with the per-α exact checker on a dense grid including the
// certificate's own breakpoints and their midpoints.
func TestVariantCertifyMatchesCheck(t *testing.T) {
	ev := NewEvaluator()
	for _, variant := range testVariants(t) {
		maxN := 5
		if testing.Short() {
			maxN = 4
		}
		for n := 2; n <= maxN; n++ {
			gm, err := game.NewGame(n, game.A(1))
			if err != nil {
				t.Fatal(err)
			}
			gm.Variant = variant
			concepts := Concepts()
			if n == 5 {
				// The coalition searches are exponential; bound the n=5
				// pass to the polynomial concepts.
				concepts = []Concept{RE, BAE, PS, BSwE, BGE, BNE}
			}
			for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
				h := g.Clone()
				ev.Bind(gm, h)
				for _, c := range concepts {
					set := ev.CertifyBound(c)
					for _, alpha := range certProbePoints(set) {
						gmA, err := game.NewGame(n, alpha)
						if err != nil {
							t.Fatal(err)
						}
						gmA.Variant = variant
						if got, want := set.Contains(alpha), Check(gmA, g, c).Stable; got != want {
							t.Errorf("variant=%s n=%d %s α=%s on %s: certificate %v != checker %v (cert %s)",
								variant, n, c, alpha, g, got, want, set)
						}
					}
				}
			}
		}
	}
}

// TestUnilateralStableImpliesBilateralStable pins the consent-order
// property: an improving bilateral deviation needs every actor to improve,
// so it is in particular an improving unilateral deviation for its
// initiator — unilateral stability is the stronger requirement, and the
// unilateral stable set must be contained in the bilateral one for every
// concept. RE and the coalition concepts are consent-independent, so
// there the certificates must be equal.
func TestUnilateralStableImpliesBilateralStable(t *testing.T) {
	uni, err := game.ParseVariant("unilateral")
	if err != nil {
		t.Fatal(err)
	}
	evB, evU := NewEvaluator(), NewEvaluator()
	for n := 2; n <= 5; n++ {
		gmB, err := game.NewGame(n, game.A(1))
		if err != nil {
			t.Fatal(err)
		}
		gmU := gmB
		gmU.Variant = uni
		for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			for _, c := range []Concept{RE, BAE, PS, BSwE, BGE, BNE} {
				setB := evB.Certify(gmB, g.Clone(), c)
				setU := evU.Certify(gmU, g.Clone(), c)
				if c == RE && !setB.Equal(setU) {
					t.Fatalf("n=%d RE on %s: consent-independent concept diverged: bilateral %s, unilateral %s",
						n, g, setB, setU)
				}
				for _, alpha := range certProbePoints(setU) {
					if setU.Contains(alpha) && !setB.Contains(alpha) {
						t.Errorf("n=%d %s α=%s on %s: unilateral-stable but not bilateral-stable (uni %s, bi %s)",
							n, c, alpha, g, setU, setB)
					}
				}
			}
		}
	}
}

// TestVariantKnownThresholds pins hand-computed critical prices for the
// new axes, the variant analogue of TestCertifyKnownThresholds.
func TestVariantKnownThresholds(t *testing.T) {
	// Star on 5 nodes, MAX distances: a leaf adding an edge to another
	// leaf keeps her eccentricity at 2 while paying for a second edge, so
	// the star is pairwise stable at every price — unlike the SUM model,
	// where it is stable exactly on [1, ∞).
	maxV, err := game.ParseVariant("max")
	if err != nil {
		t.Fatal(err)
	}
	star := game.Star(5)
	gmMax := game.Game{N: 5, Variant: maxV}
	if set := Certify(gmMax, star.Clone(), PS); !set.Equal(FullAlphaSet()) {
		t.Fatalf("star5 PS under max: want [0, ∞), got %s", set)
	}
	if set := Certify(game.Game{N: 5}, star.Clone(), PS); set.Contains(game.AFrac(1, 2)) {
		t.Fatalf("star5 PS under sum: want instability below 1, cert %s", set)
	}

	// Path 0–1–2 with agent 0 paying double: the bilateral add of edge
	// (0,2) improves agent 0 iff 2α < 1 and agent 2 iff α < 1, so PS
	// flips at α = 1/2 instead of the uniform model's α = 1.
	mulV, err := game.ParseVariant("mul:0=2")
	if err != nil {
		t.Fatal(err)
	}
	path := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	set := Certify(game.Game{N: 3, Variant: mulV}, path.Clone(), PS)
	want := AlphaSetOf([]AlphaInterval{{Lo: RatOf(1, 2), Hi: RatInf()}})
	if !set.Equal(want) {
		t.Fatalf("path3 PS with mul:0=2: want %s, got %s", want, set)
	}
	uniform := Certify(game.Game{N: 3}, path.Clone(), PS)
	wantUniform := AlphaSetOf([]AlphaInterval{{Lo: RatOf(1, 1), Hi: RatInf()}})
	if !uniform.Equal(wantUniform) {
		t.Fatalf("path3 PS uniform: want %s, got %s", wantUniform, uniform)
	}
}

// FuzzVariantCertificateAgreement extends the certificate differential
// fuzz target across the variant family: decoded graph × variant pick ×
// concept pick, certificate vs per-α checker on the dense probe grid.
func FuzzVariantCertificateAgreement(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n", uint8(0), uint8(0))
	f.Add("n 4\n0 1\n1 2\n2 3\n3 0\n", uint8(1), uint8(1))
	f.Add("n 5\n0 1\n0 2\n0 3\n0 4\n", uint8(3), uint8(2))
	f.Add("n 5\n0 1\n1 2\n2 3\n3 4\n", uint8(7), uint8(3))
	f.Fuzz(func(t *testing.T, input string, pick, vpick uint8) {
		g, err := graph.Decode(input)
		if err != nil || g.N() < 2 || g.N() > 5 {
			return
		}
		n := g.N()
		variants := []string{"unilateral", "max", "unilateral,max", "mul:0=3,mul:1=2/3"}
		variant, err := game.ParseVariant(variants[int(vpick)%len(variants)])
		if err != nil {
			t.Fatal(err)
		}
		concepts := Concepts()
		if n == 5 {
			concepts = []Concept{RE, BAE, PS, BSwE, BGE, BNE}
		}
		concept := concepts[int(pick)%len(concepts)]
		gm, err := game.NewGame(n, game.A(1))
		if err != nil {
			t.Fatal(err)
		}
		gm.Variant = variant
		ev := NewEvaluator()
		set := ev.Certify(gm, g.Clone(), concept)

		probe := func(alpha game.Alpha) {
			gmA, err := game.NewGame(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			gmA.Variant = variant
			got := set.Contains(alpha)
			want := Check(gmA, g, concept).Stable
			if got != want {
				t.Fatalf("variant=%s %s at α=%s on %s: certificate says %v, checker says %v (cert %s)",
					variant, concept, alpha, g, got, want, set)
			}
		}
		for den := int64(1); den <= 3; den++ {
			for num := int64(0); num <= 9; num++ {
				probe(game.AFrac(num, den))
			}
		}
		bps := set.Breakpoints()
		for i, bp := range bps {
			probe(bp)
			if i+1 < len(bps) {
				if mid, err := game.NewAlpha(
					bp.Num()*bps[i+1].Den()+bps[i+1].Num()*bp.Den(),
					2*bp.Den()*bps[i+1].Den()); err == nil {
					probe(mid)
				}
			}
		}
		if len(bps) > 0 {
			last := bps[len(bps)-1]
			probe(game.AFrac(last.Num()+last.Den(), last.Den()))
		}
	})
}
