package eq

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// CheckUnilateralRE reports whether (g, o) is a Remove Equilibrium of the
// unilateral NCG: no agent strictly improves by removing an edge she owns
// (she alone stops paying; the edge disappears).
func CheckUnilateralRE(gm game.Game, g *graph.Graph, o *game.Ownership) Result {
	for _, e := range g.Edges() {
		owner, ok := o.Owner(e.U, e.V)
		if !ok {
			panic(fmt.Sprintf("eq: edge %v without owner", e))
		}
		before := gm.NCGAgentCost(g, o, owner)
		g.RemoveEdge(e.U, e.V)
		o.Delete(e.U, e.V)
		after := gm.NCGAgentCost(g, o, owner)
		o.SetOwner(e.U, e.V, owner)
		g.AddEdge(e.U, e.V)
		if after.Less(before, gm.Alpha) {
			return unstable(move.Remove{U: owner, V: e.Other(owner)})
		}
	}
	return stable()
}

// CheckUnilateralAE reports whether g is an Add Equilibrium of the
// unilateral NCG: no agent strictly improves by buying a single new edge on
// her own. Ownership is irrelevant: the buyer pays α regardless.
//
// It is a shim over the variant engine: the scan is exactly the BAE check
// under unilateral consent, and the differential tests pin that the shim
// is byte-identical to the historical direct implementation.
func CheckUnilateralAE(gm game.Game, g *graph.Graph) Result {
	gm.Variant.Consent = game.ConsentUnilateral
	var c checker
	c.reset(gm, g)
	return c.checkBAE()
}

// NCGStrategyChange is the witness of a unilateral NE violation: agent U
// replaces her bought-edge set with Buy.
type NCGStrategyChange struct {
	U   int
	Buy []int
}

// Apply is unsupported: NCG strategy changes act on (graph, ownership)
// pairs, not bare graphs. It exists to satisfy move.Move for witness
// reporting.
func (m NCGStrategyChange) Apply(*graph.Graph) (func(), error) {
	return nil, fmt.Errorf("move: NCG strategy change cannot apply to a bare graph")
}

// Actors implements move.Move.
func (m NCGStrategyChange) Actors() []int { return []int{m.U} }

func (m NCGStrategyChange) String() string {
	return fmt.Sprintf("ncg-strategy(%d buys %v)", m.U, m.Buy)
}

// CheckUnilateralNE reports whether (g, o) is a pure Nash equilibrium of
// the unilateral NCG: no agent improves by replacing her entire bought-edge
// set. The check enumerates all 2^(n-1) strategies per agent and is
// intended for the small Section 2 gadgets.
func CheckUnilateralNE(gm game.Game, g *graph.Graph, o *game.Ownership) Result {
	n := g.N()
	for u := 0; u < n; u++ {
		before := gm.NCGAgentCost(g, o, u)
		// Edges present independently of u's strategy: all edges not owned
		// by u (owned edges of others persist even towards u).
		base := graph.New(n)
		for _, e := range g.Edges() {
			owner, _ := o.Owner(e.U, e.V)
			if owner != u {
				base.AddEdge(e.U, e.V)
			}
		}
		var targets []int
		for v := 0; v < n; v++ {
			if v != u {
				targets = append(targets, v)
			}
		}
		for mask := 0; mask < 1<<len(targets); mask++ {
			buy := subsetOf(targets, mask)
			trial := base.Clone()
			for _, v := range buy {
				trial.AddEdge(u, v) // no-op if the other side already buys it
			}
			sum, unreachable := trial.TotalDist(u)
			after := game.Cost{
				Unreachable: int64(unreachable),
				Buy:         int64(len(buy)),
				Dist:        sum,
			}
			if after.Less(before, gm.Alpha) {
				return unstable(NCGStrategyChange{U: u, Buy: buy})
			}
		}
	}
	return stable()
}

// CheckMultiRemove reports whether some agent improves by removing any
// subset of her incident edges at once. Proposition A.2 (after Corbo and
// Parkes) implies this is equivalent to CheckRE; the experiments verify
// that equivalence. Like the bilateral scans, subsets are applied and
// reverted in place, with a Neighborhood move built only as witness.
func CheckMultiRemove(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	for u := 0; u < g.N(); u++ {
		nb := c.snapshotNeighbors(u)
		for mask := 1; mask < 1<<len(nb); mask++ {
			for i, v := range nb {
				if mask&(1<<i) != 0 {
					c.g.RemoveEdge(u, v)
				}
			}
			imp := c.improves(u)
			for i, v := range nb {
				if mask&(1<<i) != 0 {
					c.g.AddEdge(u, v)
				}
			}
			if imp {
				return unstable(move.Neighborhood{U: u, RemoveTo: subsetOf(nb, mask)})
			}
		}
	}
	return stable()
}
