// Package eq implements exact equilibrium checkers for every solution
// concept of the paper — RE, BAE, PS, BSwE, BGE, BNE, k-BSE, BSE for the
// bilateral game, and RE/AE/NE for the unilateral NCG — plus the paper's
// analytic stability conditions for the structured lower-bound families.
//
// Every checker returns a Result carrying a witness move when the state is
// unstable, so tests and experiments can assert on the violation itself.
package eq

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// Concept identifies a solution concept of the bilateral game.
type Concept int

// The solution concepts in the paper's order of increasing cooperation.
const (
	RE Concept = iota + 1
	BAE
	PS
	BSwE
	BGE
	BNE
	TwoBSE
	ThreeBSE
	BSE
)

// String implements fmt.Stringer.
func (c Concept) String() string {
	switch c {
	case RE:
		return "RE"
	case BAE:
		return "BAE"
	case PS:
		return "PS"
	case BSwE:
		return "BSwE"
	case BGE:
		return "BGE"
	case BNE:
		return "BNE"
	case TwoBSE:
		return "2-BSE"
	case ThreeBSE:
		return "3-BSE"
	case BSE:
		return "BSE"
	default:
		return fmt.Sprintf("Concept(%d)", int(c))
	}
}

// Concepts lists all bilateral concepts in cooperation order.
func Concepts() []Concept {
	return []Concept{RE, BAE, PS, BSwE, BGE, BNE, TwoBSE, ThreeBSE, BSE}
}

// Result is a stability verdict with the violating move when unstable.
type Result struct {
	Stable  bool
	Witness move.Move
}

func stable() Result { return Result{Stable: true} }

func unstable(w move.Move) Result { return Result{Stable: false, Witness: w} }

// Check dispatches to the exact checker for the concept. BSE uses
// coalitions of size up to n.
func Check(gm game.Game, g *graph.Graph, c Concept) Result {
	switch c {
	case RE:
		return CheckRE(gm, g)
	case BAE:
		return CheckBAE(gm, g)
	case PS:
		return CheckPS(gm, g)
	case BSwE:
		return CheckBSwE(gm, g)
	case BGE:
		return CheckBGE(gm, g)
	case BNE:
		return CheckBNE(gm, g)
	case TwoBSE:
		return CheckKBSE(gm, g, 2)
	case ThreeBSE:
		return CheckKBSE(gm, g, 3)
	case BSE:
		return CheckKBSE(gm, g, g.N())
	default:
		panic(fmt.Sprintf("eq: unknown concept %d", int(c)))
	}
}

// checker bundles the state shared by the exact checkers: the game, the
// graph under test, the baseline agent costs and a reusable BFS buffer.
type checker struct {
	gm   game.Game
	g    *graph.Graph
	base []game.Cost
	dist []int
}

func newChecker(gm game.Game, g *graph.Graph) *checker {
	c := &checker{
		gm:   gm,
		g:    g,
		base: make([]game.Cost, g.N()),
		dist: make([]int, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		c.base[u] = gm.AgentCost(g, u)
	}
	return c
}

// cost returns agent u's cost in the current (possibly mutated) graph.
func (c *checker) cost(u int) game.Cost {
	c.g.BFSInto(u, c.dist)
	return c.gm.AgentCostFromDist(c.g, u, c.dist)
}

// improves reports whether agent u's current cost is strictly below her
// baseline cost.
func (c *checker) improves(u int) bool {
	return c.cost(u).Less(c.base[u], c.gm.Alpha)
}

// allImprove reports whether every listed agent strictly improves over the
// baseline in the current graph, with early exit.
func (c *checker) allImprove(agents []int) bool {
	for _, u := range agents {
		if !c.improves(u) {
			return false
		}
	}
	return true
}

// tryMove applies m, evaluates whether all actors strictly improve, and
// reverts the graph. Moves that do not fit the graph report false.
func (c *checker) tryMove(m move.Move) bool {
	undo, err := m.Apply(c.g)
	if err != nil {
		return false
	}
	defer undo()
	return c.allImprove(m.Actors())
}
