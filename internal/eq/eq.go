// Package eq implements exact equilibrium checkers for every solution
// concept of the paper — RE, BAE, PS, BSwE, BGE, BNE, k-BSE, BSE for the
// bilateral game, and RE/AE/NE for the unilateral NCG — plus the paper's
// analytic stability conditions for the structured lower-bound families.
//
// Every checker returns a Result carrying a witness move when the state is
// unstable, so tests and experiments can assert on the violation itself.
//
// The package-level Check* functions allocate fresh working buffers per
// call. Hot loops that evaluate many states — notably the parallel sweep
// engine in repro/internal/sweep — use an Evaluator instead, which reuses
// its BFS and baseline-cost buffers across calls. Checkers explore moves by
// mutating the graph in place and undoing, so neither an Evaluator nor a
// Graph under evaluation may be shared between goroutines.
package eq

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// Concept identifies a solution concept of the bilateral game.
type Concept int

// The solution concepts in the paper's order of increasing cooperation.
const (
	RE Concept = iota + 1
	BAE
	PS
	BSwE
	BGE
	BNE
	TwoBSE
	ThreeBSE
	BSE
)

// String implements fmt.Stringer.
func (c Concept) String() string {
	switch c {
	case RE:
		return "RE"
	case BAE:
		return "BAE"
	case PS:
		return "PS"
	case BSwE:
		return "BSwE"
	case BGE:
		return "BGE"
	case BNE:
		return "BNE"
	case TwoBSE:
		return "2-BSE"
	case ThreeBSE:
		return "3-BSE"
	case BSE:
		return "BSE"
	default:
		return fmt.Sprintf("Concept(%d)", int(c))
	}
}

// MarshalJSON renders the concept as its paper name ("PS", "2-BSE", ...),
// so JSON output is stable across reorderings of the enum.
func (c Concept) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// Concepts lists all bilateral concepts in cooperation order.
func Concepts() []Concept {
	return []Concept{RE, BAE, PS, BSwE, BGE, BNE, TwoBSE, ThreeBSE, BSE}
}

// ParseConcept parses a concept's paper name ("PS", "2-BSE", …) — the form
// String renders — so concepts round-trip through flags, checkpoints and
// URLs.
func ParseConcept(s string) (Concept, error) {
	for _, c := range Concepts() {
		if s == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("eq: unknown concept %q (want RE, BAE, PS, BSwE, BGE, BNE, 2-BSE, 3-BSE, BSE)", s)
}

// Result is a stability verdict with the violating move when unstable.
type Result struct {
	Stable  bool
	Witness move.Move
}

func stable() Result { return Result{Stable: true} }

func unstable(w move.Move) Result { return Result{Stable: false, Witness: w} }

// Check dispatches to the exact checker for the concept. BSE uses
// coalitions of size up to n.
func Check(gm game.Game, g *graph.Graph, c Concept) Result {
	var ch checker
	ch.reset(gm, g)
	return ch.check(c)
}

// Evaluator is a reusable equilibrium evaluator: it keeps the BFS scratch,
// the baseline-cost slice and the deviation-scan buffers alive between
// calls, so sweeps over many states allocate nothing per stability check
// (at sweep sizes) instead of re-allocating per state. The hot-path scans
// mutate edges directly and only materialize a move.Move on the cold
// unstable path, for the witness.
//
// An Evaluator is deliberately not safe for concurrent use — and neither is
// the Graph it evaluates, because checkers apply candidate moves in place
// (always undoing them before returning). A parallel sweep therefore gives
// each worker goroutine its own Evaluator and its own private Graph clone.
type Evaluator struct {
	c checker
}

// NewEvaluator returns an Evaluator for use by a single goroutine.
func NewEvaluator() *Evaluator { return &Evaluator{} }

// Check evaluates concept c on state g at game gm, reusing the evaluator's
// buffers. It is equivalent to the package-level Check.
func (ev *Evaluator) Check(gm game.Game, g *graph.Graph, c Concept) Result {
	ev.c.reset(gm, g)
	return ev.c.check(c)
}

// Bind points the evaluator at a state and computes the baseline agent
// costs once; subsequent CheckBound calls evaluate concepts against the
// bound state without recomputing the baseline. Bind/CheckBound is the
// sweep engine's path for checking several concepts per (graph, α) task:
// every checker restores the graph before returning, so the baseline stays
// valid across the whole concept grid.
func (ev *Evaluator) Bind(gm game.Game, g *graph.Graph) { ev.c.reset(gm, g) }

// CheckBound evaluates concept c on the state bound by the last Bind. It
// must not be called before Bind.
func (ev *Evaluator) CheckBound(c Concept) Result { return ev.c.check(c) }

// Rho returns the social cost ratio ρ(g) — identical to Game.Rho bit for
// bit — computed with the evaluator's scratch buffers, so PoA reductions
// over a sweep allocate nothing per graph.
func (ev *Evaluator) Rho(gm game.Game, g *graph.Graph) float64 {
	n := g.N()
	if cap(ev.c.dist) < n {
		ev.c.dist = make([]int, n)
	}
	dist := ev.c.dist[:n]
	var total game.Cost
	for u := 0; u < n; u++ {
		g.BFSScratchInto(u, dist, &ev.c.bfs)
		cst := gm.AgentCostFromDist(g, u, dist)
		total.Unreachable += cst.Unreachable
		total.Buy += cst.Buy
		total.Dist += cst.Dist
	}
	return gm.RhoOfCost(total)
}

// checker bundles the state shared by the exact checkers: the game, the
// graph under test, the baseline agent costs, the BFS scratch and the
// deviation-scan buffers. All buffers grow to the largest instance seen
// and are then reused, so a long-lived checker (via Evaluator) performs
// zero allocations per check at sweep sizes.
type checker struct {
	gm   game.Game
	g    *graph.Graph
	base []game.Cost
	dist []int
	bfs  graph.BFSScratch
	// Scratch of the deviation scans. nbuf snapshots the neighbor list of
	// the agent under scan (the scans mutate the graph while exploring
	// moves); nnbuf its non-neighbors; members, inCoal, removable and
	// addable carry the k-BSE coalition search.
	nbuf      []int
	nnbuf     []int
	members   []int
	inCoal    []bool
	removable []graph.Edge
	addable   []graph.Edge
	// Certificate-scan state: the merged union of improving α-intervals
	// accumulated so far, whether it already covers the whole axis (the
	// certify early-exit), and the running intersection of the current
	// deviation's actor intervals (see certify.go).
	union    []AlphaInterval
	covered  bool
	devIval  AlphaInterval
	devAlive bool
	// Variant state, latched at reset so the hot loops branch on plain
	// booleans: unilateral consent switches the add/swap/neighborhood
	// scans to initiator-only improvement; hetero switches cost
	// comparisons to per-agent effective prices (aFor) and certificate
	// intervals to multiplier-scaled deltas (pmul/qmul).
	unilateral bool
	hetero     bool
	aFor       []game.Alpha
	pmul       []int64
	qmul       []int64
}

// reset points the checker at a new state and recomputes the baseline agent
// costs, growing the buffers only when the node count does.
func (c *checker) reset(gm game.Game, g *graph.Graph) {
	c.gm = gm
	c.g = g
	n := g.N()
	if cap(c.base) < n {
		c.base = make([]game.Cost, n)
		c.dist = make([]int, n)
	}
	c.base = c.base[:n]
	c.dist = c.dist[:n]
	c.unilateral = gm.Variant.Consent == game.ConsentUnilateral
	c.hetero = len(gm.Variant.Prices) > 0
	if c.hetero {
		if cap(c.aFor) < n {
			c.aFor = make([]game.Alpha, n)
			c.pmul = make([]int64, n)
			c.qmul = make([]int64, n)
		}
		c.aFor = c.aFor[:n]
		c.pmul = c.pmul[:n]
		c.qmul = c.qmul[:n]
		for u := 0; u < n; u++ {
			c.aFor[u] = gm.AlphaFor(u)
			c.pmul[u], c.qmul[u] = gm.Variant.MulFor(u)
		}
	}
	for u := 0; u < n; u++ {
		g.BFSScratchInto(u, c.dist, &c.bfs)
		c.base[u] = gm.AgentCostFromDist(g, u, c.dist)
	}
}

// snapshotNeighbors copies u's current neighbor list into the checker's
// scratch. Scans iterate the copy because exploring a move mutates the
// live list. The returned slice is invalidated by the next snapshot.
func (c *checker) snapshotNeighbors(u int) []int {
	c.nbuf = append(c.nbuf[:0], c.g.Neighbors(u)...)
	return c.nbuf
}

// check dispatches to the per-concept checker method.
func (c *checker) check(concept Concept) Result {
	switch concept {
	case RE:
		return c.checkRE()
	case BAE:
		return c.checkBAE()
	case PS:
		return c.checkPS()
	case BSwE:
		return c.checkBSwE()
	case BGE:
		return c.checkBGE()
	case BNE:
		return c.checkBNE()
	case TwoBSE:
		return c.checkKBSE(2)
	case ThreeBSE:
		return c.checkKBSE(3)
	case BSE:
		return c.checkKBSE(c.g.N())
	default:
		panic(fmt.Sprintf("eq: unknown concept %d", int(concept)))
	}
}

// cost returns agent u's cost in the current (possibly mutated) graph.
func (c *checker) cost(u int) game.Cost {
	c.g.BFSScratchInto(u, c.dist, &c.bfs)
	return c.gm.AgentCostFromDist(c.g, u, c.dist)
}

// improves reports whether agent u's current cost is strictly below her
// baseline cost, at u's effective edge price.
func (c *checker) improves(u int) bool {
	a := c.gm.Alpha
	if c.hetero {
		a = c.aFor[u]
	}
	return c.cost(u).Less(c.base[u], a)
}

// allImprove reports whether every listed agent strictly improves over the
// baseline in the current graph, with early exit.
func (c *checker) allImprove(agents []int) bool {
	for _, u := range agents {
		if !c.improves(u) {
			return false
		}
	}
	return true
}

// tryMove applies m, evaluates whether all actors strictly improve, and
// reverts the graph. Moves that do not fit the graph report false.
func (c *checker) tryMove(m move.Move) bool {
	undo, err := m.Apply(c.g)
	if err != nil {
		return false
	}
	defer undo()
	return c.allImprove(m.Actors())
}
