package eq

import (
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

func iv(t *testing.T, lo string, loOpen bool, hi string, hiOpen bool) AlphaInterval {
	t.Helper()
	parse := func(s string) Rat {
		if s == "inf" {
			return RatInf()
		}
		a, err := game.ParseAlpha(s)
		if err != nil {
			t.Fatal(err)
		}
		return Rat{Num: a.Num(), Den: a.Den()}
	}
	return AlphaInterval{Lo: parse(lo), LoOpen: loOpen, Hi: parse(hi), HiOpen: hiOpen}
}

// TestAlphaSetAlgebra pins the interval arithmetic on hand-built cases,
// including the degenerate single-point stable set left between two
// touching open improving intervals.
func TestAlphaSetAlgebra(t *testing.T) {
	var union []AlphaInterval
	union = unionAdd(union, iv(t, "0", false, "3", true))
	union = unionAdd(union, iv(t, "3", true, "inf", false))
	stable := complementAxis(union)
	if got, want := stable.String(), "[3, 3]"; got != want {
		t.Fatalf("degenerate point: got %s, want %s", got, want)
	}
	if !stable.Contains(game.A(3)) || stable.Contains(game.AFrac(5, 2)) || stable.Contains(game.A(4)) {
		t.Fatal("degenerate point membership wrong")
	}

	union = nil
	union = unionAdd(union, iv(t, "1", true, "2", true))
	union = unionAdd(union, iv(t, "3/2", true, "5/2", true))
	union = unionAdd(union, iv(t, "4", true, "5", true))
	stable = complementAxis(union)
	if got, want := stable.String(), "[0, 1] ∪ [5/2, 4] ∪ [5, ∞)"; got != want {
		t.Fatalf("merged complement: got %s, want %s", got, want)
	}
	for _, tc := range []struct {
		alpha string
		want  bool
	}{
		{"0", true}, {"1", true}, {"3/2", false}, {"2", false}, {"5/2", true},
		{"3", true}, {"4", true}, {"9/2", false}, {"5", true}, {"100", true},
	} {
		a, err := game.ParseAlpha(tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if stable.Contains(a) != tc.want {
			t.Errorf("Contains(%s) = %v, want %v in %s", tc.alpha, !tc.want, tc.want, stable)
		}
	}

	// Covering union → empty complement, and the early-exit signal fires.
	union = nil
	union = unionAdd(union, iv(t, "2", true, "inf", false))
	union = unionAdd(union, iv(t, "0", false, "5/2", true))
	if !coversAxis(union) {
		t.Fatalf("union %v should cover the axis", union)
	}
	if s := complementAxis(union); !s.IsEmpty() || s.String() != "∅" {
		t.Fatalf("complement of the axis: %s", s)
	}

	// Round trip through the validated constructor.
	back := AlphaSetOf(stable.Intervals())
	if !back.Equal(stable) {
		t.Fatal("AlphaSetOf round trip changed the set")
	}
}

// TestCertifyKnownThresholds pins certificates whose exact breakpoints
// follow from the paper's arithmetic: the clique loses Remove stability
// above α = 1 (closed at the indifference point), the star gains Bilateral
// Add stability at α = 1, and cycles are swap-unstable at low α.
func TestCertifyKnownThresholds(t *testing.T) {
	gm, err := game.NewGame(5, game.A(1)) // the α here is never read
	if err != nil {
		t.Fatal(err)
	}

	// K5, RE: removing one edge trades 1 bought edge for +1 distance, so
	// it improves exactly for α > 1: stable on [0, 1].
	clique := game.Clique(5)
	if got := Certify(gm, clique, RE).String(); got != "[0, 1]" {
		t.Errorf("K5 RE certificate = %s, want [0, 1]", got)
	}

	// Star, RE: every removal disconnects; stable everywhere.
	star := game.Star(5)
	if got := Certify(gm, star, RE).String(); got != "[0, ∞)" {
		t.Errorf("star RE certificate = %s, want [0, ∞)", got)
	}

	// Star, BAE: two leaves adding their edge each pay α to cut one unit
	// of distance — improving exactly for α < 1: stable on [1, ∞).
	if got := Certify(gm, star, BAE).String(); got != "[1, ∞)" {
		t.Errorf("star BAE certificate = %s, want [1, ∞)", got)
	}

	// Consistency with the per-α checkers at the breakpoints themselves.
	for _, alpha := range []game.Alpha{game.AFrac(1, 2), game.A(1), game.AFrac(3, 2)} {
		gmA, err := game.NewGame(5, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Certify(gm, clique, RE).Contains(alpha), Check(gmA, clique, RE).Stable; got != want {
			t.Errorf("K5 RE at α=%s: certificate %v, checker %v", alpha, got, want)
		}
		if got, want := Certify(gm, star, BAE).Contains(alpha), Check(gmA, star, BAE).Stable; got != want {
			t.Errorf("star BAE at α=%s: certificate %v, checker %v", alpha, got, want)
		}
	}
}

// certProbePoints returns a dense exact probe grid for a certificate: a
// fixed rational lattice plus the certificate's own breakpoints and the
// midpoints between consecutive breakpoints — the points where an
// off-by-one in open/closed endpoints or a missed deviation shows up.
func certProbePoints(set AlphaSet) []game.Alpha {
	var pts []game.Alpha
	for den := int64(1); den <= 3; den++ {
		for num := int64(0); num <= 12; num++ {
			pts = append(pts, game.AFrac(num, den))
		}
	}
	bps := set.Breakpoints()
	for i, bp := range bps {
		pts = append(pts, bp)
		if i+1 < len(bps) {
			mid, err := game.NewAlpha(bp.Num()*bps[i+1].Den()+bps[i+1].Num()*bp.Den(), 2*bp.Den()*bps[i+1].Den())
			if err == nil {
				pts = append(pts, mid)
			}
		}
	}
	if len(bps) > 0 {
		last := bps[len(bps)-1]
		pts = append(pts, game.AFrac(last.Num()+last.Den(), last.Den()))
	}
	return pts
}

// TestCertifyMatchesCheckAllSmall is the deterministic differential: for
// every connected graph class up to n=5 and every concept, the certificate
// must agree with the per-α checker on a dense grid including its own
// breakpoints and their midpoints. This is the tier-1 twin of the
// FuzzCertificateAgreement harness.
func TestCertifyMatchesCheckAllSmall(t *testing.T) {
	ev := NewEvaluator()
	for n := 2; n <= 5; n++ {
		gm, err := game.NewGame(n, game.A(1))
		if err != nil {
			t.Fatal(err)
		}
		for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			h := g.Clone()
			ev.Bind(gm, h)
			for _, c := range Concepts() {
				set := ev.CertifyBound(c)
				for _, alpha := range certProbePoints(set) {
					gmA, err := game.NewGame(n, alpha)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := set.Contains(alpha), Check(gmA, g, c).Stable; got != want {
						t.Errorf("n=%d %s α=%s on %s: certificate %v != checker %v (cert %s)",
							n, c, alpha, g, got, want, set)
					}
				}
			}
		}
	}
}

// TestCertifyBoundInterleavesWithCheckBound: certification restores the
// graph, so a bound evaluator can interleave exact checks and certificates
// without rebinding.
func TestCertifyBoundInterleavesWithCheckBound(t *testing.T) {
	gm, err := game.NewGame(6, game.A(5))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0},
	})
	ev := NewEvaluator()
	ev.Bind(gm, g)
	before := ev.CheckBound(PS).Stable
	set := ev.CertifyBound(PS)
	after := ev.CheckBound(PS).Stable
	if before != after {
		t.Fatal("certification perturbed the bound state")
	}
	if set.Contains(game.A(5)) != before {
		t.Fatalf("certificate %s disagrees with CheckBound at the bound α", set)
	}
}
