package eq

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/graph"
)

// This file implements the parametric counterparts of the exact checkers:
// one certification pass over a state's deviation space yields the exact
// set of edge prices at which the state is stable — an AlphaSet — instead
// of one verdict at one α. The scans mirror the per-α checkers deviation
// for deviation (the differential and fuzz harnesses pin the agreement),
// but instead of testing Cost.Less at the bound α they compute each
// deviation's improving α-interval from the exact cost deltas and
// accumulate the union; the stable set is the complement.
//
// Two early exits keep certification competitive with a single per-α
// check:
//
//   - per deviation, the running intersection of the actors' improving
//     intervals is abandoned as soon as it is empty (the analogue of the
//     checkers' allImprove early exit);
//   - per scan, the whole search aborts once the accumulated improving
//     union covers [0, ∞) — a state unstable at every price certifies as
//     fast as the per-α checker refutes it.

// Certify returns the exact set of edge prices at which g is stable for
// concept c. The α carried by gm is irrelevant — only the node count is
// read — because the certificate covers the whole axis; it exists in the
// signature so Certify mirrors Check. Like Check it allocates fresh
// buffers per call; hot loops use Evaluator.Certify or
// Evaluator.CertifyBound.
func Certify(gm game.Game, g *graph.Graph, c Concept) AlphaSet {
	var ch checker
	ch.reset(gm, g)
	return ch.certify(c)
}

// Certify is the evaluator counterpart of the package-level Certify,
// reusing the evaluator's BFS, baseline and scan buffers. The baseline
// agent costs are α-independent (they are exact (unreachable, buy, dist)
// triples), so one Bind serves both CheckBound and CertifyBound.
func (ev *Evaluator) Certify(gm game.Game, g *graph.Graph, c Concept) AlphaSet {
	ev.c.reset(gm, g)
	return ev.c.certify(c)
}

// CertifyBound certifies concept c on the state bound by the last Bind.
// It must not be called before Bind. Every scan restores the graph before
// returning, so CheckBound and CertifyBound can interleave freely on one
// bound state.
func (ev *Evaluator) CertifyBound(c Concept) AlphaSet { return ev.c.certify(c) }

// certify dispatches to the per-concept certificate scan and folds the
// accumulated improving union into the stable AlphaSet.
func (c *checker) certify(concept Concept) AlphaSet {
	c.union = c.union[:0]
	c.covered = false
	switch concept {
	case RE:
		c.certRE()
	case BAE:
		c.certBAE()
	case PS:
		c.certRE()
		c.certBAE()
	case BSwE:
		c.certBSwE()
	case BGE:
		c.certRE()
		c.certBAE()
		c.certBSwE()
	case BNE:
		c.certBNE()
	case TwoBSE:
		c.certKBSE(2)
	case ThreeBSE:
		c.certKBSE(3)
	case BSE:
		c.certKBSE(c.g.N())
	default:
		panic(fmt.Sprintf("eq: unknown concept %d", int(concept)))
	}
	return complementAxis(c.union)
}

// ImprovingIntervalOf is the exported face of the certificate engine's
// per-deviation arithmetic: the exact α-interval on which `after` is
// strictly cheaper than `before`, and whether it is non-empty. The
// breakpoint-guided dynamics scheduler uses it to rank improving moves by
// how far α sits from the price at which they stop improving. Heterogeneous
// price multipliers are the caller's concern: scale both costs by the
// agent's (p, q) first, exactly as Certify does.
func ImprovingIntervalOf(before, after game.Cost) (AlphaInterval, bool) {
	return improvingIntervalOf(before, after)
}

// Contains reports whether α lies in the interval.
func (iv AlphaInterval) Contains(a game.Alpha) bool {
	return iv.contains(RatOf(a.Num(), a.Den()))
}

// improvingIntervalOf returns the exact α-interval on which `after` is
// strictly cheaper than `before` under the lexicographic cost order, and
// whether that interval is non-empty. With equal reachability the
// comparison is num·ΔBuy + den·ΔDist < 0, which flips at the single
// rational breakpoint α* = −ΔDist/ΔBuy; unequal reachability decides
// independently of α (the paper's M > α·n³ disconnection price).
func improvingIntervalOf(before, after game.Cost) (AlphaInterval, bool) {
	if after.Unreachable != before.Unreachable {
		if after.Unreachable < before.Unreachable {
			return fullAxis(), true
		}
		return AlphaInterval{}, false
	}
	dBuy := after.Buy - before.Buy
	dDist := after.Dist - before.Dist
	switch {
	case dBuy == 0:
		if dDist < 0 {
			return fullAxis(), true
		}
		return AlphaInterval{}, false
	case dBuy > 0:
		// Improves iff α < −ΔDist/ΔBuy: a half-open prefix of the axis.
		if dDist >= 0 {
			return AlphaInterval{}, false // breakpoint at or below 0
		}
		return AlphaInterval{Lo: RatOf(0, 1), Hi: RatOf(-dDist, dBuy), HiOpen: true}, true
	default:
		// Improves iff α > ΔDist/(−ΔBuy): an open suffix of the axis.
		if dDist < 0 {
			return fullAxis(), true // breakpoint below 0
		}
		return AlphaInterval{Lo: RatOf(dDist, -dBuy), LoOpen: true, Hi: RatInf()}, true
	}
}

// improvingInterval returns agent u's improving interval in the current
// (mutated) graph against the bound baseline. With a price multiplier p/q
// on agent u the improving condition α·(p/q)·ΔBuy + ΔDist < 0 clears
// denominators as α·(p·ΔBuy) + (q·ΔDist) < 0, so scaling both costs'
// (Buy, Dist) by (p, q) reduces the heterogeneous case to the uniform
// interval computation with the breakpoints still exact in the global α.
func (c *checker) improvingInterval(u int) (AlphaInterval, bool) {
	before, after := c.base[u], c.cost(u)
	if c.hetero {
		p, q := c.pmul[u], c.qmul[u]
		before = game.Cost{Unreachable: before.Unreachable, Buy: before.Buy * p, Dist: before.Dist * q}
		after = game.Cost{Unreachable: after.Unreachable, Buy: after.Buy * p, Dist: after.Dist * q}
	}
	return improvingIntervalOf(before, after)
}

// The deviation accumulation protocol of the certificate scans — a
// begin/actor/commit triple on plain checker fields rather than closures,
// so the per-deviation hot path (run millions of times per sweep)
// allocates nothing:
//
//	c.devBegin()
//	c.devActor(u) && c.devActor(v) ...   // false once the intersection dies
//	done := c.devCommit()                // merge; true once [0, ∞) is covered

// devBegin starts a new deviation with the whole axis as the running
// intersection of the actors' improving intervals.
func (c *checker) devBegin() {
	c.devIval = fullAxis()
	c.devAlive = true
}

// devActor narrows the running intersection by agent u's improving
// interval in the current (mutated) graph. It reports whether the
// deviation can still improve anyone — the certificate analogue of
// allImprove's early exit.
func (c *checker) devActor(u int) bool {
	a, ok := c.improvingInterval(u)
	if !ok {
		c.devAlive = false
		return false
	}
	c.devIval = intersect(c.devIval, a)
	if c.devIval.empty() {
		c.devAlive = false
		return false
	}
	return true
}

// devCommit merges a still-alive deviation's improving interval into the
// union and reports whether the union now covers the whole axis, the
// scans' abort signal.
func (c *checker) devCommit() bool {
	if c.devAlive {
		c.union = unionAdd(c.union, c.devIval)
		if coversAxis(c.union) {
			c.covered = true
		}
	}
	return c.covered
}

// accumulate1 and accumulate2 are the fixed-arity conveniences of the
// single-agent and pairwise scans.
func (c *checker) accumulate1(u int) bool {
	c.devBegin()
	c.devActor(u)
	return c.devCommit()
}

func (c *checker) accumulate2(u, v int) bool {
	c.devBegin()
	if c.devActor(u) {
		c.devActor(v)
	}
	return c.devCommit()
}

// certRE scans the single-edge removals (both directions, matching the
// checker's move order).
func (c *checker) certRE() {
	for u := 0; u < c.g.N() && !c.covered; u++ {
		nb := c.snapshotNeighbors(u)
		for _, v := range nb {
			if v < u {
				continue
			}
			c.g.RemoveEdge(u, v)
			done := c.accumulate1(u) || c.accumulate1(v)
			c.g.AddEdge(u, v)
			if done {
				return
			}
		}
	}
}

// certBAE scans the single-edge additions: bilateral pairs with both
// endpoints as actors, or — under unilateral consent — ordered
// (buyer, target) pairs with the buyer as sole actor, mirroring the
// per-α scan deviation for deviation.
func (c *checker) certBAE() {
	if c.unilateral {
		for u := 0; u < c.g.N() && !c.covered; u++ {
			for v := 0; v < c.g.N(); v++ {
				if v == u || c.g.HasEdge(u, v) {
					continue
				}
				c.g.AddEdge(u, v)
				done := c.accumulate1(u)
				c.g.RemoveEdge(u, v)
				if done {
					return
				}
			}
		}
		return
	}
	for u := 0; u < c.g.N() && !c.covered; u++ {
		for v := u + 1; v < c.g.N(); v++ {
			if c.g.HasEdge(u, v) {
				continue
			}
			c.g.AddEdge(u, v)
			done := c.accumulate2(u, v)
			c.g.RemoveEdge(u, v)
			if done {
				return
			}
		}
	}
}

// certBSwE scans the edge swaps uv → uw (actors u and w).
func (c *checker) certBSwE() {
	for u := 0; u < c.g.N() && !c.covered; u++ {
		nb := c.snapshotNeighbors(u)
		for _, v := range nb {
			for w := 0; w < c.g.N(); w++ {
				if w == u || w == v || c.g.HasEdge(u, w) {
					continue
				}
				c.g.RemoveEdge(u, v)
				c.g.AddEdge(u, w)
				var done bool
				if c.unilateral {
					done = c.accumulate1(u)
				} else {
					done = c.accumulate2(u, w)
				}
				c.g.RemoveEdge(u, w)
				c.g.AddEdge(u, v)
				if done {
					return
				}
			}
		}
	}
}

// certBNE scans every neighborhood change (drop any incident subset, add
// any non-neighbor subset; actors are u and the new partners).
func (c *checker) certBNE() {
	n := c.g.N()
	for u := 0; u < n && !c.covered; u++ {
		nb := c.snapshotNeighbors(u)
		nn := c.nnbuf[:0]
		for v := 0; v < n; v++ {
			if v != u && !c.g.HasEdge(u, v) {
				nn = append(nn, v)
			}
		}
		c.nnbuf = nn
		for rMask := 0; rMask < 1<<len(nb) && !c.covered; rMask++ {
			for aMask := 0; aMask < 1<<len(nn); aMask++ {
				if rMask == 0 && aMask == 0 {
					continue
				}
				for i, v := range nb {
					if rMask&(1<<i) != 0 {
						c.g.RemoveEdge(u, v)
					}
				}
				for i, w := range nn {
					if aMask&(1<<i) != 0 {
						c.g.AddEdge(u, w)
					}
				}
				c.devBegin()
				if c.devActor(u) && !c.unilateral {
					// Bilateral consent: intersect every new partner's
					// improving interval too.
					for i, w := range nn {
						if aMask&(1<<i) != 0 && !c.devActor(w) {
							break
						}
					}
				}
				done := c.devCommit()
				for i, w := range nn {
					if aMask&(1<<i) != 0 {
						c.g.RemoveEdge(u, w)
					}
				}
				for i, v := range nb {
					if rMask&(1<<i) != 0 {
						c.g.AddEdge(u, v)
					}
				}
				if done {
					return
				}
			}
		}
	}
}

// certKBSE scans every coalition of size at most k and every legal
// (removals, additions) move, mirroring checkKBSE's enumeration.
func (c *checker) certKBSE(k int) {
	if k < 1 {
		return
	}
	if k > c.g.N() {
		k = c.g.N()
	}
	c.members = c.members[:0]
	c.certCoalitions(0, k)
}

func (c *checker) certCoalitions(from, maxK int) {
	if c.covered {
		return
	}
	if len(c.members) > 0 {
		c.certCoalitionMoves()
		if c.covered {
			return
		}
	}
	if len(c.members) == maxK {
		return
	}
	for v := from; v < c.g.N(); v++ {
		c.members = append(c.members, v)
		c.certCoalitions(v+1, maxK)
		c.members = c.members[:len(c.members)-1]
		if c.covered {
			return
		}
	}
}

func (c *checker) certCoalitionMoves() {
	n := c.g.N()
	if cap(c.inCoal) < n {
		c.inCoal = make([]bool, n)
	}
	inCoal := c.inCoal[:n]
	for i := range inCoal {
		inCoal[i] = false
	}
	for _, u := range c.members {
		inCoal[u] = true
	}
	removable := c.removable[:0]
	for u := 0; u < n; u++ {
		for _, v := range c.g.Neighbors(u) {
			if u < v && (inCoal[u] || inCoal[v]) {
				removable = append(removable, graph.Edge{U: u, V: v})
			}
		}
	}
	addable := c.addable[:0]
	for i := 0; i < len(c.members); i++ {
		for j := i + 1; j < len(c.members); j++ {
			if !c.g.HasEdge(c.members[i], c.members[j]) {
				addable = append(addable, graph.Edge{U: c.members[i], V: c.members[j]})
			}
		}
	}
	c.removable, c.addable = removable, addable
	if len(removable) > 30 || len(addable) > 30 {
		panic("eq: coalition move space too large for exact k-BSE certification")
	}
	for rMask := 0; rMask < 1<<len(removable) && !c.covered; rMask++ {
		for aMask := 0; aMask < 1<<len(addable); aMask++ {
			if rMask == 0 && aMask == 0 {
				continue
			}
			for i, e := range removable {
				if rMask&(1<<i) != 0 {
					c.g.RemoveEdge(e.U, e.V)
				}
			}
			for i, e := range addable {
				if aMask&(1<<i) != 0 {
					c.g.AddEdge(e.U, e.V)
				}
			}
			c.devBegin()
			for _, u := range c.members {
				if !c.devActor(u) {
					break
				}
			}
			done := c.devCommit()
			for i, e := range addable {
				if aMask&(1<<i) != 0 {
					c.g.RemoveEdge(e.U, e.V)
				}
			}
			for i, e := range removable {
				if rMask&(1<<i) != 0 {
					c.g.AddEdge(e.U, e.V)
				}
			}
			if done {
				return
			}
		}
	}
}
