package eq

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// Improving reports whether applying m to g strictly lowers the cost of
// every actor of m. The graph is restored before returning. Moves that do
// not fit the graph report false.
//
// This is the primitive behind all checkers; it is exported so experiments
// can certify specific witness moves on instances too large for the
// exhaustive checks (e.g. the Figure 5 and Figure 7 gadgets).
func Improving(gm game.Game, g *graph.Graph, m move.Move) bool {
	var c checker
	c.reset(gm, g)
	return c.tryMove(m)
}

// Improving is the evaluator counterpart of the package-level Improving:
// identical semantics, but the BFS and baseline buffers are reused across
// calls, which the dynamics scheduler leans on when scanning thousands of
// candidate moves per step.
func (ev *Evaluator) Improving(gm game.Game, g *graph.Graph, m move.Move) bool {
	ev.c.reset(gm, g)
	return ev.c.tryMove(m)
}

// ImprovingBound evaluates a candidate move against the state bound by the
// last Bind without recomputing the baseline costs: every probe applies
// and reverts the move, so the baseline stays valid across a whole scan of
// candidates over one unchanged state. It must not be called before Bind,
// and the bound graph must not have been mutated since.
func (ev *Evaluator) ImprovingBound(m move.Move) bool {
	return ev.c.tryMove(m)
}

// CostDelta applies m, returns each actor's (before, after) costs in actor
// order, and restores the graph. The error reports a move that does not fit.
func CostDelta(gm game.Game, g *graph.Graph, m move.Move) (before, after []game.Cost, err error) {
	actors := m.Actors()
	before = make([]game.Cost, len(actors))
	for i, u := range actors {
		before[i] = gm.AgentCost(g, u)
	}
	undo, err := m.Apply(g)
	if err != nil {
		return nil, nil, err
	}
	defer undo()
	after = make([]game.Cost, len(actors))
	for i, u := range actors {
		after[i] = gm.AgentCost(g, u)
	}
	return before, after, nil
}
