package eq

import (
	"sort"
	"strings"

	"repro/internal/game"
)

// This file implements the exact α-interval arithmetic behind the
// parametric certificates: every deviation of every solution concept
// improves its actors on a single interval of edge prices (costs compare
// by the α-linear form num·Buy + den·Dist, so each comparison flips at one
// rational breakpoint α* = −ΔDist/ΔBuy), and a state's stable-α set is the
// complement of the union of those intervals within [0, ∞). All endpoint
// arithmetic is exact int64 rational — no floats ever enter a verdict.

// Rat is an exact non-negative rational α-axis point num/den, or +∞
// (Den == 0 by convention). Finite values keep Den > 0 and are reduced.
type Rat struct {
	Num, Den int64
}

// RatOf returns the reduced rational num/den. It panics on den <= 0 or
// num < 0: certificate endpoints live on the α-axis [0, ∞).
func RatOf(num, den int64) Rat {
	if den <= 0 || num < 0 {
		panic("eq: rational endpoint outside [0, ∞)")
	}
	g := gcdRat(num, den)
	return Rat{Num: num / g, Den: den / g}
}

func gcdRat(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// RatInf returns the +∞ endpoint.
func RatInf() Rat { return Rat{Num: 1, Den: 0} }

// IsInf reports whether r is +∞.
func (r Rat) IsInf() bool { return r.Den == 0 }

// Cmp compares two endpoints exactly, returning -1, 0 or 1.
func (r Rat) Cmp(o Rat) int {
	switch {
	case r.IsInf() && o.IsInf():
		return 0
	case r.IsInf():
		return 1
	case o.IsInf():
		return -1
	}
	lhs, rhs := r.Num*o.Den, o.Num*r.Den
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Alpha converts a finite endpoint to a game.Alpha. It panics on +∞.
func (r Rat) Alpha() game.Alpha {
	a, err := game.NewAlpha(r.Num, r.Den)
	if err != nil {
		panic("eq: infinite endpoint has no α value")
	}
	return a
}

// String renders the endpoint ("3", "9/2" or "∞").
func (r Rat) String() string {
	if r.IsInf() {
		return "∞"
	}
	return r.Alpha().String()
}

func ratOfAlpha(a game.Alpha) Rat { return Rat{Num: a.Num(), Den: a.Den()} }

// AlphaInterval is one interval of an AlphaSet: Lo..Hi with each finite
// endpoint either included (closed) or excluded (open). Hi may be +∞, in
// which case HiOpen is irrelevant and kept false.
type AlphaInterval struct {
	Lo, Hi         Rat
	LoOpen, HiOpen bool
}

// empty reports whether the interval contains no point.
func (iv AlphaInterval) empty() bool {
	switch iv.Lo.Cmp(iv.Hi) {
	case -1:
		return false
	case 0:
		return iv.LoOpen || iv.HiOpen
	default:
		return true
	}
}

// contains reports whether the exact point p lies in the interval.
func (iv AlphaInterval) contains(p Rat) bool {
	switch iv.Lo.Cmp(p) {
	case 1:
		return false
	case 0:
		if iv.LoOpen {
			return false
		}
	}
	switch p.Cmp(iv.Hi) {
	case 1:
		return false
	case 0:
		if iv.HiOpen {
			return false
		}
	}
	return true
}

// String renders the interval with standard bracket notation.
func (iv AlphaInterval) String() string {
	var b strings.Builder
	if iv.LoOpen {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	b.WriteString(iv.Lo.String())
	b.WriteString(", ")
	b.WriteString(iv.Hi.String())
	if iv.HiOpen || iv.Hi.IsInf() {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	return b.String()
}

// intersect returns the intersection of two intervals (possibly empty).
func intersect(a, b AlphaInterval) AlphaInterval {
	out := a
	switch c := b.Lo.Cmp(out.Lo); {
	case c > 0:
		out.Lo, out.LoOpen = b.Lo, b.LoOpen
	case c == 0:
		out.LoOpen = out.LoOpen || b.LoOpen
	}
	switch c := b.Hi.Cmp(out.Hi); {
	case c < 0:
		out.Hi, out.HiOpen = b.Hi, b.HiOpen
	case c == 0:
		out.HiOpen = out.HiOpen || b.HiOpen
	}
	return out
}

// fullAxis is the whole α-axis [0, ∞).
func fullAxis() AlphaInterval {
	return AlphaInterval{Lo: RatOf(0, 1), Hi: RatInf()}
}

// AlphaSet is a finite union of disjoint, sorted α intervals within
// [0, ∞) — the exact set of edge prices at which one state is stable for
// one solution concept. The zero value is the empty set. An AlphaSet is
// immutable after construction and safe to share between goroutines.
type AlphaSet struct {
	ivs []AlphaInterval
}

// FullAlphaSet returns the whole axis [0, ∞) — stable at every price.
func FullAlphaSet() AlphaSet { return AlphaSet{ivs: []AlphaInterval{fullAxis()}} }

// AlphaSetOf builds an AlphaSet from intervals that must be non-empty,
// sorted and pairwise disjoint (the on-disk certificate format); it panics
// otherwise, so a corrupted certificate cannot silently answer queries.
func AlphaSetOf(ivs []AlphaInterval) AlphaSet {
	for i, iv := range ivs {
		if iv.empty() {
			panic("eq: empty certificate interval")
		}
		if i > 0 && !ivs[i-1].disjointBelow(iv) {
			panic("eq: certificate intervals unsorted or overlapping")
		}
	}
	return AlphaSet{ivs: append([]AlphaInterval(nil), ivs...)}
}

// disjointBelow reports whether a lies strictly below b with a genuine gap
// or touching endpoints that are not both included.
func (iv AlphaInterval) disjointBelow(b AlphaInterval) bool {
	switch c := iv.Hi.Cmp(b.Lo); {
	case c < 0:
		return true
	case c == 0:
		return iv.HiOpen || b.LoOpen
	default:
		return false
	}
}

// IsEmpty reports whether the set contains no price.
func (s AlphaSet) IsEmpty() bool { return len(s.ivs) == 0 }

// Intervals returns a copy of the set's intervals in increasing order.
func (s AlphaSet) Intervals() []AlphaInterval {
	return append([]AlphaInterval(nil), s.ivs...)
}

// Contains reports whether the exact price alpha lies in the set, by
// binary search over the interval endpoints — O(log B) per query, the
// whole point of answering a dense α-grid from one certificate.
func (s AlphaSet) Contains(alpha game.Alpha) bool {
	p := ratOfAlpha(alpha)
	// First interval whose Hi is not below p.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi.Cmp(p) >= 0 })
	return i < len(s.ivs) && s.ivs[i].contains(p)
}

// Equal reports exact set equality.
func (s AlphaSet) Equal(o AlphaSet) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i, iv := range s.ivs {
		ov := o.ivs[i]
		if iv.Lo.Cmp(ov.Lo) != 0 || iv.Hi.Cmp(ov.Hi) != 0 ||
			iv.LoOpen != ov.LoOpen || (iv.HiOpen != ov.HiOpen && !iv.Hi.IsInf()) {
			return false
		}
	}
	return true
}

// Breakpoints returns the exact critical prices at which the verdict
// flips, in increasing order. A closed start at 0 is not a breakpoint —
// there is no price below it to flip from; every other finite endpoint
// separates membership on its two sides.
func (s AlphaSet) Breakpoints() []game.Alpha {
	var out []game.Alpha
	add := func(r Rat) {
		if len(out) == 0 || ratOfAlpha(out[len(out)-1]).Cmp(r) != 0 {
			out = append(out, r.Alpha())
		}
	}
	for _, iv := range s.ivs {
		if !(iv.Lo.Cmp(RatOf(0, 1)) == 0 && !iv.LoOpen) {
			add(iv.Lo)
		}
		if !iv.Hi.IsInf() {
			add(iv.Hi)
		}
	}
	return out
}

// String renders the set ("∅", "[0, 1/2] ∪ (2, ∞)").
func (s AlphaSet) String() string {
	if len(s.ivs) == 0 {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// MarshalJSON renders the set as its exact string form, so certificates
// appear in JSON as human-readable interval notation and never as floats.
func (s AlphaSet) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('"')
	b.WriteString(s.String())
	b.WriteByte('"')
	return []byte(b.String()), nil
}

// ---- union accumulation and complement ----

// unionAdd inserts iv into the sorted disjoint union ivs, merging every
// interval it overlaps or touches-with-coverage, and returns the new
// union. Touching open endpoints ((a,b) then (b,c)) do NOT merge: the
// point b stays uncovered, which the complement must see — it is exactly
// the degenerate single-price stable point.
//
// The slice is edited in place (the certificate scans call this once per
// improving deviation, millions of times per sweep); it only allocates
// when a genuine insertion outgrows the capacity.
func unionAdd(ivs []AlphaInterval, iv AlphaInterval) []AlphaInterval {
	if iv.empty() {
		return ivs
	}
	// Find the window [i, j) of intervals connected to iv.
	i := 0
	for i < len(ivs) && ivs[i].disjointBelow(iv) {
		i++
	}
	j := i
	for j < len(ivs) && !iv.disjointBelow(ivs[j]) {
		j++
	}
	if i < j {
		// Merge with the connected run.
		first, last := ivs[i], ivs[j-1]
		switch c := first.Lo.Cmp(iv.Lo); {
		case c < 0:
			iv.Lo, iv.LoOpen = first.Lo, first.LoOpen
		case c == 0:
			iv.LoOpen = iv.LoOpen && first.LoOpen
		}
		switch c := last.Hi.Cmp(iv.Hi); {
		case c > 0:
			iv.Hi, iv.HiOpen = last.Hi, last.HiOpen
		case c == 0:
			iv.HiOpen = iv.HiOpen && last.HiOpen
		}
		ivs[i] = iv
		if j > i+1 {
			ivs = append(ivs[:i+1], ivs[j:]...)
		}
		return ivs
	}
	// Pure insertion at i.
	ivs = append(ivs, AlphaInterval{})
	copy(ivs[i+1:], ivs[i:])
	ivs[i] = iv
	return ivs
}

// coversAxis reports whether the union is the whole axis [0, ∞) — the
// certificate scans' early-exit: once every price has an improving
// deviation, no further scanning can change the (empty) stable set.
func coversAxis(ivs []AlphaInterval) bool {
	return len(ivs) == 1 &&
		ivs[0].Lo.Cmp(RatOf(0, 1)) == 0 && !ivs[0].LoOpen &&
		ivs[0].Hi.IsInf()
}

// complementAxis returns [0, ∞) minus the sorted disjoint union ivs: the
// stable set, whose finite endpoints are exactly the union's endpoints
// with inverted openness (a strict-improvement comparison is indifferent
// at its breakpoint, so stable sets are closed where improving sets were
// open — including degenerate single-point intervals between two touching
// open improving intervals).
func complementAxis(ivs []AlphaInterval) AlphaSet {
	var out []AlphaInterval
	lo, loOpen := RatOf(0, 1), false
	for _, iv := range ivs {
		gap := AlphaInterval{Lo: lo, LoOpen: loOpen, Hi: iv.Lo, HiOpen: !iv.LoOpen}
		if iv.Lo.IsInf() {
			gap.HiOpen = false
		}
		if !gap.empty() {
			out = append(out, gap)
		}
		if iv.Hi.IsInf() {
			return AlphaSet{ivs: out}
		}
		lo, loOpen = iv.Hi, !iv.HiOpen
	}
	out = append(out, AlphaInterval{Lo: lo, LoOpen: loOpen, Hi: RatInf()})
	return AlphaSet{ivs: out}
}
