package eq

import (
	"testing"

	"repro/internal/construct"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// The Figure 5 gadget: BAE and BGE at α = 209/2, but the hub's double swap
// violates BNE with the paper's exact gains (104 for a single swap's
// partner, 105 and 2 for the double swap).
func TestFigure5Gadget(t *testing.T) {
	f5 := construct.NewFigure5(100)
	gm := mustGame(t, f5.G.N(), game.AFrac(209, 2))

	if r := CheckRE(gm, f5.G); !r.Stable {
		t.Fatalf("figure5 not RE: %v", r.Witness)
	}
	if r := CheckBAE(gm, f5.G); !r.Stable {
		t.Fatalf("figure5 not BAE: %v", r.Witness)
	}
	if r := CheckBSwE(gm, f5.G); !r.Stable {
		t.Fatalf("figure5 not BSwE: %v", r.Witness)
	}

	swap := move.Swap{U: f5.A, Old: f5.B[0], New: f5.C[0]}
	before, after, err := CostDelta(gm, f5.G, swap)
	if err != nil {
		t.Fatal(err)
	}
	if gain := before[1].Dist - after[1].Dist; gain != 104 {
		t.Fatalf("single-swap partner gain = %d, want 104", gain)
	}

	double := move.Neighborhood{
		U:        f5.A,
		RemoveTo: []int{f5.B[0], f5.B[1]},
		AddTo:    []int{f5.C[0], f5.C[1]},
	}
	before, after, err = CostDelta(gm, f5.G, double)
	if err != nil {
		t.Fatal(err)
	}
	if gain := before[0].Dist - after[0].Dist; gain != 2 {
		t.Fatalf("hub gain = %d, want 2", gain)
	}
	if gain := before[1].Dist - after[1].Dist; gain != 105 {
		t.Fatalf("partner gain = %d, want 105", gain)
	}
	if !Improving(gm, f5.G, double) {
		t.Fatal("double swap should improve all actors (BNE violation)")
	}
}

// The Figure 6 gadget: in BNE at α = 7 (exhaustively) but not in 2-BSE,
// with the paper's exact agent distance costs.
func TestFigure6Gadget(t *testing.T) {
	f6 := construct.NewFigure6()
	gm := mustGame(t, 10, game.A(7))

	for name, tc := range map[string]struct {
		node int
		want int64
	}{
		"a1": {node: f6.A[0], want: 19},
		"b1": {node: f6.B[0], want: 27},
		"c1": {node: f6.C[0], want: 19},
	} {
		sum, unreachable := f6.G.TotalDist(tc.node)
		if unreachable != 0 || sum != tc.want {
			t.Fatalf("dist(%s) = %d, want %d", name, sum, tc.want)
		}
	}
	if r := CheckBNE(gm, f6.G); !r.Stable {
		t.Fatalf("figure6 not BNE: %v", r.Witness)
	}
	r := CheckKBSE(gm, f6.G, 2)
	if r.Stable {
		t.Fatal("figure6 unexpectedly in 2-BSE")
	}
	if _, ok := r.Witness.(move.Coalition); !ok {
		t.Fatalf("2-BSE witness %v is not a coalition", r.Witness)
	}
}

// The Figure 7 gadget: 2-BSE (rows >= 4) and 3-BSE (rows = 4) while the
// hub's all-rows swap always violates BNE.
func TestFigure7Gadget(t *testing.T) {
	for rows := 2; rows <= 5; rows++ {
		f7 := construct.NewFigure7(rows)
		gm := mustGame(t, f7.G.N(), game.A(f7.AlphaNum()))
		hubMove := move.Neighborhood{
			U:        f7.A,
			RemoveTo: append([]int(nil), f7.B...),
			AddTo:    append([]int(nil), f7.C...),
		}
		if !Improving(gm, f7.G, hubMove) {
			t.Fatalf("rows=%d: hub move should improve hub and all c-agents", rows)
		}
		two := CheckKBSE(gm, f7.G, 2).Stable
		if want := rows >= 4; two != want {
			t.Fatalf("rows=%d: 2-BSE = %v, want %v", rows, two, want)
		}
	}
	f7 := construct.NewFigure7(4)
	gm := mustGame(t, f7.G.N(), game.A(f7.AlphaNum()))
	if !CheckKBSE(gm, f7.G, 3).Stable {
		t.Fatal("figure7(4) should be in 3-BSE")
	}
}

// The Figure 2 witness: unilateral NE, not pairwise stable (Prop 2.3).
func TestFigure2Gadget(t *testing.T) {
	f2 := construct.NewFigure2()
	gm := mustGame(t, 5, game.A(2))
	o, err := game.NewOwnership(f2.G, f2.Owner)
	if err != nil {
		t.Fatal(err)
	}
	if r := CheckUnilateralNE(gm, f2.G, o); !r.Stable {
		t.Fatalf("figure2 not in unilateral NE: %v", r.Witness)
	}
	r := CheckPS(gm, f2.G)
	if r.Stable {
		t.Fatal("figure2 unexpectedly pairwise stable")
	}
	if _, ok := r.Witness.(move.Remove); !ok {
		t.Fatalf("PS witness %v is not a removal", r.Witness)
	}
}

// The Figure 8 witness: BAE but not unilateral AE (Prop 2.1 reverse).
func TestFigure8Gadget(t *testing.T) {
	g := construct.Figure8()
	gm := mustGame(t, 5, game.A(2))
	if r := CheckBAE(gm, g); !r.Stable {
		t.Fatalf("figure8 not BAE: %v", r.Witness)
	}
	r := CheckUnilateralAE(gm, g)
	if r.Stable {
		t.Fatal("figure8 unexpectedly in unilateral AE")
	}
}

// Prop 2.1 forward direction: unilateral AE implies BAE, on an exhaustive
// n=5 sweep.
func TestAEImpliesBAE(t *testing.T) {
	for _, alpha := range []game.Alpha{game.A(1), game.A(2), game.AFrac(9, 2)} {
		gm := mustGame(t, 5, alpha)
		graph.Enumerate(5, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}, func(g *graph.Graph) {
			if CheckUnilateralAE(gm, g).Stable && !CheckBAE(gm, g).Stable {
				t.Fatalf("AE but not BAE at α=%s: %s", alpha, g)
			}
		})
	}
}

// Prop 2.2: bilateral RE coincides with unilateral RE under every
// ownership.
func TestProp22RemoveEquivalence(t *testing.T) {
	for _, alpha := range []game.Alpha{game.A(1), game.A(3)} {
		gm := mustGame(t, 4, alpha)
		graph.Enumerate(4, graph.EnumOptions{ConnectedOnly: true, MaxEdges: -1}, func(g *graph.Graph) {
			bilateral := CheckRE(gm, g).Stable
			allOwnerships := true
			game.AllOwnerships(g, func(o *game.Ownership) {
				if !CheckUnilateralRE(gm, g, o.Clone()).Stable {
					allOwnerships = false
				}
			})
			if bilateral != allOwnerships {
				t.Fatalf("α=%s %s: bilateral RE=%v, unilateral-for-all=%v",
					alpha, g, bilateral, allOwnerships)
			}
		})
	}
}

// The named separation witnesses of Figure 1a.
func TestSeparationWitnesses(t *testing.T) {
	t.Run("swap tree: PS but not BSwE", func(t *testing.T) {
		g := construct.SwapTree()
		gm := mustGame(t, g.N(), game.A(construct.SwapTreeAlphaNum))
		if !CheckPS(gm, g).Stable {
			t.Fatal("swap tree not PS")
		}
		if CheckBSwE(gm, g).Stable {
			t.Fatal("swap tree unexpectedly BSwE")
		}
	})
	t.Run("K24: BGE but not 2-BSE", func(t *testing.T) {
		g := construct.CompleteBipartite(2, 4)
		gm := mustGame(t, 6, game.AFrac(5, 4))
		if !CheckBGE(gm, g).Stable {
			t.Fatal("K_{2,4} not BGE")
		}
		if CheckKBSE(gm, g, 2).Stable {
			t.Fatal("K_{2,4} unexpectedly 2-BSE")
		}
	})
	t.Run("three-coalition tree: 2-BSE but not 3-BSE", func(t *testing.T) {
		g := construct.ThreeCoalitionTree()
		gm := mustGame(t, 7, game.AFrac(17, 4))
		if !CheckKBSE(gm, g, 2).Stable {
			t.Fatal("tree not 2-BSE")
		}
		if CheckKBSE(gm, g, 3).Stable {
			t.Fatal("tree unexpectedly 3-BSE")
		}
	})
}

func TestAnalyticCheckers(t *testing.T) {
	if CycleBSEWindow(2, game.A(1)) {
		t.Fatal("window for n<3")
	}
	if !StretchedTreeBAE(10, 1, game.A(50)) || StretchedTreeBAE(10, 1, game.A(49)) {
		t.Fatal("StretchedTreeBAE threshold wrong")
	}
	if !StretchedTreeBGE(10, 2, game.A(140)) || StretchedTreeBGE(10, 2, game.A(139)) {
		t.Fatal("StretchedTreeBGE threshold wrong")
	}
	if !StarIsBSE(game.A(2)) || StarIsBSE(game.A(1)) {
		t.Fatal("StarIsBSE threshold wrong")
	}
	// TreeStarBNE: a huge α certifies, a tiny one does not.
	if !TreeStarBNE(100, 7, 3, 1, game.A(10000)) {
		t.Fatal("TreeStarBNE should certify at huge α")
	}
	if TreeStarBNE(100, 7, 3, 1, game.A(10)) {
		t.Fatal("TreeStarBNE should reject at small α")
	}
	// k > 1 additionally requires α >= 6kn.
	if TreeStarBNE(100, 7, 3, 2, game.A(1199)) {
		t.Fatal("TreeStarBNE must enforce α >= 6kn for k > 1")
	}
}

// Cross-validation: the Lemma D.4/D.7 thresholds certify stretched trees
// that the exact checkers confirm.
func TestStretchedTreeAnalyticVsExact(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{2, 1}, {2, 2}, {1, 3}} {
		st := construct.NewStretched(tc.d, tc.k)
		n := st.G.N()
		alpha := game.A(int64(7 * tc.k * n))
		gm := mustGame(t, n, alpha)
		if !StretchedTreeBGE(n, tc.k, alpha) {
			t.Fatalf("d=%d k=%d: analytic BGE threshold not met at its own bound", tc.d, tc.k)
		}
		if r := CheckBGE(gm, st.G); !r.Stable {
			t.Fatalf("d=%d k=%d: exact BGE check fails at α=%s: %v", tc.d, tc.k, alpha, r.Witness)
		}
	}
}
