package eq

import (
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// FuzzCertificateAgreement is the certificate engine's differential fuzz
// target: for arbitrary decoded graphs and every solution concept, the
// parametric certificate must agree with the per-α exact checker on a
// dense rational α-grid — a fixed lattice plus the certificate's own
// breakpoints, the midpoints between them, and one point past the last
// (exactly where a wrong open/closed endpoint or a missed deviation
// breakpoint is visible). The seed corpus mirrors the graph-decode fuzz
// corpus so the same inputs exercise decoding and certification.
func FuzzCertificateAgreement(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n", uint8(0))
	f.Add("n 4\n0 1\n1 2\n2 3\n3 0\n", uint8(1))
	f.Add("n 5\n0 1\n0 2\n0 3\n0 4\n", uint8(3))
	f.Add("n 5\n0 1\n1 2\n2 3\n3 4\n", uint8(7))
	f.Add("n 6\n0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n", uint8(9))
	f.Fuzz(func(t *testing.T, input string, pick uint8) {
		g, err := graph.Decode(input)
		if err != nil || g.N() < 2 || g.N() > 6 {
			return
		}
		n := g.N()
		concepts := Concepts()
		if n == 6 {
			// The coalition searches are exponential; at the fuzz budget keep
			// n=6 inputs on the polynomial concepts.
			concepts = []Concept{RE, BAE, PS, BSwE, BGE}
		}
		concept := concepts[int(pick)%len(concepts)]
		gm, err := game.NewGame(n, game.A(1))
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator()
		set := ev.Certify(gm, g.Clone(), concept)

		probe := func(alpha game.Alpha) {
			gmA, err := game.NewGame(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			got := set.Contains(alpha)
			want := Check(gmA, g, concept).Stable
			if got != want {
				t.Fatalf("%s at α=%s on %s: certificate says %v, checker says %v (cert %s)",
					concept, alpha, g, got, want, set)
			}
		}
		for den := int64(1); den <= 3; den++ {
			for num := int64(0); num <= 9; num++ {
				probe(game.AFrac(num, den))
			}
		}
		bps := set.Breakpoints()
		for i, bp := range bps {
			probe(bp)
			if i+1 < len(bps) {
				if mid, err := game.NewAlpha(
					bp.Num()*bps[i+1].Den()+bps[i+1].Num()*bp.Den(),
					2*bp.Den()*bps[i+1].Den()); err == nil {
					probe(mid)
				}
			}
		}
		if len(bps) > 0 {
			last := bps[len(bps)-1]
			probe(game.AFrac(last.Num()+last.Den(), last.Den()))
		}
	})
}
