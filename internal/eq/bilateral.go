package eq

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// CheckRE reports whether g is a Remove Equilibrium: no agent strictly
// improves by removing a single incident edge.
func CheckRE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkRE()
}

func (c *checker) checkRE() Result {
	for _, e := range c.g.Edges() {
		for _, u := range []int{e.U, e.V} {
			m := move.Remove{U: u, V: e.Other(u)}
			if c.tryMove(m) {
				return unstable(m)
			}
		}
	}
	return stable()
}

// CheckBAE reports whether g is a Bilateral Add Equilibrium: no two agents
// both strictly improve by jointly adding the edge between them.
func CheckBAE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBAE()
}

func (c *checker) checkBAE() Result {
	for u := 0; u < c.g.N(); u++ {
		for v := u + 1; v < c.g.N(); v++ {
			if c.g.HasEdge(u, v) {
				continue
			}
			m := move.Add{U: u, V: v}
			if c.tryMove(m) {
				return unstable(m)
			}
		}
	}
	return stable()
}

// CheckPS reports Pairwise Stability: RE and BAE.
func CheckPS(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkPS()
}

func (c *checker) checkPS() Result {
	if r := c.checkRE(); !r.Stable {
		return r
	}
	return c.checkBAE()
}

// CheckBSwE reports whether g is a Bilateral Swap Equilibrium: no agent u
// with neighbor v and non-neighbor w such that swapping uv for uw strictly
// improves both u and w.
func CheckBSwE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBSwE()
}

func (c *checker) checkBSwE() Result {
	for u := 0; u < c.g.N(); u++ {
		neighbors := append([]int(nil), c.g.Neighbors(u)...)
		for _, v := range neighbors {
			for w := 0; w < c.g.N(); w++ {
				if w == u || w == v || c.g.HasEdge(u, w) {
					continue
				}
				m := move.Swap{U: u, Old: v, New: w}
				if c.tryMove(m) {
					return unstable(m)
				}
			}
		}
	}
	return stable()
}

// CheckBGE reports Bilateral Greedy Equilibrium: PS and BSwE.
func CheckBGE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBGE()
}

func (c *checker) checkBGE() Result {
	if r := c.checkPS(); !r.Stable {
		return r
	}
	return c.checkBSwE()
}

// CheckBNE reports whether g is a Bilateral Neighborhood Equilibrium: for
// no agent u is there a set R of incident edges to drop and a set A of new
// partners to connect to such that u and every member of A strictly
// benefit.
//
// The search enumerates all 2^{deg(u)} × 2^{n-1-deg(u)} (R, A) pairs per
// agent; it is exact and intended for n up to roughly 16.
func CheckBNE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBNE()
}

func (c *checker) checkBNE() Result {
	n := c.g.N()
	for u := 0; u < n; u++ {
		neighbors := append([]int(nil), c.g.Neighbors(u)...)
		var nonNeighbors []int
		for v := 0; v < n; v++ {
			if v != u && !c.g.HasEdge(u, v) {
				nonNeighbors = append(nonNeighbors, v)
			}
		}
		if w, ok := searchNeighborhood(c, u, neighbors, nonNeighbors); ok {
			return unstable(w)
		}
	}
	return stable()
}

// searchNeighborhood looks for an improving neighborhood change around u.
func searchNeighborhood(c *checker, u int, neighbors, nonNeighbors []int) (move.Neighborhood, bool) {
	for rMask := 0; rMask < 1<<len(neighbors); rMask++ {
		removeTo := subsetOf(neighbors, rMask)
		for aMask := 0; aMask < 1<<len(nonNeighbors); aMask++ {
			if rMask == 0 && aMask == 0 {
				continue
			}
			m := move.Neighborhood{
				U:        u,
				RemoveTo: removeTo,
				AddTo:    subsetOf(nonNeighbors, aMask),
			}
			if c.tryMove(m) {
				return m, true
			}
		}
	}
	return move.Neighborhood{}, false
}

func subsetOf(s []int, mask int) []int {
	if mask == 0 {
		return nil
	}
	out := make([]int, 0, len(s))
	for i, v := range s {
		if mask&(1<<i) != 0 {
			out = append(out, v)
		}
	}
	return out
}
