package eq

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// CheckRE reports whether g is a Remove Equilibrium: no agent strictly
// improves by removing a single incident edge.
func CheckRE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkRE()
}

// The scans below mutate edges directly and revert them in place instead
// of constructing move.Move values: boxing a move into the interface
// allocates, and the scans run millions of candidates per sweep. A move is
// only materialized on the cold path, as the witness of a violation. Scan
// order matches the historical move enumeration exactly, so witnesses are
// byte-identical.

func (c *checker) checkRE() Result {
	// Edges in canonical (U<V) lexicographic order — the Edges() order —
	// trying the smaller endpoint as the remover first.
	for u := 0; u < c.g.N(); u++ {
		nb := c.snapshotNeighbors(u)
		for _, v := range nb {
			if v < u {
				continue // already scanned from the smaller endpoint
			}
			for flip := 0; flip < 2; flip++ {
				a, b := u, v
				if flip == 1 {
					a, b = v, u
				}
				c.g.RemoveEdge(a, b)
				imp := c.improves(a)
				c.g.AddEdge(a, b)
				if imp {
					return unstable(move.Remove{U: a, V: b})
				}
			}
		}
	}
	return stable()
}

// CheckBAE reports whether g is a Bilateral Add Equilibrium: no two agents
// both strictly improve by jointly adding the edge between them.
func CheckBAE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBAE()
}

func (c *checker) checkBAE() Result {
	if c.unilateral {
		// Unilateral consent: any agent may buy any absent edge on her
		// own, so the scan is over ordered (buyer, target) pairs and only
		// the buyer must improve. The enumeration order is exactly the
		// historical CheckUnilateralAE scan, keeping witnesses
		// byte-identical through the shim.
		for u := 0; u < c.g.N(); u++ {
			for v := 0; v < c.g.N(); v++ {
				if v == u || c.g.HasEdge(u, v) {
					continue
				}
				c.g.AddEdge(u, v)
				imp := c.improves(u)
				c.g.RemoveEdge(u, v)
				if imp {
					return unstable(move.Add{U: u, V: v})
				}
			}
		}
		return stable()
	}
	for u := 0; u < c.g.N(); u++ {
		for v := u + 1; v < c.g.N(); v++ {
			if c.g.HasEdge(u, v) {
				continue
			}
			c.g.AddEdge(u, v)
			imp := c.improves(u) && c.improves(v)
			c.g.RemoveEdge(u, v)
			if imp {
				return unstable(move.Add{U: u, V: v})
			}
		}
	}
	return stable()
}

// CheckPS reports Pairwise Stability: RE and BAE.
func CheckPS(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkPS()
}

func (c *checker) checkPS() Result {
	if r := c.checkRE(); !r.Stable {
		return r
	}
	return c.checkBAE()
}

// CheckBSwE reports whether g is a Bilateral Swap Equilibrium: no agent u
// with neighbor v and non-neighbor w such that swapping uv for uw strictly
// improves both u and w.
func CheckBSwE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBSwE()
}

func (c *checker) checkBSwE() Result {
	for u := 0; u < c.g.N(); u++ {
		nb := c.snapshotNeighbors(u)
		for _, v := range nb {
			for w := 0; w < c.g.N(); w++ {
				if w == u || w == v || c.g.HasEdge(u, w) {
					continue
				}
				c.g.RemoveEdge(u, v)
				c.g.AddEdge(u, w)
				// Bilateral: the new partner w must consent by strictly
				// improving; unilateral: only the swapper u must.
				imp := c.improves(u) && (c.unilateral || c.improves(w))
				c.g.RemoveEdge(u, w)
				c.g.AddEdge(u, v)
				if imp {
					return unstable(move.Swap{U: u, Old: v, New: w})
				}
			}
		}
	}
	return stable()
}

// CheckBGE reports Bilateral Greedy Equilibrium: PS and BSwE.
func CheckBGE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBGE()
}

func (c *checker) checkBGE() Result {
	if r := c.checkPS(); !r.Stable {
		return r
	}
	return c.checkBSwE()
}

// CheckBNE reports whether g is a Bilateral Neighborhood Equilibrium: for
// no agent u is there a set R of incident edges to drop and a set A of new
// partners to connect to such that u and every member of A strictly
// benefit.
//
// The search enumerates all 2^{deg(u)} × 2^{n-1-deg(u)} (R, A) pairs per
// agent; it is exact and intended for n up to roughly 16.
func CheckBNE(gm game.Game, g *graph.Graph) Result {
	var c checker
	c.reset(gm, g)
	return c.checkBNE()
}

func (c *checker) checkBNE() Result {
	n := c.g.N()
	for u := 0; u < n; u++ {
		nb := c.snapshotNeighbors(u)
		nn := c.nnbuf[:0]
		for v := 0; v < n; v++ {
			if v != u && !c.g.HasEdge(u, v) {
				nn = append(nn, v)
			}
		}
		c.nnbuf = nn
		if w, ok := c.searchNeighborhood(u, nb, nn); ok {
			return unstable(w)
		}
	}
	return stable()
}

// searchNeighborhood looks for an improving neighborhood change around u:
// drop the neighbors selected by rMask, connect to the non-neighbors
// selected by aMask, and require u and every new partner to strictly
// improve (in that order, with early exit).
func (c *checker) searchNeighborhood(u int, neighbors, nonNeighbors []int) (move.Neighborhood, bool) {
	for rMask := 0; rMask < 1<<len(neighbors); rMask++ {
		for aMask := 0; aMask < 1<<len(nonNeighbors); aMask++ {
			if rMask == 0 && aMask == 0 {
				continue
			}
			for i, v := range neighbors {
				if rMask&(1<<i) != 0 {
					c.g.RemoveEdge(u, v)
				}
			}
			for i, w := range nonNeighbors {
				if aMask&(1<<i) != 0 {
					c.g.AddEdge(u, w)
				}
			}
			imp := c.improves(u)
			if imp && !c.unilateral {
				// Bilateral consent: every new partner must improve too.
				for i, w := range nonNeighbors {
					if aMask&(1<<i) != 0 && !c.improves(w) {
						imp = false
						break
					}
				}
			}
			for i, w := range nonNeighbors {
				if aMask&(1<<i) != 0 {
					c.g.RemoveEdge(u, w)
				}
			}
			for i, v := range neighbors {
				if rMask&(1<<i) != 0 {
					c.g.AddEdge(u, v)
				}
			}
			if imp {
				return move.Neighborhood{
					U:        u,
					RemoveTo: subsetOf(neighbors, rMask),
					AddTo:    subsetOf(nonNeighbors, aMask),
				}, true
			}
		}
	}
	return move.Neighborhood{}, false
}

func subsetOf(s []int, mask int) []int {
	if mask == 0 {
		return nil
	}
	out := make([]int, 0, len(s))
	for i, v := range s {
		if mask&(1<<i) != 0 {
			out = append(out, v)
		}
	}
	return out
}
