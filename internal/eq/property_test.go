package eq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/game"
	"repro/internal/graph"
)

// Stability of every concept is a graph property: invariant under
// relabeling the agents.
func TestStabilityIsIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := graph.RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		h, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(12)), int64(1+rng.Intn(2))))
		for _, c := range Concepts() {
			if Check(gm, g, c).Stable != Check(gm, h, c).Stable {
				t.Fatalf("%s stability not invariant under %v on %s", c, perm, g)
			}
		}
	}
}

// A disconnected graph is never in BAE: bridging two components reduces
// both endpoints' unreachable count, which dominates any buying cost under
// the lexicographic ordering.
func TestDisconnectedNeverBAE(t *testing.T) {
	f := func(seed int64, alphaNum uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		// Two components: a tree on the first half, isolated rest.
		k := 2 + rng.Intn(n-2)
		g := graph.New(n)
		sub := graph.RandomTree(k, rng)
		for _, e := range sub.Edges() {
			g.AddEdge(e.U, e.V)
		}
		gm, err := game.NewGame(n, game.AFrac(int64(alphaNum%50)+1, 2))
		if err != nil {
			return false
		}
		return !CheckBAE(gm, g).Stable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cost comparison under a fixed α is a strict weak ordering: exactly one
// of a<b, b<a, a≈b holds, and equality is agreement on the scalar.
func TestCostOrderingProperties(t *testing.T) {
	f := func(u1, b1, d1, u2, b2, d2 uint16, num, den uint8) bool {
		alpha, err := game.NewAlpha(int64(num%40)+1, int64(den%4)+1)
		if err != nil {
			return false
		}
		a := game.Cost{Unreachable: int64(u1 % 3), Buy: int64(b1 % 50), Dist: int64(d1)}
		b := game.Cost{Unreachable: int64(u2 % 3), Buy: int64(b2 % 50), Dist: int64(d2)}
		less, greater, equal := a.Less(b, alpha), b.Less(a, alpha), a.Equal(b, alpha)
		count := 0
		for _, x := range []bool{less, greater, equal} {
			if x {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Single-agent and two-agent games are trivially stable for everything
// (the only move anyone could make is an addition at n=2, which pays off
// exactly when α < 1).
func TestTinyGames(t *testing.T) {
	gm := mustGame(t, 2, game.A(2))
	g := graph.New(2)
	if !CheckRE(gm, g).Stable {
		t.Fatal("empty 2-graph should be RE")
	}
	if CheckBAE(gm, g).Stable {
		t.Fatal("disconnected 2-graph must fail BAE (connectivity dominates)")
	}
	g.AddEdge(0, 1)
	for _, c := range Concepts() {
		if !Check(gm, g, c).Stable {
			t.Fatalf("K2 unstable for %s", c)
		}
	}
}

// The BNE checker agrees with a brute-force reimplementation on random
// small graphs (differential test of the subset enumeration).
func TestBNEAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := graph.RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(8)), 2))
		want := bruteForceBNE(gm, g)
		got := CheckBNE(gm, g).Stable
		if got != want {
			t.Fatalf("BNE checker %v, brute force %v on %s at α=%s", got, want, g, gm.Alpha)
		}
	}
}

// bruteForceBNE re-derives BNE stability by materializing every candidate
// graph that differs from g only in edges incident to a single agent.
func bruteForceBNE(gm game.Game, g *graph.Graph) bool {
	n := g.N()
	base := make([]game.Cost, n)
	for u := 0; u < n; u++ {
		base[u] = gm.AgentCost(g, u)
	}
	for u := 0; u < n; u++ {
		var others []int
		for v := 0; v < n; v++ {
			if v != u {
				others = append(others, v)
			}
		}
		for mask := 0; mask < 1<<len(others); mask++ {
			trial := g.Clone()
			var added []int
			changed := false
			for i, v := range others {
				want := mask&(1<<i) != 0
				have := g.HasEdge(u, v)
				if want == have {
					continue
				}
				changed = true
				if want {
					trial.AddEdge(u, v)
					added = append(added, v)
				} else {
					trial.RemoveEdge(u, v)
				}
			}
			if !changed {
				continue
			}
			ok := gm.AgentCost(trial, u).Less(base[u], gm.Alpha)
			for _, v := range added {
				if !ok {
					break
				}
				ok = gm.AgentCost(trial, v).Less(base[v], gm.Alpha)
			}
			if ok {
				return false
			}
		}
	}
	return true
}
