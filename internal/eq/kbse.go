package eq

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// CheckKBSE reports whether g is a Bilateral k-Strong Equilibrium: no
// coalition Γ of size at most k has a move — deleting edges that touch Γ
// and adding edges inside Γ — from which every member of Γ strictly
// benefits. CheckKBSE(gm, g, g.N()) is the full BSE check.
//
// The search is exact: it enumerates every coalition, every removable edge
// subset and every addable edge subset, with early-exit cost evaluation.
// Complexity is exponential; it is intended for n ≤ 6 at k = n and n ≤ ~12
// for k ≤ 3.
func CheckKBSE(gm game.Game, g *graph.Graph, k int) Result {
	var c checker
	c.reset(gm, g)
	return c.checkKBSE(k)
}

func (c *checker) checkKBSE(k int) Result {
	if k < 1 {
		return stable()
	}
	if k > c.g.N() {
		k = c.g.N()
	}
	c.members = c.members[:0]
	if w, ok := c.searchCoalitions(0, k); ok {
		return unstable(w)
	}
	return stable()
}

// searchCoalitions enumerates coalitions Γ ⊆ V with |Γ| ≤ maxK in
// lexicographic order (members strictly increasing, starting at from),
// growing and shrinking the shared members scratch in place.
func (c *checker) searchCoalitions(from, maxK int) (move.Coalition, bool) {
	if len(c.members) > 0 {
		if w, ok := c.searchCoalitionMoves(); ok {
			return w, true
		}
	}
	if len(c.members) == maxK {
		return move.Coalition{}, false
	}
	for v := from; v < c.g.N(); v++ {
		c.members = append(c.members, v)
		if w, ok := c.searchCoalitions(v+1, maxK); ok {
			return w, true
		}
		c.members = c.members[:len(c.members)-1]
	}
	return move.Coalition{}, false
}

// searchCoalitionMoves enumerates every (removals, additions) pair legal
// for the current coalition scratch and tests whether all members strictly
// improve. Edge subsets are applied and reverted in place; a Coalition
// value is only built as the witness of a violation.
func (c *checker) searchCoalitionMoves() (move.Coalition, bool) {
	n := c.g.N()
	if cap(c.inCoal) < n {
		c.inCoal = make([]bool, n)
	}
	inCoal := c.inCoal[:n]
	for i := range inCoal {
		inCoal[i] = false
	}
	for _, u := range c.members {
		inCoal[u] = true
	}
	// Removable: existing edges touching the coalition, in canonical
	// lexicographic (U<V) order. Addable: absent edges inside the
	// coalition, in member order.
	removable := c.removable[:0]
	for u := 0; u < n; u++ {
		for _, v := range c.g.Neighbors(u) {
			if u < v && (inCoal[u] || inCoal[v]) {
				removable = append(removable, graph.Edge{U: u, V: v})
			}
		}
	}
	addable := c.addable[:0]
	for i := 0; i < len(c.members); i++ {
		for j := i + 1; j < len(c.members); j++ {
			if !c.g.HasEdge(c.members[i], c.members[j]) {
				addable = append(addable, graph.Edge{U: c.members[i], V: c.members[j]})
			}
		}
	}
	c.removable, c.addable = removable, addable
	if len(removable) > 30 || len(addable) > 30 {
		// Guard against accidental astronomically large searches; the
		// exact checker is documented for small instances only.
		panic("eq: coalition move space too large for exact k-BSE check")
	}
	for rMask := 0; rMask < 1<<len(removable); rMask++ {
		for aMask := 0; aMask < 1<<len(addable); aMask++ {
			if rMask == 0 && aMask == 0 {
				continue
			}
			for i, e := range removable {
				if rMask&(1<<i) != 0 {
					c.g.RemoveEdge(e.U, e.V)
				}
			}
			for i, e := range addable {
				if aMask&(1<<i) != 0 {
					c.g.AddEdge(e.U, e.V)
				}
			}
			imp := true
			for _, u := range c.members {
				if !c.improves(u) {
					imp = false
					break
				}
			}
			for i, e := range addable {
				if aMask&(1<<i) != 0 {
					c.g.RemoveEdge(e.U, e.V)
				}
			}
			for i, e := range removable {
				if rMask&(1<<i) != 0 {
					c.g.AddEdge(e.U, e.V)
				}
			}
			if imp {
				return move.Coalition{
					Members:     append([]int(nil), c.members...),
					RemoveEdges: edgeSubset(removable, rMask),
					AddEdges:    edgeSubset(addable, aMask),
				}, true
			}
		}
	}
	return move.Coalition{}, false
}

func edgeSubset(s []graph.Edge, mask int) []graph.Edge {
	if mask == 0 {
		return nil
	}
	out := make([]graph.Edge, 0, len(s))
	for i, e := range s {
		if mask&(1<<i) != 0 {
			out = append(out, e)
		}
	}
	return out
}
