package eq

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// CheckKBSE reports whether g is a Bilateral k-Strong Equilibrium: no
// coalition Γ of size at most k has a move — deleting edges that touch Γ
// and adding edges inside Γ — from which every member of Γ strictly
// benefits. CheckKBSE(gm, g, g.N()) is the full BSE check.
//
// The search is exact: it enumerates every coalition, every removable edge
// subset and every addable edge subset, with early-exit cost evaluation.
// Complexity is exponential; it is intended for n ≤ 6 at k = n and n ≤ ~12
// for k ≤ 3.
func CheckKBSE(gm game.Game, g *graph.Graph, k int) Result {
	var c checker
	c.reset(gm, g)
	return c.checkKBSE(k)
}

func (c *checker) checkKBSE(k int) Result {
	if k < 1 {
		return stable()
	}
	if k > c.g.N() {
		k = c.g.N()
	}
	members := make([]int, 0, k)
	if w, ok := searchCoalitions(c, 0, members, k); ok {
		return unstable(w)
	}
	return stable()
}

// searchCoalitions enumerates coalitions Γ ⊆ V with |Γ| ≤ maxK in
// lexicographic order (members strictly increasing, starting at from).
func searchCoalitions(c *checker, from int, members []int, maxK int) (move.Coalition, bool) {
	if len(members) > 0 {
		if w, ok := searchCoalitionMoves(c, members); ok {
			return w, true
		}
	}
	if len(members) == maxK {
		return move.Coalition{}, false
	}
	for v := from; v < c.g.N(); v++ {
		if w, ok := searchCoalitions(c, v+1, append(members, v), maxK); ok {
			return w, true
		}
	}
	return move.Coalition{}, false
}

// searchCoalitionMoves enumerates every (removals, additions) pair legal for
// the coalition and tests whether all members strictly improve.
func searchCoalitionMoves(c *checker, members []int) (move.Coalition, bool) {
	inCoalition := make(map[int]bool, len(members))
	for _, u := range members {
		inCoalition[u] = true
	}
	// Removable: existing edges touching the coalition.
	var removable []graph.Edge
	for _, e := range c.g.Edges() {
		if inCoalition[e.U] || inCoalition[e.V] {
			removable = append(removable, e)
		}
	}
	// Addable: absent edges inside the coalition.
	var addable []graph.Edge
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if !c.g.HasEdge(members[i], members[j]) {
				addable = append(addable, graph.Edge{U: members[i], V: members[j]})
			}
		}
	}
	if len(removable) > 30 || len(addable) > 30 {
		// Guard against accidental astronomically large searches; the
		// exact checker is documented for small instances only.
		panic("eq: coalition move space too large for exact k-BSE check")
	}
	actors := append([]int(nil), members...)
	for rMask := 0; rMask < 1<<len(removable); rMask++ {
		removals := edgeSubset(removable, rMask)
		for aMask := 0; aMask < 1<<len(addable); aMask++ {
			if rMask == 0 && aMask == 0 {
				continue
			}
			m := move.Coalition{
				Members:     actors,
				RemoveEdges: removals,
				AddEdges:    edgeSubset(addable, aMask),
			}
			if c.tryMove(m) {
				return m, true
			}
		}
	}
	return move.Coalition{}, false
}

func edgeSubset(s []graph.Edge, mask int) []graph.Edge {
	if mask == 0 {
		return nil
	}
	out := make([]graph.Edge, 0, len(s))
	for i, e := range s {
		if mask&(1<<i) != 0 {
			out = append(out, e)
		}
	}
	return out
}
