package eq

import (
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// allocGraph returns the n=8 gadget the allocation-regression tests run
// on: the cycle C8, whose scans explore the full move space of every
// concept.
func allocGraph() *graph.Graph {
	return graph.MustFromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 0},
	})
}

// TestEvaluatorZeroAllocsPerCheck is the allocation-regression gate of the
// bitset kernel: after warmup, a bound Evaluator must perform stability
// checks at sweep sizes (n=8 here) without a single heap allocation. Only
// the cold unstable path may allocate — it boxes the witness move — so the
// pinned checks run on (concept, α) cells where the state is stable and
// the scan therefore explores every candidate move.
func TestEvaluatorZeroAllocsPerCheck(t *testing.T) {
	g := allocGraph()
	ev := NewEvaluator()
	// C8 at α=5: stable for every concept through 2-BSE (Lemma 2.4
	// territory: cycles are stable at high α). Verify the premise first so
	// the test fails loudly if the gadget drifts.
	gm, err := game.NewGame(8, game.A(5))
	if err != nil {
		t.Fatal(err)
	}
	concepts := []Concept{RE, BAE, PS, BSwE, BGE, BNE, TwoBSE}
	for _, c := range concepts {
		if res := ev.Check(gm, g, c); !res.Stable {
			t.Fatalf("premise broken: C8 at α=5 unstable for %s (witness %v)", c, res.Witness)
		}
	}
	// Warmup happened above (buffers grown to n=8); pin zero allocations
	// per full concept scan, including the per-task Bind.
	allocs := testing.AllocsPerRun(10, func() {
		ev.Bind(gm, g)
		for _, c := range concepts {
			if !ev.CheckBound(c).Stable {
				t.Fatal("unexpected instability")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("evaluator allocates %v times per %d-concept check at n=8, want 0", allocs, len(concepts))
	}
}

// TestEvaluatorRhoZeroAllocs pins the allocation-free social-cost path the
// PoA reductions use, and its bit-identity with Game.Rho.
func TestEvaluatorRhoZeroAllocs(t *testing.T) {
	g := allocGraph()
	ev := NewEvaluator()
	gm, err := game.NewGame(8, game.AFrac(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ev.Rho(gm, g), gm.Rho(g); got != want {
		t.Fatalf("Evaluator.Rho = %v, Game.Rho = %v", got, want)
	}
	ev.Rho(gm, g) // warm the scratch
	if allocs := testing.AllocsPerRun(10, func() {
		ev.Rho(gm, g)
	}); allocs != 0 {
		t.Errorf("Evaluator.Rho allocates %v times per call, want 0", allocs)
	}
}

// TestEvaluatorMatchesCheckAllConcepts is the kernel differential at the
// checker level: for every connected graph up to n=5 across a mixed α
// grid, the scratch-buffer Evaluator (bitset BFS, in-place scans) and the
// package-level Check must agree on stability AND on the witness move —
// the scans were rewritten move-for-move, so even the violating witness is
// pinned.
func TestEvaluatorMatchesCheckAllConcepts(t *testing.T) {
	alphas := []game.Alpha{game.AFrac(1, 2), game.A(1), game.A(3)}
	ev := NewEvaluator()
	for n := 2; n <= 5; n++ {
		for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			for _, alpha := range alphas {
				gm, err := game.NewGame(n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range Concepts() {
					got := ev.Check(gm, g.Clone(), c)
					want := Check(gm, g, c)
					if got.Stable != want.Stable {
						t.Errorf("n=%d α=%s %s on %s: evaluator stable=%v, check stable=%v",
							n, alpha, c, g, got.Stable, want.Stable)
					}
					gotW, wantW := "", ""
					if got.Witness != nil {
						gotW = got.Witness.String()
					}
					if want.Witness != nil {
						wantW = want.Witness.String()
					}
					if gotW != wantW {
						t.Errorf("n=%d α=%s %s on %s: witness %q != %q", n, alpha, c, g, gotW, wantW)
					}
				}
			}
		}
	}
}
