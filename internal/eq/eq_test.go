package eq

import (
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

func mustGame(t *testing.T, n int, alpha game.Alpha) game.Game {
	t.Helper()
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return gm
}

// The star is an equilibrium for every considered solution concept when
// α >= 1 (footnote 6 of the paper).
func TestStarStableForAllConcepts(t *testing.T) {
	for _, alpha := range []game.Alpha{game.AFrac(3, 2), game.A(2), game.A(10)} {
		for n := 3; n <= 6; n++ {
			gm := mustGame(t, n, alpha)
			g := game.Star(n)
			for _, c := range Concepts() {
				if r := Check(gm, g, c); !r.Stable {
					t.Fatalf("star n=%d α=%s unstable for %s: %v", n, alpha, c, r.Witness)
				}
			}
		}
	}
}

// For α < 1 the clique is the only BSE (Proposition 3.16); in particular it
// is stable for every concept.
func TestCliqueStableBelowOne(t *testing.T) {
	for n := 3; n <= 5; n++ {
		gm := mustGame(t, n, game.AFrac(1, 2))
		g := game.Clique(n)
		for _, c := range Concepts() {
			if r := Check(gm, g, c); !r.Stable {
				t.Fatalf("clique n=%d unstable for %s: %v", n, c, r.Witness)
			}
		}
	}
}

// For α < 1 no other connected graph on n <= 5 nodes is in BSE
// (Proposition 3.16: the clique is the only one).
func TestCliqueOnlyBSEBelowOne(t *testing.T) {
	n := 4
	gm := mustGame(t, n, game.AFrac(1, 2))
	stableCount := 0
	graph.Enumerate(n, graph.EnumOptions{ConnectedOnly: true, MaxEdges: -1}, func(g *graph.Graph) {
		if CheckKBSE(gm, g, n).Stable {
			stableCount++
			if g.M() != n*(n-1)/2 {
				t.Fatalf("non-clique BSE at α=1/2: %s", g)
			}
		}
	})
	if stableCount != 1 {
		t.Fatalf("found %d labeled BSE graphs at α=1/2, want 1 (the clique)", stableCount)
	}
}

// For α = 1 exactly the diameter <= 2 graphs are in BSE (Prop 3.16).
func TestDiameterTwoBSEAtOne(t *testing.T) {
	n := 4
	gm := mustGame(t, n, game.A(1))
	graph.Enumerate(n, graph.EnumOptions{ConnectedOnly: true, MaxEdges: -1}, func(g *graph.Graph) {
		got := CheckKBSE(gm, g, n).Stable
		want := g.Diameter() <= 2
		if got != want {
			t.Fatalf("α=1 BSE=%v but diameter=%d for %s", got, g.Diameter(), g)
		}
	})
}

func TestCycleREWitness(t *testing.T) {
	// C4 at α=3: removing an edge saves 3 and costs only +2 distance.
	gm := mustGame(t, 4, game.A(3))
	r := CheckRE(gm, construct.Cycle(4))
	if r.Stable {
		t.Fatal("C4 at α=3 reported RE-stable")
	}
	if _, ok := r.Witness.(move.Remove); !ok {
		t.Fatalf("witness %v is not a removal", r.Witness)
	}
}

func TestPathBAEWitness(t *testing.T) {
	// P4 at α=1/2: endpoints profit from closing the cycle.
	gm := mustGame(t, 4, game.AFrac(1, 2))
	r := CheckBAE(gm, construct.Path(4))
	if r.Stable {
		t.Fatal("P4 at α=1/2 reported BAE-stable")
	}
	if _, ok := r.Witness.(move.Add); !ok {
		t.Fatalf("witness %v is not an addition", r.Witness)
	}
}

// Trees are always in RE: removing any edge disconnects the remover from
// part of the graph, which the lexicographic cost never prefers.
func TestTreesAlwaysRE(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.RandomTree(n, rng)
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(20)), int64(1+rng.Intn(3))))
		if r := CheckRE(gm, g); !r.Stable {
			t.Fatalf("tree unstable for RE: %s witness %v", g, r.Witness)
		}
	}
}

// Proposition A.2's engine: single-removal stability coincides with
// multi-removal stability.
func TestREEquivalentToMultiRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := graph.RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(12)), int64(1+rng.Intn(2))))
		single := CheckRE(gm, g).Stable
		multi := CheckMultiRemove(gm, g).Stable
		if single != multi {
			t.Fatalf("RE=%v but multi-remove=%v for %s at α=%s", single, multi, g, gm.Alpha)
		}
	}
}

// The implication lattice of Figure 1a, tested as set inclusions of stable
// states on random graphs: BSE ⊆ 3-BSE ⊆ 2-BSE ⊆ BGE ⊆ PS ⊆ {RE, BAE},
// BGE ⊆ BSwE, BNE ⊆ BGE ∩ BAE, 1-BSE = RE.
func TestImplicationLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3) // n in 3..5 keeps the BSE check fast
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := graph.RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(16)), int64(1+rng.Intn(3))))

		st := make(map[Concept]bool)
		for _, c := range Concepts() {
			st[c] = Check(gm, g, c).Stable
		}
		implications := []struct {
			from, to Concept
		}{
			{BSE, ThreeBSE}, {ThreeBSE, TwoBSE}, {TwoBSE, BGE},
			{BGE, PS}, {BGE, BSwE}, {PS, RE}, {PS, BAE},
			{BNE, BGE}, {BNE, BAE}, {BNE, RE},
		}
		for _, imp := range implications {
			if st[imp.from] && !st[imp.to] {
				t.Fatalf("%s-stable but not %s-stable: %s at α=%s", imp.from, imp.to, g, gm.Alpha)
			}
		}
		// Definitional identities.
		if st[PS] != (st[RE] && st[BAE]) {
			t.Fatalf("PS != RE ∧ BAE on %s", g)
		}
		if st[BGE] != (st[PS] && st[BSwE]) {
			t.Fatalf("BGE != PS ∧ BSwE on %s", g)
		}
		// 1-BSE coincides with RE (Prop A.2).
		if CheckKBSE(gm, g, 1).Stable != st[RE] {
			t.Fatalf("1-BSE != RE on %s", g)
		}
	}
}

// Every unstable verdict must come with a genuinely improving witness.
func TestWitnessesAreImproving(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := graph.RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(10)), 2))
		for _, c := range Concepts() {
			r := Check(gm, g, c)
			if r.Stable {
				continue
			}
			if r.Witness == nil {
				t.Fatalf("unstable %s verdict without witness on %s", c, g)
			}
			if !Improving(gm, g, r.Witness) {
				t.Fatalf("%s witness %v is not improving on %s at α=%s", c, r.Witness, g, gm.Alpha)
			}
		}
	}
}

// Proposition 3.7: on trees, BGE and 2-BSE coincide.
func TestTreeBGEEquals2BSE(t *testing.T) {
	alphas := []game.Alpha{game.AFrac(1, 2), game.AFrac(3, 2), game.A(3), game.A(8)}
	for n := 3; n <= 7; n++ {
		graph.FreeTrees(n, func(g *graph.Graph) {
			for _, alpha := range alphas {
				gm := mustGame(t, n, alpha)
				bge := CheckBGE(gm, g).Stable
				twoBSE := CheckKBSE(gm, g, 2).Stable
				if bge != twoBSE {
					t.Fatalf("tree %s at α=%s: BGE=%v, 2-BSE=%v", g, alpha, bge, twoBSE)
				}
			}
		})
	}
}

// Lemma 2.4 cross-validation: the analytic BSE window for cycles agrees
// with the exact BSE checker at the sizes where the exact check runs.
func TestCycleBSEWindowMatchesExact(t *testing.T) {
	cases := []struct {
		n     int
		alpha game.Alpha
		want  bool
	}{
		{n: 4, alpha: game.AFrac(3, 2), want: true},  // window (1, 2)
		{n: 4, alpha: game.AFrac(5, 2), want: false}, // above window
		{n: 4, alpha: game.AFrac(1, 2), want: false}, // below window
		{n: 5, alpha: game.A(4), want: true},         // window (2, 6)
		{n: 5, alpha: game.A(7), want: false},        // above
		{n: 6, alpha: game.A(5), want: true},         // window (4, 6)
		{n: 6, alpha: game.A(3), want: false},        // below
	}
	for _, tt := range cases {
		gm := mustGame(t, tt.n, tt.alpha)
		g := construct.Cycle(tt.n)
		window := CycleBSEWindow(tt.n, tt.alpha)
		if window != tt.want {
			t.Fatalf("CycleBSEWindow(%d, %s) = %v, want %v", tt.n, tt.alpha, window, tt.want)
		}
		exact := CheckKBSE(gm, g, tt.n).Stable
		if window && !exact {
			t.Fatalf("C%d at α=%s: window certifies BSE but exact check finds %v",
				tt.n, tt.alpha, CheckKBSE(gm, g, tt.n).Witness)
		}
	}
}

// Proposition 3.16: a path of 4 nodes is in BSE for α = 100.
func TestPath4BSEAtHighAlpha(t *testing.T) {
	gm := mustGame(t, 4, game.A(100))
	if r := CheckKBSE(gm, construct.Path(4), 4); !r.Stable {
		t.Fatalf("P4 at α=100 not in BSE: %v", r.Witness)
	}
}

func TestConceptStrings(t *testing.T) {
	want := map[Concept]string{
		RE: "RE", BAE: "BAE", PS: "PS", BSwE: "BSwE", BGE: "BGE",
		BNE: "BNE", TwoBSE: "2-BSE", ThreeBSE: "3-BSE", BSE: "BSE",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("String(%d) = %q, want %q", int(c), c.String(), s)
		}
	}
	if len(Concepts()) != len(want) {
		t.Fatal("Concepts() length mismatch")
	}
}
