package eq

import (
	"math/big"

	"repro/internal/game"
)

// Analytic stability conditions proven in the paper for the structured
// lower-bound families. They let the experiments certify stability at
// scales far beyond the exact checkers; the overlap region (small
// instances) is cross-validated against the exact checkers in tests.

// alphaRat returns α as an exact big rational.
func alphaRat(a game.Alpha) *big.Rat {
	return new(big.Rat).SetFrac64(a.Num(), a.Den())
}

// CycleBSEWindow reports whether the cycle C_n is certified to be in BSE at
// edge price alpha by Lemma 2.4:
//
//	n even: n²/4 − (n−1) < α < n(n−2)/4
//	n odd:  (n+1)(n−1)/4 − (n−1) < α < (n+1)(n−1)/4
func CycleBSEWindow(n int, alpha game.Alpha) bool {
	if n < 3 {
		return false
	}
	a := alphaRat(alpha)
	var lo, hi *big.Rat
	nn := int64(n)
	if n%2 == 0 {
		lo = new(big.Rat).SetFrac64(nn*nn-4*(nn-1), 4)
		hi = new(big.Rat).SetFrac64(nn*(nn-2), 4)
	} else {
		lo = new(big.Rat).SetFrac64((nn+1)*(nn-1)-4*(nn-1), 4)
		hi = new(big.Rat).SetFrac64((nn+1)*(nn-1), 4)
	}
	return a.Cmp(lo) > 0 && a.Cmp(hi) < 0
}

// StretchedTreeBAE reports whether Lemma D.4 certifies a k-stretched binary
// tree with n nodes to be in BAE: α ≥ 5kn.
func StretchedTreeBAE(n, k int, alpha game.Alpha) bool {
	return alphaRat(alpha).Cmp(new(big.Rat).SetInt64(5*int64(k)*int64(n))) >= 0
}

// StretchedTreeBGE reports whether Proposition 3.8 certifies a k-stretched
// binary tree with n nodes to be in BGE: α ≥ 7kn.
func StretchedTreeBGE(n, k int, alpha game.Alpha) bool {
	return alphaRat(alpha).Cmp(new(big.Rat).SetInt64(7*int64(k)*int64(n))) >= 0
}

// TreeStarBNE reports whether Lemma 3.11 certifies a stretched tree star to
// be in BNE. n is the node count of the star, subtreeSize is |T| (one copy
// subtree), depth is depth(G), k the stretch factor:
//
//	(k = 1 or α ≥ 6kn)  and  3n·depth/α + 1 ≤ α / (3|T|·depth).
func TreeStarBNE(n, subtreeSize, depth, k int, alpha game.Alpha) bool {
	a := alphaRat(alpha)
	if k != 1 {
		if a.Cmp(new(big.Rat).SetInt64(6*int64(k)*int64(n))) < 0 {
			return false
		}
	}
	// lhs = 3n·depth/α + 1; rhs = α/(3|T|·depth).
	lhs := new(big.Rat).SetInt64(3 * int64(n) * int64(depth))
	lhs.Quo(lhs, a)
	lhs.Add(lhs, new(big.Rat).SetInt64(1))
	rhs := new(big.Rat).Set(a)
	rhs.Quo(rhs, new(big.Rat).SetInt64(3*int64(subtreeSize)*int64(depth)))
	return lhs.Cmp(rhs) <= 0
}

// StarIsBSE reports Proposition 3.16's star case: the star is in BSE for
// α > 1.
func StarIsBSE(alpha game.Alpha) bool {
	return alpha.Cmp(1, 1) > 0
}
