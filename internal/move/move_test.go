package move

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

func TestRemoveApplyUndo(t *testing.T) {
	g := path(3)
	orig := g.Clone()
	m := Remove{U: 0, V: 1}
	undo, err := m.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
	undo()
	if !g.Equal(orig) {
		t.Fatal("undo did not restore graph")
	}
	if _, err := (Remove{U: 0, V: 2}).Apply(g); err == nil {
		t.Fatal("removing absent edge succeeded")
	}
	if a := m.Actors(); len(a) != 1 || a[0] != 0 {
		t.Fatalf("Actors = %v", a)
	}
}

func TestAddApplyUndo(t *testing.T) {
	g := path(3)
	orig := g.Clone()
	m := Add{U: 0, V: 2}
	undo, err := m.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("edge not added")
	}
	undo()
	if !g.Equal(orig) {
		t.Fatal("undo did not restore graph")
	}
	if _, err := (Add{U: 0, V: 1}).Apply(g); err == nil {
		t.Fatal("adding present edge succeeded")
	}
	if _, err := (Add{U: 1, V: 1}).Apply(g); err == nil {
		t.Fatal("adding loop succeeded")
	}
	if a := m.Actors(); len(a) != 2 {
		t.Fatalf("Actors = %v", a)
	}
}

func TestSwapApplyUndo(t *testing.T) {
	g := path(4)
	orig := g.Clone()
	m := Swap{U: 0, Old: 1, New: 3}
	undo, err := m.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Fatal("swap not applied")
	}
	undo()
	if !g.Equal(orig) {
		t.Fatal("undo did not restore graph")
	}
	for _, bad := range []Swap{
		{U: 0, Old: 2, New: 3}, // old edge absent
		{U: 0, Old: 1, New: 1}, // old == new
		{U: 1, Old: 0, New: 2}, // new edge present
		{U: 0, Old: 1, New: 0}, // new == u
	} {
		if _, err := bad.Apply(g); err == nil {
			t.Fatalf("invalid swap %v succeeded", bad)
		}
	}
	if a := m.Actors(); len(a) != 2 || a[0] != 0 || a[1] != 3 {
		t.Fatalf("Actors = %v", a)
	}
}

func TestNeighborhoodApplyUndo(t *testing.T) {
	g := path(5)
	orig := g.Clone()
	m := Neighborhood{U: 2, RemoveTo: []int{1, 3}, AddTo: []int{0, 4}}
	undo, err := m.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(2, 1) || g.HasEdge(2, 3) || !g.HasEdge(2, 0) || !g.HasEdge(2, 4) {
		t.Fatal("neighborhood change not applied")
	}
	undo()
	if !g.Equal(orig) {
		t.Fatal("undo did not restore graph")
	}
	for _, bad := range []Neighborhood{
		{U: 2},                     // empty
		{U: 2, RemoveTo: []int{0}}, // absent edge
		{U: 2, AddTo: []int{1}},    // present edge
		{U: 2, AddTo: []int{2}},    // self edge
	} {
		if _, err := bad.Apply(g); err == nil {
			t.Fatalf("invalid neighborhood %v succeeded", bad)
		}
	}
	actors := m.Actors()
	if len(actors) != 3 || actors[0] != 2 {
		t.Fatalf("Actors = %v", actors)
	}
}

func TestCoalitionApplyUndoAndValidate(t *testing.T) {
	g := path(5)
	orig := g.Clone()
	m := Coalition{
		Members:     []int{0, 2, 4},
		RemoveEdges: []graph.Edge{{U: 1, V: 2}},
		AddEdges:    []graph.Edge{{U: 0, V: 2}, {U: 2, V: 4}},
	}
	undo, err := m.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) || !g.HasEdge(0, 2) || !g.HasEdge(2, 4) {
		t.Fatal("coalition move not applied")
	}
	undo()
	if !g.Equal(orig) {
		t.Fatal("undo did not restore graph")
	}

	bad := []Coalition{
		{Members: []int{0}},
		{Members: []int{0}, RemoveEdges: []graph.Edge{{U: 2, V: 3}}},    // removal not touching coalition
		{Members: []int{0, 4}, AddEdges: []graph.Edge{{U: 0, V: 2}}},    // addition leaves coalition
		{Members: []int{0, 2}, AddEdges: []graph.Edge{{U: 1, V: 2}}},    // edge already present
		{Members: []int{0, 2}, RemoveEdges: []graph.Edge{{U: 0, V: 3}}}, // edge absent
	}
	for _, b := range bad {
		if err := b.Validate(g); err == nil {
			t.Fatalf("invalid coalition %v validated", b)
		}
	}
}

func TestMoveStrings(t *testing.T) {
	tests := []struct {
		m    Move
		want string
	}{
		{m: Remove{U: 1, V: 2}, want: "remove"},
		{m: Add{U: 1, V: 2}, want: "add"},
		{m: Swap{U: 1, Old: 2, New: 3}, want: "swap"},
		{m: Neighborhood{U: 1, AddTo: []int{2}}, want: "neighborhood"},
		{m: Coalition{Members: []int{1, 2}, AddEdges: []graph.Edge{{U: 1, V: 2}}}, want: "coalition"},
	}
	for _, tt := range tests {
		if s := tt.m.String(); !strings.Contains(s, tt.want) {
			t.Fatalf("String() = %q, want substring %q", s, tt.want)
		}
	}
}

// TestApplyUndoProperty: random valid moves on random graphs always restore
// the original graph after undo.
func TestApplyUndoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(8)
		g, err := graph.RandomConnectedGraph(n, n-1+rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		orig := g.Clone()
		var m Move
		switch rng.Intn(3) {
		case 0:
			edges := g.Edges()
			e := edges[rng.Intn(len(edges))]
			m = Remove{U: e.U, V: e.V}
		case 1:
			u, v := rng.Intn(n), rng.Intn(n)
			m = Add{U: u, V: v}
		default:
			u := rng.Intn(n)
			var removeTo, addTo []int
			for _, w := range g.Neighbors(u) {
				if rng.Intn(2) == 0 {
					removeTo = append(removeTo, w)
				}
			}
			for w := 0; w < n; w++ {
				if w != u && !g.HasEdge(u, w) && rng.Intn(3) == 0 {
					addTo = append(addTo, w)
				}
			}
			m = Neighborhood{U: u, RemoveTo: removeTo, AddTo: addTo}
		}
		undo, err := m.Apply(g)
		if err != nil {
			if !g.Equal(orig) {
				t.Fatalf("failed Apply mutated graph: %v", m)
			}
			continue
		}
		undo()
		if !g.Equal(orig) {
			t.Fatalf("undo did not restore graph after %v", m)
		}
	}
}
