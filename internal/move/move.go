// Package move defines the strategy-change vocabulary of the BNCG solution
// concepts: single-edge removals, bilateral additions, swaps, neighborhood
// changes and coalitional moves. Moves apply in place and return an undo
// closure so equilibrium checkers can explore millions of candidate moves
// without copying graphs.
package move

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Move is a reversible strategy change on a graph state.
type Move interface {
	// Apply mutates g and returns an undo closure, or an error if the move
	// does not fit g (missing edge, duplicate addition, ...). On error g is
	// unchanged.
	Apply(g *graph.Graph) (undo func(), err error)
	// Actors returns the agents whose consent the move requires, i.e. the
	// agents that must strictly benefit under the corresponding solution
	// concept.
	Actors() []int
	// String renders the move for witnesses and logs.
	String() string
}

// Remove is agent U unilaterally removing the edge U-V (the RE move).
type Remove struct {
	U, V int
}

// Apply implements Move.
func (m Remove) Apply(g *graph.Graph) (func(), error) {
	if !g.RemoveEdge(m.U, m.V) {
		return nil, fmt.Errorf("move: remove %d-%d: edge absent", m.U, m.V)
	}
	return func() { g.AddEdge(m.U, m.V) }, nil
}

// Actors implements Move: only the remover must benefit.
func (m Remove) Actors() []int { return []int{m.U} }

func (m Remove) String() string { return fmt.Sprintf("remove(%d, %d-%d)", m.U, m.U, m.V) }

// Add is the bilateral addition of edge U-V (the BAE move); both endpoints
// must benefit.
type Add struct {
	U, V int
}

// Apply implements Move.
func (m Add) Apply(g *graph.Graph) (func(), error) {
	if !g.AddEdge(m.U, m.V) {
		return nil, fmt.Errorf("move: add %d-%d: invalid or present", m.U, m.V)
	}
	return func() { g.RemoveEdge(m.U, m.V) }, nil
}

// Actors implements Move.
func (m Add) Actors() []int { return []int{m.U, m.V} }

func (m Add) String() string { return fmt.Sprintf("add(%d-%d)", m.U, m.V) }

// Swap replaces edge U-Old with edge U-New (the BSwE move); U and New must
// benefit. Old is not consulted.
type Swap struct {
	U, Old, New int
}

// Apply implements Move.
func (m Swap) Apply(g *graph.Graph) (func(), error) {
	if m.Old == m.New || m.U == m.New {
		return nil, fmt.Errorf("move: swap with coinciding nodes %v", m)
	}
	if !g.HasEdge(m.U, m.Old) {
		return nil, fmt.Errorf("move: swap: edge %d-%d absent", m.U, m.Old)
	}
	if g.HasEdge(m.U, m.New) {
		return nil, fmt.Errorf("move: swap: edge %d-%d already present", m.U, m.New)
	}
	g.RemoveEdge(m.U, m.Old)
	g.AddEdge(m.U, m.New)
	return func() {
		g.RemoveEdge(m.U, m.New)
		g.AddEdge(m.U, m.Old)
	}, nil
}

// Actors implements Move.
func (m Swap) Actors() []int { return []int{m.U, m.New} }

func (m Swap) String() string {
	return fmt.Sprintf("swap(%d: %d-%d -> %d-%d)", m.U, m.U, m.Old, m.U, m.New)
}

// Neighborhood is the BNE move around U: remove the edges U-r for r in
// RemoveTo and add the edges U-a for a in AddTo. U and every member of
// AddTo must strictly benefit.
type Neighborhood struct {
	U        int
	RemoveTo []int
	AddTo    []int
}

// Apply implements Move.
func (m Neighborhood) Apply(g *graph.Graph) (func(), error) {
	if len(m.RemoveTo) == 0 && len(m.AddTo) == 0 {
		return nil, fmt.Errorf("move: empty neighborhood change around %d", m.U)
	}
	for _, r := range m.RemoveTo {
		if !g.HasEdge(m.U, r) {
			return nil, fmt.Errorf("move: neighborhood: edge %d-%d absent", m.U, r)
		}
	}
	for _, a := range m.AddTo {
		if a == m.U || g.HasEdge(m.U, a) {
			return nil, fmt.Errorf("move: neighborhood: cannot add edge %d-%d", m.U, a)
		}
	}
	for _, r := range m.RemoveTo {
		g.RemoveEdge(m.U, r)
	}
	for _, a := range m.AddTo {
		g.AddEdge(m.U, a)
	}
	return func() {
		for _, a := range m.AddTo {
			g.RemoveEdge(m.U, a)
		}
		for _, r := range m.RemoveTo {
			g.AddEdge(m.U, r)
		}
	}, nil
}

// Actors implements Move.
func (m Neighborhood) Actors() []int {
	actors := make([]int, 0, 1+len(m.AddTo))
	actors = append(actors, m.U)
	actors = append(actors, m.AddTo...)
	return actors
}

func (m Neighborhood) String() string {
	return fmt.Sprintf("neighborhood(%d: -%v +%v)", m.U, m.RemoveTo, m.AddTo)
}

// Coalition is the k-BSE move: the Members jointly delete RemoveEdges (each
// of which must touch the coalition) and create AddEdges (both endpoints in
// the coalition). Every member must strictly benefit.
type Coalition struct {
	Members     []int
	RemoveEdges []graph.Edge
	AddEdges    []graph.Edge
}

// Validate checks the structural side conditions of the k-BSE definition
// against g without mutating it.
func (m Coalition) Validate(g *graph.Graph) error {
	if len(m.RemoveEdges) == 0 && len(m.AddEdges) == 0 {
		return fmt.Errorf("move: empty coalition move")
	}
	inCoalition := make(map[int]bool, len(m.Members))
	for _, u := range m.Members {
		inCoalition[u] = true
	}
	for _, e := range m.RemoveEdges {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("move: coalition: edge %v absent", e)
		}
		if !inCoalition[e.U] && !inCoalition[e.V] {
			return fmt.Errorf("move: coalition: removed edge %v does not touch coalition", e)
		}
	}
	for _, e := range m.AddEdges {
		if g.HasEdge(e.U, e.V) || e.U == e.V {
			return fmt.Errorf("move: coalition: cannot add edge %v", e)
		}
		if !inCoalition[e.U] || !inCoalition[e.V] {
			return fmt.Errorf("move: coalition: added edge %v leaves coalition", e)
		}
	}
	return nil
}

// Apply implements Move.
func (m Coalition) Apply(g *graph.Graph) (func(), error) {
	if err := m.Validate(g); err != nil {
		return nil, err
	}
	for _, e := range m.RemoveEdges {
		g.RemoveEdge(e.U, e.V)
	}
	for _, e := range m.AddEdges {
		g.AddEdge(e.U, e.V)
	}
	return func() {
		for _, e := range m.AddEdges {
			g.RemoveEdge(e.U, e.V)
		}
		for _, e := range m.RemoveEdges {
			g.AddEdge(e.U, e.V)
		}
	}, nil
}

// Actors implements Move.
func (m Coalition) Actors() []int { return m.Members }

func (m Coalition) String() string {
	members := append([]int(nil), m.Members...)
	sort.Ints(members)
	parts := make([]string, 0, len(m.RemoveEdges)+len(m.AddEdges))
	for _, e := range m.RemoveEdges {
		parts = append(parts, "-"+e.String())
	}
	for _, e := range m.AddEdges {
		parts = append(parts, "+"+e.String())
	}
	return fmt.Sprintf("coalition(%v: %s)", members, strings.Join(parts, " "))
}
