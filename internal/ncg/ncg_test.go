package ncg

import (
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

func mustGame(t *testing.T, n int, alpha game.Alpha) game.Game {
	t.Helper()
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return gm
}

func starOwnership(t *testing.T, g *graph.Graph, centerOwns bool) *game.Ownership {
	t.Helper()
	owners := make(map[graph.Edge]int, g.M())
	for _, e := range g.Edges() {
		owner := e.U // center is node 0 in game.Star
		if !centerOwns {
			owner = e.V
		}
		owners[e] = owner
	}
	o, err := game.NewOwnership(g, owners)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestStarIsNEBothOwnerships(t *testing.T) {
	for _, centerOwns := range []bool{true, false} {
		g := game.Star(5)
		gm := mustGame(t, 5, game.A(2))
		o := starOwnership(t, g, centerOwns)
		if r := eq.CheckUnilateralNE(gm, g, o); !r.Stable {
			t.Fatalf("star (centerOwns=%v) not NE: %v", centerOwns, r.Witness)
		}
		if r := CheckGE(gm, g, o); !r.Stable {
			t.Fatalf("star (centerOwns=%v) not GE: %v", centerOwns, r.Witness)
		}
	}
}

func TestBestResponseOnStar(t *testing.T) {
	// A leaf of a star already plays a best response: buying nothing
	// (when the center owns the edges) keeps her connected for free.
	g := game.Star(5)
	gm := mustGame(t, 5, game.A(2))
	o := starOwnership(t, g, true)
	buy, cost := BestResponse(gm, g, o, 1)
	if len(buy) != 0 {
		t.Fatalf("leaf best response buys %v, want nothing", buy)
	}
	if cost.Buy != 0 || cost.Dist != 1+2*3 {
		t.Fatalf("leaf best-response cost %v", cost)
	}
	// The center's best response keeps the graph connected.
	buyC, costC := BestResponse(gm, g, o, 0)
	if costC.Unreachable != 0 || len(buyC) == 0 {
		t.Fatalf("center best response %v cost %v", buyC, costC)
	}
}

// A state is NE exactly if every agent's best response matches her current
// cost (differential test of CheckUnilateralNE vs BestResponse).
func TestNEAgreesWithBestResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		m := n - 1 + rng.Intn(2)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.RandomConnectedGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(8)), 2))
		game.AllOwnerships(g, func(o *game.Ownership) {
			oc := o.Clone()
			ne := eq.CheckUnilateralNE(gm, g, oc).Stable
			allBest := true
			for u := 0; u < n; u++ {
				current := gm.NCGAgentCost(g, oc, u)
				if _, best := BestResponse(gm, g, oc, u); best.Less(current, gm.Alpha) {
					allBest = false
					break
				}
			}
			if ne != allBest {
				t.Fatalf("NE=%v but best-response agreement=%v on %s", ne, allBest, g)
			}
		})
	}
}

// NE implies GE for the same ownership (GE checks a subset of the strategy
// changes).
func TestNEImpliesGE(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(3)
		m := n - 1 + rng.Intn(3)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.RandomConnectedGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		gm := mustGame(t, n, game.AFrac(int64(1+rng.Intn(8)), 2))
		game.AllOwnerships(g, func(o *game.Ownership) {
			if !eq.CheckUnilateralNE(gm, g, o.Clone()).Stable {
				return
			}
			if r := CheckGE(gm, g, o.Clone()); !r.Stable {
				t.Fatalf("NE but not GE on %s: %v", g, r.Witness)
			}
		})
	}
}

func TestExistsNEOwnership(t *testing.T) {
	gm := mustGame(t, 5, game.A(2))
	if _, ok := ExistsNEOwnership(gm, game.Star(5)); !ok {
		t.Fatal("star admits no NE ownership at α=2")
	}
	// The path P5 at α=1/2 is not NE under any ownership: shortcuts are
	// cheap enough that some agent always buys one.
	gmCheap := mustGame(t, 5, game.AFrac(1, 2))
	if _, ok := ExistsNEOwnership(gmCheap, construct.Path(5)); ok {
		t.Fatal("P5 at α=1/2 should admit no NE ownership")
	}
}

// Fabrikant et al.: trees in NE have PoA at most 5 — verified exhaustively
// at small n.
func TestUnilateralTreePoABelowFive(t *testing.T) {
	for n := 4; n <= 7; n++ {
		for _, alpha := range []game.Alpha{game.A(1), game.A(2), game.A(5), game.A(20)} {
			worst, stable, err := TreePoA(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if stable == 0 {
				t.Fatalf("n=%d α=%s: no NE trees (star must qualify for α>=1)", n, alpha)
			}
			if worst > 5 {
				t.Fatalf("n=%d α=%s: unilateral tree PoA %.3f > 5", n, alpha, worst)
			}
		}
	}
}

func TestSwapWitnessString(t *testing.T) {
	w := swapWitness{owner: 1, old: 2, new_: 3}
	if w.String() == "" || len(w.Actors()) != 1 {
		t.Fatal("swap witness malformed")
	}
	if _, err := w.Apply(graph.New(3)); err == nil {
		t.Fatal("Apply should be unsupported")
	}
}
