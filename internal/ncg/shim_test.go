package ncg

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// This file is the differential harness of the variant-engine shim: the
// reference functions below preserve the historical direct
// implementations of the rerouted entry points, written against the plain
// cost API so they share no code with the engine, and the tests pin that
// the shimmed entry points return byte-identical results — same verdicts,
// same witness moves, in the same scan order — across every small
// connected class, ownership and α.

// referenceAE is the historical CheckUnilateralAE: ordered (buyer,
// target) scan, buyer-only improvement against baseline costs.
func referenceAE(gm game.Game, g *graph.Graph) eq.Result {
	n := g.N()
	base := make([]game.Cost, n)
	for u := 0; u < n; u++ {
		base[u] = gm.AgentCost(g, u)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			after := gm.AgentCost(g, u)
			g.RemoveEdge(u, v)
			if after.Less(base[u], gm.Alpha) {
				return eq.Result{Stable: false, Witness: move.Add{U: u, V: v}}
			}
		}
	}
	return eq.Result{Stable: true}
}

// referenceGE is the historical CheckGE composition: ownership RE, then
// the direct add scan, then the ownership swap scan.
func referenceGE(gm game.Game, g *graph.Graph, o *game.Ownership) eq.Result {
	if r := eq.CheckUnilateralRE(gm, g, o); !r.Stable {
		return r
	}
	if r := referenceAE(gm, g); !r.Stable {
		return r
	}
	return referenceSwap(gm, g, o)
}

// referenceSwap preserves checkUnilateralSwap's historical scan.
func referenceSwap(gm game.Game, g *graph.Graph, o *game.Ownership) eq.Result {
	for _, e := range g.Edges() {
		owner, ok := o.Owner(e.U, e.V)
		if !ok {
			panic(fmt.Sprintf("ncg: edge %v without owner", e))
		}
		old := e.Other(owner)
		before := gm.NCGAgentCost(g, o, owner)
		for w := 0; w < g.N(); w++ {
			if w == owner || w == old || g.HasEdge(owner, w) {
				continue
			}
			g.RemoveEdge(owner, old)
			g.AddEdge(owner, w)
			o.Delete(owner, old)
			o.SetOwner(owner, w, owner)
			after := gm.NCGAgentCost(g, o, owner)
			o.Delete(owner, w)
			o.SetOwner(owner, old, owner)
			g.RemoveEdge(owner, w)
			g.AddEdge(owner, old)
			if after.Less(before, gm.Alpha) {
				return eq.Result{Stable: false, Witness: swapWitness{owner: owner, old: old, new_: w}}
			}
		}
	}
	return eq.Result{Stable: true}
}

var shimAlphas = []game.Alpha{game.AFrac(1, 2), game.A(1), game.AFrac(3, 2), game.A(2), game.A(4)}

// TestCheckGEByteIdenticalToReference runs the full CheckGE differential:
// every connected class up to n=5, every ownership for n ≤ 4 (all 2^m of
// them) and the canonical ownership for n=5, across the α grid.
func TestCheckGEByteIdenticalToReference(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			for _, alpha := range shimAlphas {
				gm, err := game.NewGame(n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				checked := 0
				game.AllOwnerships(g, func(o *game.Ownership) {
					if n == 5 && checked > 0 {
						return // n=5: one ownership per class keeps the run fast
					}
					checked++
					want := referenceGE(gm, g.Clone(), o.Clone())
					got := CheckGE(gm, g.Clone(), o.Clone())
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d α=%s on %s: CheckGE %+v != reference %+v", n, alpha, g, got, want)
					}
				})
			}
		}
	}
}

// TestUnilateralVariantCertifiesGraphChecks pins the promotion: for the
// ownership-free unilateral game, the variant engine's BAE check equals
// the historical add-equilibrium scan, and its parametric certificate
// agrees with that scan at every probed α — the unilateral NCG is now a
// first-class certified game.
func TestUnilateralVariantCertifiesGraphChecks(t *testing.T) {
	variant := UnilateralVariant()
	for n := 2; n <= 5; n++ {
		for g := range graph.All(n, graph.EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			gmV, err := game.NewGame(n, game.A(1))
			if err != nil {
				t.Fatal(err)
			}
			gmV.Variant = variant
			set := eq.Certify(gmV, g.Clone(), eq.BAE)
			for _, alpha := range shimAlphas {
				gm, err := game.NewGame(n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				want := referenceAE(gm, g.Clone())
				gm.Variant = variant
				got := eq.Check(gm, g.Clone(), eq.BAE)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d α=%s on %s: variant BAE %+v != reference AE %+v", n, alpha, g, got, want)
				}
				if set.Contains(alpha) != want.Stable {
					t.Fatalf("n=%d α=%s on %s: certificate %s disagrees with reference AE %v",
						n, alpha, g, set, want.Stable)
				}
			}
		}
	}
}
