// Package ncg implements the unilateral Network Creation Game of
// Fabrikant, Luthra, Maneva, Papadimitriou and Shenker — the baseline the
// paper compares the bilateral game against. A state is a graph plus an
// edge ownership; agents unilaterally choose which edges to buy.
//
// The package provides exhaustive best responses, greedy-equilibrium and
// Nash checks, searches for stabilizing ownerships, and the tree PoA of
// the unilateral game, enabling the paper's motivating comparison: the
// bilateral game with Pairwise Stability is socially worse than the
// unilateral game with NE.
//
// Since the GameVariant redesign the graph-level (ownership-free) checks
// are shims over the variant engine: eq.Check with
// game.Variant{Consent: game.ConsentUnilateral} evaluates — and
// eq.Certify parametrically certifies — the unilateral game with the same
// scans, so sweeps, stores and the serving daemon handle it like any
// other variant (pass `-variant unilateral`). UnilateralVariant returns
// that descriptor. Only the ownership-resolved checks (who pays for an
// existing edge) remain NCG-specific; the differential tests pin that the
// rerouted entry points are byte-identical to the historical direct
// implementations.
package ncg

import (
	"fmt"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

// BestResponse returns an exhaustive best-response strategy (set of bought
// edge targets) for agent u against the fixed strategies of everyone else
// in (g, o), together with its cost. 2^(n-1) candidate strategies; for the
// small instances of the Section 2 comparisons.
func BestResponse(gm game.Game, g *graph.Graph, o *game.Ownership, u int) ([]int, game.Cost) {
	n := g.N()
	// Edges that persist regardless of u's strategy: those owned by others.
	base := graph.New(n)
	for _, e := range g.Edges() {
		if owner, _ := o.Owner(e.U, e.V); owner != u {
			base.AddEdge(e.U, e.V)
		}
	}
	var targets []int
	for v := 0; v < n; v++ {
		if v != u {
			targets = append(targets, v)
		}
	}
	var (
		bestBuy  []int
		bestCost game.Cost
		first    = true
	)
	for mask := 0; mask < 1<<len(targets); mask++ {
		trial := base.Clone()
		var buy []int
		for i, v := range targets {
			if mask&(1<<i) != 0 {
				buy = append(buy, v)
				trial.AddEdge(u, v)
			}
		}
		sum, unreachable := trial.TotalDist(u)
		cost := game.Cost{Unreachable: int64(unreachable), Buy: int64(len(buy)), Dist: sum}
		if first || cost.Less(bestCost, gm.Alpha) {
			first = false
			bestCost = cost
			bestBuy = buy
		}
	}
	return bestBuy, bestCost
}

// ExistsNEOwnership reports whether some edge ownership makes g a pure NE
// of the unilateral NCG, returning a stabilizing ownership if so. It
// enumerates all 2^m ownerships; for small gadget graphs.
func ExistsNEOwnership(gm game.Game, g *graph.Graph) (*game.Ownership, bool) {
	var found *game.Ownership
	game.AllOwnerships(g, func(o *game.Ownership) {
		if found != nil {
			return
		}
		if eq.CheckUnilateralNE(gm, g, o.Clone()).Stable {
			found = o.Clone()
		}
	})
	return found, found != nil
}

// UnilateralVariant returns the variant descriptor of the unilateral NCG
// in equilibrium form: every concept of the certificate engine evaluated
// with initiator-only consent. eq.Check/Certify with this variant is the
// swept, persisted and served form of this package's game.
func UnilateralVariant() game.Variant {
	v, err := game.ParseVariant("unilateral")
	if err != nil {
		panic(err) // unreachable: the canonical descriptor always parses
	}
	return v
}

// CheckGE reports whether (g, o) is a Greedy Equilibrium (Lenzner): no
// agent improves by unilaterally adding one edge, deleting one owned edge,
// or swapping one owned edge for another incident edge. The add scan
// routes through the variant engine (eq.CheckUnilateralAE is a shim over
// the unilateral-consent BAE check); the remove and swap scans need the
// ownership and stay NCG-specific.
func CheckGE(gm game.Game, g *graph.Graph, o *game.Ownership) eq.Result {
	if r := eq.CheckUnilateralRE(gm, g, o); !r.Stable {
		return r
	}
	if r := eq.CheckUnilateralAE(gm, g); !r.Stable {
		return r
	}
	return checkUnilateralSwap(gm, g, o)
}

// checkUnilateralSwap looks for an improving owner-side single-edge swap.
func checkUnilateralSwap(gm game.Game, g *graph.Graph, o *game.Ownership) eq.Result {
	for _, e := range g.Edges() {
		owner, ok := o.Owner(e.U, e.V)
		if !ok {
			panic(fmt.Sprintf("ncg: edge %v without owner", e))
		}
		old := e.Other(owner)
		before := gm.NCGAgentCost(g, o, owner)
		for w := 0; w < g.N(); w++ {
			if w == owner || w == old || g.HasEdge(owner, w) {
				continue
			}
			g.RemoveEdge(owner, old)
			g.AddEdge(owner, w)
			o.Delete(owner, old)
			o.SetOwner(owner, w, owner)
			after := gm.NCGAgentCost(g, o, owner)
			o.Delete(owner, w)
			o.SetOwner(owner, old, owner)
			g.RemoveEdge(owner, w)
			g.AddEdge(owner, old)
			if after.Less(before, gm.Alpha) {
				return eq.Result{Stable: false, Witness: swapWitness{owner: owner, old: old, new_: w}}
			}
		}
	}
	return eq.Result{Stable: true}
}

// swapWitness reports an improving unilateral swap. It implements
// move.Move for witness reporting only; applying it needs the ownership,
// so Apply is unsupported.
type swapWitness struct {
	owner, old, new_ int
}

// Apply is unsupported: unilateral swaps act on (graph, ownership) pairs.
func (w swapWitness) Apply(*graph.Graph) (func(), error) {
	return nil, fmt.Errorf("ncg: unilateral swap cannot apply to a bare graph")
}

// Actors implements move.Move.
func (w swapWitness) Actors() []int { return []int{w.owner} }

func (w swapWitness) String() string {
	return fmt.Sprintf("ncg-swap(%d: %d-%d -> %d-%d)", w.owner, w.owner, w.old, w.owner, w.new_)
}

// TreePoA returns the worst social cost ratio over all trees on n nodes
// that admit at least one NE ownership, together with how many tree
// classes admit one. This is the unilateral baseline for the paper's
// motivating comparison; Fabrikant et al. bound it by 5.
func TreePoA(n int, alpha game.Alpha) (worst float64, stable int, err error) {
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		return 0, 0, err
	}
	graph.FreeTrees(n, func(g *graph.Graph) {
		if _, ok := ExistsNEOwnership(gm, g); !ok {
			return
		}
		stable++
		if rho := gm.Rho(g); rho > worst {
			worst = rho
		}
	})
	return worst, stable, nil
}
