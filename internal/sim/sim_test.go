package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/game"
)

func baseOpts(n int) Options {
	return Options{
		N:            n,
		Alphas:       []game.Alpha{game.AFrac(1, 2), game.A(2), game.A(50)},
		Trajectories: 6,
		Seed:         42,
	}
}

// TestRunDeterministic: the same options produce byte-identical results at
// any worker count — the contract `bncg simulate` run-twice checks ride on.
func TestRunDeterministic(t *testing.T) {
	opts := baseOpts(12)
	var runs []*Result
	for _, workers := range []int{1, 4, 3} {
		o := opts
		o.Workers = workers
		res, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("batch did not complete")
		}
		runs = append(runs, res)
	}
	want, err := json.Marshal(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range runs[1:] {
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("run %d differs from run 0:\n%s\nvs\n%s", i+1, got, want)
		}
	}
}

// TestRunOrderedStreaming: OnTrajectory sees every trajectory exactly once,
// in global index order, consistent with Items.
func TestRunOrderedStreaming(t *testing.T) {
	opts := baseOpts(10)
	opts.Workers = 4
	var streamed []Trajectory
	var progress []int
	opts.OnTrajectory = func(tr Trajectory) { streamed = append(streamed, tr) }
	opts.Progress = func(done, total int) {
		if total != 18 {
			t.Fatalf("total = %d, want 18", total)
		}
		progress = append(progress, done)
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Items) {
		t.Fatal("streamed trajectories differ from Items")
	}
	for i, tr := range streamed {
		if tr.Index != i {
			t.Fatalf("streamed[%d].Index = %d: out of order", i, tr.Index)
		}
	}
	if len(progress) != 18 || progress[len(progress)-1] != 18 {
		t.Fatalf("progress callbacks %v, want 1..18", progress)
	}
}

// TestRunCancellation: a cancelled batch returns ctx.Err(), Completed=false,
// and a contiguous index prefix of trajectories.
func TestRunCancellation(t *testing.T) {
	opts := baseOpts(14)
	opts.Trajectories = 12
	opts.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	opts.OnTrajectory = func(tr Trajectory) {
		if tr.Index == 5 {
			cancel()
		}
	}
	res, err := Run(ctx, opts)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Completed {
		t.Fatal("cancelled batch reports Completed")
	}
	if len(res.Items) >= 36 || len(res.Items) < 6 {
		t.Fatalf("delivered %d trajectories, want a partial prefix of >= 6", len(res.Items))
	}
	for i, tr := range res.Items {
		if tr.Index != i {
			t.Fatalf("Items[%d].Index = %d: prefix not contiguous", i, tr.Index)
		}
	}
	if len(res.Summaries) != len(opts.Alphas) {
		t.Fatalf("summaries over partial results: got %d, want %d", len(res.Summaries), len(opts.Alphas))
	}
}

// TestRunSummaries: per-α aggregates match direct recomputation from the
// items, and the known regimes show up (α>n² stars at tiny n is too strong
// an ask, but trees must dominate for large α and rho must be populated).
func TestRunSummaries(t *testing.T) {
	opts := baseOpts(12)
	opts.Trajectories = 9
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 3 {
		t.Fatalf("got %d summaries, want 3", len(res.Summaries))
	}
	for ai, s := range res.Summaries {
		if s.Trajectories != 9 {
			t.Fatalf("α=%s: %d trajectories, want 9", s.Alpha, s.Trajectories)
		}
		if s.Converged != 9 {
			t.Fatalf("α=%s: only %d/9 converged at n=12", s.Alpha, s.Converged)
		}
		var stepSum, edgeSum int
		maxSteps := 0
		for _, tr := range res.Items {
			if tr.AlphaIndex != ai {
				continue
			}
			stepSum += tr.Steps
			edgeSum += tr.Edges
			if tr.Steps > maxSteps {
				maxSteps = tr.Steps
			}
			if tr.Connected && tr.Rho <= 0 {
				t.Fatalf("α=%s traj %d: connected default-variant final without rho", s.Alpha, tr.Index)
			}
		}
		if got := float64(stepSum) / 9; got != s.StepsMean {
			t.Fatalf("α=%s: StepsMean %v, recomputed %v", s.Alpha, s.StepsMean, got)
		}
		if s.StepsMax != maxSteps {
			t.Fatalf("α=%s: StepsMax %d, recomputed %d", s.Alpha, s.StepsMax, maxSteps)
		}
		if got := float64(edgeSum) / 9; got != s.EdgesMean {
			t.Fatalf("α=%s: EdgesMean %v, recomputed %v", s.Alpha, s.EdgesMean, got)
		}
		if s.MeanRho <= 0 || s.WorstRho < s.MeanRho {
			t.Fatalf("α=%s: rho stats MeanRho=%v WorstRho=%v", s.Alpha, s.MeanRho, s.WorstRho)
		}
	}
	// α = 50 > n: PS equilibria are trees (paper Thm); sampled dynamics
	// must land on them.
	if s := res.Summaries[2]; s.TreeShare != 1 {
		t.Fatalf("α=50 n=12: TreeShare = %v, want 1 (all PS equilibria are trees)", s.TreeShare)
	}
}

// TestInitFamilies: each init family produces its promised shape and the
// seeds differ across the grid.
func TestInitFamilies(t *testing.T) {
	opts := baseOpts(9)
	opts.Trajectories = 3
	opts.Inits = []Init{InitER, InitTree, InitStar}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for _, tr := range res.Items {
		want := opts.Inits[tr.Index%opts.Trajectories%len(opts.Inits)].String()
		if tr.Init != want {
			t.Fatalf("traj %d: init %q, want %q", tr.Index, tr.Init, want)
		}
		seeds[tr.Seed] = true
	}
	if len(seeds) != len(res.Items) {
		t.Fatalf("%d distinct seeds across %d trajectories", len(seeds), len(res.Items))
	}
}

// TestParseInits covers the CLI selector surface.
func TestParseInits(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []Init
	}{
		{"", []Init{InitER, InitTree, InitStar}},
		{"all", []Init{InitER, InitTree, InitStar}},
		{"er", []Init{InitER}},
		{"tree", []Init{InitTree}},
		{"star", []Init{InitStar}},
	} {
		got, err := ParseInits(tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseInits(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseInits("clique"); err == nil {
		t.Fatal("ParseInits accepted an unknown family")
	}
}

// TestRunValidation: malformed options error out before any work starts.
func TestRunValidation(t *testing.T) {
	bad := []Options{
		{N: 1, Alphas: []game.Alpha{game.A(2)}, Trajectories: 1},
		{N: 5, Trajectories: 1},
		{N: 5, Alphas: []game.Alpha{game.A(2)}},
		{N: 5, Alphas: []game.Alpha{game.A(2)}, Trajectories: 1, EdgeProb: 1.5},
	}
	for i, o := range bad {
		if _, err := Run(context.Background(), o); err == nil {
			t.Fatalf("case %d: no error for %+v", i, o)
		}
	}
}

// TestSchedulerAndMoves: the scheduler and move-set knobs thread through to
// the dynamics layer (BGE runs pass; breakpoint scheduling stays
// deterministic).
func TestSchedulerAndMoves(t *testing.T) {
	opts := baseOpts(10)
	opts.Trajectories = 4
	opts.Kinds = []dynamics.Kind{dynamics.RemoveKind, dynamics.AddKind, dynamics.SwapKind}
	opts.Scheduler = dynamics.SchedulerBreakpoint
	a, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("breakpoint-guided batch is not deterministic")
	}
	if a.Scheduler != "breakpoint" || len(a.Moves) != 3 {
		t.Fatalf("report header: scheduler=%q moves=%v", a.Scheduler, a.Moves)
	}
}

// TestTrajectorySeedSpread: the splitmix64 derivation separates neighboring
// grid coordinates.
func TestTrajectorySeedSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for ai := 0; ai < 8; ai++ {
		for ti := 0; ti < 64; ti++ {
			s := TrajectorySeed(7, ai, ti)
			if seen[s] {
				t.Fatalf("seed collision at alpha=%d traj=%d", ai, ti)
			}
			seen[s] = true
		}
	}
}
