// Package sim is the large-n stochastic workload: batches of
// improving-response trajectories run on the incremental-distance dynamics
// engine from random initial states, across an α-grid, with deterministic
// per-trajectory seeding. Where the sweep engine certifies every class
// exhaustively (and dies past n≈7), sim samples — convergence-step
// distributions and equilibrium-topology statistics at n = 50–500, where
// the only limit is hardware.
//
// Determinism contract: every trajectory's seed is a pure function of
// (Options.Seed, alpha index, trajectory index), results are delivered to
// OnTrajectory in global index order regardless of worker interleaving,
// and Result carries no wall-clock state — the same Options produce a
// byte-identical report on every run at any worker count.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Init selects an initial-state family.
type Init int

const (
	// InitER draws a connectivity-patched Erdős–Rényi G(n, p) sample.
	InitER Init = iota
	// InitTree draws a uniform labeled tree (Prüfer).
	InitTree
	// InitStar draws a star with a uniform center.
	InitStar
)

func (i Init) String() string {
	switch i {
	case InitTree:
		return "tree"
	case InitStar:
		return "star"
	default:
		return "er"
	}
}

// ParseInits parses an initial-state selector: one of "er", "tree",
// "star", or "all" (ER, tree and star cycled per trajectory).
func ParseInits(s string) ([]Init, error) {
	switch s {
	case "", "all":
		return []Init{InitER, InitTree, InitStar}, nil
	case "er":
		return []Init{InitER}, nil
	case "tree":
		return []Init{InitTree}, nil
	case "star":
		return []Init{InitStar}, nil
	}
	return nil, fmt.Errorf("sim: unknown init family %q (want er|tree|star|all)", s)
}

// Options configures a simulation batch.
type Options struct {
	// N is the number of agents (2..graph.MaxBitsetNodes recommended).
	N int
	// Alphas is the price grid; one batch of trajectories runs per α.
	Alphas []game.Alpha
	// Trajectories is the number of trajectories per α.
	Trajectories int
	// Inits are cycled over the trajectory index (default: ER, tree, star).
	Inits []Init
	// Kinds is the dynamics move set (default {Remove, Add} — PS dynamics).
	Kinds []dynamics.Kind
	// Scheduler is the move-scan policy (default uniform).
	Scheduler dynamics.Scheduler
	// MaxSteps bounds each trajectory (0 means the dynamics default 10·n²).
	MaxSteps int
	// Seed is the base of the deterministic per-trajectory seed derivation
	// (0 means dynamics.DefaultSeed).
	Seed uint64
	// EdgeProb is the ER edge probability (0 means 4/n, ≈2n expected edges).
	EdgeProb float64
	// Workers bounds parallelism (0 means GOMAXPROCS).
	Workers int
	// Variant selects the game rules (zero value: the paper's game).
	Variant game.Variant
	// OnTrajectory, when non-nil, receives every finished trajectory in
	// global index order (streaming consumers rely on this determinism).
	OnTrajectory func(Trajectory)
	// Progress, when non-nil, is called after each delivered trajectory.
	Progress func(done, total int)
	// Trace and Metrics are optional observability sinks.
	Trace   *obs.Tracer
	Metrics *obs.ComputeMetrics
}

// Trajectory reports one dynamics run and the topology it stopped on.
type Trajectory struct {
	Index      int     `json:"index"`
	AlphaIndex int     `json:"alpha_index"`
	Alpha      string  `json:"alpha"`
	Init       string  `json:"init"`
	Seed       uint64  `json:"seed"`
	Steps      int     `json:"steps"`
	Converged  bool    `json:"converged"`
	Connected  bool    `json:"connected"`
	Edges      int     `json:"edges"`
	Diameter   int     `json:"diameter"` // -1 when disconnected
	MaxDegree  int     `json:"max_degree"`
	Tree       bool    `json:"tree"`
	Star       bool    `json:"star"`
	Rho        float64 `json:"rho,omitempty"` // default variant, connected finals only
}

// AlphaSummary aggregates the trajectories of one grid price.
type AlphaSummary struct {
	Alpha        string  `json:"alpha"`
	Trajectories int     `json:"trajectories"`
	Converged    int     `json:"converged"`
	Disconnected int     `json:"disconnected"`
	StepsMean    float64 `json:"steps_mean"`
	StepsP50     int     `json:"steps_p50"`
	StepsP95     int     `json:"steps_p95"`
	StepsMax     int     `json:"steps_max"`
	EdgesMean    float64 `json:"edges_mean"`
	DiameterMean float64 `json:"diameter_mean"` // over connected finals
	TreeShare    float64 `json:"tree_share"`
	StarShare    float64 `json:"star_share"`
	MeanRho      float64 `json:"mean_rho,omitempty"`
	WorstRho     float64 `json:"worst_rho,omitempty"`
}

// Result is a finished (or cancelled) batch. Items holds the contiguous
// prefix of trajectories delivered before completion or cancellation.
type Result struct {
	N            int            `json:"n"`
	Alphas       []string       `json:"alphas"`
	Trajectories int            `json:"trajectories"`
	Inits        []string       `json:"inits"`
	Moves        []string       `json:"moves"`
	Scheduler    string         `json:"scheduler"`
	Seed         uint64         `json:"seed"`
	MaxSteps     int            `json:"max_steps"`
	EdgeProb     float64        `json:"edge_prob"`
	Variant      string         `json:"variant,omitempty"`
	Completed    bool           `json:"completed"`
	Items        []Trajectory   `json:"items"`
	Summaries    []AlphaSummary `json:"summaries"`
}

// Report renders the per-α summary table. The output is a pure function
// of the batch parameters and results — no wall-clock state — so two runs
// with the same options print byte-identical reports.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulate n=%d trajectories=%d/α seed=%d scheduler=%s moves=%s inits=%s max-steps=%d",
		r.N, r.Trajectories, r.Seed, r.Scheduler,
		strings.Join(r.Moves, ","), strings.Join(r.Inits, ","), r.MaxSteps)
	if r.Variant != "" {
		fmt.Fprintf(&b, " variant=%s", r.Variant)
	}
	if !r.Completed {
		fmt.Fprintf(&b, " [interrupted: %d/%d trajectories]",
			len(r.Items), len(r.Alphas)*r.Trajectories)
	}
	b.WriteByte('\n')
	for _, s := range r.Summaries {
		fmt.Fprintf(&b, "α=%-6s conv=%d/%d disc=%d steps{mean=%.1f p50=%d p95=%d max=%d} edges=%.1f",
			s.Alpha, s.Converged, s.Trajectories, s.Disconnected,
			s.StepsMean, s.StepsP50, s.StepsP95, s.StepsMax, s.EdgesMean)
		if s.Trajectories > s.Disconnected {
			fmt.Fprintf(&b, " diam=%.1f", s.DiameterMean)
		}
		fmt.Fprintf(&b, " tree=%.0f%% star=%.0f%%", 100*s.TreeShare, 100*s.StarShare)
		if s.MeanRho > 0 {
			fmt.Fprintf(&b, " rho{mean=%.4f worst=%.4f}", s.MeanRho, s.WorstRho)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TrajectorySeed derives the deterministic seed of trajectory trajIdx at
// grid position alphaIdx: a splitmix64 finalizer over the base seed and
// the task coordinates, so neighboring tasks get uncorrelated streams.
func TrajectorySeed(base uint64, alphaIdx, trajIdx int) uint64 {
	x := base ^ uint64(alphaIdx)<<40 ^ uint64(trajIdx)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func kindNames(kinds []dynamics.Kind) []string {
	out := make([]string, 0, len(kinds))
	for _, k := range kinds {
		switch k {
		case dynamics.RemoveKind:
			out = append(out, "remove")
		case dynamics.AddKind:
			out = append(out, "add")
		case dynamics.SwapKind:
			out = append(out, "swap")
		}
	}
	return out
}

// Run executes the batch. Cancelling ctx stops the workers between
// trajectories; the contiguous prefix of finished trajectories is
// summarized and returned together with ctx.Err().
func Run(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.N < 2 {
		return nil, fmt.Errorf("sim: need n >= 2, got %d", opts.N)
	}
	if len(opts.Alphas) == 0 {
		return nil, fmt.Errorf("sim: need at least one alpha")
	}
	if opts.Trajectories < 1 {
		return nil, fmt.Errorf("sim: need at least one trajectory per alpha")
	}
	if err := opts.Variant.Validate(opts.N); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if len(opts.Inits) == 0 {
		opts.Inits = []Init{InitER, InitTree, InitStar}
	}
	if len(opts.Kinds) == 0 {
		opts.Kinds = []dynamics.Kind{dynamics.RemoveKind, dynamics.AddKind}
	}
	if opts.Seed == 0 {
		opts.Seed = dynamics.DefaultSeed
	}
	if opts.EdgeProb == 0 {
		opts.EdgeProb = 4 / float64(opts.N)
	}
	if opts.EdgeProb < 0 || opts.EdgeProb > 1 {
		return nil, fmt.Errorf("sim: edge probability %v outside (0,1]", opts.EdgeProb)
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10 * opts.N * opts.N
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(opts.Alphas) * opts.Trajectories
	if workers > total {
		workers = total
	}

	gmBase, err := game.NewGame(opts.N, opts.Alphas[0])
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	gmBase.Variant = opts.Variant

	res := &Result{
		N:            opts.N,
		Trajectories: opts.Trajectories,
		Scheduler:    opts.Scheduler.String(),
		Seed:         opts.Seed,
		MaxSteps:     maxSteps,
		EdgeProb:     opts.EdgeProb,
		Variant:      opts.Variant.Key(),
		Moves:        kindNames(opts.Kinds),
		Items:        make([]Trajectory, 0, total),
	}
	for _, a := range opts.Alphas {
		res.Alphas = append(res.Alphas, a.String())
	}
	for _, in := range opts.Inits {
		res.Inits = append(res.Inits, in.String())
	}

	batchSpan := opts.Trace.Start("simulate")

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	tasks := make(chan int)
	type done struct {
		idx  int
		traj Trajectory
		err  error
	}
	results := make(chan done, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range tasks {
				traj, err := runOne(runCtx, gmBase, opts, maxSteps, idx)
				select {
				case results <- done{idx: idx, traj: traj, err: err}:
				case <-runCtx.Done():
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	go func() {
		defer close(tasks)
		for i := 0; i < total; i++ {
			select {
			case tasks <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Collect out-of-order worker results and deliver the contiguous
	// prefix in index order — the streaming determinism contract.
	reorder := make(map[int]Trajectory, workers)
	next := 0
	var firstErr error
	for next < total && firstErr == nil {
		select {
		case d := <-results:
			if d.err != nil {
				firstErr = d.err
				break
			}
			reorder[d.idx] = d.traj
			for {
				traj, ok := reorder[next]
				if !ok {
					break
				}
				delete(reorder, next)
				res.Items = append(res.Items, traj)
				if opts.OnTrajectory != nil {
					opts.OnTrajectory(traj)
				}
				next++
				if opts.Progress != nil {
					opts.Progress(next, total)
				}
			}
		case <-ctx.Done():
			firstErr = ctx.Err()
		}
	}
	cancel()
	wg.Wait()

	res.Completed = firstErr == nil
	res.Summaries = summarize(opts, res.Items)
	batchSpan.End(obs.Attrs{
		"n": opts.N, "alphas": len(opts.Alphas), "trajectories": opts.Trajectories,
		"delivered": len(res.Items), "scheduler": res.Scheduler,
	})
	return res, firstErr
}

// runOne runs trajectory idx from its deterministically seeded initial
// state and measures the topology it stopped on.
func runOne(ctx context.Context, gm game.Game, opts Options, maxSteps, idx int) (Trajectory, error) {
	alphaIdx := idx / opts.Trajectories
	trajIdx := idx % opts.Trajectories
	seed := TrajectorySeed(opts.Seed, alphaIdx, trajIdx)
	rng := rand.New(rand.NewSource(int64(seed)))
	init := opts.Inits[trajIdx%len(opts.Inits)]
	gm.Alpha = opts.Alphas[alphaIdx]

	var g *graph.Graph
	var err error
	switch init {
	case InitTree:
		g = graph.RandomTree(opts.N, rng)
	case InitStar:
		g = graph.RandomStar(opts.N, rng)
	default:
		g, err = graph.RandomConnectedGNP(opts.N, opts.EdgeProb, rng)
		if err != nil {
			return Trajectory{}, err
		}
	}

	start := time.Now()
	tr, err := dynamics.Run(ctx, gm, g, dynamics.Options{
		Kinds:     opts.Kinds,
		MaxSteps:  maxSteps,
		Rng:       rng,
		Scheduler: opts.Scheduler,
	})
	if err != nil {
		return Trajectory{}, err
	}
	opts.Metrics.TrajectoryObserved(tr.Steps, tr.Converged, time.Since(start))

	traj := Trajectory{
		Index:      idx,
		AlphaIndex: alphaIdx,
		Alpha:      gm.Alpha.String(),
		Init:       init.String(),
		Seed:       seed,
		Steps:      tr.Steps,
		Converged:  tr.Converged,
		Edges:      g.M(),
		Diameter:   graph.Unreachable,
	}

	// One BFS sweep measures the final topology: connectivity, diameter,
	// degree profile.
	n := g.N()
	dist := make([]int, n)
	var bfs graph.BFSScratch
	connected := true
	diam := 0
	for u := 0; u < n && connected; u++ {
		g.BFSScratchInto(u, dist, &bfs)
		for _, dv := range dist {
			if dv == graph.Unreachable {
				connected = false
				break
			}
			if dv > diam {
				diam = dv
			}
		}
	}
	traj.Connected = connected
	if connected {
		traj.Diameter = diam
	}
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > traj.MaxDegree {
			traj.MaxDegree = d
		}
	}
	traj.Tree = connected && g.M() == n-1
	traj.Star = traj.Tree && traj.MaxDegree == n-1
	if connected && gm.Variant.IsDefault() {
		traj.Rho = gm.Rho(g)
	}
	return traj, nil
}

// summarize folds the delivered trajectories into per-α aggregates.
func summarize(opts Options, items []Trajectory) []AlphaSummary {
	out := make([]AlphaSummary, 0, len(opts.Alphas))
	for ai, a := range opts.Alphas {
		s := AlphaSummary{Alpha: a.String()}
		var steps []int
		var edgeSum, diamSum float64
		var diamN, trees, stars int
		var rhoSum float64
		var rhoN int
		for _, tr := range items {
			if tr.AlphaIndex != ai {
				continue
			}
			s.Trajectories++
			steps = append(steps, tr.Steps)
			s.StepsMean += float64(tr.Steps)
			if tr.Steps > s.StepsMax {
				s.StepsMax = tr.Steps
			}
			if tr.Converged {
				s.Converged++
			}
			edgeSum += float64(tr.Edges)
			if !tr.Connected {
				s.Disconnected++
			} else {
				diamSum += float64(tr.Diameter)
				diamN++
				if tr.Rho > 0 {
					rhoSum += tr.Rho
					rhoN++
					if tr.Rho > s.WorstRho {
						s.WorstRho = tr.Rho
					}
				}
			}
			if tr.Tree {
				trees++
			}
			if tr.Star {
				stars++
			}
		}
		if s.Trajectories == 0 {
			out = append(out, s)
			continue
		}
		cnt := float64(s.Trajectories)
		s.StepsMean /= cnt
		s.EdgesMean = edgeSum / cnt
		s.TreeShare = float64(trees) / cnt
		s.StarShare = float64(stars) / cnt
		sort.Ints(steps)
		s.StepsP50 = steps[len(steps)/2]
		s.StepsP95 = steps[(len(steps)*95)/100]
		if diamN > 0 {
			s.DiameterMean = diamSum / float64(diamN)
		}
		if rhoN > 0 {
			s.MeanRho = rhoSum / float64(rhoN)
		}
		out = append(out, s)
	}
	return out
}
