// Package dynamics implements improving-response dynamics for the BNCG:
// agents (and pairs of agents) repeatedly perform strictly improving
// removals, bilateral additions and swaps until no such move exists. The
// fixed points are exactly the PS / BGE states for the respective move
// sets, which lets experiments sample equilibria instead of enumerating
// them.
package dynamics

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// Kind selects a move family for the scheduler.
type Kind int

// The move families of the weak solution concepts.
const (
	RemoveKind Kind = iota + 1
	AddKind
	SwapKind
)

// DefaultSeed seeds the rand.Rand a run falls back to when Options.Rng is
// nil, so the zero-value Options is usable and deterministic.
const DefaultSeed = 1

// Options configures a dynamics run.
type Options struct {
	// Kinds are the move families agents may use. {Remove, Add} converges
	// to PS; {Remove, Add, Swap} to BGE.
	Kinds []Kind
	// MaxSteps bounds the number of applied moves (0 means 10·n·n).
	MaxSteps int
	// Rng randomizes the move scan order. Nil selects a fresh
	// rand.New(rand.NewSource(DefaultSeed)), making runs with the zero
	// value reproducible; pass an explicit source to vary or share streams.
	Rng *rand.Rand
	// Scheduler selects the candidate-scan policy: SchedulerUniform (the
	// zero value, random scan order), SchedulerRoundRobin, or
	// SchedulerBreakpoint (certificate-guided). Ignored by the
	// FullRecompute oracle, which always scans uniformly.
	Scheduler Scheduler
	// FullRecompute bypasses the incremental-distance engine and probes
	// every candidate through a freshly bound eq.Evaluator, recomputing
	// BFS per probe. It exists as the differential oracle and benchmark
	// baseline for the incremental engine; production callers leave it
	// false.
	FullRecompute bool
}

// rng returns the configured random source, defaulting to a fixed seed.
func (o Options) rng() *rand.Rand {
	if o.Rng != nil {
		return o.Rng
	}
	return rand.New(rand.NewSource(DefaultSeed))
}

// Trace reports a dynamics run.
type Trace struct {
	// Steps is the number of improving moves applied.
	Steps int
	// Converged reports whether no improving move remained (as opposed to
	// hitting MaxSteps or the context being cancelled).
	Converged bool
	// History records the applied moves in order.
	History []move.Move
}

// Run mutates g by applying improving moves until convergence, the step
// bound, or ctx cancellation. It returns the trace; g holds the final
// state. On cancellation the partial trace (moves applied so far) is
// returned together with ctx.Err(); g holds the state reached.
func Run(ctx context.Context, gm game.Game, g *graph.Graph, opts Options) (Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Kinds) == 0 {
		return Trace{}, fmt.Errorf("dynamics: Options.Kinds must not be empty")
	}
	rng := opts.rng()
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10 * g.N() * g.N()
	}
	// Start the history at a real capacity instead of growing from nil:
	// convergence at n=500 means thousands of appends per trajectory.
	histCap := maxSteps
	if histCap > 1024 {
		histCap = 1024
	}
	tr := Trace{History: make([]move.Move, 0, histCap)}
	if opts.FullRecompute {
		return runFullRecompute(ctx, gm, g, opts, rng, maxSteps, tr)
	}
	eng := newEngine(gm, g, opts)
	for tr.Steps < maxSteps {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		c, ok := eng.find(rng)
		if !ok {
			tr.Converged = true
			return tr, nil
		}
		tr.History = append(tr.History, eng.commit(c))
		tr.Steps++
	}
	// One final scan decides whether we stopped exactly at a fixed point.
	_, more := eng.find(rng)
	tr.Converged = !more
	return tr, nil
}

// runFullRecompute is the pre-incremental engine, kept verbatim as the
// differential oracle and benchmark baseline: per-scan candidate slice
// rebuild, evaluator re-bind, and a fresh BFS per actor per probe.
func runFullRecompute(ctx context.Context, gm game.Game, g *graph.Graph, opts Options, rng *rand.Rand, maxSteps int, tr Trace) (Trace, error) {
	ev := eq.NewEvaluator()
	for tr.Steps < maxSteps {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		m, ok := findImproving(ev, gm, g, rng, opts)
		if !ok {
			tr.Converged = true
			return tr, nil
		}
		if _, err := m.Apply(g); err != nil {
			return tr, fmt.Errorf("dynamics: applying %v: %w", m, err)
		}
		tr.History = append(tr.History, m)
		tr.Steps++
	}
	_, more := findImproving(ev, gm, g, rng, opts)
	tr.Converged = !more
	return tr, nil
}

// findImproving scans the allowed move families in random order and
// returns the first strictly improving move. The baseline costs are
// computed once per scan (the state is fixed; every probe reverts it), not
// once per candidate.
func findImproving(ev *eq.Evaluator, gm game.Game, g *graph.Graph, rng *rand.Rand, opts Options) (move.Move, bool) {
	candidates := collectMoves(g, opts)
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	ev.Bind(gm, g)
	for _, m := range candidates {
		if ev.ImprovingBound(m) {
			return m, true
		}
	}
	return nil, false
}

func collectMoves(g *graph.Graph, opts Options) []move.Move {
	var moves []move.Move
	for _, k := range opts.Kinds {
		switch k {
		case RemoveKind:
			for _, e := range g.Edges() {
				moves = append(moves, move.Remove{U: e.U, V: e.V}, move.Remove{U: e.V, V: e.U})
			}
		case AddKind:
			for u := 0; u < g.N(); u++ {
				for v := u + 1; v < g.N(); v++ {
					if !g.HasEdge(u, v) {
						moves = append(moves, move.Add{U: u, V: v})
					}
				}
			}
		case SwapKind:
			for u := 0; u < g.N(); u++ {
				for _, v := range g.Neighbors(u) {
					for w := 0; w < g.N(); w++ {
						if w != u && w != v && !g.HasEdge(u, w) {
							moves = append(moves, move.Swap{U: u, Old: v, New: w})
						}
					}
				}
			}
		}
	}
	return moves
}

// SampleStat summarizes sampled-equilibrium social cost ratios.
type SampleStat struct {
	Samples      int
	Converged    int
	MeanRho      float64
	WorstRho     float64
	MeanSteps    float64
	Disconnected int
}

// Sample runs the dynamics from `samples` random connected starting graphs
// on n nodes and summarizes the resulting equilibrium quality. Cancelling
// ctx stops between (or inside) runs; the statistics over the samples
// finished so far are returned together with ctx.Err().
func Sample(ctx context.Context, gm game.Game, n, samples int, opts Options) (SampleStat, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Materialize the default once so every sample draws from the same
	// stream instead of replaying the first.
	opts.Rng = opts.rng()
	var st SampleStat
	finish := func(err error) (SampleStat, error) {
		if st.Samples > 0 {
			st.MeanSteps /= float64(st.Samples)
		}
		if connectedSamples := st.Samples - st.Disconnected; connectedSamples > 0 {
			st.MeanRho /= float64(connectedSamples)
		}
		return st, err
	}
	for i := 0; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		m := n - 1 + opts.Rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.RandomConnectedGraph(n, m, opts.Rng)
		if err != nil {
			return finish(err)
		}
		tr, err := Run(ctx, gm, g, opts)
		if err != nil {
			return finish(err)
		}
		st.Samples++
		st.MeanSteps += float64(tr.Steps)
		if tr.Converged {
			st.Converged++
		}
		if !g.Connected() {
			st.Disconnected++
			continue
		}
		rho := gm.Rho(g)
		st.MeanRho += rho
		if rho > st.WorstRho {
			st.WorstRho = rho
		}
	}
	return finish(nil)
}
