package dynamics

import (
	"math"
	"math/rand"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// Scheduler selects the candidate-scan policy of the incremental engine.
type Scheduler int

const (
	// SchedulerUniform shuffles the pair pool every scan and takes the
	// first improving move — the classic randomized best-response walk,
	// and the default (it matches the historical behavior of Run).
	SchedulerUniform Scheduler = iota
	// SchedulerRoundRobin scans pairs in a fixed cyclic order, resuming
	// each scan where the previous improving move was found. No
	// randomness: the walk is fully determined by the initial state.
	SchedulerRoundRobin
	// SchedulerBreakpoint scans every candidate and plays the improving
	// move whose exact α-interval (eq.ImprovingIntervalOf — the same
	// arithmetic that powers eq.Certify) keeps α farthest from its
	// breakpoints: the move that stays improving under the largest price
	// perturbation. Deterministic; costs a full scan per step.
	SchedulerBreakpoint
)

// ParseScheduler parses "uniform", "roundrobin" or "breakpoint".
func ParseScheduler(s string) (Scheduler, bool) {
	switch s {
	case "", "uniform":
		return SchedulerUniform, true
	case "roundrobin", "round-robin":
		return SchedulerRoundRobin, true
	case "breakpoint", "breakpoint-guided":
		return SchedulerBreakpoint, true
	}
	return 0, false
}

func (s Scheduler) String() string {
	switch s {
	case SchedulerRoundRobin:
		return "roundrobin"
	case SchedulerBreakpoint:
		return "breakpoint"
	default:
		return "uniform"
	}
}

// candidate is an unboxed move: probes never build move.Move values, only
// the one move per step that actually commits gets boxed for the history.
type candidate struct {
	kind Kind
	u, v int // Remove: drop (u,v), actor u. Add: buy (u,v), actors u,v.
	w    int // Swap: u trades old neighbor v for w, actors u,w.
}

// engine is the incremental-distance dynamics core. It owns the graph
// through an IncDist kernel: a candidate probe flips the edge, repairs
// only the actors' distance rows, reads their costs off the kernel's
// aggregates, and flips it back — no evaluator re-bind, no fresh BFS.
// The pair pool and scan permutation are allocated once per run.
type engine struct {
	gm    game.Game
	g     *graph.Graph
	inc   *graph.IncDist
	sched Scheduler

	pairs  []graph.Edge // all u<v pairs, fixed for the run
	order  []int32      // scan permutation over pairs (uniform scheduler)
	cursor int          // round-robin resume position

	allowRemove, allowAdd, allowSwap bool
	hetero                           bool
	maxDist                          bool
	alphaF                           float64 // α as float, for breakpoint margins

	rowsBuf [2]int
	nbuf    []int // neighbor snapshot: probes mutate adjacency in place
}

func newEngine(gm game.Game, g *graph.Graph, opts Options) *engine {
	n := g.N()
	e := &engine{
		gm:      gm,
		g:       g,
		inc:     graph.NewIncDist(g),
		sched:   opts.Scheduler,
		pairs:   make([]graph.Edge, 0, n*(n-1)/2),
		hetero:  len(gm.Variant.Prices) > 0,
		maxDist: gm.Variant.Dist == game.DistMax,
		alphaF:  gm.Alpha.Float(),
		nbuf:    make([]int, 0, n),
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			e.pairs = append(e.pairs, graph.Edge{U: u, V: v})
		}
	}
	e.order = make([]int32, len(e.pairs))
	for i := range e.order {
		e.order[i] = int32(i)
	}
	for _, k := range opts.Kinds {
		switch k {
		case RemoveKind:
			e.allowRemove = true
		case AddKind:
			e.allowAdd = true
		case SwapKind:
			e.allowSwap = true
		}
	}
	return e
}

// cost reads agent a's current cost off the kernel aggregates: O(1) for
// the SUM aggregate, one row scan for MAX.
func (e *engine) cost(a int) game.Cost {
	c := game.Cost{
		Unreachable: int64(e.inc.UnreachableFrom(a)),
		Buy:         int64(e.g.Degree(a)),
	}
	if e.maxDist {
		c.Dist = e.inc.MaxDist(a)
	} else {
		c.Dist = e.inc.SumDist(a)
	}
	return c
}

// improves mirrors eq's checker.improves: strict lexicographic improvement
// at the agent's effective price.
func (e *engine) improves(a int, before game.Cost) bool {
	return e.cost(a).Less(before, e.gm.AlphaFor(a))
}

// apply performs the candidate's edge toggles, repairing either just the
// actors' rows (probe) or every row (commit).
func (e *engine) apply(c candidate, rows []int) {
	switch c.kind {
	case RemoveKind:
		if rows == nil {
			e.inc.RemoveEdge(c.u, c.v)
		} else {
			e.inc.RemoveEdgePartial(c.u, c.v, rows)
		}
	case AddKind:
		if rows == nil {
			e.inc.AddEdge(c.u, c.v)
		} else {
			e.inc.AddEdgePartial(c.u, c.v, rows)
		}
	case SwapKind:
		if rows == nil {
			e.inc.RemoveEdge(c.u, c.v)
			e.inc.AddEdge(c.u, c.w)
		} else {
			e.inc.RemoveEdgePartial(c.u, c.v, rows)
			e.inc.AddEdgePartial(c.u, c.w, rows)
		}
	}
}

// revert undoes a partial apply with the same rows, in reverse order.
func (e *engine) revert(c candidate, rows []int) {
	switch c.kind {
	case RemoveKind:
		e.inc.AddEdgePartial(c.u, c.v, rows)
	case AddKind:
		e.inc.RemoveEdgePartial(c.u, c.v, rows)
	case SwapKind:
		e.inc.RemoveEdgePartial(c.u, c.w, rows)
		e.inc.AddEdgePartial(c.u, c.v, rows)
	}
}

// actors fills rowsBuf with the candidate's actor set (the agents that
// must strictly improve — same sets move.Move.Actors() reports).
func (e *engine) actors(c candidate) []int {
	switch c.kind {
	case RemoveKind:
		e.rowsBuf[0] = c.u
		return e.rowsBuf[:1]
	case AddKind:
		e.rowsBuf[0], e.rowsBuf[1] = c.u, c.v
		return e.rowsBuf[:2]
	default:
		e.rowsBuf[0], e.rowsBuf[1] = c.u, c.w
		return e.rowsBuf[:2]
	}
}

// probe reports whether c strictly improves all its actors. The graph and
// kernel are restored before it returns.
func (e *engine) probe(c candidate) bool {
	rows := e.actors(c)
	var b0, b1 game.Cost
	b0 = e.cost(rows[0])
	if len(rows) == 2 {
		b1 = e.cost(rows[1])
	}
	e.apply(c, rows)
	ok := e.improves(rows[0], b0)
	if ok && len(rows) == 2 {
		ok = e.improves(rows[1], b1)
	}
	e.revert(c, rows)
	return ok
}

// probeMargin is probe for the breakpoint scheduler: when c improves, it
// also returns how far α sits from the nearest breakpoint of the move's
// exact improving interval (the minimum over actors; +Inf when the move
// improves at every price).
func (e *engine) probeMargin(c candidate) (float64, bool) {
	rows := e.actors(c)
	var b0, b1 game.Cost
	b0 = e.cost(rows[0])
	if len(rows) == 2 {
		b1 = e.cost(rows[1])
	}
	e.apply(c, rows)
	margin, ok := e.actorMargin(rows[0], b0)
	if ok && len(rows) == 2 {
		var m2 float64
		if m2, ok = e.actorMargin(rows[1], b1); ok && m2 < margin {
			margin = m2
		}
	}
	e.revert(c, rows)
	return margin, ok
}

// actorMargin computes agent a's exact improving interval via the
// certificate arithmetic and returns α's distance to its boundary.
func (e *engine) actorMargin(a int, before game.Cost) (float64, bool) {
	after := e.cost(a)
	if e.hetero {
		p, q := e.gm.Variant.MulFor(a)
		before = game.Cost{Unreachable: before.Unreachable, Buy: before.Buy * p, Dist: before.Dist * q}
		after = game.Cost{Unreachable: after.Unreachable, Buy: after.Buy * p, Dist: after.Dist * q}
	}
	iv, ok := eq.ImprovingIntervalOf(before, after)
	if !ok || !iv.Contains(e.gm.Alpha) {
		return 0, false
	}
	margin := math.Inf(1)
	if !iv.Lo.IsInf() {
		margin = e.alphaF - float64(iv.Lo.Num)/float64(iv.Lo.Den)
	}
	if !iv.Hi.IsInf() {
		if m := float64(iv.Hi.Num)/float64(iv.Hi.Den) - e.alphaF; m < margin {
			margin = m
		}
	}
	return margin, true
}

// tryPair probes every allowed candidate over the pair (u,v) in a fixed
// order and returns the first improving one.
func (e *engine) tryPair(p graph.Edge) (candidate, bool) {
	u, v := p.U, p.V
	if e.g.HasEdge(u, v) {
		if e.allowRemove {
			if c := (candidate{kind: RemoveKind, u: u, v: v}); e.probe(c) {
				return c, true
			}
			if c := (candidate{kind: RemoveKind, u: v, v: u}); e.probe(c) {
				return c, true
			}
		}
		return candidate{}, false
	}
	if e.allowAdd {
		if c := (candidate{kind: AddKind, u: u, v: v}); e.probe(c) {
			return c, true
		}
	}
	if e.allowSwap {
		if c, ok := e.trySwaps(u, v); ok {
			return c, true
		}
		if c, ok := e.trySwaps(v, u); ok {
			return c, true
		}
	}
	return candidate{}, false
}

// trySwaps probes u trading each current neighbor for the non-neighbor w.
// The neighbor list is snapshotted first: probes mutate it in place.
func (e *engine) trySwaps(u, w int) (candidate, bool) {
	e.nbuf = append(e.nbuf[:0], e.g.Neighbors(u)...)
	for _, old := range e.nbuf {
		if c := (candidate{kind: SwapKind, u: u, v: old, w: w}); e.probe(c) {
			return c, true
		}
	}
	return candidate{}, false
}

// find locates the next move under the configured scheduler.
func (e *engine) find(rng *rand.Rand) (candidate, bool) {
	switch e.sched {
	case SchedulerRoundRobin:
		return e.findRoundRobin()
	case SchedulerBreakpoint:
		return e.findBreakpoint()
	default:
		return e.findUniform(rng)
	}
}

// findUniform shuffles the persistent permutation in place and returns the
// first improving candidate.
func (e *engine) findUniform(rng *rand.Rand) (candidate, bool) {
	ord := e.order
	for i := len(ord) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ord[i], ord[j] = ord[j], ord[i]
	}
	for _, pi := range ord {
		if c, ok := e.tryPair(e.pairs[pi]); ok {
			return c, true
		}
	}
	return candidate{}, false
}

// findRoundRobin scans the cyclic pair order starting where the previous
// improving move was found (the same pair may improve again).
func (e *engine) findRoundRobin() (candidate, bool) {
	n := len(e.pairs)
	for k := 0; k < n; k++ {
		idx := e.cursor + k
		if idx >= n {
			idx -= n
		}
		if c, ok := e.tryPair(e.pairs[idx]); ok {
			e.cursor = idx
			return c, true
		}
	}
	return candidate{}, false
}

// findBreakpoint scans every candidate and keeps the improving move with
// the largest breakpoint margin; ties keep the first in pair order.
func (e *engine) findBreakpoint() (candidate, bool) {
	var best candidate
	bestMargin := math.Inf(-1)
	found := false
	consider := func(c candidate) {
		if m, ok := e.probeMargin(c); ok && m > bestMargin {
			best, bestMargin, found = c, m, true
		}
	}
	for _, p := range e.pairs {
		u, v := p.U, p.V
		if e.g.HasEdge(u, v) {
			if e.allowRemove {
				consider(candidate{kind: RemoveKind, u: u, v: v})
				consider(candidate{kind: RemoveKind, u: v, v: u})
			}
			continue
		}
		if e.allowAdd {
			consider(candidate{kind: AddKind, u: u, v: v})
		}
		if e.allowSwap {
			e.nbuf = append(e.nbuf[:0], e.g.Neighbors(u)...)
			for _, old := range e.nbuf {
				consider(candidate{kind: SwapKind, u: u, v: old, w: v})
			}
			e.nbuf = append(e.nbuf[:0], e.g.Neighbors(v)...)
			for _, old := range e.nbuf {
				consider(candidate{kind: SwapKind, u: v, v: old, w: u})
			}
		}
	}
	return best, found
}

// commit applies c for real (every row repaired) and boxes it for the
// history — the only move.Move allocation a step performs.
func (e *engine) commit(c candidate) move.Move {
	e.apply(c, nil)
	switch c.kind {
	case RemoveKind:
		return move.Remove{U: c.u, V: c.v}
	case AddKind:
		return move.Add{U: c.u, V: c.v}
	default:
		return move.Swap{U: c.u, Old: c.v, New: c.w}
	}
}
