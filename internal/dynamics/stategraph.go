package dynamics

import (
	"context"
	"fmt"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

// StateGraphResult summarizes the improving-move digraph over all labeled
// graphs on n nodes: states are graphs, arcs are strictly improving moves
// of the selected kinds.
type StateGraphResult struct {
	// States is the number of labeled graphs (2^(n(n-1)/2)).
	States int
	// Sinks is the number of states with no outgoing improving move, i.e.
	// the equilibria of the move set.
	Sinks int
	// Acyclic reports whether the digraph has no directed cycle; if true,
	// every improving-response sequence terminates (a generalized ordinal
	// potential exists).
	Acyclic bool
	// CycleWitness is a state on a directed cycle when Acyclic is false.
	CycleWitness *graph.Graph
}

// AnalyzeStateGraph builds the full improving-move digraph for the BNCG on
// n agents at price alpha and checks it for cycles. Exponential in the
// number of node pairs; intended for n <= 5 (2^10 states). Cancelling ctx
// aborts the construction and returns the partial counts with ctx.Err().
func AnalyzeStateGraph(ctx context.Context, n int, alpha game.Alpha, kinds []Kind) (StateGraphResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pairs := n * (n - 1) / 2
	if pairs > 16 {
		return StateGraphResult{}, fmt.Errorf("dynamics: state graph on n=%d is too large (2^%d states)", n, pairs)
	}
	gm, err := game.NewGame(n, alpha)
	if err != nil {
		return StateGraphResult{}, err
	}
	total := 1 << pairs
	// succ[s] lists the successor states reachable by one improving move.
	succ := make([][]int, total)
	res := StateGraphResult{States: total}
	ev := eq.NewEvaluator()
	for s := 0; s < total; s++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		g := stateToGraph(n, s)
		// One baseline per state: the probes below revert g, and the
		// successor application re-binds implicitly via the next state.
		ev.Bind(gm, g)
		for _, m := range collectMoves(g, Options{Kinds: kinds}) {
			if !ev.ImprovingBound(m) {
				continue
			}
			undo, err := m.Apply(g)
			if err != nil {
				return res, fmt.Errorf("dynamics: applying %v: %w", m, err)
			}
			succ[s] = append(succ[s], graphToState(g))
			undo()
		}
		if len(succ[s]) == 0 {
			res.Sinks++
		}
	}
	if cycleState, acyclic := findCycle(succ); !acyclic {
		res.CycleWitness = stateToGraph(n, cycleState)
	} else {
		res.Acyclic = true
	}
	return res, nil
}

// stateToGraph decodes a bitmask over the node pairs (lexicographic order)
// into a graph.
func stateToGraph(n, state int) *graph.Graph {
	g := graph.New(n)
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if state&(1<<bit) != 0 {
				g.AddEdge(u, v)
			}
			bit++
		}
	}
	return g
}

func graphToState(g *graph.Graph) int {
	state := 0
	bit := 0
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) {
				state |= 1 << bit
			}
			bit++
		}
	}
	return state
}

// findCycle runs an iterative three-color DFS over the successor lists and
// returns (stateOnCycle, false) when a back edge exists, or (0, true) when
// the digraph is acyclic.
func findCycle(succ [][]int) (int, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(succ))
	type frame struct {
		state int
		next  int
	}
	for start := range succ {
		if color[start] != white {
			continue
		}
		stack := []frame{{state: start}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.next < len(succ[top.state]) {
				child := succ[top.state][top.next]
				top.next++
				switch color[child] {
				case white:
					color[child] = gray
					stack = append(stack, frame{state: child})
				case gray:
					return child, false
				}
				continue
			}
			color[top.state] = black
			stack = stack[:len(stack)-1]
		}
	}
	return 0, true
}
