package dynamics

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/move"
)

// testVariants covers every axis the engine special-cases: the default
// game, MAX distances, heterogeneous prices, and unilateral consent.
func testVariants(t *testing.T, n int) []game.Variant {
	t.Helper()
	hetero := game.Variant{Prices: []game.AgentPrice{{Agent: 0, Mul: game.AFrac(3, 2)}, {Agent: n - 1, Mul: game.AFrac(1, 2)}}}
	variants := []game.Variant{
		{},
		{Dist: game.DistMax},
		hetero,
		{Consent: game.ConsentUnilateral},
	}
	for _, v := range variants {
		if err := v.Validate(n); err != nil {
			t.Fatal(err)
		}
	}
	return variants
}

// TestEngineMatchesEvaluator differentially pins the incremental probe
// against eq's full-recompute ImprovingBound on every candidate of random
// states across all variant axes, and checks probes leave no trace.
func TestEngineMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ev := eq.NewEvaluator()
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(4)
		for _, variant := range testVariants(t, n) {
			gm, err := game.NewGame(n, game.AFrac(int64(1+rng.Intn(8)), 2))
			if err != nil {
				t.Fatal(err)
			}
			gm.Variant = variant
			g, err := graph.RandomConnectedGraph(n, n+rng.Intn(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			snapshot := g.Clone()
			opts := Options{Kinds: []Kind{RemoveKind, AddKind, SwapKind}}
			eng := newEngine(gm, g, opts)
			ev.Bind(gm, g)
			for _, m := range collectMoves(g, opts) {
				var c candidate
				switch mv := m.(type) {
				case move.Remove:
					c = candidate{kind: RemoveKind, u: mv.U, v: mv.V}
				case move.Add:
					c = candidate{kind: AddKind, u: mv.U, v: mv.V}
				case move.Swap:
					c = candidate{kind: SwapKind, u: mv.U, v: mv.Old, w: mv.New}
				}
				got := eng.probe(c)
				want := ev.ImprovingBound(m)
				if got != want {
					t.Fatalf("variant %q α=%s: engine says %v, evaluator says %v for %v on %s",
						variant, gm.Alpha, got, want, m, graph.Encode(g))
				}
				// The breakpoint path must agree with the boolean path.
				if _, ok := eng.probeMargin(c); ok != want {
					t.Fatalf("variant %q α=%s: probeMargin says %v, evaluator says %v for %v",
						variant, gm.Alpha, ok, want, m)
				}
			}
			if !g.Equal(snapshot) {
				t.Fatalf("probing mutated the graph: %s -> %s", graph.Encode(snapshot), graph.Encode(g))
			}
		}
	}
}

// TestSchedulersReachEquilibria: every scheduler's fixed point passes the
// exact stability checker for its move set. Bilateral-consent variants
// only: dynamics moves always require all of move.Actors() to improve
// (exactly like Evaluator.ImprovingBound), while the unilateral PS concept
// scans buyer-only additions — its equilibria are a different fixed-point
// set, pinned instead by TestEngineMatchesEvaluator.
func TestSchedulersReachEquilibria(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sched := range []Scheduler{SchedulerUniform, SchedulerRoundRobin, SchedulerBreakpoint} {
		for trial := 0; trial < 4; trial++ {
			n := 6 + rng.Intn(3)
			for _, variant := range testVariants(t, n) {
				if variant.Consent == game.ConsentUnilateral {
					continue
				}
				gm, err := game.NewGame(n, game.AFrac(int64(1+rng.Intn(8)), 2))
				if err != nil {
					t.Fatal(err)
				}
				gm.Variant = variant
				g, err := graph.RandomConnectedGraph(n, n+rng.Intn(n), rng)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := Run(context.Background(), gm, g, Options{
					Kinds:     []Kind{RemoveKind, AddKind},
					Scheduler: sched,
					Rng:       rng,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !tr.Converged {
					t.Fatalf("scheduler %v variant %q did not converge", sched, variant)
				}
				if r := eq.Check(gm, g, eq.PS); !r.Stable {
					t.Fatalf("scheduler %v variant %q α=%s: fixed point fails PS check: %v",
						sched, variant, gm.Alpha, r.Witness)
				}
			}
		}
	}
}

// TestFullRecomputeOracleAgrees: the incremental engine and the evaluator
// oracle converge from the same starts to states the exact checker accepts,
// with histories of exact-equilibrium length bounds respected.
func TestFullRecomputeOracleAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(3)
		gm, _ := game.NewGame(n, game.AFrac(int64(1+rng.Intn(8)), 2))
		start, err := graph.RandomConnectedGraph(n, n+rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		kinds := []Kind{RemoveKind, AddKind, SwapKind}
		gInc := start.Clone()
		trInc, err := Run(context.Background(), gm, gInc, Options{Kinds: kinds, Rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatal(err)
		}
		gOrc := start.Clone()
		trOrc, err := Run(context.Background(), gm, gOrc, Options{Kinds: kinds, Rng: rand.New(rand.NewSource(int64(trial))), FullRecompute: true})
		if err != nil {
			t.Fatal(err)
		}
		if !trInc.Converged || !trOrc.Converged {
			t.Fatalf("convergence mismatch: inc=%v oracle=%v", trInc.Converged, trOrc.Converged)
		}
		for name, g := range map[string]*graph.Graph{"incremental": gInc, "oracle": gOrc} {
			if r := eq.CheckBGE(gm, g); !r.Stable {
				t.Fatalf("%s fixed point fails BGE check: %v", name, r.Witness)
			}
		}
	}
}

// TestScanZeroAllocs pins the allocation fix: a full candidate scan on a
// converged state — the steady-state cost of every convergence check —
// allocates nothing for the uniform and round-robin schedulers.
func TestScanZeroAllocs(t *testing.T) {
	gm, _ := game.NewGame(16, game.A(2))
	g := game.Star(16)
	rng := rand.New(rand.NewSource(1))
	for _, sched := range []Scheduler{SchedulerUniform, SchedulerRoundRobin} {
		eng := newEngine(gm, g, Options{Kinds: []Kind{RemoveKind, AddKind, SwapKind}, Scheduler: sched})
		if _, ok := eng.find(rng); ok {
			t.Fatal("star is not a fixed point?")
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, ok := eng.find(rng); ok {
				t.Fatal("star is not a fixed point?")
			}
		})
		if allocs != 0 {
			t.Fatalf("scheduler %v: %v allocs per converged scan, want 0", sched, allocs)
		}
	}
}

// TestHistoryPreallocated: Run does not grow the history one append at a
// time — a short run's history capacity arrives in one allocation.
func TestHistoryPreallocated(t *testing.T) {
	gm, _ := game.NewGame(8, game.A(3))
	rng := rand.New(rand.NewSource(21))
	g, err := graph.RandomConnectedGraph(8, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), gm, g, Options{Kinds: []Kind{RemoveKind, AddKind}, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if cap(tr.History) < 640 { // min(10·n², 1024) for n=8
		t.Fatalf("history capacity %d: not preallocated", cap(tr.History))
	}
}
