package dynamics

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
)

func TestStateGraphRoundTrip(t *testing.T) {
	for state := 0; state < 1<<6; state++ {
		g := stateToGraph(4, state)
		if graphToState(g) != state {
			t.Fatalf("state %d does not round-trip", state)
		}
	}
}

func TestAnalyzeStateGraphTooLarge(t *testing.T) {
	if _, err := AnalyzeStateGraph(context.Background(), 7, game.A(2), []Kind{AddKind}); err == nil {
		t.Fatal("n=7 state graph accepted")
	}
}

// The sinks of the {remove, add} state graph are exactly the PS states.
func TestStateGraphSinksArePS(t *testing.T) {
	alpha := game.A(2)
	res, err := AnalyzeStateGraph(context.Background(), 4, alpha, []Kind{RemoveKind, AddKind})
	if err != nil {
		t.Fatal(err)
	}
	gm, _ := game.NewGame(4, alpha)
	wantSinks := 0
	for state := 0; state < res.States; state++ {
		if eq.CheckPS(gm, stateToGraph(4, state)).Stable {
			wantSinks++
		}
	}
	if res.Sinks != wantSinks {
		t.Fatalf("sinks = %d, PS states = %d", res.Sinks, wantSinks)
	}
	if res.Sinks == 0 {
		t.Fatal("no PS states at α=2, impossible (star is PS)")
	}
}

// Improving moves strictly decrease the mover's cost, so any cycle would
// require costs to rise again: verify the analysis agrees with a direct
// run — when the state graph is acyclic, dynamics must converge from every
// start (spot-checked from all states at n=4).
func TestAcyclicMeansConvergent(t *testing.T) {
	alpha := game.AFrac(3, 2)
	res, err := AnalyzeStateGraph(context.Background(), 4, alpha, []Kind{RemoveKind, AddKind})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acyclic {
		// A cycle is a legitimate finding (see the DYN experiment), but
		// then the witness must be present.
		if res.CycleWitness == nil {
			t.Fatal("cyclic verdict without witness")
		}
		return
	}
	gm, _ := game.NewGame(4, alpha)
	rng := rand.New(rand.NewSource(71))
	for state := 0; state < res.States; state++ {
		g := stateToGraph(4, state)
		tr, err := Run(context.Background(), gm, g, Options{Kinds: []Kind{RemoveKind, AddKind}, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged {
			t.Fatalf("acyclic state graph but run from state %d did not converge", state)
		}
	}
}

func TestStateGraphWithSwaps(t *testing.T) {
	res, err := AnalyzeStateGraph(context.Background(), 4, game.A(3), []Kind{RemoveKind, AddKind, SwapKind})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 64 {
		t.Fatalf("states = %d, want 64", res.States)
	}
	gm, _ := game.NewGame(4, game.A(3))
	for state := 0; state < res.States; state++ {
		g := stateToGraph(4, state)
		// Sinks of the full move set are exactly BGE states.
		isSink := true
		for _, m := range collectMoves(g, Options{Kinds: []Kind{RemoveKind, AddKind, SwapKind}}) {
			if eq.Improving(gm, g, m) {
				isSink = false
				break
			}
		}
		if isSink != eq.CheckBGE(gm, g).Stable {
			t.Fatalf("sink/BGE mismatch at state %d: %s", state, g)
		}
	}
}
