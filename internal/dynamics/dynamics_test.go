package dynamics

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/eq"
	"repro/internal/game"
	"repro/internal/graph"
)

func TestRunValidation(t *testing.T) {
	gm, _ := game.NewGame(4, game.A(2))
	g := game.Star(4)
	if _, err := Run(context.Background(), gm, g, Options{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("empty kinds accepted")
	}
}

// TestNilRngDefaultsDeterministically: the zero-value Options (nil Rng) is
// usable and reproducible — two identical runs apply the same move history.
func TestNilRngDefaultsDeterministically(t *testing.T) {
	gm, _ := game.NewGame(7, game.A(3))
	run := func() (Trace, *graph.Graph) {
		rng := rand.New(rand.NewSource(99))
		g, err := graph.RandomConnectedGraph(7, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Run(context.Background(), gm, g, Options{Kinds: []Kind{RemoveKind, AddKind}})
		if err != nil {
			t.Fatal(err)
		}
		return tr, g
	}
	tr1, g1 := run()
	tr2, g2 := run()
	if !tr1.Converged {
		t.Fatalf("nil-Rng run did not converge: %+v", tr1)
	}
	if tr1.Steps != tr2.Steps || len(tr1.History) != len(tr2.History) {
		t.Fatalf("nil-Rng runs diverge: %d vs %d steps", tr1.Steps, tr2.Steps)
	}
	for i := range tr1.History {
		if tr1.History[i] != tr2.History[i] {
			t.Fatalf("nil-Rng histories diverge at move %d: %v vs %v", i, tr1.History[i], tr2.History[i])
		}
	}
	if !g1.Equal(g2) {
		t.Fatalf("nil-Rng final states differ: %s vs %s", g1, g2)
	}
}

// TestSampleNilRng: the zero-value Options works for Sample too, and the
// default stream is materialized once (samples are not replays of the
// first draw).
func TestSampleNilRng(t *testing.T) {
	gm, _ := game.NewGame(6, game.A(2))
	st, err := Sample(context.Background(), gm, 6, 5, Options{Kinds: []Kind{RemoveKind, AddKind}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 5 || st.Converged != 5 {
		t.Fatalf("nil-Rng sample stats: %+v", st)
	}
}

// TestRunCancelled: a cancelled context stops the dynamics before any move
// and surfaces ctx.Err() with the partial trace.
func TestRunCancelled(t *testing.T) {
	gm, _ := game.NewGame(8, game.A(3))
	rng := rand.New(rand.NewSource(7))
	g, err := graph.RandomConnectedGraph(8, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := Run(ctx, gm, g, Options{Kinds: []Kind{RemoveKind, AddKind}, Rng: rng})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tr.Steps != 0 || tr.Converged {
		t.Fatalf("pre-cancelled run should stop immediately: %+v", tr)
	}
	if _, err := Sample(ctx, gm, 8, 3, Options{Kinds: []Kind{RemoveKind, AddKind}, Rng: rng}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sample err = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeStateGraph(ctx, 4, game.A(2), []Kind{RemoveKind, AddKind}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeStateGraph err = %v, want context.Canceled", err)
	}
}

func TestStarIsFixedPoint(t *testing.T) {
	gm, _ := game.NewGame(6, game.A(2))
	g := game.Star(6)
	tr, err := Run(context.Background(), gm, g, Options{
		Kinds: []Kind{RemoveKind, AddKind, SwapKind},
		Rng:   rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged || tr.Steps != 0 {
		t.Fatalf("star should be an immediate fixed point: %+v", tr)
	}
}

// TestFixedPointsAreEquilibria: whatever graph the dynamics stop on passes
// the exact checker matching the move set.
func TestFixedPointsAreEquilibria(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(4)
		gm, _ := game.NewGame(n, game.AFrac(int64(2+rng.Intn(10)), 2))
		g, err := graph.RandomConnectedGraph(n, n+rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		psOnly := rng.Intn(2) == 0
		kinds := []Kind{RemoveKind, AddKind}
		if !psOnly {
			kinds = append(kinds, SwapKind)
		}
		tr, err := Run(context.Background(), gm, g, Options{Kinds: kinds, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Converged {
			t.Fatalf("dynamics did not converge in %d steps (α=%s)", tr.Steps, gm.Alpha)
		}
		if psOnly {
			if r := eq.CheckPS(gm, g); !r.Stable {
				t.Fatalf("PS fixed point fails exact check: %v", r.Witness)
			}
		} else if r := eq.CheckBGE(gm, g); !r.Stable {
			t.Fatalf("BGE fixed point fails exact check: %v", r.Witness)
		}
	}
}

func TestHistoryMatchesSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gm, _ := game.NewGame(8, game.A(3))
	g, err := graph.RandomConnectedGraph(8, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), gm, g, Options{Kinds: []Kind{RemoveKind, AddKind}, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.History) != tr.Steps {
		t.Fatalf("history length %d != steps %d", len(tr.History), tr.Steps)
	}
}

func TestSampleSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gm, _ := game.NewGame(8, game.A(2))
	st, err := Sample(context.Background(), gm, 8, 10, Options{Kinds: []Kind{RemoveKind, AddKind}, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 10 || st.Converged != 10 {
		t.Fatalf("sample stats: %+v", st)
	}
	if st.MeanRho < 1 || st.WorstRho < st.MeanRho {
		t.Fatalf("implausible ρ stats: %+v", st)
	}
}

// TestDynamicsKeepConnectivity: improving moves never disconnect the graph
// (disconnection is lexicographically catastrophic for the mover).
func TestDynamicsKeepConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 7
		gm, _ := game.NewGame(n, game.AFrac(int64(1+rng.Intn(8)), 2))
		g, err := graph.RandomConnectedGraph(n, n+2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), gm, g, Options{Kinds: []Kind{RemoveKind, AddKind, SwapKind}, Rng: rng}); err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("dynamics disconnected the graph: %s", g)
		}
	}
}
