package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// goldenRegistry builds a registry exercising every instrument kind with
// values whose float renderings are exact.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_ops_total", "Ops.").Add(3)
	cv := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	cv.With("/v1/check", "200").Add(2)
	cv.With("weird\"\\\n", "500").Inc()
	r.GaugeFunc("test_temp", "Temp.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)
	hv := r.HistogramVec("test_route_seconds", "Per-route.", []float64{1}, "route")
	hv.With("/v1/check").Observe(0.5)
	hv.With("/empty") // never observed: omitted from the exposition
	r.Histogram("test_unused_seconds", "Unused.", []float64{1})
	return r
}

// TestExpositionGolden pins the byte-exact text rendering: family order
// is registration order, sample order is sorted label order, label
// values escape \\, \" and \n, le bounds render through formatFloat, and
// observation-less histograms emit only their HELP/TYPE header.
func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	goldenRegistry().WriteText(&b)
	want := `# HELP test_ops_total Ops.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{route="/v1/check",code="200"} 2
test_requests_total{route="weird\"\\\n",code="500"} 1
# HELP test_temp Temp.
# TYPE test_temp gauge
test_temp 1.5
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.5"} 2
test_latency_seconds_bucket{le="2"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 4.75
test_latency_seconds_count 3
# HELP test_route_seconds Per-route.
# TYPE test_route_seconds histogram
test_route_seconds_bucket{route="/v1/check",le="1"} 1
test_route_seconds_bucket{route="/v1/check",le="+Inf"} 1
test_route_seconds_sum{route="/v1/check"} 0.5
test_route_seconds_count{route="/v1/check"} 1
# HELP test_unused_seconds Unused.
# TYPE test_unused_seconds histogram
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestLintAcceptsOwnOutput: the format linter must pass everything the
// writer produces — the round-trip that keeps the two halves honest.
func TestLintAcceptsOwnOutput(t *testing.T) {
	var b strings.Builder
	goldenRegistry().WriteText(&b)
	if err := LintExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("linter rejects the writer's own output: %v", err)
	}
}

// TestLintRejects feeds the linter hand-broken expositions, one per
// validation rule.
func TestLintRejects(t *testing.T) {
	const histHeader = "# HELP h H.\n# TYPE h histogram\n"
	cases := []struct {
		name, content, wantErr string
	}{
		{"sample without TYPE", "foo 1\n", "without TYPE declaration"},
		{"invalid metric name", "# HELP 0bad x\n", "invalid metric name"},
		{"unknown TYPE", "# HELP f F.\n# TYPE f widget\n", "unknown TYPE"},
		{"duplicate TYPE", "# TYPE f counter\n# TYPE f counter\n", "duplicate TYPE"},
		{"conflicting TYPE", "# TYPE f counter\n# TYPE f gauge\n", "conflicting TYPE"},
		{"HELP after samples", "# TYPE f counter\nf 1\n# HELP f F.\n", "after its samples"},
		{"negative counter", "# TYPE f counter\nf -1\n", "negative counter"},
		{"invalid label name", "# TYPE f counter\nf{0bad=\"x\"} 1\n", "invalid label name"},
		{"duplicate label", "# TYPE f counter\nf{a=\"x\",a=\"y\"} 1\n", "duplicate label"},
		{"unquoted label value", "# TYPE f counter\nf{a=x} 1\n", "unquoted label value"},
		{"bad escape", "# TYPE f counter\nf{a=\"\\t\"} 1\n", "bad escape"},
		{"unparseable value", "# TYPE f counter\nf zero\n", "unparseable value"},
		{"bare histogram sample", histHeader + "h 1\n", "without _bucket/_sum/_count"},
		{"bucket without le", histHeader + "h_bucket{x=\"1\"} 1\n", "without le label"},
		{"le not last", histHeader + "h_bucket{le=\"1\",x=\"2\"} 1\n", "le must be the last label"},
		{"non-integral bucket", histHeader + "h_bucket{le=\"1\"} 1.5\n", "non-integral bucket count"},
		{"bucket after +Inf", histHeader + "h_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"2\"} 1\n", "bucket after +Inf"},
		{"le not increasing", histHeader + "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "not strictly increasing"},
		{"not cumulative", histHeader + "h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "not cumulative"},
		{"missing +Inf", histHeader + "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf bucket"},
		{"count mismatch", histHeader + "h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "_count 3 != +Inf bucket 2"},
		{"missing _sum", histHeader + "h_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"missing _count", histHeader + "h_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintExposition(strings.NewReader(tc.content))
			if err == nil {
				t.Fatalf("lint passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "D.")
	mustPanic("duplicate name", func() { r.Counter("dup_total", "D.") })
	mustPanic("invalid name", func() { r.Counter("0bad", "B.") })
	mustPanic("invalid label", func() { r.CounterVec("v_total", "V.", "0bad") })
	mustPanic("colon label", func() { r.CounterVec("w_total", "W.", "a:b") })
	mustPanic("bad bounds", func() { r.Histogram("h_seconds", "H.", []float64{2, 1}) })
}

// TestCounterVecConcurrent increments children from many goroutines
// while scraping — run under -race, this pins the locking discipline.
func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("conc_total", "C.", "g")
	h := r.Histogram("conc_seconds", "H.", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cv.With(strings.Repeat("g", g%2+1)).Inc()
				h.Observe(float64(i % 2))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.WriteText(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	var b strings.Builder
	r.WriteText(&b)
	if err := LintExposition(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	var total int64
	cv.Each(func(_ []string, n int64) { total += n })
	if total != 4000 {
		t.Fatalf("counter total = %d, want 4000", total)
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}

// TestComputeMetricsExposition drives every compute-plane instrument and
// lints the resulting sidecar exposition.
func TestComputeMetricsExposition(t *testing.T) {
	m := NewComputeMetrics()
	m.ClassDone(false)
	m.ClassDone(true)
	m.CertifyObserved(3 * time.Millisecond)
	m.CertifyObserved(2 * time.Second)
	m.LeaseHeld(4, time.Now().Add(30*time.Second), true)
	m.LeaseRenewed(time.Now().Add(30 * time.Second))
	m.LeaseDone(false)
	m.LeaseDone(true)
	m.BindCacheStats(func() (int, int, int64, int64) { return 10, 4, 100, 7 })
	m.BindStoreStats(func() (int64, int64, int64, int) { return 2048, 1, 4096, 3 })

	var b strings.Builder
	m.Registry.WriteText(&b)
	text := b.String()
	if err := LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("sidecar exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"bncg_sweep_classes_total 2",
		"bncg_sweep_classes_cached_total 1",
		"bncg_certify_duration_seconds_count 2",
		"bncg_worker_ranges_total 1",
		"bncg_worker_steals_total 1",
		"bncg_worker_leases_lost_total 1",
		"bncg_lease_epoch 0", // cleared by LeaseDone
		"bncg_cache_entries{kind=\"verdict\"} 10",
		"bncg_cache_entries{kind=\"certificate\"} 4",
		"bncg_cache_hits_total 100",
		"bncg_cache_misses_total 7",
		"bncg_store_flushed_bytes_total 2048",
		"bncg_store_flush_failures_total 1",
		"bncg_store_disk_bytes 4096",
		"bncg_store_pending_records 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Nil-safety: every recording method must be a no-op on nil.
	var nilM *ComputeMetrics
	nilM.ClassDone(true)
	nilM.CertifyObserved(time.Second)
	nilM.LeaseHeld(1, time.Time{}, false)
	nilM.LeaseRenewed(time.Time{})
	nilM.LeaseDone(false)
	nilM.BindCacheStats(nil)
	nilM.BindStoreStats(nil)
}

// TestSidecar boots the sidecar on an ephemeral port and scrapes both
// /metrics (linted) and /debug/pprof.
func TestSidecar(t *testing.T) {
	m := NewComputeMetrics()
	m.ClassDone(false)
	s, err := StartSidecar("127.0.0.1:0", m.Registry, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if err := LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("sidecar /metrics fails lint: %v", err)
	}
	if !strings.Contains(body, "bncg_sweep_classes_total 1") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	resp, body = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
	if body == "" {
		t.Fatal("pprof cmdline empty")
	}

	// Without -pprof the sidecar must not expose the profiler.
	s2, err := StartSidecar("127.0.0.1:0", NewRegistry(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	resp2, err := http.Get("http://" + s2.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status = %d, want 404", resp2.StatusCode)
	}
}
