package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// TraceSpan is one parsed span frame.
type TraceSpan struct {
	Source  string `json:"source"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   Attrs  `json:"attrs,omitempty"`
}

// TraceEvent is one parsed event frame.
type TraceEvent struct {
	Source string `json:"source"`
	Name   string `json:"name"`
	AtUS   int64  `json:"at_us"`
	Attrs  Attrs  `json:"attrs,omitempty"`
}

// Trace is the merged content of one or more trace files.
type Trace struct {
	Sources []string
	Spans   []TraceSpan
	Events  []TraceEvent
}

type rawFrame struct {
	Type    string          `json:"type"`
	V       *int            `json:"v"`
	Name    string          `json:"name"`
	Source  *string         `json:"source"`
	StartUS *int64          `json:"start_us"`
	DurUS   *int64          `json:"dur_us"`
	AtUS    *int64          `json:"at_us"`
	Attrs   Attrs           `json:"attrs"`
	Extra   json.RawMessage `json:"-"`
}

// ReadTrace parses one NDJSON trace stream. Parsing is strict — an
// unknown frame type, a missing required field, or malformed JSON is an
// error naming the offending line — so the nightly schema gate fails
// loudly instead of silently skipping frames. name identifies the
// stream in error messages.
func ReadTrace(r io.Reader, name string) (*Trace, error) {
	tr := &Trace{}
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f rawFrame
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		// DisallowUnknownFields needs a struct with every legal field;
		// rawFrame has exactly the schema's fields, so any extra key in
		// the input is a schema violation.
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("%s:%d: bad frame: %v", name, lineno, err)
		}
		if f.Source == nil {
			return nil, fmt.Errorf("%s:%d: frame missing source", name, lineno)
		}
		src := *f.Source
		switch f.Type {
		case "header":
			if f.V == nil || *f.V != TraceVersion {
				return nil, fmt.Errorf("%s:%d: unsupported trace version", name, lineno)
			}
			if f.StartUS == nil {
				return nil, fmt.Errorf("%s:%d: header missing start_us", name, lineno)
			}
			sawHeader = true
		case "span":
			if !sawHeader {
				return nil, fmt.Errorf("%s:%d: span before header", name, lineno)
			}
			if f.Name == "" || f.StartUS == nil || f.DurUS == nil {
				return nil, fmt.Errorf("%s:%d: span missing name/start_us/dur_us", name, lineno)
			}
			if *f.DurUS < 0 {
				return nil, fmt.Errorf("%s:%d: span with negative dur_us", name, lineno)
			}
			tr.Spans = append(tr.Spans, TraceSpan{Source: src, Name: f.Name, StartUS: *f.StartUS, DurUS: *f.DurUS, Attrs: f.Attrs})
		case "event":
			if !sawHeader {
				return nil, fmt.Errorf("%s:%d: event before header", name, lineno)
			}
			if f.Name == "" || f.AtUS == nil {
				return nil, fmt.Errorf("%s:%d: event missing name/at_us", name, lineno)
			}
			tr.Events = append(tr.Events, TraceEvent{Source: src, Name: f.Name, AtUS: *f.AtUS, Attrs: f.Attrs})
		default:
			return nil, fmt.Errorf("%s:%d: unknown frame type %q", name, lineno, f.Type)
		}
		if !seen[src] {
			seen[src] = true
			tr.Sources = append(tr.Sources, src)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if lineno == 0 {
		return nil, fmt.Errorf("%s: empty trace", name)
	}
	sort.Strings(tr.Sources)
	return tr, nil
}

// ReadTraceFiles parses and merges trace files (e.g. the per-worker
// shard traces of one fleet run) into a single Trace on the shared
// wall clock.
func ReadTraceFiles(paths ...string) (*Trace, error) {
	merged := &Trace{}
	seen := make(map[string]bool)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		tr, err := ReadTrace(f, p)
		f.Close()
		if err != nil {
			return nil, err
		}
		merged.Spans = append(merged.Spans, tr.Spans...)
		merged.Events = append(merged.Events, tr.Events...)
		for _, s := range tr.Sources {
			if !seen[s] {
				seen[s] = true
				merged.Sources = append(merged.Sources, s)
			}
		}
	}
	sort.Strings(merged.Sources)
	return merged, nil
}

// StageStat aggregates all spans sharing a name. Totals are inclusive:
// a nested stage (certify inside class inside range) also counts inside
// its ancestors, so stage totals are compared against wall-clock
// individually, not summed.
type StageStat struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	TotalUS   int64   `json:"total_us"`
	MinUS     int64   `json:"min_us"`
	MaxUS     int64   `json:"max_us"`
	WallShare float64 `json:"wall_share"`
}

// ConceptDur is one concept's certify time within a class.
type ConceptDur struct {
	Concept string `json:"concept"`
	DurUS   int64  `json:"dur_us"`
}

// ClassStat is one (slow) class span with its per-concept breakdown.
type ClassStat struct {
	Class    int64        `json:"class"`
	Source   string       `json:"source"`
	DurUS    int64        `json:"dur_us"`
	Cached   bool         `json:"cached"`
	Concepts []ConceptDur `json:"concepts,omitempty"`
}

// Lane is one source's row in the fleet timeline.
type Lane struct {
	Source  string `json:"source"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
	// BusyUS is the union of all span intervals in the lane (nested and
	// overlapping spans count once).
	BusyUS int64 `json:"busy_us"`
	// Coverage is BusyUS over the lane's own wall-clock extent.
	Coverage float64 `json:"coverage"`
	Spans    int     `json:"spans"`
	Steals   int     `json:"steals"`
	// Bar is the rendered text lane: '#' covered, '.' idle, 'S' steal.
	Bar string `json:"bar"`
}

// Report is the analyzer output behind `bncg trace`.
type Report struct {
	// SchemaVersion is the public JSON payload generation stamp; the
	// caller (bncg trace) sets it — obs cannot import the canonical
	// constant without inverting the dependency on sweep.
	SchemaVersion int         `json:"schema_version"`
	Files         int         `json:"files"`
	Sources       []string    `json:"sources"`
	Spans         int         `json:"spans"`
	Events        int         `json:"events"`
	StartUS       int64       `json:"start_us"`
	EndUS         int64       `json:"end_us"`
	WallUS        int64       `json:"wall_us"`
	Stages        []StageStat `json:"stages"`
	Slowest       []ClassStat `json:"slowest_classes,omitempty"`
	Lanes         []Lane      `json:"lanes"`
	Coverage      float64     `json:"coverage"`
}

func attrInt(a Attrs, key string) (int64, bool) {
	switch v := a[key].(type) {
	case float64:
		return int64(v), true
	case int64:
		return v, true
	case int:
		return int64(v), true
	}
	return 0, false
}

func attrBool(a Attrs, key string) bool {
	b, _ := a[key].(bool)
	return b
}

const laneWidth = 64

// Analyze aggregates a merged trace into a Report. topK bounds the
// slowest-classes table (0 disables it).
func Analyze(tr *Trace, topK int) *Report {
	rep := &Report{
		Sources: append([]string(nil), tr.Sources...),
		Spans:   len(tr.Spans),
		Events:  len(tr.Events),
	}
	if len(tr.Spans) == 0 {
		return rep
	}

	// Global extent.
	rep.StartUS = math.MaxInt64
	for _, s := range tr.Spans {
		if s.StartUS < rep.StartUS {
			rep.StartUS = s.StartUS
		}
		if end := s.StartUS + s.DurUS; end > rep.EndUS {
			rep.EndUS = end
		}
	}
	rep.WallUS = rep.EndUS - rep.StartUS

	// Stage breakdown.
	stages := make(map[string]*StageStat)
	for _, s := range tr.Spans {
		st := stages[s.Name]
		if st == nil {
			st = &StageStat{Name: s.Name, MinUS: math.MaxInt64}
			stages[s.Name] = st
		}
		st.Count++
		st.TotalUS += s.DurUS
		if s.DurUS < st.MinUS {
			st.MinUS = s.DurUS
		}
		if s.DurUS > st.MaxUS {
			st.MaxUS = s.DurUS
		}
	}
	for _, st := range stages {
		if rep.WallUS > 0 {
			st.WallShare = float64(st.TotalUS) / float64(rep.WallUS)
		}
		rep.Stages = append(rep.Stages, *st)
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		a, b := rep.Stages[i], rep.Stages[j]
		if a.TotalUS != b.TotalUS {
			return a.TotalUS > b.TotalUS
		}
		return a.Name < b.Name
	})

	// Slowest classes with per-concept certify breakdowns.
	if topK > 0 {
		type classKey struct {
			source string
			class  int64
		}
		certs := make(map[classKey][]ConceptDur)
		for _, s := range tr.Spans {
			if s.Name != "certify" {
				continue
			}
			if class, ok := attrInt(s.Attrs, "class"); ok {
				concept, _ := s.Attrs["concept"].(string)
				k := classKey{s.Source, class}
				certs[k] = append(certs[k], ConceptDur{Concept: concept, DurUS: s.DurUS})
			}
		}
		for _, s := range tr.Spans {
			if s.Name != "class" {
				continue
			}
			class, ok := attrInt(s.Attrs, "class")
			if !ok {
				continue
			}
			cs := certs[classKey{s.Source, class}]
			sort.Slice(cs, func(i, j int) bool { return cs[i].DurUS > cs[j].DurUS })
			rep.Slowest = append(rep.Slowest, ClassStat{
				Class:    class,
				Source:   s.Source,
				DurUS:    s.DurUS,
				Cached:   attrBool(s.Attrs, "cached"),
				Concepts: cs,
			})
		}
		sort.Slice(rep.Slowest, func(i, j int) bool {
			a, b := rep.Slowest[i], rep.Slowest[j]
			if a.DurUS != b.DurUS {
				return a.DurUS > b.DurUS
			}
			if a.Class != b.Class {
				return a.Class < b.Class
			}
			return a.Source < b.Source
		})
		if len(rep.Slowest) > topK {
			rep.Slowest = rep.Slowest[:topK]
		}
	}

	// Per-source lanes: union of span intervals vs the lane's extent.
	bySource := make(map[string][]interval)
	spanCount := make(map[string]int)
	for _, s := range tr.Spans {
		bySource[s.Source] = append(bySource[s.Source], interval{s.StartUS, s.StartUS + s.DurUS})
		spanCount[s.Source]++
	}
	steals := make(map[string][]int64)
	for _, e := range tr.Events {
		if e.Name == "steal" {
			steals[e.Source] = append(steals[e.Source], e.AtUS)
		}
	}
	var totalBusy, totalWall int64
	for _, src := range rep.Sources {
		ivs := bySource[src]
		if len(ivs) == 0 {
			continue
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
		lane := Lane{Source: src, StartUS: ivs[0].a, EndUS: ivs[0].b, Spans: spanCount[src], Steals: len(steals[src])}
		var busy int64
		curA, curB := ivs[0].a, ivs[0].b
		for _, v := range ivs[1:] {
			if v.b > lane.EndUS {
				lane.EndUS = v.b
			}
			if v.a > curB {
				busy += curB - curA
				curA, curB = v.a, v.b
			} else if v.b > curB {
				curB = v.b
			}
		}
		busy += curB - curA
		lane.BusyUS = busy
		if wall := lane.EndUS - lane.StartUS; wall > 0 {
			lane.Coverage = float64(busy) / float64(wall)
			totalBusy += busy
			totalWall += wall
		} else {
			lane.Coverage = 1
		}
		lane.Bar = renderBar(ivs, steals[src], rep.StartUS, rep.EndUS)
		rep.Lanes = append(rep.Lanes, lane)
	}
	if totalWall > 0 {
		rep.Coverage = float64(totalBusy) / float64(totalWall)
	}
	return rep
}

type interval struct{ a, b int64 }

// renderBar draws one lane scaled to the global [start,end) extent:
// '#' where any span covers the cell, '.' idle, 'S' where a steal
// event lands.
func renderBar(ivs []interval, steals []int64, start, end int64) string {
	if end <= start {
		return ""
	}
	cells := make([]byte, laneWidth)
	for i := range cells {
		cells[i] = '.'
	}
	scale := func(t int64) int {
		i := int((t - start) * laneWidth / (end - start))
		if i < 0 {
			i = 0
		}
		if i >= laneWidth {
			i = laneWidth - 1
		}
		return i
	}
	for _, v := range ivs {
		for i := scale(v.a); i <= scale(v.b-1) && i < laneWidth; i++ {
			cells[i] = '#'
		}
	}
	for _, at := range steals {
		cells[scale(at)] = 'S'
	}
	return string(cells)
}

func fmtUS(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// Text renders the human-readable report.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d source(s), %d spans, %d events, wall %s\n",
		len(r.Sources), r.Spans, r.Events, fmtUS(r.WallUS))
	if len(r.Stages) > 0 {
		fmt.Fprintf(&b, "\n%-14s %8s %10s %10s %10s %10s %7s\n", "stage", "count", "total", "min", "avg", "max", "%wall")
		for _, st := range r.Stages {
			avg := int64(0)
			if st.Count > 0 {
				avg = st.TotalUS / int64(st.Count)
			}
			fmt.Fprintf(&b, "%-14s %8d %10s %10s %10s %10s %6.1f%%\n",
				st.Name, st.Count, fmtUS(st.TotalUS), fmtUS(st.MinUS), fmtUS(avg), fmtUS(st.MaxUS), st.WallShare*100)
		}
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(&b, "\nslowest classes:\n")
		for _, c := range r.Slowest {
			fmt.Fprintf(&b, "  class %-6d %8s  (%s", c.Class, fmtUS(c.DurUS), c.Source)
			if c.Cached {
				b.WriteString(", cached")
			}
			b.WriteString(")")
			for i, cd := range c.Concepts {
				if i >= 3 {
					fmt.Fprintf(&b, " +%d more", len(c.Concepts)-i)
					break
				}
				sep := "  "
				if i > 0 {
					sep = ", "
				}
				fmt.Fprintf(&b, "%s%s %s", sep, cd.Concept, fmtUS(cd.DurUS))
			}
			b.WriteString("\n")
		}
	}
	if len(r.Lanes) > 0 {
		fmt.Fprintf(&b, "\ntimeline ('#' busy, '.' idle, 'S' steal):\n")
		for _, l := range r.Lanes {
			fmt.Fprintf(&b, "  %-10s |%s| %5.1f%% busy, %d spans", l.Source, l.Bar, l.Coverage*100, l.Spans)
			if l.Steals > 0 {
				fmt.Fprintf(&b, ", %d steal(s)", l.Steals)
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "coverage: %.1f%% of wall-clock accounted across stages\n", r.Coverage*100)
	}
	return b.String()
}
