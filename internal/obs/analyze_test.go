package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const headerLine = `{"type":"header","v":1,"source":"w1","start_us":0}` + "\n"

// TestReadTraceStrict: the parser is the nightly schema gate, so every
// malformed stream must be a loud error naming the offending line — never
// a silently skipped frame.
func TestReadTraceStrict(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantErr string
	}{
		{"empty file", "", "empty trace"},
		{"garbage line", headerLine + "not json\n", ":2: bad frame"},
		{"unknown field", headerLine + `{"type":"span","name":"s","source":"w1","start_us":1,"dur_us":1,"bogus":1}` + "\n", "bad frame"},
		{"unknown frame type", headerLine + `{"type":"metric","name":"s","source":"w1","start_us":1}` + "\n", `unknown frame type "metric"`},
		{"span before header", `{"type":"span","name":"s","source":"w1","start_us":1,"dur_us":1}` + "\n", "span before header"},
		{"event before header", `{"type":"event","name":"e","source":"w1","at_us":1}` + "\n", "event before header"},
		{"future version", `{"type":"header","v":2,"source":"w1","start_us":0}` + "\n", "unsupported trace version"},
		{"missing source", `{"type":"header","v":1,"start_us":0}` + "\n", "missing source"},
		{"span missing dur", headerLine + `{"type":"span","name":"s","source":"w1","start_us":1}` + "\n", "span missing"},
		{"negative dur", headerLine + `{"type":"span","name":"s","source":"w1","start_us":1,"dur_us":-5}` + "\n", "negative dur_us"},
		{"event missing at", headerLine + `{"type":"event","name":"e","source":"w1"}` + "\n", "event missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.content), "in")
			if err == nil {
				t.Fatalf("parsed without error, want %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadTraceRoundTrip: a stream a Tracer wrote parses back to the same
// spans and events.
func TestReadTraceRoundTrip(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader(headerLine+
		`{"type":"span","name":"certify","source":"w1","start_us":10,"dur_us":5,"attrs":{"class":3,"concept":"PS"}}`+"\n"+
		`{"type":"event","name":"steal","source":"w1","at_us":20,"attrs":{"epoch":2}}`+"\n"), "in")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 || len(tr.Events) != 1 {
		t.Fatalf("parsed %d spans / %d events, want 1 / 1", len(tr.Spans), len(tr.Events))
	}
	s := tr.Spans[0]
	if s.Name != "certify" || s.Source != "w1" || s.StartUS != 10 || s.DurUS != 5 {
		t.Fatalf("span = %+v", s)
	}
	if class, ok := attrInt(s.Attrs, "class"); !ok || class != 3 {
		t.Fatalf("class attr = %v", s.Attrs["class"])
	}
	if tr.Events[0].AtUS != 20 {
		t.Fatalf("event = %+v", tr.Events[0])
	}
}

// syntheticFleetTrace is two worker lanes over a 1000µs window:
//   - w1 busy [0,1000) via one range span, two class spans with certify
//     children, and a steal at 500.
//   - w2 busy only [0,500): coverage 1 over its own extent but half the
//     global wall.
func syntheticFleetTrace(t *testing.T) *Trace {
	t.Helper()
	w1 := writeTrace(t, "w1.trace", headerLine+
		`{"type":"span","name":"range","source":"w1","start_us":0,"dur_us":1000,"attrs":{"start":0,"end":2}}`+"\n"+
		`{"type":"span","name":"class","source":"w1","start_us":0,"dur_us":400,"attrs":{"class":0,"worker":0}}`+"\n"+
		`{"type":"span","name":"certify","source":"w1","start_us":0,"dur_us":300,"attrs":{"class":0,"concept":"PS"}}`+"\n"+
		`{"type":"span","name":"certify","source":"w1","start_us":300,"dur_us":100,"attrs":{"class":0,"concept":"NE"}}`+"\n"+
		`{"type":"span","name":"class","source":"w1","start_us":400,"dur_us":600,"attrs":{"class":1,"cached":true,"worker":0}}`+"\n"+
		`{"type":"event","name":"steal","source":"w1","at_us":500,"attrs":{"start":0,"end":2,"epoch":2}}`+"\n")
	w2 := writeTrace(t, "w2.trace",
		`{"type":"header","v":1,"source":"w2","start_us":0}`+"\n"+
			`{"type":"span","name":"wait","source":"w2","start_us":0,"dur_us":500}`+"\n")
	tr, err := ReadTraceFiles(w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeSyntheticFleet(t *testing.T) {
	rep := Analyze(syntheticFleetTrace(t), 10)

	if rep.WallUS != 1000 || rep.StartUS != 0 || rep.EndUS != 1000 {
		t.Fatalf("extent = [%d,%d) wall %d, want [0,1000)", rep.StartUS, rep.EndUS, rep.WallUS)
	}
	if got := strings.Join(rep.Sources, ","); got != "w1,w2" {
		t.Fatalf("sources = %q", got)
	}

	// Stages sort by inclusive total, descending.
	if rep.Stages[0].Name != "class" || rep.Stages[0].TotalUS != 1000 {
		t.Fatalf("top stage = %+v, want class/1000", rep.Stages[0])
	}
	byName := map[string]StageStat{}
	for _, st := range rep.Stages {
		byName[st.Name] = st
	}
	if cs := byName["certify"]; cs.Count != 2 || cs.TotalUS != 400 || cs.MinUS != 100 || cs.MaxUS != 300 {
		t.Fatalf("certify stage = %+v", cs)
	}
	if rs := byName["range"]; rs.WallShare != 1.0 {
		t.Fatalf("range wall share = %v, want 1", rs.WallShare)
	}

	// Slowest classes join class spans with their certify children by
	// (source, class), concepts sorted slowest-first.
	if len(rep.Slowest) != 2 {
		t.Fatalf("slowest = %+v, want 2 classes", rep.Slowest)
	}
	if c := rep.Slowest[0]; c.Class != 1 || !c.Cached || c.DurUS != 600 || len(c.Concepts) != 0 {
		t.Fatalf("slowest[0] = %+v, want cached class 1", c)
	}
	if c := rep.Slowest[1]; c.Class != 0 || len(c.Concepts) != 2 ||
		c.Concepts[0] != (ConceptDur{"PS", 300}) || c.Concepts[1] != (ConceptDur{"NE", 100}) {
		t.Fatalf("slowest[1] = %+v, want class 0 with PS 300, NE 100", c)
	}

	// Lanes: w1 fully busy, w2 busy for its own 500µs extent. The overall
	// coverage weighs lanes by their extents: (1000+500)/(1000+500) = 1.
	if len(rep.Lanes) != 2 {
		t.Fatalf("lanes = %+v", rep.Lanes)
	}
	w1 := rep.Lanes[0]
	if w1.Source != "w1" || w1.BusyUS != 1000 || w1.Coverage != 1.0 || w1.Steals != 1 {
		t.Fatalf("w1 lane = %+v", w1)
	}
	if !strings.Contains(w1.Bar, "S") || strings.Contains(w1.Bar, ".") {
		t.Fatalf("w1 bar = %q, want fully busy with a steal mark", w1.Bar)
	}
	w2 := rep.Lanes[1]
	if w2.BusyUS != 500 || w2.Coverage != 1.0 {
		t.Fatalf("w2 lane = %+v", w2)
	}
	// w2's bar spans the global extent, so its second half is idle.
	if !strings.HasSuffix(w2.Bar, strings.Repeat(".", laneWidth/2)) {
		t.Fatalf("w2 bar = %q, want trailing idle half", w2.Bar)
	}
	if rep.Coverage != 1.0 {
		t.Fatalf("coverage = %v, want 1", rep.Coverage)
	}
}

// TestAnalyzeBusyUnion: nested and overlapping spans must count once in a
// lane's busy time, and gaps must subtract from coverage.
func TestAnalyzeBusyUnion(t *testing.T) {
	path := writeTrace(t, "u.trace", headerLine+
		`{"type":"span","name":"outer","source":"w1","start_us":0,"dur_us":400}`+"\n"+
		`{"type":"span","name":"inner","source":"w1","start_us":100,"dur_us":100}`+"\n"+
		`{"type":"span","name":"late","source":"w1","start_us":600,"dur_us":400}`+"\n")
	tr, err := ReadTraceFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(tr, 0)
	lane := rep.Lanes[0]
	if lane.BusyUS != 800 {
		t.Fatalf("busy = %d, want 800 (union, not 900)", lane.BusyUS)
	}
	if lane.Coverage != 0.8 || rep.Coverage != 0.8 {
		t.Fatalf("coverage = %v / %v, want 0.8", lane.Coverage, rep.Coverage)
	}
	if rep.Slowest != nil {
		t.Fatalf("topK=0 still produced slowest classes: %+v", rep.Slowest)
	}
}

func TestAnalyzeEmptySpans(t *testing.T) {
	rep := Analyze(&Trace{Sources: []string{"w1"}}, 5)
	if rep.WallUS != 0 || len(rep.Lanes) != 0 || rep.Coverage != 0 {
		t.Fatalf("empty trace report = %+v", rep)
	}
}

// TestReportText spot-checks the human rendering the docs quote.
func TestReportText(t *testing.T) {
	text := Analyze(syntheticFleetTrace(t), 10).Text()
	for _, want := range []string{
		"trace: 2 source(s), 6 spans, 1 events, wall 1.00ms",
		"stage",
		"class",
		"slowest classes:",
		"class 1",
		"(w1, cached)",
		"PS 300µs",
		"timeline ('#' busy, '.' idle, 'S' steal):",
		"coverage: 100.0% of wall-clock accounted across stages",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
}
