// Package obs is the zero-dependency observability layer of the compute
// plane: a hand-rolled Prometheus registry (the serving daemon's /metrics
// writer, extracted here so sweep and fleet workers expose the same text
// exposition on a sidecar listener), an append-only NDJSON span tracer
// with a deterministic schema, and the trace analyzer behind `bncg trace`.
//
// Everything here is standard library only. The package sits below
// internal/sweep, internal/store, internal/fleet and internal/server in
// the import graph and knows nothing about any of them: instruments are
// recorded through typed handles (Counter, Histogram) and live state is
// sampled at scrape time through caller-supplied closures.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry is an ordered collection of metric families rendered in the
// Prometheus text exposition format. Families render in registration
// order; samples within a family render in sorted label order, so equal
// states produce byte-identical expositions. Registration panics on an
// invalid or duplicate name — both are programmer errors caught by the
// first scrape of any test — while recording and rendering never fail.
type Registry struct {
	mu       sync.Mutex
	families []*family
	types    map[string]string // name -> type, duplicate/charset guard
}

type family struct {
	name, help, typ string
	collect         func(e *Exposition)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{types: make(map[string]string)}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	return validMetricName(name) && !strings.Contains(name, ":")
}

func (r *Registry) register(name, help, typ string, collect func(*Exposition)) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.types[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.types[name] = typ
	r.families = append(r.families, &family{name: name, help: help, typ: typ, collect: collect})
}

// WriteText renders the full exposition to w.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.collect(&Exposition{w: w, name: f.name})
	}
}

// Handler returns an http.Handler serving the exposition — the body of
// the sidecar's /metrics and of the daemon's.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Exposition is the per-family rendering context handed to collectors:
// each Sample call emits one line of the current family.
type Exposition struct {
	w    io.Writer
	name string
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func (e *Exposition) sample(suffix, value string, labels []Label) {
	io.WriteString(e.w, e.name)
	io.WriteString(e.w, suffix)
	if len(labels) > 0 {
		io.WriteString(e.w, "{")
		for i, l := range labels {
			if i > 0 {
				io.WriteString(e.w, ",")
			}
			fmt.Fprintf(e.w, "%s=\"%s\"", l.Name, escapeLabel(l.Value))
		}
		io.WriteString(e.w, "}")
	}
	io.WriteString(e.w, " ")
	io.WriteString(e.w, value)
	io.WriteString(e.w, "\n")
}

// Sample emits one sample of the current family.
func (e *Exposition) Sample(v float64, labels ...Label) {
	e.sample("", formatFloat(v), labels)
}

// SampleInt emits one integer-valued sample of the current family.
func (e *Exposition) SampleInt(v int64, labels ...Label) {
	e.sample("", strconv.FormatInt(v, 10), labels)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Custom registers a family whose samples are produced from scratch at
// every scrape — the escape hatch for gauges sampled from live state with
// dynamic labels (cache entries by kind, store records by kind). typ is
// the exposition TYPE: "counter", "gauge", "histogram" or "untyped".
func (r *Registry) Custom(name, help, typ string, collect func(*Exposition)) {
	r.register(name, help, typ, collect)
}

// GaugeFunc registers a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(e *Exposition) { e.Sample(fn()) })
}

// ---- counters ----

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(e *Exposition) { e.SampleInt(c.Value()) })
	return c
}

// CounterVec is a family of counters partitioned by a fixed label set.
// Children are created on first use and render in sorted label order.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*counterChild
}

type counterChild struct {
	values []string
	c      Counter
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	v := &CounterVec{labels: labels, children: make(map[string]*counterChild)}
	r.register(name, help, "counter", v.collect)
	return v
}

func (v *CounterVec) child(values []string) *counterChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &counterChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return ch
}

// With returns the counter for one label-value tuple, creating it if
// needed. The caller bounds the label space (e.g. by collapsing unknown
// routes into "other") — the registry never evicts.
func (v *CounterVec) With(values ...string) *Counter { return &v.child(values).c }

// Each calls fn for every child in sorted label order.
func (v *CounterVec) Each(fn func(values []string, count int64)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*counterChild, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, ch := range children {
		fn(ch.values, ch.c.Value())
	}
}

func (v *CounterVec) collect(e *Exposition) {
	v.Each(func(values []string, count int64) {
		labels := make([]Label, len(values))
		for i, val := range values {
			labels[i] = L(v.labels[i], val)
		}
		e.sample("", strconv.FormatInt(count, 10), labels)
	})
}

// ---- histograms ----

// Histogram accumulates observations into fixed cumulative buckets (an
// implicit +Inf bucket follows the configured upper bounds).
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is +Inf
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// emit renders the cumulative bucket/sum/count triplet with base labels.
func (h *Histogram) emit(e *Exposition, labels []Label) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	cum := int64(0)
	for i, le := range h.bounds {
		cum += counts[i]
		e.sample("_bucket", strconv.FormatInt(cum, 10), append(labels, L("le", formatFloat(le))))
	}
	cum += counts[len(h.bounds)]
	e.sample("_bucket", strconv.FormatInt(cum, 10), append(labels, L("le", "+Inf")))
	e.sample("_sum", formatFloat(sum), labels)
	e.sample("_count", strconv.FormatInt(count, 10), labels)
}

// Histogram registers and returns a label-less histogram with the given
// upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", func(e *Exposition) {
		if h.Count() > 0 {
			h.emit(e, nil)
		}
	})
	return h
}

// HistogramVec is a family of histograms partitioned by a fixed label
// set; every child shares the same bucket bounds. Children with no
// observations are omitted from the exposition.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	v := &HistogramVec{labels: labels, bounds: append([]float64(nil), bounds...), children: make(map[string]*histChild)}
	r.register(name, help, "histogram", v.collect)
	return v
}

// With returns the histogram for one label-value tuple, creating it if
// needed.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &histChild{values: append([]string(nil), values...), h: newHistogram(v.bounds)}
		v.children[key] = ch
	}
	return ch.h
}

func (v *HistogramVec) collect(e *Exposition) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*histChild, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, ch := range children {
		if ch.h.Count() == 0 {
			continue
		}
		labels := make([]Label, len(ch.values))
		for i, val := range ch.values {
			labels[i] = L(v.labels[i], val)
		}
		ch.h.emit(e, labels)
	}
}
