package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition walks a Prometheus text exposition line by line and
// validates it structurally: metric and label name charsets, HELP/TYPE
// declared once and before any sample, samples only under declared
// families, parseable values, and — for histograms — per-series bucket
// cumulativity, strictly increasing le bounds, a final +Inf bucket, and
// _count agreement with the +Inf bucket. It guards the hand-rolled
// writer as the registry moves between packages; both the obs tests and
// the server's /metrics tests run scrapes through it.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	l := &expoLint{
		types:   make(map[string]string),
		helps:   make(map[string]bool),
		sampled: make(map[string]bool),
		hists:   make(map[string]*histSeries),
	}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := l.line(line); err != nil {
			return fmt.Errorf("metrics line %d: %v (%q)", lineno, err, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return l.finish()
}

type histSeries struct {
	family  string
	series  string
	les     []float64
	counts  []int64
	count   *int64
	sawSum  bool
	sawInf  bool
	infLast int64
}

type expoLint struct {
	types   map[string]string
	helps   map[string]bool
	sampled map[string]bool
	hists   map[string]*histSeries
}

func (l *expoLint) line(line string) error {
	if strings.HasPrefix(line, "#") {
		return l.comment(line)
	}
	return l.sample(line)
}

func (l *expoLint) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment")
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 || fields[3] == "" {
			return fmt.Errorf("HELP without text")
		}
		if l.helps[name] {
			return fmt.Errorf("duplicate HELP for %q", name)
		}
		if l.sampled[name] {
			return fmt.Errorf("HELP for %q after its samples", name)
		}
		l.helps[name] = true
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE")
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", typ)
		}
		if prev, ok := l.types[name]; ok && prev != typ {
			return fmt.Errorf("conflicting TYPE for %q: %q vs %q", name, prev, typ)
		}
		if _, ok := l.types[name]; ok {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if l.sampled[name] {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		l.types[name] = typ
	default:
		// Free-form comment: legal, ignored.
	}
	return nil
}

// family resolves a sample name to its declared family, peeling
// histogram suffixes.
func (l *expoLint) family(name string) (fam, suffix string, err error) {
	if typ, ok := l.types[name]; ok {
		if typ == "histogram" {
			return "", "", fmt.Errorf("histogram %q sampled without _bucket/_sum/_count suffix", name)
		}
		return name, "", nil
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && l.types[base] == "histogram" {
			return base, s, nil
		}
	}
	return "", "", fmt.Errorf("sample %q without TYPE declaration", name)
}

func (l *expoLint) sample(line string) error {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return fmt.Errorf("malformed sample")
	}
	name := rest[:i]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fam, suffix, err := l.family(name)
	if err != nil {
		return err
	}
	l.sampled[fam] = true

	rest = rest[i:]
	labels := map[string]string{}
	var labelOrder []string
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set")
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for len(body) > 0 {
			eq := strings.Index(body, "=")
			if eq < 0 {
				return fmt.Errorf("malformed label pair")
			}
			lname := body[:eq]
			if !validLabelName(lname) {
				return fmt.Errorf("invalid label name %q", lname)
			}
			if _, dup := labels[lname]; dup {
				return fmt.Errorf("duplicate label %q", lname)
			}
			body = body[eq+1:]
			if len(body) == 0 || body[0] != '"' {
				return fmt.Errorf("unquoted label value")
			}
			val, n, err := scanLabelValue(body)
			if err != nil {
				return err
			}
			labels[lname] = val
			labelOrder = append(labelOrder, lname)
			body = body[n:]
			if len(body) > 0 {
				if body[0] != ',' {
					return fmt.Errorf("expected ',' between labels")
				}
				body = body[1:]
			}
		}
	}
	val := strings.TrimSpace(rest)
	// A trailing timestamp is legal in the format; the writer never
	// emits one, but tolerate it.
	if sp := strings.IndexByte(val, ' '); sp >= 0 {
		if _, err := strconv.ParseInt(val[sp+1:], 10, 64); err != nil {
			return fmt.Errorf("malformed timestamp")
		}
		val = val[:sp]
	}
	f, err := parseSampleValue(val)
	if err != nil {
		return fmt.Errorf("unparseable value %q", val)
	}

	if l.types[fam] == "histogram" {
		return l.histogramSample(fam, suffix, labels, labelOrder, f)
	}
	if suffix != "" {
		return fmt.Errorf("suffix %q on non-histogram %q", suffix, fam)
	}
	if l.types[fam] == "counter" && (f < 0 || math.IsNaN(f)) {
		return fmt.Errorf("negative counter value")
	}
	return nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanLabelValue parses a quoted label value at the start of s and
// returns the unescaped value and the number of bytes consumed.
func scanLabelValue(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// seriesKey identifies one histogram series by its non-le labels.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

func (l *expoLint) histogramSample(fam, suffix string, labels map[string]string, order []string, v float64) error {
	key := fam + "\xff" + seriesKey(labels)
	h := l.hists[key]
	if h == nil {
		h = &histSeries{family: fam, series: seriesKey(labels)}
		l.hists[key] = h
	}
	switch suffix {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram bucket without le label")
		}
		if order[len(order)-1] != "le" {
			return fmt.Errorf("le must be the last label")
		}
		if v < 0 || v != math.Trunc(v) {
			return fmt.Errorf("non-integral bucket count")
		}
		if le == "+Inf" {
			h.sawInf = true
			h.infLast = int64(v)
			h.les = append(h.les, math.Inf(1))
		} else {
			if h.sawInf {
				return fmt.Errorf("bucket after +Inf in %q", fam)
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
			h.les = append(h.les, f)
		}
		h.counts = append(h.counts, int64(v))
	case "_sum":
		if h.sawSum {
			return fmt.Errorf("duplicate _sum for series of %q", fam)
		}
		h.sawSum = true
	case "_count":
		if h.count != nil {
			return fmt.Errorf("duplicate _count for series of %q", fam)
		}
		c := int64(v)
		h.count = &c
	default:
		return fmt.Errorf("histogram %q sampled without suffix", fam)
	}
	return nil
}

func (l *expoLint) finish() error {
	for _, h := range l.hists {
		where := fmt.Sprintf("histogram %s{%s}", h.family, strings.TrimSuffix(h.series, ";"))
		if len(h.les) == 0 {
			return fmt.Errorf("%s: no buckets", where)
		}
		if !h.sawInf {
			return fmt.Errorf("%s: missing +Inf bucket", where)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("%s: le bounds not strictly increasing", where)
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("%s: bucket counts not cumulative", where)
			}
		}
		if h.count == nil {
			return fmt.Errorf("%s: missing _count", where)
		}
		if *h.count != h.infLast {
			return fmt.Errorf("%s: _count %d != +Inf bucket %d", where, *h.count, h.infLast)
		}
		if !h.sawSum {
			return fmt.Errorf("%s: missing _sum", where)
		}
	}
	return nil
}
