package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceVersion is the NDJSON trace schema version emitted in header
// frames. The frame shapes per version are pinned by tests; bump it on
// any incompatible change.
const TraceVersion = 1

// Attrs carries span/event attributes. Values should be strings, bools
// or numbers: they render through encoding/json with sorted keys, so a
// fixed attribute set produces byte-identical frames.
type Attrs map[string]any

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Source identifies the emitting process (worker id, "sweep",
	// "fleet"); stamped on the header and on every frame so multiple
	// shard files merge into per-source timeline lanes.
	Source string
	// Now supplies timestamps; nil means time.Now. Injecting a
	// deterministic clock makes traces byte-identical across replays
	// (exercised by the replay test). Must be safe for concurrent use.
	Now func() time.Time
}

// A Tracer writes an append-only NDJSON stream of span and event frames.
// One frame per line, three frame types:
//
//	{"type":"header","v":1,"source":S,"start_us":T}
//	{"type":"span","name":N,"source":S,"start_us":T,"dur_us":D,"attrs":{...}}
//	{"type":"event","name":N,"source":S,"at_us":T,"attrs":{...}}
//
// Timestamps are absolute Unix microseconds, so frames from independent
// shard files order on a common clock. Frames are buffered and flushed
// by Close (and by Flush); emission is serialized by an internal mutex,
// so one Tracer may be shared by any number of goroutines.
//
// All methods are nil-receiver safe: a nil *Tracer records nothing and
// costs one pointer comparison per call, which is what `-trace`-less
// runs pay.
type Tracer struct {
	source string
	now    func() time.Time

	mu  sync.Mutex
	buf *bufio.Writer
	c   io.Closer
	err error
}

// NewTracer wraps w in a Tracer and writes the header frame. If w is an
// io.Closer, Close closes it.
func NewTracer(w io.Writer, opts TracerOptions) *Tracer {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Tracer{source: opts.Source, now: opts.Now, buf: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	t.mu.Lock()
	line := append([]byte(`{"type":"header","v":`), strconv.Itoa(TraceVersion)...)
	line = append(line, `,"source":`...)
	line = appendJSONString(line, t.source)
	line = append(line, `,"start_us":`...)
	line = strconv.AppendInt(line, t.now().UnixMicro(), 10)
	line = append(line, "}\n"...)
	t.write(line)
	t.mu.Unlock()
	return t
}

// CreateTrace opens path for appending (creating it if needed) and
// returns a Tracer over it. The file is opened O_APPEND: restarting a
// worker with the same -trace file appends a new header and continues.
func CreateTrace(path, source string) (*Tracer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace: %w", err)
	}
	return NewTracer(f, TracerOptions{Source: source}), nil
}

func (t *Tracer) write(line []byte) {
	if t.err != nil {
		return
	}
	if _, err := t.buf.Write(line); err != nil {
		t.err = err
	}
}

// A Span is one timed operation in flight; End emits its frame. The
// zero of use is `sp := t.Start("x"); ...; sp.End(attrs)` — both calls
// are no-ops when tracing is disabled (nil Tracer gives nil Span).
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start begins a span. Returns nil (a valid no-op span) on a nil Tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.now()}
}

// End emits the span frame with the given attributes (may be nil).
func (s *Span) End(attrs Attrs) {
	if s == nil {
		return
	}
	end := s.t.now()
	s.t.emit("span", s.name, s.start.UnixMicro(), end.Sub(s.start).Microseconds(), attrs)
}

// Event emits an instantaneous event frame.
func (t *Tracer) Event(name string, attrs Attrs) {
	if t == nil {
		return
	}
	t.emit("event", name, t.now().UnixMicro(), -1, attrs)
}

// emit writes one span/event frame. durUS < 0 marks an event (at_us
// field instead of start_us/dur_us). Field order is fixed by hand so
// the byte stream is deterministic.
func (t *Tracer) emit(typ, name string, atUS, durUS int64, attrs Attrs) {
	line := append([]byte(`{"type":"`), typ...)
	line = append(line, `","name":`...)
	line = appendJSONString(line, name)
	line = append(line, `,"source":`...)
	line = appendJSONString(line, t.source)
	if durUS >= 0 {
		line = append(line, `,"start_us":`...)
		line = strconv.AppendInt(line, atUS, 10)
		line = append(line, `,"dur_us":`...)
		line = strconv.AppendInt(line, durUS, 10)
	} else {
		line = append(line, `,"at_us":`...)
		line = strconv.AppendInt(line, atUS, 10)
	}
	if len(attrs) > 0 {
		line = append(line, `,"attrs":`...)
		line = appendAttrs(line, attrs)
	}
	line = append(line, "}\n"...)
	t.mu.Lock()
	t.write(line)
	t.mu.Unlock()
}

// appendAttrs marshals attrs with sorted keys (encoding/json sorts map
// keys, but doing it by hand avoids its HTML escaping of values).
func appendAttrs(dst []byte, attrs Attrs) []byte {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		switch v := attrs[k].(type) {
		case string:
			dst = appendJSONString(dst, v)
		case bool:
			dst = strconv.AppendBool(dst, v)
		case int:
			dst = strconv.AppendInt(dst, int64(v), 10)
		case int64:
			dst = strconv.AppendInt(dst, v, 10)
		case float64:
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		default:
			b, err := json.Marshal(v)
			if err != nil {
				b = []byte(`"!marshal"`)
			}
			dst = append(dst, b...)
		}
	}
	return append(dst, '}')
}

func appendJSONString(dst []byte, s string) []byte {
	b, _ := json.Marshal(s) // cannot fail for a string
	return append(dst, b...)
}

// Flush pushes buffered frames to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.buf.Flush()
	}
	return t.err
}

// Close flushes all buffered frames and closes the underlying writer if
// it is a Closer. It returns the first error seen by any write, flush
// or close. The Tracer owns no goroutines, so Close leaks nothing.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.buf.Flush(); t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// Err returns the first error seen by the tracer, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
