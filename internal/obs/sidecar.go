package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// A Sidecar is the optional observability listener of a compute process
// (`bncg worker`/`bncg sweep -metrics-addr`): it serves the registry's
// text exposition on /metrics and, when enabled, the net/http/pprof
// handlers under /debug/pprof/.
type Sidecar struct {
	ln  net.Listener
	srv *http.Server
}

// MountPprof registers the net/http/pprof handlers on mux. Shared by
// the sidecar and by `bncg serve -pprof`.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartSidecar binds addr and serves reg's exposition in a background
// goroutine until Close. enablePprof additionally mounts /debug/pprof/.
func StartSidecar(addr string, reg *Registry, enablePprof bool) (*Sidecar, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	if enablePprof {
		MountPprof(mux)
	}
	s := &Sidecar{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Sidecar) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Sidecar) Close() error { return s.srv.Close() }
