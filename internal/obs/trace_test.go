package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, concurrency-safe clock: each observation
// advances time by 1ms.
type fakeClock struct {
	mu sync.Mutex
	us int64
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.us += 1000
	return time.UnixMicro(c.us)
}

// TestTracerFrameSchema pins the exact byte layout of the three frame
// types (version 1). Any change here is a schema break: bump
// TraceVersion and teach ReadTrace both generations before touching the
// golden string.
func TestTracerFrameSchema(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{}
	tr := NewTracer(&buf, TracerOptions{Source: "w\"1", Now: clk.Now})
	sp := tr.Start("certify")
	sp.End(Attrs{"class": 7, "concept": "PS", "cached": false, "ratio": 1.5, "big": int64(1 << 40)})
	tr.Event("steal", Attrs{"epoch": 3})
	tr.Start("empty").End(nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"type":"header","v":1,"source":"w\"1","start_us":1000}
{"type":"span","name":"certify","source":"w\"1","start_us":2000,"dur_us":1000,"attrs":{"big":1099511627776,"cached":false,"class":7,"concept":"PS","ratio":1.5}}
{"type":"event","name":"steal","source":"w\"1","at_us":4000,"attrs":{"epoch":3}}
{"type":"span","name":"empty","source":"w\"1","start_us":5000,"dur_us":1000}
`
	if got := buf.String(); got != want {
		t.Fatalf("frame bytes drifted from the pinned v1 schema:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestTracerDeterministicReplay: the same span sequence against the same
// clock must produce byte-identical streams — the property the sweep
// replay test relies on at full scale.
func TestTracerDeterministicReplay(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		clk := &fakeClock{}
		tr := NewTracer(&buf, TracerOptions{Source: "replay", Now: clk.Now})
		for i := 0; i < 10; i++ {
			sp := tr.Start("step")
			sp.End(Attrs{"i": i, "name": "x"})
		}
		tr.Event("done", nil)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatalf("replay not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

// closeCountingBuffer records whether Close was called and how many bytes
// reached it (i.e. were flushed out of the Tracer's buffer).
type closeCountingBuffer struct {
	bytes.Buffer
	closed int
}

func (b *closeCountingBuffer) Close() error {
	b.closed++
	return nil
}

// TestTracerCloseFlushesEverything: every frame emitted before Close must
// be durable in the underlying writer after it, the writer's own Close
// must run exactly once, and the Tracer must own no goroutines.
func TestTracerCloseFlushesEverything(t *testing.T) {
	before := runtime.NumGoroutine()
	var sink closeCountingBuffer
	tr := NewTracer(&sink, TracerOptions{Source: "flush"})
	const spans = 500
	for i := 0; i < spans; i++ {
		tr.Start("s").End(Attrs{"i": i})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closed != 1 {
		t.Fatalf("underlying Close ran %d times, want 1", sink.closed)
	}
	parsed, err := ReadTrace(&sink.Buffer, "flush")
	if err != nil {
		t.Fatalf("flushed stream does not parse: %v", err)
	}
	if len(parsed.Spans) != spans {
		t.Fatalf("flushed stream holds %d spans, emitted %d", len(parsed.Spans), spans)
	}
	// No goroutine leak: the tracer is purely synchronous. Allow the
	// runtime a moment to retire unrelated test goroutines.
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if i >= 50 {
			t.Fatalf("goroutines grew from %d to %d across a Tracer lifecycle", before, after)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTracerConcurrent hammers one Tracer from many goroutines (meant for
// -race) and checks the interleaved output is still a well-formed stream
// holding every frame exactly once.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TracerOptions{Source: "conc"})
	const (
		goroutines = 8
		perG       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Start("work")
				sp.End(Attrs{"g": g, "i": i})
				if i%50 == 0 {
					tr.Event("tick", Attrs{"g": g})
					_ = tr.Flush()
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(&buf, "conc")
	if err != nil {
		t.Fatalf("concurrent stream does not parse: %v", err)
	}
	if want := goroutines * perG; len(parsed.Spans) != want {
		t.Fatalf("parsed %d spans, want %d", len(parsed.Spans), want)
	}
	if want := goroutines * (perG / 50); len(parsed.Events) != want {
		t.Fatalf("parsed %d events, want %d", len(parsed.Events), want)
	}
}

// TestNilTracerIsFree: a nil *Tracer (tracing disabled) must accept the
// whole API as no-ops — this is the zero-cost path every untraced sweep
// takes.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil tracer returned a live span")
	}
	sp.End(Attrs{"k": 1})
	tr.Event("e", nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCreateTraceAppends: restarting a tracer on the same path appends a
// second header and the combined file still parses, keeping both
// sessions' frames.
func TestCreateTraceAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.trace")
	for _, source := range []string{"run1", "run2"} {
		tr, err := CreateTrace(path, source)
		if err != nil {
			t.Fatal(err)
		}
		tr.Start("s").End(nil)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	parsed, err := ReadTraceFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Spans) != 2 {
		t.Fatalf("appended file holds %d spans, want 2", len(parsed.Spans))
	}
	if got := strings.Join(parsed.Sources, ","); got != "run1,run2" {
		t.Fatalf("sources = %q, want run1,run2", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"type":"header"`); n != 2 {
		t.Fatalf("appended file holds %d headers, want 2", n)
	}
}
