package obs

import (
	"sync/atomic"
	"time"
)

// certifyBuckets spans the observed certify-latency range: sub-ms
// cache-adjacent classes up to the multi-minute monsters at n=7.
var certifyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250,
}

// trajectoryStepBuckets covers convergence-step counts from toy n up to
// the 10·n² ceiling at n=500.
var trajectoryStepBuckets = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
}

// ComputeMetrics bundles the compute-plane instruments exposed by the
// `-metrics-addr` sidecar of `bncg worker` and `bncg sweep`: classes
// certified, a certify-latency histogram, cache hit/miss/entry samples,
// store flush bytes/failures, and lease epoch/deadline gauges. Recording
// methods are nil-receiver safe so callers thread an optional
// *ComputeMetrics exactly like an optional *Tracer.
type ComputeMetrics struct {
	Registry *Registry

	classes        *Counter
	cachedClasses  *Counter
	certificates   *Counter
	certifySeconds *Histogram
	ranges         *Counter
	steals         *Counter
	leasesLost     *Counter

	trajectories    *CounterVec // by outcome: converged / maxsteps
	trajectorySteps *Histogram
	trajectorySecs  *Histogram

	leaseEpoch    atomic.Int64
	leaseDeadline atomic.Int64 // UnixNano; 0 = no lease held
}

// NewComputeMetrics builds the registry with the recorded instrument
// families. Live cache/store state is attached afterwards with
// BindCacheStats/BindStoreStats (sampled at scrape time), keeping obs
// free of any dependency on the packages it observes.
func NewComputeMetrics() *ComputeMetrics {
	r := NewRegistry()
	m := &ComputeMetrics{Registry: r}
	m.classes = r.Counter("bncg_sweep_classes_total",
		"Isomorphism classes completed by this process.")
	m.cachedClasses = r.Counter("bncg_sweep_classes_cached_total",
		"Classes answered entirely from cached certificates.")
	m.certificates = r.Counter("bncg_certificates_total",
		"Fresh (class, concept) certificates computed.")
	m.certifySeconds = r.Histogram("bncg_certify_duration_seconds",
		"Latency of one certificate scan (per class and concept).", certifyBuckets)
	m.ranges = r.Counter("bncg_worker_ranges_total",
		"Lease ranges completed by this worker.")
	m.steals = r.Counter("bncg_worker_steals_total",
		"Expired leases stolen from other workers.")
	m.leasesLost = r.Counter("bncg_worker_leases_lost_total",
		"Leases lost to epoch fencing mid-range.")
	m.trajectories = r.CounterVec("bncg_sim_trajectories_total",
		"Dynamics trajectories finished, by outcome (converged or maxsteps).",
		"outcome")
	m.trajectorySteps = r.Histogram("bncg_sim_trajectory_steps",
		"Improving moves applied per finished trajectory.", trajectoryStepBuckets)
	m.trajectorySecs = r.Histogram("bncg_sim_trajectory_duration_seconds",
		"Wall-clock latency of one dynamics trajectory.", certifyBuckets)
	r.GaugeFunc("bncg_lease_epoch",
		"Epoch of the currently held lease (0 when idle).",
		func() float64 { return float64(m.leaseEpoch.Load()) })
	r.GaugeFunc("bncg_lease_deadline_seconds",
		"Seconds until the held lease expires (0 when idle).",
		func() float64 {
			dl := m.leaseDeadline.Load()
			if dl == 0 {
				return 0
			}
			return time.Until(time.Unix(0, dl)).Seconds()
		})
	return m
}

// BindCacheStats attaches scrape-time cache sampling. The closure
// returns current entry counts by kind and lifetime hit/miss totals.
func (m *ComputeMetrics) BindCacheStats(fn func() (verdicts, certificates int, hits, misses int64)) {
	if m == nil {
		return
	}
	m.Registry.Custom("bncg_cache_entries",
		"Entries resident in the in-memory stability cache.", "gauge",
		func(e *Exposition) {
			v, c, _, _ := fn()
			e.SampleInt(int64(v), L("kind", "verdict"))
			e.SampleInt(int64(c), L("kind", "certificate"))
		})
	m.Registry.Custom("bncg_cache_hits_total",
		"Lifetime cache hits (verdict units).", "counter",
		func(e *Exposition) {
			_, _, h, _ := fn()
			e.SampleInt(h)
		})
	m.Registry.Custom("bncg_cache_misses_total",
		"Lifetime cache misses (verdict units).", "counter",
		func(e *Exposition) {
			_, _, _, mi := fn()
			e.SampleInt(mi)
		})
}

// BindStoreStats attaches scrape-time store sampling: cumulative flushed
// bytes, flush failures, on-disk bytes and pending (unflushed) records.
func (m *ComputeMetrics) BindStoreStats(fn func() (flushedBytes, flushFailures, diskBytes int64, pending int)) {
	if m == nil {
		return
	}
	m.Registry.Custom("bncg_store_flushed_bytes_total",
		"Bytes appended to store segments by flushes.", "counter",
		func(e *Exposition) {
			b, _, _, _ := fn()
			e.SampleInt(b)
		})
	m.Registry.Custom("bncg_store_flush_failures_total",
		"Store flushes that returned an error.", "counter",
		func(e *Exposition) {
			_, f, _, _ := fn()
			e.SampleInt(f)
		})
	m.Registry.Custom("bncg_store_disk_bytes",
		"Bytes across all store segment files.", "gauge",
		func(e *Exposition) {
			_, _, d, _ := fn()
			e.SampleInt(d)
		})
	m.Registry.Custom("bncg_store_pending_records",
		"Records buffered in memory awaiting flush.", "gauge",
		func(e *Exposition) {
			_, _, _, p := fn()
			e.SampleInt(int64(p))
		})
}

// ClassDone records one completed class; cached marks classes answered
// without any fresh certification.
func (m *ComputeMetrics) ClassDone(cached bool) {
	if m == nil {
		return
	}
	m.classes.Inc()
	if cached {
		m.cachedClasses.Inc()
	}
}

// CertifyObserved records the latency of one fresh certificate scan.
func (m *ComputeMetrics) CertifyObserved(d time.Duration) {
	if m == nil {
		return
	}
	m.certificates.Inc()
	m.certifySeconds.Observe(d.Seconds())
}

// TrajectoryObserved records one finished dynamics trajectory for the
// simulation workload.
func (m *ComputeMetrics) TrajectoryObserved(steps int, converged bool, d time.Duration) {
	if m == nil {
		return
	}
	outcome := "maxsteps"
	if converged {
		outcome = "converged"
	}
	m.trajectories.With(outcome).Inc()
	m.trajectorySteps.Observe(float64(steps))
	m.trajectorySecs.Observe(d.Seconds())
}

// LeaseHeld publishes the held lease's epoch and deadline; stolen marks
// a lease claimed off an expired owner.
func (m *ComputeMetrics) LeaseHeld(epoch int64, deadline time.Time, stolen bool) {
	if m == nil {
		return
	}
	m.leaseEpoch.Store(epoch)
	m.leaseDeadline.Store(deadline.UnixNano())
	if stolen {
		m.steals.Inc()
	}
}

// LeaseRenewed moves the held lease's deadline after a heartbeat.
func (m *ComputeMetrics) LeaseRenewed(deadline time.Time) {
	if m == nil {
		return
	}
	m.leaseDeadline.Store(deadline.UnixNano())
}

// LeaseDone clears the lease gauges; lost marks epoch-fence losses.
func (m *ComputeMetrics) LeaseDone(lost bool) {
	if m == nil {
		return
	}
	m.leaseEpoch.Store(0)
	m.leaseDeadline.Store(0)
	if lost {
		m.leasesLost.Inc()
	} else {
		m.ranges.Inc()
	}
}
