package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Encode renders g in the repository's plain text format:
//
//	n <nodes>
//	<u> <v>
//	...
//
// one edge per line, canonical order. The format round-trips through Decode.
func Encode(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n %d\n", g.n)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%d %d\n", e.U, e.V)
	}
	return b.String()
}

// MaxDecodeNodes caps the node count Decode accepts, so malformed or
// hostile input cannot force a multi-gigabyte allocation before a single
// edge is read (found by FuzzCanonicalCacheKey). The largest constructed
// family in the repository — the Section 3.3 d-ary curves at n = 2^20 —
// fits with headroom.
const MaxDecodeNodes = 1 << 22

// Decode parses the format produced by Encode. Blank lines and lines
// starting with '#' are ignored.
func Decode(s string) (*Graph, error) {
	var (
		g      *Graph
		lineNo int
	)
	for _, line := range strings.Split(s, "\n") {
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate node-count line", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want %q", lineNo, "n <count>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			if n > MaxDecodeNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds the decode cap %d", lineNo, n, MaxDecodeNodes)
			}
			g = New(n)
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graph: line %d: edge before node-count line", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want %q", lineNo, "<u> <v>")
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoints %q", lineNo, line)
		}
		if err := g.addEdgeChecked(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing node-count line")
	}
	return g, nil
}

// DOT renders g in Graphviz format with optional node labels.
func DOT(g *Graph, name string, labels map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	keys := make([]int, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, u := range keys {
		fmt.Fprintf(&b, "  %d [label=%q];\n", u, labels[u])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e.U, e.V)
	}
	b.WriteString("}\n")
	return b.String()
}
