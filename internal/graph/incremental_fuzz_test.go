package graph

import "testing"

// FuzzIncrementalDistance differentially pins the incremental kernel: an
// arbitrary byte string is decoded as a toggle program (each byte flips
// one vertex pair of a small graph), and after every prefix the IncDist
// rows and aggregates must equal a fresh BFSScratchInto of the same graph.
func FuzzIncrementalDistance(f *testing.F) {
	f.Add(uint8(5), []byte{0x01, 0x02, 0x01, 0x13, 0x42})
	f.Add(uint8(2), []byte{0x01, 0x01, 0x01})
	f.Add(uint8(9), []byte{0x12, 0x23, 0x34, 0x45, 0x56, 0x67, 0x78, 0x08, 0x12})
	f.Add(uint8(16), []byte("incremental-apsp"))
	f.Fuzz(func(t *testing.T, nRaw uint8, program []byte) {
		n := int(nRaw)%16 + 2 // 2..17 vertices
		if len(program) > 64 {
			program = program[:64]
		}
		g := New(n)
		d := NewIncDist(g)
		// Alternate thresholds across programs so both the incremental
		// cascade and the fallback recompute stay under differential test.
		if len(program) > 0 && program[0]&1 == 1 {
			d.SetThreshold(1)
		}
		dist := make([]int, n)
		var bfs BFSScratch
		for step, b := range program {
			u := int(b>>4) % n
			v := int(b&0x0f) % n
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				if !d.RemoveEdge(u, v) {
					t.Fatalf("step %d: RemoveEdge(%d,%d) refused an existing edge", step, u, v)
				}
			} else {
				if !d.AddEdge(u, v) {
					t.Fatalf("step %d: AddEdge(%d,%d) refused a missing edge", step, u, v)
				}
			}
			for s := 0; s < n; s++ {
				g.BFSScratchInto(s, dist, &bfs)
				var sum int64
				var un int
				for x, dv := range dist {
					if got := d.Dist(s, x); got != dv {
						t.Fatalf("step %d: dist(%d,%d) = %d, want %d", step, s, x, got, dv)
					}
					if dv == Unreachable {
						un++
					} else {
						sum += int64(dv)
					}
				}
				if d.SumDist(s) != sum || d.UnreachableFrom(s) != un {
					t.Fatalf("step %d: aggregates of %d = (%d,%d), want (%d,%d)",
						step, s, d.SumDist(s), d.UnreachableFrom(s), sum, un)
				}
			}
		}
	})
}
