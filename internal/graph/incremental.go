package graph

import "math/bits"

// IncDist maintains all-pairs shortest-path distances of a Graph under
// single edge toggles. It is the hot core of the large-n dynamics engine:
// an improving-response probe flips one edge, reads a handful of agent
// costs, and flips it back — recomputing n BFS trees per probe (what the
// evaluator does) throws the bitset kernel's speed away. IncDist instead
// repairs only the part of each BFS tree the toggle actually dirtied.
//
// Per source s it keeps the distance row dist[s][·] plus two aggregates —
// the finite-distance sum and the unreachable count — which are exactly
// the ingredients of game.Cost, so agent costs read in O(1) (SUM variant)
// or one row scan (MAX variant).
//
// Repair strategy, per row:
//
//   - Edge added (u,v): if the edge closes a shortcut (|d(u)−d(v)| ≥ 2, or
//     it reaches an unreachable vertex), run a partial BFS outward from the
//     improved endpoint, pruning at vertices that do not improve. Word-at-
//     a-time neighbor expansion on the bitset rows, list fallback above
//     MaxBitsetNodes.
//   - Edge removed (u,v): Ramalingam–Reps. If the edge joined equal levels
//     or the far endpoint keeps another support neighbor one level down,
//     nothing changes. Otherwise discover the affected set in old-level
//     order (a vertex is affected iff it has no unaffected neighbor one
//     level down), then recompute it with a bucket-queue unit-weight
//     Dijkstra seeded from the unaffected boundary; vertices never
//     finalized became unreachable.
//
// If the affected set of a removal outgrows Threshold the row falls back
// to one fresh BFSScratchInto — bounded worst case, incremental common
// case. Stats() reports the repair/fallback split.
//
// Partial updates (AddEdgePartial/RemoveEdgePartial) repair only a caller-
// chosen subset of rows. This is the probe fast path: flip the edge, repair
// the two actors' rows, read their costs, flip it back with the same row
// set. While a partial update is outstanding every other row is stale; the
// caller must invert it (same rows, reverse order) before touching them.
type IncDist struct {
	g *Graph
	n int

	back    []int32   // n×n distance backing array
	rows    [][]int32 // rows[s][v] = d_G(s,v), incNoDist when unreachable
	sum     []int64   // per-source finite-distance sum
	unreach []int32   // per-source unreachable count

	threshold int // removal affected-set size that triggers a full-row fallback

	// scratch, reused across repairs
	queue    []int32   // partial-BFS FIFO (additions)
	buckets  [][]int32 // level buckets shared by both removal phases
	pending  []bool    // phase-1 queue membership
	aff      []bool    // affected marks
	done     []bool    // phase-2 finalized marks
	newd     []int32   // phase-2 tentative distances
	affList  []int32   // affected vertices, discovery order
	dscratch []int     // BFSScratchInto target for fallbacks
	bfs      BFSScratch

	stats IncStats
}

// IncStats counts how often removal repairs stayed incremental.
type IncStats struct {
	Repairs   uint64 // rows repaired incrementally
	Fallbacks uint64 // rows recomputed from scratch (affected set over budget)
}

const incNoDist = int32(Unreachable)

// NewIncDist computes full APSP state for g (n BFS passes) and returns a
// kernel tracking it. The graph must only be mutated through the returned
// IncDist from here on.
func NewIncDist(g *Graph) *IncDist {
	n := g.N()
	d := &IncDist{
		g:         g,
		n:         n,
		threshold: n/4 + 8,
		back:      make([]int32, n*n),
		rows:      make([][]int32, n),
		sum:       make([]int64, n),
		unreach:   make([]int32, n),
		queue:     make([]int32, 0, n),
		buckets:   make([][]int32, n+2),
		pending:   make([]bool, n),
		aff:       make([]bool, n),
		done:      make([]bool, n),
		newd:      make([]int32, n),
		affList:   make([]int32, 0, n),
		dscratch:  make([]int, n),
	}
	for s := 0; s < n; s++ {
		d.rows[s] = d.back[s*n : (s+1)*n : (s+1)*n]
		d.recomputeRow(s)
	}
	d.stats = IncStats{} // init passes are not fallbacks
	return d
}

// Graph returns the tracked graph. Callers must not mutate it directly.
func (d *IncDist) Graph() *Graph { return d.g }

// N returns the number of vertices.
func (d *IncDist) N() int { return d.n }

// Dist returns d(u,v), or Unreachable.
func (d *IncDist) Dist(u, v int) int { return int(d.rows[u][v]) }

// Row returns the live distance row of s. Read-only, invalidated by the
// next mutation.
func (d *IncDist) Row(s int) []int32 { return d.rows[s] }

// SumDist returns the sum of finite distances from s.
func (d *IncDist) SumDist(s int) int64 { return d.sum[s] }

// UnreachableFrom returns how many vertices s cannot reach.
func (d *IncDist) UnreachableFrom(s int) int { return int(d.unreach[s]) }

// MaxDist returns the maximum finite distance from s (the eccentricity on
// the reachable part; 0 for an isolated vertex).
func (d *IncDist) MaxDist(s int) int64 {
	var m int32
	for _, dv := range d.rows[s] {
		if dv > m {
			m = dv
		}
	}
	return int64(m)
}

// Connected reports whether the graph is connected (vacuously true for n=0).
func (d *IncDist) Connected() bool { return d.n == 0 || d.unreach[0] == 0 }

// Stats returns repair/fallback counters since construction.
func (d *IncDist) Stats() IncStats { return d.stats }

// SetThreshold overrides the affected-set budget above which a removal
// repair falls back to a fresh BFS for that row. Tests use it to force
// both paths; 0 restores the default.
func (d *IncDist) SetThreshold(t int) {
	if t <= 0 {
		t = d.n/4 + 8
	}
	d.threshold = t
}

// AddEdge inserts (u,v) and repairs every row. Reports whether the edge
// was absent.
func (d *IncDist) AddEdge(u, v int) bool {
	if !d.g.AddEdge(u, v) {
		return false
	}
	for s := 0; s < d.n; s++ {
		d.addRepair(s, u, v)
	}
	return true
}

// RemoveEdge deletes (u,v) and repairs every row. Reports whether the edge
// was present.
func (d *IncDist) RemoveEdge(u, v int) bool {
	if !d.g.RemoveEdge(u, v) {
		return false
	}
	for s := 0; s < d.n; s++ {
		d.removeRepair(s, u, v)
	}
	return true
}

// AddEdgePartial inserts (u,v) but repairs only the given rows. All other
// rows are stale until the caller inverts the toggle with the same rows.
func (d *IncDist) AddEdgePartial(u, v int, rows []int) bool {
	if !d.g.AddEdge(u, v) {
		return false
	}
	for _, s := range rows {
		d.addRepair(s, u, v)
	}
	return true
}

// RemoveEdgePartial deletes (u,v) but repairs only the given rows. See
// AddEdgePartial for the staleness contract.
func (d *IncDist) RemoveEdgePartial(u, v int, rows []int) bool {
	if !d.g.RemoveEdge(u, v) {
		return false
	}
	for _, s := range rows {
		d.removeRepair(s, u, v)
	}
	return true
}

// recomputeRow refreshes row s and its aggregates with one fresh BFS.
func (d *IncDist) recomputeRow(s int) {
	d.g.BFSScratchInto(s, d.dscratch, &d.bfs)
	row := d.rows[s]
	var sum int64
	var un int32
	for v, dv := range d.dscratch {
		row[v] = int32(dv)
		if dv == Unreachable {
			un++
		} else {
			sum += int64(dv)
		}
	}
	d.sum[s] = sum
	d.unreach[s] = un
	d.stats.Fallbacks++
}

// setDist writes row[v] = nd keeping the aggregates in sync. nd must be
// finite; unreachability is only ever introduced by the removal epilogue.
func (d *IncDist) setDist(s, v int, nd int32) {
	row := d.rows[s]
	if old := row[v]; old == incNoDist {
		d.unreach[s]--
		d.sum[s] += int64(nd)
	} else {
		d.sum[s] += int64(nd - old)
	}
	row[v] = nd
}

// addRepair fixes row s after (u,v) was inserted into the graph.
func (d *IncDist) addRepair(s, u, v int) {
	row := d.rows[s]
	du, dv := row[u], row[v]
	// Orient so du ≤ dv, treating incNoDist as +inf.
	if dv != incNoDist && (du == incNoDist || dv < du) {
		v, du, dv = u, dv, du
	}
	if du == incNoDist {
		return // both endpoints beyond s's component: still unreachable
	}
	if dv != incNoDist && dv <= du+1 {
		return // no shortcut: the edge spans adjacent or equal levels
	}
	// v drops to du+1; grow the improvement wave outward, pruning at
	// vertices the wave does not improve.
	d.setDist(s, v, du+1)
	q := append(d.queue[:0], int32(v))
	g := d.g
	for head := 0; head < len(q); head++ {
		x := int(q[head])
		cand := row[x] + 1
		if g.bits != nil {
			for wi, w := range g.bits[x] {
				base := wi << 6
				for ; w != 0; w &= w - 1 {
					y := base + bits.TrailingZeros64(w)
					if dy := row[y]; dy == incNoDist || dy > cand {
						d.setDist(s, y, cand)
						q = append(q, int32(y))
					}
				}
			}
		} else {
			for _, y := range g.neigh[x] {
				if dy := row[y]; dy == incNoDist || dy > cand {
					d.setDist(s, y, cand)
					q = append(q, int32(y))
				}
			}
		}
	}
	d.queue = q[:0]
	d.stats.Repairs++
}

// hasSupport reports whether x has an unaffected neighbor at level lvl in
// row s — a parent that still certifies x's current distance.
func (d *IncDist) hasSupport(s, x int, lvl int32) bool {
	row := d.rows[s]
	g := d.g
	if g.bits != nil {
		for wi, w := range g.bits[x] {
			base := wi << 6
			for ; w != 0; w &= w - 1 {
				y := base + bits.TrailingZeros64(w)
				if row[y] == lvl && !d.aff[y] {
					return true
				}
			}
		}
		return false
	}
	for _, y := range g.neigh[x] {
		if row[y] == lvl && !d.aff[y] {
			return true
		}
	}
	return false
}

// removeRepair fixes row s after (u,v) was deleted from the graph.
func (d *IncDist) removeRepair(s, u, v int) {
	row := d.rows[s]
	du, dv := row[u], row[v]
	if du == incNoDist {
		return // the edge lived entirely outside s's component
	}
	if du == dv {
		return // equal levels: the edge was on no shortest path from s
	}
	w := u
	if dv > du {
		w = v
	}
	dw := row[w]
	if d.hasSupport(s, w, dw-1) {
		d.stats.Repairs++
		return // w keeps a parent: no distance changes anywhere
	}
	d.cascade(s, w, dw)
}

// bucketPush appends x to the level bucket l.
func (d *IncDist) bucketPush(l int32, x int32) {
	d.buckets[l] = append(d.buckets[l], x)
}

// cascade runs the two Ramalingam–Reps phases for row s after w (old level
// dw) lost its last support parent.
func (d *IncDist) cascade(s, w int, dw int32) {
	row := d.rows[s]
	g := d.g

	// Phase 1: discover the affected set in old-level order. buckets[l]
	// holds candidates whose old level is l; a candidate is affected iff
	// it has no unaffected neighbor one level down, and an affected vertex
	// recruits its neighbors one level up. Level-l verdicts are final
	// before level l+1 is examined, so one pass suffices.
	d.affList = d.affList[:0]
	d.bucketPush(dw, int32(w))
	d.pending[w] = true
	queued := 1
	maxL := dw
	overBudget := false
phase1:
	for l := dw; queued > 0 && int(l) < len(d.buckets); l++ {
		bkt := d.buckets[l]
		for i := 0; i < len(bkt); i++ {
			x := int(bkt[i])
			queued--
			d.pending[x] = false
			if d.hasSupport(s, x, l-1) {
				continue
			}
			d.aff[x] = true
			d.affList = append(d.affList, int32(x))
			if len(d.affList) > d.threshold {
				overBudget = true
				break phase1
			}
			next := l + 1
			if g.bits != nil {
				for wi, wd := range g.bits[x] {
					base := wi << 6
					for ; wd != 0; wd &= wd - 1 {
						y := base + bits.TrailingZeros64(wd)
						if row[y] == next && !d.aff[y] && !d.pending[y] {
							d.pending[y] = true
							d.bucketPush(next, int32(y))
							queued++
							if next > maxL {
								maxL = next
							}
						}
					}
				}
			} else {
				for _, y := range g.neigh[x] {
					if row[y] == next && !d.aff[y] && !d.pending[y] {
						d.pending[y] = true
						d.bucketPush(next, int32(y))
						queued++
						if next > maxL {
							maxL = next
						}
					}
				}
			}
		}
		d.buckets[l] = bkt[:0]
	}
	if overBudget {
		// Clear every mark the aborted discovery left behind, then give
		// the row one fresh BFS.
		for l := dw; l <= maxL; l++ {
			for _, x := range d.buckets[l] {
				d.pending[x] = false
			}
			d.buckets[l] = d.buckets[l][:0]
		}
		for _, x := range d.affList {
			d.aff[x] = false
		}
		d.affList = d.affList[:0]
		d.recomputeRow(s)
		return
	}

	// Phase 2: bucket-queue unit-weight Dijkstra over the affected set,
	// seeded from the unaffected boundary (whose distances are final).
	inf := int32(d.n)
	queued = 0
	minL := inf
	for _, xi := range d.affList {
		x := int(xi)
		best := inf
		if g.bits != nil {
			for wi, wd := range g.bits[x] {
				base := wi << 6
				for ; wd != 0; wd &= wd - 1 {
					y := base + bits.TrailingZeros64(wd)
					if !d.aff[y] && row[y] != incNoDist && row[y]+1 < best {
						best = row[y] + 1
					}
				}
			}
		} else {
			for _, y := range g.neigh[x] {
				if !d.aff[y] && row[y] != incNoDist && row[y]+1 < best {
					best = row[y] + 1
				}
			}
		}
		d.newd[x] = best
		if best < inf {
			d.bucketPush(best, xi)
			queued++
			if best < minL {
				minL = best
			}
		}
	}
	for l := minL; queued > 0 && int(l) < len(d.buckets); l++ {
		bkt := d.buckets[l]
		for i := 0; i < len(bkt); i++ {
			x := int(bkt[i])
			queued--
			if d.done[x] || d.newd[x] != l {
				continue // stale entry: x settled at a smaller level
			}
			d.done[x] = true
			d.setDist(s, x, l)
			cand := l + 1
			if g.bits != nil {
				for wi, wd := range g.bits[x] {
					base := wi << 6
					for ; wd != 0; wd &= wd - 1 {
						y := base + bits.TrailingZeros64(wd)
						if d.aff[y] && !d.done[y] && cand < d.newd[y] {
							d.newd[y] = cand
							d.bucketPush(cand, int32(y))
							queued++
						}
					}
				}
			} else {
				for _, y := range g.neigh[x] {
					if d.aff[y] && !d.done[y] && cand < d.newd[y] {
						d.newd[y] = cand
						d.bucketPush(cand, int32(y))
						queued++
					}
				}
			}
		}
		d.buckets[l] = bkt[:0]
	}
	// Never-finalized affected vertices fell off s's component.
	for _, xi := range d.affList {
		x := int(xi)
		if !d.done[x] {
			d.sum[s] -= int64(row[x])
			d.unreach[s]++
			row[x] = incNoDist
		}
		d.aff[x] = false
		d.done[x] = false
	}
	d.affList = d.affList[:0]
	d.stats.Repairs++
}
