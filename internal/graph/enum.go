package graph

import "iter"

// EnumOptions controls small-graph enumeration.
type EnumOptions struct {
	// ConnectedOnly skips disconnected graphs.
	ConnectedOnly bool
	// UpToIso yields one representative per isomorphism class instead of
	// every labeled graph.
	UpToIso bool
	// MinEdges/MaxEdges bound the edge count; MaxEdges < 0 means no upper
	// bound.
	MinEdges, MaxEdges int
}

// Class describes one isomorphism class yielded by AllClasses or
// AllFreeTreeClasses.
type Class struct {
	// Key is the canonical form of the class: CanonicalKey for graphs,
	// FreeTreeKey for trees. Identical for isomorphic graphs, distinct
	// otherwise.
	Key string
	// Orbit is the class's orbit size n!/|Aut|: the number of labeled
	// graphs on n nodes isomorphic to the representative. Summed over an
	// enumeration it recovers the labeled count the symmetry pruning
	// skipped.
	Orbit int64
}

// All returns an iterator over the graphs on n nodes matching opts, paired
// with each graph's canonical key (empty when UpToIso is false, in which
// case no canonical form is computed). Breaking out of the range stops the
// enumeration immediately: no further graphs are generated or canonicalized.
// The caller owns each yielded graph. Intended for n <= 7: the labeled
// space has 2^(n(n-1)/2) members; isomorphism reduction prunes non-minimal
// masks by symmetry (see AllClasses) and computes one CanonicalKey per
// class.
func All(n int, opts EnumOptions) iter.Seq2[*Graph, string] {
	return func(yield func(*Graph, string) bool) {
		if opts.UpToIso {
			for g, cl := range AllClasses(n, opts) {
				if !yield(g, cl.Key) {
					return
				}
			}
			return
		}
		if n < 0 {
			return
		}
		pairs := allPairs(n)
		total := 1 << len(pairs)
		maxE := opts.MaxEdges
		if maxE < 0 {
			maxE = len(pairs)
		}
		for mask := 0; mask < total; mask++ {
			m := popcount(mask)
			if m < opts.MinEdges || m > maxE {
				continue
			}
			g := graphFromMask(n, pairs, mask)
			if opts.ConnectedOnly && !g.Connected() {
				continue
			}
			if !yield(g, "") {
				return
			}
		}
	}
}

// AllClasses returns an iterator over one representative per isomorphism
// class of the graphs on n nodes matching opts (UpToIso is implied), paired
// with the class's canonical key and orbit size. The representative of each
// class is its member with the minimal edge mask — the same graph, in the
// same order, that the historical seen-set reduction yielded — but
// non-minimal masks are skipped by an early-aborting symmetry test instead
// of being canonicalized and deduplicated, so only one canonical form is
// computed per class and the enumeration holds no per-class state.
func AllClasses(n int, opts EnumOptions) iter.Seq2[*Graph, Class] {
	return func(yield func(*Graph, Class) bool) {
		if n < 0 || n > enumMaxNodes {
			return
		}
		pairs := allPairs(n)
		total := 1 << len(pairs)
		maxE := opts.MaxEdges
		if maxE < 0 {
			maxE = len(pairs)
		}
		nfact := factorial(n)
		var rows [enumMaxNodes]uint64
		for mask := 0; mask < total; mask++ {
			m := popcount(mask)
			if m < opts.MinEdges || m > maxE {
				continue
			}
			for u := 0; u < n; u++ {
				rows[u] = 0
			}
			for i, e := range pairs {
				if mask&(1<<i) != 0 {
					rows[e.U] |= 1 << uint(e.V)
					rows[e.V] |= 1 << uint(e.U)
				}
			}
			if opts.ConnectedOnly && !connectedRows(rows[:n], n) {
				continue
			}
			minimal, aut := minMaskAut(rows[:n], n)
			if !minimal {
				continue
			}
			g := graphFromMask(n, pairs, mask)
			if !yield(g, Class{Key: g.CanonicalKey(), Orbit: nfact / aut}) {
				return
			}
		}
	}
}

// Enumerate calls yield with graphs on n nodes matching opts, and returns
// how many were yielded. It is the callback shim over All; new code should
// range over All directly, which also supports early break.
func Enumerate(n int, opts EnumOptions, yield func(*Graph)) int {
	return EnumerateKeyed(n, opts, func(g *Graph, _ string) { yield(g) })
}

// EnumerateKeyed is Enumerate, additionally passing each yielded graph's
// canonical key — computed once per isomorphism class — so canonical-form
// caches downstream need not recompute it. When UpToIso is false no
// canonical form is computed and the key argument is empty. It is the
// callback shim over All.
func EnumerateKeyed(n int, opts EnumOptions, yield func(*Graph, string)) int {
	count := 0
	for g, key := range All(n, opts) {
		count++
		yield(g, key)
	}
	return count
}

func allPairs(n int) []Edge {
	pairs := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, Edge{U: u, V: v})
		}
	}
	return pairs
}

func graphFromMask(n int, pairs []Edge, mask int) *Graph {
	g := New(n)
	for i, e := range pairs {
		if mask&(1<<i) != 0 {
			g.insertEdge(e.U, e.V)
		}
	}
	return g
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
