package graph

import (
	"fmt"
	"math/rand"
)

// RandomTree returns a uniformly random labeled tree on n nodes by decoding
// a random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n <= 0 {
		return New(0)
	}
	if n <= 2 {
		g := New(n)
		if n == 2 {
			g.insertEdge(0, 1)
		}
		return g
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	g, err := PruferDecode(n, seq)
	if err != nil {
		// The sequence is valid by construction; a failure is a bug.
		panic(err)
	}
	return g
}

// RandomGraph returns a G(n, m) graph: m distinct edges chosen uniformly.
// It reports an error when m exceeds the number of node pairs.
func RandomGraph(n, m int, rng *rand.Rand) (*Graph, error) {
	maxM := n * (n - 1) / 2
	if m < 0 || m > maxM {
		return nil, fmt.Errorf("graph: %d edges out of range [0,%d] for n=%d", m, maxM, n)
	}
	pairs := allPairs(n)
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	g := New(n)
	for _, e := range pairs[:m] {
		g.insertEdge(e.U, e.V)
	}
	return g, nil
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph: every node pair is an
// edge independently with probability p. p outside [0,1] is an error.
func RandomGNP(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v outside [0,1]", p)
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.insertEdge(u, v)
			}
		}
	}
	return g, nil
}

// RandomConnectedGNP returns a G(n, p) sample patched up to connectivity:
// after sampling, every component beyond the first is joined to an
// earlier one by a single uniformly chosen cross edge. For p above the
// ln(n)/n connectivity threshold the patch almost never fires and the
// distribution is essentially G(n, p); below it the result is the natural
// "G(n, p) plus a spanning forest of shortcuts" initial state the
// simulation workload wants.
func RandomConnectedGNP(n int, p float64, rng *rand.Rand) (*Graph, error) {
	g, err := RandomGNP(n, p, rng)
	if err != nil {
		return nil, err
	}
	comps := g.Components()
	for i := 1; i < len(comps); i++ {
		// Join component i to a uniform node of the already-connected
		// prefix (components 0..i-1 are merged once their bridge lands).
		u := comps[i][rng.Intn(len(comps[i]))]
		prev := comps[rng.Intn(i)]
		v := prev[rng.Intn(len(prev))]
		g.insertEdge(u, v)
	}
	return g, nil
}

// RandomStar returns a star on n nodes with a uniformly chosen center.
func RandomStar(n int, rng *rand.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	c := rng.Intn(n)
	for v := 0; v < n; v++ {
		if v != c {
			g.insertEdge(c, v)
		}
	}
	return g
}

// RandomConnectedGraph returns a connected graph on n nodes with m >= n-1
// edges: a random spanning tree plus m-(n-1) uniformly chosen extra edges.
func RandomConnectedGraph(n, m int, rng *rand.Rand) (*Graph, error) {
	maxM := n * (n - 1) / 2
	if n > 0 && (m < n-1 || m > maxM) {
		return nil, fmt.Errorf("graph: %d edges out of range [%d,%d] for connected n=%d", m, n-1, maxM, n)
	}
	g := RandomTree(n, rng)
	var nonEdges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				nonEdges = append(nonEdges, Edge{U: u, V: v})
			}
		}
	}
	rng.Shuffle(len(nonEdges), func(i, j int) { nonEdges[i], nonEdges[j] = nonEdges[j], nonEdges[i] })
	for _, e := range nonEdges[:m-(n-1)] {
		g.insertEdge(e.U, e.V)
	}
	return g, nil
}
