package graph

import (
	"sort"
)

// CanonicalKey returns a string that is identical for isomorphic graphs and
// distinct for non-isomorphic ones. It is intended for the small graphs
// (n <= ~8) that the exhaustive searches enumerate; the cost grows with the
// number of degree-respecting orderings.
//
// The key is the lexicographically smallest upper-triangular adjacency
// bitstring over all node orderings that sort degrees in non-increasing
// order. Restricting to degree-sorted orderings is sound because the set of
// admissible orderings depends only on the degree multiset, which is an
// isomorphism invariant.
func (g *Graph) CanonicalKey() string {
	if g.n == 0 {
		return ""
	}
	// Group nodes by degree, descending.
	byDeg := make(map[int][]int)
	degs := make([]int, 0, g.n)
	for u := 0; u < g.n; u++ {
		d := g.Degree(u)
		if len(byDeg[d]) == 0 {
			degs = append(degs, d)
		}
		byDeg[d] = append(byDeg[d], u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))

	groups := make([][]int, len(degs))
	for i, d := range degs {
		groups[i] = byDeg[d]
	}

	best := make([]byte, g.n*(g.n-1)/2)
	for i := range best {
		best[i] = 2 // larger than any bit value
	}
	order := make([]int, 0, g.n)
	cur := make([]byte, len(best))
	g.canonRec(groups, 0, order, cur, best)
	return string(best)
}

// canonRec enumerates orderings as the cartesian product of permutations of
// each degree group and keeps the minimal adjacency bitstring in best.
func (g *Graph) canonRec(groups [][]int, gi int, order []int, cur, best []byte) {
	if gi == len(groups) {
		g.fillBits(order, cur)
		if lessBytes(cur, best) {
			copy(best, cur)
		}
		return
	}
	permute(groups[gi], func(perm []int) {
		next := append(order, perm...)
		g.canonRec(groups, gi+1, next, cur, best)
	})
}

// fillBits writes the upper-triangular adjacency bits of g under the given
// node ordering into out (out[k] in {0,1}).
func (g *Graph) fillBits(order []int, out []byte) {
	k := 0
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if g.HasEdge(order[i], order[j]) {
				out[k] = 1
			} else {
				out[k] = 0
			}
			k++
		}
	}
}

func lessBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// permute calls f with every permutation of s (in-place Heap's algorithm;
// the slice passed to f is reused between calls).
func permute(s []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(s)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				s[i], s[k-1] = s[k-1], s[i]
			} else {
				s[0], s[k-1] = s[k-1], s[0]
			}
		}
	}
	if len(s) == 0 {
		f(s)
		return
	}
	rec(len(s))
}

// Isomorphic reports whether g and h are isomorphic. For the graph sizes
// used in this repository's searches the canonical key is exact.
func Isomorphic(g, h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	gd, hd := g.DegreeSequence(), h.DegreeSequence()
	for i := range gd {
		if gd[i] != hd[i] {
			return false
		}
	}
	return g.CanonicalKey() == h.CanonicalKey()
}
