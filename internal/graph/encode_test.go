package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(Encode(g))
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(back) {
			t.Fatalf("roundtrip mismatch:\n%s\n%s", g, back)
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	g, err := Decode("# a triangle\nn 3\n\n0 1\n1 2\n# middle comment\n0 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 || g.N() != 3 {
		t.Fatalf("decoded %s", g)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{name: "empty", in: ""},
		{name: "edge before n", in: "0 1\nn 3\n"},
		{name: "bad count", in: "n -1\n"},
		{name: "bad edge arity", in: "n 3\n0 1 2\n"},
		{name: "bad endpoint", in: "n 3\n0 x\n"},
		{name: "out of range", in: "n 3\n0 9\n"},
		{name: "duplicate n", in: "n 3\nn 3\n"},
		{name: "duplicate edge", in: "n 3\n0 1\n1 0\n"},
		{name: "over decode cap", in: "n 75555555500\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.in); err == nil {
				t.Fatalf("Decode(%q) succeeded", tt.in)
			}
		})
	}
}

func TestDOT(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	out := DOT(g, "t", map[int]string{0: "a"})
	for _, want := range []string{"graph t {", `0 [label="a"];`, "0 -- 1;", "1 -- 2;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
