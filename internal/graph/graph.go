// Package graph implements the undirected simple graphs that underlie the
// (Bilateral) Network Creation Game: adjacency storage, traversal, distance
// computation, encodings, canonical forms and enumeration of small graphs
// and trees.
//
// Nodes are the integers 0..n-1. Graphs are simple (no loops, no parallel
// edges) and undirected. All operations are deterministic.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Edge is an undirected edge between two distinct nodes. The canonical form
// has U < V; Normalize enforces it.
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints ordered U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not u. It panics if u is not an
// endpoint, which would indicate a programming error in a caller.
func (e Edge) Other(u int) int {
	switch u {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", u, e))
}

// String renders the edge as "u-v".
func (e Edge) String() string {
	n := e.Normalize()
	return fmt.Sprintf("%d-%d", n.U, n.V)
}

// Graph is a mutable undirected simple graph on nodes 0..n-1.
//
// The zero value is not usable; construct graphs with New or the package
// constructors. Adjacency is stored as sorted neighbor lists: memory is
// O(n+m), which keeps the 10^5-node families of Section 3.3 cheap, and
// edge queries are a binary search of the smaller endpoint's list. Graphs
// with at most MaxBitsetNodes nodes additionally maintain a dense bitset
// mirror of the adjacency ([]uint64 rows, kept in lockstep by every edge
// mutation), which the traversal kernels use for word-at-a-time BFS
// frontiers and O(1) edge queries.
type Graph struct {
	n     int
	m     int
	neigh [][]int
	// bits[u] is u's adjacency row (bit v set iff uv is an edge); nil for
	// n > MaxBitsetNodes. words is the row length in uint64 words.
	bits  [][]uint64
	words int
}

// New returns an empty graph on n nodes. It panics for n < 0 because a
// negative node count is unrepresentable, not a runtime condition.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{
		n:     n,
		neigh: make([][]int, n),
	}
	g.initBits()
	return g
}

// FromEdges returns a graph on n nodes with the given edges. It reports an
// error for out-of-range endpoints, loops, or duplicate edges.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.addEdgeChecked(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges for statically known edge lists; it panics on
// invalid input.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// HasEdge reports whether the edge uv is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	if g.bits != nil {
		return g.bits[u][v>>6]&(1<<uint(v&63)) != 0
	}
	if len(g.neigh[u]) > len(g.neigh[v]) {
		u, v = v, u
	}
	s := g.neigh[u]
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

func (g *Graph) addEdgeChecked(u, v int) error {
	switch {
	case u < 0 || u >= g.n || v < 0 || v >= g.n:
		return fmt.Errorf("graph: edge %d-%d out of range [0,%d)", u, v, g.n)
	case u == v:
		return fmt.Errorf("graph: loop at node %d", u)
	case g.HasEdge(u, v):
		return fmt.Errorf("graph: duplicate edge %d-%d", u, v)
	}
	g.insertEdge(u, v)
	return nil
}

func (g *Graph) insertEdge(u, v int) {
	g.neigh[u] = insertSorted(g.neigh[u], v)
	g.neigh[v] = insertSorted(g.neigh[v], u)
	if g.bits != nil {
		g.bits[u][v>>6] |= 1 << uint(v&63)
		g.bits[v][u>>6] |= 1 << uint(u&63)
	}
	g.m++
}

// AddEdge inserts the edge uv. Adding an existing edge or a loop is a no-op
// that returns false; a successful insertion returns true.
func (g *Graph) AddEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v || g.HasEdge(u, v) {
		return false
	}
	g.insertEdge(u, v)
	return true
}

// RemoveEdge deletes the edge uv if present and reports whether it did.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.neigh[u] = removeSorted(g.neigh[u], v)
	g.neigh[v] = removeSorted(g.neigh[v], u)
	if g.bits != nil {
		g.bits[u][v>>6] &^= 1 << uint(v&63)
		g.bits[v][u>>6] &^= 1 << uint(u&63)
	}
	g.m--
	return true
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.neigh[u]) }

// Neighbors returns the sorted neighbor list of u. The returned slice is
// owned by the graph and must not be modified; copy it before mutating the
// graph if it must survive.
func (g *Graph) Neighbors(u int) []int { return g.neigh[u] }

// Edges returns all edges in canonical (U<V) order, sorted
// lexicographically.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.neigh[u] {
			if u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:     g.n,
		m:     g.m,
		neigh: make([][]int, g.n),
	}
	for i := 0; i < g.n; i++ {
		c.neigh[i] = append([]int(nil), g.neigh[i]...)
	}
	c.initBits()
	if c.bits != nil {
		for u := 0; u < g.n; u++ {
			copy(c.bits[u], g.bits[u])
		}
	}
	return c
}

// Equal reports whether g and h have identical node counts and edge sets
// (as labeled graphs, not up to isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.neigh[u]) != len(h.neigh[u]) {
			return false
		}
		for i, v := range g.neigh[u] {
			if h.neigh[u][i] != v {
				return false
			}
		}
	}
	return true
}

// Complement returns the complement graph on the same node set.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				c.insertEdge(u, v)
			}
		}
	}
	return c
}

// Permute returns the graph relabeled by perm: node u of g becomes node
// perm[u] of the result. perm must be a permutation of 0..n-1.
func (g *Graph) Permute(perm []int) (*Graph, error) {
	if len(perm) != g.n {
		return nil, fmt.Errorf("graph: permutation length %d != %d nodes", len(perm), g.n)
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if p < 0 || p >= g.n || seen[p] {
			return nil, errors.New("graph: not a permutation")
		}
		seen[p] = true
	}
	h := New(g.n)
	for _, e := range g.Edges() {
		h.insertEdge(perm[e.U], perm[e.V])
	}
	return h, nil
}

// String renders the graph as "n=<n> m=<m> edges=[...]" for debugging and
// test failure messages.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d edges=[", g.n, g.m)
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte(']')
	return b.String()
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		seq[u] = len(g.neigh[u])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
