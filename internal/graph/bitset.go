package graph

import "math/bits"

// MaxBitsetNodes bounds the node count up to which a Graph maintains a
// dense bitset mirror of its adjacency. Below the bound every graph carries
// []uint64 rows (bit v of row u set iff uv is an edge) kept in lockstep
// with the sorted neighbor lists, enabling word-at-a-time BFS frontiers and
// O(1) edge queries. Above it — the 10^5-node families of Section 3.3 —
// the mirror would cost Θ(n²/64) memory, so only the O(n+m) neighbor lists
// are kept and all traversals fall back to them.
const MaxBitsetNodes = 512

// bitWords returns the number of 64-bit words per adjacency row.
func bitWords(n int) int { return (n + 63) / 64 }

// initBits allocates the bitset rows out of one flat backing array. Called
// by the constructors; rows start all-zero (no edges).
func (g *Graph) initBits() {
	if g.n == 0 || g.n > MaxBitsetNodes {
		return
	}
	g.words = bitWords(g.n)
	backing := make([]uint64, g.n*g.words)
	g.bits = make([][]uint64, g.n)
	for u := 0; u < g.n; u++ {
		g.bits[u] = backing[u*g.words : (u+1)*g.words : (u+1)*g.words]
	}
}

// HasBitset reports whether the graph maintains the dense bitset mirror
// (true exactly when N() <= MaxBitsetNodes and N() > 0).
func (g *Graph) HasBitset() bool { return g.bits != nil }

// AdjacencyRow returns node u's adjacency bitset row (bit v set iff uv is
// an edge), or nil when the graph is above MaxBitsetNodes. The row is owned
// by the graph and must not be modified.
func (g *Graph) AdjacencyRow(u int) []uint64 {
	if g.bits == nil {
		return nil
	}
	return g.bits[u]
}

// BFSScratch holds the reusable buffers of BFSScratchInto, so hot loops
// (equilibrium checkers, sweeps) traverse without allocating. The zero
// value is ready to use; buffers grow to the largest graph seen and are
// then reused. A BFSScratch must not be shared between goroutines.
type BFSScratch struct {
	frontier, next, visited []uint64
	queue                   []int
}

// grow resizes a scratch word slice to length w, reusing capacity.
func growWords(s []uint64, w int) []uint64 {
	if cap(s) < w {
		return make([]uint64, w)
	}
	return s[:w]
}

// BFSScratchInto is BFSInto with caller-owned scratch: it fills dist (length
// n) with hop distances from src, Unreachable for other components, using
// the bitset kernel when the graph maintains one and allocating nothing once
// the scratch has warmed up to the graph size.
func (g *Graph) BFSScratchInto(src int, dist []int, s *BFSScratch) {
	if g.bits != nil {
		if g.words == 1 {
			g.bfsWord(src, dist)
			return
		}
		g.bfsWords(src, dist, s)
		return
	}
	// Neighbor-list fallback for graphs above MaxBitsetNodes, reusing the
	// scratch queue.
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	if cap(s.queue) < g.n {
		s.queue = make([]int, 0, g.n)
	}
	queue := s.queue[:0]
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.neigh[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// bfsWord runs the single-word BFS kernel (n <= 64): the frontier, the
// visited set and every adjacency row are one uint64, so each level is a
// handful of OR/ANDN word operations plus TrailingZeros64 iteration over the
// newly reached nodes. It allocates nothing.
func (g *Graph) bfsWord(src int, dist []int) {
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	visited := uint64(1) << uint(src)
	frontier := visited
	d := 0
	for frontier != 0 {
		var next uint64
		for f := frontier; f != 0; f &= f - 1 {
			next |= g.bits[bits.TrailingZeros64(f)][0]
		}
		next &^= visited
		d++
		for t := next; t != 0; t &= t - 1 {
			dist[bits.TrailingZeros64(t)] = d
		}
		visited |= next
		frontier = next
	}
}

// bfsWords is the multi-word variant of bfsWord for 64 < n <=
// MaxBitsetNodes, with frontiers in caller scratch.
func (g *Graph) bfsWords(src int, dist []int, s *BFSScratch) {
	w := g.words
	s.frontier = growWords(s.frontier, w)
	s.next = growWords(s.next, w)
	s.visited = growWords(s.visited, w)
	for i := 0; i < w; i++ {
		s.frontier[i], s.visited[i] = 0, 0
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	s.frontier[src>>6] = 1 << uint(src&63)
	s.visited[src>>6] = s.frontier[src>>6]
	d := 0
	for {
		for i := 0; i < w; i++ {
			s.next[i] = 0
		}
		for wi := 0; wi < w; wi++ {
			for f := s.frontier[wi]; f != 0; f &= f - 1 {
				row := g.bits[wi<<6|bits.TrailingZeros64(f)]
				for i := 0; i < w; i++ {
					s.next[i] |= row[i]
				}
			}
		}
		d++
		any := false
		for i := 0; i < w; i++ {
			s.next[i] &^= s.visited[i]
			if s.next[i] != 0 {
				any = true
			}
			for t := s.next[i]; t != 0; t &= t - 1 {
				dist[i<<6|bits.TrailingZeros64(t)] = d
			}
			s.visited[i] |= s.next[i]
		}
		if !any {
			return
		}
		s.frontier, s.next = s.next, s.frontier
	}
}

// connectedWord reports connectivity with the single-word kernel: iterated
// closure of the reach set from node 0. Zero allocations.
func (g *Graph) connectedWord() bool {
	reach := uint64(1)
	for {
		next := reach
		for f := reach; f != 0; f &= f - 1 {
			next |= g.bits[bits.TrailingZeros64(f)][0]
		}
		if next == reach {
			return bits.OnesCount64(reach) == g.n
		}
		reach = next
	}
}
