package graph

import "math/bits"

// This file implements the symmetry pruning behind the isomorphism-free
// enumeration in All: instead of canonicalizing every labeled graph and
// deduplicating through a seen-set, each candidate edge mask is tested
// directly for being the *minimal mask* of its isomorphism class and
// non-minimal masks are skipped early.
//
// The enumeration in All visits edge masks in increasing numeric order, so
// the representative it historically yielded per class — the first mask
// whose canonical key was unseen — is exactly the class member with the
// minimal mask. "Is this mask minimal in its orbit?" is therefore a pure
// predicate of the labeled graph: no cross-mask state, no seen-set, and no
// canonical key computation for the (vast majority of) skipped masks.
//
// The predicate runs a branch-and-bound over relabelings. Masks compare by
// their most significant bit first, and the pair order (u-major, v
// ascending) makes the bits of pair (u,v) for u = n-1 down to 0 the most
// significant run, so the search assigns labels from n-1 downward: placing
// label l fixes the bits of all pairs (l, v) with v > l. A branch whose
// bits exceed the graph's own is pruned; one that goes below proves the
// mask non-minimal and aborts the whole search; branches that stay equal
// continue. The permutations that survive to a full assignment are exactly
// the automorphisms of the graph, so the search also yields |Aut(g)| — and
// with it the orbit size n!/|Aut(g)|, the number of labeled graphs in the
// class — for free.

// enumMaxNodes bounds the node count of the mask-based enumeration. Masks
// live in an int, so n(n-1)/2 <= 62 — the bound is generous next to the
// practical n <= 7 of exhaustive sweeps.
const enumMaxNodes = 11

// minMaskAut reports whether the identity labeling of the graph given by
// single-word adjacency rows attains the minimal edge mask over all n!
// relabelings and, when it does, the order of the graph's automorphism
// group. For non-minimal masks it returns (false, 0) as soon as any
// relabeling proves a smaller mask exists.
func minMaskAut(rows []uint64, n int) (minimal bool, aut int64) {
	var vert [enumMaxNodes]int
	var used uint64
	smaller := false
	var rec func(l int)
	rec = func(l int) {
		if l < 0 {
			aut++
			return
		}
		for x := 0; x < n; x++ {
			if used&(1<<uint(x)) != 0 {
				continue
			}
			// Bits of pairs (l, v), v = n-1 down to l+1, under this
			// assignment versus the identity labeling.
			cmp := 0
			for v := n - 1; v > l; v-- {
				b := (rows[x] >> uint(vert[v])) & 1
				own := (rows[l] >> uint(v)) & 1
				if b != own {
					if b < own {
						cmp = -1
					} else {
						cmp = 1
					}
					break
				}
			}
			if cmp < 0 {
				smaller = true
				return
			}
			if cmp > 0 {
				continue
			}
			vert[l] = x
			used |= 1 << uint(x)
			rec(l - 1)
			used &^= 1 << uint(x)
			if smaller {
				return
			}
		}
	}
	rec(n - 1)
	if smaller {
		return false, 0
	}
	return true, aut
}

// connectedRows reports connectivity of the single-word adjacency rows by
// iterated closure of the reach set from node 0, allocating nothing.
func connectedRows(rows []uint64, n int) bool {
	if n <= 1 {
		return true
	}
	reach := uint64(1)
	for {
		next := reach
		for f := reach; f != 0; f &= f - 1 {
			next |= rows[bits.TrailingZeros64(f)]
		}
		if next == reach {
			return bits.OnesCount64(reach) == n
		}
		reach = next
	}
}

// factorial returns n! in int64; exact for n <= 20, which covers every
// enumerable size by a wide margin.
func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}
