package graph

import (
	"testing"
)

// FuzzDecode checks that Decode never panics and that whatever it accepts
// round-trips through Encode.
func FuzzDecode(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("n 0\n")
	f.Add("# comment\nn 2\n\n0 1\n")
	f.Add("n 5\n0 1\n0 2\n0 3\n0 4\n")
	f.Add("n -1\n")
	f.Add("0 1\nn 2\n")
	f.Add("n 75555555500") // over the decode cap; must error, not allocate
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Decode(input)
		if err != nil {
			return
		}
		back, err := Decode(Encode(g))
		if err != nil {
			t.Fatalf("re-decode of encoded graph failed: %v", err)
		}
		if !g.Equal(back) {
			t.Fatalf("roundtrip mismatch: %s vs %s", g, back)
		}
	})
}
