package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestRandomGNPExtremes: p=0 is the empty graph, p=1 the complete graph,
// and out-of-range probabilities error.
func TestRandomGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomGNP(10, 0, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("p=0: m=%d err=%v", g.M(), err)
	}
	g, err = RandomGNP(10, 1, rng)
	if err != nil || g.M() != 45 {
		t.Fatalf("p=1: m=%d err=%v, want 45", g.M(), err)
	}
	if _, err := RandomGNP(5, 1.5, rng); err == nil {
		t.Fatal("p=1.5 accepted")
	}
	if _, err := RandomGNP(5, -0.1, rng); err == nil {
		t.Fatal("p=-0.1 accepted")
	}
}

// TestRandomGNPEdgeCount: the sampled edge count concentrates around
// p·C(n,2) — a 6σ binomial band over many samples.
func TestRandomGNPEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, p, samples = 30, 0.3, 200
	pairs := float64(n * (n - 1) / 2)
	var total float64
	for i := 0; i < samples; i++ {
		g, err := RandomGNP(n, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(g.M())
	}
	mean := total / samples
	want := p * pairs
	sigma := math.Sqrt(pairs*p*(1-p)) / math.Sqrt(samples)
	if math.Abs(mean-want) > 6*sigma {
		t.Fatalf("mean edge count %.2f, want %.2f ± %.2f", mean, want, 6*sigma)
	}
}

// TestRandomConnectedGNP: connected at every p, and exactly a spanning
// structure at the extremes (tree at p=0, clique at p=1).
func TestRandomConnectedGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []float64{0, 0.01, 0.05, 0.2, 0.8, 1} {
		for _, n := range []int{1, 2, 5, 17, 40} {
			g, err := RandomConnectedGNP(n, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Connected() {
				t.Fatalf("n=%d p=%v: disconnected sample", n, p)
			}
			if p == 0 && n > 0 && g.M() != n-1 {
				t.Fatalf("n=%d p=0: m=%d, want spanning tree with %d", n, g.M(), n-1)
			}
			if p == 1 && g.M() != n*(n-1)/2 {
				t.Fatalf("n=%d p=1: m=%d, want clique", n, g.M())
			}
		}
	}
}

// TestRandomStar: n-1 leaves around one center, and every vertex shows up
// as the center over enough draws.
func TestRandomStar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 7
	centers := make(map[int]bool)
	for i := 0; i < 200; i++ {
		g := RandomStar(n, rng)
		if g.M() != n-1 {
			t.Fatalf("star has %d edges, want %d", g.M(), n-1)
		}
		center := -1
		for v := 0; v < n; v++ {
			switch g.Degree(v) {
			case n - 1:
				center = v
			case 1:
			default:
				t.Fatalf("degree(%d) = %d in a star", v, g.Degree(v))
			}
		}
		if center < 0 {
			t.Fatal("no center found")
		}
		centers[center] = true
	}
	if len(centers) != n {
		t.Fatalf("only %d/%d vertices ever drawn as center", len(centers), n)
	}
	if g := RandomStar(1, rng); g.M() != 0 || g.N() != 1 {
		t.Fatalf("degenerate star: %v", g)
	}
}

// TestRandomTreeCayley: OEIS-style count sanity — on n=4 labeled nodes
// there are exactly n^(n-2) = 16 trees (A000272), every one must appear
// over many Prüfer draws, and the empirical distribution must be close to
// uniform.
func TestRandomTreeCayley(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, samples = 4, 8000
	counts := make(map[string]int)
	for i := 0; i < samples; i++ {
		g := RandomTree(n, rng)
		if !g.IsTree() {
			t.Fatalf("sample %d is not a tree: %s", i, g)
		}
		counts[Encode(g)]++
	}
	if len(counts) != 16 {
		t.Fatalf("saw %d distinct labeled trees on n=4, want 16 (Cayley n^(n-2))", len(counts))
	}
	want := float64(samples) / 16
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("tree %q drawn %d times, want %.0f ± %.0f", k, c, want, 5*math.Sqrt(want))
		}
	}
}
