package graph

// Unreachable is the distance reported for node pairs in different connected
// components. Callers in the game layer translate it into the paper's
// lexicographic "M" semantics; it is negative so that accidentally summing
// it with real distances fails loudly in tests.
const Unreachable = -1

// BFS returns the distance from src to every node, with Unreachable for
// nodes in other components.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.neigh[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSInto is BFS writing into a caller-provided slice of length n, avoiding
// allocation in hot loops (equilibrium checkers evaluate millions of moves).
// Graphs on up to 64 nodes run the single-word bitset kernel and allocate
// nothing; larger graphs needing allocation-free traversal should use
// BFSScratchInto.
func (g *Graph) BFSInto(src int, dist []int) {
	if g.bits != nil && g.words == 1 {
		g.bfsWord(src, dist)
		return
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.neigh[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// Dist returns the hop distance between u and v, or Unreachable.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	return g.BFS(u)[v]
}

// AllPairs returns the full distance matrix (Unreachable off-component).
func (g *Graph) AllPairs() [][]int {
	d := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		d[u] = g.BFS(u)
	}
	return d
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected. Graphs on up to 64 nodes answer with the
// word-at-a-time reach closure and allocate nothing.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	if g.bits != nil && g.words == 1 {
		return g.connectedWord()
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components as sorted node slices, ordered
// by their smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.neigh[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the maximum finite distance from u, or Unreachable if
// some node cannot be reached.
func (g *Graph) Eccentricity(u int) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity, or Unreachable for
// disconnected graphs.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.n; u++ {
		e := g.Eccentricity(u)
		if e == Unreachable {
			return Unreachable
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// TotalDist returns the sum of distances from u to all reachable nodes and
// the count of unreachable nodes. This is the dist(u) of the paper split
// into its finite part and the part the paper prices at M.
func (g *Graph) TotalDist(u int) (sum int64, unreachable int) {
	for _, d := range g.BFS(u) {
		if d == Unreachable {
			unreachable++
			continue
		}
		sum += int64(d)
	}
	return sum, unreachable
}

// IsTree reports whether g is connected with exactly n-1 edges.
func (g *Graph) IsTree() bool {
	return g.n > 0 && g.m == g.n-1 && g.Connected()
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
