package graph

import (
	"fmt"
	"iter"
	"sort"
	"strings"
)

// PruferDecode builds the labeled tree on n nodes encoded by the Prüfer
// sequence (length n-2, entries in [0,n)). For n in {1,2} the sequence must
// be empty.
func PruferDecode(n int, seq []int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: prüfer decode needs n >= 1, got %d", n)
	}
	if want := maxInt(n-2, 0); len(seq) != want {
		return nil, fmt.Errorf("graph: prüfer sequence length %d, want %d", len(seq), want)
	}
	g := New(n)
	if n == 1 {
		return g, nil
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: prüfer entry %d out of range [0,%d)", v, n)
		}
		degree[v]++
	}
	// ptr scans for the smallest leaf; leaf tracks the current leaf to
	// attach, allowing the classic O(n) decode.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		g.insertEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	g.insertEdge(leaf, n-1)
	return g, nil
}

// PruferEncode returns the Prüfer sequence of a labeled tree. It reports an
// error if g is not a tree.
func PruferEncode(g *Graph) ([]int, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("graph: prüfer encode of non-tree (%s)", g)
	}
	n := g.n
	if n <= 2 {
		return nil, nil
	}
	degree := make([]int, n)
	adj := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		degree[u] = g.Degree(u)
		adj[u] = make(map[int]bool, degree[u])
		for _, v := range g.neigh[u] {
			adj[u][v] = true
		}
	}
	seq := make([]int, 0, n-2)
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for len(seq) < n-2 {
		var parent int
		for v := range adj[leaf] {
			parent = v
		}
		seq = append(seq, parent)
		delete(adj[parent], leaf)
		degree[parent]--
		degree[leaf]--
		if degree[parent] == 1 && parent < ptr {
			leaf = parent
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	return seq, nil
}

// AllFreeTrees returns an iterator over one representative of every
// isomorphism class of trees on n nodes, paired with each tree's canonical
// FreeTreeKey — computed anyway for the isomorphism reduction — so
// canonical-form caches downstream need not recompute it. Enumeration is
// deterministic; breaking out of the range stops the underlying rooted-tree
// generation immediately. The caller owns each yielded graph.
//
// Implementation: Beyer–Hedetniemi level-sequence generation of all rooted
// trees, reduced to free trees by AHU canonical hashing at the tree center.
func AllFreeTrees(n int) iter.Seq2[*Graph, string] {
	return func(yield func(*Graph, string) bool) {
		for g, cl := range AllFreeTreeClasses(n) {
			if !yield(g, cl.Key) {
				return
			}
		}
	}
}

// AllFreeTreeClasses is AllFreeTrees additionally reporting each class's
// orbit size n!/|Aut| (the number of labeled trees isomorphic to the
// representative; summed over the enumeration it recovers Cayley's
// n^(n-2)). Duplicate rooted trees are rejected on a scratch parent-array
// representation of the level sequence, so a Graph is only materialized
// for the first rooted tree of each free class — the same representative,
// in the same order, as always.
func AllFreeTreeClasses(n int) iter.Seq2[*Graph, Class] {
	return func(yield func(*Graph, Class) bool) {
		if n <= 0 {
			return
		}
		nfact := factorial(n)
		if n == 1 {
			g := New(1)
			yield(g, Class{Key: FreeTreeKey(g), Orbit: 1})
			return
		}
		seen := make(map[string]bool)
		lt := newLevelTree(n)
		rootedTrees(n, func(level []int) bool {
			lt.load(level)
			key, aut := lt.freeKeyAut()
			if seen[key] {
				return true
			}
			seen[key] = true
			return yield(treeFromLevels(level), Class{Key: key, Orbit: nfact / aut})
		})
	}
}

// FreeTrees calls yield with one representative of every isomorphism class
// of trees on n nodes and returns how many were yielded. It is the callback
// shim over AllFreeTrees; new code should range over AllFreeTrees directly,
// which also supports early break.
func FreeTrees(n int, yield func(*Graph)) int {
	return FreeTreesKeyed(n, func(g *Graph, _ string) { yield(g) })
}

// FreeTreesKeyed is FreeTrees, additionally passing each tree's canonical
// FreeTreeKey. It is the callback shim over AllFreeTrees.
func FreeTreesKeyed(n int, yield func(*Graph, string)) int {
	count := 0
	for g, key := range AllFreeTrees(n) {
		count++
		yield(g, key)
	}
	return count
}

// rootedTrees generates the canonical level sequences of all rooted trees on
// n nodes (Beyer–Hedetniemi successor rule) and calls f with each until f
// returns false. The slice passed to f is reused.
func rootedTrees(n int, f func(level []int) bool) {
	level := make([]int, n)
	for i := range level {
		level[i] = i + 1 // the path: levels 1,2,...,n
	}
	for {
		if !f(level) {
			return
		}
		// Find rightmost position p with level[p] > 2.
		p := -1
		for i := n - 1; i >= 0; i-- {
			if level[i] > 2 {
				p = i
				break
			}
		}
		if p < 0 {
			return
		}
		// q: rightmost position before p with level[q] = level[p]-1.
		q := p - 1
		for level[q] != level[p]-1 {
			q--
		}
		// Successor: copy the segment starting at q cyclically from p on.
		for i := p; i < n; i++ {
			level[i] = level[i-(p-q)]
		}
	}
}

// treeFromLevels converts a rooted-tree level sequence (level[0]=1) into a
// graph: each node's parent is the nearest earlier node one level up.
func treeFromLevels(level []int) *Graph {
	n := len(level)
	g := New(n)
	for i := 1; i < n; i++ {
		for j := i - 1; j >= 0; j-- {
			if level[j] == level[i]-1 {
				g.insertEdge(i, j)
				break
			}
		}
	}
	return g
}

// levelTree is a reusable scratch decoding of a rooted level sequence into
// parent/children form, with center extraction and AHU encoding — the
// free-tree reduction of AllFreeTreeClasses without materializing a Graph
// per rooted tree.
type levelTree struct {
	n        int
	parent   []int
	children [][]int
	degree   []int
	removed  []bool
	leaves   []int
	next     []int
}

func newLevelTree(n int) *levelTree {
	return &levelTree{
		n:        n,
		parent:   make([]int, n),
		children: make([][]int, n),
		degree:   make([]int, n),
		removed:  make([]bool, n),
	}
}

// load decodes a level sequence (level[0] = 1) into parent and children
// lists: each node's parent is the nearest earlier node one level up —
// the same rule as treeFromLevels.
func (t *levelTree) load(level []int) {
	for i := range t.children {
		t.children[i] = t.children[i][:0]
	}
	t.parent[0] = -1
	for i := 1; i < t.n; i++ {
		for j := i - 1; j >= 0; j-- {
			if level[j] == level[i]-1 {
				t.parent[i] = j
				t.children[j] = append(t.children[j], i)
				break
			}
		}
	}
}

// centers returns the tree's 1 or 2 centers by iterative leaf removal
// (c2 = -1 when unicentral), mirroring Centers on the scratch arrays.
func (t *levelTree) centers() (c1, c2 int) {
	n := t.n
	if n == 1 {
		return 0, -1
	}
	for u := 0; u < n; u++ {
		d := len(t.children[u])
		if t.parent[u] >= 0 {
			d++
		}
		t.degree[u] = d
		t.removed[u] = false
	}
	leaves := t.leaves[:0]
	for u := 0; u < n; u++ {
		if t.degree[u] <= 1 {
			leaves = append(leaves, u)
		}
	}
	next := t.next[:0]
	remaining := n
	drop := func(v int) {
		if !t.removed[v] {
			t.degree[v]--
			if t.degree[v] == 1 {
				next = append(next, v)
			}
		}
	}
	for remaining > 2 {
		next = next[:0]
		for _, u := range leaves {
			t.removed[u] = true
			remaining--
			if p := t.parent[u]; p >= 0 {
				drop(p)
			}
			for _, c := range t.children[u] {
				drop(c)
			}
		}
		leaves, next = next, leaves
	}
	t.leaves, t.next = leaves, next
	c1, c2 = -1, -1
	for u := 0; u < n; u++ {
		if !t.removed[u] {
			if c1 < 0 {
				c1 = u
			} else {
				c2 = u
			}
		}
	}
	return c1, c2
}

// ahuAut returns the AHU encoding of the subtree rooted at u with parent p
// together with the order of the rooted subtree's automorphism group:
// the product over child-subtree multiplicity groups of mult! times each
// child's own rooted automorphism count.
func (t *levelTree) ahuAut(u, p int) (string, int64) {
	var encs []string
	aut := int64(1)
	visit := func(v int) {
		e, a := t.ahuAut(v, u)
		encs = append(encs, e)
		aut *= a
	}
	if q := t.parent[u]; q >= 0 && q != p {
		visit(q)
	}
	for _, c := range t.children[u] {
		if c != p {
			visit(c)
		}
	}
	sort.Strings(encs)
	run := 1
	for i := 1; i <= len(encs); i++ {
		if i < len(encs) && encs[i] == encs[i-1] {
			run++
			continue
		}
		aut *= factorial(run)
		run = 1
	}
	return "(" + strings.Join(encs, "") + ")", aut
}

// freeKeyAut returns the loaded tree's FreeTreeKey together with the order
// of its automorphism group. A unicentral tree's automorphisms fix the
// center; a bicentral tree's fix or swap the center edge, and the swap
// exists exactly when the two halves are isomorphic as rooted trees.
func (t *levelTree) freeKeyAut() (string, int64) {
	c1, c2 := t.centers()
	if c2 < 0 {
		return t.ahuAut(c1, -1)
	}
	e1, _ := t.ahuAut(c1, -1)
	e2, _ := t.ahuAut(c2, -1)
	key := e1
	if e2 < e1 {
		key = e2
	}
	h1, a1 := t.ahuAut(c1, c2)
	h2, a2 := t.ahuAut(c2, c1)
	aut := a1 * a2
	if h1 == h2 {
		aut *= 2
	}
	return key, aut
}

// FreeTreeKey returns a canonical string for a free tree: the AHU encoding
// rooted at the tree's center (for bicentral trees, the lexicographically
// smaller of the two center encodings, each including the other half).
// Isomorphic trees share the key; non-isomorphic trees differ.
func FreeTreeKey(g *Graph) string {
	centers := Centers(g)
	best := ""
	for _, c := range centers {
		s := ahu(g, c, -1)
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// ahu returns the canonical parenthesis string of the subtree rooted at u
// with parent p (AHU encoding).
func ahu(g *Graph, u, p int) string {
	var children []string
	for _, v := range g.neigh[u] {
		if v != p {
			children = append(children, ahu(g, v, u))
		}
	}
	sort.Strings(children)
	return "(" + strings.Join(children, "") + ")"
}

// Centers returns the 1 or 2 centers (minimum eccentricity nodes) of a tree
// by iterative leaf removal. It panics on non-trees, which would indicate a
// caller bug.
func Centers(g *Graph) []int {
	if !g.IsTree() {
		panic("graph: Centers on non-tree")
	}
	n := g.n
	if n == 1 {
		return []int{0}
	}
	degree := make([]int, n)
	removed := make([]bool, n)
	var leaves []int
	for u := 0; u < n; u++ {
		degree[u] = g.Degree(u)
		if degree[u] <= 1 {
			leaves = append(leaves, u)
		}
	}
	remaining := n
	for remaining > 2 {
		var next []int
		for _, u := range leaves {
			removed[u] = true
			remaining--
			for _, v := range g.neigh[u] {
				if removed[v] {
					continue
				}
				degree[v]--
				if degree[v] == 1 {
					next = append(next, v)
				}
			}
		}
		leaves = next
	}
	var centers []int
	for u := 0; u < n; u++ {
		if !removed[u] {
			centers = append(centers, u)
		}
	}
	return centers
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
