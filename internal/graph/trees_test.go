package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPruferRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		n    int
		seq  []int
	}{
		{name: "path4", n: 4, seq: []int{1, 2}},
		{name: "star5", n: 5, seq: []int{0, 0, 0}},
		{name: "caterpillar", n: 6, seq: []int{1, 1, 2, 2}},
		{name: "two nodes", n: 2, seq: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := PruferDecode(tt.n, tt.seq)
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsTree() {
				t.Fatalf("decode produced non-tree: %s", g)
			}
			back, err := PruferEncode(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(back) != len(tt.seq) {
				t.Fatalf("roundtrip length %d, want %d", len(back), len(tt.seq))
			}
			for i := range tt.seq {
				if back[i] != tt.seq[i] {
					t.Fatalf("roundtrip = %v, want %v", back, tt.seq)
				}
			}
		})
	}
}

func TestPruferDecodeErrors(t *testing.T) {
	if _, err := PruferDecode(0, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := PruferDecode(4, []int{1}); err == nil {
		t.Fatal("short sequence accepted")
	}
	if _, err := PruferDecode(4, []int{1, 7}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestPruferEncodeRejectsNonTree(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if _, err := PruferEncode(g); err == nil {
		t.Fatal("cycle accepted by PruferEncode")
	}
}

// TestPruferRoundTripProperty uses testing/quick: every random Prüfer
// sequence decodes to a tree that encodes back to itself.
func TestPruferRoundTripProperty(t *testing.T) {
	f := func(raw []uint8, nRaw uint8) bool {
		n := int(nRaw%10) + 3
		seq := make([]int, n-2)
		for i := range seq {
			var b uint8
			if i < len(raw) {
				b = raw[i]
			}
			seq[i] = int(b) % n
		}
		g, err := PruferDecode(n, seq)
		if err != nil || !g.IsTree() {
			return false
		}
		back, err := PruferEncode(g)
		if err != nil || len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Known counts of free (unlabeled) trees: OEIS A000055.
func TestFreeTreeCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 1, 4: 2, 5: 3, 6: 6, 7: 11, 8: 23, 9: 47, 10: 106, 11: 235}
	for n := 1; n <= 11; n++ {
		got := FreeTrees(n, func(g *Graph) {
			if !g.IsTree() || g.N() != n {
				t.Fatalf("FreeTrees(%d) yielded invalid tree %s", n, g)
			}
		})
		if got != want[n] {
			t.Fatalf("FreeTrees(%d) = %d trees, want %d", n, got, want[n])
		}
	}
}

func TestFreeTreesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	FreeTrees(8, func(g *Graph) {
		key := FreeTreeKey(g)
		if seen[key] {
			t.Fatalf("duplicate tree yielded: %s", g)
		}
		seen[key] = true
	})
}

func TestCenters(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
		want  []int
	}{
		{
			name:  "path5 center",
			build: func() *Graph { g, _ := PruferDecode(5, []int{1, 2, 3}); return g },
			want:  []int{2},
		},
		{
			name: "path4 bicentral",
			build: func() *Graph {
				return MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
			},
			want: []int{1, 2},
		},
		{
			name: "star center",
			build: func() *Graph {
				return MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
			},
			want: []int{0},
		},
		{
			name:  "single node",
			build: func() *Graph { return New(1) },
			want:  []int{0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Centers(tt.build())
			if len(got) != len(tt.want) {
				t.Fatalf("Centers = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Fatalf("Centers = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// TestFreeTreeKeyInvariantUnderPermutation: relabeling a random tree never
// changes its canonical key.
func TestFreeTreeKeyInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		g := RandomTree(n, rng)
		perm := rng.Perm(n)
		h, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		if FreeTreeKey(g) != FreeTreeKey(h) {
			t.Fatalf("FreeTreeKey changed under permutation: %s vs %s", g, h)
		}
	}
}
