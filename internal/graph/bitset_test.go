package graph

import (
	"math/rand"
	"testing"
)

// referenceBFS is the neighbor-list queue kernel, kept as the differential
// reference for the bitset kernels.
func referenceBFS(g *Graph, src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.neigh[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TestBitsetMirrorsNeighborLists checks that every edge mutation keeps the
// bitset rows in lockstep with the sorted neighbor lists.
func TestBitsetMirrorsNeighborLists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(20)
	check := func() {
		t.Helper()
		for u := 0; u < g.n; u++ {
			for v := 0; v < g.n; v++ {
				inBits := g.bits[u][v>>6]&(1<<uint(v&63)) != 0
				inList := false
				for _, w := range g.neigh[u] {
					if w == v {
						inList = true
					}
				}
				if inBits != inList {
					t.Fatalf("edge %d-%d: bitset=%v list=%v", u, v, inBits, inList)
				}
			}
		}
	}
	for i := 0; i < 500; i++ {
		u, v := rng.Intn(g.n), rng.Intn(g.n)
		if rng.Intn(2) == 0 {
			g.AddEdge(u, v)
		} else {
			g.RemoveEdge(u, v)
		}
	}
	check()
	c := g.Clone()
	if !c.Equal(g) || !c.HasBitset() {
		t.Fatal("clone lost edges or bitset")
	}
	c.AddEdge(0, 1)
	c.RemoveEdge(0, 1) // mutate the clone; the original must be unaffected
	check()
}

// TestBFSKernelsAgreeExhaustive runs the bitset BFS against the
// neighbor-list reference on every graph (connected and disconnected) up to
// n=5 and every connected class up to n=7, from every source node.
func TestBFSKernelsAgreeExhaustive(t *testing.T) {
	checkGraph := func(g *Graph) {
		t.Helper()
		var s BFSScratch
		dist := make([]int, g.n)
		dist2 := make([]int, g.n)
		for src := 0; src < g.n; src++ {
			want := referenceBFS(g, src)
			g.BFSInto(src, dist)
			g.BFSScratchInto(src, dist2, &s)
			for v := range want {
				if dist[v] != want[v] || dist2[v] != want[v] {
					t.Fatalf("%s src=%d v=%d: BFSInto=%d scratch=%d want %d",
						g, src, v, dist[v], dist2[v], want[v])
				}
			}
		}
		if wantConn := len(g.Components()) <= 1; g.Connected() != wantConn {
			t.Fatalf("%s: Connected()=%v want %v", g, g.Connected(), wantConn)
		}
	}
	for n := 1; n <= 5; n++ {
		for g := range All(n, EnumOptions{MaxEdges: -1}) {
			checkGraph(g)
		}
	}
	for n := 6; n <= 7; n++ {
		for g := range All(n, EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			checkGraph(g)
		}
	}
}

// TestBFSKernelsAgreeMultiWord covers the 64 < n <= MaxBitsetNodes rows and
// the n > MaxBitsetNodes fallback on random graphs.
func TestBFSKernelsAgreeMultiWord(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{65, 130, MaxBitsetNodes, MaxBitsetNodes + 1} {
		g := New(n)
		if (n <= MaxBitsetNodes) != g.HasBitset() {
			t.Fatalf("n=%d: HasBitset=%v", n, g.HasBitset())
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		var s BFSScratch
		dist := make([]int, n)
		for _, src := range []int{0, 1, n / 2, n - 1} {
			want := referenceBFS(g, src)
			g.BFSScratchInto(src, dist, &s)
			for v := range want {
				if dist[v] != want[v] {
					t.Fatalf("n=%d src=%d v=%d: scratch=%d want %d", n, src, v, dist[v], want[v])
				}
			}
		}
	}
}

// TestBFSScratchIntoAllocFree pins the zero-allocation property of the
// scratch kernel at sweep sizes after warmup.
func TestBFSScratchIntoAllocFree(t *testing.T) {
	g := MustFromEdges(8, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 0}, {U: 0, V: 4},
	})
	var s BFSScratch
	dist := make([]int, g.N())
	g.BFSScratchInto(0, dist, &s)
	if allocs := testing.AllocsPerRun(100, func() {
		for src := 0; src < g.N(); src++ {
			g.BFSScratchInto(src, dist, &s)
		}
	}); allocs != 0 {
		t.Errorf("BFSScratchInto allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		g.Connected()
		g.BFSInto(0, dist)
	}); allocs != 0 {
		t.Errorf("single-word Connected/BFSInto allocate %v times per run, want 0", allocs)
	}
}
