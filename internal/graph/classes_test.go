package graph

import "testing"

// legacySeenSetClasses reimplements the pre-pruning isomorphism reduction —
// canonicalize every labeled graph, keep the first of each class — as the
// reference the symmetry-pruned enumeration must match graph for graph.
func legacySeenSetClasses(n int, opts EnumOptions) (graphs []*Graph, keys []string) {
	pairs := allPairs(n)
	maxE := opts.MaxEdges
	if maxE < 0 {
		maxE = len(pairs)
	}
	seen := make(map[string]bool)
	for mask := 0; mask < 1<<len(pairs); mask++ {
		m := popcount(mask)
		if m < opts.MinEdges || m > maxE {
			continue
		}
		g := graphFromMask(n, pairs, mask)
		if opts.ConnectedOnly && !g.Connected() {
			continue
		}
		key := g.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		graphs = append(graphs, g)
		keys = append(keys, key)
	}
	return graphs, keys
}

// TestAllClassesMatchesSeenSet pins the symmetry-pruned enumeration to the
// historical seen-set reduction: same representatives (as labeled graphs),
// same canonical keys, same order. Reports and witnesses downstream stay
// byte-identical only if this holds exactly.
func TestAllClassesMatchesSeenSet(t *testing.T) {
	for n := 0; n <= 6; n++ {
		for _, opts := range []EnumOptions{
			{ConnectedOnly: true, UpToIso: true, MaxEdges: -1},
			{UpToIso: true, MaxEdges: -1},
			{ConnectedOnly: true, UpToIso: true, MinEdges: 2, MaxEdges: 6},
		} {
			wantGraphs, wantKeys := legacySeenSetClasses(n, opts)
			i := 0
			for g, cl := range AllClasses(n, opts) {
				if i >= len(wantGraphs) {
					t.Fatalf("n=%d opts=%+v: pruned enumeration yielded extra graph %s", n, opts, g)
				}
				if !g.Equal(wantGraphs[i]) {
					t.Errorf("n=%d opts=%+v class %d: pruned %s != legacy %s", n, opts, i, g, wantGraphs[i])
				}
				if cl.Key != wantKeys[i] {
					t.Errorf("n=%d opts=%+v class %d: key mismatch", n, opts, i)
				}
				if cl.Orbit < 1 {
					t.Errorf("n=%d opts=%+v class %d: orbit %d < 1", n, opts, i, cl.Orbit)
				}
				i++
			}
			if i != len(wantGraphs) {
				t.Errorf("n=%d opts=%+v: pruned enumeration yielded %d classes, legacy %d", n, opts, i, len(wantGraphs))
			}
		}
	}
}

// TestOrbitSumsCountLabeledGraphs checks the orbit multiplicities against
// the known labeled counts: summing n!/|Aut| over the connected classes
// must recover the number of connected labeled graphs (OEIS A001187), and
// over all classes the full 2^(n(n-1)/2).
func TestOrbitSumsCountLabeledGraphs(t *testing.T) {
	connected := map[int]int64{1: 1, 2: 1, 3: 4, 4: 38, 5: 728, 6: 26704}
	for n := 1; n <= 6; n++ {
		var sum int64
		for _, cl := range AllClasses(n, EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
			sum += cl.Orbit
		}
		if sum != connected[n] {
			t.Errorf("n=%d: connected orbit sum %d, want %d", n, sum, connected[n])
		}
		sum = 0
		for _, cl := range AllClasses(n, EnumOptions{UpToIso: true, MaxEdges: -1}) {
			sum += cl.Orbit
		}
		if want := int64(1) << (n * (n - 1) / 2); sum != want {
			t.Errorf("n=%d: total orbit sum %d, want %d", n, sum, want)
		}
	}
}

// TestFreeTreeClassesMatchLegacy pins AllFreeTreeClasses (and through it
// AllFreeTrees) to the graph-based reduction: identical representatives and
// keys in identical order, with orbit sums recovering Cayley's n^(n-2)
// labeled trees.
func TestFreeTreeClassesMatchLegacy(t *testing.T) {
	cayley := func(n int) int64 {
		if n <= 2 {
			return 1
		}
		p := int64(1)
		for i := 0; i < n-2; i++ {
			p *= int64(n)
		}
		return p
	}
	for n := 1; n <= 9; n++ {
		// Legacy reference: build every rooted tree's graph, reduce by
		// FreeTreeKey.
		var wantGraphs []*Graph
		var wantKeys []string
		if n == 1 {
			g := New(1)
			wantGraphs, wantKeys = []*Graph{g}, []string{FreeTreeKey(g)}
		} else {
			seen := make(map[string]bool)
			rootedTrees(n, func(level []int) bool {
				g := treeFromLevels(level)
				key := FreeTreeKey(g)
				if !seen[key] {
					seen[key] = true
					wantGraphs = append(wantGraphs, g)
					wantKeys = append(wantKeys, key)
				}
				return true
			})
		}
		i := 0
		var orbitSum int64
		for g, cl := range AllFreeTreeClasses(n) {
			if i >= len(wantGraphs) {
				t.Fatalf("n=%d: extra tree %s", n, g)
			}
			if !g.Equal(wantGraphs[i]) || cl.Key != wantKeys[i] {
				t.Errorf("n=%d tree %d: pruned (%s, %q) != legacy (%s, %q)",
					n, i, g, cl.Key, wantGraphs[i], wantKeys[i])
			}
			orbitSum += cl.Orbit
			i++
		}
		if i != len(wantGraphs) {
			t.Errorf("n=%d: %d tree classes, want %d", n, i, len(wantGraphs))
		}
		if orbitSum != cayley(n) {
			t.Errorf("n=%d: labeled tree orbit sum %d, want n^(n-2) = %d", n, orbitSum, cayley(n))
		}
	}
}

// TestMinMaskAutKnownGroups spot-checks |Aut| through the orbit on graphs
// with known automorphism groups.
func TestMinMaskAutKnownGroups(t *testing.T) {
	cases := []struct {
		g    *Graph
		aut  int64
		name string
	}{
		{MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}), 2, "P4"},
		{MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}), 24, "K4"},
		{MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}), 24, "star5"},
		{MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}}), 10, "C5"},
	}
	for _, tc := range cases {
		// Direct check where the labeling happens to be minimal-mask;
		// minMaskAut only reports |Aut| for minimal labelings.
		rows := make([]uint64, tc.g.N())
		for u := 0; u < tc.g.N(); u++ {
			for _, v := range tc.g.Neighbors(u) {
				rows[u] |= 1 << uint(v)
			}
		}
		if minimal, aut := minMaskAut(rows, tc.g.N()); minimal && aut != tc.aut {
			t.Errorf("%s: minMaskAut |Aut| = %d, want %d", tc.name, aut, tc.aut)
		}
		// Class-level check for every labeling, via the enumerated orbit of
		// the class with the same canonical key.
		key := tc.g.CanonicalKey()
		found := false
		for _, cl := range AllClasses(tc.g.N(), EnumOptions{UpToIso: true, MaxEdges: -1}) {
			if cl.Key == key {
				found = true
				if got := factorial(tc.g.N()) / cl.Orbit; got != tc.aut {
					t.Errorf("%s: |Aut| = %d, want %d", tc.name, got, tc.aut)
				}
				break
			}
		}
		if !found {
			t.Errorf("%s: class not found in enumeration", tc.name)
		}
	}
}
