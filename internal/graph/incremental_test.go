package graph

import (
	"math/rand"
	"testing"
)

// checkAgainstBFS pins every IncDist row, aggregate, and derived quantity
// to a fresh BFS of the same graph.
func checkAgainstBFS(t *testing.T, d *IncDist, ctxt string) {
	t.Helper()
	g := d.Graph()
	n := g.N()
	dist := make([]int, n)
	var bfs BFSScratch
	for s := 0; s < n; s++ {
		g.BFSScratchInto(s, dist, &bfs)
		var sum int64
		var un int
		var max int64
		for v, dv := range dist {
			if got := d.Dist(s, v); got != dv {
				t.Fatalf("%s: dist(%d,%d) = %d, want %d", ctxt, s, v, got, dv)
			}
			if dv == Unreachable {
				un++
				continue
			}
			sum += int64(dv)
			if int64(dv) > max {
				max = int64(dv)
			}
		}
		if d.SumDist(s) != sum {
			t.Fatalf("%s: SumDist(%d) = %d, want %d", ctxt, s, d.SumDist(s), sum)
		}
		if d.UnreachableFrom(s) != un {
			t.Fatalf("%s: UnreachableFrom(%d) = %d, want %d", ctxt, s, d.UnreachableFrom(s), un)
		}
		if d.MaxDist(s) != max {
			t.Fatalf("%s: MaxDist(%d) = %d, want %d", ctxt, s, d.MaxDist(s), max)
		}
	}
	if d.Connected() != g.Connected() {
		t.Fatalf("%s: Connected() = %v, want %v", ctxt, d.Connected(), g.Connected())
	}
}

// TestIncDistTable drives hand-picked toggle sequences through the repair
// paths that matter: shortcut adds, bridge removals (vertices become
// unreachable), no-op removals off shortest paths, and re-adds.
func TestIncDistTable(t *testing.T) {
	type toggle struct {
		add  bool
		u, v int
	}
	cases := []struct {
		name    string
		n       int
		edges   []Edge
		toggles []toggle
	}{
		{
			name:  "path shortcut then bridge cut",
			n:     6,
			edges: []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}},
			toggles: []toggle{
				{true, 0, 5},  // close the cycle: big shortcut both directions
				{false, 2, 3}, // still connected via the chord
				{false, 0, 5}, // now 0..2 and 3..5 split
				{true, 2, 3},  // rejoin
			},
		},
		{
			name:  "star loses and regains a leaf",
			n:     5,
			edges: []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}},
			toggles: []toggle{
				{false, 0, 4}, // leaf 4 unreachable from everyone
				{true, 1, 4},  // re-attached one level deeper
				{true, 0, 4},  // back to distance 1
				{false, 1, 4},
			},
		},
		{
			name:  "equal-level edge is distance-neutral",
			n:     4,
			edges: []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
			toggles: []toggle{
				{false, 1, 3}, // 3 keeps support via 2
				{true, 1, 3},
				{false, 2, 3},
			},
		},
		{
			name:  "isolated vertices join late",
			n:     5,
			edges: []Edge{{0, 1}},
			toggles: []toggle{
				{true, 2, 3},
				{true, 1, 2}, // merges two components
				{true, 3, 4},
				{false, 1, 2}, // splits them again
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := FromEdges(tc.n, tc.edges)
			if err != nil {
				t.Fatal(err)
			}
			d := NewIncDist(g)
			checkAgainstBFS(t, d, "init")
			for i, tg := range tc.toggles {
				var ok bool
				if tg.add {
					ok = d.AddEdge(tg.u, tg.v)
				} else {
					ok = d.RemoveEdge(tg.u, tg.v)
				}
				if !ok {
					t.Fatalf("toggle %d (%+v) was a no-op", i, tg)
				}
				checkAgainstBFS(t, d, tc.name)
			}
		})
	}
}

// TestIncDistRandomToggles is the table test's randomized sibling: long
// uniform toggle sequences over several sizes, verified after every step,
// at both the default threshold and a threshold of 1 (forcing the
// full-recompute fallback on every cascade).
func TestIncDistRandomToggles(t *testing.T) {
	for _, threshold := range []int{0, 1} {
		var fallbacks uint64
		for _, n := range []int{2, 3, 7, 16, 33, 70} {
			rng := rand.New(rand.NewSource(int64(100*n + threshold)))
			m := n
			if max := n * (n - 1) / 2; m > max {
				m = max
			}
			g, err := RandomGraph(n, m, rng)
			if err != nil {
				t.Fatal(err)
			}
			d := NewIncDist(g)
			d.SetThreshold(threshold)
			steps := 120
			if n > 30 {
				steps = 40
			}
			for i := 0; i < steps; i++ {
				u := rng.Intn(n)
				v := rng.Intn(n)
				if u == v {
					continue
				}
				if g.HasEdge(u, v) {
					d.RemoveEdge(u, v)
				} else {
					d.AddEdge(u, v)
				}
				checkAgainstBFS(t, d, "random")
			}
			fallbacks += d.Stats().Fallbacks
		}
		if threshold == 1 && fallbacks == 0 {
			t.Fatal("threshold=1 never exercised the fallback path")
		}
	}
}

// TestIncDistPartialProbe pins the probe discipline: a partial toggle
// repairs exactly the requested rows, and inverting it with the same rows
// restores the full state bit-for-bit.
func TestIncDistPartialProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20
	g, err := RandomConnectedGraph(n, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := NewIncDist(g)
	snapshot := func() []int32 {
		out := make([]int32, 0, n*n)
		for s := 0; s < n; s++ {
			out = append(out, d.Row(s)...)
		}
		return out
	}
	before := snapshot()
	for i := 0; i < 200; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		rows := []int{u, v}
		if g.HasEdge(u, v) {
			if !d.RemoveEdgePartial(u, v, rows) {
				t.Fatal("remove failed")
			}
			// The repaired rows must match a fresh BFS of the mutated graph.
			dist := make([]int, n)
			var bfs BFSScratch
			for _, s := range rows {
				g.BFSScratchInto(s, dist, &bfs)
				for x, dv := range dist {
					if d.Dist(s, x) != dv {
						t.Fatalf("probe remove (%d,%d): dist(%d,%d) = %d, want %d", u, v, s, x, d.Dist(s, x), dv)
					}
				}
			}
			if !d.AddEdgePartial(u, v, rows) {
				t.Fatal("revert add failed")
			}
		} else {
			if !d.AddEdgePartial(u, v, rows) {
				t.Fatal("add failed")
			}
			if !d.RemoveEdgePartial(u, v, rows) {
				t.Fatal("revert remove failed")
			}
		}
		after := snapshot()
		for k := range after {
			if after[k] != before[k] {
				t.Fatalf("probe %d corrupted state at flat index %d: %d vs %d", i, k, after[k], before[k])
			}
		}
	}
}
