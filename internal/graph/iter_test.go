package graph

import "testing"

// TestAllMatchesEnumerateKeyed: the iterator and the callback shim yield
// the same graphs with the same keys in the same order.
func TestAllMatchesEnumerateKeyed(t *testing.T) {
	opts := EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}
	var fromShim []string
	n := EnumerateKeyed(5, opts, func(g *Graph, key string) {
		fromShim = append(fromShim, key+" "+g.String())
	})
	var fromIter []string
	for g, key := range All(5, opts) {
		fromIter = append(fromIter, key+" "+g.String())
	}
	if n != len(fromShim) || n != 21 {
		t.Fatalf("enumerated %d connected classes on 5 nodes, want 21", n)
	}
	if len(fromIter) != len(fromShim) {
		t.Fatalf("iterator yielded %d graphs, shim %d", len(fromIter), len(fromShim))
	}
	for i := range fromShim {
		if fromIter[i] != fromShim[i] {
			t.Fatalf("position %d: iterator %q vs shim %q", i, fromIter[i], fromShim[i])
		}
	}
}

// TestAllEarlyBreakStopsEnumeration: breaking the range stops generation —
// the loop body runs exactly as often as requested, and the break returns
// (rather than exhausting the 2^15 labeled space first).
func TestAllEarlyBreakStopsEnumeration(t *testing.T) {
	bodies := 0
	for range All(6, EnumOptions{ConnectedOnly: true, UpToIso: true, MaxEdges: -1}) {
		bodies++
		if bodies == 3 {
			break
		}
	}
	if bodies != 3 {
		t.Fatalf("loop body ran %d times, want 3", bodies)
	}
}

// TestAllFreeTreesMatchesKeyedShim: same check for the tree stream.
func TestAllFreeTreesMatchesKeyedShim(t *testing.T) {
	var fromShim []string
	n := FreeTreesKeyed(7, func(g *Graph, key string) {
		fromShim = append(fromShim, key+" "+g.String())
	})
	var fromIter []string
	for g, key := range AllFreeTrees(7) {
		fromIter = append(fromIter, key+" "+g.String())
	}
	if n != 11 {
		t.Fatalf("enumerated %d free trees on 7 nodes, want 11", n)
	}
	if len(fromIter) != len(fromShim) {
		t.Fatalf("iterator yielded %d trees, shim %d", len(fromIter), len(fromShim))
	}
	for i := range fromShim {
		if fromIter[i] != fromShim[i] {
			t.Fatalf("position %d: iterator %q vs shim %q", i, fromIter[i], fromShim[i])
		}
	}
}

// TestAllFreeTreesEarlyBreak: breaking the tree range stops the
// Beyer–Hedetniemi generation mid-stream.
func TestAllFreeTreesEarlyBreak(t *testing.T) {
	bodies := 0
	for range AllFreeTrees(9) {
		bodies++
		if bodies == 4 {
			break
		}
	}
	if bodies != 4 {
		t.Fatalf("loop body ran %d times, want 4", bodies)
	}
}
