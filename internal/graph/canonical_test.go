package graph

import (
	"math/rand"
	"testing"
)

func TestCanonicalKeyInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		h, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		if g.CanonicalKey() != h.CanonicalKey() {
			t.Fatalf("canonical key changed under permutation:\n%s\n%s", g, h)
		}
	}
}

func TestCanonicalKeySeparatesNonIsomorphic(t *testing.T) {
	// Path P4 vs star K1,3: same degree count sum, different structure.
	path := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	star := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if path.CanonicalKey() == star.CanonicalKey() {
		t.Fatal("P4 and K1,3 share a canonical key")
	}
	if Isomorphic(path, star) {
		t.Fatal("P4 reported isomorphic to K1,3")
	}
	relabeled, _ := path.Permute([]int{3, 1, 0, 2})
	if !Isomorphic(path, relabeled) {
		t.Fatal("relabeled path reported non-isomorphic")
	}
}

// Known counts of graphs on n nodes up to isomorphism (OEIS A000088) and
// connected graphs (A001349).
func TestEnumerateCounts(t *testing.T) {
	allCounts := map[int]int{1: 1, 2: 2, 3: 4, 4: 11, 5: 34}
	connCounts := map[int]int{1: 1, 2: 1, 3: 2, 4: 6, 5: 21}
	for n := 1; n <= 5; n++ {
		got := Enumerate(n, EnumOptions{UpToIso: true, MaxEdges: -1}, func(*Graph) {})
		if got != allCounts[n] {
			t.Fatalf("Enumerate(%d, iso) = %d, want %d", n, got, allCounts[n])
		}
		got = Enumerate(n, EnumOptions{UpToIso: true, ConnectedOnly: true, MaxEdges: -1}, func(*Graph) {})
		if got != connCounts[n] {
			t.Fatalf("Enumerate(%d, conn iso) = %d, want %d", n, got, connCounts[n])
		}
	}
}

func TestEnumerateLabeled(t *testing.T) {
	// 2^(4 choose 2) = 64 labeled graphs on 4 nodes.
	got := Enumerate(4, EnumOptions{MaxEdges: -1}, func(*Graph) {})
	if got != 64 {
		t.Fatalf("labeled Enumerate(4) = %d, want 64", got)
	}
	// Edge-count bounds: exactly the 3-edge graphs: C(6,3) = 20.
	got = Enumerate(4, EnumOptions{MinEdges: 3, MaxEdges: 3}, func(g *Graph) {
		if g.M() != 3 {
			t.Fatalf("edge bound violated: %s", g)
		}
	})
	if got != 20 {
		t.Fatalf("3-edge labeled Enumerate(4) = %d, want 20", got)
	}
}

func TestEnumerateTreesMatchFreeTrees(t *testing.T) {
	for n := 1; n <= 6; n++ {
		viaEnum := 0
		Enumerate(n, EnumOptions{UpToIso: true, ConnectedOnly: true, MinEdges: n - 1, MaxEdges: n - 1}, func(g *Graph) {
			if !g.IsTree() {
				t.Fatalf("connected n-1 edge graph is not a tree: %s", g)
			}
			viaEnum++
		})
		viaFree := FreeTrees(n, func(*Graph) {})
		if viaEnum != viaFree {
			t.Fatalf("n=%d: Enumerate trees = %d, FreeTrees = %d", n, viaEnum, viaFree)
		}
	}
}
