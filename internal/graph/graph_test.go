package graph

import (
	"math/rand"
	"testing"
)

func TestNewAndBasicOps(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("New(4): got n=%d m=%d, want 4, 0", g.N(), g.M())
	}
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) returned false on empty graph")
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.AddEdge(0, 1) || g.AddEdge(1, 0) {
		t.Fatal("duplicate AddEdge returned true")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("loop AddEdge returned true")
	}
	if g.AddEdge(0, 4) || g.AddEdge(-1, 0) {
		t.Fatal("out-of-range AddEdge returned true")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) returned false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("second RemoveEdge returned true")
	}
	if g.M() != 0 {
		t.Fatalf("M after removal = %d, want 0", g.M())
	}
}

func TestFromEdgesErrors(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{name: "out of range", n: 2, edges: []Edge{{U: 0, V: 2}}},
		{name: "loop", n: 2, edges: []Edge{{U: 1, V: 1}}},
		{name: "duplicate", n: 3, edges: []Edge{{U: 0, V: 1}, {U: 1, V: 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromEdges(tt.n, tt.edges); err == nil {
				t.Fatalf("FromEdges(%d, %v): no error", tt.n, tt.edges)
			}
		})
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{U: 3, V: 1}
	if got := e.Normalize(); got != (Edge{U: 1, V: 3}) {
		t.Fatalf("Normalize: got %v", got)
	}
	if e.Other(3) != 1 || e.Other(1) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	if e.String() != "1-3" {
		t.Fatalf("String: got %q", e.String())
	}
}

func TestNeighborsSortedAndDegree(t *testing.T) {
	g := MustFromEdges(5, []Edge{{U: 3, V: 0}, {U: 3, V: 4}, {U: 3, V: 1}})
	want := []int{0, 1, 4}
	got := g.Neighbors(3)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(3) = %v, want %v", got, want)
		}
	}
	if g.Degree(3) != 3 || g.Degree(2) != 0 {
		t.Fatal("Degree wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}})
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone changed original")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestComplement(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	c := g.Complement()
	if c.M() != 4 {
		t.Fatalf("complement has %d edges, want 4", c.M())
	}
	if c.HasEdge(0, 1) || !c.HasEdge(0, 2) {
		t.Fatal("complement edges wrong")
	}
	if !g.Equal(c.Complement()) {
		t.Fatal("double complement differs from original")
	}
}

func TestPermute(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}})
	h, err := g.Permute([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasEdge(2, 0) || h.M() != 1 {
		t.Fatalf("Permute result wrong: %s", h)
	}
	if _, err := g.Permute([]int{0, 0, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := g.Permute([]int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
}

func TestBFSAndDist(t *testing.T) {
	// Path 0-1-2-3 plus isolated node 4.
	g := MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, Unreachable}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS(0) = %v, want %v", d, want)
		}
	}
	if g.Dist(3, 0) != 3 || g.Dist(0, 4) != Unreachable || g.Dist(2, 2) != 0 {
		t.Fatal("Dist wrong")
	}
}

func TestTotalDist(t *testing.T) {
	g := MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	sum, unreachable := g.TotalDist(0)
	if sum != 6 || unreachable != 1 {
		t.Fatalf("TotalDist(0) = (%d, %d), want (6, 1)", sum, unreachable)
	}
}

func TestConnectivity(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 || len(comps[0]) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	g.AddEdge(1, 2)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if New(0).Connected() != true || New(1).Connected() != true {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestDiameterEccentricity(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if g.Diameter() != 3 {
		t.Fatalf("path diameter = %d, want 3", g.Diameter())
	}
	if g.Eccentricity(1) != 2 {
		t.Fatalf("Eccentricity(1) = %d, want 2", g.Eccentricity(1))
	}
	g.RemoveEdge(1, 2)
	if g.Diameter() != Unreachable {
		t.Fatal("diameter of disconnected graph should be Unreachable")
	}
}

func TestIsTree(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges []Edge
		want  bool
	}{
		{name: "path", n: 3, edges: []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, want: true},
		{name: "single node", n: 1, edges: nil, want: true},
		{name: "cycle", n: 3, edges: []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, want: false},
		{name: "forest", n: 4, edges: []Edge{{U: 0, V: 1}, {U: 2, V: 3}}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := MustFromEdges(tt.n, tt.edges)
			if got := g.IsTree(); got != tt.want {
				t.Fatalf("IsTree = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDegreeSequence(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	got := g.DegreeSequence()
	want := []int{3, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", got, want)
		}
	}
}

// TestBFSIntoMatchesBFS cross-checks the allocation-free variant on random
// graphs.
func TestBFSIntoMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		m := rng.Intn(n * (n - 1) / 2)
		g, err := RandomGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]int, n)
		for u := 0; u < n; u++ {
			g.BFSInto(u, buf)
			ref := g.BFS(u)
			for v := range ref {
				if buf[v] != ref[v] {
					t.Fatalf("BFSInto differs from BFS at %d->%d", u, v)
				}
			}
		}
	}
}

// TestDistanceMetricAxioms checks symmetry and the triangle inequality on
// random connected graphs.
func TestDistanceMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		m := n - 1 + rng.Intn(n)
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		g, err := RandomConnectedGraph(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := g.AllPairs()
		for u := 0; u < n; u++ {
			if d[u][u] != 0 {
				t.Fatalf("d[%d][%d] = %d, want 0", u, u, d[u][u])
			}
			for v := 0; v < n; v++ {
				if d[u][v] != d[v][u] {
					t.Fatalf("distance not symmetric at (%d,%d)", u, v)
				}
				for w := 0; w < n; w++ {
					if d[u][w] > d[u][v]+d[v][w] {
						t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
					}
				}
			}
		}
	}
}
