package bncg_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	bncg "repro"
)

// HTTP serving benchmarks (PR 6). These drive the bncg daemon end to end
// over real HTTP — mux, admission control, metrics middleware, JSON
// encoding — against a cache certified for every n=5 class, so /v1/check
// answers purely from parametric certificates: the certified-cache hot
// path a warm production daemon serves. Each benchmark reports req/s via
// b.ReportMetric on top of the usual ns/op; benchjson gates the ns/op
// trajectory in BENCH_http.json.

// newBenchServer builds a daemon whose cache holds a certificate for
// every (n=5 class, concept) pair, plus an httptest front end.
func newBenchServer(b *testing.B) (*httptest.Server, string) {
	b.Helper()
	cache := bncg.NewSweepCache()
	_, err := bncg.RunSweep(context.Background(), bncg.SweepOptions{
		N:        5,
		Alphas:   []bncg.Alpha{bncg.AlphaInt(2)},
		Concepts: bncg.Concepts(),
		Cache:    cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := bncg.NewServer(bncg.ServerConfig{Cache: cache})
	b.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	return ts, bncg.EncodeGraph(bncg.Star(5))
}

func checkOnce(client *http.Client, url, body string) error {
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// BenchmarkServeCheckCertified is one client issuing /v1/check requests
// back to back — per-request latency of the certified hot path. The α
// (7/3) is off the sweep grid on purpose: certificates answer every α,
// and the benchmark must never fall back to a fresh computation.
func BenchmarkServeCheckCertified(b *testing.B) {
	ts, star := newBenchServer(b)
	url := ts.URL + "/v1/check?alpha=7/3"
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checkOnce(client, url, star); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeCheckParallel is the same request under RunParallel —
// aggregate throughput with concurrent clients sharing the daemon.
func BenchmarkServeCheckParallel(b *testing.B) {
	ts, star := newBenchServer(b)
	url := ts.URL + "/v1/check?alpha=7/3"
	var failed atomic.Bool
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := ts.Client()
		for pb.Next() {
			if err := checkOnce(client, url, star); err != nil {
				failed.Store(true)
				return
			}
		}
	})
	b.StopTimer()
	if failed.Load() {
		b.Fatal("a parallel client saw a failed request")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
