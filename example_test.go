package bncg_test

import (
	"context"
	"fmt"

	bncg "repro"
)

// Checking a network against the solution-concept ladder.
func ExampleCheck() {
	gm, err := bncg.NewGame(6, bncg.AlphaInt(3))
	if err != nil {
		fmt.Println(err)
		return
	}
	star := bncg.Star(6)
	fmt.Println("star PS: ", bncg.Check(gm, star, bncg.PS).Stable)
	fmt.Println("star BSE:", bncg.Check(gm, star, bncg.BSE).Stable)

	path := bncg.Path(6)
	res := bncg.Check(gm, path, bncg.BAE)
	fmt.Println("path BAE:", res.Stable, "—", res.Witness)
	// Output:
	// star PS:  true
	// star BSE: true
	// path BAE: false — add(0-4)
}

// Exact rational edge prices avoid floating-point ties; the paper's
// α = 104.5 is representable directly.
func ExampleAlpha2() {
	alpha := bncg.Alpha2(209, 2)
	fmt.Println(alpha)
	// Output:
	// 209/2
}

// The social cost ratio ρ compares a network against the social optimum.
func ExampleGame_Rho() {
	gm, err := bncg.NewGame(8, bncg.AlphaInt(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("star: %.3f\n", gm.Rho(bncg.Star(8)))
	fmt.Printf("path: %.3f\n", gm.Rho(bncg.Path(8)))
	// Output:
	// star: 1.000
	// path: 1.556
}

// Exhaustive worst-case Price of Anarchy over all trees.
func ExampleWorstTree() {
	res, err := bncg.WorstTree(context.Background(), 8, bncg.AlphaInt(8), bncg.ThreeBSE)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("3-BSE trees on 8 nodes at α=8: worst ρ = %.3f over %d equilibria\n",
		res.Rho, res.Equilibria)
	// Output:
	// 3-BSE trees on 8 nodes at α=8: worst ρ = 1.219 over 18 equilibria
}
