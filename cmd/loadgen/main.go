// Command loadgen is a wrk-style HTTP load driver for a running bncg
// daemon. It hammers one endpoint with a fixed number of concurrent
// clients for a fixed duration (or request budget) and reports
// throughput and a latency distribution:
//
//	bncg serve -addr 127.0.0.1:8371 -store /tmp/sv &
//	go run ./cmd/loadgen -url 'http://127.0.0.1:8371/v1/check?n=5&class=0&concept=ne&alpha=2' \
//	    -c 16 -duration 10s
//
// With -json the summary is machine-readable, which is what the CI HTTP
// benchmark gate consumes. Status codes other than -expect-status count
// as errors; any error makes the exit status non-zero (after the summary
// is printed) so a smoke run doubles as a correctness check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// summary is the aggregate result of one load run.
type summary struct {
	URL       string         `json:"url"`
	Clients   int            `json:"clients"`
	Requests  int            `json:"requests"`
	Errors    int            `json:"errors"`
	ByStatus  map[string]int `json:"by_status"`
	Elapsed   float64        `json:"elapsed_seconds"`
	ReqPerSec float64        `json:"req_per_sec"`
	LatencyMS latencyMS      `json:"latency_ms"`
}

type latencyMS struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "target URL (required)")
	method := fs.String("method", http.MethodGet, "HTTP method")
	bodyFile := fs.String("body-file", "", "file sent as the request body on every request")
	contentType := fs.String("content-type", "text/plain", "Content-Type header when a body is sent")
	clients := fs.Int("c", 8, "concurrent clients")
	duration := fs.Duration("duration", 5*time.Second, "run length (ignored when -n > 0)")
	total := fs.Int("n", 0, "total request budget (0 = run for -duration)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	expect := fs.Int("expect-status", http.StatusOK, "status code counted as success")
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	maxErrs := fs.Int("max-errors", 0, "tolerated error count before a non-zero exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	if *clients < 1 {
		return fmt.Errorf("-c must be at least 1")
	}
	var body []byte
	if *bodyFile != "" {
		var err error
		if body, err = os.ReadFile(*bodyFile); err != nil {
			return err
		}
	}

	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = *clients
	transport.MaxIdleConnsPerHost = *clients
	client := &http.Client{Transport: transport, Timeout: *timeout}

	// Each worker drains a shared request budget: a closed channel when
	// duration-bound, a counted one when request-bound.
	budget := make(chan struct{})
	if *total > 0 {
		counted := make(chan struct{}, *total)
		for i := 0; i < *total; i++ {
			counted <- struct{}{}
		}
		close(counted)
		budget = counted
	}
	deadline := time.Now().Add(*duration)

	type workerResult struct {
		latencies []time.Duration
		byStatus  map[int]int
		netErrs   int
	}
	results := make([]workerResult, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(res *workerResult) {
			defer wg.Done()
			res.byStatus = make(map[int]int)
			for {
				if *total > 0 {
					if _, ok := <-budget; !ok {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				req, err := http.NewRequest(*method, *url, bytes.NewReader(body))
				if err != nil {
					res.netErrs++
					return // malformed target: every retry fails identically
				}
				if body != nil {
					req.Header.Set("Content-Type", *contentType)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					res.netErrs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				res.latencies = append(res.latencies, time.Since(t0))
				res.byStatus[resp.StatusCode]++
			}
		}(&results[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	byStatus := make(map[string]int)
	requests, errs := 0, 0
	for _, res := range results {
		all = append(all, res.latencies...)
		requests += len(res.latencies) + res.netErrs
		errs += res.netErrs
		if res.netErrs > 0 {
			byStatus["net_error"] += res.netErrs
		}
		for code, n := range res.byStatus {
			byStatus[fmt.Sprint(code)] += n
			if code != *expect {
				errs += n
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	quantile := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return ms(all[i])
	}
	sum := summary{
		URL:       *url,
		Clients:   *clients,
		Requests:  requests,
		Errors:    errs,
		ByStatus:  byStatus,
		Elapsed:   elapsed.Seconds(),
		ReqPerSec: float64(requests) / elapsed.Seconds(),
		LatencyMS: latencyMS{P50: quantile(0.50), P90: quantile(0.90), P99: quantile(0.99), Max: quantile(1)},
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "%d requests in %.2fs (%d clients): %.1f req/s\n",
			sum.Requests, sum.Elapsed, sum.Clients, sum.ReqPerSec)
		fmt.Fprintf(stdout, "latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
			sum.LatencyMS.P50, sum.LatencyMS.P90, sum.LatencyMS.P99, sum.LatencyMS.Max)
		for code, n := range byStatus {
			fmt.Fprintf(stdout, "  status %s: %d\n", code, n)
		}
	}
	if errs > *maxErrs {
		return fmt.Errorf("%d requests failed (status != %d), tolerated %d", errs, *expect, *maxErrs)
	}
	return nil
}
