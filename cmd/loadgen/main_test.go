package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadgenRequestBudget(t *testing.T) {
	var hits int64
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-mu
		hits++
		mu <- struct{}{}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-c", "4", "-n", "40", "-json"}, &out); err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Requests != 40 {
		t.Fatalf("requests = %d, want exactly the -n budget 40", sum.Requests)
	}
	if hits != 40 {
		t.Fatalf("server saw %d hits, want 40", hits)
	}
	if sum.Errors != 0 || sum.ByStatus["200"] != 40 {
		t.Fatalf("unexpected errors/status map: %+v", sum)
	}
	if sum.ReqPerSec <= 0 || sum.LatencyMS.P50 < 0 || sum.LatencyMS.Max < sum.LatencyMS.P50 {
		t.Fatalf("implausible latency summary: %+v", sum)
	}
}

func TestLoadgenCountsUnexpectedStatusAsError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope","status":429}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-c", "2", "-n", "6", "-json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("want failure for non-200 responses, got err=%v", err)
	}
	var sum summary
	if jerr := json.Unmarshal(out.Bytes(), &sum); jerr != nil {
		t.Fatalf("summary still expected before the error: %v", jerr)
	}
	if sum.Errors != 6 || sum.ByStatus["429"] != 6 {
		t.Fatalf("errors=%d by_status=%v, want all 6 as 429 errors", sum.Errors, sum.ByStatus)
	}

	// Flipping the expectation turns the same traffic into a clean run.
	out.Reset()
	if err := run([]string{"-url", ts.URL, "-c", "2", "-n", "6", "-expect-status", "429"}, &out); err != nil {
		t.Fatalf("429 expected, still failed: %v", err)
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -url must fail")
	}
	if err := run([]string{"-url", "http://x", "-c", "0"}, &out); err == nil {
		t.Fatal("-c 0 must fail")
	}
}

func TestLoadgenPostBody(t *testing.T) {
	want := "n 3\n0 1\n0 2\n"
	bodyFile := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(bodyFile, []byte(want), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		if r.Method != http.MethodPost || string(b) != want || r.Header.Get("Content-Type") != "text/plain" {
			http.Error(w, "bad request echo", http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-method", "POST", "-body-file", bodyFile,
		"-c", "2", "-n", "10"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}
