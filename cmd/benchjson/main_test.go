package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.00GHz
BenchmarkSweepLatticeN6_Workers1-8          1        653861666 ns/op        5242880 B/op      40000 allocs/op
BenchmarkSweepLatticeN6_WarmCache-8         1          5366167 ns/op
PASS
ok      repro   7.612s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" || !strings.Contains(doc.CPU, "Example") {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(doc.Results), doc.Results)
	}
	first := doc.Results[0]
	if first.Name != "BenchmarkSweepLatticeN6_Workers1-8" || first.Iterations != 1 ||
		first.NsPerOp != 653861666 || first.BytesPerOp != 5242880 || first.AllocsPerOp != 40000 {
		t.Fatalf("first result: %+v", first)
	}
	second := doc.Results[1]
	if second.NsPerOp != 5366167 || second.BytesPerOp != 0 {
		t.Fatalf("second result: %+v", second)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkBroken-8 x y z\n--- FAIL: nope\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("garbage produced results: %+v", doc.Results)
	}
}

// TestLoadTrajectory: -append composes with an empty file, a legacy
// single-run object, and an existing trajectory array.
func TestLoadTrajectory(t *testing.T) {
	dir := t.TempDir()
	if docs, err := loadTrajectory(filepath.Join(dir, "absent.json")); err != nil || docs != nil {
		t.Fatalf("absent file: %v %v", docs, err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"goos":"linux","results":[{"name":"B1","iterations":1,"ns_per_op":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := loadTrajectory(legacy)
	if err != nil || len(docs) != 1 || docs[0].Goos != "linux" || len(docs[0].Results) != 1 {
		t.Fatalf("legacy object: %+v %v", docs, err)
	}
	docs = append(docs, Document{Note: "second", Results: []Result{{Name: "B2", Iterations: 1, NsPerOp: 7}}})
	enc, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	traj := filepath.Join(dir, "traj.json")
	if err := os.WriteFile(traj, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadTrajectory(traj)
	if err != nil || len(back) != 2 || back[1].Note != "second" {
		t.Fatalf("trajectory array: %+v %v", back, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrajectory(bad); err == nil {
		t.Fatal("garbage accepted as a trajectory")
	}
}
