package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.00GHz
BenchmarkSweepLatticeN6_Workers1-8          1        653861666 ns/op        5242880 B/op      40000 allocs/op
BenchmarkSweepLatticeN6_WarmCache-8         1          5366167 ns/op
PASS
ok      repro   7.612s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" || !strings.Contains(doc.CPU, "Example") {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(doc.Results), doc.Results)
	}
	first := doc.Results[0]
	if first.Name != "BenchmarkSweepLatticeN6_Workers1-8" || first.Iterations != 1 ||
		first.NsPerOp != 653861666 || first.BytesPerOp != 5242880 || first.AllocsPerOp != 40000 {
		t.Fatalf("first result: %+v", first)
	}
	second := doc.Results[1]
	if second.NsPerOp != 5366167 || second.BytesPerOp != 0 {
		t.Fatalf("second result: %+v", second)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkBroken-8 x y z\n--- FAIL: nope\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("garbage produced results: %+v", doc.Results)
	}
}
