package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.00GHz
BenchmarkSweepLatticeN6_Workers1-8          1        653861666 ns/op        5242880 B/op      40000 allocs/op
BenchmarkSweepLatticeN6_WarmCache-8         1          5366167 ns/op
PASS
ok      repro   7.612s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" || !strings.Contains(doc.CPU, "Example") {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(doc.Results), doc.Results)
	}
	first := doc.Results[0]
	if first.Name != "BenchmarkSweepLatticeN6_Workers1-8" || first.Iterations != 1 ||
		first.NsPerOp != 653861666 || first.BytesPerOp != 5242880 || first.AllocsPerOp != 40000 {
		t.Fatalf("first result: %+v", first)
	}
	second := doc.Results[1]
	if second.NsPerOp != 5366167 || second.BytesPerOp != 0 {
		t.Fatalf("second result: %+v", second)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkBroken-8 x y z\n--- FAIL: nope\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("garbage produced results: %+v", doc.Results)
	}
}

// TestLoadTrajectory: -append composes with an empty file, a legacy
// single-run object, and an existing trajectory array.
func TestLoadTrajectory(t *testing.T) {
	dir := t.TempDir()
	if docs, err := loadTrajectory(filepath.Join(dir, "absent.json")); err != nil || docs != nil {
		t.Fatalf("absent file: %v %v", docs, err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"goos":"linux","results":[{"name":"B1","iterations":1,"ns_per_op":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := loadTrajectory(legacy)
	if err != nil || len(docs) != 1 || docs[0].Goos != "linux" || len(docs[0].Results) != 1 {
		t.Fatalf("legacy object: %+v %v", docs, err)
	}
	docs = append(docs, Document{Note: "second", Results: []Result{{Name: "B2", Iterations: 1, NsPerOp: 7}}})
	enc, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	traj := filepath.Join(dir, "traj.json")
	if err := os.WriteFile(traj, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadTrajectory(traj)
	if err != nil || len(back) != 2 || back[1].Note != "second" {
		t.Fatalf("trajectory array: %+v %v", back, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrajectory(bad); err == nil {
		t.Fatal("garbage accepted as a trajectory")
	}
}

func TestParsePercent(t *testing.T) {
	for in, want := range map[string]float64{"25%": 0.25, "25": 0.25, " 150% ": 1.5, "0%": 0} {
		got, err := parsePercent(in)
		if err != nil || got != want {
			t.Errorf("parsePercent(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x%", "-5%"} {
		if _, err := parsePercent(in); err == nil {
			t.Errorf("parsePercent(%q) accepted", in)
		}
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSweep-8":                    "BenchmarkSweep",
		"BenchmarkSweep":                      "BenchmarkSweep",
		"BenchmarkSweepLatticeN6_Workers1-16": "BenchmarkSweepLatticeN6_Workers1",
		"Benchmark_x-y":                       "Benchmark_x-y",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeTrajectory writes a one- or multi-run trajectory for the compare
// tests; only the latest run matters to the gate.
func writeTrajectory(t *testing.T, path string, runs ...Document) {
	t.Helper()
	enc, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareFlagsSyntheticRegression demonstrates the CI gate: a
// synthetic 26% ns/op slowdown (and separately an allocs/op jump) must
// fail a 25% threshold, while equal-or-better runs and sub-threshold noise
// must pass.
func TestCompareFlagsSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	base := Document{Note: "baseline", Results: []Result{
		{Name: "BenchmarkSweep-1", Iterations: 1, NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkStore-1", Iterations: 1, NsPerOp: 500, AllocsPerOp: 0},
	}}
	writeTrajectory(t, oldPath, Document{Note: "older, ignored"}, base)

	run := func(newDoc Document, threshold float64) (int, string) {
		t.Helper()
		writeTrajectory(t, newPath, newDoc)
		var buf strings.Builder
		failures, err := compareTrajectories(&buf, oldPath, newPath, threshold)
		if err != nil {
			t.Fatal(err)
		}
		return failures, buf.String()
	}

	// 26% ns/op regression on a different GOMAXPROCS suffix: caught.
	failures, out := run(Document{Results: []Result{
		{Name: "BenchmarkSweep-8", Iterations: 1, NsPerOp: 1260, AllocsPerOp: 100},
		{Name: "BenchmarkStore-8", Iterations: 1, NsPerOp: 500},
	}}, 0.25)
	if failures != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("26%% slowdown: failures=%d out=%q", failures, out)
	}

	// 24% slowdown: within threshold.
	if failures, out = run(Document{Results: []Result{
		{Name: "BenchmarkSweep-8", Iterations: 1, NsPerOp: 1240, AllocsPerOp: 100},
		{Name: "BenchmarkStore-8", Iterations: 1, NsPerOp: 500},
	}}, 0.25); failures != 0 {
		t.Fatalf("24%% slowdown flagged: %q", out)
	}

	// Alloc regression alone (ns/op improved): caught, including the
	// 0 -> n unbounded case.
	if failures, out = run(Document{Results: []Result{
		{Name: "BenchmarkSweep-8", Iterations: 1, NsPerOp: 900, AllocsPerOp: 130},
		{Name: "BenchmarkStore-8", Iterations: 1, NsPerOp: 400, AllocsPerOp: 7},
	}}, 0.25); failures != 2 {
		t.Fatalf("alloc regressions: failures=%d out=%q", failures, out)
	}

	// Improvement plus added/dropped benchmarks: never a failure.
	if failures, out = run(Document{Results: []Result{
		{Name: "BenchmarkSweep-8", Iterations: 1, NsPerOp: 400, AllocsPerOp: 10},
		{Name: "BenchmarkNew-8", Iterations: 1, NsPerOp: 42},
	}}, 0.25); failures != 0 || !strings.Contains(out, "new benchmark") || !strings.Contains(out, "dropped") {
		t.Fatalf("improvement run: failures=%d out=%q", failures, out)
	}
}

// TestCompareSkipsAllocsWithoutBenchmem: a baseline (or new run) recorded
// without -benchmem serializes every allocs_per_op as absent, which is
// indistinguishable from 0 — the gate must disable the allocs comparison
// rather than flag every allocating benchmark as an unbounded regression.
func TestCompareSkipsAllocsWithoutBenchmem(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	// Old run recorded without -benchmem: zero bytes and allocs throughout.
	writeTrajectory(t, oldPath, Document{Results: []Result{
		{Name: "BenchmarkSweep-1", Iterations: 1, NsPerOp: 1000},
	}})
	writeTrajectory(t, newPath, Document{Results: []Result{
		{Name: "BenchmarkSweep-8", Iterations: 1, NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 23000},
	}})
	var buf strings.Builder
	failures, err := compareTrajectories(&buf, oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 || !strings.Contains(buf.String(), "without -benchmem") {
		t.Fatalf("benchmem-less baseline: failures=%d out=%q", failures, buf.String())
	}
	// A genuine 0 -> n alloc regression still trips when the old run does
	// carry memory stats on some benchmark.
	writeTrajectory(t, oldPath, Document{Results: []Result{
		{Name: "BenchmarkSweep-1", Iterations: 1, NsPerOp: 1000, BytesPerOp: 64, AllocsPerOp: 3},
		{Name: "BenchmarkEval-1", Iterations: 1, NsPerOp: 100},
	}})
	writeTrajectory(t, newPath, Document{Results: []Result{
		{Name: "BenchmarkSweep-8", Iterations: 1, NsPerOp: 1000, BytesPerOp: 64, AllocsPerOp: 3},
		{Name: "BenchmarkEval-8", Iterations: 1, NsPerOp: 100, AllocsPerOp: 9},
	}})
	buf.Reset()
	if failures, err = compareTrajectories(&buf, oldPath, newPath, 0.25); err != nil || failures != 1 {
		t.Fatalf("0 -> 9 allocs: failures=%d err=%v out=%q", failures, err, buf.String())
	}
}

// TestCompareAgainstCommittedTrajectory feeds the gate the repository's own
// BENCH_sweep.json on both sides: comparing a trajectory against itself
// must never fail, whatever the file accumulates over time.
func TestCompareAgainstCommittedTrajectory(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_sweep.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed trajectory: %v", err)
	}
	var buf strings.Builder
	failures, err := compareTrajectories(&buf, path, path, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("self-comparison failed:\n%s", buf.String())
	}
}

// TestCompareWarnsOnBenchmarkOnlyInNew: a benchmark present in the new
// run but absent from the baseline is warned about and skipped — exit
// success, no regression counted, no crash.
func TestCompareWarnsOnBenchmarkOnlyInNew(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeTrajectory(t, oldPath, Document{Results: []Result{
		{Name: "BenchmarkShared-1", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1},
	}})
	writeTrajectory(t, newPath, Document{Results: []Result{
		{Name: "BenchmarkShared-8", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1},
		{Name: "BenchmarkFreshlyAdded-8", Iterations: 1, NsPerOp: 1e9, AllocsPerOp: 1e6},
	}})
	var buf strings.Builder
	failures, err := compareTrajectories(&buf, oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if failures != 0 {
		t.Fatalf("new-only benchmark counted as regression: %q", out)
	}
	if !strings.Contains(out, "warning: BenchmarkFreshlyAdded: new benchmark, no baseline — skipped") {
		t.Fatalf("missing new-only warning: %q", out)
	}
	if !strings.Contains(out, "BenchmarkShared: ns/op") {
		t.Fatalf("shared benchmark not compared: %q", out)
	}
}

// TestCompareWarnsOnBenchmarkOnlyInOld: the reverse direction — a
// benchmark dropped from the new run is warned about and skipped, never
// failed on and never silently ignored.
func TestCompareWarnsOnBenchmarkOnlyInOld(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeTrajectory(t, oldPath, Document{Results: []Result{
		{Name: "BenchmarkShared-1", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1},
		{Name: "BenchmarkRetired-1", Iterations: 1, NsPerOp: 50, AllocsPerOp: 2},
	}})
	writeTrajectory(t, newPath, Document{Results: []Result{
		{Name: "BenchmarkShared-8", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1},
	}})
	var buf strings.Builder
	failures, err := compareTrajectories(&buf, oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if failures != 0 {
		t.Fatalf("old-only benchmark counted as regression: %q", out)
	}
	if !strings.Contains(out, "warning: BenchmarkRetired: dropped from the new run — skipped") {
		t.Fatalf("missing dropped warning: %q", out)
	}
}
